// Randomized fault-injection campaign runner.
//
// Sweeps every fault class x seed over the UDP-echo and chardev
// workloads with recovery enabled, then prints per-class injection and
// recovery-latency statistics (p50/p99). Exits non-zero when any run
// hung, silently corrupted a payload, or failed to return to
// steady-state after the plane was disarmed.
//
//   VFPGA_CAMPAIGN_RUNS=200  seeded runs per (class, workload)
//   VFPGA_CAMPAIGN_OPS=12    faulted operations per run
//   VFPGA_CAMPAIGN_RATE=0.08 per-consult injection probability
//   VFPGA_SEED=202408        campaign base seed
#include <cstdio>

#include "vfpga/harness/fault_campaign.hpp"

int main() {
  using namespace vfpga;
  const harness::CampaignConfig config = harness::CampaignConfig::from_env();
  std::printf(
      "fault campaign: %llu runs/class, %u ops/run, rate %.3f, seed %llu\n",
      static_cast<unsigned long long>(config.runs_per_class),
      config.ops_per_run, config.fault_rate,
      static_cast<unsigned long long>(config.base_seed));
  const harness::CampaignResult result = harness::run_fault_campaign(config);
  harness::print_campaign_report(result);
  return result.ok() ? 0 : 1;
}
