// Randomized fault-injection campaign runner.
//
// Sweeps every fault class x seed over the UDP-echo and chardev
// workloads with recovery enabled, then prints per-class injection and
// recovery-latency statistics (p50/p99) and writes
// BENCH_fault_campaign.json ($VFPGA_JSON_DIR honoured). Exits non-zero
// when any run hung, silently corrupted a payload, or failed to return
// to steady-state after the plane was disarmed — with a per-class
// breakdown of what failed, so CI logs show which invariant broke
// where instead of a bare exit code.
//
//   --seed N                 base-seed override (or VFPGA_BENCH_SEED)
//   VFPGA_CAMPAIGN_RUNS=200  seeded runs per (class, workload)
//   VFPGA_CAMPAIGN_OPS=12    faulted operations per run
//   VFPGA_CAMPAIGN_RATE=0.08 per-consult injection probability
#include <cstdio>
#include <string>

#include "bench_seed.hpp"
#include "vfpga/harness/fault_campaign.hpp"
#include "vfpga/harness/report.hpp"

namespace {

bool write_json(const vfpga::harness::CampaignConfig& config,
                const vfpga::harness::CampaignResult& result) {
  const std::string path =
      vfpga::harness::bench_json_path("BENCH_fault_campaign.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fprintf(file,
               "{\n  \"source\": \"fault_campaign\",\n  \"seed\": %llu,\n"
               "  \"runs_per_class\": %llu,\n  \"ops_per_run\": %u,\n"
               "  \"fault_rate\": %.4f,\n  \"classes\": [",
               static_cast<unsigned long long>(config.base_seed),
               static_cast<unsigned long long>(config.runs_per_class),
               config.ops_per_run, config.fault_rate);
  bool first = true;
  for (const auto& r : result.classes) {
    std::fprintf(
        file,
        "%s\n    {\"class\": \"%s\", \"workload\": \"%s\", "
        "\"runs\": %llu, \"injected\": %llu, \"hangs\": %llu, "
        "\"corruptions\": %llu, \"device_resets\": %llu, "
        "\"recoveries\": %llu, \"steady_state_failures\": %llu, "
        "\"ok\": %s}",
        first ? "" : ",", vfpga::fault::fault_class_name(r.cls),
        r.workload.c_str(), static_cast<unsigned long long>(r.runs),
        static_cast<unsigned long long>(r.injected),
        static_cast<unsigned long long>(r.hangs),
        static_cast<unsigned long long>(r.corruptions),
        static_cast<unsigned long long>(r.device_resets),
        static_cast<unsigned long long>(r.recoveries),
        static_cast<unsigned long long>(r.steady_state_failures),
        r.ok() ? "true" : "false");
    first = false;
  }
  std::fprintf(file, "\n  ],\n  \"ok\": %s\n}\n",
               result.ok() ? "true" : "false");
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Per-class failure breakdown on the way out: which invariant broke,
/// how often, under which workload.
int report_failures(const vfpga::harness::CampaignResult& result) {
  int failing_classes = 0;
  for (const auto& r : result.classes) {
    if (r.ok()) {
      continue;
    }
    ++failing_classes;
    std::fprintf(stderr,
                 "FAIL %s/%s: %llu hang(s), %llu corruption(s), "
                 "%llu steady-state failure(s) over %llu run(s)\n",
                 vfpga::fault::fault_class_name(r.cls), r.workload.c_str(),
                 static_cast<unsigned long long>(r.hangs),
                 static_cast<unsigned long long>(r.corruptions),
                 static_cast<unsigned long long>(r.steady_state_failures),
                 static_cast<unsigned long long>(r.runs));
  }
  if (failing_classes != 0) {
    std::fprintf(stderr, "fault campaign: %d fault class(es) failed\n",
                 failing_classes);
  }
  return failing_classes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  harness::CampaignConfig config = harness::CampaignConfig::from_env();
  config.base_seed = bench::base_seed(config.base_seed, argc, argv);
  std::printf(
      "fault campaign: %llu runs/class, %u ops/run, rate %.3f, seed %llu\n",
      static_cast<unsigned long long>(config.runs_per_class),
      config.ops_per_run, config.fault_rate,
      static_cast<unsigned long long>(config.base_seed));
  const harness::CampaignResult result = harness::run_fault_campaign(config);
  harness::print_campaign_report(result);
  write_json(config, result);
  return report_failures(result) == 0 ? 0 : 1;
}
