// TAB1: Tail latencies for data movement with VirtIO and XDMA (paper
// Table I): p95 / p99 / p99.9 per payload for both drivers.
#include <cstdio>

#include "vfpga/harness/parallel.hpp"
#include "vfpga/harness/report.hpp"

int main() {
  using namespace vfpga;
  harness::ExperimentConfig config = harness::ExperimentConfig::from_env();
  const auto [virtio, xdma] = harness::run_both_sweeps_parallel(config);
  std::fputs(harness::render_table1(virtio, xdma).c_str(), stdout);
  std::fputs(harness::render_footer(config, virtio, xdma).c_str(), stdout);
  const std::string csv =
      harness::maybe_export_csv(virtio, xdma, "table1_tail_latency");
  if (!csv.empty()) {
    std::printf("[csv written to %s]\n", csv.c_str());
  }
  const std::string json =
      harness::write_latency_json(config, virtio, xdma, "table1_tail_latency");
  if (!json.empty()) {
    std::printf("[json written to %s]\n", json.c_str());
  }
  std::puts(
      "\nPaper Table I (Alinx AX7A200 testbed) for shape comparison:\n"
      "  64B:   95% 35.1/51.3  99% 44.8/70.1  99.9% 66.5/85.8 (V/X)\n"
      "  1024B: 95% 57.8/72.8  99% 65.9/76.7  99.9% 99.6/97.3 (V/X)");
  return 0;
}
