// Multi-queue scaling sweep: aggregate throughput and per-flow tails.
//
// Sweeps (queue pairs x concurrent flows x payload) with the
// MultiFlowGenerator and reports, per cell, the aggregate echo
// throughput plus per-flow latency percentiles (p50/p95/p99 over all
// flows, and the worst single flow's p99). For each (flows, payload)
// row the sweep asserts that aggregate throughput scales monotonically
// with the pair count (within a small tolerance) and that no echo was
// lost or steered to the wrong pair — exits non-zero otherwise.
//
//   --smoke                  trimmed sweep for CI
//   --stats-only             print ONLY the deterministic per-cell JSON
//                            to stdout — CI byte-diffs this across
//                            VFPGA_THREADS (no gates, no wall-clock)
//   --threads N              worker threads for the trial lanes
//                            (env > this > hardware; VFPGA_THREADS wins)
//   --seed N                 base seed override (also VFPGA_BENCH_SEED)
//   VFPGA_MQ_TRIALS=4        independent trials per cell
//   VFPGA_MQ_PACKETS=200     measured echoes per flow
//   VFPGA_SEED=2025          base seed
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_seed.hpp"
#include "vfpga/harness/multi_flow.hpp"

namespace {

// Successive pair counts must not lose more than this fraction of
// throughput: flows >= pairs everywhere in the sweep, so adding pairs
// adds device-side parallelism and can only help (modulo trial noise).
constexpr double kMonotonicTolerance = 0.97;

/// One cell's deterministic stats as a JSON object line. Everything
/// here is simulated-time derived, so it must match byte for byte at
/// any thread count.
void print_cell_json(const vfpga::harness::MultiFlowResult& r, bool first) {
  std::printf(
      "%s\n    {\"pairs\": %u, \"flows\": %u, \"payload\": %llu, "
      "\"kpps\": %.4f, \"makespan_us\": %.3f, \"p50_us\": %.4f, "
      "\"p99_us\": %.4f, \"failures\": %llu, \"cross_pair_rx\": %llu, "
      "\"lane_windows\": %llu, \"lane_window_growths\": %llu, "
      "\"lane_messages\": %llu, \"trials_aggregated\": %u}",
      first ? "" : ",", r.queue_pairs, r.flows,
      static_cast<unsigned long long>(r.payload_bytes),
      r.aggregate_mpps * 1000.0, r.mean_makespan_us,
      r.all_latency_us.percentile(50), r.all_latency_us.percentile(99),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.cross_pair_rx),
      static_cast<unsigned long long>(r.lane_windows),
      static_cast<unsigned long long>(r.lane_window_growths),
      static_cast<unsigned long long>(r.lane_messages), r.trials_aggregated);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  bool stats_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--stats-only") == 0) {
      stats_only = true;
    }
  }

  harness::MultiFlowConfig base = harness::MultiFlowConfig::from_env();
  base.seed = bench::base_seed(base.seed, argc, argv);
  base.threads = bench::cli_threads(argc, argv);
  std::vector<u16> pair_counts = {1, 2, 4, 8};
  std::vector<u16> flow_counts = {8, 16};
  std::vector<u64> payloads = {64, 256, 1024};
  if (smoke) {
    pair_counts = {1, 2, 4};
    flow_counts = {8};
    payloads = {256};
    base.trials = 2;
    base.packets_per_flow = 48;
    base.warmup_per_flow = 4;
  }

  if (stats_only) {
    std::printf("{\n  \"source\": \"mq_scaling\",\n  \"seed\": %llu,\n"
                "  \"cells\": [",
                static_cast<unsigned long long>(base.seed));
    bool first = true;
    bool clean = true;
    for (const u16 flows : flow_counts) {
      for (const u64 payload : payloads) {
        for (const u16 pairs : pair_counts) {
          harness::MultiFlowConfig config = base;
          config.queue_pairs = pairs;
          config.flows = flows;
          config.payload_bytes = payload;
          const harness::MultiFlowResult r = harness::run_multi_flow(config);
          print_cell_json(r, first);
          first = false;
          clean = clean && r.failures == 0 && r.cross_pair_rx == 0;
        }
      }
    }
    std::printf("\n  ]\n}\n");
    return clean ? 0 : 1;
  }

  std::printf(
      "mq_scaling: %u trials/cell, %llu packets/flow%s\n\n"
      "%5s %6s %8s | %10s %10s | %8s %8s %8s %9s %12s\n",
      base.trials,
      static_cast<unsigned long long>(base.packets_per_flow),
      smoke ? " (smoke)" : "", "pairs", "flows", "payload", "aggr kpps",
      "makespan", "p50 us", "p95 us", "p99 us", "p99.9 us", "worst-p99 us");

  bool ok = true;
  for (const u16 flows : flow_counts) {
    for (const u64 payload : payloads) {
      double prev_kpps = 0;
      u16 prev_pairs = 0;
      for (const u16 pairs : pair_counts) {
        harness::MultiFlowConfig config = base;
        config.queue_pairs = pairs;
        config.flows = flows;
        config.payload_bytes = payload;
        const harness::MultiFlowResult r = harness::run_multi_flow(config);

        double worst_p99 = 0;
        for (const harness::FlowResult& flow : r.per_flow) {
          if (!flow.latency_us.empty()) {
            worst_p99 = std::max(worst_p99, flow.latency_us.percentile(99));
          }
        }
        const double kpps = r.aggregate_mpps * 1000.0;
        std::printf(
            "%5u %6u %8llu | %10.1f %8.0fus | %8.2f %8.2f %8.2f %9.2f "
            "%12.2f\n",
            pairs, flows, static_cast<unsigned long long>(payload), kpps,
            r.mean_makespan_us, r.all_latency_us.percentile(50),
            r.all_latency_us.percentile(95), r.all_latency_us.percentile(99),
            r.all_latency_us.percentile(99.9), worst_p99);

        if (r.failures != 0) {
          std::printf("  FAIL: %llu echoes exhausted the retry budget\n",
                      static_cast<unsigned long long>(r.failures));
          ok = false;
        }
        if (r.cross_pair_rx != 0) {
          std::printf("  FAIL: %llu echoes arrived on the wrong pair\n",
                      static_cast<unsigned long long>(r.cross_pair_rx));
          ok = false;
        }
        if (prev_pairs != 0 && kpps < prev_kpps * kMonotonicTolerance) {
          std::printf(
              "  FAIL: throughput regressed %u -> %u pairs "
              "(%.1f -> %.1f kpps)\n",
              prev_pairs, pairs, prev_kpps, kpps);
          ok = false;
        }
        prev_kpps = kpps;
        prev_pairs = pairs;
      }
      std::printf("\n");
    }
  }
  return ok ? 0 : 1;
}
