// FIG5: Data movement latency breakdown with the vendor-provided driver
// (paper Fig. 5). Note the paper's observation: with XDMA the software
// time exceeds the hardware time — the reverse of the VirtIO breakdown.
#include <cstdio>

#include "vfpga/harness/report.hpp"
#include "vfpga/harness/xdma_bench.hpp"

int main() {
  using namespace vfpga;
  harness::ExperimentConfig config = harness::ExperimentConfig::from_env();
  const harness::SweepResult sweep = harness::run_xdma_sweep(config);
  std::fputs(
      harness::render_breakdown_figure(
          sweep,
          "Fig. 5 -- Data movement latency breakdown with the "
          "vendor-provided driver (us)")
          .c_str(),
      stdout);
  std::printf("[%llu packets/point, seed %llu]\n",
              static_cast<unsigned long long>(config.iterations),
              static_cast<unsigned long long>(config.seed));
  return 0;
}
