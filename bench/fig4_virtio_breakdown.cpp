// FIG4: Breakdown of data movement latency using the VirtIO driver
// (paper Fig. 4): hardware time from the FPGA performance counters vs
// software-stack time (total minus hardware minus response generation),
// mean +- standard deviation per payload.
#include <cstdio>

#include "vfpga/harness/report.hpp"
#include "vfpga/harness/virtio_bench.hpp"

int main() {
  using namespace vfpga;
  harness::ExperimentConfig config = harness::ExperimentConfig::from_env();
  const harness::SweepResult sweep = harness::run_virtio_sweep(config);
  std::fputs(
      harness::render_breakdown_figure(
          sweep,
          "Fig. 4 -- Breakdown of data movement latency using the VirtIO "
          "driver (us)")
          .c_str(),
      stdout);
  std::printf("[%llu packets/point, seed %llu]\n",
              static_cast<unsigned long long>(config.iterations),
              static_cast<unsigned long long>(config.seed));
  return 0;
}
