// PORTABILITY: the paper's stated next step (§VI) — "performing the same
// experiments on different FPGA devices (different device families and
// from different vendors) and on different operating systems to
// demonstrate the portability of the proposed approach."
//
// Platform presets vary the PCIe link (generation/width/pipeline
// latencies of different hard blocks) and the host OS cost profile
// (desktop vs. tuned server). The claim to check: the VirtIO-vs-vendor
// ordering is a property of the driver structures, not of one board —
// so it should hold on every platform.
#include <cstdio>
#include <cstdlib>

#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace {

using namespace vfpga;

struct Platform {
  const char* name;
  pcie::LinkConfig link;
  bool tuned_host;  ///< isolcpus/low-C-state server profile
};

pcie::LinkConfig gen2x2_artix() {
  return pcie::LinkConfig{};  // the paper's board (defaults)
}

pcie::LinkConfig gen3x4_ultrascale() {
  pcie::LinkConfig link;
  // Gen3 x4, 128b/130b: ~3.94 GB/s usable; faster hard block.
  link.bytes_per_ns = 3.94;
  link.endpoint_pipeline = sim::nanoseconds(250);
  link.root_pipeline = sim::nanoseconds(150);
  link.limits.max_payload_size = 256;
  link.limits.max_read_request = 512;
  return link;
}

pcie::LinkConfig gen3x8_agilex() {
  pcie::LinkConfig link;
  link.bytes_per_ns = 7.88;
  link.endpoint_pipeline = sim::nanoseconds(220);
  link.root_pipeline = sim::nanoseconds(140);
  link.limits.max_payload_size = 512;
  link.limits.max_read_request = 1024;
  return link;
}

hostos::CostModelConfig tuned_server_costs() {
  // Pinned cores, C-states limited to C1, threaded IRQs steered away:
  // cheaper wake-ups and less multi-modality; same code paths.
  auto c = hostos::CostModelConfig::fedora_defaults();
  c.wakeup = sim::MixtureSegment{{
      {0.85, {sim::nanoseconds(1100), 0.20, sim::nanoseconds(650), {}}},
      {0.15, {sim::nanoseconds(2600), 0.25, sim::nanoseconds(1300), {}}},
  }};
  return c;
}

sim::NoiseConfig tuned_server_noise() {
  sim::NoiseConfig n;
  n.common_rate_per_us = 0.004;
  n.rare_rate_per_us = 0.00002;
  return n;
}

u64 iterations() {
  if (const char* env = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<u64>(v);
    }
  }
  return 15'000;
}

}  // namespace

int main() {
  const u64 n = iterations();
  const u64 payload = 256;
  std::printf("PORTABILITY -- VirtIO vs XDMA across platform presets, "
              "%llu round trips, %llu B payload\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(payload));
  std::printf("%-34s %16s %16s %9s\n", "platform",
              "VirtIO mean/p95", "XDMA mean/p95", "ordering");

  const Platform platforms[] = {
      {"artix7-gen2x2 + fedora desktop", gen2x2_artix(), false},
      {"artix7-gen2x2 + tuned server", gen2x2_artix(), true},
      {"ultrascale-gen3x4 + fedora", gen3x4_ultrascale(), false},
      {"agilex-gen3x8 + tuned server", gen3x8_agilex(), true},
  };

  for (const Platform& platform : platforms) {
    core::TestbedOptions options;
    options.seed = 61;
    options.link = platform.link;
    if (platform.tuned_host) {
      options.costs = tuned_server_costs();
      options.noise = tuned_server_noise();
    }

    stats::SampleSet virtio;
    {
      core::VirtioNetTestbed bed{options};
      Bytes buffer(payload, 1);
      for (u64 i = 0; i < n; ++i) {
        buffer[0] = static_cast<u8>(i);
        const auto rt = bed.udp_round_trip(buffer);
        if (rt.ok) {
          virtio.add(rt.total);
        }
      }
    }
    stats::SampleSet xdma;
    {
      core::XdmaTestbed bed{options};
      const u64 wire = core::virtio_wire_bytes(payload);
      for (u64 i = 0; i < n; ++i) {
        const auto rt = bed.write_read_round_trip(wire);
        if (rt.ok) {
          xdma.add(rt.total);
        }
      }
    }
    char virtio_col[32];
    char xdma_col[32];
    std::snprintf(virtio_col, sizeof virtio_col, "%.1f / %.1f",
                  virtio.mean(), virtio.percentile(95));
    std::snprintf(xdma_col, sizeof xdma_col, "%.1f / %.1f", xdma.mean(),
                  xdma.percentile(95));
    const double ratio = virtio.mean() / xdma.mean();
    const char* ordering = ratio <= 0.98   ? "V < X"
                           : ratio < 1.02 ? "V ~= X"
                                          : "V > X";
    std::printf("%-34s %16s %16s %9s\n", platform.name, virtio_col, xdma_col,
                ordering);
  }

  std::puts(
      "\nReading: on every preset VirtIO's p95 stays below XDMA's — the\n"
      "variance advantage is structural and portable. The *mean* ordering\n"
      "narrows to a tie on tuned (low-wakeup-cost) hosts, where XDMA's\n"
      "software penalty shrinks while VirtIO's ring-read hardware cost\n"
      "does not: exactly the paper's SV recommendation that highly\n"
      "optimized deployments may still justify a custom driver.");
  return 0;
}
