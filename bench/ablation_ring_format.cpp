// ABL-RING: split vs. packed virtqueue format.
//
// The paper's controller implements the VirtIO split ring; the packed
// format (VirtIO 1.1+, §2.8) was designed precisely for hardware
// implementations: availability + descriptor arrive in one DMA read and
// completion is one DMA write. This bench quantifies what that buys a
// PCIe-attached FPGA, running the paper's UDP-echo experiment over both
// formats with everything else identical.
#include <cstdio>
#include <cstdlib>

#include "bench_seed.hpp"
#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace {

using namespace vfpga;

u64 iterations() {
  if (const char* env = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<u64>(v);
    }
  }
  return 20'000;
}

void run_format(bool packed, u64 n, u64 seed) {
  std::printf("%s rings:\n", packed ? "packed" : "split ");
  std::printf("  %-8s %10s %10s %12s %10s\n", "payload", "hw (us)",
              "sw (us)", "total (us)", "p95 (us)");
  for (u64 payload : {u64{64}, u64{256}, u64{1024}}) {
    core::TestbedOptions options;
    options.seed = seed + payload;
    options.use_packed_rings = packed;
    core::VirtioNetTestbed bed{options};
    stats::SampleSet hw;
    stats::SampleSet sw;
    stats::SampleSet total;
    Bytes buffer(payload, 1);
    for (u64 i = 0; i < n; ++i) {
      buffer[0] = static_cast<u8>(i);
      const auto rt = bed.udp_round_trip(buffer);
      if (!rt.ok) {
        continue;
      }
      hw.add(rt.hardware);
      sw.add(rt.total - rt.hardware - rt.response_gen);
      total.add(rt.total);
    }
    std::printf("  %-8llu %10.2f %10.2f %12.2f %10.2f\n",
                static_cast<unsigned long long>(payload), hw.mean(),
                sw.mean(), total.mean(), total.percentile(95));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = bench::base_seed(51, argc, argv);
  const u64 n = iterations();
  std::printf("ABL-RING -- split vs packed virtqueue format, %llu round "
              "trips/point\n\n",
              static_cast<unsigned long long>(n));
  run_format(false, n, seed);
  std::puts("");
  run_format(true, n, seed);
  std::puts(
      "\nReading: the packed format removes ~3 non-posted ring reads per\n"
      "echo from the FPGA's critical path (avail-idx, avail-entry and the\n"
      "separate used-event read), shrinking the hardware share — the\n"
      "library's main extension beyond the paper's split-ring controller.");
  return 0;
}
