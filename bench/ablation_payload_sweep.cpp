// ABL-PAYLOAD: extended payload sweep (§V scoping).
//
// The paper restricts Fig. 3 to 64 B..1 KB "such that the total latency
// is not dominated by the bus transactions and the effects of the
// drivers and the rest of the software stack are observable." This
// bench extends the sweep to 64 KiB on the XDMA path (VirtIO stops at
// the 1500-byte MTU) to show the crossover into the bus-dominated
// regime where driver choice stops mattering.
#include <cstdio>

#include "bench_seed.hpp"
#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace {

using namespace vfpga;

u64 iterations() {
  if (const char* env = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<u64>(v) / 2 + 1;
    }
  }
  return 8'000;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 n = iterations();
  std::printf("ABL-PAYLOAD -- bus-domination sweep, %llu round trips/point\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-10s %12s %12s %14s %16s\n", "bytes", "total (us)",
              "hw (us)", "sw share (%)", "goodput (Gb/s)");

  core::TestbedOptions options;
  options.seed = bench::base_seed(31, argc, argv);
  core::XdmaTestbed bed{options};

  for (u64 bytes : {u64{64}, u64{256}, u64{1024}, u64{4096}, u64{16384},
                    u64{65536}}) {
    stats::SampleSet total;
    stats::SampleSet hw;
    for (u64 i = 0; i < n; ++i) {
      const auto rt = bed.write_read_round_trip(bytes);
      if (rt.ok) {
        total.add(rt.total);
        hw.add(rt.hardware);
      }
    }
    const double sw_share =
        (total.mean() - hw.mean()) / total.mean() * 100.0;
    // Round trip moves the payload twice (H2C + C2H).
    const double gbps = static_cast<double>(2 * bytes) * 8.0 /
                        (total.mean() * 1e3);
    std::printf("%-10llu %12.2f %12.2f %14.1f %16.2f\n",
                static_cast<unsigned long long>(bytes), total.mean(),
                hw.mean(), sw_share, gbps);
  }

  std::puts(
      "\nReading: below ~1 KiB the software stack is the majority of the\n"
      "round trip (the regime the paper evaluates); by 64 KiB the bus\n"
      "transfer dominates and goodput approaches the Gen2 x2 ceiling —\n"
      "driver overheads become invisible, which is why the paper keeps\n"
      "its payloads small.");
  return 0;
}
