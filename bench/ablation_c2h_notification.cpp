// ABL-NOTIF: card-to-host notification strategy ablation (§IV-A/§IV-C).
//
// Compares four ways the host learns that C2H data is ready:
//   1. VirtIO device-push — the FPGA writes the data into pre-posted RX
//      buffers and interrupts once (the paper's VirtIO path);
//   2. XDMA back-to-back — write() then read() immediately (the paper's
//      favourable vendor-driver setup, §IV-C);
//   3. XDMA + user IRQ — the realistic flow the paper says the example
//      design lacks: poll() on a user interrupt before read();
//   4. XDMA poll-mode driver — no interrupts at all, the driver spins on
//      engine status (MMIO reads).
#include <cstdio>

#include "bench_seed.hpp"
#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace {

using namespace vfpga;

constexpr u64 kPayload = 256;

u64 iterations() {
  if (const char* env = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<u64>(v);
    }
  }
  return 20'000;
}

void report(const char* name, const stats::SampleSet& samples) {
  std::printf("%-26s mean %6.2f  stddev %5.2f  p95 %6.2f  p99 %6.2f (us)\n",
              name, samples.mean(), samples.stddev(),
              samples.percentile(95), samples.percentile(99));
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = bench::base_seed(11, argc, argv);
  const u64 n = iterations();
  std::printf("ABL-NOTIF -- C2H notification strategies, %llu round trips, "
              "%llu-byte payload equivalent\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(kPayload));
  const u64 wire = core::virtio_wire_bytes(kPayload);

  {
    core::TestbedOptions options;
    options.seed = seed;
    core::VirtioNetTestbed bed{options};
    stats::SampleSet samples;
    Bytes payload(kPayload, 1);
    for (u64 i = 0; i < n; ++i) {
      payload[0] = static_cast<u8>(i);
      const auto rt = bed.udp_round_trip(payload);
      if (rt.ok) {
        samples.add(rt.total);
      }
    }
    report("virtio device-push", samples);
  }
  {
    core::TestbedOptions options;
    options.seed = seed + 1;
    core::XdmaTestbed bed{options};
    stats::SampleSet samples;
    for (u64 i = 0; i < n; ++i) {
      const auto rt = bed.write_read_round_trip(wire);
      if (rt.ok) {
        samples.add(rt.total);
      }
    }
    report("xdma back-to-back", samples);
  }
  {
    core::TestbedOptions options;
    options.seed = seed + 2;
    core::XdmaTestbed bed{options};
    stats::SampleSet samples;
    for (u64 i = 0; i < n; ++i) {
      const auto rt = bed.write_read_round_trip_user_irq(wire);
      if (rt.ok) {
        samples.add(rt.total);
      }
    }
    report("xdma + user IRQ (real)", samples);
  }
  {
    core::TestbedOptions options;
    options.seed = seed + 3;
    core::XdmaTestbed bed{options};
    bed.driver().set_poll_mode(true);
    stats::SampleSet samples;
    for (u64 i = 0; i < n; ++i) {
      const auto rt = bed.write_read_round_trip(wire);
      if (rt.ok) {
        samples.add(rt.total);
      }
    }
    report("xdma poll-mode driver", samples);
  }

  std::puts(
      "\nReading: the paper's XDMA numbers use the favourable back-to-back\n"
      "setup; the user-IRQ row shows what a real C2H-notified application\n"
      "pays, widening VirtIO's advantage (SIV-C). Poll mode beats every\n"
      "interrupt path on latency at the price of a spinning CPU.");
  return 0;
}
