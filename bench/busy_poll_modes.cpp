// Busy-poll datapath sweep: interrupt vs pure-poll vs adaptive RX.
//
// For each (payload x flows) cell the three receive modes run the same
// paced UDP echo workload on paired seeds, reporting p50/p95/p99/p99.9
// latency AND CPU residency — the spin-vs-sleep trade. The acceptance
// gate asserts, for every payload at flows=1:
//   - adaptive p50 and p99 <= the interrupt path's (polling skips the
//     IRQ entry and the scheduler wake-up, so it must not be slower);
//   - pure-poll CPU residency > adaptive (pure poll burns the pacing
//     gaps on-core; adaptive sleeps them).
// A second section measures TX kick coalescing: MSG_MORE bursts against
// EVENT_IDX on split and packed rings, doorbells per frame.
// Exits non-zero on any gate violation.
//
//   --smoke                trimmed sweep for CI
//   --seed N               base seed override (also VFPGA_BENCH_SEED)
//   VFPGA_ITERATIONS=300   measured echoes per flow
//   VFPGA_SEED=45073       base seed
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_seed.hpp"
#include "vfpga/harness/busy_poll_bench.hpp"

namespace {

const char* mode_name(vfpga::hostos::RxMode mode) {
  switch (mode) {
    case vfpga::hostos::RxMode::kInterrupt:
      return "interrupt";
    case vfpga::hostos::RxMode::kBusyPoll:
      return "pure-poll";
    case vfpga::hostos::RxMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  harness::BusyPollBenchConfig base = harness::BusyPollBenchConfig::from_env();
  base.seed = bench::base_seed(base.seed, argc, argv);
  std::vector<u16> flow_counts = {1, 4};
  if (smoke) {
    base.payloads = {64, 256, 1024};
    flow_counts = {1};
    base.trials = 3;
    base.iterations_per_flow = 250;
    base.warmup_per_flow = 8;
  }

  const std::vector<hostos::RxMode> modes = {hostos::RxMode::kInterrupt,
                                             hostos::RxMode::kBusyPoll,
                                             hostos::RxMode::kAdaptive};

  std::printf(
      "busy_poll_modes: %u trials/cell, %llu echoes/flow, %.0fus pacing%s\n\n"
      "%6s %9s %8s | %8s %8s %8s %9s | %9s %6s\n",
      base.trials, static_cast<unsigned long long>(base.iterations_per_flow),
      base.pacing_gap.micros(), smoke ? " (smoke)" : "", "flows", "mode",
      "payload", "p50 us", "p95 us", "p99 us", "p99.9 us", "residency",
      "spin%");

  bool ok = true;
  for (const u16 flows : flow_counts) {
    for (const u64 payload : base.payloads) {
      harness::BusyPollBenchConfig config = base;
      config.flows = flows;

      harness::BusyPollCellResult cells[3];
      for (std::size_t m = 0; m < modes.size(); ++m) {
        cells[m] = harness::run_busy_poll_cell(config, modes[m], payload);
        const harness::BusyPollCellResult& r = cells[m];
        std::printf(
            "%6u %9s %8llu | %8.2f %8.2f %8.2f %9.2f | %8.1f%% %5.0f%%\n",
            flows, mode_name(r.mode),
            static_cast<unsigned long long>(payload),
            r.latency_us.percentile(50), r.latency_us.percentile(95),
            r.latency_us.percentile(99), r.latency_us.percentile(99.9),
            r.cpu_residency * 100.0, r.poll_share * 100.0);
        if (r.failures != 0) {
          std::printf("  FAIL: %llu echoes exhausted the retry budget (%s)\n",
                      static_cast<unsigned long long>(r.failures),
                      mode_name(r.mode));
          ok = false;
        }
      }

      const harness::BusyPollCellResult& irq = cells[0];
      const harness::BusyPollCellResult& poll = cells[1];
      const harness::BusyPollCellResult& adaptive = cells[2];
      if (flows == 1) {
        if (adaptive.latency_us.percentile(50) >
            irq.latency_us.percentile(50)) {
          std::printf("  FAIL: adaptive p50 %.2fus > interrupt p50 %.2fus "
                      "(payload %llu)\n",
                      adaptive.latency_us.percentile(50),
                      irq.latency_us.percentile(50),
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
        if (adaptive.latency_us.percentile(99) >
            irq.latency_us.percentile(99)) {
          std::printf("  FAIL: adaptive p99 %.2fus > interrupt p99 %.2fus "
                      "(payload %llu)\n",
                      adaptive.latency_us.percentile(99),
                      irq.latency_us.percentile(99),
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
        if (poll.cpu_residency <= adaptive.cpu_residency) {
          std::printf(
              "  FAIL: pure-poll residency %.1f%% <= adaptive %.1f%% "
              "(payload %llu)\n",
              poll.cpu_residency * 100.0, adaptive.cpu_residency * 100.0,
              static_cast<unsigned long long>(payload));
          ok = false;
        }
      }
    }
    std::printf("\n");
  }

  // ---- TX kick coalescing vs EVENT_IDX, split and packed rings ----
  std::printf("%6s %7s | %8s %8s %9s %10s | %12s\n", "ring", "burst",
              "frames", "echoes", "kicks", "coalesced", "kicks/frame");
  for (const bool packed : {false, true}) {
    for (const u32 burst : {1u, 4u, 8u}) {
      const harness::KickCoalescingResult r =
          harness::run_kick_coalescing(base, burst, packed);
      std::printf("%6s %7u | %8llu %8llu %9llu %10llu | %12.3f\n",
                  packed ? "packed" : "split", burst,
                  static_cast<unsigned long long>(r.frames_sent),
                  static_cast<unsigned long long>(r.echoes_received),
                  static_cast<unsigned long long>(r.tx_kicks),
                  static_cast<unsigned long long>(r.tx_kicks_coalesced),
                  r.doorbells_per_frame);
      if (r.echoes_received != r.frames_sent) {
        std::printf("  FAIL: %llu frames sent but %llu echoes received\n",
                    static_cast<unsigned long long>(r.frames_sent),
                    static_cast<unsigned long long>(r.echoes_received));
        ok = false;
      }
      if (r.device_frames != r.frames_sent) {
        std::printf("  FAIL: device processed %llu of %llu frames\n",
                    static_cast<unsigned long long>(r.device_frames),
                    static_cast<unsigned long long>(r.frames_sent));
        ok = false;
      }
      // Coalescing must cut doorbells ~1/burst; EVENT_IDX may suppress
      // further, so the bound is one-sided.
      const double expected = 1.0 / burst;
      if (r.doorbells_per_frame > expected + 1e-9) {
        std::printf("  FAIL: %.3f doorbells/frame, expected <= %.3f\n",
                    r.doorbells_per_frame, expected);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
