// Base-seed override shared by the ablation benches.
//
// Each bench hard-codes a base seed so default runs are reproducible;
// reviewers re-running an experiment with fresh randomness pass
// `--seed N` (or `--seed=N`), or set VFPGA_BENCH_SEED. The override
// replaces only the bench's base — per-configuration offsets stay
// applied on top, so distinct configs keep distinct RNG streams.
#pragma once

#include <cstdlib>
#include <cstring>

#include "vfpga/common/types.hpp"

namespace vfpga::bench {

/// Returns the `--threads N` / `--threads=N` worker-pool request, or 0
/// when absent. Feeds the harness config's `threads` field, whose
/// precedence is env > CLI > hardware: harness::worker_threads applies
/// VFPGA_THREADS after this value, so the environment still wins (CI
/// pins determinism oracles with VFPGA_THREADS=1 regardless of flags).
inline unsigned cli_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 0));
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 0));
    }
  }
  return 0;
}

/// Returns the base seed for a bench run: `--seed` flag, then the
/// VFPGA_BENCH_SEED environment variable, then `default_seed`.
inline u64 base_seed(u64 default_seed, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      return static_cast<u64>(std::strtoull(argv[i + 1], nullptr, 0));
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      return static_cast<u64>(std::strtoull(argv[i] + 7, nullptr, 0));
    }
  }
  if (const char* env = std::getenv("VFPGA_BENCH_SEED")) {
    return static_cast<u64>(std::strtoull(env, nullptr, 0));
  }
  return default_seed;
}

}  // namespace vfpga::bench
