// Base-seed override shared by the ablation benches.
//
// Each bench hard-codes a base seed so default runs are reproducible;
// reviewers re-running an experiment with fresh randomness pass
// `--seed N` (or `--seed=N`), or set VFPGA_BENCH_SEED. The override
// replaces only the bench's base — per-configuration offsets stay
// applied on top, so distinct configs keep distinct RNG streams.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "vfpga/common/types.hpp"

namespace vfpga::bench {

/// Parse a `--threads` operand: a positive decimal/hex/octal integer
/// that fits an unsigned, with no trailing garbage. Returns nullopt for
/// everything else — zero, negatives, "4x", "", overflow — so callers
/// reject bad input instead of silently running with threads=0 (which
/// means "pick for me" downstream and would mask the typo).
[[nodiscard]] inline std::optional<unsigned> parse_thread_count(
    const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 0);
  if (errno != 0 || end == text || *end != '\0') {
    return std::nullopt;
  }
  if (value <= 0 || value > 65'536) {
    return std::nullopt;
  }
  return static_cast<unsigned>(value);
}

/// Returns the `--threads N` / `--threads=N` worker-pool request, or 0
/// when absent. Feeds the harness config's `threads` field, whose
/// precedence is env > CLI > hardware: harness::worker_threads applies
/// VFPGA_THREADS after this value, so the environment still wins (CI
/// pins determinism oracles with VFPGA_THREADS=1 regardless of flags).
/// An explicit but invalid operand (zero, negative, garbage) prints a
/// diagnostic and exits 2 — a mistyped thread count must not silently
/// become an auto-sized run.
inline unsigned cli_threads(int argc, char** argv) {
  const char* operand = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      operand = argv[i + 1];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      operand = argv[i] + 10;
    }
  }
  if (operand == nullptr) {
    return 0;
  }
  const std::optional<unsigned> threads = parse_thread_count(operand);
  if (!threads.has_value()) {
    std::fprintf(stderr,
                 "error: --threads expects a positive integer "
                 "(1..65536), got \"%s\"\n",
                 operand);
    std::exit(2);
  }
  return *threads;
}

/// Returns the base seed for a bench run: `--seed` flag, then the
/// VFPGA_BENCH_SEED environment variable, then `default_seed`.
inline u64 base_seed(u64 default_seed, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      return static_cast<u64>(std::strtoull(argv[i + 1], nullptr, 0));
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      return static_cast<u64>(std::strtoull(argv[i] + 7, nullptr, 0));
    }
  }
  if (const char* env = std::getenv("VFPGA_BENCH_SEED")) {
    return static_cast<u64>(std::strtoull(env, nullptr, 0));
  }
  return default_seed;
}

}  // namespace vfpga::bench
