// Live-migration bench: snapshot/restore + two-host pre-copy migration
// under a faulted multi-flow UDP workload.
//
// Runs harness::run_migration for both ring formats (split and packed),
// prints the blackout/loss/verification report, writes
// BENCH_migration.json ($VFPGA_JSON_DIR honoured) and exits non-zero
// when any run corrupted state, diverged after switchover, or blew the
// blackout budget.
//
//   --smoke            trimmed workload for CI (fewer ops and rounds)
//   --seed N           base-seed override (or VFPGA_BENCH_SEED)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_seed.hpp"
#include "vfpga/harness/migration.hpp"
#include "vfpga/harness/report.hpp"

namespace {

struct NamedResult {
  std::string name;
  vfpga::harness::MigrationConfig config;
  vfpga::harness::MigrationResult result;
};

bool write_json(const std::vector<NamedResult>& runs, vfpga::u64 seed) {
  const std::string path =
      vfpga::harness::bench_json_path("BENCH_migration.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fprintf(file, "{\n  \"source\": \"migration\",\n  \"seed\": %llu,\n"
               "  \"runs\": [",
               static_cast<unsigned long long>(seed));
  bool first = true;
  for (const NamedResult& run : runs) {
    const auto& r = run.result;
    std::fprintf(
        file,
        "%s\n    {\"ring\": \"%s\", \"precopy_rounds\": %u, "
        "\"pages_full\": %llu, \"pages_dirty\": %llu, "
        "\"pages_blackout\": %llu, \"state_bytes\": %llu, "
        "\"blackout_us\": %.2f, \"rate_pps\": %.0f, "
        "\"modeled_lost_packets\": %.3f, \"loss_bound_packets\": %.3f, "
        "\"ops_precopy\": %llu, \"faults_injected\": %llu, "
        "\"post_ops\": %llu, \"divergent_ops\": %llu, "
        "\"restore_ok\": %s, \"snapshot_identical\": %s, "
        "\"final_snapshot_identical\": %s, \"blackout_bounded\": %s, "
        "\"ok\": %s}",
        first ? "" : ",", run.name.c_str(), r.precopy_rounds,
        static_cast<unsigned long long>(r.pages_full_copy),
        static_cast<unsigned long long>(r.pages_dirty_copied),
        static_cast<unsigned long long>(r.pages_blackout),
        static_cast<unsigned long long>(r.state_bytes), r.blackout_us,
        r.traffic_rate_pps, r.modeled_lost_packets, r.loss_bound_packets,
        static_cast<unsigned long long>(r.ops_during_precopy),
        static_cast<unsigned long long>(r.faults_injected),
        static_cast<unsigned long long>(r.post_ops),
        static_cast<unsigned long long>(r.divergent_ops),
        r.restore_ok ? "true" : "false",
        r.snapshot_identical ? "true" : "false",
        r.final_snapshot_identical ? "true" : "false",
        r.blackout_bounded ? "true" : "false", r.ok() ? "true" : "false");
    first = false;
  }
  std::fprintf(file, "\n  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const u64 seed = bench::base_seed(8'24'2026, argc, argv);

  harness::MigrationConfig base;
  base.seed = seed;
  if (smoke) {
    base.ops_per_round = 10;
    base.max_precopy_rounds = 4;
    base.post_ops = 16;
    base.clean_ops = 4;
  }

  std::vector<NamedResult> runs;
  for (const bool packed : {false, true}) {
    harness::MigrationConfig config = base;
    config.testbed.use_packed_rings = packed;
    config.seed = seed + (packed ? 1 : 0);
    NamedResult run;
    run.name = packed ? "packed" : "split";
    run.config = config;
    std::printf("=== %s rings ===\n", run.name.c_str());
    run.result = harness::run_migration(config);
    harness::print_migration_report(config, run.result);
    runs.push_back(std::move(run));
  }

  write_json(runs, seed);

  for (const NamedResult& run : runs) {
    if (!run.result.ok()) {
      std::printf("FAIL: %s-ring migration violated an invariant\n",
                  run.name.c_str());
      return 1;
    }
  }
  return 0;
}
