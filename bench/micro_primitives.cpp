// MICRO: google-benchmark microbenchmarks of the library primitives —
// wall-clock cost of the simulator itself (how fast the models run on
// the build machine, not simulated latency). Useful for keeping the
// 50k-packet sweeps quick and for spotting accidental slowdowns in the
// hot paths.
#include <benchmark/benchmark.h>

#include <array>

#include "vfpga/core/testbed.hpp"
#include "vfpga/net/checksum.hpp"
#include "vfpga/net/ethernet.hpp"
#include "vfpga/net/ipv4.hpp"
#include "vfpga/net/udp.hpp"
#include "vfpga/virtio/pci_caps.hpp"
#include "vfpga/virtio/virtqueue_driver.hpp"

namespace {

using namespace vfpga;

void BM_Checksum(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Checksum)->Arg(64)->Arg(512)->Arg(1500);

void BM_UdpFrameBuild(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 1);
  const net::Ipv4Addr src = net::Ipv4Addr::from_octets(10, 0, 0, 1);
  const net::Ipv4Addr dst = net::Ipv4Addr::from_octets(10, 0, 0, 2);
  for (auto _ : state) {
    const Bytes udp =
        net::build_udp_datagram(net::UdpHeader{1, 2}, src, dst, payload);
    const Bytes ip = net::build_ipv4_packet(
        net::Ipv4Header{src, dst, net::IpProtocol::Udp}, udp);
    benchmark::DoNotOptimize(net::build_ethernet_frame(
        net::EthernetHeader{{}, {}, net::EtherType::Ipv4}, ip));
  }
}
BENCHMARK(BM_UdpFrameBuild)->Arg(64)->Arg(1024);

void BM_VirtqueueAddHarvest(benchmark::State& state) {
  mem::HostMemory memory;
  virtio::VirtqueueDriver vq{memory, 256,
                             virtio::FeatureSet{
                                 1ull << virtio::feature::kVersion1}};
  const HostAddr buf = memory.allocate(64);
  const virtio::ChainBuffer chain{buf, 64, false};
  u64 token = 0;
  for (auto _ : state) {
    const auto head = vq.add_chain(std::span{&chain, 1}, token++);
    vq.publish();
    // Emulate the device completing instantly.
    const auto& addrs = vq.addresses();
    const u16 used_idx = memory.read_le16(addrs.used + 2);
    memory.write_le32(addrs.used + 4 + 8ull * (used_idx % 256), *head);
    memory.write_le16(addrs.used + 2, static_cast<u16>(used_idx + 1));
    benchmark::DoNotOptimize(vq.harvest_used());
  }
}
BENCHMARK(BM_VirtqueueAddHarvest);

void BM_CapabilityWalk(benchmark::State& state) {
  pcie::ConfigSpace config;
  virtio::VirtioPciLayout layout;
  layout.common = {0, 0x0, virtio::commoncfg::kSize};
  layout.notify = {0, 0x1000, 8};
  layout.notify_off_multiplier = 4;
  layout.isr = {0, 0x40, 1};
  layout.device_specific = {0, 0x100, 20};
  virtio::add_virtio_capabilities(config, layout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(virtio::parse_virtio_capabilities(config));
  }
}
BENCHMARK(BM_CapabilityWalk);

void BM_VirtioRoundTripSim(benchmark::State& state) {
  core::TestbedOptions options;
  options.seed = 99;
  core::VirtioNetTestbed bed{options};
  Bytes payload(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    payload[0] = static_cast<u8>(state.iterations());
    benchmark::DoNotOptimize(bed.udp_round_trip(payload));
  }
}
BENCHMARK(BM_VirtioRoundTripSim)->Arg(64)->Arg(1024);

void BM_XdmaRoundTripSim(benchmark::State& state) {
  core::TestbedOptions options;
  options.seed = 98;
  core::XdmaTestbed bed{options};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bed.write_read_round_trip(static_cast<u64>(state.range(0))));
  }
}
BENCHMARK(BM_XdmaRoundTripSim)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
