// Simulation-core self-benchmark: lane-sharded speedup + determinism.
//
// Runs the FlowGen traffic workload on the sharded LaneSet twice — one
// worker thread (the oracle) and the full worker pool — and gates:
//   - determinism: every statistic except wall-clock is bit-identical
//     between the two runs (the conservative-window invariant at work);
//   - sanity: no echo failed, no cross-lane ring dropped a message,
//     every routed notification was delivered and executed;
//   - speedup: with >= 8 hardware threads, the parallel run must
//     simulate >= 3x the packets per wall-second of the sequential run
//     on the 10k-flow workload. On smaller hosts the ratio is printed
//     but informational — one core cannot exhibit parallelism.
// Writes BENCH_sim_speed.json ($VFPGA_JSON_DIR honoured). Exits
// non-zero on any gate violation.
//
//   --smoke                trimmed workload for CI
//   --stats-only           print ONLY the deterministic stats JSON to
//                          stdout (no file, no wall-clock fields) —
//                          CI byte-diffs this across VFPGA_THREADS
//   --seed N               base seed override (also VFPGA_BENCH_SEED)
//   VFPGA_THREADS=N        worker pool size for the parallel run
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_seed.hpp"
#include "vfpga/harness/parallel.hpp"
#include "vfpga/harness/report.hpp"
#include "vfpga/harness/sim_speed.hpp"

namespace {

using vfpga::harness::SimSpeedConfig;
using vfpga::harness::SimSpeedResult;

/// The deterministic portion of a result as JSON — everything here must
/// match byte for byte across thread counts.
std::string stats_json(const SimSpeedConfig& config,
                       const SimSpeedResult& r) {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"source\": \"sim_speed\",\n"
      "  \"seed\": %llu,\n"
      "  \"lanes\": %u,\n"
      "  \"flows_per_lane\": %u,\n"
      "  \"packets\": %llu,\n"
      "  \"events\": %llu,\n"
      "  \"windows\": %llu,\n"
      "  \"cross_lane_messages\": %llu,\n"
      "  \"cross_lane_received\": %llu,\n"
      "  \"dropped_messages\": %llu,\n"
      "  \"failures\": %llu,\n"
      "  \"flows_created\": %llu,\n"
      "  \"flows_completed\": %llu,\n"
      "  \"flows_abandoned\": %llu,\n"
      "  \"sim_makespan_us\": %.3f,\n"
      "  \"samples\": %llu,\n"
      "  \"latency_us\": {\"mean\": %.6f, \"stddev\": %.6f, "
      "\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f, \"p999\": %.6f, "
      "\"max\": %.6f}\n"
      "}\n",
      static_cast<unsigned long long>(config.seed), r.lanes,
      config.flows_per_lane, static_cast<unsigned long long>(r.packets),
      static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.windows),
      static_cast<unsigned long long>(r.cross_lane_messages),
      static_cast<unsigned long long>(r.cross_lane_received),
      static_cast<unsigned long long>(r.dropped_messages),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.flows_created),
      static_cast<unsigned long long>(r.flows_completed),
      static_cast<unsigned long long>(r.flows_abandoned), r.sim_makespan_us,
      static_cast<unsigned long long>(r.sample_count), r.latency.mean_us,
      r.latency.stddev_us, r.latency.median_us, r.latency.p95_us,
      r.latency.p99_us, r.latency.p999_us, r.latency.max_us);
  return buffer;
}

bool write_json(const SimSpeedConfig& config, const SimSpeedResult& seq,
                const SimSpeedResult& par, double speedup, bool ok) {
  const std::string path =
      vfpga::harness::bench_json_path("BENCH_sim_speed.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fprintf(file,
               "{\n  \"source\": \"sim_speed\",\n  \"seed\": %llu,\n"
               "  \"lanes\": %u,\n  \"threads\": %u,\n"
               "  \"packets\": %llu,\n"
               "  \"pps_sequential\": %.0f,\n  \"pps_parallel\": %.0f,\n"
               "  \"speedup\": %.3f,\n  \"wall_seq_s\": %.3f,\n"
               "  \"wall_par_s\": %.3f,\n  \"deterministic\": %s,\n"
               "  \"ok\": %s,\n  \"stats\": %s}\n",
               static_cast<unsigned long long>(config.seed), seq.lanes,
               par.threads_used,
               static_cast<unsigned long long>(seq.packets),
               seq.packets_per_wall_second, par.packets_per_wall_second,
               speedup, seq.wall_seconds, par.wall_seconds,
               ok ? "true" : "false", ok ? "true" : "false",
               stats_json(config, seq).c_str());
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Bitwise equality of the deterministic fields — the gate compares the
/// rendered JSON so a drifting double shows up as a text diff too.
bool same_stats(const SimSpeedConfig& config, const SimSpeedResult& a,
                const SimSpeedResult& b) {
  return stats_json(config, a) == stats_json(config, b);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  bool stats_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--stats-only") == 0) {
      stats_only = true;
    }
  }

  SimSpeedConfig config;
  config.seed = bench::base_seed(config.seed, argc, argv);
  if (smoke) {
    config.lanes = 4;
    config.flows_per_lane = 64;
    config.packets_per_lane = 200;
    config.size_max_packets = 64;
  }

  if (stats_only) {
    // One run at the environment's thread count; CI byte-diffs the
    // output of VFPGA_THREADS=1 against VFPGA_THREADS=N.
    const SimSpeedResult r = harness::run_sim_speed(config);
    std::fputs(stats_json(config, r).c_str(), stdout);
    return r.failures == 0 && r.dropped_messages == 0 ? 0 : 1;
  }

  std::printf("sim_speed: %u lanes x %u flows, %llu packets/lane%s\n",
              config.lanes, config.flows_per_lane,
              static_cast<unsigned long long>(config.packets_per_lane),
              smoke ? " (smoke)" : "");

  SimSpeedConfig seq_config = config;
  seq_config.threads = 1;
  const SimSpeedResult seq = harness::run_sim_speed(seq_config);
  const SimSpeedResult par = harness::run_sim_speed(config);

  const double speedup =
      seq.packets_per_wall_second > 0
          ? par.packets_per_wall_second / seq.packets_per_wall_second
          : 0;
  std::printf(
      "  threads=1: %8.0f pkt/s (wall %.2fs)\n"
      "  threads=%u: %8.0f pkt/s (wall %.2fs)  speedup %.2fx\n"
      "  packets %llu  events %llu  windows %llu  msgs %llu  "
      "p99 %.2f us\n",
      seq.packets_per_wall_second, seq.wall_seconds, par.threads_used,
      par.packets_per_wall_second, par.wall_seconds, speedup,
      static_cast<unsigned long long>(seq.packets),
      static_cast<unsigned long long>(seq.events),
      static_cast<unsigned long long>(seq.windows),
      static_cast<unsigned long long>(seq.cross_lane_messages),
      seq.latency.p99_us);

  bool ok = true;
  if (!same_stats(config, seq, par)) {
    std::printf("  FAIL: stats differ between 1 and %u threads\n",
                par.threads_used);
    ok = false;
  }
  for (const SimSpeedResult* r : {&seq, &par}) {
    if (r->failures != 0) {
      std::printf("  FAIL: %llu echoes exhausted the retry budget\n",
                  static_cast<unsigned long long>(r->failures));
      ok = false;
    }
    if (r->dropped_messages != 0) {
      std::printf("  FAIL: %llu cross-lane messages dropped\n",
                  static_cast<unsigned long long>(r->dropped_messages));
      ok = false;
    }
    if (r->cross_lane_messages == 0 ||
        r->cross_lane_received != r->cross_lane_messages) {
      std::printf("  FAIL: cross-lane delivery %llu routed, %llu ran\n",
                  static_cast<unsigned long long>(r->cross_lane_messages),
                  static_cast<unsigned long long>(r->cross_lane_received));
      ok = false;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (!smoke && hw >= 8 && par.threads_used >= 8 && speedup < 3.0) {
    std::printf("  FAIL: speedup %.2fx < 3.0x at %u threads (%u hw)\n",
                speedup, par.threads_used, hw);
    ok = false;
  } else if (hw < 8) {
    std::printf("  note: %u hardware threads — speedup informational\n", hw);
  }

  if (!write_json(config, seq, par, speedup, ok)) {
    std::printf("  FAIL: could not write BENCH_sim_speed.json\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
