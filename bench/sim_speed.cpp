// Simulation-core self-benchmark: lane-sharded speedup + determinism.
//
// Runs the FlowGen traffic workload on the sharded LaneSet twice — one
// worker thread (the oracle) and the full worker pool — and gates:
//   - determinism: every statistic except wall-clock is bit-identical
//     between the two runs (the conservative-window invariant at work);
//   - mode equality: under --sync optimistic/auto the WORKLOAD section
//     of the stats must additionally be bit-identical to a conservative
//     run — speculation with rollback may never change simulation
//     results, only the sync-machinery counters;
//   - sanity: no echo failed, no cross-lane ring dropped a message,
//     every routed notification was delivered and executed;
//   - speedup: with >= 8 hardware threads, the parallel run must
//     simulate >= 3x the packets per wall-second of the sequential run
//     on the 10k-flow workload. On smaller hosts the ratio is printed
//     but informational — one core cannot exhibit parallelism.
// Writes BENCH_sim_speed.json ($VFPGA_JSON_DIR honoured). Exits
// non-zero on any gate violation.
//
// `--soak` switches to the flow-table soak instead: a million-slot
// FlowGen table (8 lanes x 125k slots) churned through tick-driven
// batch rounds under the adaptive window controller, gated on tuple/
// flow bookkeeping conservation and the DESIGN.md §15 bytes/flow
// budget. The soak's sparse cross-lane notifications make it the
// speculation-friendly workload: under --sync optimistic it must
// commit at least one speculated window per barrier on average.
// Writes BENCH_sim_soak.json.
//
//   --smoke                trimmed workload for CI (composes with --soak)
//   --soak                 run the million-flow churn soak
//   --sync MODE            conservative (default), optimistic, or auto
//   --stats-only           print ONLY the deterministic stats JSON to
//                          stdout (no file, no wall-clock fields) —
//                          CI byte-diffs this across VFPGA_THREADS
//   --workload-only        with --stats-only: print only the workload
//                          section, which is identical across sync
//                          modes too — CI byte-diffs conservative
//                          against optimistic with this
//   --threads N            worker pool request (env > this > hardware)
//   --seed N               base seed override (also VFPGA_BENCH_SEED)
//   VFPGA_THREADS=N        worker pool size for the parallel run
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_seed.hpp"
#include "vfpga/harness/parallel.hpp"
#include "vfpga/harness/report.hpp"
#include "vfpga/harness/sim_speed.hpp"

namespace {

using vfpga::harness::SimSpeedConfig;
using vfpga::harness::SimSpeedResult;

const char* sync_name(vfpga::sim::SyncMode mode) {
  switch (mode) {
    case vfpga::sim::SyncMode::kConservative:
      return "conservative";
    case vfpga::sim::SyncMode::kOptimistic:
      return "optimistic";
    case vfpga::sim::SyncMode::kAuto:
      return "auto";
  }
  return "?";
}

/// The workload section: pure simulation results, identical across
/// thread counts AND sync modes (the mode-equality gate byte-diffs it).
std::string workload_json(const SimSpeedConfig& config,
                          const SimSpeedResult& r) {
  char buffer[1536];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"source\": \"sim_speed\",\n"
      "  \"seed\": %llu,\n"
      "  \"lanes\": %u,\n"
      "  \"flows_per_lane\": %u,\n"
      "  \"packets\": %llu,\n"
      "  \"events\": %llu,\n"
      "  \"cross_lane_messages\": %llu,\n"
      "  \"cross_lane_received\": %llu,\n"
      "  \"failures\": %llu,\n"
      "  \"flows_created\": %llu,\n"
      "  \"flows_completed\": %llu,\n"
      "  \"flows_abandoned\": %llu,\n"
      "  \"sim_makespan_us\": %.3f,\n"
      "  \"samples\": %llu,\n"
      "  \"latency_us\": {\"mean\": %.6f, \"stddev\": %.6f, "
      "\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f, \"p999\": %.6f, "
      "\"max\": %.6f}\n"
      "}\n",
      static_cast<unsigned long long>(config.seed), r.lanes,
      config.flows_per_lane, static_cast<unsigned long long>(r.packets),
      static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.cross_lane_messages),
      static_cast<unsigned long long>(r.cross_lane_received),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.flows_created),
      static_cast<unsigned long long>(r.flows_completed),
      static_cast<unsigned long long>(r.flows_abandoned),
      r.sim_makespan_us,
      static_cast<unsigned long long>(r.sample_count), r.latency.mean_us,
      r.latency.stddev_us, r.latency.median_us, r.latency.p95_us,
      r.latency.p99_us, r.latency.p999_us, r.latency.max_us);
  return buffer;
}

/// The sync-machinery section: deterministic across thread counts for a
/// FIXED mode, but mode-dependent by nature (speculation retains fired
/// arena nodes, executes windows conservative skip-ahead would jump,
/// and retunes the adaptive window per round instead of per window).
std::string sync_json(const SimSpeedConfig& config, const SimSpeedResult& r) {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"mode\": \"%s\",\n"
      "  \"windows\": %llu,\n"
      "  \"barriers\": %llu,\n"
      "  \"speculative_rounds\": %llu,\n"
      "  \"speculated_windows\": %llu,\n"
      "  \"rollbacks\": %llu,\n"
      "  \"checkpoint_bytes\": %llu,\n"
      "  \"dropped_messages\": %llu,\n"
      "  \"window_growths\": %llu,\n"
      "  \"window_shrinks\": %llu,\n"
      "  \"arena_nodes\": %llu,\n"
      "  \"smallfn_heap_fallbacks\": %llu,\n"
      "  \"residency\": [",
      sync_name(config.sync), static_cast<unsigned long long>(r.windows),
      static_cast<unsigned long long>(r.barriers),
      static_cast<unsigned long long>(r.speculative_rounds),
      static_cast<unsigned long long>(r.speculated_windows),
      static_cast<unsigned long long>(r.rollbacks),
      static_cast<unsigned long long>(r.checkpoint_bytes),
      static_cast<unsigned long long>(r.dropped_messages),
      static_cast<unsigned long long>(r.window_growths),
      static_cast<unsigned long long>(r.window_shrinks),
      static_cast<unsigned long long>(r.arena_nodes),
      static_cast<unsigned long long>(r.smallfn_heap_fallbacks));
  std::string out = buffer;
  for (std::size_t i = 0; i < r.residency.size(); ++i) {
    const auto& lane = r.residency[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"busy\": %llu, \"idle\": %llu, "
                  "\"barrier_waits\": %llu}",
                  i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(lane.busy_windows),
                  static_cast<unsigned long long>(lane.idle_windows),
                  static_cast<unsigned long long>(lane.barrier_waits));
    out += buffer;
  }
  out += "]\n}\n";
  return out;
}

/// The full deterministic stats — workload plus sync section. Byte-
/// identical across thread counts for a fixed mode; the workload part
/// alone is byte-identical across modes too.
std::string stats_json(const SimSpeedConfig& config,
                       const SimSpeedResult& r) {
  std::string workload = workload_json(config, r);
  // Splice the sync object in before the closing brace.
  workload.erase(workload.rfind("}\n"));
  return workload + ",  \"sync\": " + sync_json(config, r) + "}\n";
}

bool write_json(const SimSpeedConfig& config, const SimSpeedResult& seq,
                const SimSpeedResult& par, double speedup, bool ok) {
  const std::string path =
      vfpga::harness::bench_json_path("BENCH_sim_speed.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fprintf(file,
               "{\n  \"source\": \"sim_speed\",\n  \"seed\": %llu,\n"
               "  \"lanes\": %u,\n  \"threads\": %u,\n"
               "  \"sync\": \"%s\",\n"
               "  \"packets\": %llu,\n"
               "  \"pps_sequential\": %.0f,\n  \"pps_parallel\": %.0f,\n"
               "  \"speedup\": %.3f,\n  \"wall_seq_s\": %.3f,\n"
               "  \"wall_par_s\": %.3f,\n  \"deterministic\": %s,\n"
               "  \"ok\": %s,\n  \"stats\": %s}\n",
               static_cast<unsigned long long>(config.seed), seq.lanes,
               par.threads_used, sync_name(config.sync),
               static_cast<unsigned long long>(seq.packets),
               seq.packets_per_wall_second, par.packets_per_wall_second,
               speedup, seq.wall_seconds, par.wall_seconds,
               ok ? "true" : "false", ok ? "true" : "false",
               stats_json(config, seq).c_str());
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Bitwise equality of the deterministic fields — the gate compares the
/// rendered JSON so a drifting double shows up as a text diff too.
bool same_stats(const SimSpeedConfig& config, const SimSpeedResult& a,
                const SimSpeedResult& b) {
  return stats_json(config, a) == stats_json(config, b);
}

/// DESIGN.md §15: flow-table bytes per slot at the million-slot scale.
constexpr double kSoakBytesPerFlowBudget = 48.0;

int run_soak(bool smoke, unsigned threads, vfpga::u64 seed,
             vfpga::sim::SyncMode sync) {
  using vfpga::harness::FlowSoakConfig;
  using vfpga::harness::FlowSoakResult;
  FlowSoakConfig config;
  config.seed = seed;
  config.threads = threads;
  config.sync = sync;
  if (smoke) {
    config.flows_per_lane = 2048;
    config.host_ips_per_lane = 2;
    config.ticks = 16;
    config.slots_per_tick = 1024;
  }

  std::printf("sim_speed --soak: %u lanes x %u slots (%s table, %s "
              "sync)%s\n",
              config.lanes, config.flows_per_lane,
              smoke ? "trimmed" : "million-slot", sync_name(sync),
              smoke ? " (smoke)" : "");
  const FlowSoakResult r = vfpga::harness::run_flow_soak(config);
  std::printf(
      "  slots %llu  packets %llu  flows created %llu (completed %llu, "
      "live %llu)\n"
      "  windows %llu over %llu barriers (+%llu grow, -%llu shrink)  "
      "msgs %llu\n"
      "  speculated %llu windows in %llu rounds, %llu rollbacks, "
      "ckpt %.1f KiB\n"
      "  footprint %.1f MiB = %.1f B/flow  wall %.2fs (%.0f pkt/s at "
      "%u threads)\n",
      static_cast<unsigned long long>(r.table_slots),
      static_cast<unsigned long long>(r.packets),
      static_cast<unsigned long long>(r.flows_created),
      static_cast<unsigned long long>(r.flows_completed),
      static_cast<unsigned long long>(r.flows_open),
      static_cast<unsigned long long>(r.windows),
      static_cast<unsigned long long>(r.barriers),
      static_cast<unsigned long long>(r.window_growths),
      static_cast<unsigned long long>(r.window_shrinks),
      static_cast<unsigned long long>(r.cross_lane_messages),
      static_cast<unsigned long long>(r.speculated_windows),
      static_cast<unsigned long long>(r.speculative_rounds),
      static_cast<unsigned long long>(r.rollbacks),
      static_cast<double>(r.checkpoint_bytes) / 1024.0,
      static_cast<double>(r.footprint_bytes) / (1024.0 * 1024.0),
      r.bytes_per_flow, r.wall_seconds, r.packets_per_wall_second,
      r.threads_used);

  bool ok = true;
  // Real churn: the table turned over (identities exceed slots) and the
  // population stayed level to the end.
  if (r.flows_created <= r.table_slots || r.flows_open != r.table_slots) {
    std::printf("  FAIL: churn did not turn the table over "
                "(created %llu, live %llu, slots %llu)\n",
                static_cast<unsigned long long>(r.flows_created),
                static_cast<unsigned long long>(r.flows_open),
                static_cast<unsigned long long>(r.table_slots));
    ok = false;
  }
  if (r.cross_lane_received != r.cross_lane_messages ||
      r.cross_lane_messages == 0) {
    std::printf("  FAIL: cross-lane delivery %llu routed, %llu ran\n",
                static_cast<unsigned long long>(r.cross_lane_messages),
                static_cast<unsigned long long>(r.cross_lane_received));
    ok = false;
  }
  // The bytes/flow budget is calibrated at the million-slot table; the
  // smoke table is too small to amortize the fixed per-IP steer caches,
  // so there the number is printed but informational.
  if (!smoke && r.bytes_per_flow > kSoakBytesPerFlowBudget) {
    std::printf("  FAIL: %.1f bytes/flow exceeds the %.0f B budget\n",
                r.bytes_per_flow, kSoakBytesPerFlowBudget);
    ok = false;
  }
  // The speculation payoff gate: on this sparse-crossing workload an
  // optimistic run must commit at least one extra window per barrier on
  // average — otherwise speculation is paying checkpoint cost for no
  // committed progress.
  if (sync == vfpga::sim::SyncMode::kOptimistic && r.barriers > 0 &&
      r.speculated_windows < r.barriers) {
    std::printf("  FAIL: %llu speculated windows over %llu barriers "
                "(< 1 per barrier)\n",
                static_cast<unsigned long long>(r.speculated_windows),
                static_cast<unsigned long long>(r.barriers));
    ok = false;
  }

  const std::string path =
      vfpga::harness::bench_json_path("BENCH_sim_soak.json");
  if (std::FILE* file = std::fopen(path.c_str(), "w")) {
    std::fprintf(
        file,
        "{\n  \"source\": \"sim_soak\",\n  \"seed\": %llu,\n"
        "  \"sync\": \"%s\",\n"
        "  \"lanes\": %u,\n  \"table_slots\": %llu,\n"
        "  \"packets\": %llu,\n  \"flows_created\": %llu,\n"
        "  \"flows_completed\": %llu,\n  \"flows_open\": %llu,\n"
        "  \"windows\": %llu,\n  \"barriers\": %llu,\n"
        "  \"window_growths\": %llu,\n"
        "  \"speculative_rounds\": %llu,\n"
        "  \"speculated_windows\": %llu,\n  \"rollbacks\": %llu,\n"
        "  \"checkpoint_bytes\": %llu,\n"
        "  \"cross_lane_messages\": %llu,\n"
        "  \"footprint_bytes\": %llu,\n  \"bytes_per_flow\": %.2f,\n"
        "  \"wall_seconds\": %.3f,\n  \"ok\": %s\n}\n",
        static_cast<unsigned long long>(config.seed), sync_name(sync),
        r.lanes, static_cast<unsigned long long>(r.table_slots),
        static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.flows_created),
        static_cast<unsigned long long>(r.flows_completed),
        static_cast<unsigned long long>(r.flows_open),
        static_cast<unsigned long long>(r.windows),
        static_cast<unsigned long long>(r.barriers),
        static_cast<unsigned long long>(r.window_growths),
        static_cast<unsigned long long>(r.speculative_rounds),
        static_cast<unsigned long long>(r.speculated_windows),
        static_cast<unsigned long long>(r.rollbacks),
        static_cast<unsigned long long>(r.checkpoint_bytes),
        static_cast<unsigned long long>(r.cross_lane_messages),
        static_cast<unsigned long long>(r.footprint_bytes), r.bytes_per_flow,
        r.wall_seconds, ok ? "true" : "false");
    std::fclose(file);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("  FAIL: could not write BENCH_sim_soak.json\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  bool stats_only = false;
  bool workload_only = false;
  bool soak = false;
  sim::SyncMode sync = sim::SyncMode::kConservative;
  for (int i = 1; i < argc; ++i) {
    const char* mode = nullptr;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--stats-only") == 0) {
      stats_only = true;
    } else if (std::strcmp(argv[i], "--workload-only") == 0) {
      workload_only = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--sync") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strncmp(argv[i], "--sync=", 7) == 0) {
      mode = argv[i] + 7;
    }
    if (mode != nullptr) {
      if (std::strcmp(mode, "conservative") == 0) {
        sync = sim::SyncMode::kConservative;
      } else if (std::strcmp(mode, "optimistic") == 0) {
        sync = sim::SyncMode::kOptimistic;
      } else if (std::strcmp(mode, "auto") == 0) {
        sync = sim::SyncMode::kAuto;
      } else {
        std::fprintf(stderr,
                     "error: --sync expects conservative, optimistic or "
                     "auto, got \"%s\"\n",
                     mode);
        return 2;
      }
    }
  }

  SimSpeedConfig config;
  config.seed = bench::base_seed(config.seed, argc, argv);
  config.threads = bench::cli_threads(argc, argv);
  config.sync = sync;
  if (soak) {
    return run_soak(smoke, config.threads, config.seed, sync);
  }
  if (smoke) {
    config.lanes = 4;
    config.flows_per_lane = 64;
    config.packets_per_lane = 200;
    config.size_max_packets = 64;
  }

  if (stats_only) {
    // One run at the environment's thread count; CI byte-diffs the full
    // output of VFPGA_THREADS=1 against VFPGA_THREADS=N per mode, and
    // the --workload-only section of conservative against optimistic.
    const SimSpeedResult r = harness::run_sim_speed(config);
    std::fputs(workload_only ? workload_json(config, r).c_str()
                             : stats_json(config, r).c_str(),
               stdout);
    return r.failures == 0 && r.dropped_messages == 0 ? 0 : 1;
  }

  std::printf("sim_speed: %u lanes x %u flows, %llu packets/lane, %s "
              "sync%s\n",
              config.lanes, config.flows_per_lane,
              static_cast<unsigned long long>(config.packets_per_lane),
              sync_name(sync), smoke ? " (smoke)" : "");

  SimSpeedConfig seq_config = config;
  seq_config.threads = 1;
  const SimSpeedResult seq = harness::run_sim_speed(seq_config);
  const SimSpeedResult par = harness::run_sim_speed(config);

  const double speedup =
      seq.packets_per_wall_second > 0
          ? par.packets_per_wall_second / seq.packets_per_wall_second
          : 0;
  std::printf(
      "  threads=1: %8.0f pkt/s (wall %.2fs)\n"
      "  threads=%u: %8.0f pkt/s (wall %.2fs)  speedup %.2fx\n"
      "  packets %llu  events %llu  windows %llu over %llu barriers  "
      "msgs %llu  p99 %.2f us\n"
      "  speculated %llu windows, %llu rollbacks, ckpt %.1f KiB\n",
      seq.packets_per_wall_second, seq.wall_seconds, par.threads_used,
      par.packets_per_wall_second, par.wall_seconds, speedup,
      static_cast<unsigned long long>(seq.packets),
      static_cast<unsigned long long>(seq.events),
      static_cast<unsigned long long>(seq.windows),
      static_cast<unsigned long long>(seq.barriers),
      static_cast<unsigned long long>(seq.cross_lane_messages),
      seq.latency.p99_us,
      static_cast<unsigned long long>(seq.speculated_windows),
      static_cast<unsigned long long>(seq.rollbacks),
      static_cast<double>(seq.checkpoint_bytes) / 1024.0);

  bool ok = true;
  if (!same_stats(config, seq, par)) {
    std::printf("  FAIL: stats differ between 1 and %u threads\n",
                par.threads_used);
    ok = false;
  }
  if (sync != sim::SyncMode::kConservative) {
    // Mode equality: the same workload under conservative sync must
    // produce the byte-identical workload section. Speculation may only
    // move the sync-machinery counters.
    SimSpeedConfig cons_config = seq_config;
    cons_config.sync = sim::SyncMode::kConservative;
    const SimSpeedResult cons = harness::run_sim_speed(cons_config);
    if (workload_json(cons_config, cons) != workload_json(config, seq)) {
      std::printf("  FAIL: %s-sync workload stats differ from "
                  "conservative\n",
                  sync_name(sync));
      ok = false;
    }
  }
  for (const SimSpeedResult* r : {&seq, &par}) {
    if (r->failures != 0) {
      std::printf("  FAIL: %llu echoes exhausted the retry budget\n",
                  static_cast<unsigned long long>(r->failures));
      ok = false;
    }
    if (r->dropped_messages != 0) {
      std::printf("  FAIL: %llu cross-lane messages dropped\n",
                  static_cast<unsigned long long>(r->dropped_messages));
      ok = false;
    }
    if (r->cross_lane_messages == 0 ||
        r->cross_lane_received != r->cross_lane_messages) {
      std::printf("  FAIL: cross-lane delivery %llu routed, %llu ran\n",
                  static_cast<unsigned long long>(r->cross_lane_messages),
                  static_cast<unsigned long long>(r->cross_lane_received));
      ok = false;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (!smoke && hw >= 8 && par.threads_used >= 8 && speedup < 3.0) {
    std::printf("  FAIL: speedup %.2fx < 3.0x at %u threads (%u hw)\n",
                speedup, par.threads_used, hw);
    ok = false;
  } else if (hw < 8) {
    std::printf("  note: %u hardware threads — speedup informational\n", hw);
  }

  if (!write_json(config, seq, par, speedup, ok)) {
    std::printf("  FAIL: could not write BENCH_sim_speed.json\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
