// STREAMING: large-payload throughput over the zero-copy datapath.
//
// Sweeps jumbo UDP payloads (1 KB..60 KB) x ring format x datapath
// shape {copy, chained, indirect, mergeable} through the echo testbed,
// plus two wire-MTU segmentation cells {seg-sw, tso} where the datagram
// no longer fits one frame: seg-sw slices it on the host (software GSO,
// per-segment header/checksum work on the CPU), tso hands the device
// ONE superframe (HOST_UFO) and receives the echo GRO-coalesced
// (GUEST_UFO). Reports goodput (Gb/s, both directions) and p50/p99
// round-trip latency. Acceptance gates, per ring format:
//   - indirect >= chained >= copy at payloads >= 4 KB (as before);
//   - tso >= seg-sw at payloads >= 4 KB (the offload must beat the
//     software fallback it replaces);
//   - tso >= indirect at payloads >= 16 KB (segmentation offload at
//     wire MTU must at least match the jumbo-MTU zero-copy path);
// with a near-tie tolerance where costs cross. The mergeable cell must
// negotiate MRG_RXBUF and reassemble spans; the tso cell must negotiate
// the offload, submit superframes and see GRO coalescing end to end.
// Exits non-zero on any gate violation.
//
// The sweep's cells run sharded across event lanes
// (run_streaming_sweep): bit-identical numbers at any worker-thread
// count, in the canonical packed-major / payload / mode order printed
// below.
//
//   --smoke                trimmed sweep for CI
//   --threads N            worker threads for the sweep lanes
//                          (env > this > hardware; VFPGA_THREADS wins)
//   --seed N               base seed override (also VFPGA_BENCH_SEED)
//   VFPGA_ITERATIONS=200   measured round trips per cell
//   VFPGA_SEED=2024        base seed
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_seed.hpp"
#include "vfpga/harness/report.hpp"
#include "vfpga/harness/streaming.hpp"

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  harness::StreamingConfig config = harness::StreamingConfig::from_env();
  config.seed = bench::base_seed(config.seed, argc, argv);
  config.threads = bench::cli_threads(argc, argv);
  if (smoke) {
    config.payloads = {4096, 16384};
    config.iterations = std::min<u64>(config.iterations, 120);
    config.warmup = 4;
  }

  // One lane-sharded pass computes every cell; the loops below read
  // sweep.cells in the exact order this bench prints (packed-major,
  // then payload, then the six modes).
  const harness::StreamingSweepResult sweep =
      harness::run_streaming_sweep(config);

  const std::vector<harness::StreamMode> modes = {
      harness::StreamMode::kCopy,      harness::StreamMode::kChained,
      harness::StreamMode::kIndirect,  harness::StreamMode::kMergeable,
      harness::StreamMode::kSegmentedSw, harness::StreamMode::kOffload};

  std::printf(
      "streaming_throughput: %llu round trips/cell, mtu %u (wire %u)%s\n\n"
      "%6s %10s %8s | %8s %8s %8s | %9s %7s %7s\n",
      static_cast<unsigned long long>(config.iterations), config.mtu,
      config.wire_mtu, smoke ? " (smoke)" : "", "ring", "mode", "payload",
      "Gb/s", "p50 us", "p99 us", "sg segs", "merged", "gro");

  bool ok = true;
  std::vector<harness::StreamingCellResult> cells;
  std::size_t cell_index = 0;
  for (const bool packed : {false, true}) {
    for (const u64 payload : config.payloads) {
      harness::StreamingCellResult row[6];
      for (std::size_t m = 0; m < modes.size(); ++m) {
        row[m] = sweep.cells[cell_index++];
        const harness::StreamingCellResult& r = row[m];
        std::printf(
            "%6s %10s %8llu | %8.2f %8.1f %8.1f | %9llu %7llu %7llu\n",
            packed ? "packed" : "split", harness::stream_mode_name(r.mode),
            static_cast<unsigned long long>(payload), r.gbps,
            r.rtt_us.percentile(50), r.rtt_us.percentile(99),
            static_cast<unsigned long long>(r.tx_sg_segments),
            static_cast<unsigned long long>(r.rx_merged_frames),
            static_cast<unsigned long long>(r.gro_coalesced));
        if (r.failures != 0) {
          std::printf("  FAIL: %llu round trips failed (%s)\n",
                      static_cast<unsigned long long>(r.failures),
                      harness::stream_mode_name(r.mode));
          ok = false;
        }
        cells.push_back(r);
      }

      const harness::StreamingCellResult& copy = row[0];
      const harness::StreamingCellResult& chained = row[1];
      const harness::StreamingCellResult& indirect = row[2];
      const harness::StreamingCellResult& mergeable = row[3];
      const harness::StreamingCellResult& seg_sw = row[4];
      const harness::StreamingCellResult& tso = row[5];
      if (payload >= 4096) {
        // Near-tie tolerance where the copy and mapping costs cross.
        const double tol = payload <= 4096 ? 0.02 : 0.01;
        if (indirect.gbps < chained.gbps * (1.0 - tol)) {
          std::printf("  FAIL: indirect %.2f Gb/s < chained %.2f Gb/s "
                      "(%s, payload %llu)\n",
                      indirect.gbps, chained.gbps,
                      packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
        if (chained.gbps < copy.gbps * (1.0 - tol)) {
          std::printf("  FAIL: chained %.2f Gb/s < copy %.2f Gb/s "
                      "(%s, payload %llu)\n",
                      chained.gbps, copy.gbps, packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
        if (tso.gbps < seg_sw.gbps * (1.0 - tol)) {
          std::printf("  FAIL: tso %.2f Gb/s < seg-sw %.2f Gb/s "
                      "(%s, payload %llu)\n",
                      tso.gbps, seg_sw.gbps, packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
      }
      if (payload >= 16384) {
        // The headline gate: at large payloads the offloaded wire-MTU
        // path must at least match the jumbo-MTU indirect-sg path the
        // previous sweep crowned (one superframe each way, segmentation
        // on the fabric, one interrupt, one stack traversal).
        if (tso.gbps < indirect.gbps * (1.0 - 0.01)) {
          std::printf("  FAIL: tso %.2f Gb/s < indirect %.2f Gb/s "
                      "(%s, payload %llu)\n",
                      tso.gbps, indirect.gbps, packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
      }
      if (!mergeable.mergeable_negotiated) {
        std::printf("  FAIL: MRG_RXBUF did not negotiate (%s)\n",
                    packed ? "packed" : "split");
        ok = false;
      }
      if (payload > config.mrg_buffer_bytes &&
          mergeable.rx_merged_frames == 0) {
        std::printf("  FAIL: no mergeable spans at payload %llu (%s)\n",
                    static_cast<unsigned long long>(payload),
                    packed ? "packed" : "split");
        ok = false;
      }
      if (copy.tx_sg_segments != 0) {
        std::printf("  FAIL: copy mode posted %llu sg segments\n",
                    static_cast<unsigned long long>(copy.tx_sg_segments));
        ok = false;
      }
      if (!tso.tso_negotiated) {
        std::printf("  FAIL: HOST_UFO did not negotiate (%s)\n",
                    packed ? "packed" : "split");
        ok = false;
      }
      const u64 wire_payload = static_cast<u64>(config.wire_mtu) - 28;
      if (payload > wire_payload) {
        if (tso.tx_superframes == 0 || tso.gro_coalesced == 0 ||
            tso.rx_gro_frames == 0) {
          std::printf("  FAIL: tso cell saw no offload traffic "
                      "(superframes %llu, gro %llu/%llu) (%s, payload "
                      "%llu)\n",
                      static_cast<unsigned long long>(tso.tx_superframes),
                      static_cast<unsigned long long>(tso.gro_coalesced),
                      static_cast<unsigned long long>(tso.rx_gro_frames),
                      packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
        if (seg_sw.sw_gso_segments == 0) {
          std::printf("  FAIL: seg-sw cell produced no software segments "
                      "(%s, payload %llu)\n",
                      packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
        if (tso.sw_gso_segments != 0) {
          std::printf("  FAIL: tso cell fell back to software GSO "
                      "(%llu segments) (%s, payload %llu)\n",
                      static_cast<unsigned long long>(tso.sw_gso_segments),
                      packed ? "packed" : "split",
                      static_cast<unsigned long long>(payload));
          ok = false;
        }
      }
    }
    std::printf("\n");
  }

  // Machine-readable export for CI artifact upload.
  const std::string path = harness::bench_json_path("BENCH_streaming.json");
  if (std::FILE* file = std::fopen(path.c_str(), "w")) {
    std::fprintf(file,
                 "{\n  \"source\": \"streaming_throughput\",\n"
                 "  \"iterations\": %llu,\n  \"mtu\": %u,\n"
                 "  \"wire_mtu\": %u,\n  \"cells\": [",
                 static_cast<unsigned long long>(config.iterations),
                 config.mtu, config.wire_mtu);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const harness::StreamingCellResult& r = cells[i];
      std::fprintf(
          file,
          "%s\n    {\"ring\": \"%s\", \"mode\": \"%s\", "
          "\"payload_bytes\": %llu, \"gbps\": %.4f, \"p50_us\": %.3f, "
          "\"p99_us\": %.3f, \"tx_sg_segments\": %llu, "
          "\"rx_merged_frames\": %llu, \"tx_superframes\": %llu, "
          "\"sw_gso_segments\": %llu, \"gro_coalesced\": %llu, "
          "\"rx_gro_frames\": %llu, \"failures\": %llu}",
          i == 0 ? "" : ",", r.packed ? "packed" : "split",
          harness::stream_mode_name(r.mode),
          static_cast<unsigned long long>(r.payload), r.gbps,
          r.rtt_us.percentile(50), r.rtt_us.percentile(99),
          static_cast<unsigned long long>(r.tx_sg_segments),
          static_cast<unsigned long long>(r.rx_merged_frames),
          static_cast<unsigned long long>(r.tx_superframes),
          static_cast<unsigned long long>(r.sw_gso_segments),
          static_cast<unsigned long long>(r.gro_coalesced),
          static_cast<unsigned long long>(r.rx_gro_frames),
          static_cast<unsigned long long>(r.failures));
    }
    std::fputs("\n  ]\n}\n", file);
    std::fclose(file);
    std::printf("[json written to %s]\n", path.c_str());
  }

  return ok ? 0 : 1;
}
