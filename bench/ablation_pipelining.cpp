// ABL-PIPE: request pipelining.
//
// The paper measures strictly serialized round trips (one packet in
// flight). Queue-based interfaces change the picture under load: a
// VirtIO driver can publish a burst of buffers and take ONE interrupt
// for the batch (NAPI), while the vendor character device serializes —
// each write()/read() pair blocks on its own completion interrupts.
// This bench sweeps the burst size and reports per-packet cost and
// packet rate for both stacks.
#include <cstdio>
#include <cstdlib>

#include "bench_seed.hpp"
#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace {

using namespace vfpga;

constexpr u64 kPayload = 256;

u64 iterations() {
  if (const char* env = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<u64>(v) / 4 + 1;
    }
  }
  return 4'000;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = bench::base_seed(71, argc, argv);
  const u64 bursts = iterations();
  std::printf("ABL-PIPE -- burst pipelining, %llu bursts/point, %llu B "
              "payload\n\n",
              static_cast<unsigned long long>(bursts),
              static_cast<unsigned long long>(kPayload));
  std::printf("%-22s %8s %16s %14s\n", "configuration", "burst",
              "us/packet", "kpackets/s");

  for (u64 burst : {u64{1}, u64{4}, u64{16}}) {
    core::TestbedOptions options;
    options.seed = seed + burst;
    core::VirtioNetTestbed bed{options};
    Bytes payload(kPayload, 1);

    const sim::SimTime start = bed.thread().now();
    u64 delivered = 0;
    for (u64 b = 0; b < bursts; ++b) {
      for (u64 i = 0; i < burst; ++i) {
        payload[0] = static_cast<u8>(b + i);
        if (!bed.socket().sendto(bed.thread(), bed.fpga_ip(),
                                 bed.options().fpga_udp_port, payload)) {
          std::puts("send failed");
          return 1;
        }
      }
      for (u64 i = 0; i < burst; ++i) {
        if (bed.socket().recvfrom(bed.thread()).has_value()) {
          ++delivered;
        }
      }
    }
    const double total_us = (bed.thread().now() - start).micros();
    const double per_packet = total_us / static_cast<double>(delivered);
    std::printf("%-22s %8llu %16.2f %14.1f\n", "virtio socket",
                static_cast<unsigned long long>(burst), per_packet,
                1e3 / per_packet);
    if (delivered != bursts * burst) {
      std::printf("  (!) delivered %llu of %llu\n",
                  static_cast<unsigned long long>(delivered),
                  static_cast<unsigned long long>(bursts * burst));
    }
  }

  {
    // The char-device path cannot pipeline: every transfer blocks.
    core::TestbedOptions options;
    options.seed = seed + 8;
    core::XdmaTestbed bed{options};
    const u64 wire = core::virtio_wire_bytes(kPayload);
    const sim::SimTime start = bed.thread().now();
    u64 delivered = 0;
    for (u64 i = 0; i < bursts; ++i) {
      if (bed.write_read_round_trip(wire).ok) {
        ++delivered;
      }
    }
    const double total_us = (bed.thread().now() - start).micros();
    const double per_packet = total_us / static_cast<double>(delivered);
    std::printf("%-22s %8u %16.2f %14.1f\n", "xdma char device", 1,
                per_packet, 1e3 / per_packet);
  }

  std::puts(
      "\nReading: batching amortizes the VirtIO receive path (one\n"
      "interrupt + one NAPI poll serve the whole burst) — the queue-based\n"
      "interface's throughput headroom that the serialized char-device\n"
      "semantics cannot express. The paper's one-in-flight measurement is\n"
      "the burst=1 row.");
  return 0;
}
