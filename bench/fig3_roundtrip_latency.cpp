// FIG3: Round-trip latency with VirtIO and vendor-provided device
// drivers (paper Fig. 3).
//
// Sweeps payloads 64 B..1 KB, 50,000 packets each (VFPGA_ITERATIONS to
// override), on both testbeds, and prints the distribution summary plus
// ASCII histograms of the latency distributions.
#include <cstdio>

#include "vfpga/harness/parallel.hpp"
#include "vfpga/harness/report.hpp"

int main() {
  using namespace vfpga;
  harness::ExperimentConfig config = harness::ExperimentConfig::from_env();
  const auto [virtio, xdma] = harness::run_both_sweeps_parallel(config);
  std::fputs(harness::render_fig3(virtio, xdma, /*with_histograms=*/true)
                 .c_str(),
             stdout);
  std::fputs(harness::render_footer(config, virtio, xdma).c_str(), stdout);
  const std::string csv =
      harness::maybe_export_csv(virtio, xdma, "fig3_roundtrip_latency");
  if (!csv.empty()) {
    std::printf("[csv written to %s]\n", csv.c_str());
  }
  const std::string json = harness::write_latency_json(
      config, virtio, xdma, "fig3_roundtrip_latency");
  if (!json.empty()) {
    std::printf("[json written to %s]\n", json.c_str());
  }
  return 0;
}
