// Virtio-blk IOPS/latency sweep: interrupt vs reactor-polled completion.
//
// For each (payload x queue-depth) cell both completion modes run the
// same fixed-depth random read/write workload on the same testbed seed,
// reporting p50/p99/p99.9 request latency and IOPS. Acceptance gates:
//   - at depth >= 8, reactor-polled p50 AND p99 <= the interrupt
//     path's, for every payload (the poller skips IRQ entry and the
//     scheduler wake-up, so it must not be slower at saturation);
//   - IOPS is non-decreasing in queue depth (2% tolerance) for every
//     (mode, payload) — deeper queues amortize per-op host costs;
//   - no completion carried a non-OK status byte.
// Writes BENCH_blk.json ($VFPGA_JSON_DIR honoured). Exits non-zero on
// any gate violation.
//
// The sweep's cells run sharded across event lanes (run_blk_sweep):
// bit-identical numbers at any worker-thread count, in the canonical
// payload-major / depth / {interrupt, reactor} order printed below.
//
//   --smoke                trimmed sweep for CI
//   --stats-only           print ONLY the deterministic per-cell JSON to
//                          stdout — CI byte-diffs this across
//                          VFPGA_THREADS (no gates, no file)
//   --threads N            worker threads for the sweep lanes
//                          (env > this > hardware; VFPGA_THREADS wins)
//   --seed N               base seed override (also VFPGA_BENCH_SEED)
//   VFPGA_ITERATIONS=400   measured requests per cell
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_seed.hpp"
#include "vfpga/harness/blk_bench.hpp"
#include "vfpga/harness/report.hpp"

namespace {

using vfpga::harness::BlkCellResult;
using vfpga::harness::BlkCompletionMode;

const char* mode_name(BlkCompletionMode mode) {
  return mode == BlkCompletionMode::kInterrupt ? "interrupt" : "reactor";
}

bool write_json(const vfpga::harness::BlkBenchConfig& config,
                const std::vector<BlkCellResult>& cells, bool ok) {
  const std::string path = vfpga::harness::bench_json_path("BENCH_blk.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fprintf(file,
               "{\n  \"source\": \"blk_iops\",\n  \"seed\": %llu,\n"
               "  \"ops_per_cell\": %u,\n  \"cells\": [",
               static_cast<unsigned long long>(config.seed),
               config.ops_per_cell);
  bool first = true;
  for (const BlkCellResult& r : cells) {
    std::fprintf(
        file,
        "%s\n    {\"mode\": \"%s\", \"payload\": %u, \"queue_depth\": %u, "
        "\"ops\": %llu, \"failures\": %llu, \"iops\": %.1f, "
        "\"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f}",
        first ? "" : ",", mode_name(r.mode), r.payload, r.queue_depth,
        static_cast<unsigned long long>(r.ops),
        static_cast<unsigned long long>(r.failures), r.iops,
        r.latency_us.percentile(50), r.latency_us.percentile(99),
        r.latency_us.percentile(99.9));
    first = false;
  }
  std::fprintf(file, "\n  ],\n  \"ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vfpga;
  bool smoke = false;
  bool stats_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--stats-only") == 0) {
      stats_only = true;
    }
  }

  harness::BlkBenchConfig config = harness::BlkBenchConfig::from_env();
  config.seed = bench::base_seed(config.seed, argc, argv);
  config.threads = bench::cli_threads(argc, argv);
  if (smoke) {
    config.payloads = {512, 65536};
    config.queue_depths = {1, 8};
    config.ops_per_cell = 120;
    config.warmup_ops = 16;
  }

  // One lane-sharded pass computes every cell; the loops below only
  // read sweep.cells, which run_blk_sweep orders exactly as this bench
  // prints: payload-major, then depth, then {interrupt, reactor}.
  const harness::BlkSweepResult sweep = harness::run_blk_sweep(config);

  if (stats_only) {
    std::printf("{\n  \"source\": \"blk_iops\",\n  \"seed\": %llu,\n"
                "  \"lane_windows\": %llu,\n  \"lane_messages\": %llu,\n"
                "  \"cells_aggregated\": %u,\n  \"cells\": [",
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned long long>(sweep.lane_windows),
                static_cast<unsigned long long>(sweep.lane_messages),
                sweep.cells_aggregated);
    bool clean = true;
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
      const BlkCellResult& r = sweep.cells[i];
      std::printf(
          "%s\n    {\"mode\": \"%s\", \"payload\": %u, \"queue_depth\": %u, "
          "\"ops\": %llu, \"failures\": %llu, \"iops\": %.4f, "
          "\"p50_us\": %.4f, \"p99_us\": %.4f, \"p999_us\": %.4f}",
          i == 0 ? "" : ",", mode_name(r.mode), r.payload, r.queue_depth,
          static_cast<unsigned long long>(r.ops),
          static_cast<unsigned long long>(r.failures), r.iops,
          r.latency_us.percentile(50), r.latency_us.percentile(99),
          r.latency_us.percentile(99.9));
      clean = clean && r.failures == 0;
    }
    std::printf("\n  ]\n}\n");
    return clean ? 0 : 1;
  }

  std::printf(
      "blk_iops: %u requests/cell, seed %llu%s\n\n"
      "%8s %9s %6s | %10s %9s %9s %10s | %10s\n",
      config.ops_per_cell, static_cast<unsigned long long>(config.seed),
      smoke ? " (smoke)" : "", "payload", "mode", "depth", "IOPS", "p50 us",
      "p99 us", "p99.9 us", "poll-busy%");

  bool ok = true;
  std::vector<BlkCellResult> cells;
  std::size_t cell_index = 0;
  for (const u32 payload : config.payloads) {
    // iops[mode] per depth, for the monotonicity gate.
    double prev_iops[2] = {0.0, 0.0};
    for (const u16 depth : config.queue_depths) {
      BlkCellResult per_mode[2];
      for (const BlkCompletionMode mode :
           {BlkCompletionMode::kInterrupt, BlkCompletionMode::kReactorPolled}) {
        const std::size_t m = static_cast<std::size_t>(mode);
        BlkCellResult& r = per_mode[m];
        r = sweep.cells[cell_index++];
        if (r.reactor_iterations > 0) {
          std::printf(
              "%8u %9s %6u | %10.0f %9.2f %9.2f %10.2f | %9.1f%%\n", payload,
              mode_name(mode), depth, r.iops, r.latency_us.percentile(50),
              r.latency_us.percentile(99), r.latency_us.percentile(99.9),
              100.0 * static_cast<double>(r.reactor_busy_iterations) /
                  static_cast<double>(r.reactor_iterations));
        } else {
          std::printf("%8u %9s %6u | %10.0f %9.2f %9.2f %10.2f | %10s\n",
                      payload, mode_name(mode), depth, r.iops,
                      r.latency_us.percentile(50), r.latency_us.percentile(99),
                      r.latency_us.percentile(99.9), "-");
        }
        if (r.failures != 0) {
          std::printf("  FAIL: %llu request(s) completed with an error "
                      "status (%s, payload %u, depth %u)\n",
                      static_cast<unsigned long long>(r.failures),
                      mode_name(mode), payload, depth);
          ok = false;
        }
        if (r.iops < prev_iops[m] * 0.98) {
          std::printf("  FAIL: %s IOPS %.0f at depth %u < %.0f at the "
                      "previous depth (payload %u)\n",
                      mode_name(mode), r.iops, depth, prev_iops[m], payload);
          ok = false;
        }
        prev_iops[m] = r.iops;
        cells.push_back(r);
      }
      const BlkCellResult& irq =
          per_mode[static_cast<std::size_t>(BlkCompletionMode::kInterrupt)];
      const BlkCellResult& polled = per_mode[static_cast<std::size_t>(
          BlkCompletionMode::kReactorPolled)];
      if (depth >= 8) {
        if (polled.latency_us.percentile(50) > irq.latency_us.percentile(50)) {
          std::printf("  FAIL: reactor p50 %.2fus > interrupt p50 %.2fus "
                      "(payload %u, depth %u)\n",
                      polled.latency_us.percentile(50),
                      irq.latency_us.percentile(50), payload, depth);
          ok = false;
        }
        if (polled.latency_us.percentile(99) > irq.latency_us.percentile(99)) {
          std::printf("  FAIL: reactor p99 %.2fus > interrupt p99 %.2fus "
                      "(payload %u, depth %u)\n",
                      polled.latency_us.percentile(99),
                      irq.latency_us.percentile(99), payload, depth);
          ok = false;
        }
      }
    }
    std::printf("\n");
  }

  write_json(config, cells, ok);
  return ok ? 0 : 1;
}
