// ABL-DESC: descriptor-exchange policy ablation (§IV-A).
//
// The paper contrasts per-transfer descriptor programming (XDMA) with
// VirtIO's share-rings-once design, and sketches intermediate points
// ("using the same descriptor table for all transactions and sharing
// the table address only at device initialization reduces overhead").
// This bench measures the hardware-time consequences of the controller's
// descriptor-handling choices:
//   - conservative: one DMA read per ring structure touched (default);
//   - batched chain fetch: adjacent descriptors fetched in one burst;
//   - trusted credits: consume RX buffers against a cached avail-idx
//     snapshot instead of re-polling per response;
//   - all optimizations combined;
// against the XDMA engine's per-transfer descriptor fetch as reference.
#include <cstdio>

#include "bench_seed.hpp"
#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace {

using namespace vfpga;

constexpr u64 kPayload = 256;

u64 iterations() {
  if (const char* env = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<u64>(v);
    }
  }
  return 20'000;
}

void run_virtio(const char* name, core::ControllerPolicy policy, u64 n,
                u64 seed) {
  core::TestbedOptions options;
  options.seed = seed;
  options.controller.policy = policy;
  core::VirtioNetTestbed bed{options};
  stats::SampleSet hw;
  stats::SampleSet total;
  Bytes payload(kPayload, 1);
  for (u64 i = 0; i < n; ++i) {
    payload[0] = static_cast<u8>(i);
    const auto rt = bed.udp_round_trip(payload);
    if (rt.ok) {
      hw.add(rt.hardware);
      total.add(rt.total);
    }
  }
  std::printf("%-28s hw %6.2f us   total mean %6.2f us   p95 %6.2f us\n",
              name, hw.mean(), total.mean(), total.percentile(95));
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = bench::base_seed(21, argc, argv);
  const u64 n = iterations();
  std::printf("ABL-DESC -- descriptor policy ablation, %llu round trips, "
              "%llu-byte payload\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(kPayload));

  core::ControllerPolicy conservative;
  run_virtio("virtio conservative", conservative, n, seed);

  core::ControllerPolicy batched = conservative;
  batched.batched_chain_fetch = true;
  run_virtio("virtio batched-fetch", batched, n, seed);

  core::ControllerPolicy trusting = conservative;
  trusting.trust_cached_credits = true;
  run_virtio("virtio trusted-credits", trusting, n, seed);

  core::ControllerPolicy all = batched;
  all.trust_cached_credits = true;
  run_virtio("virtio all optimizations", all, n, seed);

  {
    core::TestbedOptions options;
    options.seed = seed + 1;
    core::XdmaTestbed bed{options};
    stats::SampleSet hw;
    stats::SampleSet total;
    const u64 wire = core::virtio_wire_bytes(kPayload);
    for (u64 i = 0; i < n; ++i) {
      const auto rt = bed.write_read_round_trip(wire);
      if (rt.ok) {
        hw.add(rt.hardware);
        total.add(rt.total);
      }
    }
    std::printf("%-28s hw %6.2f us   total mean %6.2f us   p95 %6.2f us\n",
                "xdma per-transfer descs", hw.mean(), total.mean(),
                total.percentile(95));
  }

  std::puts(
      "\nReading: every avoided descriptor/ring DMA read removes a full\n"
      "non-posted PCIe round trip (~1.5 us on this link) from the\n"
      "hardware share — the mechanism behind SIV-A's overhead argument.");
  return 0;
}
