# Empty dependencies file for blk_storage.
# This may be replaced when dependencies are built.
