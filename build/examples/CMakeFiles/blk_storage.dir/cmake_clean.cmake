file(REMOVE_RECURSE
  "CMakeFiles/blk_storage.dir/blk_storage.cpp.o"
  "CMakeFiles/blk_storage.dir/blk_storage.cpp.o.d"
  "blk_storage"
  "blk_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
