file(REMOVE_RECURSE
  "CMakeFiles/smartnic_checksum.dir/smartnic_checksum.cpp.o"
  "CMakeFiles/smartnic_checksum.dir/smartnic_checksum.cpp.o.d"
  "smartnic_checksum"
  "smartnic_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartnic_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
