# Empty compiler generated dependencies file for smartnic_checksum.
# This may be replaced when dependencies are built.
