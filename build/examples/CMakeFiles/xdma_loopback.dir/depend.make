# Empty dependencies file for xdma_loopback.
# This may be replaced when dependencies are built.
