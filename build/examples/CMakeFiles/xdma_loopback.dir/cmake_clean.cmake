file(REMOVE_RECURSE
  "CMakeFiles/xdma_loopback.dir/xdma_loopback.cpp.o"
  "CMakeFiles/xdma_loopback.dir/xdma_loopback.cpp.o.d"
  "xdma_loopback"
  "xdma_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdma_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
