# Empty compiler generated dependencies file for device_personalities.
# This may be replaced when dependencies are built.
