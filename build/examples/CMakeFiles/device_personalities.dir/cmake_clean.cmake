file(REMOVE_RECURSE
  "CMakeFiles/device_personalities.dir/device_personalities.cpp.o"
  "CMakeFiles/device_personalities.dir/device_personalities.cpp.o.d"
  "device_personalities"
  "device_personalities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_personalities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
