file(REMOVE_RECURSE
  "CMakeFiles/ping.dir/ping.cpp.o"
  "CMakeFiles/ping.dir/ping.cpp.o.d"
  "ping"
  "ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
