# Empty dependencies file for ping.
# This may be replaced when dependencies are built.
