# Empty dependencies file for bypass_stream.
# This may be replaced when dependencies are built.
