file(REMOVE_RECURSE
  "CMakeFiles/bypass_stream.dir/bypass_stream.cpp.o"
  "CMakeFiles/bypass_stream.dir/bypass_stream.cpp.o.d"
  "bypass_stream"
  "bypass_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bypass_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
