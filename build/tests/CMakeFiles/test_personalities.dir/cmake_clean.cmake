file(REMOVE_RECURSE
  "CMakeFiles/test_personalities.dir/test_personalities.cpp.o"
  "CMakeFiles/test_personalities.dir/test_personalities.cpp.o.d"
  "test_personalities"
  "test_personalities.pdb"
  "test_personalities[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_personalities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
