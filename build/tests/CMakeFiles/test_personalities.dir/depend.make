# Empty dependencies file for test_personalities.
# This may be replaced when dependencies are built.
