file(REMOVE_RECURSE
  "CMakeFiles/test_packed_ring.dir/test_packed_ring.cpp.o"
  "CMakeFiles/test_packed_ring.dir/test_packed_ring.cpp.o.d"
  "test_packed_ring"
  "test_packed_ring.pdb"
  "test_packed_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packed_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
