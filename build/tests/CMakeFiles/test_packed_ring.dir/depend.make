# Empty dependencies file for test_packed_ring.
# This may be replaced when dependencies are built.
