file(REMOVE_RECURSE
  "CMakeFiles/test_blk_driver.dir/test_blk_driver.cpp.o"
  "CMakeFiles/test_blk_driver.dir/test_blk_driver.cpp.o.d"
  "test_blk_driver"
  "test_blk_driver.pdb"
  "test_blk_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blk_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
