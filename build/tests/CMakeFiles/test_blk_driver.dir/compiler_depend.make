# Empty compiler generated dependencies file for test_blk_driver.
# This may be replaced when dependencies are built.
