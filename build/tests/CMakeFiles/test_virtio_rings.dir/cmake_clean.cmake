file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_rings.dir/test_virtio_rings.cpp.o"
  "CMakeFiles/test_virtio_rings.dir/test_virtio_rings.cpp.o.d"
  "test_virtio_rings"
  "test_virtio_rings.pdb"
  "test_virtio_rings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
