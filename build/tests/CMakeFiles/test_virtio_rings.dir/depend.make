# Empty dependencies file for test_virtio_rings.
# This may be replaced when dependencies are built.
