file(REMOVE_RECURSE
  "CMakeFiles/test_hostos.dir/test_hostos.cpp.o"
  "CMakeFiles/test_hostos.dir/test_hostos.cpp.o.d"
  "test_hostos"
  "test_hostos.pdb"
  "test_hostos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hostos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
