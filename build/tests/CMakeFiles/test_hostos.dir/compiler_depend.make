# Empty compiler generated dependencies file for test_hostos.
# This may be replaced when dependencies are built.
