file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_caps.dir/test_virtio_caps.cpp.o"
  "CMakeFiles/test_virtio_caps.dir/test_virtio_caps.cpp.o.d"
  "test_virtio_caps"
  "test_virtio_caps.pdb"
  "test_virtio_caps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
