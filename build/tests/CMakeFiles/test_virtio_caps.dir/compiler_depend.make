# Empty compiler generated dependencies file for test_virtio_caps.
# This may be replaced when dependencies are built.
