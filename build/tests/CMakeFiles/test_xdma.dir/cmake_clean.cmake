file(REMOVE_RECURSE
  "CMakeFiles/test_xdma.dir/test_xdma.cpp.o"
  "CMakeFiles/test_xdma.dir/test_xdma.cpp.o.d"
  "test_xdma"
  "test_xdma.pdb"
  "test_xdma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
