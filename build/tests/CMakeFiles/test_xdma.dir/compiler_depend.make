# Empty compiler generated dependencies file for test_xdma.
# This may be replaced when dependencies are built.
