# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_pcie[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_virtio_rings[1]_include.cmake")
include("/root/repo/build/tests/test_virtio_caps[1]_include.cmake")
include("/root/repo/build/tests/test_xdma[1]_include.cmake")
include("/root/repo/build/tests/test_hostos[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_personalities[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_packed_ring[1]_include.cmake")
include("/root/repo/build/tests/test_blk_driver[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_device_spec[1]_include.cmake")
include("/root/repo/build/tests/test_bypass[1]_include.cmake")
