# Empty dependencies file for vfpga.
# This may be replaced when dependencies are built.
