file(REMOVE_RECURSE
  "libvfpga.a"
)
