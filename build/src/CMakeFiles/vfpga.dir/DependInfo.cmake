
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfpga/common/log.cpp" "src/CMakeFiles/vfpga.dir/vfpga/common/log.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/common/log.cpp.o.d"
  "/root/repo/src/vfpga/core/blk_device.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/blk_device.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/blk_device.cpp.o.d"
  "/root/repo/src/vfpga/core/bypass.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/bypass.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/bypass.cpp.o.d"
  "/root/repo/src/vfpga/core/console_device.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/console_device.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/console_device.cpp.o.d"
  "/root/repo/src/vfpga/core/device_spec.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/device_spec.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/device_spec.cpp.o.d"
  "/root/repo/src/vfpga/core/net_device.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/net_device.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/net_device.cpp.o.d"
  "/root/repo/src/vfpga/core/packed_queue_engine.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/packed_queue_engine.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/packed_queue_engine.cpp.o.d"
  "/root/repo/src/vfpga/core/queue_engine.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/queue_engine.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/queue_engine.cpp.o.d"
  "/root/repo/src/vfpga/core/testbed.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/testbed.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/testbed.cpp.o.d"
  "/root/repo/src/vfpga/core/virtio_controller.cpp" "src/CMakeFiles/vfpga.dir/vfpga/core/virtio_controller.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/core/virtio_controller.cpp.o.d"
  "/root/repo/src/vfpga/fpga/perf_counter.cpp" "src/CMakeFiles/vfpga.dir/vfpga/fpga/perf_counter.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/fpga/perf_counter.cpp.o.d"
  "/root/repo/src/vfpga/fpga/stream.cpp" "src/CMakeFiles/vfpga.dir/vfpga/fpga/stream.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/fpga/stream.cpp.o.d"
  "/root/repo/src/vfpga/fpga/timeline.cpp" "src/CMakeFiles/vfpga.dir/vfpga/fpga/timeline.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/fpga/timeline.cpp.o.d"
  "/root/repo/src/vfpga/harness/experiment.cpp" "src/CMakeFiles/vfpga.dir/vfpga/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/harness/experiment.cpp.o.d"
  "/root/repo/src/vfpga/harness/parallel.cpp" "src/CMakeFiles/vfpga.dir/vfpga/harness/parallel.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/harness/parallel.cpp.o.d"
  "/root/repo/src/vfpga/harness/report.cpp" "src/CMakeFiles/vfpga.dir/vfpga/harness/report.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/harness/report.cpp.o.d"
  "/root/repo/src/vfpga/harness/virtio_bench.cpp" "src/CMakeFiles/vfpga.dir/vfpga/harness/virtio_bench.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/harness/virtio_bench.cpp.o.d"
  "/root/repo/src/vfpga/harness/xdma_bench.cpp" "src/CMakeFiles/vfpga.dir/vfpga/harness/xdma_bench.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/harness/xdma_bench.cpp.o.d"
  "/root/repo/src/vfpga/hostos/char_device.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/char_device.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/char_device.cpp.o.d"
  "/root/repo/src/vfpga/hostos/cost_model.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/cost_model.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/cost_model.cpp.o.d"
  "/root/repo/src/vfpga/hostos/interrupt.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/interrupt.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/interrupt.cpp.o.d"
  "/root/repo/src/vfpga/hostos/netstack.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/netstack.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/netstack.cpp.o.d"
  "/root/repo/src/vfpga/hostos/virtio_blk_driver.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_blk_driver.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_blk_driver.cpp.o.d"
  "/root/repo/src/vfpga/hostos/virtio_console_driver.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_console_driver.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_console_driver.cpp.o.d"
  "/root/repo/src/vfpga/hostos/virtio_net_driver.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_net_driver.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_net_driver.cpp.o.d"
  "/root/repo/src/vfpga/hostos/virtio_transport.cpp" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_transport.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/hostos/virtio_transport.cpp.o.d"
  "/root/repo/src/vfpga/mem/bram.cpp" "src/CMakeFiles/vfpga.dir/vfpga/mem/bram.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/mem/bram.cpp.o.d"
  "/root/repo/src/vfpga/mem/host_memory.cpp" "src/CMakeFiles/vfpga.dir/vfpga/mem/host_memory.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/mem/host_memory.cpp.o.d"
  "/root/repo/src/vfpga/net/arp.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/arp.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/arp.cpp.o.d"
  "/root/repo/src/vfpga/net/checksum.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/checksum.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/checksum.cpp.o.d"
  "/root/repo/src/vfpga/net/ethernet.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/ethernet.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/ethernet.cpp.o.d"
  "/root/repo/src/vfpga/net/icmp.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/icmp.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/icmp.cpp.o.d"
  "/root/repo/src/vfpga/net/ipv4.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/ipv4.cpp.o.d"
  "/root/repo/src/vfpga/net/routing.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/routing.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/routing.cpp.o.d"
  "/root/repo/src/vfpga/net/udp.cpp" "src/CMakeFiles/vfpga.dir/vfpga/net/udp.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/net/udp.cpp.o.d"
  "/root/repo/src/vfpga/pcie/capabilities.cpp" "src/CMakeFiles/vfpga.dir/vfpga/pcie/capabilities.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/pcie/capabilities.cpp.o.d"
  "/root/repo/src/vfpga/pcie/config_space.cpp" "src/CMakeFiles/vfpga.dir/vfpga/pcie/config_space.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/pcie/config_space.cpp.o.d"
  "/root/repo/src/vfpga/pcie/enumeration.cpp" "src/CMakeFiles/vfpga.dir/vfpga/pcie/enumeration.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/pcie/enumeration.cpp.o.d"
  "/root/repo/src/vfpga/pcie/link_model.cpp" "src/CMakeFiles/vfpga.dir/vfpga/pcie/link_model.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/pcie/link_model.cpp.o.d"
  "/root/repo/src/vfpga/pcie/msix.cpp" "src/CMakeFiles/vfpga.dir/vfpga/pcie/msix.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/pcie/msix.cpp.o.d"
  "/root/repo/src/vfpga/pcie/root_complex.cpp" "src/CMakeFiles/vfpga.dir/vfpga/pcie/root_complex.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/pcie/root_complex.cpp.o.d"
  "/root/repo/src/vfpga/sim/distributions.cpp" "src/CMakeFiles/vfpga.dir/vfpga/sim/distributions.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/sim/distributions.cpp.o.d"
  "/root/repo/src/vfpga/sim/noise.cpp" "src/CMakeFiles/vfpga.dir/vfpga/sim/noise.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/sim/noise.cpp.o.d"
  "/root/repo/src/vfpga/sim/rng.cpp" "src/CMakeFiles/vfpga.dir/vfpga/sim/rng.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/sim/rng.cpp.o.d"
  "/root/repo/src/vfpga/sim/scheduler.cpp" "src/CMakeFiles/vfpga.dir/vfpga/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/sim/scheduler.cpp.o.d"
  "/root/repo/src/vfpga/stats/histogram.cpp" "src/CMakeFiles/vfpga.dir/vfpga/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/stats/histogram.cpp.o.d"
  "/root/repo/src/vfpga/stats/summary.cpp" "src/CMakeFiles/vfpga.dir/vfpga/stats/summary.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/stats/summary.cpp.o.d"
  "/root/repo/src/vfpga/virtio/feature_negotiation.cpp" "src/CMakeFiles/vfpga.dir/vfpga/virtio/feature_negotiation.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/virtio/feature_negotiation.cpp.o.d"
  "/root/repo/src/vfpga/virtio/packed_device.cpp" "src/CMakeFiles/vfpga.dir/vfpga/virtio/packed_device.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/virtio/packed_device.cpp.o.d"
  "/root/repo/src/vfpga/virtio/packed_driver.cpp" "src/CMakeFiles/vfpga.dir/vfpga/virtio/packed_driver.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/virtio/packed_driver.cpp.o.d"
  "/root/repo/src/vfpga/virtio/pci_caps.cpp" "src/CMakeFiles/vfpga.dir/vfpga/virtio/pci_caps.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/virtio/pci_caps.cpp.o.d"
  "/root/repo/src/vfpga/virtio/virtqueue_device.cpp" "src/CMakeFiles/vfpga.dir/vfpga/virtio/virtqueue_device.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/virtio/virtqueue_device.cpp.o.d"
  "/root/repo/src/vfpga/virtio/virtqueue_driver.cpp" "src/CMakeFiles/vfpga.dir/vfpga/virtio/virtqueue_driver.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/virtio/virtqueue_driver.cpp.o.d"
  "/root/repo/src/vfpga/xdma/engine.cpp" "src/CMakeFiles/vfpga.dir/vfpga/xdma/engine.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/xdma/engine.cpp.o.d"
  "/root/repo/src/vfpga/xdma/host_driver.cpp" "src/CMakeFiles/vfpga.dir/vfpga/xdma/host_driver.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/xdma/host_driver.cpp.o.d"
  "/root/repo/src/vfpga/xdma/xdma_ip.cpp" "src/CMakeFiles/vfpga.dir/vfpga/xdma/xdma_ip.cpp.o" "gcc" "src/CMakeFiles/vfpga.dir/vfpga/xdma/xdma_ip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
