# Empty compiler generated dependencies file for fig4_virtio_breakdown.
# This may be replaced when dependencies are built.
