# Empty dependencies file for portability_sweep.
# This may be replaced when dependencies are built.
