# Empty dependencies file for ablation_ring_format.
# This may be replaced when dependencies are built.
