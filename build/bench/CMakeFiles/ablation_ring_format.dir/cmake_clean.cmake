file(REMOVE_RECURSE
  "CMakeFiles/ablation_ring_format.dir/ablation_ring_format.cpp.o"
  "CMakeFiles/ablation_ring_format.dir/ablation_ring_format.cpp.o.d"
  "ablation_ring_format"
  "ablation_ring_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ring_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
