file(REMOVE_RECURSE
  "CMakeFiles/ablation_c2h_notification.dir/ablation_c2h_notification.cpp.o"
  "CMakeFiles/ablation_c2h_notification.dir/ablation_c2h_notification.cpp.o.d"
  "ablation_c2h_notification"
  "ablation_c2h_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_c2h_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
