# Empty dependencies file for ablation_c2h_notification.
# This may be replaced when dependencies are built.
