# Empty dependencies file for fig3_roundtrip_latency.
# This may be replaced when dependencies are built.
