file(REMOVE_RECURSE
  "CMakeFiles/ablation_descriptor_policy.dir/ablation_descriptor_policy.cpp.o"
  "CMakeFiles/ablation_descriptor_policy.dir/ablation_descriptor_policy.cpp.o.d"
  "ablation_descriptor_policy"
  "ablation_descriptor_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_descriptor_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
