# Empty compiler generated dependencies file for ablation_descriptor_policy.
# This may be replaced when dependencies are built.
