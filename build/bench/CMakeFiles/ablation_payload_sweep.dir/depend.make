# Empty dependencies file for ablation_payload_sweep.
# This may be replaced when dependencies are built.
