file(REMOVE_RECURSE
  "CMakeFiles/ablation_payload_sweep.dir/ablation_payload_sweep.cpp.o"
  "CMakeFiles/ablation_payload_sweep.dir/ablation_payload_sweep.cpp.o.d"
  "ablation_payload_sweep"
  "ablation_payload_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_payload_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
