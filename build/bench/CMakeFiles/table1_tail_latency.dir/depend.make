# Empty dependencies file for table1_tail_latency.
# This may be replaced when dependencies are built.
