// Host interrupt controller (LAPIC-ish).
//
// The root complex forwards MSI/MSI-X doorbell writes here. Vectors are
// allocated by the OS model and programmed into device MSI-X tables;
// delivered interrupts are queued per vector with their arrival
// timestamps so a blocked HostThread can consume them in order. An
// interrupt that arrived while the thread was still running (the latched
// case) wakes it with zero additional latency, exactly like a pending
// bit serviced at the next window.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::hostos {

class InterruptController {
 public:
  /// Allocate a vector number (the MSI message data value).
  u32 allocate_vector();

  /// Delivery entry point — wire into RootComplex::set_irq_sink.
  void deliver(u32 message_data, sim::SimTime at);

  /// True when `vector` has an undelivered (unconsumed) interrupt.
  [[nodiscard]] bool pending(u32 vector) const;

  /// Consume the oldest pending interrupt on `vector`; the caller
  /// (thread model) must know one is pending or will be — in the
  /// transaction-level flow the device has already computed its delivery
  /// time, so this never spins.
  sim::SimTime consume(u32 vector);

  /// Arrival time of the oldest pending interrupt without consuming it
  /// (nullopt when none). A busy-polling driver uses this to retire only
  /// the interrupts whose completions it actually harvested, leaving a
  /// future-timestamped delivery queued for the blocking fallback.
  [[nodiscard]] std::optional<sim::SimTime> next_pending(u32 vector) const;

  /// Total interrupts delivered (diagnostics).
  [[nodiscard]] u64 delivered_count() const { return delivered_; }

  /// Interrupts delivered on one vector — lets tests assert that each
  /// queue's traffic arrived on its own MSI-X vector and nowhere else.
  [[nodiscard]] u64 delivered_on(u32 vector) const;

  /// Program the standard MSI window address for `vector`.
  [[nodiscard]] static HostAddr message_address() {
    return pcie::kMsiWindowBase;
  }

  /// Snapshot/restore: pending (undelivered) interrupts migrate with the
  /// device so a parked wake-up still fires after resume.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  std::vector<std::deque<sim::SimTime>> queues_;
  std::vector<u64> delivered_per_vector_;
  u64 delivered_ = 0;
};

}  // namespace vfpga::hostos
