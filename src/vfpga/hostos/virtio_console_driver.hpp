// Host-kernel virtio-console front-end driver model (hvc/virtio_console).
//
// The device type of the prior work this system extends ([14]): byte
// streams over a receiveq/transmitq pair. write() pushes bytes to the
// FPGA with one doorbell; read() blocks on the receive interrupt — the
// same single-kick/single-interrupt structure as the net driver, with
// tty semantics instead of packet semantics.
#pragma once

#include <deque>

#include "vfpga/hostos/virtio_transport.hpp"
#include "vfpga/virtio/console_defs.hpp"

namespace vfpga::hostos {

class VirtioConsoleDriver {
 public:
  using BindContext = VirtioPciTransport::BindContext;

  bool probe(const BindContext& ctx, HostThread& thread);

  [[nodiscard]] bool bound() const { return transport_.bound(); }
  [[nodiscard]] u16 cols() const { return cols_; }
  [[nodiscard]] u16 rows() const { return rows_; }
  [[nodiscard]] u32 rx_vector() const { return rx_vector_; }

  /// write(2) to the console: one buffer, one doorbell.
  bool write(HostThread& thread, ConstByteSpan data);

  /// Blocking read: sleep on the receive interrupt, harvest, return up
  /// to `out.size()` bytes (fewer if the device sent less). Returns the
  /// byte count, or nullopt when nothing will arrive (timeout analogue).
  std::optional<u64> read(HostThread& thread, ByteSpan out);

  [[nodiscard]] u64 bytes_written() const { return bytes_written_; }
  [[nodiscard]] u64 bytes_read() const { return bytes_read_; }

 private:
  void service_rx(HostThread& thread, sim::SimTime irq_time);

  VirtioPciTransport transport_;
  InterruptController* irq_ = nullptr;
  u32 rx_vector_ = 0;
  u32 tx_vector_ = 0;
  u16 cols_ = 0;
  u16 rows_ = 0;

  struct RxBuffer {
    HostAddr addr = 0;
    u32 len = 0;
  };
  std::vector<RxBuffer> rx_buffers_;
  HostAddr tx_buffer_ = 0;
  u32 buffer_bytes_ = 512;

  std::deque<u8> rx_bytes_;
  u64 bytes_written_ = 0;
  u64 bytes_read_ = 0;
};

}  // namespace vfpga::hostos
