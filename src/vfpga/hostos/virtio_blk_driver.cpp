#include "vfpga/hostos/virtio_blk_driver.hpp"

#include <algorithm>
#include <array>

#include "vfpga/common/contract.hpp"
#include "vfpga/core/virtio_controller.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::hostos {

using virtio::blk::BlkConfigLayout;
using virtio::blk::DiscardSegment;
using virtio::blk::RequestHeader;
using virtio::blk::RequestType;

bool VirtioBlkDriver::probe(const BindContext& ctx, HostThread& thread) {
  virtio::FeatureSet wanted;
  wanted.set(virtio::feature::blk::kBlkSize);
  wanted.set(virtio::feature::blk::kFlush);
  wanted.set(virtio::feature::blk::kSizeMax);
  wanted.set(virtio::feature::blk::kSegMax);
  wanted.set(virtio::feature::blk::kDiscard);
  if (options_.requested_queues > 1) {
    wanted.set(virtio::feature::blk::kMq);
  }
  if (!transport_.begin_probe(ctx, virtio::DeviceType::Block, wanted,
                              thread)) {
    return false;
  }
  irq_ = ctx.irq;

  capacity_sectors_ = transport_.device_config_read64(
      BlkConfigLayout::kCapacityOffset, thread);
  size_max_ = transport_.negotiated().has(virtio::feature::blk::kSizeMax)
                  ? transport_.device_config_read32(
                        BlkConfigLayout::kSizeMaxOffset, thread)
                  : options_.max_io_bytes;
  seg_max_ = transport_.negotiated().has(virtio::feature::blk::kSegMax)
                 ? transport_.device_config_read32(
                       BlkConfigLayout::kSegMaxOffset, thread)
                 : 1u;
  u16 device_queues = 1;
  if (transport_.negotiated().has(virtio::feature::blk::kMq)) {
    device_queues = transport_.device_config_read16(
        BlkConfigLayout::kNumQueuesOffset, thread);
  }
  const u16 nqueues = std::max<u16>(
      1, std::min(options_.requested_queues, device_queues));

  const u32 config_vector = transport_.setup_vector(0, thread);
  (void)config_vector;
  transport_.set_config_vector(0, thread);

  auto& memory = transport_.memory();
  queues_.clear();
  queues_.resize(nqueues);
  for (u16 q = 0; q < nqueues; ++q) {
    QueueRt& rt = queues_[q];
    rt.vector = transport_.setup_vector(static_cast<u32>(q) + 1, thread);
    auto& ring = transport_.setup_queue(q, /*msix_entry=*/q + 1, thread);
    ring.enable_interrupts();
    rt.slots.resize(options_.queue_depth);
    for (u16 s = 0; s < options_.queue_depth; ++s) {
      Slot& slot = rt.slots[s];
      slot.header_addr =
          memory.allocate(virtio::blk::kRequestHeaderBytes, 16);
      slot.status_addr = memory.allocate(1);
      slot.data_addr = memory.allocate(options_.max_io_bytes, 4096);
      rt.free_slots.push_back(s);
    }
  }
  transport_.finish_probe(thread);
  return true;
}

void VirtioBlkDriver::set_polled(u16 queue, bool polled) {
  QueueRt& rt = queues_.at(queue);
  if (rt.polled == polled) {
    return;
  }
  rt.polled = polled;
  auto& ring = transport_.queue(queue);
  if (polled) {
    ring.disable_interrupts();
  } else {
    ring.enable_interrupts();
  }
}

std::optional<u32> VirtioBlkDriver::submit_io(HostThread& thread, u16 queue,
                                              RequestType type, u64 sector,
                                              ConstByteSpan out_data,
                                              u32 in_bytes) {
  VFPGA_EXPECTS(bound());
  QueueRt& rt = queues_.at(queue);
  const u32 data_len = type == RequestType::In || type == RequestType::GetId
                           ? in_bytes
                           : static_cast<u32>(out_data.size());
  VFPGA_EXPECTS(data_len <= options_.max_io_bytes);

  // Host-side limit enforcement: the same seg_max/size_max the device
  // polices. A request that cannot be expressed within the negotiated
  // envelope is refused here, before any descriptor is written.
  const u32 seg_bytes = std::min(size_max_, options_.max_io_bytes);
  const u32 data_segments =
      data_len == 0 ? 0 : (data_len + seg_bytes - 1) / seg_bytes;
  if (data_segments > seg_max_) {
    ++rejected_oversize_;
    return std::nullopt;
  }
  if (rt.free_slots.empty()) {
    return std::nullopt;  // queue at depth
  }

  // Request construction: the block layer's work per bio.
  thread.exec(thread.costs().blk_submit);

  const u32 slot_index = rt.free_slots.back();
  Slot& slot = rt.slots[slot_index];
  auto& memory = transport_.memory();

  RequestHeader header;
  header.type = type;
  header.sector = sector;
  std::array<u8, virtio::blk::kRequestHeaderBytes> raw{};
  header.encode(raw);
  memory.write(slot.header_addr, raw);
  memory.write_u8(slot.status_addr, 0xaa);  // poison: device must overwrite
  if (type == RequestType::Out || type == RequestType::Discard) {
    memory.write(slot.data_addr, out_data);
  }

  std::vector<virtio::ChainBuffer> chain;
  chain.reserve(2 + data_segments);
  chain.push_back({slot.header_addr, virtio::blk::kRequestHeaderBytes,
                   false});
  const bool writable =
      type == RequestType::In || type == RequestType::GetId;
  for (u32 seg = 0; seg < data_segments; ++seg) {
    const u32 offset = seg * seg_bytes;
    const u32 len = std::min(seg_bytes, data_len - offset);
    thread.exec(thread.costs().dma_map_segment);
    chain.push_back({slot.data_addr + offset, len, writable});
  }
  chain.push_back({slot.status_addr, 1, true});

  auto& ring = transport_.queue(queue);
  std::optional<u16> handle;
  if (use_indirect_ &&
      transport_.negotiated().has(virtio::feature::kRingIndirectDesc) &&
      !transport_.using_packed_rings()) {
    auto& split = static_cast<virtio::VirtqueueDriver&>(ring);
    handle = split.add_chain_indirect(chain, /*token=*/slot_index);
  } else {
    handle = ring.add_chain(chain, /*token=*/slot_index);
  }
  if (!handle.has_value()) {
    return std::nullopt;  // ring full
  }
  slot.data_len = data_len;
  slot.in_flight = true;
  slot.submitted_at = thread.now();
  rt.free_slots.pop_back();
  ++rt.in_flight;

  ring.publish();
  if (ring.should_kick()) {
    transport_.notify(queue, thread);
  }
  return slot_index;
}

std::optional<u32> VirtioBlkDriver::submit_read(HostThread& thread,
                                                u16 queue, u64 sector,
                                                u32 bytes) {
  return submit_io(thread, queue, RequestType::In, sector, {}, bytes);
}

std::optional<u32> VirtioBlkDriver::submit_write(HostThread& thread,
                                                 u16 queue, u64 sector,
                                                 ConstByteSpan data) {
  return submit_io(thread, queue, RequestType::Out, sector, data, 0);
}

std::optional<u32> VirtioBlkDriver::submit_flush(HostThread& thread,
                                                 u16 queue) {
  return submit_io(thread, queue, RequestType::Flush, 0, {}, 0);
}

bool VirtioBlkDriver::drain_one(HostThread& thread, u16 queue) {
  QueueRt& rt = queues_.at(queue);
  auto& ring = transport_.queue(queue);
  const auto used = ring.harvest();
  if (!used.has_value()) {
    return false;
  }
  thread.exec(thread.costs().blk_complete);
  const u32 slot_index = static_cast<u32>(used->token);
  Slot& slot = rt.slots.at(slot_index);
  VFPGA_ASSERT(slot.in_flight);
  slot.in_flight = false;
  Completion c;
  c.slot = slot_index;
  c.status = transport_.memory().read_u8(slot.status_addr);
  c.submitted_at = slot.submitted_at;
  c.completed_at = thread.now();
  rt.completed.push_back(c);
  --rt.in_flight;
  ++rt.harvest_seq;
  ++requests_completed_;
  if (c.status != virtio::blk::kStatusOk) {
    ++requests_failed_;
  }
  return true;
}

u32 VirtioBlkDriver::drain_all(HostThread& thread, u16 queue) {
  u32 n = 0;
  while (drain_one(thread, queue)) {
    ++n;
  }
  return n;
}

u32 VirtioBlkDriver::harvest_now(HostThread& thread, u16 queue) {
  QueueRt& rt = queues_.at(queue);
  const auto* device = transport_.context().device;
  u32 n = 0;
  for (;;) {
    // One poll iteration: re-read the used ring's idx cache line.
    thread.exec_poll(thread.costs().busy_poll_iteration);
    const auto visible =
        device->completion_visible_time(queue, rt.harvest_seq);
    if (!visible.has_value() || *visible > thread.now()) {
      break;
    }
    if (!drain_one(thread, queue)) {
      break;
    }
    ++n;
  }
  return n;
}

bool VirtioBlkDriver::wait_polled(HostThread& thread, u16 queue) {
  QueueRt& rt = queues_.at(queue);
  if (rt.in_flight == 0) {
    return false;
  }
  const auto* device = transport_.context().device;
  const auto visible =
      device->completion_visible_time(queue, rt.harvest_seq);
  if (!visible.has_value()) {
    // Nothing further is in flight device-side: with the
    // transaction-level device no amount of spinning makes data appear.
    return false;
  }
  thread.exec_poll(thread.costs().busy_poll_iteration);
  thread.spin_until(*visible);
  return harvest_now(thread, queue) > 0;
}

bool VirtioBlkDriver::wait_interrupt(HostThread& thread, u16 queue) {
  QueueRt& rt = queues_.at(queue);
  if (rt.in_flight == 0) {
    return false;
  }
  auto& ring = transport_.queue(queue);
  if (!irq_->pending(rt.vector)) {
    // The vector never fired although completions may exist — a lost
    // interrupt (fault plane kBlkIrqLost) or a genuinely incomplete
    // request. The used ring is the ground truth: fall back to
    // visibility polling, exactly what blk_mq's request timeout does
    // before escalating to a device reset.
    const auto* device = transport_.context().device;
    const auto visible =
        device->completion_visible_time(queue, rt.harvest_seq);
    if (!visible.has_value()) {
      return false;
    }
    thread.spin_until(*visible);
    ++irq_recoveries_;
    const u32 n = harvest_now(thread, queue);
    ring.enable_interrupts();
    return n > 0;
  }
  thread.block_until(irq_->consume(rt.vector));
  thread.exec(thread.costs().irq_entry);
  const u32 n = drain_all(thread, queue);
  ring.enable_interrupts();
  thread.exec(thread.costs().wakeup);
  return n > 0;
}

std::optional<VirtioBlkDriver::Completion> VirtioBlkDriver::pop_completion(
    u16 queue) {
  QueueRt& rt = queues_.at(queue);
  if (rt.completed.empty()) {
    return std::nullopt;
  }
  Completion c = rt.completed.front();
  rt.completed.pop_front();
  rt.free_slots.push_back(c.slot);
  return c;
}

void VirtioBlkDriver::read_payload(u16 queue, u32 slot, ByteSpan out) const {
  const QueueRt& rt = queues_.at(queue);
  const Slot& s = rt.slots.at(slot);
  VFPGA_EXPECTS(out.size() <= s.data_len);
  transport_.context().rc->memory().read(s.data_addr, out);
}

std::optional<u8> VirtioBlkDriver::wait_for_slot(HostThread& thread,
                                                 u16 queue, u32 slot) {
  QueueRt& rt = queues_.at(queue);
  while (rt.slots.at(slot).in_flight) {
    const bool progressed = rt.polled ? wait_polled(thread, queue)
                                      : wait_interrupt(thread, queue);
    if (!progressed) {
      return std::nullopt;  // transport failure: completion unreachable
    }
  }
  // Blocking callers keep one request outstanding, so the slot is at
  // the head of the completed FIFO; drain up to it regardless.
  while (true) {
    const auto c = pop_completion(queue);
    VFPGA_ASSERT(c.has_value());
    if (c->slot == slot) {
      return c->status;
    }
  }
}

bool VirtioBlkDriver::read_sectors(HostThread& thread, u64 sector,
                                   ByteSpan out) {
  VFPGA_EXPECTS(out.size() % virtio::blk::kSectorBytes == 0);
  thread.exec(thread.costs().syscall_entry);
  bool ok = false;
  const auto slot = submit_read(thread, /*queue=*/0, sector,
                                static_cast<u32>(out.size()));
  if (slot.has_value()) {
    const auto status = wait_for_slot(thread, 0, *slot);
    ok = status == virtio::blk::kStatusOk;
    if (ok) {
      read_payload(0, *slot, out);
    }
  }
  thread.copy(out.size());
  thread.exec(thread.costs().syscall_exit);
  return ok;
}

bool VirtioBlkDriver::write_sectors(HostThread& thread, u64 sector,
                                    ConstByteSpan data) {
  VFPGA_EXPECTS(data.size() % virtio::blk::kSectorBytes == 0);
  thread.exec(thread.costs().syscall_entry);
  thread.copy(data.size());
  bool ok = false;
  const auto slot = submit_write(thread, /*queue=*/0, sector, data);
  if (slot.has_value()) {
    ok = wait_for_slot(thread, 0, *slot) == virtio::blk::kStatusOk;
  }
  thread.exec(thread.costs().syscall_exit);
  return ok;
}

bool VirtioBlkDriver::flush(HostThread& thread) {
  thread.exec(thread.costs().syscall_entry);
  bool ok = false;
  const auto slot = submit_flush(thread, /*queue=*/0);
  if (slot.has_value()) {
    ok = wait_for_slot(thread, 0, *slot) == virtio::blk::kStatusOk;
  }
  thread.exec(thread.costs().syscall_exit);
  return ok;
}

std::optional<std::string> VirtioBlkDriver::get_id(HostThread& thread) {
  thread.exec(thread.costs().syscall_entry);
  std::optional<std::string> id;
  const auto slot =
      submit_io(thread, /*queue=*/0, RequestType::GetId, 0, {},
                static_cast<u32>(virtio::blk::kDeviceIdBytes));
  if (slot.has_value() &&
      wait_for_slot(thread, 0, *slot) == virtio::blk::kStatusOk) {
    Bytes raw(virtio::blk::kDeviceIdBytes, 0);
    read_payload(0, *slot, raw);
    const auto end = std::find(raw.begin(), raw.end(), u8{0});
    id.emplace(raw.begin(), end);
  }
  thread.exec(thread.costs().syscall_exit);
  return id;
}

bool VirtioBlkDriver::discard(
    HostThread& thread,
    std::span<const virtio::blk::DiscardSegment> segments) {
  if (!negotiated().has(virtio::feature::blk::kDiscard) ||
      segments.empty()) {
    return false;
  }
  thread.exec(thread.costs().syscall_entry);
  Bytes payload(segments.size() * DiscardSegment::kBytes, 0);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    segments[i].encode(
        ByteSpan{payload}.subspan(i * DiscardSegment::kBytes));
  }
  bool ok = false;
  const auto slot =
      submit_io(thread, /*queue=*/0, RequestType::Discard, 0, payload, 0);
  if (slot.has_value()) {
    ok = wait_for_slot(thread, 0, *slot) == virtio::blk::kStatusOk;
  }
  thread.exec(thread.costs().syscall_exit);
  return ok;
}

void VirtioBlkDriver::save_state(migrate::StateWriter& w) const {
  transport_.save_state(w);
  w.put_u64(requests_completed_);
  w.put_u64(requests_failed_);
  w.put_u64(irq_recoveries_);
  w.put_u64(rejected_oversize_);
  w.put_bool(use_indirect_);
  w.put_u16(static_cast<u16>(queues_.size()));
  for (const QueueRt& rt : queues_) {
    // Snapshots are taken quiesced: nothing in flight, nothing pending.
    VFPGA_EXPECTS(rt.in_flight == 0);
    VFPGA_EXPECTS(rt.completed.empty());
    w.put_u64(rt.harvest_seq);
    w.put_bool(rt.polled);
  }
}

void VirtioBlkDriver::load_state(migrate::StateReader& r) {
  transport_.load_state(r);
  requests_completed_ = r.get_u64();
  requests_failed_ = r.get_u64();
  irq_recoveries_ = r.get_u64();
  rejected_oversize_ = r.get_u64();
  use_indirect_ = r.get_bool();
  if (r.get_u16() != queues_.size()) {
    r.fail();
    return;
  }
  for (QueueRt& rt : queues_) {
    rt.harvest_seq = r.get_u64();
    const bool polled = r.get_bool();
    if (polled != rt.polled) {
      set_polled(static_cast<u16>(&rt - queues_.data()), polled);
    }
  }
}

}  // namespace vfpga::hostos
