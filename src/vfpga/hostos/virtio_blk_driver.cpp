#include "vfpga/hostos/virtio_blk_driver.hpp"

#include <array>

#include "vfpga/common/contract.hpp"

namespace vfpga::hostos {

using virtio::blk::BlkConfigLayout;
using virtio::blk::RequestHeader;
using virtio::blk::RequestType;

bool VirtioBlkDriver::probe(const BindContext& ctx, HostThread& thread) {
  virtio::FeatureSet wanted;
  wanted.set(virtio::feature::blk::kBlkSize);
  wanted.set(virtio::feature::blk::kFlush);
  if (!transport_.begin_probe(ctx, virtio::DeviceType::Block, wanted,
                              thread)) {
    return false;
  }
  irq_ = ctx.irq;

  const u32 config_vector = transport_.setup_vector(0, thread);
  (void)config_vector;
  transport_.set_config_vector(0, thread);
  request_vector_ = transport_.setup_vector(1, thread);
  auto& queue = transport_.setup_queue(virtio::blk::kRequestQueue,
                                       /*msix_entry=*/1, thread);
  queue.enable_interrupts();
  transport_.finish_probe(thread);

  capacity_sectors_ = transport_.device_config_read64(
      BlkConfigLayout::kCapacityOffset, thread);

  auto& memory = transport_.memory();
  header_addr_ = memory.allocate(virtio::blk::kRequestHeaderBytes, 16);
  status_addr_ = memory.allocate(1);
  bounce_addr_ = memory.allocate(bounce_capacity_, 4096);
  return true;
}

std::optional<u8> VirtioBlkDriver::submit(HostThread& thread,
                                          RequestType type, u64 sector,
                                          HostAddr data_addr, u32 data_len,
                                          bool data_device_writable) {
  VFPGA_EXPECTS(bound());
  auto& queue = transport_.queue(virtio::blk::kRequestQueue);
  auto& memory = transport_.memory();

  // Request construction: the block layer's work per bio.
  thread.exec(thread.costs().xdma_submit);  // pin/SG-map analogue

  RequestHeader header;
  header.type = type;
  header.sector = sector;
  std::array<u8, virtio::blk::kRequestHeaderBytes> raw{};
  header.encode(raw);
  memory.write(header_addr_, raw);
  memory.write_u8(status_addr_, 0xaa);  // poison: device must overwrite

  std::vector<virtio::ChainBuffer> chain;
  chain.push_back({header_addr_, virtio::blk::kRequestHeaderBytes, false});
  if (data_len > 0) {
    chain.push_back({data_addr, data_len, data_device_writable});
  }
  chain.push_back({status_addr_, 1, true});

  std::optional<u16> handle;
  if (use_indirect_ &&
      transport_.negotiated().has(virtio::feature::kRingIndirectDesc) &&
      !transport_.using_packed_rings()) {
    auto& split = static_cast<virtio::VirtqueueDriver&>(queue);
    handle = split.add_chain_indirect(chain, /*token=*/requests_completed_);
  } else {
    handle = queue.add_chain(chain, /*token=*/requests_completed_);
  }
  if (!handle.has_value()) {
    return std::nullopt;  // queue full (cannot happen serialized)
  }
  queue.publish();
  if (queue.should_kick()) {
    transport_.notify(virtio::blk::kRequestQueue, thread);
  }

  // Sleep until the completion interrupt, then harvest.
  if (!irq_->pending(request_vector_)) {
    return std::nullopt;
  }
  thread.block_until(irq_->consume(request_vector_));
  thread.exec(thread.costs().irq_entry);
  const auto completion = queue.harvest();
  VFPGA_ASSERT(completion.has_value());
  queue.enable_interrupts();
  thread.exec(thread.costs().wakeup);
  thread.exec(thread.costs().xdma_teardown);  // unmap/unpin analogue
  ++requests_completed_;
  return memory.read_u8(status_addr_);
}

bool VirtioBlkDriver::read_sectors(HostThread& thread, u64 sector,
                                   ByteSpan out) {
  VFPGA_EXPECTS(out.size() % virtio::blk::kSectorBytes == 0);
  VFPGA_EXPECTS(out.size() <= bounce_capacity_);
  thread.exec(thread.costs().syscall_entry);
  const auto status =
      submit(thread, RequestType::In, sector, bounce_addr_,
             static_cast<u32>(out.size()), /*data_device_writable=*/true);
  if (status == virtio::blk::kStatusOk) {
    transport_.memory().read(bounce_addr_, out);
  }
  thread.copy(out.size());
  thread.exec(thread.costs().syscall_exit);
  return status == virtio::blk::kStatusOk;
}

bool VirtioBlkDriver::write_sectors(HostThread& thread, u64 sector,
                                    ConstByteSpan data) {
  VFPGA_EXPECTS(data.size() % virtio::blk::kSectorBytes == 0);
  VFPGA_EXPECTS(data.size() <= bounce_capacity_);
  thread.exec(thread.costs().syscall_entry);
  thread.copy(data.size());
  transport_.memory().write(bounce_addr_, data);
  const auto status =
      submit(thread, RequestType::Out, sector, bounce_addr_,
             static_cast<u32>(data.size()), /*data_device_writable=*/false);
  thread.exec(thread.costs().syscall_exit);
  return status == virtio::blk::kStatusOk;
}

bool VirtioBlkDriver::flush(HostThread& thread) {
  thread.exec(thread.costs().syscall_entry);
  const auto status = submit(thread, RequestType::Flush, 0, 0, 0, false);
  thread.exec(thread.costs().syscall_exit);
  return status == virtio::blk::kStatusOk;
}

}  // namespace vfpga::hostos
