// virtio-pci-modern transport: the device-type-independent half of every
// VirtIO front-end driver (Linux's virtio_pci_modern.c + virtio_ring.c).
//
// Owns device matching, capability parsing, the reset/feature/status
// handshake, MSI-X programming, virtqueue construction (split or packed
// per the negotiated format), device-config access and doorbell
// notification — so device-class drivers (net, blk, ...) only contribute
// their feature masks, queue usage, and request semantics.
#pragma once

#include <memory>
#include <vector>

#include "vfpga/core/virtio_controller.hpp"
#include "vfpga/hostos/cost_model.hpp"
#include "vfpga/hostos/interrupt.hpp"
#include "vfpga/pcie/enumeration.hpp"
#include "vfpga/virtio/packed_driver.hpp"
#include "vfpga/virtio/virtqueue_driver.hpp"

namespace vfpga::hostos {

class VirtioPciTransport {
 public:
  struct BindContext {
    pcie::RootComplex* rc = nullptr;
    core::VirtioDeviceFunction* device = nullptr;
    const pcie::EnumeratedDevice* enumerated = nullptr;
    InterruptController* irq = nullptr;
    /// Accept VIRTIO_F_RING_PACKED when offered.
    bool prefer_packed = false;
  };

  /// Match + handshake through FEATURES_OK (§3.1.1 steps 1-6).
  /// `driver_features` is everything the device-class driver supports
  /// (transport bits VERSION_1/EVENT_IDX/INDIRECT are added here).
  /// Returns false if the device is not `expected_type` or negotiation
  /// fails.
  bool begin_probe(const BindContext& ctx, virtio::DeviceType expected_type,
                   virtio::FeatureSet driver_features, HostThread& thread);

  /// Allocate an MSI-X vector, program table entry `entry`, and return
  /// the vector number. Aborts (loudly) when `entry` is outside the
  /// device's advertised MSI-X table — programming a phantom entry
  /// would otherwise silently alias interrupts between queues.
  u32 setup_vector(u32 entry, HostThread& thread);
  void set_config_vector(u16 msix_entry, HostThread& thread);

  /// Table size parsed from the device's MSI-X capability.
  [[nodiscard]] u16 msix_table_size() const { return msix_table_size_; }

  /// Create queue `index` (ring format per negotiation), register its
  /// addresses with the device, bind it to MSI-X table entry
  /// `msix_entry`, and enable it.
  virtio::DriverRing& setup_queue(u16 index, u16 msix_entry,
                                  HostThread& thread);

  /// §3.1.1 step 8: write DRIVER_OK, then read the status back and
  /// verify the device accepted it (DRIVER_OK set, DEVICE_NEEDS_RESET
  /// clear) — the re-check a robust driver performs instead of assuming
  /// the write stuck. Returns false when the device is already sick.
  bool finish_probe(HostThread& thread);

  /// Non-posted read of the device status register.
  u8 read_device_status(HostThread& thread);

  /// §2.1.2: has the device latched DEVICE_NEEDS_RESET? Drivers call
  /// this from their watchdog/error paths to decide between retry and
  /// full re-initialization.
  bool device_needs_reset(HostThread& thread);

  /// The bind context of the last begin_probe — recovery paths re-probe
  /// through the same context after a device reset.
  [[nodiscard]] const BindContext& context() const { return ctx_; }

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] virtio::FeatureSet negotiated() const { return negotiated_; }
  [[nodiscard]] bool using_packed_rings() const {
    return negotiated_.has(virtio::feature::kRingPacked);
  }
  [[nodiscard]] virtio::DriverRing& queue(u16 index) {
    return *queues_.at(index);
  }
  [[nodiscard]] mem::HostMemory& memory() { return ctx_.rc->memory(); }

  /// Doorbell: one posted MMIO write to the queue's notify address.
  void notify(u16 queue_index, HostThread& thread);

  /// Device-specific configuration structure access (byte-granular,
  /// non-posted reads: they stall the CPU like any register read).
  u8 device_config_read8(u32 offset, HostThread& thread);
  u16 device_config_read16(u32 offset, HostThread& thread);
  u32 device_config_read32(u32 offset, HostThread& thread);
  u64 device_config_read64(u32 offset, HostThread& thread);

  // Raw common-config accessors (exposed for driver-specific needs).
  void common_write32(HostThread& thread, u32 offset, u32 value);
  void common_write16(HostThread& thread, u32 offset, u16 value);
  void common_write64(HostThread& thread, u32 offset, u64 value);
  u32 common_read32(HostThread& thread, u32 offset);
  u16 common_read16(HostThread& thread, u32 offset);
  u8 common_read8(HostThread& thread, u32 offset);

  /// Snapshot/restore of the transport bookkeeping and every driver
  /// ring's in-RAM state. The restore target must already be bound
  /// (probe replayed deterministically from the same seed) with the same
  /// queue count and ring formats; anything else fails the reader.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  BindContext ctx_{};
  bool bound_ = false;
  virtio::VirtioPciLayout layout_{};
  virtio::FeatureSet negotiated_{};
  std::vector<std::unique_ptr<virtio::DriverRing>> queues_;
  u8 status_shadow_ = 0;
  u16 msix_table_size_ = 0;
};

}  // namespace vfpga::hostos
