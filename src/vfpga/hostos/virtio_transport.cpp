#include "vfpga/hostos/virtio_transport.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/common/log.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::hostos {

using namespace virtio::commoncfg;

void VirtioPciTransport::common_write32(HostThread& thread, u32 offset,
                                        u32 value) {
  const auto result = ctx_.rc->cpu_mmio_write(
      *ctx_.device, layout_.common.bar, layout_.common.offset + offset, value,
      4, thread.now());
  thread.exec_fixed(result.cpu_cost);
}

void VirtioPciTransport::common_write16(HostThread& thread, u32 offset,
                                        u16 value) {
  const auto result = ctx_.rc->cpu_mmio_write(
      *ctx_.device, layout_.common.bar, layout_.common.offset + offset, value,
      2, thread.now());
  thread.exec_fixed(result.cpu_cost);
}

void VirtioPciTransport::common_write64(HostThread& thread, u32 offset,
                                        u64 value) {
  // Modern drivers write 64-bit fields as two dwords.
  common_write32(thread, offset, static_cast<u32>(value & 0xffffffffu));
  common_write32(thread, offset + 4, static_cast<u32>(value >> 32));
}

u32 VirtioPciTransport::common_read32(HostThread& thread, u32 offset) {
  const auto result = ctx_.rc->cpu_mmio_read(*ctx_.device, layout_.common.bar,
                                             layout_.common.offset + offset,
                                             4, thread.now());
  thread.mmio_stall(result.cpu_stall);
  return static_cast<u32>(result.value);
}

u16 VirtioPciTransport::common_read16(HostThread& thread, u32 offset) {
  const auto result = ctx_.rc->cpu_mmio_read(*ctx_.device, layout_.common.bar,
                                             layout_.common.offset + offset,
                                             2, thread.now());
  thread.mmio_stall(result.cpu_stall);
  return static_cast<u16>(result.value);
}

u8 VirtioPciTransport::common_read8(HostThread& thread, u32 offset) {
  const auto result = ctx_.rc->cpu_mmio_read(*ctx_.device, layout_.common.bar,
                                             layout_.common.offset + offset,
                                             1, thread.now());
  thread.mmio_stall(result.cpu_stall);
  return static_cast<u8>(result.value);
}

bool VirtioPciTransport::begin_probe(const BindContext& ctx,
                                     virtio::DeviceType expected_type,
                                     virtio::FeatureSet driver_features,
                                     HostThread& thread) {
  VFPGA_EXPECTS(ctx.rc != nullptr && ctx.device != nullptr &&
                ctx.enumerated != nullptr && ctx.irq != nullptr);
  ctx_ = ctx;
  bound_ = false;

  if (ctx.enumerated->vendor_id != virtio::kVirtioPciVendorId ||
      ctx.enumerated->device_id != virtio::modern_pci_device_id(expected_type) ||
      ctx.enumerated->revision < virtio::kVirtioPciModernRevision) {
    return false;
  }
  const auto layout = virtio::parse_virtio_capabilities(ctx.device->config());
  if (!layout.has_value()) {
    return false;
  }
  layout_ = *layout;

  // Parse the MSI-X capability so vector setup can bounds-check against
  // the table the device actually has, not the table we assume.
  const u16 msix_cap =
      ctx.device->config().find_capability(pcie::CapabilityId::MsiX);
  if (msix_cap == 0) {
    return false;  // this transport is MSI-X only
  }
  msix_table_size_ =
      pcie::decode_msix_capability(ctx.device->config(), msix_cap).table_size;

  // Reset + ACKNOWLEDGE + DRIVER.
  common_write32(thread, kDeviceStatus, 0);
  status_shadow_ = virtio::status::kAcknowledge;
  common_write32(thread, kDeviceStatus, status_shadow_);
  status_shadow_ |= virtio::status::kDriver;
  common_write32(thread, kDeviceStatus, status_shadow_);

  // Feature exchange: transport bits + device-class bits.
  driver_features.set(virtio::feature::kVersion1);
  driver_features.set(virtio::feature::kRingEventIdx);
  driver_features.set(virtio::feature::kRingIndirectDesc);
  if (ctx.prefer_packed) {
    driver_features.set(virtio::feature::kRingPacked);
  }

  virtio::FeatureSet offered;
  common_write32(thread, kDeviceFeatureSelect, 0);
  offered.set_window(0, common_read32(thread, kDeviceFeature));
  common_write32(thread, kDeviceFeatureSelect, 1);
  offered.set_window(1, common_read32(thread, kDeviceFeature));

  negotiated_ = offered.intersect(driver_features);
  common_write32(thread, kDriverFeatureSelect, 0);
  common_write32(thread, kDriverFeature, negotiated_.window(0));
  common_write32(thread, kDriverFeatureSelect, 1);
  common_write32(thread, kDriverFeature, negotiated_.window(1));

  status_shadow_ |= virtio::status::kFeaturesOk;
  common_write32(thread, kDeviceStatus, status_shadow_);
  if ((common_read8(thread, kDeviceStatus) & virtio::status::kFeaturesOk) ==
      0) {
    common_write32(thread, kDeviceStatus, virtio::status::kFailed);
    return false;
  }
  return true;
}

u32 VirtioPciTransport::setup_vector(u32 entry, HostThread& thread) {
  // Fail loudly instead of writing past the table aperture: an aliased
  // entry would deliver one queue's interrupts on another's vector.
  VFPGA_EXPECTS(entry < msix_table_size_);
  const u32 vector = ctx_.irq->allocate_vector();
  const BarOffset base =
      core::kMsixTableOffset + entry * pcie::kMsixEntryBytes;
  const auto write = [&](BarOffset off, u32 value) {
    const auto r = ctx_.rc->cpu_mmio_write(*ctx_.device, 0, base + off, value,
                                           4, thread.now());
    thread.exec_fixed(r.cpu_cost);
  };
  write(pcie::kMsixEntryAddrLo,
        static_cast<u32>(InterruptController::message_address()));
  write(pcie::kMsixEntryAddrHi,
        static_cast<u32>(InterruptController::message_address() >> 32));
  write(pcie::kMsixEntryData, vector);
  write(pcie::kMsixEntryControl, 0);  // unmask
  return vector;
}

void VirtioPciTransport::set_config_vector(u16 msix_entry,
                                           HostThread& thread) {
  common_write16(thread, kMsixConfig, msix_entry);
}

virtio::DriverRing& VirtioPciTransport::setup_queue(u16 index, u16 msix_entry,
                                                    HostThread& thread) {
  common_write16(thread, kQueueSelect, index);
  const u16 device_max = common_read16(thread, kQueueSize);
  const u16 size = std::min<u16>(device_max, 256);
  common_write16(thread, kQueueSize, size);

  if (queues_.size() <= index) {
    queues_.resize(static_cast<std::size_t>(index) + 1);
  }
  if (using_packed_rings()) {
    queues_[index] = std::make_unique<virtio::PackedVirtqueueDriver>(
        ctx_.rc->memory(), size, negotiated_);
  } else {
    queues_[index] = std::make_unique<virtio::VirtqueueDriver>(
        ctx_.rc->memory(), size, negotiated_);
  }
  const virtio::RingAddresses addrs = queues_[index]->ring_addresses();
  common_write64(thread, kQueueDesc, addrs.desc);
  common_write64(thread, kQueueDriver, addrs.avail);
  common_write64(thread, kQueueDevice, addrs.used);
  common_write16(thread, kQueueMsixVector, msix_entry);
  // §4.1.4.3: the device answers VIRTIO_MSI_NO_VECTOR when it rejected
  // the mapping. A silent mismatch here means this queue never
  // interrupts — surface it at setup time.
  if (common_read16(thread, kQueueMsixVector) != msix_entry) {
    VFPGA_WARN("virtio-pci", "device rejected queue MSI-X vector mapping");
  }
  common_write16(thread, kQueueEnable, 1);
  return *queues_[index];
}

bool VirtioPciTransport::finish_probe(HostThread& thread) {
  status_shadow_ |= virtio::status::kDriverOk;
  common_write32(thread, kDeviceStatus, status_shadow_);
  // Read the status back (§3.1.1): the device may have refused DRIVER_OK
  // or latched DEVICE_NEEDS_RESET during queue setup.
  const u8 status = read_device_status(thread);
  if ((status & virtio::status::kDriverOk) == 0 ||
      (status & virtio::status::kDeviceNeedsReset) != 0) {
    return false;
  }
  bound_ = true;
  return true;
}

u8 VirtioPciTransport::read_device_status(HostThread& thread) {
  return common_read8(thread, kDeviceStatus);
}

bool VirtioPciTransport::device_needs_reset(HostThread& thread) {
  return (read_device_status(thread) & virtio::status::kDeviceNeedsReset) != 0;
}

void VirtioPciTransport::notify(u16 queue_index, HostThread& thread) {
  const BarOffset notify_addr =
      layout_.notify.offset +
      static_cast<u64>(queue_index) * layout_.notify_off_multiplier;
  const auto r = ctx_.rc->cpu_mmio_write(*ctx_.device, layout_.notify.bar,
                                         notify_addr, queue_index, 4,
                                         thread.now());
  thread.exec_fixed(r.cpu_cost);
}

u8 VirtioPciTransport::device_config_read8(u32 offset, HostThread& thread) {
  const auto r = ctx_.rc->cpu_mmio_read(
      *ctx_.device, layout_.device_specific.bar,
      layout_.device_specific.offset + offset, 1, thread.now());
  thread.mmio_stall(r.cpu_stall);
  return static_cast<u8>(r.value);
}

u16 VirtioPciTransport::device_config_read16(u32 offset, HostThread& thread) {
  const auto r = ctx_.rc->cpu_mmio_read(
      *ctx_.device, layout_.device_specific.bar,
      layout_.device_specific.offset + offset, 2, thread.now());
  thread.mmio_stall(r.cpu_stall);
  return static_cast<u16>(r.value);
}

u32 VirtioPciTransport::device_config_read32(u32 offset, HostThread& thread) {
  const auto r = ctx_.rc->cpu_mmio_read(
      *ctx_.device, layout_.device_specific.bar,
      layout_.device_specific.offset + offset, 4, thread.now());
  thread.mmio_stall(r.cpu_stall);
  return static_cast<u32>(r.value);
}

u64 VirtioPciTransport::device_config_read64(u32 offset, HostThread& thread) {
  return static_cast<u64>(device_config_read32(offset, thread)) |
         static_cast<u64>(device_config_read32(offset + 4, thread)) << 32;
}

namespace {

constexpr u8 kRingNone = 0;
constexpr u8 kRingSplit = 1;
constexpr u8 kRingPackedFmt = 2;

}  // namespace

void VirtioPciTransport::save_state(migrate::StateWriter& w) const {
  w.put_u64(negotiated_.bits());
  w.put_u8(status_shadow_);
  w.put_u16(msix_table_size_);
  w.put_u16(static_cast<u16>(queues_.size()));
  for (const auto& q : queues_) {
    if (q == nullptr) {
      w.put_u8(kRingNone);
    } else if (const auto* packed =
                   dynamic_cast<const virtio::PackedVirtqueueDriver*>(
                       q.get())) {
      w.put_u8(kRingPackedFmt);
      packed->save_state(w);
    } else {
      w.put_u8(kRingSplit);
      dynamic_cast<const virtio::VirtqueueDriver&>(*q).save_state(w);
    }
  }
}

void VirtioPciTransport::load_state(migrate::StateReader& r) {
  if (!bound_) {
    r.fail();
    return;
  }
  negotiated_ = virtio::FeatureSet{r.get_u64()};
  status_shadow_ = r.get_u8();
  if (r.get_u16() != msix_table_size_ || r.get_u16() != queues_.size()) {
    r.fail();
    return;
  }
  for (auto& q : queues_) {
    const u8 tag = r.get_u8();
    switch (tag) {
      case kRingNone:
        if (q != nullptr) {
          r.fail();
        }
        break;
      case kRingSplit: {
        auto* split = dynamic_cast<virtio::VirtqueueDriver*>(q.get());
        if (split == nullptr) {
          r.fail();
          break;
        }
        split->load_state(r);
        break;
      }
      case kRingPackedFmt: {
        auto* packed = dynamic_cast<virtio::PackedVirtqueueDriver*>(q.get());
        if (packed == nullptr) {
          r.fail();
          break;
        }
        packed->load_state(r);
        break;
      }
      default:
        r.fail();
        break;
    }
    if (r.failed()) {
      return;
    }
  }
}

}  // namespace vfpga::hostos
