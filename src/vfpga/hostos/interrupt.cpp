#include "vfpga/hostos/interrupt.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::hostos {

u32 InterruptController::allocate_vector() {
  queues_.emplace_back();
  delivered_per_vector_.push_back(0);
  return static_cast<u32>(queues_.size() - 1);
}

void InterruptController::deliver(u32 message_data, sim::SimTime at) {
  VFPGA_EXPECTS(message_data < queues_.size());
  queues_[message_data].push_back(at);
  ++delivered_per_vector_[message_data];
  ++delivered_;
}

u64 InterruptController::delivered_on(u32 vector) const {
  VFPGA_EXPECTS(vector < delivered_per_vector_.size());
  return delivered_per_vector_[vector];
}

bool InterruptController::pending(u32 vector) const {
  VFPGA_EXPECTS(vector < queues_.size());
  return !queues_[vector].empty();
}

std::optional<sim::SimTime> InterruptController::next_pending(
    u32 vector) const {
  VFPGA_EXPECTS(vector < queues_.size());
  if (queues_[vector].empty()) {
    return std::nullopt;
  }
  return queues_[vector].front();
}

sim::SimTime InterruptController::consume(u32 vector) {
  VFPGA_EXPECTS(vector < queues_.size());
  VFPGA_EXPECTS(!queues_[vector].empty());
  const sim::SimTime at = queues_[vector].front();
  queues_[vector].pop_front();
  return at;
}

}  // namespace vfpga::hostos
