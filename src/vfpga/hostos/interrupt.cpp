#include "vfpga/hostos/interrupt.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::hostos {

u32 InterruptController::allocate_vector() {
  queues_.emplace_back();
  delivered_per_vector_.push_back(0);
  return static_cast<u32>(queues_.size() - 1);
}

void InterruptController::deliver(u32 message_data, sim::SimTime at) {
  VFPGA_EXPECTS(message_data < queues_.size());
  queues_[message_data].push_back(at);
  ++delivered_per_vector_[message_data];
  ++delivered_;
}

u64 InterruptController::delivered_on(u32 vector) const {
  VFPGA_EXPECTS(vector < delivered_per_vector_.size());
  return delivered_per_vector_[vector];
}

bool InterruptController::pending(u32 vector) const {
  VFPGA_EXPECTS(vector < queues_.size());
  return !queues_[vector].empty();
}

std::optional<sim::SimTime> InterruptController::next_pending(
    u32 vector) const {
  VFPGA_EXPECTS(vector < queues_.size());
  if (queues_[vector].empty()) {
    return std::nullopt;
  }
  return queues_[vector].front();
}

sim::SimTime InterruptController::consume(u32 vector) {
  VFPGA_EXPECTS(vector < queues_.size());
  VFPGA_EXPECTS(!queues_[vector].empty());
  const sim::SimTime at = queues_[vector].front();
  queues_[vector].pop_front();
  return at;
}

void InterruptController::save_state(migrate::StateWriter& w) const {
  w.put_u32(static_cast<u32>(queues_.size()));
  for (const auto& q : queues_) {
    w.put_u32(static_cast<u32>(q.size()));
    for (sim::SimTime at : q) {
      w.put_time(at);
    }
  }
  for (u64 d : delivered_per_vector_) {
    w.put_u64(d);
  }
  w.put_u64(delivered_);
}

void InterruptController::load_state(migrate::StateReader& r) {
  // The vector count is dynamic state, not configuration: a device
  // reset on the snapshot source re-allocates vectors, so the source
  // may have more than a freshly-probed target. Resize to match,
  // guarded against corrupt counts (each vector costs >= 4 bytes).
  const u32 vectors = r.get_u32();
  if (vectors > r.remaining() / 4) {
    r.fail();
    return;
  }
  queues_.assign(vectors, {});
  delivered_per_vector_.assign(vectors, 0);
  for (auto& q : queues_) {
    q.clear();
    const u32 depth = r.get_u32();
    for (u32 i = 0; i < depth && !r.failed(); ++i) {
      q.push_back(r.get_time());
    }
  }
  for (u64& d : delivered_per_vector_) {
    d = r.get_u64();
  }
  delivered_ = r.get_u64();
}

}  // namespace vfpga::hostos
