#include "vfpga/hostos/virtio_net_driver.hpp"

#include <array>

#include "vfpga/common/contract.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::hostos {

using virtio::net::NetHeader;

bool VirtioNetDriver::probe(const BindContext& ctx, HostThread& thread) {
  ctx_ = ctx;
  return initialize_device(thread);
}

bool VirtioNetDriver::recover(HostThread& thread) {
  // §2.1.2 recovery: full reset (begin_probe writes status 0), feature
  // renegotiation, queue rebuild, and requeue of the (reused) buffers.
  // In-flight chains on the old rings are forfeit; upper layers retry.
  ++device_resets_;
  kick_retries_ = 0;
  tx_stall_since_.reset();
  return initialize_device(thread);
}

bool VirtioNetDriver::initialize_device(HostThread& thread) {
  // Device-class features the Linux virtio-net driver would accept.
  virtio::FeatureSet wanted;
  wanted.set(virtio::feature::net::kCsum);
  wanted.set(virtio::feature::net::kGuestCsum);
  wanted.set(virtio::feature::net::kMac);
  wanted.set(virtio::feature::net::kMtu);
  wanted.set(virtio::feature::net::kStatus);
  if (!transport_.begin_probe(ctx_, virtio::DeviceType::Net, wanted, thread)) {
    return false;
  }

  // MSI-X: entry 0 = config changes, 1 = RX queue, 2 = TX queue.
  const u32 config_vec = transport_.setup_vector(0, thread);
  (void)config_vec;
  transport_.set_config_vector(0, thread);
  rx_vector_ = transport_.setup_vector(1, thread);
  tx_vector_ = transport_.setup_vector(2, thread);

  auto& rx = transport_.setup_queue(virtio::net::kRxQueue, 1, thread);
  auto& tx = transport_.setup_queue(virtio::net::kTxQueue, 2, thread);

  // TX buffers, one per ring slot: virtio_net_hdr headroom immediately
  // followed by the frame area (single-buffer transmission). Allocated
  // once; a recovery cycle reuses the same memory and just rebuilds the
  // free list.
  auto& memory = transport_.memory();
  tx_buffers_.resize(tx.size());
  tx_free_.clear();
  for (u16 i = 0; i < tx.size(); ++i) {
    if (tx_buffers_[i].hdr_addr == 0) {
      const HostAddr base = memory.allocate(NetHeader::kSize + 1526, 64);
      tx_buffers_[i].hdr_addr = base;
      tx_buffers_[i].frame_addr = base + NetHeader::kSize;
    }
    tx_free_.push_back(i);
  }

  if (!transport_.finish_probe(thread)) {
    return false;
  }

  // Device config: MAC + MTU.
  for (u32 i = 0; i < 6; ++i) {
    mac_.octets[i] = transport_.device_config_read8(
        virtio::net::NetConfigLayout::kMacOffset + i, thread);
  }
  if (transport_.negotiated().has(virtio::feature::net::kMtu)) {
    mtu_ = transport_.device_config_read16(
        virtio::net::NetConfigLayout::kMtuOffset, thread);
  }

  post_initial_rx_buffers();
  rx.enable_interrupts();  // interrupt on the first used entry
  // Suppress TX-completion interrupts; they are harvested by NAPI.
  tx.disable_interrupts();
  return true;
}

void VirtioNetDriver::post_initial_rx_buffers() {
  auto& rx = transport_.queue(virtio::net::kRxQueue);
  auto& memory = transport_.memory();
  const u16 size = rx.size();
  rx_buffers_.resize(size);
  for (u16 i = 0; i < size; ++i) {
    if (rx_buffers_[i].addr == 0) {
      rx_buffers_[i].addr = memory.allocate(rx_buffer_bytes_, 64);
    }
    rx_buffers_[i].len = rx_buffer_bytes_;
    const virtio::ChainBuffer buf{rx_buffers_[i].addr, rx_buffer_bytes_,
                                  /*device_writable=*/true};
    const auto handle = rx.add_chain(std::span{&buf, 1}, i);
    VFPGA_ASSERT(handle.has_value());
  }
  rx.publish();
}

VirtioNetDriver::WatchdogAction VirtioNetDriver::tx_watchdog(
    HostThread& thread) {
  VFPGA_EXPECTS(bound());
  auto& tx = transport_.queue(virtio::net::kTxQueue);
  auto& rx = transport_.queue(virtio::net::kRxQueue);
  // Reclaim whatever did complete before judging the queue stuck.
  while (const auto completion = tx.harvest()) {
    tx_free_.push_back(static_cast<u32>(completion->token));
  }
  // A broken vring or a device that latched DEVICE_NEEDS_RESET cannot
  // make progress — no amount of re-kicking helps; reset immediately.
  if (tx.broken() || rx.broken() || transport_.device_needs_reset(thread)) {
    VFPGA_ASSERT(recover(thread));
    return WatchdogAction::kReset;
  }
  const u16 in_flight = static_cast<u16>(tx.size() - tx.free_descriptors());
  if (in_flight == 0) {
    kick_retries_ = 0;
    tx_stall_since_.reset();
    return WatchdogAction::kNone;
  }
  if (!tx_stall_since_.has_value()) {
    tx_stall_since_ = thread.now();
  }
  const bool deadline_passed =
      thread.now() - *tx_stall_since_ >= watchdog_.deadline;
  if (deadline_passed || kick_retries_ >= watchdog_.max_kick_retries) {
    VFPGA_ASSERT(recover(thread));
    return WatchdogAction::kReset;
  }
  // Bounded exponential backoff, then re-ring the doorbell: a lost
  // notify left the published chains in the ring, so a repeat kick is
  // enough to restart the device FSM.
  const sim::Duration backoff =
      watchdog_.backoff_base * static_cast<i64>(1ll << kick_retries_);
  ++kick_retries_;
  thread.block_until(thread.now() + backoff);
  transport_.notify(virtio::net::kTxQueue, thread);
  ++watchdog_kicks_;
  return WatchdogAction::kRekicked;
}

bool VirtioNetDriver::xmit_frame(HostThread& thread, ConstByteSpan frame,
                                 bool needs_csum, u16 csum_start,
                                 u16 csum_offset) {
  VFPGA_EXPECTS(bound());
  VFPGA_EXPECTS(frame.size() <= 1526);
  thread.exec(thread.costs().virtio_xmit);

  auto& tx = transport_.queue(virtio::net::kTxQueue);
  if (tx_free_.empty()) {
    // Ring full: free completed skbs inline, as virtio-net's start_xmit
    // does before netif_stop_queue.
    while (const auto completion = tx.harvest()) {
      tx_free_.push_back(static_cast<u32>(completion->token));
    }
  }
  if (tx_free_.empty()) {
    // Still full: a stuck device is holding every slot. Drop the frame
    // (netif_stop_queue analogue) and leave recovery to the watchdog.
    ++tx_dropped_;
    return false;
  }
  const u32 slot = tx_free_.front();
  tx_free_.pop_front();

  NetHeader hdr;
  if (needs_csum &&
      transport_.negotiated().has(virtio::feature::net::kCsum)) {
    hdr.flags = NetHeader::kNeedsCsum;
    hdr.csum_start = csum_start;
    hdr.csum_offset = csum_offset;
  }
  std::array<u8, NetHeader::kSize> hdr_bytes{};
  hdr.encode(hdr_bytes);
  auto& memory = transport_.memory();
  memory.write(tx_buffers_[slot].hdr_addr, hdr_bytes);
  memory.write(tx_buffers_[slot].frame_addr, frame);

  const virtio::ChainBuffer chain{
      tx_buffers_[slot].hdr_addr,
      static_cast<u32>(NetHeader::kSize + frame.size()), false};
  const auto handle = tx.add_chain(std::span{&chain, 1}, slot);
  VFPGA_ASSERT(handle.has_value());
  tx.publish();
  ++tx_packets_;

  if (!tx.should_kick()) {
    return false;
  }
  // The doorbell: one posted write. The FPGA takes it from here.
  transport_.notify(virtio::net::kTxQueue, thread);
  ++tx_kicks_;
  return true;
}

u32 VirtioNetDriver::napi_poll(HostThread& thread) {
  VFPGA_EXPECTS(bound());
  thread.exec(thread.costs().virtio_rx_napi);

  auto& rx = transport_.queue(virtio::net::kRxQueue);
  auto& memory = transport_.memory();
  u32 harvested = 0;
  while (const auto completion = rx.harvest()) {
    const RxBuffer& buf = rx_buffers_[completion->token];
    VFPGA_ASSERT(completion->written >= NetHeader::kSize);
    Bytes data = memory.read_bytes(buf.addr, completion->written);
    rx_backlog_.emplace_back(data.begin() + NetHeader::kSize, data.end());
    ++rx_packets_;
    ++harvested;

    // Recycle the buffer straight back into the avail ring.
    const virtio::ChainBuffer chain{buf.addr, buf.len, true};
    const auto handle = rx.add_chain(std::span{&chain, 1}, completion->token);
    VFPGA_ASSERT(handle.has_value());
  }
  if (harvested > 0) {
    rx.publish();
    thread.exec(thread.costs().virtio_rx_refill);
    // Re-enable RX interrupts: ask for one when the next entry lands.
    rx.enable_interrupts();
  }

  // TX completions: recycle buffers, keep interrupts suppressed.
  auto& tx = transport_.queue(virtio::net::kTxQueue);
  while (const auto completion = tx.harvest()) {
    tx_free_.push_back(static_cast<u32>(completion->token));
  }
  tx.disable_interrupts();

  return harvested;
}

std::optional<Bytes> VirtioNetDriver::pop_rx_frame() {
  if (rx_backlog_.empty()) {
    return std::nullopt;
  }
  Bytes frame = std::move(rx_backlog_.front());
  rx_backlog_.pop_front();
  return frame;
}

}  // namespace vfpga::hostos
