#include "vfpga/hostos/virtio_net_driver.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/core/virtio_controller.hpp"
#include "vfpga/hostos/interrupt.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::hostos {

using virtio::net::NetHeader;

bool VirtioNetDriver::probe(const BindContext& ctx, HostThread& thread,
                            u16 requested_pairs) {
  VFPGA_EXPECTS(requested_pairs >= 1);
  ctx_ = ctx;
  requested_pairs_ = requested_pairs;
  return initialize_device(thread);
}

bool VirtioNetDriver::recover(HostThread& thread) {
  // §2.1.2 recovery: full reset (begin_probe writes status 0), feature
  // renegotiation, queue rebuild, and requeue of the (reused) buffers.
  // In-flight chains on the old rings are forfeit; upper layers retry.
  ++device_resets_;
  for (PairState& ps : pair_state_) {
    ps.kick_retries = 0;
    ps.tx_stall_since.reset();
  }
  return initialize_device(thread);
}

virtio::DriverRing& VirtioNetDriver::rx_queue(u16 pair) {
  return transport_.queue(virtio::net::rx_queue_index(pair));
}

virtio::DriverRing& VirtioNetDriver::tx_queue(u16 pair) {
  return transport_.queue(virtio::net::tx_queue_index(pair));
}

bool VirtioNetDriver::initialize_device(HostThread& thread) {
  // Device-class features the Linux virtio-net driver would accept.
  virtio::FeatureSet wanted;
  wanted.set(virtio::feature::net::kCsum);
  wanted.set(virtio::feature::net::kGuestCsum);
  wanted.set(virtio::feature::net::kMac);
  wanted.set(virtio::feature::net::kMtu);
  wanted.set(virtio::feature::net::kStatus);
  if (datapath_.want_mrg_rxbuf) {
    wanted.set(virtio::feature::net::kMrgRxbuf);
  }
  if (datapath_.want_offload) {
    wanted.set(virtio::feature::net::kHostTso4);
    wanted.set(virtio::feature::net::kHostUfo);
    wanted.set(virtio::feature::net::kGuestTso4);
    wanted.set(virtio::feature::net::kGuestUfo);
  }
  if (datapath_.want_rx_moderation) {
    wanted.set(virtio::feature::net::kCtrlVq);
    wanted.set(virtio::feature::net::kNotfCoal);
  }
  if (requested_pairs_ > 1) {
    wanted.set(virtio::feature::net::kCtrlVq);
    wanted.set(virtio::feature::net::kMq);
  }
  if (!transport_.begin_probe(ctx_, virtio::DeviceType::Net, wanted, thread)) {
    return false;
  }

  // RX pool sizing: single-buffer layout holds hdr + a full frame;
  // mergeable posts small buffers and lets frames span several. With a
  // GUEST_* offload but no MRG_RXBUF the device may hand us a coalesced
  // superframe, so single-buffer mode sizes for it (virtio-net's
  // "big packets" mode).
  mrg_active_ = transport_.negotiated().has(virtio::feature::net::kMrgRxbuf);
  const bool guest_gso =
      transport_.negotiated().has(virtio::feature::net::kGuestTso4) ||
      transport_.negotiated().has(virtio::feature::net::kGuestUfo);
  const u32 rx_frame_area =
      guest_gso ? std::max(datapath_.frame_capacity, datapath_.gso_max_bytes)
                : datapath_.frame_capacity;
  rx_buffer_bytes_ = mrg_active_
                         ? datapath_.mrg_buffer_bytes
                         : static_cast<u32>(NetHeader::kSize) + rx_frame_area;
  VFPGA_EXPECTS(rx_buffer_bytes_ > NetHeader::kSize);

  // Offload state: the device segments our UDP superframes only with
  // HOST_UFO (and CSUM, which the segmenter's per-segment checksums
  // depend on); coalesced RX superframes additionally need GUEST_UFO,
  // but that only affects what lands in the backlog.
  tso_active_ = transport_.negotiated().has(virtio::feature::net::kHostUfo) &&
                transport_.negotiated().has(virtio::feature::net::kCsum);
  rx_moderation_active_ =
      transport_.negotiated().has(virtio::feature::net::kNotfCoal) &&
      transport_.negotiated().has(virtio::feature::net::kCtrlVq);

  // Multiqueue: MQ requires the control queue to enable the pairs
  // (§5.1.5.1.1); without both negotiated, fall back to a single pair.
  mq_active_ = transport_.negotiated().has(virtio::feature::net::kMq) &&
               transport_.negotiated().has(virtio::feature::net::kCtrlVq);
  ctrl_active_ = mq_active_ || rx_moderation_active_;
  if (mq_active_) {
    max_device_pairs_ = transport_.device_config_read16(
        virtio::net::NetConfigLayout::kMaxPairsOffset, thread);
    if (max_device_pairs_ < 1) {
      return false;
    }
    pairs_ = std::min(requested_pairs_, max_device_pairs_);
    ctrl_queue_index_ = virtio::net::ctrl_queue_index(max_device_pairs_);
  } else {
    max_device_pairs_ = 1;
    pairs_ = 1;
    if (ctrl_active_) {
      // NOTF_COAL without MQ: the control queue still sits after the
      // last pair (§5.1.2) — index 2 on the single-pair personality.
      ctrl_queue_index_ = virtio::net::ctrl_queue_index(1);
    }
  }
  configured_pairs_ = pairs_;
  if (pair_state_.size() < pairs_) {
    pair_state_.resize(pairs_);
  }
  for (PairState& ps : pair_state_) {
    // Rings are rebuilt below: the device's completion log restarts at
    // zero, and any coalesced-but-unpublished TX frames are forfeit —
    // as is a mergeable span caught mid-reassembly.
    ps.rx_harvest_seq = 0;
    ps.tx_pending_kick = 0;
    ps.rx_partial.clear();
    ps.rx_partial_remaining = 0;
    ps.rx_partial_meta = RxFrame{};
    // A reset device forgets its NOTF_COAL window; start the DIM
    // controller from the low-latency profile again.
    ps.dim_profile_high = false;
  }

  // MSI-X: entry 0 = config changes, then per pair RX = 1+2p, TX = 2+2p
  // (pair 0 keeps the single-queue driver's entries 1 and 2).
  const u32 config_vec = transport_.setup_vector(0, thread);
  (void)config_vec;
  transport_.set_config_vector(0, thread);
  for (u16 p = 0; p < pairs_; ++p) {
    pair_state_[p].rx_vector =
        transport_.setup_vector(1 + 2u * p, thread);
    pair_state_[p].tx_vector =
        transport_.setup_vector(2 + 2u * p, thread);
  }

  auto& memory = transport_.memory();
  for (u16 p = 0; p < pairs_; ++p) {
    transport_.setup_queue(virtio::net::rx_queue_index(p),
                           static_cast<u16>(1 + 2 * p), thread);
    auto& tx = transport_.setup_queue(virtio::net::tx_queue_index(p),
                                      static_cast<u16>(2 + 2 * p), thread);

    // TX buffers, one per ring slot: virtio_net_hdr headroom immediately
    // followed by the frame area (single-buffer transmission; sized for
    // a full GSO superframe when the offload is requested). Allocated
    // once; a recovery cycle reuses the same memory and just rebuilds
    // the free list.
    const u32 tx_area = datapath_.want_offload
                            ? std::max(datapath_.frame_capacity,
                                       datapath_.gso_max_bytes)
                            : datapath_.frame_capacity;
    PairState& ps = pair_state_[p];
    ps.tx_buffers.resize(tx.size());
    ps.tx_free.clear();
    for (u16 i = 0; i < tx.size(); ++i) {
      if (ps.tx_buffers[i].hdr_addr == 0) {
        const HostAddr base = memory.allocate(NetHeader::kSize + tx_area, 64);
        ps.tx_buffers[i].hdr_addr = base;
        ps.tx_buffers[i].frame_addr = base + NetHeader::kSize;
      }
      ps.tx_free.push_back(i);
    }
  }

  if (ctrl_active_) {
    // The control queue is polled, not interrupt-driven: no MSI-X entry.
    auto& ctrl =
        transport_.setup_queue(ctrl_queue_index_, virtio::kNoVector, thread);
    ctrl.disable_interrupts();
    if (ctrl_cmd_addr_ == 0) {
      ctrl_cmd_addr_ = memory.allocate(16, 64);
      ctrl_ack_addr_ = memory.allocate(16, 64);
    }
  }

  if (!transport_.finish_probe(thread)) {
    return false;
  }

  // Device config: MAC + MTU.
  for (u32 i = 0; i < 6; ++i) {
    mac_.octets[i] = transport_.device_config_read8(
        virtio::net::NetConfigLayout::kMacOffset + i, thread);
  }
  if (transport_.negotiated().has(virtio::feature::net::kMtu)) {
    mtu_ = transport_.device_config_read16(
        virtio::net::NetConfigLayout::kMtuOffset, thread);
  }

  for (u16 p = 0; p < pairs_; ++p) {
    post_initial_rx_buffers(p);
    rx_queue(p).enable_interrupts();  // interrupt on the first used entry
    // Suppress TX-completion interrupts; they are harvested by NAPI.
    tx_queue(p).disable_interrupts();
  }

  if (mq_active_) {
    const auto ack = set_queue_pairs(thread, pairs_);
    if (!ack.has_value() || *ack != virtio::net::kCtrlOk) {
      return false;
    }
  }
  return true;
}

void VirtioNetDriver::post_initial_rx_buffers(u16 pair) {
  auto& rx = rx_queue(pair);
  auto& memory = transport_.memory();
  const u16 size = rx.size();
  PairState& ps = pair_state_[pair];
  ps.rx_buffers.resize(size);
  for (u16 i = 0; i < size; ++i) {
    if (ps.rx_buffers[i].addr == 0) {
      ps.rx_buffers[i].addr = memory.allocate(rx_buffer_bytes_, 64);
    }
    ps.rx_buffers[i].len = rx_buffer_bytes_;
    const virtio::ChainBuffer buf{ps.rx_buffers[i].addr, rx_buffer_bytes_,
                                  /*device_writable=*/true};
    const auto handle = rx.add_chain(std::span{&buf, 1}, i);
    VFPGA_ASSERT(handle.has_value());
  }
  rx.publish();
}

std::optional<u8> VirtioNetDriver::send_ctrl(HostThread& thread, u8 cls,
                                             u8 cmd, ConstByteSpan payload) {
  VFPGA_EXPECTS(payload.size() + 2 <= 16);  // ctrl_cmd_addr_ allocation
  auto& ctrl = transport_.queue(ctrl_queue_index_);
  auto& memory = transport_.memory();

  // Command layout (§5.1.6.5): {class, command, payload} readable, one
  // writable ack byte on the same chain.
  Bytes request;
  request.reserve(2 + payload.size());
  request.push_back(cls);
  request.push_back(cmd);
  request.insert(request.end(), payload.begin(), payload.end());
  memory.write(ctrl_cmd_addr_, request);
  const std::array<u8, 1> ack_seed = {0xff};  // neither OK nor ERR
  memory.write(ctrl_ack_addr_, ack_seed);

  const std::array<virtio::ChainBuffer, 2> chain = {
      virtio::ChainBuffer{ctrl_cmd_addr_, static_cast<u32>(request.size()),
                          /*device_writable=*/false},
      virtio::ChainBuffer{ctrl_ack_addr_, 1, /*device_writable=*/true}};
  const auto handle =
      ctrl.add_chain(std::span{chain.data(), chain.size()}, 0);
  VFPGA_ASSERT(handle.has_value());
  ctrl.publish();
  ++ctrl_commands_sent_;
  transport_.notify(ctrl_queue_index_, thread);

  // The control queue has no MSI-X vector: poll for the completion with
  // a bounded spin (the device handles the doorbell long before the
  // budget runs out; an unresponsive device yields nullopt).
  bool completed = false;
  for (int spin = 0; spin < 64 && !completed; ++spin) {
    if (ctrl.harvest().has_value()) {
      completed = true;
      break;
    }
    thread.block_until(thread.now() + sim::microseconds(1));
  }
  if (!completed) {
    return std::nullopt;
  }
  return memory.read_bytes(ctrl_ack_addr_, 1)[0];
}

std::optional<u8> VirtioNetDriver::set_queue_pairs(HostThread& thread,
                                                   u16 pairs) {
  if (!mq_active_) {
    return std::nullopt;
  }
  const std::array<u8, 2> arg = {static_cast<u8>(pairs & 0xff),
                                 static_cast<u8>(pairs >> 8)};
  const auto ack = send_ctrl(thread, virtio::net::kCtrlClassMq,
                             virtio::net::kCtrlMqVqPairsSet, arg);
  // Track the device's accepted count, but never beyond the pairs this
  // driver actually built rings and vectors for.
  if (ack.has_value() && *ack == virtio::net::kCtrlOk && pairs >= 1 &&
      pairs <= configured_pairs_) {
    pairs_ = pairs;
  }
  return ack;
}

bool VirtioNetDriver::send_rx_coalesce(HostThread& thread, u32 max_usecs,
                                       u32 max_frames) {
  if (!rx_moderation_active_) {
    return false;
  }
  std::array<u8, virtio::net::CoalRxParams::kSize> arg{};
  store_le32(arg, 0, max_usecs);
  store_le32(arg, 4, max_frames);
  const auto ack = send_ctrl(thread, virtio::net::kCtrlClassNotfCoal,
                             virtio::net::kCtrlNotfCoalRxSet, arg);
  return ack.has_value() && *ack == virtio::net::kCtrlOk;
}

void VirtioNetDriver::update_dim(HostThread& thread, u16 pair, u32 batch) {
  PairState& ps = pair_state_.at(pair);
  if (ps.rx_rate_ewma < 0.0) {
    ps.rx_rate_ewma = batch;
  } else {
    const double a = dim_.ewma_alpha;
    ps.rx_rate_ewma = a * batch + (1.0 - a) * ps.rx_rate_ewma;
  }
  // Hysteretic profile switch: reprogramming the device costs a control
  // command round-trip, so only threshold crossings act. The NOTF_COAL
  // window is device-global in this personality; with several pairs the
  // first pair to cross a watermark reprograms it for all of them.
  if (!ps.dim_profile_high && ps.rx_rate_ewma >= dim_.high_watermark) {
    if (send_rx_coalesce(thread, dim_.coalesce_usecs, dim_.coalesce_frames)) {
      ps.dim_profile_high = true;
      ++dim_updates_;
    }
  } else if (ps.dim_profile_high && ps.rx_rate_ewma <= dim_.low_watermark) {
    if (send_rx_coalesce(thread, 0, 1)) {
      ps.dim_profile_high = false;
      ++dim_updates_;
    }
  }
}

bool VirtioNetDriver::reset_steering(HostThread& thread) {
  const auto ack = set_queue_pairs(thread, pairs_);
  const bool ok = ack.has_value() && *ack == virtio::net::kCtrlOk;
  if (ok) {
    ++steering_repairs_;
  }
  return ok;
}

VirtioNetDriver::WatchdogAction VirtioNetDriver::tx_watchdog(
    HostThread& thread) {
  VFPGA_EXPECTS(bound());
  // Flush doorbells still held by TX kick coalescing: a batch whose
  // final xmit never came must not look like a stall.
  for (u16 p = 0; p < pairs_; ++p) {
    flush_tx(thread, p);
  }
  // Reclaim whatever did complete before judging any queue stuck.
  for (u16 p = 0; p < pairs_; ++p) {
    auto& tx = tx_queue(p);
    while (const auto completion = tx.harvest()) {
      pair_state_[p].tx_free.push_back(static_cast<u32>(completion->token));
    }
  }
  // A broken vring or a device that latched DEVICE_NEEDS_RESET cannot
  // make progress — no amount of re-kicking helps; reset immediately.
  bool broken = false;
  for (u16 p = 0; p < pairs_ && !broken; ++p) {
    broken = tx_queue(p).broken() || rx_queue(p).broken();
  }
  if (broken || transport_.device_needs_reset(thread)) {
    VFPGA_ASSERT(recover(thread));
    return WatchdogAction::kReset;
  }

  WatchdogAction action = WatchdogAction::kNone;
  for (u16 p = 0; p < pairs_; ++p) {
    auto& tx = tx_queue(p);
    PairState& ps = pair_state_[p];
    const u16 in_flight = static_cast<u16>(tx.size() - tx.free_descriptors());
    if (in_flight == 0) {
      ps.kick_retries = 0;
      ps.tx_stall_since.reset();
      continue;
    }
    if (!ps.tx_stall_since.has_value()) {
      ps.tx_stall_since = thread.now();
    }
    const bool deadline_passed =
        thread.now() - *ps.tx_stall_since >= watchdog_.deadline;
    if (deadline_passed || ps.kick_retries >= watchdog_.max_kick_retries) {
      VFPGA_ASSERT(recover(thread));
      return WatchdogAction::kReset;
    }
    // Bounded exponential backoff, then re-ring this queue's doorbell: a
    // lost notify left the published chains in the ring, so a repeat
    // kick is enough to restart the device FSM — per-queue recovery,
    // the other pairs keep running undisturbed.
    const sim::Duration backoff =
        watchdog_.backoff_base * static_cast<i64>(1ll << ps.kick_retries);
    ++ps.kick_retries;
    thread.block_until(thread.now() + backoff);
    transport_.notify(virtio::net::tx_queue_index(p), thread);
    ++watchdog_kicks_;
    action = WatchdogAction::kRekicked;
  }
  return action;
}

bool VirtioNetDriver::xmit_frame(HostThread& thread, ConstByteSpan frame,
                                 bool needs_csum, u16 csum_start,
                                 u16 csum_offset, u16 pair,
                                 bool more_coming) {
  TxOffload offload;
  offload.needs_csum = needs_csum;
  offload.csum_start = csum_start;
  offload.csum_offset = csum_offset;
  return xmit_frame(thread, frame, offload, pair, more_coming);
}

bool VirtioNetDriver::xmit_frame(HostThread& thread, ConstByteSpan frame,
                                 const TxOffload& offload, u16 pair,
                                 bool more_coming) {
  VFPGA_EXPECTS(bound());
  const bool gso = offload.gso_type != NetHeader::kGsoNone;
  // Superframes need the device-side segmenter: submitting one without
  // the negotiated offload (or the mandatory checksum request,
  // §5.1.6.2) is a driver bug, not a runtime condition.
  VFPGA_EXPECTS(!gso || (tso_active_ && offload.needs_csum));
  VFPGA_EXPECTS(frame.size() <=
                (gso ? std::max(datapath_.frame_capacity,
                                datapath_.gso_max_bytes)
                     : datapath_.frame_capacity));
  VFPGA_EXPECTS(pair < pairs_);
  thread.exec(thread.costs().virtio_xmit);

  auto& tx = tx_queue(pair);
  PairState& ps = pair_state_[pair];
  if (ps.tx_free.empty()) {
    // Ring full: free completed skbs inline, as virtio-net's start_xmit
    // does before netif_stop_queue.
    while (const auto completion = tx.harvest()) {
      ps.tx_free.push_back(static_cast<u32>(completion->token));
    }
  }
  if (ps.tx_free.empty()) {
    // Still full: a stuck device is holding every slot. Drop the frame
    // (netif_stop_queue analogue) and leave recovery to the watchdog.
    ++tx_dropped_;
    return false;
  }
  const u32 slot = ps.tx_free.front();
  ps.tx_free.pop_front();

  NetHeader hdr;
  if (offload.needs_csum &&
      transport_.negotiated().has(virtio::feature::net::kCsum)) {
    hdr.flags = NetHeader::kNeedsCsum;
    hdr.csum_start = offload.csum_start;
    hdr.csum_offset = offload.csum_offset;
  }
  if (gso) {
    hdr.gso_type = offload.gso_type;
    hdr.gso_size = offload.gso_size;
    hdr.hdr_len = offload.hdr_len;
    ++tx_gso_frames_;
  }
  std::array<u8, NetHeader::kSize> hdr_bytes{};
  hdr.encode(hdr_bytes);
  auto& memory = transport_.memory();
  memory.write(ps.tx_buffers[slot].hdr_addr, hdr_bytes);
  memory.write(ps.tx_buffers[slot].frame_addr, frame);

  std::optional<u16> handle;
  if (datapath_.tx_path == TxPath::kBounceCopy) {
    // Contiguous bounce buffer, one descriptor. The calibrated
    // virtio_xmit segment covers the sub-MTU memcpy; jumbo payloads
    // charge it explicitly when asked to.
    if (datapath_.charge_tx_copy) {
      thread.copy(NetHeader::kSize + frame.size());
    }
    const virtio::ChainBuffer chain{
        ps.tx_buffers[slot].hdr_addr,
        static_cast<u32>(NetHeader::kSize + frame.size()), false};
    handle = tx.add_chain(std::span{&chain, 1}, slot);
  } else {
    // Zero-copy: the header and the frame's pages go out as separate
    // descriptors — no bounce memcpy; the charge is one DMA mapping per
    // segment (dma_map_single / sg-entry build).
    const u32 seg = std::max<u32>(datapath_.sg_segment_bytes, 1);
    std::vector<virtio::ChainBuffer> sg;
    sg.reserve(2 + frame.size() / seg);
    sg.push_back(virtio::ChainBuffer{ps.tx_buffers[slot].hdr_addr,
                                     static_cast<u32>(NetHeader::kSize),
                                     false});
    for (u64 off = 0; off < frame.size(); off += seg) {
      const u32 chunk =
          static_cast<u32>(std::min<u64>(seg, frame.size() - off));
      sg.push_back(virtio::ChainBuffer{ps.tx_buffers[slot].frame_addr + off,
                                       chunk, false});
    }
    for (u64 i = 0; i < sg.size(); ++i) {
      thread.exec(thread.costs().dma_map_segment);
    }
    tx_sg_segments_ += sg.size();
    const bool indirect =
        datapath_.tx_path == TxPath::kScatterGatherIndirect &&
        transport_.negotiated().has(virtio::feature::kRingIndirectDesc);
    const std::span<const virtio::ChainBuffer> list{sg.data(), sg.size()};
    handle = indirect ? tx.add_chain_indirect(list, slot)
                      : tx.add_chain(list, slot);
    if (!handle.has_value()) {
      // A chained sg-list needs one ring descriptor per segment, so the
      // ring can fill before the slot pool does. Reclaim completions and
      // retry once; drop on a genuinely full ring.
      while (const auto completion = tx.harvest()) {
        ps.tx_free.push_back(static_cast<u32>(completion->token));
      }
      handle = indirect ? tx.add_chain_indirect(list, slot)
                        : tx.add_chain(list, slot);
    }
  }
  if (!handle.has_value()) {
    ps.tx_free.push_front(slot);
    ++tx_dropped_;
    return false;
  }
  ++tx_packets_;
  ++ps.tx_pending_kick;

  if (more_coming && ps.tx_pending_kick < busy_poll_policy_.kick_coalesce) {
    // xmit_more: hold the publish and the doorbell. The whole batch
    // becomes one avail-idx update — one EVENT_IDX window, at most one
    // kick — when the final frame (or an explicit flush_tx) lands.
    ++tx_kicks_coalesced_;
    return false;
  }
  return flush_tx(thread, pair);
}

bool VirtioNetDriver::flush_tx(HostThread& thread, u16 pair) {
  VFPGA_EXPECTS(bound());
  VFPGA_EXPECTS(pair < pairs_);
  PairState& ps = pair_state_[pair];
  if (ps.tx_pending_kick == 0) {
    return false;
  }
  ps.tx_pending_kick = 0;
  auto& tx = tx_queue(pair);
  tx.publish();

  if (!tx.should_kick()) {
    return false;
  }
  // The doorbell: one posted write. The FPGA takes it from here.
  transport_.notify(virtio::net::tx_queue_index(pair), thread);
  ++tx_kicks_;
  return true;
}

bool VirtioNetDriver::harvest_one_rx(virtio::DriverRing& rx, PairState& ps) {
  const auto completion = rx.harvest();
  VFPGA_ASSERT(completion.has_value());
  const RxBuffer& buf = ps.rx_buffers[completion->token];
  const Bytes data =
      transport_.memory().read_bytes(buf.addr, completion->written);
  bool frame_done = false;
  if (ps.rx_partial_remaining > 0) {
    // Continuation buffer of a mergeable span: raw frame bytes, no
    // header (§5.1.6.4 — only the first buffer carries virtio_net_hdr).
    ps.rx_partial.insert(ps.rx_partial.end(), data.begin(), data.end());
    if (--ps.rx_partial_remaining == 0) {
      RxFrame done = std::move(ps.rx_partial_meta);
      done.frame = std::move(ps.rx_partial);
      if (done.gso_type != NetHeader::kGsoNone) {
        ++rx_gro_frames_;
      }
      ps.rx_backlog.push_back(std::move(done));
      ps.rx_partial = Bytes{};
      ps.rx_partial_meta = RxFrame{};
      ++rx_packets_;
      ++ps.rx_packets;
      ++rx_merged_frames_;
      frame_done = true;
    }
  } else {
    VFPGA_ASSERT(completion->written >= NetHeader::kSize);
    const NetHeader vhdr = NetHeader::decode(data);
    RxFrame meta;
    meta.csum_valid = (vhdr.flags & NetHeader::kDataValid) != 0;
    meta.gso_type = vhdr.gso_type;
    meta.gso_size = vhdr.gso_size;
    const u16 num_buffers =
        mrg_active_ ? std::max<u16>(vhdr.num_buffers, 1) : u16{1};
    if (num_buffers <= 1) {
      meta.frame.assign(data.begin() + NetHeader::kSize, data.end());
      if (meta.gso_type != NetHeader::kGsoNone) {
        ++rx_gro_frames_;
      }
      ps.rx_backlog.push_back(std::move(meta));
      ++rx_packets_;
      ++ps.rx_packets;
      frame_done = true;
    } else {
      ps.rx_partial.assign(data.begin() + NetHeader::kSize, data.end());
      ps.rx_partial_remaining = static_cast<u16>(num_buffers - 1);
      ps.rx_partial_meta = std::move(meta);
    }
  }
  ++ps.rx_harvest_seq;

  // Recycle the buffer straight back into the avail ring.
  const virtio::ChainBuffer chain{buf.addr, buf.len, true};
  const auto handle = rx.add_chain(std::span{&chain, 1}, completion->token);
  VFPGA_ASSERT(handle.has_value());
  return frame_done;
}

u32 VirtioNetDriver::napi_poll(HostThread& thread, u16 pair) {
  VFPGA_EXPECTS(bound());
  VFPGA_EXPECTS(pair < pairs_);
  thread.exec(thread.costs().virtio_rx_napi);

  auto& rx = rx_queue(pair);
  PairState& ps = pair_state_[pair];
  u32 harvested = 0;
  u32 buffers = 0;
  while (rx.used_pending()) {
    harvested += harvest_one_rx(rx, ps) ? 1u : 0u;
    ++buffers;
  }
  if (buffers > 0) {
    rx.publish();
    thread.exec(thread.costs().virtio_rx_refill);
    // Re-enable RX interrupts: ask for one when the next entry lands.
    rx.enable_interrupts();
  }

  // TX completions: recycle buffers, keep interrupts suppressed.
  auto& tx = tx_queue(pair);
  while (const auto completion = tx.harvest()) {
    ps.tx_free.push_back(static_cast<u32>(completion->token));
  }
  tx.disable_interrupts();

  // DIM step: this poll's batch size is the arrival-rate sample. Only
  // non-empty polls count — NAPI runs off an interrupt, so an empty
  // harvest is a spurious wake, not a rate observation.
  if (rx_moderation_active_ && harvested > 0) {
    update_dim(thread, pair, harvested);
  }
  return harvested;
}

u32 VirtioNetDriver::busy_poll(HostThread& thread, u16 pair,
                               sim::Duration budget) {
  VFPGA_EXPECTS(bound());
  VFPGA_EXPECTS(pair < pairs_);
  if (budget <= sim::Duration{}) {
    budget = busy_poll_policy_.default_budget;
  }
  ++busy_polls_;
  PairState& ps = pair_state_[pair];

  // A deferred TX doorbell would deadlock the poll: the device has not
  // seen the frames whose completions we are about to spin for.
  flush_tx(thread, pair);

  auto& rx = rx_queue(pair);
  // Disarm the pair's RX vector: poll mode owns this queue now. With
  // EVENT_IDX this is the used_event push-away write; the device's next
  // completion then skips the MSI-X message entirely.
  rx.disable_interrupts();
  thread.exec(thread.costs().irq_disarm);

  const sim::SimTime enter = thread.now();
  const sim::SimTime deadline = enter + budget;
  const u16 rx_index = virtio::net::rx_queue_index(pair);
  u32 harvested = 0;
  u32 buffers = 0;
  u64 spins = 0;
  for (;;) {
    VFPGA_ASSERT(spins < busy_poll_policy_.max_spin_iterations);
    ++spins;
    // One poll iteration: re-read the used ring's idx cache line.
    thread.exec_poll(thread.costs().busy_poll_iteration);
    const auto visible = ctx_.device->completion_visible_time(
        rx_index, ps.rx_harvest_seq);
    if (!visible.has_value()) {
      // Nothing further is in flight: with the transaction-level device
      // (completions are computed synchronously at notify) no amount of
      // extra spinning can make data appear.
      break;
    }
    if (*visible > deadline) {
      break;  // will not land within the budget: fall back to interrupts
    }
    if (*visible > thread.now()) {
      // Spin across the arrival gap: the core stays runnable (full
      // interference accrual) until the used-ring write lands.
      thread.spin_until(*visible);
    }
    if (buffers == 0) {
      note_rx_wait(pair, thread.now() - enter);
    }
    // Batched harvest: the one used-idx read this iteration paid for
    // covers every completion whose used-ring write is already visible,
    // not just the one the spin ended on — drain them all before the
    // next poll charge.
    harvested += harvest_one_rx(rx, ps) ? 1u : 0u;
    ++buffers;
    for (;;) {
      const auto next = ctx_.device->completion_visible_time(
          rx_index, ps.rx_harvest_seq);
      if (!next.has_value() || *next > thread.now()) {
        break;
      }
      harvested += harvest_one_rx(rx, ps) ? 1u : 0u;
      ++buffers;
    }
  }
  busy_poll_spins_ += spins;
  busy_poll_harvested_ += harvested;

  if (buffers > 0) {
    rx.publish();  // repost the recycled buffers
    thread.exec(thread.costs().virtio_rx_refill);
    // Retire the interrupts our harvests made moot: deliveries up to
    // now correspond to completions already taken above. A pending
    // delivery with a future timestamp belongs to a completion we chose
    // to leave (past the budget) — it stays queued so the blocking
    // fallback still gets its wake.
    InterruptController& irq = *ctx_.irq;
    while (const auto at = irq.next_pending(ps.rx_vector)) {
      if (*at > thread.now()) {
        break;
      }
      irq.consume(ps.rx_vector);
    }
  } else {
    // Budget expired dry: charge the full wait to the EWMA so the
    // adaptive controller drifts toward sleeping on this pair.
    note_rx_wait(pair, budget);
  }

  // TX completions: recycle buffers, keep interrupts suppressed.
  auto& tx = tx_queue(pair);
  while (const auto completion = tx.harvest()) {
    ps.tx_free.push_back(static_cast<u32>(completion->token));
  }
  tx.disable_interrupts();

  // Hybrid exit: re-arm so a completion landing after the budget raises
  // the normal RX interrupt and wakes a sleeper.
  rx.enable_interrupts();
  thread.exec(thread.costs().irq_rearm);
  return harvested;
}

bool VirtioNetDriver::should_busy_poll(u16 pair) const {
  const double ewma = pair_state_.at(pair).rx_wait_ewma_us;
  // No observation yet: optimistically spin — one budget-bounded poll
  // either pays off or seeds the EWMA with the miss.
  if (ewma < 0.0) {
    return true;
  }
  return ewma <= busy_poll_policy_.spin_threshold.micros();
}

void VirtioNetDriver::note_rx_wait(u16 pair, sim::Duration wait) {
  PairState& ps = pair_state_.at(pair);
  const double us = wait.micros();
  if (ps.rx_wait_ewma_us < 0.0) {
    ps.rx_wait_ewma_us = us;
  } else {
    const double a = busy_poll_policy_.ewma_alpha;
    ps.rx_wait_ewma_us = a * us + (1.0 - a) * ps.rx_wait_ewma_us;
  }
}

std::optional<VirtioNetDriver::RxFrame> VirtioNetDriver::pop_rx_frame(
    u16 pair) {
  PairState& ps = pair_state_.at(pair);
  if (ps.rx_backlog.empty()) {
    return std::nullopt;
  }
  RxFrame frame = std::move(ps.rx_backlog.front());
  ps.rx_backlog.pop_front();
  return frame;
}

namespace {

void put_rx_frame(migrate::StateWriter& w,
                  const VirtioNetDriver::RxFrame& f) {
  w.put_blob(f.frame);
  w.put_bool(f.csum_valid);
  w.put_u8(f.gso_type);
  w.put_u16(f.gso_size);
}

VirtioNetDriver::RxFrame get_rx_frame(migrate::StateReader& r) {
  VirtioNetDriver::RxFrame f;
  f.frame = r.get_blob();
  f.csum_valid = r.get_bool();
  f.gso_type = r.get_u8();
  f.gso_size = r.get_u16();
  return f;
}

}  // namespace

void VirtioNetDriver::save_state(migrate::StateWriter& w) const {
  transport_.save_state(w);
  w.put_bytes(mac_.octets);
  w.put_u16(mtu_);
  w.put_u16(requested_pairs_);
  w.put_u16(pairs_);
  w.put_u16(configured_pairs_);
  w.put_u16(max_device_pairs_);
  w.put_bool(mq_active_);
  w.put_bool(ctrl_active_);
  w.put_bool(tso_active_);
  w.put_bool(rx_moderation_active_);
  w.put_u16(ctrl_queue_index_);
  w.put_u64(ctrl_cmd_addr_);
  w.put_u64(ctrl_ack_addr_);
  w.put_u32(rx_buffer_bytes_);
  w.put_bool(mrg_active_);

  w.put_u16(static_cast<u16>(pair_state_.size()));
  for (const PairState& ps : pair_state_) {
    w.put_u32(static_cast<u32>(ps.rx_buffers.size()));
    for (const RxBuffer& b : ps.rx_buffers) {
      w.put_u64(b.addr);
      w.put_u32(b.len);
    }
    w.put_u32(static_cast<u32>(ps.tx_buffers.size()));
    for (const TxBuffer& b : ps.tx_buffers) {
      w.put_u64(b.hdr_addr);
      w.put_u64(b.frame_addr);
    }
    w.put_u32(static_cast<u32>(ps.tx_free.size()));
    for (u32 slot : ps.tx_free) {
      w.put_u32(slot);
    }
    w.put_u32(static_cast<u32>(ps.rx_backlog.size()));
    for (const RxFrame& f : ps.rx_backlog) {
      put_rx_frame(w, f);
    }
    w.put_u32(ps.rx_vector);
    w.put_u32(ps.tx_vector);
    w.put_u32(ps.kick_retries);
    w.put_bool(ps.tx_stall_since.has_value());
    w.put_time(ps.tx_stall_since.value_or(sim::SimTime{}));
    w.put_u64(ps.rx_packets);
    w.put_u64(ps.rx_harvest_seq);
    w.put_u32(ps.tx_pending_kick);
    w.put_f64(ps.rx_wait_ewma_us);
    w.put_blob(ps.rx_partial);
    w.put_u16(ps.rx_partial_remaining);
    put_rx_frame(w, ps.rx_partial_meta);
    w.put_f64(ps.rx_rate_ewma);
    w.put_bool(ps.dim_profile_high);
  }

  w.put_u64(tx_packets_);
  w.put_u64(rx_packets_);
  w.put_u64(tx_kicks_);
  w.put_u64(tx_kicks_coalesced_);
  w.put_u64(tx_dropped_);
  w.put_u64(tx_sg_segments_);
  w.put_u64(rx_merged_frames_);
  w.put_u64(busy_polls_);
  w.put_u64(busy_poll_harvested_);
  w.put_u64(busy_poll_spins_);
  w.put_u64(device_resets_);
  w.put_u64(watchdog_kicks_);
  w.put_u64(steering_repairs_);
  w.put_u64(ctrl_commands_sent_);
  w.put_u64(tx_gso_frames_);
  w.put_u64(rx_gro_frames_);
  w.put_u64(dim_updates_);
}

void VirtioNetDriver::load_state(migrate::StateReader& r) {
  transport_.load_state(r);
  if (r.failed()) {
    return;
  }
  r.get_bytes(mac_.octets);
  mtu_ = r.get_u16();
  requested_pairs_ = r.get_u16();
  pairs_ = r.get_u16();
  configured_pairs_ = r.get_u16();
  max_device_pairs_ = r.get_u16();
  mq_active_ = r.get_bool();
  ctrl_active_ = r.get_bool();
  tso_active_ = r.get_bool();
  rx_moderation_active_ = r.get_bool();
  ctrl_queue_index_ = r.get_u16();
  ctrl_cmd_addr_ = r.get_u64();
  ctrl_ack_addr_ = r.get_u64();
  rx_buffer_bytes_ = r.get_u32();
  mrg_active_ = r.get_bool();

  const u16 pair_count = r.get_u16();
  if (pair_count != pair_state_.size()) {
    r.fail();
    return;
  }
  for (PairState& ps : pair_state_) {
    // Length guard: every serialized element costs at least 4 bytes, so
    // a count exceeding the remaining stream is corrupt — refuse before
    // resize() turns it into a multi-gigabyte allocation.
    const u32 rx_count = r.get_u32();
    if (rx_count > r.remaining() / 4) {
      r.fail();
      return;
    }
    ps.rx_buffers.resize(rx_count);
    for (RxBuffer& b : ps.rx_buffers) {
      b.addr = r.get_u64();
      b.len = r.get_u32();
    }
    const u32 tx_count = r.get_u32();
    if (tx_count > r.remaining() / 4) {
      r.fail();
      return;
    }
    ps.tx_buffers.resize(tx_count);
    for (TxBuffer& b : ps.tx_buffers) {
      b.hdr_addr = r.get_u64();
      b.frame_addr = r.get_u64();
    }
    ps.tx_free.clear();
    const u32 free_count = r.get_u32();
    for (u32 i = 0; i < free_count && !r.failed(); ++i) {
      ps.tx_free.push_back(r.get_u32());
    }
    ps.rx_backlog.clear();
    const u32 backlog = r.get_u32();
    for (u32 i = 0; i < backlog && !r.failed(); ++i) {
      ps.rx_backlog.push_back(get_rx_frame(r));
    }
    ps.rx_vector = r.get_u32();
    ps.tx_vector = r.get_u32();
    ps.kick_retries = r.get_u32();
    const bool stalled = r.get_bool();
    const sim::SimTime stall_at = r.get_time();
    ps.tx_stall_since =
        stalled ? std::optional<sim::SimTime>{stall_at} : std::nullopt;
    ps.rx_packets = r.get_u64();
    ps.rx_harvest_seq = r.get_u64();
    ps.tx_pending_kick = r.get_u32();
    ps.rx_wait_ewma_us = r.get_f64();
    ps.rx_partial = r.get_blob();
    ps.rx_partial_remaining = r.get_u16();
    ps.rx_partial_meta = get_rx_frame(r);
    ps.rx_rate_ewma = r.get_f64();
    ps.dim_profile_high = r.get_bool();
    if (r.failed()) {
      return;
    }
  }

  tx_packets_ = r.get_u64();
  rx_packets_ = r.get_u64();
  tx_kicks_ = r.get_u64();
  tx_kicks_coalesced_ = r.get_u64();
  tx_dropped_ = r.get_u64();
  tx_sg_segments_ = r.get_u64();
  rx_merged_frames_ = r.get_u64();
  busy_polls_ = r.get_u64();
  busy_poll_harvested_ = r.get_u64();
  busy_poll_spins_ = r.get_u64();
  device_resets_ = r.get_u64();
  watchdog_kicks_ = r.get_u64();
  steering_repairs_ = r.get_u64();
  ctrl_commands_sent_ = r.get_u64();
  tx_gso_frames_ = r.get_u64();
  rx_gro_frames_ = r.get_u64();
  dim_updates_ = r.get_u64();
}

}  // namespace vfpga::hostos
