// Host-kernel virtio-net front-end driver model.
//
// Binds to the FPGA exactly as Linux's virtio-pci-modern + virtio_net
// pair would: the VirtioPciTransport handles matching, capability
// walking, the status/feature handshake, MSI-X and virtqueue
// construction (split or packed per negotiation); this class contributes
// the network semantics — virtio_net_hdr framing, single-doorbell
// transmission (§IV-A), and NAPI-style reception where the RX interrupt
// triggers a poll that harvests used buffers and refills the ring.
//
// Multiqueue (VIRTIO_NET_F_MQ): the driver can negotiate up to the
// device's max_virtqueue_pairs RX/TX pairs, each with its own MSI-X
// vectors, buffer pools and NAPI context, and enables them with
// VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET on the control virtqueue. With one
// pair (the default) the behaviour is exactly the paper's single-queue
// driver.
//
// Timing: probe-time costs are charged but irrelevant (not on the
// measured path); the xmit/poll entry points charge the calibrated
// cost-model segments against the HostThread they run on.
#pragma once

#include <deque>
#include <optional>

#include "vfpga/hostos/virtio_transport.hpp"
#include "vfpga/net/addr.hpp"

namespace vfpga::hostos {

class VirtioNetDriver {
 public:
  using BindContext = VirtioPciTransport::BindContext;

  /// TX descriptor strategy.
  enum class TxPath : u8 {
    /// The paper's driver: memcpy the frame into a contiguous bounce
    /// buffer, post one descriptor. Default — exactly the legacy shape.
    kBounceCopy,
    /// Zero-copy: describe the header and the frame's pages as a
    /// descriptor chain. No bounce memcpy; charges per-segment DMA
    /// mapping instead.
    kScatterGather,
    /// Zero-copy with the whole sg-list in a one-slot indirect table
    /// (VIRTIO_RING_F_INDIRECT_DESC): the ring carries one descriptor
    /// regardless of segment count and the device fetches the table in
    /// a single DMA read.
    kScatterGatherIndirect,
  };

  /// Datapath configuration. Must be set before probe(); the buffer
  /// pools and the feature request are derived from it during
  /// initialization. Defaults reproduce the legacy driver bit for bit.
  struct DatapathOptions {
    TxPath tx_path = TxPath::kBounceCopy;
    /// Model the bounce memcpy explicitly (thread.copy of hdr+frame) on
    /// the kBounceCopy path. Off by default: the calibrated virtio_xmit
    /// segment already folds in the sub-MTU memcpy the paper's figures
    /// run with; jumbo streaming payloads leave that regime and must
    /// charge the copy to be comparable with the sg paths.
    bool charge_tx_copy = false;
    /// Request VIRTIO_NET_F_MRG_RXBUF: post mrg_buffer_bytes RX buffers
    /// and let one frame span several (§5.1.6.4).
    bool want_mrg_rxbuf = false;
    /// Per-RX-buffer size when mergeable is negotiated.
    u32 mrg_buffer_bytes = 2048;
    /// Largest Ethernet frame the TX/RX pools are sized for.
    u32 frame_capacity = 1526;
    /// Page granularity of zero-copy TX segments (dma_map_single is
    /// page-granular on real hardware).
    u32 sg_segment_bytes = 4096;
    /// Request the segmentation offloads (HOST_TSO4/HOST_UFO on TX,
    /// GUEST_TSO4/GUEST_UFO on RX). When negotiated, xmit_frame accepts
    /// GSO superframes up to gso_max_bytes and the RX backlog carries
    /// the device's DATA_VALID / coalescing metadata.
    bool want_offload = false;
    /// Request VIRTIO_NET_F_NOTF_COAL (+ CTRL_VQ) and run the DIM-style
    /// adaptive interrupt-moderation controller: napi_poll tracks a
    /// per-pair EWMA of the completion batch size and reprograms the
    /// device's RX coalescing window on threshold crossings.
    bool want_rx_moderation = false;
    /// Largest GSO superframe (hdr excluded) the TX pool is sized for
    /// when want_offload is set. 65535 mirrors the kernel's
    /// GSO_LEGACY_MAX_SIZE.
    u32 gso_max_bytes = 65535;

    /// Pool sizing for a given device MTU. The constant slack matches
    /// the legacy 1526-byte frame area at the default MTU of 1500.
    [[nodiscard]] static constexpr u32 frame_capacity_for_mtu(u32 mtu) {
      return 14 + mtu + 12;
    }
  };
  void set_datapath(const DatapathOptions& options) { datapath_ = options; }
  [[nodiscard]] const DatapathOptions& datapath() const { return datapath_; }
  /// True when VIRTIO_NET_F_MRG_RXBUF was negotiated on the last probe.
  [[nodiscard]] bool mergeable_rx_active() const { return mrg_active_; }

  /// Probe and initialize the device (§3.1.1 init sequence). `thread`
  /// pays the MMIO costs. `requested_pairs` > 1 asks for multiqueue;
  /// the result is capped by what the device supports (and falls back
  /// to 1 when VIRTIO_NET_F_MQ is not negotiated). Returns false when
  /// the device is not a virtio-net modern device or negotiation fails.
  bool probe(const BindContext& ctx, HostThread& thread,
             u16 requested_pairs = 1);

  [[nodiscard]] bool bound() const { return transport_.bound(); }
  [[nodiscard]] virtio::FeatureSet negotiated() const {
    return transport_.negotiated();
  }
  /// Queue pairs actually negotiated and enabled.
  [[nodiscard]] u16 queue_pairs() const { return pairs_; }
  /// max_virtqueue_pairs the device advertised (1 when MQ is off).
  [[nodiscard]] u16 max_device_pairs() const { return max_device_pairs_; }
  [[nodiscard]] u32 rx_vector() const { return pair_state_[0].rx_vector; }
  [[nodiscard]] u32 tx_vector() const { return pair_state_[0].tx_vector; }
  [[nodiscard]] u32 rx_vector(u16 pair) const {
    return pair_state_.at(pair).rx_vector;
  }
  [[nodiscard]] u32 tx_vector(u16 pair) const {
    return pair_state_.at(pair).tx_vector;
  }
  [[nodiscard]] net::MacAddr mac() const { return mac_; }
  [[nodiscard]] u16 mtu() const { return mtu_; }
  [[nodiscard]] bool using_packed_rings() const {
    return transport_.using_packed_rings();
  }

  /// Transmit one Ethernet frame on `pair`'s TX queue (virtio_net_hdr
  /// is prepended here, in the driver, as virtio-net does). `needs_csum`
  /// marks a frame whose L4 checksum was left for the device
  /// (VIRTIO_NET_F_CSUM negotiated); csum_start/csum_offset follow the
  /// UDP convention. `more_coming` is the xmit_more/MSG_MORE hint: the
  /// caller promises another frame (or an explicit flush_tx) on this
  /// pair immediately, so the driver may defer the avail publish and the
  /// doorbell to coalesce up to BusyPollPolicy::kick_coalesce frames
  /// into one kick. Returns true when the device was kicked.
  bool xmit_frame(HostThread& thread, ConstByteSpan frame, bool needs_csum,
                  u16 csum_start = 0, u16 csum_offset = 0, u16 pair = 0,
                  bool more_coming = false);

  /// Full virtio_net_hdr control block for one transmission — the
  /// skb_shared_info fields virtio-net copies into the header. A
  /// gso_type other than kGsoNone marks a superframe the device must
  /// segment (needs_csum is then mandatory per §5.1.6.2).
  struct TxOffload {
    bool needs_csum = false;
    u16 csum_start = 0;
    u16 csum_offset = 0;
    u8 gso_type = 0;  ///< virtio::net::NetHeader::kGso*
    u16 gso_size = 0;
    u16 hdr_len = 0;
  };

  /// Transmit with the full offload control block. Superframes (gso_type
  /// set) may exceed frame_capacity up to gso_max_bytes when the offload
  /// was negotiated.
  bool xmit_frame(HostThread& thread, ConstByteSpan frame,
                  const TxOffload& offload, u16 pair = 0,
                  bool more_coming = false);

  /// True when the device segments UDP superframes for us (HOST_UFO +
  /// CSUM negotiated on the last probe).
  [[nodiscard]] bool tso_active() const { return tso_active_; }
  /// True when NOTF_COAL was negotiated and the DIM controller may
  /// reprogram the device's RX interrupt-moderation window.
  [[nodiscard]] bool rx_moderation_active() const {
    return rx_moderation_active_;
  }

  /// Publish any coalesced-but-unpublished TX chains on `pair` and ring
  /// the doorbell if the device asked for it (one EVENT_IDX decision for
  /// the whole batch). Returns true when the device was kicked.
  bool flush_tx(HostThread& thread, u16 pair = 0);

  /// NAPI poll for one pair: harvest RX completions into that pair's
  /// receive backlog and recycle TX completions; refill + re-enable
  /// interrupts. Returns the number of frames harvested.
  u32 napi_poll(HostThread& thread, u16 pair = 0);

  /// Busy-poll knobs (Linux SO_BUSY_POLL / napi_busy_loop semantics in
  /// the modeled stack) and the adaptive spin-vs-sleep controller.
  struct BusyPollPolicy {
    /// Spin budget per busy_poll() call before falling back to
    /// interrupts (the SO_BUSY_POLL microseconds value).
    sim::Duration default_budget = sim::microseconds(50);
    /// TX doorbell coalescing: frames batched per kick under the
    /// xmit_more hint. 1 = kick per frame (the interrupt path's shape).
    u32 kick_coalesce = 1;
    /// EWMA smoothing for the observed data-arrival wait per pair.
    double ewma_alpha = 0.25;
    /// Adaptive mode spins when the pair's predicted wait is at or
    /// below this (like adaptive IRQ coalescing thresholds). Sized to
    /// cover the device's round-trip spread (~8-20us on the modeled
    /// link): a budget-expiry observation (default_budget charged on a
    /// dry poll) still lands above it, so a pair whose traffic stops
    /// drifts back to sleeping within a few calls.
    sim::Duration spin_threshold = sim::microseconds(25);
    /// Hard cap on spin iterations per call: a pathological loop fails
    /// fast instead of hanging the simulation.
    u64 max_spin_iterations = 2'000'000;
  };
  void set_busy_poll_policy(const BusyPollPolicy& policy) {
    busy_poll_policy_ = policy;
  }
  [[nodiscard]] const BusyPollPolicy& busy_poll_policy() const {
    return busy_poll_policy_;
  }

  /// DIM-style adaptive interrupt moderation (cf. Linux net_dim): track
  /// an EWMA of completions harvested per napi_poll and flip the
  /// device's NOTF_COAL RX window between a low-latency and a batching
  /// profile on (hysteretic) threshold crossings.
  struct DimPolicy {
    /// EWMA smoothing for the per-poll batch size.
    double ewma_alpha = 0.25;
    /// EWMA at or above this arms the batching profile.
    double high_watermark = 4.0;
    /// EWMA at or below this returns to the low-latency profile
    /// (< high_watermark: the gap is the hysteresis band).
    double low_watermark = 1.5;
    /// Batching profile: fire after this many withheld completions ...
    u32 coalesce_frames = 8;
    /// ... or when the holdoff window (microseconds) expires.
    u32 coalesce_usecs = 32;
  };
  void set_dim_policy(const DimPolicy& policy) { dim_ = policy; }
  [[nodiscard]] const DimPolicy& dim_policy() const { return dim_; }

  /// Poll-mode RX for one pair: flush any coalesced TX kicks, disarm
  /// the pair's RX vector, and spin on the used ring — harvesting
  /// completions as their used-ring writes become visible — until
  /// nothing more can land within `budget` (zero = policy default).
  /// Re-arms interrupts on exit (hybrid fallback: a completion arriving
  /// after the budget expires raises the normal RX interrupt). Returns
  /// frames harvested into the backlog.
  u32 busy_poll(HostThread& thread, u16 pair = 0,
                sim::Duration budget = sim::Duration{});

  /// Adaptive controller decision for `pair`: spin (true) when the
  /// EWMA of recently observed waits predicts data within
  /// spin_threshold, sleep (false) otherwise.
  [[nodiscard]] bool should_busy_poll(u16 pair = 0) const;

  /// Feed the adaptive EWMA with a wait observed outside busy_poll()
  /// (the interrupt path's block-until-IRQ duration).
  void note_rx_wait(u16 pair, sim::Duration wait);

  /// The controller's current prediction for `pair` in microseconds
  /// (negative = no observation yet). Exposed for tests and diagnostics.
  [[nodiscard]] double rx_wait_ewma_us(u16 pair = 0) const {
    return pair_state_.at(pair).rx_wait_ewma_us;
  }

  /// TX watchdog policy: how long a stuck TX queue is tolerated and how
  /// the bounded exponential backoff re-kicks are paced before the
  /// watchdog escalates to a full device reset.
  struct WatchdogPolicy {
    sim::Duration deadline = sim::microseconds(500);
    u32 max_kick_retries = 3;
    sim::Duration backoff_base = sim::microseconds(20);
  };
  enum class WatchdogAction : u8 {
    kNone,      ///< queue healthy (or drained by the inline harvest)
    kRekicked,  ///< backoff wait + doorbell re-ring
    kReset,     ///< escalated: full reset -> renegotiate -> requeue
  };

  /// The virtio-net TX watchdog (cf. virtnet dev_watchdog), across all
  /// negotiated pairs: harvest completions, then — if a pair's
  /// transmissions are stuck — re-kick that queue with bounded
  /// exponential backoff (per-queue recovery: no device reset),
  /// escalating to recover() when the simulated-time deadline or the
  /// retry budget is exhausted. A device that latched
  /// DEVICE_NEEDS_RESET or a broken vring resets immediately.
  WatchdogAction tx_watchdog(HostThread& thread);

  /// Full recovery cycle: reset the device, renegotiate features,
  /// rebuild every queue and requeue the (reused) RX/TX buffers.
  bool recover(HostThread& thread);

  void set_watchdog_policy(const WatchdogPolicy& policy) {
    watchdog_ = policy;
  }

  /// Send VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET on the control queue and
  /// return the device's ack byte (VIRTIO_NET_OK/ERR), or nullopt when
  /// no control queue was negotiated or the command never completed.
  /// Out-of-range values are sent as-is so tests can observe rejection;
  /// driver state only updates on an in-range OK.
  std::optional<u8> set_queue_pairs(HostThread& thread, u16 pairs);

  /// Re-issue VQ_PAIRS_SET with the current pair count — resets the
  /// device's steering table, the repair for diverted flows (per-queue
  /// recovery without a device reset).
  bool reset_steering(HostThread& thread);

  /// One received frame plus the virtio_net_hdr metadata the device
  /// attached to it. csum_valid mirrors VIRTIO_NET_HDR_F_DATA_VALID:
  /// the device vouches for the L4 checksum, so the stack may skip
  /// verification even when the on-wire checksum field is stale (a
  /// GRO-coalesced superframe keeps the first segment's checksum).
  struct RxFrame {
    Bytes frame;
    bool csum_valid = false;
    u8 gso_type = 0;   ///< kGso* of a coalesced RX superframe
    u16 gso_size = 0;  ///< segment size the coalesced train used
  };

  /// Pop one received frame from `pair`'s backlog (after napi_poll
  /// queued it).
  std::optional<RxFrame> pop_rx_frame(u16 pair = 0);
  [[nodiscard]] bool rx_backlog_empty(u16 pair = 0) const {
    return pair_state_.at(pair).rx_backlog.empty();
  }

  /// Statistics.
  [[nodiscard]] u64 tx_packets() const { return tx_packets_; }
  [[nodiscard]] u64 rx_packets() const { return rx_packets_; }
  [[nodiscard]] u64 rx_packets_on(u16 pair) const {
    return pair_state_.at(pair).rx_packets;
  }
  [[nodiscard]] u64 tx_kicks() const { return tx_kicks_; }
  /// Doorbells elided by TX kick coalescing (frames that rode a later
  /// kick): tx_kicks + tx_kicks_coalesced + suppressed-by-EVENT_IDX
  /// accounts for every transmitted frame.
  [[nodiscard]] u64 tx_kicks_coalesced() const { return tx_kicks_coalesced_; }
  [[nodiscard]] u64 tx_dropped() const { return tx_dropped_; }
  /// Descriptor segments posted by the zero-copy TX paths (0 on the
  /// bounce-copy path, which posts one contiguous buffer per frame).
  [[nodiscard]] u64 tx_sg_segments() const { return tx_sg_segments_; }
  /// RX frames that spanned more than one mergeable buffer.
  [[nodiscard]] u64 rx_merged_frames() const { return rx_merged_frames_; }
  /// busy_poll() invocations / frames harvested in poll mode / spin
  /// iterations spent across all calls.
  [[nodiscard]] u64 busy_polls() const { return busy_polls_; }
  [[nodiscard]] u64 busy_poll_harvested() const {
    return busy_poll_harvested_;
  }
  [[nodiscard]] u64 busy_poll_spins() const { return busy_poll_spins_; }
  [[nodiscard]] u64 device_resets() const { return device_resets_; }
  [[nodiscard]] u64 watchdog_kicks() const { return watchdog_kicks_; }
  [[nodiscard]] u64 steering_repairs() const { return steering_repairs_; }
  [[nodiscard]] u64 ctrl_commands_sent() const { return ctrl_commands_sent_; }
  /// GSO superframes handed to the device for segmentation.
  [[nodiscard]] u64 tx_gso_frames() const { return tx_gso_frames_; }
  /// RX frames that arrived as device-coalesced (GRO) superframes.
  [[nodiscard]] u64 rx_gro_frames() const { return rx_gro_frames_; }
  /// NOTF_COAL RX_SET commands the DIM controller issued.
  [[nodiscard]] u64 dim_updates() const { return dim_updates_; }
  /// The DIM controller's current per-pair batch-size EWMA (negative =
  /// no observation yet). Exposed for tests and diagnostics.
  [[nodiscard]] double rx_rate_ewma(u16 pair = 0) const {
    return pair_state_.at(pair).rx_rate_ewma;
  }

  /// Snapshot/restore of the driver's dynamic state: transport + rings,
  /// per-pair buffer pools, RX backlogs (including a mid-span mergeable
  /// reassembly), NAPI/watchdog/DIM controllers and counters. Policies
  /// (busy-poll, watchdog, DIM, datapath options) are configuration the
  /// restore target already applied identically.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  bool initialize_device(HostThread& thread);
  void post_initial_rx_buffers(u16 pair);
  /// Submit one {class, command, payload} chain on the control queue and
  /// poll for the device's ack byte (shared by MQ and NOTF_COAL).
  std::optional<u8> send_ctrl(HostThread& thread, u8 cls, u8 cmd,
                              ConstByteSpan payload);
  /// DIM step after a poll harvested `batch` frames on `pair`: update
  /// the rate EWMA and reprogram the device's RX coalescing window when
  /// a watermark is crossed.
  void update_dim(HostThread& thread, u16 pair, u32 batch);
  /// Program the device's RX NOTF_COAL window for the current profile.
  bool send_rx_coalesce(HostThread& thread, u32 max_usecs, u32 max_frames);

  /// RX buffer bookkeeping: token -> buffer address (single-buffer
  /// layout: virtio_net_hdr + frame in one descriptor, as modern
  /// virtio-net posts them).
  struct RxBuffer {
    HostAddr addr = 0;
    u32 len = 0;
  };
  /// TX buffers recycled through a free list (hdr headroom + frame).
  struct TxBuffer {
    HostAddr hdr_addr = 0;
    HostAddr frame_addr = 0;
  };

  /// Everything one RX/TX queue pair owns: buffer pools, backlog,
  /// vectors and its NAPI/watchdog state. Persistent across recovery
  /// cycles so buffer memory is reused.
  struct PairState {
    std::vector<RxBuffer> rx_buffers;
    std::vector<TxBuffer> tx_buffers;
    std::deque<u32> tx_free;
    std::deque<RxFrame> rx_backlog;
    u32 rx_vector = 0;
    u32 tx_vector = 0;
    u32 kick_retries = 0;
    std::optional<sim::SimTime> tx_stall_since;
    u64 rx_packets = 0;
    /// RX completions harvested since queue enable — the sequence
    /// number busy_poll() gates on the device's visibility log with.
    /// Reset with the rings on (re)initialization.
    u64 rx_harvest_seq = 0;
    /// TX frames added but not yet published/kicked (xmit_more).
    u32 tx_pending_kick = 0;
    /// Adaptive controller: EWMA of observed data-arrival waits, in
    /// microseconds (negative = no observation yet -> spin first).
    double rx_wait_ewma_us = -1.0;
    /// Mergeable-RX reassembly: frame bytes accumulated so far and the
    /// continuation buffers still outstanding (§5.1.6.4 num_buffers).
    /// The header metadata (csum_valid/gso) comes from the span's first
    /// buffer and is held in rx_partial_meta until the frame completes.
    Bytes rx_partial;
    u16 rx_partial_remaining = 0;
    RxFrame rx_partial_meta{};
    /// DIM controller: EWMA of completions per napi_poll (negative =
    /// no observation yet) and whether the batching profile is armed.
    double rx_rate_ewma = -1.0;
    bool dim_profile_high = false;
  };

  /// Harvest exactly one RX completion and recycle its buffer (shared
  /// by napi_poll and busy_poll). Returns true when a complete frame
  /// landed in the backlog (a mergeable span completes only on its last
  /// buffer).
  bool harvest_one_rx(virtio::DriverRing& rx, PairState& ps);

  [[nodiscard]] virtio::DriverRing& rx_queue(u16 pair);
  [[nodiscard]] virtio::DriverRing& tx_queue(u16 pair);

  VirtioPciTransport transport_;
  BindContext ctx_{};
  net::MacAddr mac_{};
  u16 mtu_ = 1500;
  u16 requested_pairs_ = 1;
  u16 pairs_ = 1;            ///< pairs currently enabled via the ctrl queue
  u16 configured_pairs_ = 1;  ///< pairs with rings + vectors set up
  u16 max_device_pairs_ = 1;
  bool mq_active_ = false;
  bool ctrl_active_ = false;  ///< CTRL_VQ negotiated (MQ and/or NOTF_COAL)
  bool tso_active_ = false;
  bool rx_moderation_active_ = false;
  u16 ctrl_queue_index_ = 0;
  HostAddr ctrl_cmd_addr_ = 0;
  HostAddr ctrl_ack_addr_ = 0;

  std::vector<PairState> pair_state_{1};
  u32 rx_buffer_bytes_ = 12 + 1526;  ///< hdr + max frame
  DatapathOptions datapath_{};
  bool mrg_active_ = false;

  u64 tx_packets_ = 0;
  u64 rx_packets_ = 0;
  u64 tx_kicks_ = 0;
  u64 tx_kicks_coalesced_ = 0;
  u64 tx_dropped_ = 0;
  u64 tx_sg_segments_ = 0;
  u64 rx_merged_frames_ = 0;
  u64 busy_polls_ = 0;
  u64 busy_poll_harvested_ = 0;
  u64 busy_poll_spins_ = 0;
  u64 device_resets_ = 0;
  u64 watchdog_kicks_ = 0;
  u64 steering_repairs_ = 0;
  u64 ctrl_commands_sent_ = 0;
  u64 tx_gso_frames_ = 0;
  u64 rx_gro_frames_ = 0;
  u64 dim_updates_ = 0;

  WatchdogPolicy watchdog_{};
  BusyPollPolicy busy_poll_policy_{};
  DimPolicy dim_{};
};

}  // namespace vfpga::hostos
