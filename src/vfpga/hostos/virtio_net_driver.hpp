// Host-kernel virtio-net front-end driver model.
//
// Binds to the FPGA exactly as Linux's virtio-pci-modern + virtio_net
// pair would: the VirtioPciTransport handles matching, capability
// walking, the status/feature handshake, MSI-X and virtqueue
// construction (split or packed per negotiation); this class contributes
// the network semantics — virtio_net_hdr framing, single-doorbell
// transmission (§IV-A), and NAPI-style reception where the RX interrupt
// triggers a poll that harvests used buffers and refills the ring.
//
// Timing: probe-time costs are charged but irrelevant (not on the
// measured path); the xmit/poll entry points charge the calibrated
// cost-model segments against the HostThread they run on.
#pragma once

#include <deque>
#include <optional>

#include "vfpga/hostos/virtio_transport.hpp"
#include "vfpga/net/addr.hpp"

namespace vfpga::hostos {

class VirtioNetDriver {
 public:
  using BindContext = VirtioPciTransport::BindContext;

  /// Probe and initialize the device (§3.1.1 init sequence). `thread`
  /// pays the MMIO costs. Returns false when the device is not a
  /// virtio-net modern device or negotiation fails.
  bool probe(const BindContext& ctx, HostThread& thread);

  [[nodiscard]] bool bound() const { return transport_.bound(); }
  [[nodiscard]] virtio::FeatureSet negotiated() const {
    return transport_.negotiated();
  }
  [[nodiscard]] u32 rx_vector() const { return rx_vector_; }
  [[nodiscard]] u32 tx_vector() const { return tx_vector_; }
  [[nodiscard]] net::MacAddr mac() const { return mac_; }
  [[nodiscard]] u16 mtu() const { return mtu_; }
  [[nodiscard]] bool using_packed_rings() const {
    return transport_.using_packed_rings();
  }

  /// Transmit one Ethernet frame (virtio_net_hdr is prepended here, in
  /// the driver, as virtio-net does). `needs_csum` marks a frame whose
  /// L4 checksum was left for the device (VIRTIO_NET_F_CSUM negotiated);
  /// csum_start/csum_offset follow the UDP convention.
  /// Returns true when the device was kicked.
  bool xmit_frame(HostThread& thread, ConstByteSpan frame, bool needs_csum,
                  u16 csum_start = 0, u16 csum_offset = 0);

  /// NAPI poll: harvest RX completions into the receive backlog and
  /// recycle TX completions; refill + re-enable interrupts. Returns the
  /// number of frames harvested.
  u32 napi_poll(HostThread& thread);

  /// TX watchdog policy: how long a stuck TX queue is tolerated and how
  /// the bounded exponential backoff re-kicks are paced before the
  /// watchdog escalates to a full device reset.
  struct WatchdogPolicy {
    sim::Duration deadline = sim::microseconds(500);
    u32 max_kick_retries = 3;
    sim::Duration backoff_base = sim::microseconds(20);
  };
  enum class WatchdogAction : u8 {
    kNone,      ///< queue healthy (or drained by the inline harvest)
    kRekicked,  ///< backoff wait + doorbell re-ring
    kReset,     ///< escalated: full reset -> renegotiate -> requeue
  };

  /// The virtio-net TX watchdog (cf. virtnet dev_watchdog): harvest
  /// completions, then — if transmissions are stuck — re-kick with
  /// bounded exponential backoff, escalating to recover() when the
  /// simulated-time deadline or the retry budget is exhausted. A device
  /// that latched DEVICE_NEEDS_RESET or a broken vring resets
  /// immediately.
  WatchdogAction tx_watchdog(HostThread& thread);

  /// Full recovery cycle: reset the device, renegotiate features,
  /// rebuild both queues and requeue the (reused) RX/TX buffers.
  bool recover(HostThread& thread);

  void set_watchdog_policy(const WatchdogPolicy& policy) {
    watchdog_ = policy;
  }

  /// Pop one received frame (after napi_poll queued it).
  std::optional<Bytes> pop_rx_frame();
  [[nodiscard]] bool rx_backlog_empty() const { return rx_backlog_.empty(); }

  /// Statistics.
  [[nodiscard]] u64 tx_packets() const { return tx_packets_; }
  [[nodiscard]] u64 rx_packets() const { return rx_packets_; }
  [[nodiscard]] u64 tx_kicks() const { return tx_kicks_; }
  [[nodiscard]] u64 tx_dropped() const { return tx_dropped_; }
  [[nodiscard]] u64 device_resets() const { return device_resets_; }
  [[nodiscard]] u64 watchdog_kicks() const { return watchdog_kicks_; }

 private:
  bool initialize_device(HostThread& thread);
  void post_initial_rx_buffers();

  VirtioPciTransport transport_;
  BindContext ctx_{};
  net::MacAddr mac_{};
  u16 mtu_ = 1500;
  u32 rx_vector_ = 0;
  u32 tx_vector_ = 0;

  /// RX buffer bookkeeping: token -> buffer address (single-buffer
  /// layout: virtio_net_hdr + frame in one descriptor, as modern
  /// virtio-net posts them).
  struct RxBuffer {
    HostAddr addr = 0;
    u32 len = 0;
  };
  std::vector<RxBuffer> rx_buffers_;
  u32 rx_buffer_bytes_ = 12 + 1526;  ///< hdr + max frame

  /// TX buffers recycled through a free list (hdr headroom + frame).
  struct TxBuffer {
    HostAddr hdr_addr = 0;
    HostAddr frame_addr = 0;
  };
  std::vector<TxBuffer> tx_buffers_;
  std::deque<u32> tx_free_;

  std::deque<Bytes> rx_backlog_;
  u64 tx_packets_ = 0;
  u64 rx_packets_ = 0;
  u64 tx_kicks_ = 0;
  u64 tx_dropped_ = 0;
  u64 device_resets_ = 0;
  u64 watchdog_kicks_ = 0;

  WatchdogPolicy watchdog_{};
  u32 kick_retries_ = 0;
  std::optional<sim::SimTime> tx_stall_since_;
};

}  // namespace vfpga::hostos
