#include "vfpga/hostos/netstack.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/net/ethernet.hpp"
#include "vfpga/net/gso.hpp"
#include "vfpga/net/ipv4.hpp"
#include "vfpga/net/rss.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::hostos {

KernelNetstack::KernelNetstack(VirtioNetDriver& driver,
                               InterruptController& irq,
                               NetstackConfig config)
    : driver_(&driver), irq_(&irq), config_(config) {}

void KernelNetstack::configure_fpga_route(net::Ipv4Addr fpga_ip,
                                          net::MacAddr fpga_mac) {
  routes_.add(net::Route{fpga_ip, 32, config_.virtio_ifindex, std::nullopt});
  arp_.insert(fpga_ip, fpga_mac, /*permanent=*/true);
}

bool KernelNetstack::udp_send(HostThread& thread, u16 src_port,
                              net::Ipv4Addr dst, u16 dst_port,
                              ConstByteSpan payload, bool more_coming) {
  thread.exec(thread.costs().syscall_entry);
  thread.copy(payload.size());
  thread.exec(thread.costs().udp_tx_stack);
  return send_built(thread, src_port, dst, dst_port, payload, more_coming);
}

bool KernelNetstack::udp_sendmsg(HostThread& thread, u16 src_port,
                                 net::Ipv4Addr dst, u16 dst_port,
                                 std::span<const ConstByteSpan> iov,
                                 bool more_coming, bool zerocopy) {
  thread.exec(thread.costs().syscall_entry);
  Bytes payload;
  u64 total = 0;
  for (const ConstByteSpan frag : iov) {
    total += frag.size();
  }
  payload.reserve(total);
  for (const ConstByteSpan frag : iov) {
    payload.insert(payload.end(), frag.begin(), frag.end());
  }
  if (!zerocopy) {
    // copy_from_user of every fragment; MSG_ZEROCOPY pins the pages
    // instead and leaves the per-segment mapping charge to the driver.
    thread.copy(total);
  }
  thread.exec(thread.costs().udp_tx_stack);
  return send_built(thread, src_port, dst, dst_port, payload, more_coming);
}

std::optional<KernelNetstack::MsgRecv> KernelNetstack::udp_recvmsg(
    HostThread& thread, u16 local_port, std::span<ByteSpan> iov, RxMode mode,
    sim::Duration budget) {
  std::optional<Datagram> dgram;
  switch (mode) {
    case RxMode::kInterrupt:
      dgram = udp_receive_blocking(thread, local_port);
      break;
    case RxMode::kBusyPoll:
      dgram = udp_receive_busy_poll(thread, local_port, budget);
      break;
    case RxMode::kAdaptive:
      dgram = udp_receive_adaptive(thread, local_port, budget);
      break;
  }
  if (!dgram.has_value()) {
    return std::nullopt;
  }
  MsgRecv msg;
  msg.src = dgram->src;
  msg.src_port = dgram->src_port;
  msg.dst_port = dgram->dst_port;
  msg.datagram_bytes = dgram->payload.size();
  u64 off = 0;
  for (const ByteSpan frag : iov) {
    if (off >= dgram->payload.size()) {
      break;
    }
    const u64 chunk = std::min<u64>(frag.size(), dgram->payload.size() - off);
    std::copy_n(dgram->payload.begin() + static_cast<std::ptrdiff_t>(off),
                chunk, frag.begin());
    off += chunk;
  }
  msg.bytes = off;  // copy_to_user already charged by the receive path
  return msg;
}

bool KernelNetstack::send_built(HostThread& thread, u16 src_port,
                                net::Ipv4Addr dst, u16 dst_port,
                                ConstByteSpan payload, bool more_coming) {
  const auto next_hop = routes_.lookup(dst);
  if (!next_hop.has_value()) {
    thread.exec(thread.costs().syscall_exit);
    return false;
  }
  const auto neighbour = arp_.lookup(next_hop->address);
  if (!neighbour.has_value()) {
    thread.exec(thread.costs().syscall_exit);
    return false;
  }

  const Bytes udp = net::build_udp_datagram(net::UdpHeader{src_port, dst_port},
                                            config_.host_ip, dst, payload);
  net::Ipv4Header ip;
  ip.src = config_.host_ip;
  ip.dst = dst;
  ip.protocol = net::IpProtocol::Udp;
  ip.ttl = config_.ip_ttl;
  ip.identification = next_ip_id_++;
  Bytes packet = net::build_ipv4_packet(ip, udp);

  const bool offload_csum =
      driver_->negotiated().has(virtio::feature::net::kCsum);
  if (offload_csum) {
    // The stack leaves the L4 checksum for the device: zero the field
    // (the partial pseudo-header sum is logically there; the device
    // recomputes in full).
    store_be16(ByteSpan{packet}, net::Ipv4Header::kSize + 6, 0);
  }

  const Bytes frame = net::build_ethernet_frame(
      net::EthernetHeader{*neighbour, driver_->mac(), net::EtherType::Ipv4},
      packet);

  // Queue selection mirrors the device's RSS stage: same hash, same
  // reduction, so the echo lands on the TX queue's partner RX queue.
  const u16 pair = net::steer(
      net::rss_flow_hash(config_.host_ip, src_port, dst, dst_port),
      driver_->queue_pairs());
  flow_affinity_[src_port] = pair;

  const u16 mtu = driver_->mtu();
  const u16 seg_payload =
      static_cast<u16>(mtu - net::Ipv4Header::kSize - net::UdpHeader::kSize);
  if (payload.size() > seg_payload) {
    // Over-MTU datagram. With HOST_UFO the whole thing goes down as ONE
    // superframe and the device's GSO engine segments it on the fabric;
    // otherwise fall back to software GSO — the host slices, fixes up
    // headers and checksums per wire frame, and transmits the train.
    if (driver_->tso_active()) {
      VirtioNetDriver::TxOffload off;
      off.needs_csum = true;
      off.csum_start = net::EthernetHeader::kSize + net::Ipv4Header::kSize;
      off.csum_offset = 6;
      off.gso_type = virtio::net::NetHeader::kGsoUdp;
      off.gso_size = seg_payload;
      off.hdr_len = static_cast<u16>(net::EthernetHeader::kSize +
                                     net::Ipv4Header::kSize +
                                     net::UdpHeader::kSize);
      ++tx_superframes_;
      driver_->xmit_frame(thread, frame, off, pair, more_coming);
      // The device's segmenter stamps consecutive IP ids; keep the
      // stack's counter in step (as the kernel does for GSO skbs).
      next_ip_id_ = static_cast<u16>(
          next_ip_id_ + (payload.size() + seg_payload - 1) / seg_payload - 1);
    } else {
      const std::vector<Bytes> segments =
          net::gso_segment_udp(frame, seg_payload, /*fill_checksums=*/true);
      for (u64 i = 0; i < segments.size(); ++i) {
        // Per-segment host cost: header clone + fixup + checksum slice
        // (the work the device's segmenter absorbs on the TSO path).
        thread.exec(thread.costs().gso_segment_host);
        const bool more = more_coming || i + 1 < segments.size();
        driver_->xmit_frame(thread, segments[i], /*needs_csum=*/false,
                            0, 0, pair, more);
      }
      sw_gso_segments_ += segments.size();
      next_ip_id_ =
          static_cast<u16>(next_ip_id_ + segments.size() - 1);
    }
    thread.exec(thread.costs().syscall_exit);
    return true;
  }

  driver_->xmit_frame(thread, frame, offload_csum,
                      /*csum_start=*/net::EthernetHeader::kSize +
                          net::Ipv4Header::kSize,
                      /*csum_offset=*/6, pair, more_coming);
  thread.exec(thread.costs().syscall_exit);
  return true;
}

u16 KernelNetstack::flow_pair(u16 local_port) const {
  const auto it = flow_affinity_.find(local_port);
  return it == flow_affinity_.end() ? u16{0} : it->second;
}

std::optional<net::MacAddr> KernelNetstack::arp_resolve(HostThread& thread,
                                                        net::Ipv4Addr ip) {
  if (const auto cached = arp_.lookup(ip)) {
    return cached;
  }
  net::ArpMessage request;
  request.op = net::ArpOp::Request;
  request.sender_mac = driver_->mac();
  request.sender_ip = config_.host_ip;
  request.target_mac = net::MacAddr{};
  request.target_ip = ip;
  const Bytes frame = net::build_ethernet_frame(
      net::EthernetHeader{net::kBroadcastMac, driver_->mac(),
                          net::EtherType::Arp},
      net::build_arp_message(request));
  thread.exec(thread.costs().udp_tx_stack);  // neigh xmit path
  driver_->xmit_frame(thread, frame, false);

  if (!irq_->pending(driver_->rx_vector())) {
    return std::nullopt;  // nobody answered
  }
  service_rx_interrupt(thread, irq_->consume(driver_->rx_vector()));
  return arp_.lookup(ip);
}

void KernelNetstack::service_rx_interrupt(HostThread& thread,
                                          sim::SimTime irq_time, u16 pair) {
  thread.block_until(irq_time);
  thread.exec(thread.costs().irq_entry);
  driver_->napi_poll(thread, pair);
  demux_frames(thread, pair);
}

void KernelNetstack::demux_frames(HostThread& thread, u16 pair) {
  while (const auto rx = driver_->pop_rx_frame(pair)) {
    const Bytes& raw = rx->frame;
    const auto eth = net::parse_ethernet_frame(raw);
    if (!eth.has_value()) {
      ++frames_dropped_;
      continue;
    }
    if (eth->header.type == net::EtherType::Arp) {
      const auto arp = net::parse_arp_message(ConstByteSpan{raw}.subspan(
          eth->payload_offset, eth->payload_length));
      if (arp.has_value()) {
        arp_.observe(*arp, config_.host_ip, driver_->mac());
        ++frames_demuxed_;
      } else {
        ++frames_dropped_;
      }
      continue;
    }
    thread.exec(thread.costs().udp_rx_stack);
    const auto ip = net::parse_ipv4_packet(ConstByteSpan{raw}.subspan(
        eth->payload_offset, eth->payload_length));
    if (!ip.has_value() || !ip->checksum_ok ||
        ip->header.dst != config_.host_ip) {
      ++frames_dropped_;
      continue;
    }
    if (ip->header.protocol == net::IpProtocol::Icmp) {
      const auto icmp_span = ConstByteSpan{raw}.subspan(
          eth->payload_offset + ip->payload_offset, ip->payload_length);
      const auto icmp = net::parse_icmp_echo(icmp_span);
      if (!icmp.has_value() || !icmp->checksum_ok ||
          icmp->header.type != net::IcmpType::EchoReply) {
        ++frames_dropped_;
        continue;
      }
      IcmpReply reply;
      reply.src = ip->header.src;
      reply.identifier = icmp->header.identifier;
      reply.sequence = icmp->header.sequence;
      reply.payload.assign(
          icmp_span.begin() +
              static_cast<std::ptrdiff_t>(icmp->payload_offset),
          icmp_span.begin() + static_cast<std::ptrdiff_t>(
                                  icmp->payload_offset +
                                  icmp->payload_length));
      icmp_replies_.push_back(std::move(reply));
      ++frames_demuxed_;
      continue;
    }
    if (ip->header.protocol != net::IpProtocol::Udp) {
      ++frames_dropped_;
      continue;
    }
    const auto ip_payload =
        ConstByteSpan{raw}.subspan(eth->payload_offset + ip->payload_offset,
                                   ip->payload_length);
    const auto udp =
        net::parse_udp_datagram(ip_payload, ip->header.src, ip->header.dst);
    if (!udp.has_value()) {
      ++frames_dropped_;
      continue;
    }
    if (!udp->checksum_ok) {
      // VIRTIO_NET_HDR_F_DATA_VALID: the device already verified the L4
      // checksum. A GRO-coalesced superframe legitimately carries the
      // first segment's (now stale) checksum, so the promise — not the
      // wire field — is what admits it.
      if (!rx->csum_valid) {
        ++frames_dropped_;
        continue;
      }
      ++csum_rescued_;
    }
    if (driver_->queue_pairs() > 1) {
      // Steering check: the flow bound to this port hashed to a specific
      // pair on transmit; an echo arriving elsewhere means the device's
      // steering table diverged. The datagram is still delivered — only
      // the affinity (and its cache/interrupt locality) is lost — but a
      // run of diverted flows triggers a steering-table reset, the
      // per-queue repair that avoids a whole-device reset.
      const auto it = flow_affinity_.find(udp->header.dst_port);
      if (it != flow_affinity_.end() && it->second != pair) {
        ++steering_mismatches_;
        if (++mismatches_since_repair_ >= kSteeringRepairThreshold) {
          if (driver_->reset_steering(thread)) {
            mismatches_since_repair_ = 0;
          }
        }
      } else {
        mismatches_since_repair_ = 0;
      }
    }
    Datagram dgram;
    dgram.src = ip->header.src;
    dgram.src_port = udp->header.src_port;
    dgram.dst_port = udp->header.dst_port;
    dgram.payload.assign(
        ip_payload.begin() + static_cast<std::ptrdiff_t>(udp->payload_offset),
        ip_payload.begin() +
            static_cast<std::ptrdiff_t>(udp->payload_offset +
                                        udp->payload_length));
    socket_queues_[udp->header.dst_port].push_back(std::move(dgram));
    ++frames_demuxed_;
  }
}

std::optional<KernelNetstack::Datagram> KernelNetstack::udp_receive_blocking(
    HostThread& thread, u16 local_port) {
  thread.exec(thread.costs().syscall_entry);

  // The flow's queue-pair affinity decides which RX vector the receiver
  // sleeps on — with one pair this is the paper's single rx_vector().
  const u16 pair = flow_pair(local_port);
  auto& queue = socket_queues_[local_port];
  if (queue.empty()) {
    // Task blocks; the next RX interrupt wakes it. In the transaction-
    // level flow the device has already computed the delivery time.
    if (!irq_->pending(driver_->rx_vector(pair))) {
      thread.exec(thread.costs().syscall_exit);
      return std::nullopt;  // would block forever: timeout analogue
    }
    service_rx_interrupt(thread, irq_->consume(driver_->rx_vector(pair)),
                         pair);
    thread.exec(thread.costs().wakeup);  // scheduler wakes the receiver
  }
  if (queue.empty()) {
    thread.exec(thread.costs().syscall_exit);
    return std::nullopt;
  }
  Datagram dgram = std::move(queue.front());
  queue.pop_front();
  thread.exec(thread.costs().socket_recv);
  thread.copy(dgram.payload.size());
  thread.exec(thread.costs().syscall_exit);
  return dgram;
}

std::optional<KernelNetstack::Datagram> KernelNetstack::udp_receive_busy_poll(
    HostThread& thread, u16 local_port, sim::Duration budget) {
  thread.exec(thread.costs().syscall_entry);

  const u16 pair = flow_pair(local_port);
  auto& queue = socket_queues_[local_port];
  if (queue.empty()) {
    // sk_busy_loop: spin in the driver until data lands or the budget
    // runs out. No irq_entry, no scheduler wakeup on the hit path.
    if (driver_->busy_poll(thread, pair, budget) > 0) {
      demux_frames(thread, pair);
    }
  }
  if (queue.empty()) {
    // Poll missed. busy_poll re-armed the vector on exit, so a
    // completion it declined to wait for (past the budget) still has —
    // or will get — its interrupt queued: finish as the blocking path.
    if (!irq_->pending(driver_->rx_vector(pair))) {
      thread.exec(thread.costs().syscall_exit);
      return std::nullopt;
    }
    service_rx_interrupt(thread, irq_->consume(driver_->rx_vector(pair)),
                         pair);
    thread.exec(thread.costs().wakeup);
  }
  if (queue.empty()) {
    thread.exec(thread.costs().syscall_exit);
    return std::nullopt;
  }
  Datagram dgram = std::move(queue.front());
  queue.pop_front();
  thread.exec(thread.costs().socket_recv);
  thread.copy(dgram.payload.size());
  thread.exec(thread.costs().syscall_exit);
  return dgram;
}

std::optional<KernelNetstack::Datagram> KernelNetstack::udp_receive_adaptive(
    HostThread& thread, u16 local_port, sim::Duration budget) {
  const u16 pair = flow_pair(local_port);
  if (driver_->should_busy_poll(pair)) {
    return udp_receive_busy_poll(thread, local_port, budget);
  }
  // Predicted wait too long to burn a core on: classic interrupt path,
  // with the observed sleep fed back so the controller can switch to
  // spinning when the arrival pattern tightens.
  thread.exec(thread.costs().syscall_entry);
  const sim::SimTime enter = thread.now();
  auto& queue = socket_queues_[local_port];
  if (queue.empty()) {
    if (!irq_->pending(driver_->rx_vector(pair))) {
      thread.exec(thread.costs().syscall_exit);
      return std::nullopt;
    }
    const sim::SimTime irq_time = irq_->consume(driver_->rx_vector(pair));
    driver_->note_rx_wait(
        pair, irq_time > enter ? irq_time - enter : sim::Duration{});
    service_rx_interrupt(thread, irq_time, pair);
    thread.exec(thread.costs().wakeup);
  }
  if (queue.empty()) {
    thread.exec(thread.costs().syscall_exit);
    return std::nullopt;
  }
  Datagram dgram = std::move(queue.front());
  queue.pop_front();
  thread.exec(thread.costs().socket_recv);
  thread.copy(dgram.payload.size());
  thread.exec(thread.costs().syscall_exit);
  return dgram;
}

std::optional<sim::Duration> KernelNetstack::icmp_ping(
    HostThread& thread, net::Ipv4Addr dst, u16 identifier, u16 sequence,
    ConstByteSpan payload) {
  const sim::SimTime start = thread.now();
  thread.exec(thread.costs().syscall_entry);
  thread.copy(payload.size());
  thread.exec(thread.costs().udp_tx_stack);  // raw-socket TX path

  const auto next_hop = routes_.lookup(dst);
  if (!next_hop.has_value()) {
    return std::nullopt;
  }
  const auto neighbour = arp_.lookup(next_hop->address);
  if (!neighbour.has_value()) {
    return std::nullopt;
  }
  const Bytes icmp = net::build_icmp_echo(
      net::IcmpEcho{net::IcmpType::EchoRequest, identifier, sequence},
      payload);
  net::Ipv4Header ip;
  ip.src = config_.host_ip;
  ip.dst = dst;
  ip.protocol = net::IpProtocol::Icmp;
  ip.identification = next_ip_id_++;
  const Bytes frame = net::build_ethernet_frame(
      net::EthernetHeader{*neighbour, driver_->mac(), net::EtherType::Ipv4},
      net::build_ipv4_packet(ip, icmp));
  driver_->xmit_frame(thread, frame, false);

  // Block for the reply.
  if (icmp_replies_.empty()) {
    if (!irq_->pending(driver_->rx_vector())) {
      thread.exec(thread.costs().syscall_exit);
      return std::nullopt;
    }
    service_rx_interrupt(thread, irq_->consume(driver_->rx_vector()));
    thread.exec(thread.costs().wakeup);
  }
  if (icmp_replies_.empty()) {
    thread.exec(thread.costs().syscall_exit);
    return std::nullopt;
  }
  const IcmpReply reply = std::move(icmp_replies_.front());
  icmp_replies_.pop_front();
  thread.copy(reply.payload.size());
  thread.exec(thread.costs().syscall_exit);

  const bool matches =
      reply.src == dst && reply.identifier == identifier &&
      reply.sequence == sequence &&
      reply.payload.size() == payload.size() &&
      std::equal(payload.begin(), payload.end(), reply.payload.begin());
  if (!matches) {
    return std::nullopt;
  }
  return thread.now() - start;
}

u32 KernelNetstack::poll_rx(HostThread& thread) {
  // Consume any pending interrupt first so a later blocking receive
  // doesn't double-service it; then poll unconditionally. Every pair is
  // polled: a lost interrupt (or a diverted flow) can leave completions
  // on any ring.
  u32 harvested = 0;
  for (u16 p = 0; p < driver_->queue_pairs(); ++p) {
    while (irq_->pending(driver_->rx_vector(p))) {
      irq_->consume(driver_->rx_vector(p));
    }
    harvested += driver_->napi_poll(thread, p);
    demux_frames(thread, p);
  }
  return harvested;
}

std::optional<KernelNetstack::Datagram> KernelNetstack::udp_receive_poll(
    HostThread& thread, u16 local_port) {
  thread.exec(thread.costs().syscall_entry);
  for (u16 p = 0; p < driver_->queue_pairs(); ++p) {
    while (irq_->pending(driver_->rx_vector(p))) {
      service_rx_interrupt(thread, irq_->consume(driver_->rx_vector(p)), p);
    }
  }
  auto& queue = socket_queues_[local_port];
  if (queue.empty()) {
    thread.exec(thread.costs().syscall_exit);
    return std::nullopt;
  }
  Datagram dgram = std::move(queue.front());
  queue.pop_front();
  thread.exec(thread.costs().socket_recv);
  thread.copy(dgram.payload.size());
  thread.exec(thread.costs().syscall_exit);
  return dgram;
}

void KernelNetstack::save_state(migrate::StateWriter& w) const {
  w.put_u16(next_ip_id_);
  w.put_u32(static_cast<u32>(socket_queues_.size()));
  for (const auto& [port, queue] : socket_queues_) {
    w.put_u16(port);
    w.put_u32(static_cast<u32>(queue.size()));
    for (const Datagram& d : queue) {
      w.put_u32(d.src.value);
      w.put_u16(d.src_port);
      w.put_u16(d.dst_port);
      w.put_blob(d.payload);
    }
  }
  w.put_u32(static_cast<u32>(flow_affinity_.size()));
  for (const auto& [port, pair] : flow_affinity_) {
    w.put_u16(port);
    w.put_u16(pair);
  }
  w.put_u64(steering_mismatches_);
  w.put_u32(mismatches_since_repair_);
  w.put_u32(static_cast<u32>(icmp_replies_.size()));
  for (const IcmpReply& reply : icmp_replies_) {
    w.put_u32(reply.src.value);
    w.put_u16(reply.identifier);
    w.put_u16(reply.sequence);
    w.put_blob(reply.payload);
  }
  w.put_u64(frames_demuxed_);
  w.put_u64(frames_dropped_);
  w.put_u64(tx_superframes_);
  w.put_u64(sw_gso_segments_);
  w.put_u64(csum_rescued_);
}

void KernelNetstack::load_state(migrate::StateReader& r) {
  next_ip_id_ = r.get_u16();
  socket_queues_.clear();
  const u32 sockets = r.get_u32();
  for (u32 i = 0; i < sockets && !r.failed(); ++i) {
    const u16 port = r.get_u16();
    auto& queue = socket_queues_[port];
    const u32 depth = r.get_u32();
    for (u32 j = 0; j < depth && !r.failed(); ++j) {
      Datagram d;
      d.src = net::Ipv4Addr{r.get_u32()};
      d.src_port = r.get_u16();
      d.dst_port = r.get_u16();
      d.payload = r.get_blob();
      queue.push_back(std::move(d));
    }
  }
  flow_affinity_.clear();
  const u32 flows = r.get_u32();
  for (u32 i = 0; i < flows && !r.failed(); ++i) {
    const u16 port = r.get_u16();
    flow_affinity_[port] = r.get_u16();
  }
  steering_mismatches_ = r.get_u64();
  mismatches_since_repair_ = r.get_u32();
  icmp_replies_.clear();
  const u32 replies = r.get_u32();
  for (u32 i = 0; i < replies && !r.failed(); ++i) {
    IcmpReply reply;
    reply.src = net::Ipv4Addr{r.get_u32()};
    reply.identifier = r.get_u16();
    reply.sequence = r.get_u16();
    reply.payload = r.get_blob();
    icmp_replies_.push_back(std::move(reply));
  }
  frames_demuxed_ = r.get_u64();
  frames_dropped_ = r.get_u64();
  tx_superframes_ = r.get_u64();
  sw_gso_segments_ = r.get_u64();
  csum_rescued_ = r.get_u64();
}

}  // namespace vfpga::hostos
