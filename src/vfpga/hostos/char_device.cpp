#include "vfpga/hostos/char_device.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::hostos {

i64 XdmaDeviceFile::write(HostThread& thread, ConstByteSpan data,
                          FpgaAddr card_addr) {
  VFPGA_EXPECTS(direction_ == Direction::HostToCard);
  thread.exec(thread.costs().syscall_entry);
  const bool ok = driver_->h2c_transfer(thread, data, card_addr);
  thread.exec(thread.costs().syscall_exit);
  return ok ? static_cast<i64>(data.size()) : -1;
}

i64 XdmaDeviceFile::read(HostThread& thread, ByteSpan out,
                         FpgaAddr card_addr) {
  VFPGA_EXPECTS(direction_ == Direction::CardToHost);
  thread.exec(thread.costs().syscall_entry);
  const bool ok = driver_->c2h_transfer(thread, out, card_addr);
  thread.exec(thread.costs().syscall_exit);
  return ok ? static_cast<i64>(out.size()) : -1;
}

}  // namespace vfpga::hostos
