// User-space socket API.
//
// The paper's test application "uses the C socket programming API to
// send packets to the FPGA" (§III-B.1). UdpSocket gives examples and
// benchmarks the same shape: socket / bind / sendto / recvfrom, with
// every call charged through the host thread's cost model.
#pragma once

#include "vfpga/hostos/netstack.hpp"

namespace vfpga::hostos {

class UdpSocket {
 public:
  UdpSocket(KernelNetstack& stack, u16 local_port)
      : stack_(&stack), local_port_(local_port) {}

  [[nodiscard]] u16 local_port() const { return local_port_; }

  /// setsockopt(SO_BUSY_POLL) analogue: select the receive path and the
  /// per-call spin budget (zero budget = driver default). kInterrupt
  /// keeps recvfrom() on the classic blocking path, byte for byte.
  void set_rx_mode(RxMode mode) { rx_mode_ = mode; }
  [[nodiscard]] RxMode rx_mode() const { return rx_mode_; }
  void set_busy_poll_budget(sim::Duration budget) {
    busy_poll_budget_ = budget;
  }
  [[nodiscard]] sim::Duration busy_poll_budget() const {
    return busy_poll_budget_;
  }

  /// sendto(2): returns false on EHOSTUNREACH. `more_coming` is the
  /// MSG_MORE flag — a promise of an immediate follow-up send, letting
  /// the driver coalesce TX doorbells.
  bool sendto(HostThread& thread, net::Ipv4Addr dst, u16 dst_port,
              ConstByteSpan payload, bool more_coming = false) {
    return stack_->udp_send(thread, local_port_, dst, dst_port, payload,
                            more_coming);
  }

  /// sendmsg(2) with an iovec payload; `zerocopy` is the MSG_ZEROCOPY
  /// flag (elides the copy_from_user charge — pair it with the driver's
  /// scatter-gather TX path).
  bool sendmsg(HostThread& thread, net::Ipv4Addr dst, u16 dst_port,
               std::span<const ConstByteSpan> iov, bool more_coming = false,
               bool zerocopy = false) {
    return stack_->udp_sendmsg(thread, local_port_, dst, dst_port, iov,
                               more_coming, zerocopy);
  }

  /// recvmsg(2): scatter the next datagram's payload across `iov`,
  /// receiving via the socket's configured RX mode.
  std::optional<KernelNetstack::MsgRecv> recvmsg(HostThread& thread,
                                                 std::span<ByteSpan> iov) {
    return stack_->udp_recvmsg(thread, local_port_, iov, rx_mode_,
                               busy_poll_budget_);
  }

  /// recvfrom(2), blocking — or busy-polling/adaptive per set_rx_mode.
  std::optional<KernelNetstack::Datagram> recvfrom(HostThread& thread) {
    switch (rx_mode_) {
      case RxMode::kBusyPoll:
        return stack_->udp_receive_busy_poll(thread, local_port_,
                                             busy_poll_budget_);
      case RxMode::kAdaptive:
        return stack_->udp_receive_adaptive(thread, local_port_,
                                            busy_poll_budget_);
      case RxMode::kInterrupt:
        break;
    }
    return stack_->udp_receive_blocking(thread, local_port_);
  }

  /// recvfrom(2) with MSG_DONTWAIT.
  std::optional<KernelNetstack::Datagram> recvfrom_nonblock(
      HostThread& thread) {
    return stack_->udp_receive_poll(thread, local_port_);
  }

 private:
  KernelNetstack* stack_;
  u16 local_port_;
  RxMode rx_mode_ = RxMode::kInterrupt;
  sim::Duration busy_poll_budget_{};  ///< zero = driver policy default
};

}  // namespace vfpga::hostos
