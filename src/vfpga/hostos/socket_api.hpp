// User-space socket API.
//
// The paper's test application "uses the C socket programming API to
// send packets to the FPGA" (§III-B.1). UdpSocket gives examples and
// benchmarks the same shape: socket / bind / sendto / recvfrom, with
// every call charged through the host thread's cost model.
#pragma once

#include "vfpga/hostos/netstack.hpp"

namespace vfpga::hostos {

class UdpSocket {
 public:
  UdpSocket(KernelNetstack& stack, u16 local_port)
      : stack_(&stack), local_port_(local_port) {}

  [[nodiscard]] u16 local_port() const { return local_port_; }

  /// sendto(2): returns false on EHOSTUNREACH.
  bool sendto(HostThread& thread, net::Ipv4Addr dst, u16 dst_port,
              ConstByteSpan payload) {
    return stack_->udp_send(thread, local_port_, dst, dst_port, payload);
  }

  /// recvfrom(2), blocking.
  std::optional<KernelNetstack::Datagram> recvfrom(HostThread& thread) {
    return stack_->udp_receive_blocking(thread, local_port_);
  }

  /// recvfrom(2) with MSG_DONTWAIT.
  std::optional<KernelNetstack::Datagram> recvfrom_nonblock(
      HostThread& thread) {
    return stack_->udp_receive_poll(thread, local_port_);
  }

 private:
  KernelNetstack* stack_;
  u16 local_port_;
};

}  // namespace vfpga::hostos
