// Host-kernel virtio-blk front-end driver model.
//
// Binds to the FPGA's block-device personality and issues §5.2.6
// requests: [header][data][status] chains on the single request queue,
// sleeping on the completion interrupt like the kernel's virtio_blk
// request path. Demonstrates the paper's §IV-B point from the host side:
// the *same* FPGA controller, bound by a different in-kernel driver,
// becomes a storage device — no vendor driver written.
//
// Chains are three descriptors, so this driver is also the natural user
// of VIRTIO_F_INDIRECT_DESC: with `use_indirect` the whole request rides
// one ring slot and the device fetches the table in a single DMA read.
#pragma once

#include "vfpga/hostos/virtio_transport.hpp"
#include "vfpga/virtio/blk_defs.hpp"

namespace vfpga::hostos {

class VirtioBlkDriver {
 public:
  using BindContext = VirtioPciTransport::BindContext;

  /// Probe + initialize (request queue, MSI-X, capacity from device
  /// config). Returns false when the device is not a virtio-blk modern
  /// device or negotiation fails.
  bool probe(const BindContext& ctx, HostThread& thread);

  [[nodiscard]] bool bound() const { return transport_.bound(); }
  [[nodiscard]] u64 capacity_sectors() const { return capacity_sectors_; }
  [[nodiscard]] u32 request_vector() const { return request_vector_; }
  [[nodiscard]] virtio::FeatureSet negotiated() const {
    return transport_.negotiated();
  }

  /// Submit requests through indirect descriptor tables when negotiated
  /// (split rings only; defaults off to mirror virtio_blk's threshold
  /// behaviour for short chains).
  void set_use_indirect(bool enabled) { use_indirect_ = enabled; }
  [[nodiscard]] bool use_indirect() const { return use_indirect_; }

  /// Blocking sector I/O (512-byte sectors). Sizes must be multiples of
  /// the sector size. Returns false on device-reported error.
  bool read_sectors(HostThread& thread, u64 sector, ByteSpan out);
  bool write_sectors(HostThread& thread, u64 sector, ConstByteSpan data);
  bool flush(HostThread& thread);

  [[nodiscard]] u64 requests_completed() const {
    return requests_completed_;
  }

 private:
  /// Build/submit one request chain and sleep until its completion.
  /// `data_len` bytes at `data_addr` are the payload area (device-
  /// readable for writes, device-writable for reads); returns the
  /// device's status byte or nullopt on transport failure.
  std::optional<u8> submit(HostThread& thread, virtio::blk::RequestType type,
                           u64 sector, HostAddr data_addr, u32 data_len,
                           bool data_device_writable);

  VirtioPciTransport transport_;
  InterruptController* irq_ = nullptr;
  u32 request_vector_ = 0;
  u64 capacity_sectors_ = 0;
  bool use_indirect_ = false;

  HostAddr header_addr_ = 0;
  HostAddr status_addr_ = 0;
  HostAddr bounce_addr_ = 0;  ///< pinned-page stand-in for request data
  u32 bounce_capacity_ = 256 * 1024;
  u64 requests_completed_ = 0;
};

}  // namespace vfpga::hostos
