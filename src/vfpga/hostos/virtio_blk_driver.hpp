// Host-kernel virtio-blk front-end driver model.
//
// Binds to the FPGA's block-device personality and issues §5.2.6
// requests as [header][data...][status] chains. Two completion paths
// coexist, selectable per queue:
//
//  - interrupt: sleep on the queue's MSI-X vector like the kernel's
//    virtio_blk request path (with a used-ring visibility fallback when
//    the interrupt was lost — the fault plane's kBlkIrqLost class);
//  - polled: never arm the vector; spin on used-ring visibility the way
//    an SPDK/io_uring IOPOLL submitter does, typically hosted on a
//    reactor poller (reactor/reactor.hpp).
//
// Submission is asynchronous up to a per-queue depth: submit_* returns
// a slot id immediately, completions are drained in used-ring order and
// popped with their per-request status byte and submit timestamp. The
// blocking sector API from the original single-queue driver survives on
// top of the async core. seg_max/size_max are enforced on this side
// too: the driver splits data into compliant segments and refuses
// requests it cannot express.
#pragma once

#include <deque>
#include <string>

#include "vfpga/hostos/virtio_transport.hpp"
#include "vfpga/virtio/blk_defs.hpp"

namespace vfpga::hostos {

class VirtioBlkDriver {
 public:
  using BindContext = VirtioPciTransport::BindContext;

  struct Options {
    /// Queues to use when the device offers VIRTIO_BLK_F_MQ (clamped to
    /// the device's num_queues; without MQ a single queue is used).
    u16 requested_queues = 1;
    /// Max requests in flight per queue (the nr_requests analogue).
    u16 queue_depth = 32;
    /// Per-slot data buffer size — the largest single I/O.
    u32 max_io_bytes = 64 * 1024;
    bool use_indirect = false;
  };

  VirtioBlkDriver() = default;
  explicit VirtioBlkDriver(Options options) : options_(options) {}

  /// Probe + initialize (request queues, MSI-X, limits from device
  /// config). Returns false when the device is not a virtio-blk modern
  /// device or negotiation fails.
  bool probe(const BindContext& ctx, HostThread& thread);

  [[nodiscard]] bool bound() const { return transport_.bound(); }
  [[nodiscard]] u64 capacity_sectors() const { return capacity_sectors_; }
  [[nodiscard]] u32 size_max() const { return size_max_; }
  [[nodiscard]] u32 seg_max() const { return seg_max_; }
  [[nodiscard]] u16 active_queues() const {
    return static_cast<u16>(queues_.size());
  }
  [[nodiscard]] u16 queue_depth() const { return options_.queue_depth; }
  [[nodiscard]] u32 request_vector() const { return queues_.front().vector; }
  [[nodiscard]] u32 queue_vector(u16 queue) const {
    return queues_.at(queue).vector;
  }
  [[nodiscard]] virtio::FeatureSet negotiated() const {
    return transport_.negotiated();
  }

  /// Submit requests through indirect descriptor tables when negotiated
  /// (split rings only; defaults off to mirror virtio_blk's threshold
  /// behaviour for short chains).
  void set_use_indirect(bool enabled) { use_indirect_ = enabled; }
  [[nodiscard]] bool use_indirect() const { return use_indirect_; }

  /// Switch a queue between interrupt-driven and polled completion.
  /// Polled queues never arm their vector; completions are reaped via
  /// wait_polled()/harvest_now().
  void set_polled(u16 queue, bool polled);
  [[nodiscard]] bool polled(u16 queue) const {
    return queues_.at(queue).polled;
  }

  // ---- async submission/completion core ----------------------------------------

  struct Completion {
    u32 slot = 0;
    u8 status = 0;
    sim::SimTime submitted_at{};
    sim::SimTime completed_at{};
  };

  /// Submit without waiting; returns the slot id, or nullopt when the
  /// queue is at depth / the ring is full / the request violates the
  /// negotiated seg_max x size_max envelope.
  std::optional<u32> submit_read(HostThread& thread, u16 queue, u64 sector,
                                 u32 bytes);
  std::optional<u32> submit_write(HostThread& thread, u16 queue, u64 sector,
                                  ConstByteSpan data);
  std::optional<u32> submit_flush(HostThread& thread, u16 queue);

  /// Drain every completion already visible to this core (polled path;
  /// does not advance the clock). Returns how many were reaped.
  u32 harvest_now(HostThread& thread, u16 queue);
  /// Spin until the next in-flight completion becomes visible, then
  /// drain (polled path). False when nothing is in flight.
  bool wait_polled(HostThread& thread, u16 queue);
  /// Sleep on the queue's vector, then drain (interrupt path). When the
  /// vector never fired but the used ring shows completions — a lost
  /// interrupt — falls back to visibility polling and counts the
  /// recovery. False when no completion could be reaped.
  bool wait_interrupt(HostThread& thread, u16 queue);

  /// Pop the oldest drained completion (used-ring order) and free its
  /// slot. Read-data must be consumed via read_payload() BEFORE popping
  /// a later submit may recycle the slot's buffers.
  std::optional<Completion> pop_completion(u16 queue);
  /// Copy a completed read slot's data out of the bounce buffer.
  void read_payload(u16 queue, u32 slot, ByteSpan out) const;

  [[nodiscard]] u16 in_flight(u16 queue) const {
    return queues_.at(queue).in_flight;
  }
  [[nodiscard]] u32 completions_ready(u16 queue) const {
    return static_cast<u32>(queues_.at(queue).completed.size());
  }

  // ---- blocking sector API (single outstanding request) -------------------------

  /// Blocking sector I/O (512-byte sectors). Sizes must be multiples of
  /// the sector size. Returns false on device-reported error.
  bool read_sectors(HostThread& thread, u64 sector, ByteSpan out);
  bool write_sectors(HostThread& thread, u64 sector, ConstByteSpan data);
  bool flush(HostThread& thread);
  /// VIRTIO_BLK_T_GET_ID: the device's id string (nullopt on error).
  std::optional<std::string> get_id(HostThread& thread);
  /// VIRTIO_BLK_T_DISCARD over the given ranges; false when the feature
  /// was not negotiated or the device rejected the request.
  bool discard(HostThread& thread,
               std::span<const virtio::blk::DiscardSegment> segments);

  [[nodiscard]] u64 requests_completed() const {
    return requests_completed_;
  }
  [[nodiscard]] u64 requests_failed() const { return requests_failed_; }
  [[nodiscard]] u64 irq_recoveries() const { return irq_recoveries_; }
  [[nodiscard]] u64 rejected_oversize() const { return rejected_oversize_; }

  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  struct Slot {
    HostAddr header_addr = 0;
    HostAddr status_addr = 0;
    HostAddr data_addr = 0;
    u32 data_len = 0;
    bool in_flight = false;
    sim::SimTime submitted_at{};
  };
  struct QueueRt {
    u32 vector = 0;
    bool polled = false;
    u64 harvest_seq = 0;  ///< completions reaped (visibility cursor)
    u16 in_flight = 0;
    std::vector<Slot> slots;
    std::vector<u32> free_slots;
    std::deque<Completion> completed;
  };

  std::optional<u32> submit_io(HostThread& thread, u16 queue,
                               virtio::blk::RequestType type, u64 sector,
                               ConstByteSpan out_data, u32 in_bytes);
  /// Reap one used entry unconditionally; false when none is pending.
  bool drain_one(HostThread& thread, u16 queue);
  u32 drain_all(HostThread& thread, u16 queue);
  /// Blocking helper: wait (interrupt or polled per queue mode) until
  /// `slot` completes, then return its status.
  std::optional<u8> wait_for_slot(HostThread& thread, u16 queue, u32 slot);

  Options options_;
  VirtioPciTransport transport_;
  InterruptController* irq_ = nullptr;
  u64 capacity_sectors_ = 0;
  u32 size_max_ = 0;
  u32 seg_max_ = 1;
  bool use_indirect_ = false;
  std::vector<QueueRt> queues_;
  u64 requests_completed_ = 0;
  u64 requests_failed_ = 0;
  u64 irq_recoveries_ = 0;
  u64 rejected_oversize_ = 0;
};

}  // namespace vfpga::hostos
