#include "vfpga/hostos/cost_model.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::hostos {

using sim::from_nanos;
using sim::JitteredSegment;
using sim::MixtureSegment;
using sim::nanoseconds;

CostModelConfig CostModelConfig::fedora_defaults() {
  CostModelConfig c;

  // Kernel crossings: a few hundred ns on a mitigated desktop kernel.
  c.syscall_entry = {nanoseconds(260), 0.18, nanoseconds(150), {}};
  c.syscall_exit = {nanoseconds(240), 0.18, nanoseconds(140), {}};
  c.irq_entry = {nanoseconds(1100), 0.30, nanoseconds(550), {}};

  // Scheduler wake-up of a blocked task: strongly multi-modal. The three
  // components model (a) target CPU already awake, (b) C1/C1E exit,
  // (c) deeper C-state exit / runqueue contention. Desktop Fedora with
  // default cpuidle governors sees all three.
  c.wakeup = MixtureSegment{{
      {0.52, {nanoseconds(1300), 0.25, nanoseconds(700), {}}},
      {0.35, {nanoseconds(3600), 0.30, nanoseconds(1600), {}}},
      {0.13, {nanoseconds(11000), 0.35, nanoseconds(4500), sim::microseconds(40)}},
  }};

  // Socket/UDP/IP stack traversal per sendto()/receive.
  c.udp_tx_stack = {nanoseconds(2200), 0.16, nanoseconds(1300), {}};
  c.udp_rx_stack = {nanoseconds(1900), 0.16, nanoseconds(1100), {}};
  c.socket_recv = {nanoseconds(700), 0.18, nanoseconds(350), {}};

  // virtio-net driver segments.
  c.virtio_xmit = {nanoseconds(860), 0.18, nanoseconds(450), {}};
  c.virtio_rx_napi = {nanoseconds(1200), 0.25, nanoseconds(650), {}};
  c.virtio_rx_refill = {nanoseconds(520), 0.20, nanoseconds(250), {}};

  // Busy-poll datapath. One spin iteration is a used-ring cache-line
  // probe plus loop overhead — the line is resident after the first
  // miss, so the per-iteration cost is small and tight. Disarm is a
  // flag write; re-arm writes used_event and re-checks the ring (the
  // race close Linux's virtqueue_enable_cb performs).
  c.busy_poll_iteration = {nanoseconds(60), 0.20, nanoseconds(25), {}};
  c.irq_disarm = {nanoseconds(90), 0.25, nanoseconds(40), {}};
  c.irq_rearm = {nanoseconds(180), 0.25, nanoseconds(80), {}};

  // Mapping one sg segment for device DMA: streaming-DMA map (cache
  // maintenance is a no-op on x86; the cost is the IOMMU/swiotlb check
  // plus the sg entry build). Cheap relative to copying a page.
  c.dma_map_segment = {nanoseconds(80), 0.20, nanoseconds(40), {}};

  // Software GSO: per-segment header clone + fixup + checksum slice
  // (~MTU of payload summed per segment dominates; cf. the kernel's
  // skb_segment + csum_partial on a 1500-byte slice).
  c.gso_segment_host = {nanoseconds(650), 0.18, nanoseconds(300), {}};

  // virtio-blk request path: header+chain build per bio on submit,
  // used-entry decode + bio end on completion. Cheaper than the net
  // xmit path (no skb, no protocol headers), costlier than a bare ring
  // operation. Sampled only when a blk driver runs — the net-only
  // figures never draw from these streams.
  c.blk_submit = {nanoseconds(620), 0.18, nanoseconds(320), {}};
  c.blk_complete = {nanoseconds(480), 0.20, nanoseconds(240), {}};

  // Reactor loop: one iteration's fixed overhead is a poller-table walk
  // plus a message-ring probe (SPDK measures ~100-300ns per idle
  // thread_poll); dispatching one cross-reactor message adds a function
  // call + cache miss on the ring slot.
  c.reactor_poll_iteration = {nanoseconds(110), 0.20, nanoseconds(45), {}};
  c.reactor_msg = {nanoseconds(70), 0.22, nanoseconds(30), {}};

  // XDMA character-device driver segments. Submission pins user pages,
  // builds the SG table and descriptors, and flushes them — the
  // per-transfer work VirtIO does not have (§IV-A).
  c.xdma_submit = {nanoseconds(2600), 0.45, nanoseconds(1300), {}};
  c.xdma_isr_body = {nanoseconds(640), 0.40, nanoseconds(280), {}};
  c.xdma_teardown = {nanoseconds(900), 0.45, nanoseconds(400), {}};

  // Test-application loop body (clock_gettime pair, buffer touch).
  c.app_iteration = {nanoseconds(280), 0.15, nanoseconds(140), {}};

  c.copy_ns_per_kib = 40.0;
  return c;
}

HostThread::HostThread(sim::Xoshiro256& rng, const CostModelConfig& costs,
                       const sim::NoiseModel& noise, sim::SimTime start)
    : rng_(&rng), costs_(&costs), noise_(&noise), now_(start) {}

void HostThread::exec(const JitteredSegment& segment) {
  exec_fixed(segment.sample(*rng_));
}

void HostThread::exec(const MixtureSegment& segment) {
  exec_fixed(segment.sample(*rng_));
}

void HostThread::exec_fixed(sim::Duration d) {
  VFPGA_EXPECTS(d >= sim::Duration{});
  const sim::Duration interference = noise_->interference(*rng_, d) +
                                     noise_->rare_stall(*rng_, d);
  now_ += d + interference;
  software_ += d + interference;
}

void HostThread::exec_poll(const JitteredSegment& segment) {
  const sim::Duration before = software_;
  exec_fixed(segment.sample(*rng_));
  poll_ += software_ - before;  // segment + its interference
}

sim::SimTime HostThread::spin_until(sim::SimTime t) {
  // The spinner burns the whole window on-core (software + poll
  // residency), but the window's wall-clock length is pinned by the
  // data's arrival at `t`: a preemption that hits mid-window completes
  // before the data lands and costs nothing beyond the cycles already
  // burned. Only host-wide rare stalls (SMIs, timer storms) that
  // overlap the arrival instant delay detection — the same exposure a
  // sleeping task's wake-up has in block_until().
  if (t > now_) {
    const sim::Duration spun = t - now_;
    now_ = t + noise_->rare_stall(*rng_, spun);
    const sim::Duration burned = spun + (now_ - t);
    software_ += burned;
    poll_ += burned;
  }
  return now_;
}

void HostThread::copy(u64 bytes) {
  double ns = costs_->copy_ns_per_kib * static_cast<double>(bytes) / 1024.0;
  if (bytes > costs_->copy_cold_threshold_bytes) {
    // Beyond the cache-resident regime every additional byte also pays
    // the memory-bandwidth-bound rate. Single exec_fixed either way, so
    // the RNG draw count (and thus every baseline timeline) is
    // unchanged by the tier.
    ns += costs_->copy_cold_extra_ns_per_kib *
          static_cast<double>(bytes - costs_->copy_cold_threshold_bytes) /
          1024.0;
  }
  exec_fixed(from_nanos(ns));
}

void HostThread::mmio_stall(sim::Duration d) {
  VFPGA_EXPECTS(d >= sim::Duration{});
  now_ += d;
  mmio_stall_ += d;
}

sim::SimTime HostThread::block_until(sim::SimTime t) {
  // Rare host-wide stalls (timer storms, RCU, SMIs) delay the wake-up of
  // a sleeping task just as they delay running code; exposure follows
  // the wall-clock sleep length.
  const sim::Duration slept =
      t > now_ ? t - now_ : sim::Duration{};
  now_ = std::max(now_, t) + noise_->rare_stall(*rng_, slept);
  return now_;
}

void HostThread::reset_accounting() {
  software_ = sim::Duration{};
  mmio_stall_ = sim::Duration{};
  poll_ = sim::Duration{};
}

void HostThread::save_state(migrate::StateWriter& w) const {
  w.put_time(now_);
  w.put_duration(software_);
  w.put_duration(mmio_stall_);
  w.put_duration(poll_);
}

void HostThread::load_state(migrate::StateReader& r) {
  now_ = r.get_time();
  software_ = r.get_duration();
  mmio_stall_ = r.get_duration();
  poll_ = r.get_duration();
}

}  // namespace vfpga::hostos
