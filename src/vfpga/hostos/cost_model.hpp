// Host software cost model and the simulated host thread.
//
// Every kernel/userspace code segment the two driver stacks execute is a
// calibrated JitteredSegment (median + lognormal jitter); scheduler
// wake-ups are a MixtureSegment (fast path / shallow / deep C-state
// exit — the dominant multi-modality of real wake-up latency). The
// HostThread advances a timeline through these segments, accumulating
// "software residency" that the NoiseModel uses to inject preemption
// interference (see vfpga/sim/noise.hpp for why this reproduces the
// paper's variance structure).
//
// Defaults are calibrated against the paper's testbed class (Fedora,
// desktop-class CPU, no isolation/pinning): absolute values are
// model inputs, not measurements — EXPERIMENTS.md discusses the match.
#pragma once

#include "vfpga/sim/distributions.hpp"
#include "vfpga/sim/noise.hpp"
#include "vfpga/sim/rng.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::hostos {

struct CostModelConfig {
  // ---- generic kernel entry/exit ----
  sim::JitteredSegment syscall_entry;   ///< user->kernel crossing
  sim::JitteredSegment syscall_exit;    ///< kernel->user return
  sim::MixtureSegment wakeup;           ///< blocked task woken (C-states!)
  sim::JitteredSegment irq_entry;       ///< hard-IRQ entry + dispatch

  // ---- network stack (VirtIO path) ----
  sim::JitteredSegment udp_tx_stack;    ///< sendto: skb, UDP/IP build, route
  sim::JitteredSegment udp_rx_stack;    ///< IP/UDP receive, socket queue
  sim::JitteredSegment virtio_xmit;     ///< virtio-net xmit: hdr+chain+publish
  sim::JitteredSegment virtio_rx_napi;  ///< NAPI poll: harvest used, skb
  sim::JitteredSegment virtio_rx_refill;///< repost RX buffers
  sim::JitteredSegment socket_recv;     ///< recvfrom dequeue + copyout

  // ---- busy-poll datapath (SO_BUSY_POLL / napi_busy_loop model) ----
  sim::JitteredSegment busy_poll_iteration;  ///< one spin: used-ring probe
  sim::JitteredSegment irq_disarm;           ///< mask the queue vector
  sim::JitteredSegment irq_rearm;            ///< re-enable + used_event write

  // ---- zero-copy scatter-gather datapath ----
  /// Per-segment DMA mapping cost (dma_map_single / IOMMU map + sg-list
  /// entry build) charged when the bounce copy is elided: the sg path
  /// trades one memcpy for one of these per descriptor segment.
  sim::JitteredSegment dma_map_segment;

  // ---- segmentation offload ----
  /// Per-wire-frame cost of the software-GSO fallback: clone the
  /// header, rewrite IP length/id, slice the payload and compute the
  /// segment's UDP checksum. This is exactly the per-segment host work
  /// HOST_UFO moves onto the fabric.
  sim::JitteredSegment gso_segment_host;

  // ---- virtio-blk request path ----
  /// Per-request submission work: bio -> request header + chain build +
  /// publish (virtio_blk's virtblk_add_req analogue).
  sim::JitteredSegment blk_submit;
  /// Per-completion harvest work: used-entry decode, status check, bio
  /// end (virtblk_done analogue, sans the IRQ machinery around it).
  sim::JitteredSegment blk_complete;

  // ---- reactor (run-to-completion polled execution) ----
  /// One reactor loop iteration's fixed overhead: poller table walk,
  /// message-ring empty probe, timer-wheel peek (SPDK thread_poll).
  sim::JitteredSegment reactor_poll_iteration;
  /// Dequeue + dispatch of one inter-reactor message (spdk_msg fn call).
  sim::JitteredSegment reactor_msg;

  // ---- vendor driver (XDMA path) ----
  sim::JitteredSegment xdma_submit;     ///< pin pages, SG map, build descs
  sim::JitteredSegment xdma_isr_body;   ///< ISR bookkeeping (sans MMIO read)
  sim::JitteredSegment xdma_teardown;   ///< unmap/unpin on completion

  // ---- test application ----
  sim::JitteredSegment app_iteration;   ///< loop bookkeeping + clock_gettime

  /// Per-KiB copy cost (copy_{from,to}_user) in nanoseconds while the
  /// working set is cache-resident.
  double copy_ns_per_kib = 40.0;
  /// Copies larger than this leave the cache-resident regime: every
  /// byte past the threshold additionally pays the cold rate below
  /// (memory-bandwidth-bound memcpy with both ends uncached plus page
  /// walks). Baseline round-trip payloads (<= 1 KiB) never cross it,
  /// keeping the paper's figures untouched; the streaming workload's
  /// jumbo bounce copies do.
  u64 copy_cold_threshold_bytes = 1024;
  /// Extra nanoseconds per KiB for bytes beyond the cold threshold
  /// (combined with the hot rate: ~3 GB/s effective cold-copy speed).
  double copy_cold_extra_ns_per_kib = 300.0;

  /// Defaults representative of the paper's Fedora 37 desktop host.
  static CostModelConfig fedora_defaults();
};

/// The simulated application/kernel thread: a timeline plus software-
/// residency accounting. One HostThread drives one test program.
class HostThread {
 public:
  HostThread(sim::Xoshiro256& rng, const CostModelConfig& costs,
             const sim::NoiseModel& noise, sim::SimTime start = {});

  [[nodiscard]] sim::SimTime now() const { return now_; }
  [[nodiscard]] const CostModelConfig& costs() const { return *costs_; }
  [[nodiscard]] sim::Xoshiro256& rng() { return *rng_; }

  /// Total time this thread spent executing software (excludes blocked
  /// waits and MMIO stalls).
  [[nodiscard]] sim::Duration software_time() const { return software_; }
  /// Total CPU-stalled MMIO wait time (non-posted register reads).
  [[nodiscard]] sim::Duration mmio_stall_time() const { return mmio_stall_; }
  /// Subset of software_time() spent busy-polling (spin loops). A
  /// polling thread is runnable the whole time, so the noise model
  /// charges it interference exactly like any other software segment —
  /// this accumulator only separates "useful" from "spinning" residency
  /// for the CPU-cost-vs-latency trade the poll-mode bench reports.
  [[nodiscard]] sim::Duration poll_time() const { return poll_; }

  /// Execute a software segment: sample its cost, add preemption noise.
  void exec(const sim::JitteredSegment& segment);
  void exec(const sim::MixtureSegment& segment);
  /// Execute a fixed-cost software step (already-sampled or derived).
  void exec_fixed(sim::Duration d);
  /// Execute a segment inside a busy-poll loop: same timeline and noise
  /// behaviour as exec(), additionally accounted as poll residency.
  void exec_poll(const sim::JitteredSegment& segment);
  /// Spin (busy-wait) until `t`: the CPU stays runnable, so the whole
  /// window counts as software + poll residency — but unlike exec(),
  /// the wall-clock end is pinned by the awaited event, so only rare
  /// host-wide stalls (the same exposure block_until() has) delay it
  /// past `t`. Returns the actual time reached (>= t).
  sim::SimTime spin_until(sim::SimTime t);
  /// Copy `bytes` across the user/kernel boundary.
  void copy(u64 bytes);

  /// CPU stalled on a non-posted MMIO read (not software, not blocked).
  void mmio_stall(sim::Duration d);

  /// Blocked (sleeping) until `t`; no software time accrues. Returns the
  /// actual resume point (>= now()).
  sim::SimTime block_until(sim::SimTime t);

  /// Reset the per-iteration accounting (software/mmio accumulators).
  void reset_accounting();

  /// Snapshot/restore of the timeline and accounting (not the wired-in
  /// rng/cost/noise references, which the restore target already owns).
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  sim::Xoshiro256* rng_;
  const CostModelConfig* costs_;
  const sim::NoiseModel* noise_;
  sim::SimTime now_;
  sim::Duration software_{};
  sim::Duration mmio_stall_{};
  sim::Duration poll_{};
};

}  // namespace vfpga::hostos
