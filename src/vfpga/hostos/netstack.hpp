// Kernel UDP/IP network stack model.
//
// The glue between the socket API and the virtio-net driver: routing
// (FIB) and neighbour (ARP) lookups on transmit, frame
// construction/validation with real checksums, NAPI-driven receive
// demultiplexing to per-port socket queues, and blocking receive that
// sleeps on the RX interrupt. The paper's test setup — "entries are
// added to the operating system's routing table and ARP cache to
// facilitate routing packets from the test application to the FPGA"
// (§III-B.1) — is configure_fpga_route().
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "vfpga/hostos/virtio_net_driver.hpp"
#include "vfpga/net/arp.hpp"
#include "vfpga/net/icmp.hpp"
#include "vfpga/net/routing.hpp"
#include "vfpga/net/udp.hpp"

namespace vfpga::hostos {

/// Receive-path selection for a socket (the SO_BUSY_POLL family):
/// interrupt = classic sleep-on-IRQ; busy-poll = spin on the used ring
/// for a budget before falling back; adaptive = the driver's EWMA
/// controller picks spin vs sleep per call.
enum class RxMode : u8 {
  kInterrupt,
  kBusyPoll,
  kAdaptive,
};

struct NetstackConfig {
  net::Ipv4Addr host_ip = net::Ipv4Addr::from_octets(10, 42, 0, 1);
  u8 ip_ttl = 64;
  /// Interface id assigned to the virtio-net device in the FIB.
  u32 virtio_ifindex = 2;
};

class KernelNetstack {
 public:
  KernelNetstack(VirtioNetDriver& driver, InterruptController& irq,
                 NetstackConfig config = {});

  [[nodiscard]] net::RoutingTable& routes() { return routes_; }
  [[nodiscard]] net::ArpCache& arp() { return arp_; }
  [[nodiscard]] const NetstackConfig& config() const { return config_; }

  /// The paper's static setup: host route to the FPGA through the
  /// virtio-net interface plus a permanent neighbour entry.
  void configure_fpga_route(net::Ipv4Addr fpga_ip, net::MacAddr fpga_mac);

  /// Dynamic neighbour resolution: ARP request/reply round trip through
  /// the device. Returns the resolved MAC.
  std::optional<net::MacAddr> arp_resolve(HostThread& thread,
                                          net::Ipv4Addr ip);

  /// sendto(2) semantics: route, resolve, build, transmit. Returns false
  /// on EHOSTUNREACH (no route / no neighbour). `more_coming` is the
  /// MSG_MORE hint, forwarded to the driver's xmit_more TX kick
  /// coalescing.
  bool udp_send(HostThread& thread, u16 src_port, net::Ipv4Addr dst,
                u16 dst_port, ConstByteSpan payload,
                bool more_coming = false);

  /// sendmsg(2) with an iovec payload. With `zerocopy` (the
  /// MSG_ZEROCOPY analogue) the per-byte copy_from_user charge is
  /// elided — the fragments are pinned where they are and the driver's
  /// scatter-gather path charges per-segment DMA mapping instead; the
  /// classic path charges the same copy as udp_send.
  bool udp_sendmsg(HostThread& thread, u16 src_port, net::Ipv4Addr dst,
                   u16 dst_port, std::span<const ConstByteSpan> iov,
                   bool more_coming = false, bool zerocopy = false);

  /// What udp_recvmsg scattered into the caller's iovec.
  struct MsgRecv {
    net::Ipv4Addr src{};
    u16 src_port = 0;
    u16 dst_port = 0;
    u64 bytes = 0;           ///< bytes written across the iovec
    u64 datagram_bytes = 0;  ///< full datagram size (detects truncation)
  };

  /// recvmsg(2): receive one datagram for `local_port` via the selected
  /// RX mode and scatter its payload across `iov` (short iovecs
  /// truncate, as recvmsg without MSG_TRUNC does).
  std::optional<MsgRecv> udp_recvmsg(HostThread& thread, u16 local_port,
                                     std::span<ByteSpan> iov, RxMode mode,
                                     sim::Duration budget = sim::Duration{});

  struct Datagram {
    net::Ipv4Addr src{};
    u16 src_port = 0;
    u16 dst_port = 0;
    Bytes payload;
  };

  /// recvfrom(2) with blocking semantics: sleep until the RX interrupt,
  /// run the NAPI/IP/UDP receive path, return the datagram for
  /// `local_port`. Nullopt when no interrupt is (or becomes) pending —
  /// the sequential-simulation analogue of a receive timeout.
  std::optional<Datagram> udp_receive_blocking(HostThread& thread,
                                               u16 local_port);

  /// Non-blocking variant: only drains already-delivered interrupts.
  std::optional<Datagram> udp_receive_poll(HostThread& thread,
                                           u16 local_port);

  /// SO_BUSY_POLL receive: spin on the flow's RX queue for `budget`
  /// (zero = the driver's default) harvesting completions as their
  /// used-ring writes become visible, skipping the IRQ entry and the
  /// scheduler wakeup entirely on the hit path. Falls back to the
  /// blocking path when the budget expires with the data still in
  /// flight (busy_poll re-armed the vector before returning).
  std::optional<Datagram> udp_receive_busy_poll(
      HostThread& thread, u16 local_port,
      sim::Duration budget = sim::Duration{});

  /// Adaptive hybrid: consult the driver's per-pair EWMA controller and
  /// take the busy-poll path when the predicted wait is short, the
  /// interrupt path (feeding the observed wait back) otherwise.
  std::optional<Datagram> udp_receive_adaptive(
      HostThread& thread, u16 local_port,
      sim::Duration budget = sim::Duration{});

  /// Interrupt-less receive servicing: run the NAPI poll + demux even
  /// when no RX interrupt fired. This is the recovery path for a lost
  /// MSI-X notify — the used ring may hold completions that never raised
  /// a vector. Returns the number of frames harvested.
  u32 poll_rx(HostThread& thread);

  /// ping(8): send an ICMP echo request and block for the matching
  /// reply. Returns the application-measured round-trip time, or
  /// nullopt on timeout/verification failure.
  std::optional<sim::Duration> icmp_ping(HostThread& thread,
                                         net::Ipv4Addr dst, u16 identifier,
                                         u16 sequence, ConstByteSpan payload);

  [[nodiscard]] u64 frames_demuxed() const { return frames_demuxed_; }
  [[nodiscard]] u64 frames_dropped() const { return frames_dropped_; }
  /// Over-MTU sends handed to the device as one GSO superframe
  /// (HOST_UFO negotiated) instead of a pre-segmented packet train.
  [[nodiscard]] u64 tx_superframes() const { return tx_superframes_; }
  /// Wire frames produced by the software-GSO fallback (the host-side
  /// segmentation loop that runs when the device offload is absent).
  [[nodiscard]] u64 sw_gso_segments() const { return sw_gso_segments_; }
  /// Datagrams accepted on the device's DATA_VALID promise although the
  /// on-wire checksum did not verify (GRO superframes keep the first
  /// segment's checksum, so this is the coalescing path's fingerprint).
  [[nodiscard]] u64 csum_rescued() const { return csum_rescued_; }
  /// UDP datagrams that arrived on a different queue pair than the one
  /// the flow's hash steers to — the symptom of device steering-table
  /// corruption.
  [[nodiscard]] u64 steering_mismatches() const {
    return steering_mismatches_;
  }

  /// Queue pair carrying the flow bound to `local_port` (0 until the
  /// first send establishes the affinity).
  [[nodiscard]] u16 flow_pair(u16 local_port) const;

  /// Snapshot/restore of the stack's dynamic state: socket queues, flow
  /// affinities, queued ICMP replies, IP-id counter, counters. Routing
  /// and ARP tables are configuration (configure_fpga_route) and are
  /// rebuilt by the restore target's own setup.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  /// Consecutive diverted datagrams tolerated before the stack asks the
  /// driver to reset the device's steering table.
  static constexpr u32 kSteeringRepairThreshold = 4;

  /// Route + resolve + frame build + transmit for an already-charged
  /// payload (the tail shared by udp_send and udp_sendmsg).
  bool send_built(HostThread& thread, u16 src_port, net::Ipv4Addr dst,
                  u16 dst_port, ConstByteSpan payload, bool more_coming);

  /// Service one RX interrupt: irq entry, NAPI poll, IP/UDP demux.
  void service_rx_interrupt(HostThread& thread, sim::SimTime irq_time,
                            u16 pair = 0);
  void demux_frames(HostThread& thread, u16 pair = 0);

  VirtioNetDriver* driver_;
  InterruptController* irq_;
  NetstackConfig config_;
  net::RoutingTable routes_;
  net::ArpCache arp_;
  u16 next_ip_id_ = 1;
  std::map<u16, std::deque<Datagram>> socket_queues_;
  /// local port -> queue pair its flow hashes to (set on transmit).
  std::map<u16, u16> flow_affinity_;
  u64 steering_mismatches_ = 0;
  u32 mismatches_since_repair_ = 0;
  struct IcmpReply {
    net::Ipv4Addr src{};
    u16 identifier = 0;
    u16 sequence = 0;
    Bytes payload;
  };
  std::deque<IcmpReply> icmp_replies_;
  u64 frames_demuxed_ = 0;
  u64 frames_dropped_ = 0;
  u64 tx_superframes_ = 0;
  u64 sw_gso_segments_ = 0;
  u64 csum_rescued_ = 0;
};

}  // namespace vfpga::hostos
