// Character-device file layer.
//
// The VFS-level view the XDMA test application uses: the reference
// driver exposes /dev/xdma0_h2c_0 and /dev/xdma0_c2h_0, and "at the most
// basic level, a user application can use the I/O system calls read()
// and write() to move data between a buffer in the host memory and FPGA
// memory" (§IV-A). XdmaDeviceFile charges the syscall boundary and
// forwards into the driver model.
#pragma once

#include "vfpga/xdma/host_driver.hpp"

namespace vfpga::hostos {

class XdmaDeviceFile {
 public:
  enum class Direction { HostToCard, CardToHost };

  XdmaDeviceFile(xdma::XdmaHostDriver& driver, Direction direction)
      : driver_(&driver), direction_(direction) {}

  /// write(2) on /dev/xdma0_h2c_0: move `data` to card memory at
  /// `card_addr`. Returns bytes written or -1.
  i64 write(HostThread& thread, ConstByteSpan data, FpgaAddr card_addr = 0);

  /// read(2) on /dev/xdma0_c2h_0: fill `out` from card memory.
  i64 read(HostThread& thread, ByteSpan out, FpgaAddr card_addr = 0);

 private:
  xdma::XdmaHostDriver* driver_;
  Direction direction_;
};

}  // namespace vfpga::hostos
