#include "vfpga/hostos/virtio_console_driver.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::hostos {

using virtio::console::ConsoleConfigLayout;

bool VirtioConsoleDriver::probe(const BindContext& ctx, HostThread& thread) {
  virtio::FeatureSet wanted;
  wanted.set(virtio::feature::console::kSize);
  if (!transport_.begin_probe(ctx, virtio::DeviceType::Console, wanted,
                              thread)) {
    return false;
  }
  irq_ = ctx.irq;

  transport_.setup_vector(0, thread);
  transport_.set_config_vector(0, thread);
  rx_vector_ = transport_.setup_vector(1, thread);
  tx_vector_ = transport_.setup_vector(2, thread);

  auto& rx = transport_.setup_queue(virtio::console::kRxQueue, 1, thread);
  auto& tx = transport_.setup_queue(virtio::console::kTxQueue, 2, thread);

  auto& memory = transport_.memory();
  rx_buffers_.resize(rx.size());
  for (u16 i = 0; i < rx.size(); ++i) {
    rx_buffers_[i].addr = memory.allocate(buffer_bytes_, 64);
    rx_buffers_[i].len = buffer_bytes_;
    const virtio::ChainBuffer buf{rx_buffers_[i].addr, buffer_bytes_, true};
    VFPGA_ASSERT(rx.add_chain(std::span{&buf, 1}, i).has_value());
  }
  rx.publish();
  tx_buffer_ = memory.allocate(buffer_bytes_, 64);

  transport_.finish_probe(thread);
  rx.enable_interrupts();
  tx.disable_interrupts();

  if (transport_.negotiated().has(virtio::feature::console::kSize)) {
    cols_ = transport_.device_config_read16(ConsoleConfigLayout::kColsOffset,
                                            thread);
    rows_ = transport_.device_config_read16(ConsoleConfigLayout::kRowsOffset,
                                            thread);
  }
  return true;
}

bool VirtioConsoleDriver::write(HostThread& thread, ConstByteSpan data) {
  VFPGA_EXPECTS(bound());
  VFPGA_EXPECTS(data.size() <= buffer_bytes_);
  thread.exec(thread.costs().syscall_entry);
  thread.copy(data.size());
  thread.exec(thread.costs().virtio_xmit);

  transport_.memory().write(tx_buffer_, data);
  auto& tx = transport_.queue(virtio::console::kTxQueue);
  const virtio::ChainBuffer buf{tx_buffer_, static_cast<u32>(data.size()),
                                false};
  if (!tx.add_chain(std::span{&buf, 1}, 0).has_value()) {
    thread.exec(thread.costs().syscall_exit);
    return false;
  }
  tx.publish();
  if (tx.should_kick()) {
    transport_.notify(virtio::console::kTxQueue, thread);
  }
  // Recycle the TX slot immediately (the device consumed it during the
  // notify; completions are suppressed).
  while (tx.harvest().has_value()) {
  }
  bytes_written_ += data.size();
  thread.exec(thread.costs().syscall_exit);
  return true;
}

void VirtioConsoleDriver::service_rx(HostThread& thread,
                                     sim::SimTime irq_time) {
  thread.block_until(irq_time);
  thread.exec(thread.costs().irq_entry);
  thread.exec(thread.costs().virtio_rx_napi);
  auto& rx = transport_.queue(virtio::console::kRxQueue);
  auto& memory = transport_.memory();
  while (const auto completion = rx.harvest()) {
    const RxBuffer& buf = rx_buffers_[completion->token];
    const Bytes data = memory.read_bytes(buf.addr, completion->written);
    rx_bytes_.insert(rx_bytes_.end(), data.begin(), data.end());
    const virtio::ChainBuffer chain{buf.addr, buf.len, true};
    VFPGA_ASSERT(rx.add_chain(std::span{&chain, 1}, completion->token)
                     .has_value());
  }
  rx.publish();
  rx.enable_interrupts();
  thread.exec(thread.costs().wakeup);
}

std::optional<u64> VirtioConsoleDriver::read(HostThread& thread,
                                             ByteSpan out) {
  VFPGA_EXPECTS(bound());
  thread.exec(thread.costs().syscall_entry);
  if (rx_bytes_.empty()) {
    if (!irq_->pending(rx_vector_)) {
      thread.exec(thread.costs().syscall_exit);
      return std::nullopt;
    }
    service_rx(thread, irq_->consume(rx_vector_));
  }
  const u64 count = std::min<u64>(out.size(), rx_bytes_.size());
  for (u64 i = 0; i < count; ++i) {
    out[i] = rx_bytes_.front();
    rx_bytes_.pop_front();
  }
  bytes_read_ += count;
  thread.copy(count);
  thread.exec(thread.costs().syscall_exit);
  return count;
}

}  // namespace vfpga::hostos
