#include "vfpga/mem/bram.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "vfpga/common/contract.hpp"

namespace vfpga::mem {

Bram::Bram(u64 size_bytes, u32 width_bytes)
    : storage_(size_bytes, 0), width_bytes_(width_bytes) {
  VFPGA_EXPECTS(width_bytes > 0);
  VFPGA_EXPECTS(size_bytes % width_bytes == 0);
}

void Bram::read(FpgaAddr addr, ByteSpan out) const {
  VFPGA_EXPECTS(addr + out.size() <= storage_.size());
  std::memcpy(out.data(), storage_.data() + addr, out.size());
}

void Bram::write(FpgaAddr addr, ConstByteSpan data) {
  VFPGA_EXPECTS(addr + data.size() <= storage_.size());
  std::memcpy(storage_.data() + addr, data.data(), data.size());
}

u8 Bram::read_u8(FpgaAddr addr) const {
  VFPGA_EXPECTS(addr < storage_.size());
  return storage_[addr];
}

u32 Bram::read_le32(FpgaAddr addr) const {
  std::array<u8, 4> buf{};
  read(addr, buf);
  return load_le32(buf);
}

void Bram::write_le32(FpgaAddr addr, u32 v) {
  std::array<u8, 4> buf{};
  store_le32(buf, 0, v);
  write(addr, buf);
}

}  // namespace vfpga::mem
