#include "vfpga/mem/host_memory.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "vfpga/common/contract.hpp"

namespace vfpga::mem {
namespace {

// A single shared page of zeroes backs reads from never-written memory.
const std::array<u8, HostMemory::kPageSize> kZeroPage{};

}  // namespace

HostMemory::HostMemory(HostAddr alloc_base)
    : alloc_base_(alloc_base), bump_(alloc_base) {
  VFPGA_EXPECTS(alloc_base % kPageSize == 0);
}

const u8* HostMemory::page_for_read(u64 page_index) const {
  const auto it = pages_.find(page_index);
  return it == pages_.end() ? kZeroPage.data() : it->second.get();
}

u8* HostMemory::page_for_write(u64 page_index) {
  if (dirty_tracking_) {
    dirty_pages_.insert(page_index);
  }
  auto& page = pages_[page_index];
  if (!page) {
    page = std::make_unique<u8[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
  }
  return page.get();
}

void HostMemory::read(HostAddr addr, ByteSpan out) const {
  u64 remaining = out.size();
  u64 cursor = addr;
  u8* dst = out.data();
  while (remaining > 0) {
    const u64 page_index = cursor / kPageSize;
    const u64 offset = cursor % kPageSize;
    const u64 chunk = std::min(remaining, kPageSize - offset);
    std::memcpy(dst, page_for_read(page_index) + offset, chunk);
    dst += chunk;
    cursor += chunk;
    remaining -= chunk;
  }
}

void HostMemory::dma_read(HostAddr addr, ByteSpan out) const {
  read(addr, out);
  if (fault_ != nullptr && out.size() >= fault::kMinPayloadBytes &&
      fault_->should_inject(fault::FaultClass::kDmaPoison)) {
    fault_->corrupt(out);
  }
}

void HostMemory::write(HostAddr addr, ConstByteSpan data) {
  u64 remaining = data.size();
  u64 cursor = addr;
  const u8* src = data.data();
  while (remaining > 0) {
    const u64 page_index = cursor / kPageSize;
    const u64 offset = cursor % kPageSize;
    const u64 chunk = std::min(remaining, kPageSize - offset);
    std::memcpy(page_for_write(page_index) + offset, src, chunk);
    src += chunk;
    cursor += chunk;
    remaining -= chunk;
  }
}

void HostMemory::fill(HostAddr addr, u8 value, u64 length) {
  u64 remaining = length;
  u64 cursor = addr;
  while (remaining > 0) {
    const u64 page_index = cursor / kPageSize;
    const u64 offset = cursor % kPageSize;
    const u64 chunk = std::min(remaining, kPageSize - offset);
    std::memset(page_for_write(page_index) + offset, value, chunk);
    cursor += chunk;
    remaining -= chunk;
  }
}

u8 HostMemory::read_u8(HostAddr addr) const {
  return page_for_read(addr / kPageSize)[addr % kPageSize];
}

u16 HostMemory::read_le16(HostAddr addr) const {
  std::array<u8, 2> buf{};
  read(addr, buf);
  return load_le16(buf);
}

u32 HostMemory::read_le32(HostAddr addr) const {
  std::array<u8, 4> buf{};
  read(addr, buf);
  return load_le32(buf);
}

u64 HostMemory::read_le64(HostAddr addr) const {
  std::array<u8, 8> buf{};
  read(addr, buf);
  return load_le64(buf);
}

void HostMemory::write_u8(HostAddr addr, u8 v) {
  page_for_write(addr / kPageSize)[addr % kPageSize] = v;
}

void HostMemory::write_le16(HostAddr addr, u16 v) {
  std::array<u8, 2> buf{};
  store_le16(buf, 0, v);
  write(addr, buf);
}

void HostMemory::write_le32(HostAddr addr, u32 v) {
  std::array<u8, 4> buf{};
  store_le32(buf, 0, v);
  write(addr, buf);
}

void HostMemory::write_le64(HostAddr addr, u64 v) {
  std::array<u8, 8> buf{};
  store_le64(buf, 0, v);
  write(addr, buf);
}

Bytes HostMemory::read_bytes(HostAddr addr, u64 length) const {
  Bytes out(length);
  read(addr, out);
  return out;
}

void HostMemory::set_dirty_tracking(bool enabled) {
  dirty_tracking_ = enabled;
  dirty_pages_.clear();
}

std::vector<u64> HostMemory::drain_dirty_pages() {
  std::vector<u64> out(dirty_pages_.begin(), dirty_pages_.end());
  std::sort(out.begin(), out.end());
  dirty_pages_.clear();
  return out;
}

std::vector<u64> HostMemory::resident_page_indices() const {
  std::vector<u64> out;
  out.reserve(pages_.size());
  for (const auto& [index, page] : pages_) {
    out.push_back(index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void HostMemory::read_page(u64 page_index, ByteSpan out) const {
  VFPGA_EXPECTS(out.size() == kPageSize);
  std::memcpy(out.data(), page_for_read(page_index), kPageSize);
}

void HostMemory::write_page(u64 page_index, ConstByteSpan data) {
  VFPGA_EXPECTS(data.size() == kPageSize);
  std::memcpy(page_for_write(page_index), data.data(), kPageSize);
}

HostAddr HostMemory::allocate(u64 length, u64 alignment) {
  VFPGA_EXPECTS(length > 0);
  VFPGA_EXPECTS(alignment > 0 && (alignment & (alignment - 1)) == 0);
  const HostAddr aligned = (bump_ + alignment - 1) & ~(alignment - 1);
  bump_ = aligned + length;
  return aligned;
}

}  // namespace vfpga::mem
