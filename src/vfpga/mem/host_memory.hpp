// Simulated host physical memory.
//
// This is the memory the device DMAs into and the drivers place their
// descriptor rings, virtqueues, and packet buffers in. It is sparse
// (4 KiB pages allocated on first touch) so a realistic 64-bit physical
// address map costs only what is used. All multi-byte accesses go through
// the explicit little-endian accessors; nothing in the library ever
// reinterpret_casts into this memory.
//
// A bump allocator hands out DMA-able regions the way a kernel's
// dma_alloc_coherent would — alignment-respecting, never freeing (the
// experiments tear the whole address space down at once).
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"
#include "vfpga/fault/fault_plane.hpp"

namespace vfpga::mem {

class HostMemory {
 public:
  static constexpr u64 kPageSize = 4096;

  /// `alloc_base` is where the bump allocator starts handing out space;
  /// kept away from 0 so that a null/zero address is always a bug.
  explicit HostMemory(HostAddr alloc_base = 0x1'0000'0000ull);

  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  // ---- raw access (functional data path) ----------------------------------

  void read(HostAddr addr, ByteSpan out) const;
  void write(HostAddr addr, ConstByteSpan data);
  void fill(HostAddr addr, u8 value, u64 length);

  /// DMA read-completion path (device-initiated reads routed through the
  /// root complex). Identical to read() except that an installed fault
  /// plane may poison payload-sized completions.
  void dma_read(HostAddr addr, ByteSpan out) const;

  /// Install a fault plane (nullptr = no fault hooks, zero cost).
  void set_fault_plane(fault::FaultPlane* plane) { fault_ = plane; }

  [[nodiscard]] u8 read_u8(HostAddr addr) const;
  [[nodiscard]] u16 read_le16(HostAddr addr) const;
  [[nodiscard]] u32 read_le32(HostAddr addr) const;
  [[nodiscard]] u64 read_le64(HostAddr addr) const;
  void write_u8(HostAddr addr, u8 v);
  void write_le16(HostAddr addr, u16 v);
  void write_le32(HostAddr addr, u32 v);
  void write_le64(HostAddr addr, u64 v);

  [[nodiscard]] Bytes read_bytes(HostAddr addr, u64 length) const;

  // ---- allocation ----------------------------------------------------------

  /// Allocate `length` bytes aligned to `alignment` (power of two).
  /// The region is zero-initialized on first touch like fresh pages.
  [[nodiscard]] HostAddr allocate(u64 length, u64 alignment = 64);

  /// Bytes currently backed by allocated pages (diagnostics).
  [[nodiscard]] u64 resident_bytes() const {
    return static_cast<u64>(pages_.size()) * kPageSize;
  }

  /// Total bytes handed out by the allocator.
  [[nodiscard]] u64 allocated_bytes() const { return bump_ - alloc_base_; }

  // ---- snapshot / migration support ---------------------------------------

  /// Enable (or disable) dirty-page logging for migration pre-copy.
  /// Enabling clears the current dirty set.
  void set_dirty_tracking(bool enabled);
  [[nodiscard]] bool dirty_tracking() const { return dirty_tracking_; }

  /// Take the set of page indices written since the last drain, sorted
  /// ascending (determinism), and clear the log.
  [[nodiscard]] std::vector<u64> drain_dirty_pages();

  /// Resident page indices, sorted ascending.
  [[nodiscard]] std::vector<u64> resident_page_indices() const;

  /// Copy-out / copy-in of one whole page by index (migration transport).
  void read_page(u64 page_index, ByteSpan out) const;
  void write_page(u64 page_index, ConstByteSpan data);

  /// Bump-allocator cursor, so a restored memory reproduces the exact
  /// addresses future allocate() calls would have returned on the source.
  [[nodiscard]] HostAddr allocator_cursor() const { return bump_; }
  void set_allocator_cursor(HostAddr cursor) { bump_ = cursor; }

 private:
  using Page = std::unique_ptr<u8[]>;

  [[nodiscard]] const u8* page_for_read(u64 page_index) const;
  [[nodiscard]] u8* page_for_write(u64 page_index);

  std::unordered_map<u64, Page> pages_;
  HostAddr alloc_base_;
  HostAddr bump_;
  mutable const u8* zero_page_ = nullptr;
  fault::FaultPlane* fault_ = nullptr;
  bool dirty_tracking_ = false;
  std::unordered_set<u64> dirty_pages_;
};

}  // namespace vfpga::mem
