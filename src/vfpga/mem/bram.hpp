// FPGA block RAM model.
//
// Both test designs in the paper back the DMA engine with on-fabric BRAM
// (the XDMA example design wires a BRAM straight to the AXI-MM port; the
// VirtIO design stages frames in BRAM). The model is a fixed-size,
// bounds-checked byte array addressed in the FPGA's AXI space, with a
// data-bus width used by the timing model to charge cycles per beat.
#pragma once

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::mem {

class Bram {
 public:
  /// `size_bytes` must be a multiple of `width_bytes` (the AXI data width;
  /// 8 bytes = 64-bit bus on the Artix-7 Gen2 x2 XDMA configuration).
  Bram(u64 size_bytes, u32 width_bytes = 8);

  [[nodiscard]] u64 size() const { return storage_.size(); }
  [[nodiscard]] u32 width_bytes() const { return width_bytes_; }

  void read(FpgaAddr addr, ByteSpan out) const;
  void write(FpgaAddr addr, ConstByteSpan data);

  [[nodiscard]] u8 read_u8(FpgaAddr addr) const;
  [[nodiscard]] u32 read_le32(FpgaAddr addr) const;
  void write_le32(FpgaAddr addr, u32 v);

  /// Beats (bus cycles) to stream `bytes` through the BRAM port.
  [[nodiscard]] u64 beats_for(u64 bytes) const {
    return (bytes + width_bytes_ - 1) / width_bytes_;
  }

 private:
  Bytes storage_;
  u32 width_bytes_;
};

}  // namespace vfpga::mem
