// FPGA clock domain.
//
// Both test designs run user logic at 125 MHz (8 ns per cycle) — the
// paper's hardware performance counters therefore have 8 ns resolution.
// All FPGA-side work in the models is expressed in cycles and converted
// through this type so no module hard-codes the period.
#pragma once

#include "vfpga/sim/time.hpp"

namespace vfpga::fpga {

class ClockDomain {
 public:
  constexpr explicit ClockDomain(u64 frequency_hz) : freq_hz_(frequency_hz) {}

  [[nodiscard]] constexpr u64 frequency_hz() const { return freq_hz_; }

  [[nodiscard]] constexpr sim::Duration period() const {
    return sim::Duration{static_cast<i64>(1'000'000'000'000ull / freq_hz_)};
  }

  [[nodiscard]] constexpr sim::Duration cycles(u64 n) const {
    return period() * static_cast<i64>(n);
  }

  /// Cycles elapsed in `d`, truncated — how a free-running counter
  /// samples an interval.
  [[nodiscard]] constexpr u64 cycles_in(sim::Duration d) const {
    return static_cast<u64>(d.picos() / period().picos());
  }

 private:
  u64 freq_hz_;
};

/// The 125 MHz user-logic clock of the paper's designs.
inline constexpr ClockDomain kUserClock{125'000'000};

}  // namespace vfpga::fpga
