#include "vfpga/fpga/perf_counter.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::fpga {

void PerfCounterBank::capture(const std::string& name, sim::SimTime at) {
  VFPGA_EXPECTS(at.picos() >= 0);
  const u64 cycle =
      static_cast<u64>(at.picos()) / static_cast<u64>(clock_.period().picos());
  latest_[name] = cycle;
  history_.push_back(Capture{name, cycle});
}

std::optional<u64> PerfCounterBank::cycles(const std::string& name) const {
  const auto it = latest_.find(name);
  if (it == latest_.end()) {
    return std::nullopt;
  }
  return it->second;
}

sim::Duration PerfCounterBank::interval(const std::string& from,
                                        const std::string& to) const {
  const auto a = cycles(from);
  const auto b = cycles(to);
  VFPGA_EXPECTS(a.has_value() && b.has_value());
  VFPGA_EXPECTS(*b >= *a);
  return clock_.cycles(*b - *a);
}

void PerfCounterBank::reset() {
  latest_.clear();
  history_.clear();
}

namespace {

void put_string(migrate::StateWriter& w, const std::string& s) {
  w.put_blob(ConstByteSpan{reinterpret_cast<const u8*>(s.data()), s.size()});
}

std::string get_string(migrate::StateReader& r) {
  const Bytes raw = r.get_blob();
  return std::string{raw.begin(), raw.end()};
}

}  // namespace

void PerfCounterBank::save_state(migrate::StateWriter& w) const {
  std::vector<const std::string*> names;
  names.reserve(latest_.size());
  for (const auto& [name, cycle] : latest_) {
    names.push_back(&name);
  }
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  w.put_u32(static_cast<u32>(names.size()));
  for (const std::string* name : names) {
    put_string(w, *name);
    w.put_u64(latest_.at(*name));
  }
  w.put_u32(static_cast<u32>(history_.size()));
  for (const Capture& c : history_) {
    put_string(w, c.name);
    w.put_u64(c.cycle);
  }
}

void PerfCounterBank::load_state(migrate::StateReader& r) {
  latest_.clear();
  history_.clear();
  const u32 latest_count = r.get_u32();
  for (u32 i = 0; i < latest_count && !r.failed(); ++i) {
    std::string name = get_string(r);
    latest_[std::move(name)] = r.get_u64();
  }
  const u32 history_count = r.get_u32();
  for (u32 i = 0; i < history_count && !r.failed(); ++i) {
    std::string name = get_string(r);
    const u64 cycle = r.get_u64();
    history_.push_back(Capture{std::move(name), cycle});
  }
}

}  // namespace vfpga::fpga
