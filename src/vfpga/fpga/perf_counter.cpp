#include "vfpga/fpga/perf_counter.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::fpga {

void PerfCounterBank::capture(const std::string& name, sim::SimTime at) {
  VFPGA_EXPECTS(at.picos() >= 0);
  const u64 cycle =
      static_cast<u64>(at.picos()) / static_cast<u64>(clock_.period().picos());
  latest_[name] = cycle;
  history_.push_back(Capture{name, cycle});
}

std::optional<u64> PerfCounterBank::cycles(const std::string& name) const {
  const auto it = latest_.find(name);
  if (it == latest_.end()) {
    return std::nullopt;
  }
  return it->second;
}

sim::Duration PerfCounterBank::interval(const std::string& from,
                                        const std::string& to) const {
  const auto a = cycles(from);
  const auto b = cycles(to);
  VFPGA_EXPECTS(a.has_value() && b.has_value());
  VFPGA_EXPECTS(*b >= *a);
  return clock_.cycles(*b - *a);
}

void PerfCounterBank::reset() {
  latest_.clear();
  history_.clear();
}

}  // namespace vfpga::fpga
