#include "vfpga/fpga/timeline.hpp"

#include <cstdio>

namespace vfpga::fpga {

std::string render_timeline(const PerfCounterBank& counters,
                            std::size_t max_events) {
  const auto& history = counters.history();
  if (history.empty()) {
    return "(no captures)\n";
  }
  std::size_t first = 0;
  if (max_events != 0 && history.size() > max_events) {
    first = history.size() - max_events;
  }
  const double period_ns = counters.clock().period().nanos();
  const u64 base_cycle = history[first].cycle;

  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "  %12s %12s %10s  %s\n", "cycle",
                "t (ns)", "+delta", "event");
  out += line;
  u64 prev_cycle = base_cycle;
  for (std::size_t i = first; i < history.size(); ++i) {
    const auto& capture = history[i];
    std::snprintf(line, sizeof line, "  %12llu %12.0f %10.0f  %s\n",
                  static_cast<unsigned long long>(capture.cycle),
                  static_cast<double>(capture.cycle - base_cycle) * period_ns,
                  static_cast<double>(capture.cycle - prev_cycle) * period_ns,
                  capture.name.c_str());
    out += line;
    prev_cycle = capture.cycle;
  }
  return out;
}

}  // namespace vfpga::fpga
