// AXI-Stream-style frame FIFO.
//
// The VirtIO controller hands received frames to user logic (and accepts
// responses) over interfaces "that follow the same semantics as a
// virtqueue" (§III-A) — at transaction level this is a bounded FIFO of
// framed byte payloads with backpressure. Depth is in frames, matching
// a BRAM-backed packet FIFO; a full FIFO rejects pushes, which the
// producer must handle exactly like TREADY deassertion.
#pragma once

#include <deque>

#include "vfpga/common/types.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::fpga {

struct StreamFrame {
  Bytes payload;
  sim::SimTime enqueued_at{};
  /// Side-band metadata (TUSER): e.g. virtqueue index the frame came from.
  u32 user = 0;
};

class StreamFifo {
 public:
  explicit StreamFifo(std::size_t depth_frames) : depth_(depth_frames) {}

  [[nodiscard]] bool full() const { return frames_.size() >= depth_; }
  [[nodiscard]] bool empty() const { return frames_.empty(); }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Push a frame; returns false (frame dropped by caller's choice) when
  /// the FIFO is full — the caller models backpressure/stall.
  [[nodiscard]] bool push(StreamFrame frame);

  /// Pop the oldest frame; FIFO must not be empty.
  StreamFrame pop();

  /// Peek without consuming; FIFO must not be empty.
  [[nodiscard]] const StreamFrame& front() const;

  /// High-water mark observed since construction (sizing diagnostics).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  std::deque<StreamFrame> frames_;
  std::size_t depth_;
  std::size_t high_water_ = 0;
};

}  // namespace vfpga::fpga
