// Hardware performance counters.
//
// The paper instruments both FPGA designs with free-running cycle
// counters that timestamp events (notification received, DMA issued,
// DMA complete, interrupt sent); intervals between captured timestamps
// are read out by the host and have the clock's resolution (8 ns at
// 125 MHz). The model reproduces the quantization: a captured timestamp
// is the value of a cycle counter, i.e. sim-time truncated to whole
// cycles, so measured intervals carry the same ±1-cycle error a real
// counter pair does.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vfpga/fpga/clock.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::fpga {

class PerfCounterBank {
 public:
  explicit PerfCounterBank(ClockDomain clock = kUserClock) : clock_(clock) {}

  /// Capture event `name` at simulation time `at` (quantized to cycles).
  void capture(const std::string& name, sim::SimTime at);

  /// Cycle count captured for `name` (latest capture wins).
  [[nodiscard]] std::optional<u64> cycles(const std::string& name) const;

  /// Interval between two captured events, in simulated time, quantized
  /// to the counter resolution. `from` must have been captured no later
  /// than `to`.
  [[nodiscard]] sim::Duration interval(const std::string& from,
                                       const std::string& to) const;

  /// All captures in capture order (diagnostics / tracing).
  struct Capture {
    std::string name;
    u64 cycle;
  };
  [[nodiscard]] const std::vector<Capture>& history() const {
    return history_;
  }

  void reset();

  [[nodiscard]] ClockDomain clock() const { return clock_; }

  /// Snapshot/restore (latest-capture map written in sorted name order
  /// so identical banks serialize to identical bytes).
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  ClockDomain clock_;
  std::unordered_map<std::string, u64> latest_;
  std::vector<Capture> history_;
};

}  // namespace vfpga::fpga
