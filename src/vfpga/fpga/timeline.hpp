// Render a performance-counter capture history as a human-readable
// timeline — the debugging view a hardware engineer gets from an ILA
// (integrated logic analyzer) trigger dump, reconstructed from the
// counter bank the paper's designs embed.
#pragma once

#include <string>

#include "vfpga/fpga/perf_counter.hpp"

namespace vfpga::fpga {

/// Render the most recent `max_events` captures (all when 0) as one row
/// per event: cycle count, time since the window's first event, delta to
/// the previous event, and the event name.
[[nodiscard]] std::string render_timeline(const PerfCounterBank& counters,
                                          std::size_t max_events = 0);

}  // namespace vfpga::fpga
