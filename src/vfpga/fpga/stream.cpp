#include "vfpga/fpga/stream.hpp"

#include <algorithm>
#include <utility>

#include "vfpga/common/contract.hpp"

namespace vfpga::fpga {

bool StreamFifo::push(StreamFrame frame) {
  if (full()) {
    return false;
  }
  frames_.push_back(std::move(frame));
  high_water_ = std::max(high_water_, frames_.size());
  return true;
}

StreamFrame StreamFifo::pop() {
  VFPGA_EXPECTS(!frames_.empty());
  StreamFrame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

const StreamFrame& StreamFifo::front() const {
  VFPGA_EXPECTS(!frames_.empty());
  return frames_.front();
}

}  // namespace vfpga::fpga
