// Sampling distributions used by the latency/noise models.
//
// Implemented directly (not via <random> distributions) so that sampled
// sequences are bit-identical across standard libraries — std::
// distributions are allowed to differ between implementations, which
// would make "same seed, same results" false on another toolchain.
#pragma once

#include "vfpga/sim/rng.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::sim {

/// Standard normal via Box–Muller (the non-caching variant: one sample
/// per call keeps the generator state a pure function of call count).
double sample_standard_normal(Xoshiro256& rng);

/// Lognormal with parameters given as the *median* (exp(mu)) and sigma —
/// medians are how latency segments are naturally calibrated.
double sample_lognormal(Xoshiro256& rng, double median, double sigma);

/// Exponential with the given mean.
double sample_exponential(Xoshiro256& rng, double mean);

/// Pareto (Lomax) with scale and shape; heavy tail for rare OS stalls.
double sample_pareto(Xoshiro256& rng, double scale, double shape);

/// Bernoulli trial.
bool sample_bernoulli(Xoshiro256& rng, double p);

/// Poisson via inversion for small means, normal approximation above.
u64 sample_poisson(Xoshiro256& rng, double mean);

/// A latency segment: median duration with multiplicative lognormal
/// jitter, clamped to [floor, ceiling]. This is the basic unit of the
/// software cost model: e.g. "UDP TX stack traversal: median 2.6 us,
/// sigma 0.2".
struct JitteredSegment {
  Duration median{};
  double sigma = 0.0;       ///< lognormal sigma; 0 disables jitter
  Duration floor{};         ///< hard lower bound (code path minimum)
  Duration ceiling{};       ///< hard upper bound; 0 = unbounded

  [[nodiscard]] Duration sample(Xoshiro256& rng) const;
};

/// Discrete mixture of jittered segments with weights; models multi-modal
/// costs such as scheduler wake-ups (fast path / C1 exit / deep C-state).
struct MixtureSegment {
  struct Component {
    double weight = 0.0;
    JitteredSegment segment;
  };
  std::vector<Component> components;

  [[nodiscard]] Duration sample(Xoshiro256& rng) const;
};

}  // namespace vfpga::sim
