// Discrete-event scheduler.
//
// The round-trip experiments are transaction-level-modelled (each
// hardware call takes a start time and returns a completion time), but
// genuinely concurrent activity — the driver-bypass DMA port with
// multiple outstanding transfers, or both XDMA channels active at once —
// is sequenced through this scheduler. Events at equal timestamps fire
// in FIFO order (a monotone sequence number breaks ties), so simulation
// is deterministic.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "vfpga/sim/time.hpp"

namespace vfpga::sim {

class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Schedule `action` at absolute time `when` (must not be in the past).
  void schedule_at(SimTime when, Action action);

  /// Schedule `action` `delay` after the current time.
  void schedule_after(Duration delay, Action action);

  /// Run events until the queue is empty. Returns the number of events
  /// executed.
  std::size_t run_until_idle();

  /// Run events with timestamp <= `deadline`; time advances to `deadline`
  /// even if the queue drains early. Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Run events until `stop()` is called from inside an action or the
  /// queue drains. Returns events executed.
  std::size_t run_until_stopped();

  /// Request that the innermost run_until_stopped() loop exits after the
  /// current action returns.
  void stop() { stop_requested_ = true; }

 private:
  struct Entry {
    SimTime when;
    u64 seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_{};
  u64 next_seq_ = 0;
  bool stop_requested_ = false;
};

}  // namespace vfpga::sim
