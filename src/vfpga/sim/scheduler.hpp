// Discrete-event scheduler.
//
// The round-trip experiments are transaction-level-modelled (each
// hardware call takes a start time and returns a completion time), but
// genuinely concurrent activity — the driver-bypass DMA port with
// multiple outstanding transfers, or both XDMA channels active at once —
// is sequenced through this scheduler. Events at equal timestamps fire
// in FIFO order (a monotone sequence number breaks ties), so simulation
// is deterministic.
//
// Internals are built for throughput, not just correctness: events are
// intrusive arena-pooled nodes (sim/event.hpp) ordered by a flat binary
// heap of node pointers, and the callable is a SmallFn whose captures
// live inline. In steady state — the event lanes re-scheduling the same
// flow events millions of times — schedule_at/run perform zero heap
// allocations per event; tests pin this via arena().node_allocations()
// and SmallFn::heap_allocations().
#pragma once

#include <vector>

#include "vfpga/sim/event.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::sim {

class Scheduler {
 public:
  using Action = SmallFn;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Timestamp of the earliest pending event; undefined when idle().
  [[nodiscard]] SimTime next_due() const { return heap_.front()->when; }

  /// Schedule `action` at absolute time `when` (must not be in the past).
  void schedule_at(SimTime when, Action action);

  /// Schedule `action` `delay` after the current time.
  void schedule_after(Duration delay, Action action);

  /// Run events until the queue is empty. Returns the number of events
  /// executed.
  std::size_t run_until_idle();

  /// Run events with timestamp <= `deadline`; time advances to `deadline`
  /// even if the queue drains early. Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Run events until `stop()` is called from inside an action or the
  /// queue drains. Returns events executed.
  std::size_t run_until_stopped();

  /// Request that the innermost run_until_stopped() loop exits after the
  /// current action returns.
  void stop() { stop_requested_ = true; }

  /// Lifetime total of events executed.
  [[nodiscard]] u64 executed() const { return executed_; }

  // ---- speculation (optimistic lane sync) ---------------------------
  //
  // A speculating scheduler executes normally but can be rewound to the
  // begin_speculation() mark. Callables are move-only and opaque, so the
  // checkpoint is structural, not a byte copy: fired nodes are retained
  // (callable, `when` and `seq` intact) instead of recycled, and
  // rollback re-inserts the pre-mark ones into the heap — replay pops
  // them in the exact original (when, seq) order, so a rolled-back
  // region re-executes bit-identically. The contract this buys is that
  // every action scheduled while speculation may be active must be
  // RE-INVOCABLE: invoking it must not consume captured state that the
  // lane checkpoint hooks do not restore.

  /// Mark the rewind point. No nested speculation.
  void begin_speculation();
  /// Accept everything executed since the mark: recycle the retained
  /// fired nodes. The scheduler state is already the executed state.
  void commit_speculation();
  /// Rewind to the mark: discard events scheduled since it, re-insert
  /// the fired pre-mark events, restore now()/executed() and the
  /// sequence counter so replay reproduces identical (when, seq) pairs.
  void rollback_speculation();
  [[nodiscard]] bool speculating() const { return speculating_; }

  /// The node pool — exposes allocation counters for the zero-alloc
  /// steady-state regression test.
  [[nodiscard]] const EventArena& arena() const { return arena_; }

 private:
  /// Pop the earliest (when, seq) event off the flat heap.
  Event* pop_next();
  /// Run one event: move the callable out, recycle the node, invoke —
  /// or, while speculating, invoke in place and retain the node.
  void fire(Event* event);

  std::vector<Event*> heap_;
  EventArena arena_;
  SimTime now_{};
  u64 next_seq_ = 0;
  u64 executed_ = 0;
  bool stop_requested_ = false;

  // Speculation mark + the retained-node log (empty when not
  // speculating).
  bool speculating_ = false;
  std::vector<Event*> fired_log_;
  SimTime mark_now_{};
  u64 mark_seq_ = 0;
  u64 mark_executed_ = 0;
};

}  // namespace vfpga::sim
