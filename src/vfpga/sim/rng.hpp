// Deterministic random number generation for the simulator.
//
// xoshiro256++ (Blackman & Vigna): fast, high-quality, and — unlike
// std::mt19937 — guaranteed to produce identical streams on every
// platform and standard library, which we need for reproducible
// experiment output. SplitMix64 seeds it and derives independent child
// streams so each (driver, payload) experiment cell gets its own RNG and
// parallel sweeps stay deterministic regardless of thread scheduling.
#pragma once

#include <array>

#include "vfpga/common/types.hpp"

namespace vfpga::sim {

/// SplitMix64: seed expander / stream splitter.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = u64;

  /// Seed via SplitMix64 per the reference implementation's guidance.
  explicit Xoshiro256(u64 seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  u64 uniform_below(u64 bound) noexcept;

  /// Derive an independent child stream (for per-experiment RNGs).
  [[nodiscard]] Xoshiro256 split() noexcept;

  /// Raw engine state, for snapshot/restore — a restored engine must
  /// continue the exact stream the source would have produced.
  [[nodiscard]] const std::array<u64, 4>& state() const noexcept {
    return s_;
  }
  void set_state(const std::array<u64, 4>& s) noexcept { s_ = s; }

 private:
  std::array<u64, 4> s_{};
};

}  // namespace vfpga::sim
