// Host-side noise model.
//
// The paper attributes latency variance to "noise introduced by
// background processes executing on the host machine" and to the software
// stack generally (§III-B.3, §V). We model three mechanisms:
//
//  1. Per-segment jitter — cache/TLB/branch variation within a kernel
//     code path; already folded into each JitteredSegment (lognormal).
//  2. Preemption/IRQ interference — a Poisson process that runs only
//     while the simulated CPU executes software. Each event adds a delay
//     drawn from a two-class mixture: common, short interference
//     (device IRQs, timer ticks, kworker wakeups — exponential, ~µs) and
//     rare, long stalls (SMIs, RCU, page allocation stalls —
//     Pareto-tailed, tens of µs).
//  3. Wake-up cost — when a blocked task is woken by an interrupt, the
//     CPU may be in an idle C-state; exit latency is multi-modal. This
//     lives in the cost model (MixtureSegment), not here, but uses the
//     same RNG stream.
//
// Mechanism 2 is the one that makes noise *proportional to software
// residency*: a driver stack that spends 2x longer in kernel code is
// exposed to ~2x the interference events. This is how the experiment
// reproduces "XDMA shows higher variance" structurally rather than by
// assertion, and why the p99.9 tails converge (a rare long stall hits
// either stack about equally hard).
#pragma once

#include "vfpga/sim/distributions.hpp"
#include "vfpga/sim/rng.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::sim {

struct NoiseConfig {
  /// Common interference events per microsecond of software execution.
  double common_rate_per_us = 0.012;
  /// Mean of the (exponential) common interference delay, ns.
  double common_mean_ns = 6'500.0;

  /// Rare stall events per microsecond of *wall-clock* time (they hit
  /// sleeping tasks too: an expired timer wheel, RCU, SMI — so both
  /// driver stacks see roughly equal exposure per round trip, which is
  /// why the paper's p99.9 gap closes while p95/p99 do not).
  double rare_rate_per_us = 0.00004;
  /// Rare stalls: offset + Pareto(scale, shape), ns.
  double rare_offset_ns = 27'000.0;
  double rare_pareto_scale_ns = 12'000.0;
  double rare_pareto_shape = 2.2;
  /// Hard cap on a single rare stall (watchdog-ish), ns.
  double rare_cap_ns = 220'000.0;

  /// Set false to produce a noise-free (calibration) run.
  bool enabled = true;
};

/// Samples interference delay accumulated while `software_time` elapses
/// on the host CPU. Stateless apart from the RNG passed in.
class NoiseModel {
 public:
  NoiseModel() = default;
  explicit NoiseModel(NoiseConfig config) : config_(config) {}

  [[nodiscard]] const NoiseConfig& config() const { return config_; }

  /// Common interference accrued over a software segment (preemptions,
  /// IRQs — proportional to execution time).
  [[nodiscard]] Duration interference(Xoshiro256& rng,
                                      Duration software_time) const;

  /// Rare long stalls accrued over any wall-clock interval, including
  /// blocked waits (see rare_rate_per_us).
  [[nodiscard]] Duration rare_stall(Xoshiro256& rng, Duration elapsed) const;

 private:
  NoiseConfig config_{};
};

}  // namespace vfpga::sim
