// Sharded parallel event lanes: conservative time-window sync with an
// optimistic (Time-Warp-lite) speculation mode on top.
//
// A LaneSet partitions a simulation into K independent EventLanes (one
// per queue pair in the scale harness), each owning a private Scheduler.
// Simulated time advances in ROUNDS: every lane executes its own events
// up to the round target with NO shared state, all lanes barrier, the
// round commits (cross-lane messages are routed) or rolls back, and the
// set advances to the round containing the earliest pending work.
//
// A conservative round is one window wide — classic conservative
// parallel discrete-event simulation, where the window length is the
// lookahead: a message sent in window W can only take effect in window
// W+1 or later, so no lane can ever observe an effect from a peer whose
// clock it has already passed.
//
// An OPTIMISTIC round speculates `depth` extra windows past the
// conservative horizon: each lane first takes a lane-local checkpoint
// (scheduler rewind mark + its registered LaneCheckpointHook serialized
// through migrate::StateWriter), then executes the round's windows in
// grid order, delivering ring messages non-destructively (peek, consume
// only on commit) and staging its own sends tagged with a lane-LOCAL
// horizon. At the barrier the commit rule is
//
//   C' = min(target, earliest staged due)
//
// — if every staged send lands at or past the target, the whole round
// commits; otherwise SOME lane ran past a message it should have seen
// (a straggler), so ALL lanes rewind to the checkpoint, every staged
// send is discarded, and the round re-executes to the largest window
// boundary not past the earliest straggler. The replay is deterministic
// (same checkpoint, same ring contents), so it regenerates the same
// sends — all of which are now at or past the reduced target — and is
// therefore GUARANTEED to commit: at most one rollback per round, and
// every round commits at least one window (livelock-free).
//
// With a fixed window the committed execution is event-for-event
// identical to the conservative path — message handlers run at the very
// same simulated times — so results are bit-identical at ANY worker
// thread count AND any speculation depth; `VFPGA_THREADS=1` with
// conservative sync is the oracle for everything (the determinism gates
// in bench/sim_speed and CI enforce exactly this).
//
// Cross-lane sends travel through the PR-7 visibility-gated MessageRing:
// one SPSC ring per (source, destination) lane pair, posted_at carrying
// the message's due time. Staging is lane-local during the parallel
// phase; the actual ring pushes happen in the single-threaded barrier
// phase in canonical (source id, FIFO) order, and receivers drain rings
// in source-id order at each window boundary. Every ordering decision
// is a pure function of simulation state.
#pragma once

#include <memory>
#include <vector>

#include "vfpga/migrate/state_io.hpp"
#include "vfpga/reactor/message_ring.hpp"
#include "vfpga/sim/scheduler.hpp"

namespace vfpga::sim {

/// How a LaneSet synchronizes lanes past the conservative horizon.
enum class SyncMode : u8 {
  kConservative,  ///< one window per round, never rolls back
  kOptimistic,    ///< always speculate the configured depth
  kAuto,          ///< §15 controller picks the depth per round
};

/// Per-lane workload state save/restore, the checkpoint half that the
/// scheduler's structural rewind cannot cover: any state an event
/// mutates outside the scheduler (RNG streams, flow tables, testbeds,
/// counters) must round-trip through this hook or rollback would replay
/// against stale state. Serialization uses the PR-6 StateWriter/
/// StateReader machinery; restore() must leave the owner exactly as
/// save() observed it.
class LaneCheckpointHook {
 public:
  virtual ~LaneCheckpointHook() = default;
  virtual void save(migrate::StateWriter& w) = 0;
  virtual void restore(migrate::StateReader& r) = 0;
};

struct LaneSetConfig {
  u32 lanes = 1;
  /// Window length == conservative lookahead: the minimum cross-lane
  /// latency. Larger windows barrier less often but delay messages more.
  /// With the adaptive controller enabled this is only the STARTING
  /// width; the controller retunes it between rounds.
  Duration window = microseconds(100);
  /// Capacity of each (source, destination) message ring.
  u32 ring_capacity = 4096;

  /// Optimistic execution past the conservative horizon. Speculative
  /// rounds require a LaneCheckpointHook on EVERY lane (enforced at
  /// run()); depth 0 degenerates to the conservative path through the
  /// same code, with no checkpoints and no rollbacks.
  struct Speculation {
    SyncMode mode = SyncMode::kConservative;
    /// Extra windows past the conservative horizon a round may run.
    u32 depth = 3;
  } speculation;

  /// Self-tuning window controller. The fixed window trades barrier
  /// frequency against cross-lane latency once, at configuration time;
  /// the controller re-makes that trade every round from two observed
  /// simulated-time quantities — cross-lane messages routed per round
  /// and the fraction of lanes that executed any event — so chatty
  /// phases keep messages prompt while idle-heavy phases stop paying a
  /// barrier per window. It runs entirely in the single-threaded
  /// barrier phase on integer fixed-point EWMAs, so the retuned
  /// schedule is exactly as thread-count-independent as the fixed one.
  struct AdaptiveWindow {
    bool enabled = false;
    /// Clamp bounds for the retuned window. min_window is also the
    /// cross-lane latency floor the controller may never trade away.
    Duration min_window = microseconds(25);
    Duration max_window = milliseconds(5);
    /// EWMA messages/round at or above this: halve the window (the
    /// lanes are talking — tighten the lookahead immediately).
    u32 high_messages = 8;
    /// EWMA messages/round at or below this counts as a quiet round.
    u32 low_messages = 1;
    /// Consecutive quiet rounds before the window doubles. Hysteresis:
    /// growth is patient, shrink is immediate.
    u32 grow_patience = 4;
  } adaptive;
};

class LaneSet;

/// One shard: a private Scheduler plus its cross-lane mailboxes. All
/// mutable state is owned by exactly one worker during a round.
class EventLane {
 public:
  EventLane(const EventLane&) = delete;
  EventLane& operator=(const EventLane&) = delete;

  [[nodiscard]] u32 id() const { return id_; }
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] SimTime now() const { return sched_.now(); }
  /// Cross-lane messages delivered to this lane so far.
  [[nodiscard]] u64 received_messages() const { return received_; }

 private:
  friend class LaneSet;

  EventLane(u32 id, u32 sources, u32 ring_capacity)
      : id_(id), peeked_(sources, 0) {
    inbox_.reserve(sources);
    for (u32 s = 0; s < sources; ++s) {
      inbox_.emplace_back(ring_capacity);
    }
  }

  struct Outgoing {
    u32 dst = 0;
    SimTime due{};
    SmallFn fn;
  };

  u32 id_ = 0;
  Scheduler sched_;
  /// inbox_[src]: SPSC ring carrying messages from lane `src`.
  std::vector<reactor::MessageRing> inbox_;
  /// Sends staged during this round, routed at the commit barrier (or
  /// discarded wholesale on rollback).
  std::vector<Outgoing> outbox_;
  /// peeked_[src]: ring entries delivered this round but not yet
  /// consumed — the re-deliverable prefix a rollback rewinds over.
  std::vector<u32> peeked_;
  u64 received_ = 0;
  /// End of the window this lane is currently executing — the earliest
  /// legal `due` for a send from this lane (lane-LOCAL: during a
  /// speculative round, lanes in later windows have later horizons).
  SimTime local_horizon_{};

  // ---- round-scratch, folded into stats at commit / reset on rollback
  u64 round_busy_windows_ = 0;
  u64 round_idle_windows_ = 0;

  // ---- checkpoint (speculative rounds only) -------------------------
  LaneCheckpointHook* hook_ = nullptr;
  Bytes ckpt_;
  u64 ckpt_received_ = 0;
};

class LaneSet {
 public:
  explicit LaneSet(LaneSetConfig config);

  [[nodiscard]] u32 size() const { return static_cast<u32>(lanes_.size()); }
  [[nodiscard]] EventLane& lane(u32 i) { return *lanes_.at(i); }
  /// Current window width — the configured value, or whatever the
  /// adaptive controller last retuned it to.
  [[nodiscard]] Duration window() const { return window_; }

  /// The CONSERVATIVE horizon: end of the current round's first window.
  /// In a conservative round this is the round target; in a speculative
  /// round lanes run past it, so a sender inside such a round must use
  /// post_horizon(src) — its lane-local window end — as the earliest
  /// legal due instead. Stable for the whole parallel phase.
  [[nodiscard]] SimTime horizon() const { return first_horizon_; }

  /// Earliest legal `due` for a send from lane `src` right now: the end
  /// of the window `src` is currently executing. Equal to horizon() in
  /// conservative rounds; later for lanes deep in a speculative round.
  /// Only the worker stepping `src` may call this mid-round.
  [[nodiscard]] SimTime post_horizon(u32 src) const {
    return lanes_.at(src)->local_horizon_;
  }

  /// Send `fn` to run on lane `dst` at simulated time `due`. Must be
  /// called from code executing on lane `src` (an event or a delivered
  /// message) with `due >= post_horizon(src)`: the message cannot take
  /// effect in the window its sender is still executing. A due inside
  /// another lane's speculated region is legal — it becomes a straggler
  /// and rolls that speculation back. Delivery respects per-(src,dst)
  /// FIFO order; a message is executed at max(due, visibility of
  /// everything queued ahead of it), exactly the MessageRing contract.
  void post(u32 src, u32 dst, SimTime due, SmallFn fn);

  /// Register lane `id`'s workload checkpoint hook (required on every
  /// lane before run() may speculate). The hook must outlive the set.
  void set_checkpoint_hook(u32 id, LaneCheckpointHook* hook);

  /// Per-lane time residency over the committed schedule.
  struct LaneResidency {
    u64 busy_windows = 0;  ///< committed windows with >= 1 event fired
    u64 idle_windows = 0;  ///< committed windows with no events
    /// Rounds this lane spent entirely idle while at least one peer
    /// executed events — windows it only attended for the barrier.
    u64 barrier_waits = 0;
  };

  struct RunStats {
    u64 windows = 0;   ///< committed window phases
    u64 barriers = 0;  ///< barrier (round) phases executed
    u64 events = 0;    ///< lane scheduler events fired (net of rollbacks)
    u64 messages = 0;  ///< cross-lane messages routed into rings
    u64 dropped = 0;   ///< sends lost to a full ring (0 in a sane setup)
    /// Adaptive controller decisions (0 with the fixed window).
    u64 window_growths = 0;
    u64 window_shrinks = 0;
    /// Optimistic sync (0 under conservative / depth 0).
    u64 speculative_rounds = 0;  ///< rounds that ran past the horizon
    u64 speculated_windows = 0;  ///< extra windows committed past it
    u64 rollbacks = 0;           ///< straggler-triggered round rewinds
    u64 checkpoint_bytes = 0;    ///< hook bytes serialized across the run
    std::vector<LaneResidency> residency;  ///< one entry per lane
  };

  /// Run to global quiescence (all schedulers idle, all rings and
  /// outboxes empty) on up to `threads` workers; `threads` is clamped
  /// to the lane count and <= 1 selects the sequential reference
  /// executor. The result — every lane's event order, clocks, message
  /// deliveries — is bit-identical for every value of `threads`.
  RunStats run(unsigned threads);

 private:
  /// Parallel phase: restore (after a rollback) or checkpoint (entering
  /// a speculative round), then execute the lane's windows up to the
  /// round target. Touches only lane state.
  void step_lane(EventLane& lane);
  /// Deliver every inbound message visible before window end `h` by
  /// peeking it in place and scheduling a trampoline at max(due, now).
  void deliver_visible(EventLane& lane, SimTime h);
  void checkpoint_lane(EventLane& lane);
  void restore_lane(EventLane& lane);
  /// Barrier phase (single-threaded): apply the commit rule — route
  /// every staged send in canonical order and open the next round, or
  /// rewind the round to the earliest straggler.
  void finish_round();
  /// Barrier phase: open the round containing the earliest pending
  /// work; returns false (and latches done_) at global quiescence.
  bool begin_round();
  /// Barrier phase: fold the finished round's message count and
  /// busy-lane fraction into the EWMAs; resize window_ under hysteresis
  /// when the adaptive controller is on. Pure integer arithmetic over
  /// simulated-time observations — deterministic at any thread count.
  void retune_window();
  /// Next round's speculation depth (0 = conservative round).
  [[nodiscard]] u32 choose_depth();

  LaneSetConfig config_;
  std::vector<std::unique_ptr<EventLane>> lanes_;
  /// Committed simulated time: every lane's state is final up to here.
  SimTime committed_{};
  /// End of the current round's first window (== the conservative
  /// horizon) and of its last (the speculation target).
  SimTime first_horizon_{};
  SimTime target_{};
  bool speculative_round_ = false;  ///< this round runs past the horizon
  bool restore_pending_ = false;    ///< workers must rewind before executing
  bool round_speculated_ = false;   ///< round attempted speculation (stats)
  bool done_ = false;
  RunStats stats_;
  /// Current window width (== config_.window when not adaptive).
  Duration window_{};
  // Controller state, x256 fixed point (reset by run()).
  i64 message_ewma_x256_ = 0;
  i64 busy_ewma_x256_ = 0;
  u64 messages_at_retune_ = 0;
  u32 quiet_streak_ = 0;
  u32 auto_depth_ = 0;  ///< kAuto's current depth choice
};

}  // namespace vfpga::sim
