// Sharded parallel event lanes under conservative time-window sync.
//
// A LaneSet partitions a simulation into K independent EventLanes (one
// per queue pair in the scale harness), each owning a private Scheduler.
// Simulated time advances in fixed windows: every lane executes its own
// events up to the window horizon with NO shared state, all lanes
// barrier, cross-lane messages are routed, and the set advances to the
// window containing the earliest pending work. This is classic
// conservative parallel discrete-event simulation: the window length is
// the lookahead, so a message sent in window W can only take effect in
// window W+1 or later — no lane can ever observe an effect from a peer
// whose clock it has already passed.
//
// Cross-lane sends travel through the PR-7 visibility-gated MessageRing:
// one SPSC ring per (source, destination) lane pair, posted_at carrying
// the message's due time. Staging is lane-local during the parallel
// phase; the actual ring pushes happen in the single-threaded barrier
// phase in canonical (source id, FIFO) order, and receivers drain rings
// in source-id order at their next window start. Every ordering decision
// is therefore a pure function of simulation state — results are
// bit-identical at ANY worker-thread count, so `VFPGA_THREADS=1` is the
// oracle for the parallel build (the determinism gate in bench/sim_speed
// and CI enforces exactly this).
#pragma once

#include <memory>
#include <vector>

#include "vfpga/reactor/message_ring.hpp"
#include "vfpga/sim/scheduler.hpp"

namespace vfpga::sim {

struct LaneSetConfig {
  u32 lanes = 1;
  /// Window length == conservative lookahead: the minimum cross-lane
  /// latency. Larger windows barrier less often but delay messages more.
  /// With the adaptive controller enabled this is only the STARTING
  /// width; the controller retunes it between windows.
  Duration window = microseconds(100);
  /// Capacity of each (source, destination) message ring.
  u32 ring_capacity = 4096;

  /// Self-tuning window controller. The fixed window trades barrier
  /// frequency against cross-lane latency once, at configuration time;
  /// the controller re-makes that trade every window from two observed
  /// simulated-time quantities — cross-lane messages routed per window
  /// and the fraction of lanes that executed any event — so chatty
  /// phases keep messages prompt while idle-heavy phases stop paying a
  /// barrier per window. It runs entirely in the single-threaded
  /// barrier phase on integer fixed-point EWMAs, so the retuned
  /// schedule is exactly as thread-count-independent as the fixed one.
  struct AdaptiveWindow {
    bool enabled = false;
    /// Clamp bounds for the retuned window. min_window is also the
    /// cross-lane latency floor the controller may never trade away.
    Duration min_window = microseconds(25);
    Duration max_window = milliseconds(5);
    /// EWMA messages/window at or above this: halve the window (the
    /// lanes are talking — tighten the lookahead immediately).
    u32 high_messages = 8;
    /// EWMA messages/window at or below this counts as a quiet window.
    u32 low_messages = 1;
    /// Consecutive quiet windows before the window doubles. Hysteresis:
    /// growth is patient, shrink is immediate.
    u32 grow_patience = 4;
  } adaptive;
};

class LaneSet;

/// One shard: a private Scheduler plus its cross-lane mailboxes. All
/// mutable state is owned by exactly one worker during a window.
class EventLane {
 public:
  EventLane(const EventLane&) = delete;
  EventLane& operator=(const EventLane&) = delete;

  [[nodiscard]] u32 id() const { return id_; }
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] SimTime now() const { return sched_.now(); }
  /// Cross-lane messages delivered to this lane so far.
  [[nodiscard]] u64 received_messages() const { return received_; }

 private:
  friend class LaneSet;

  EventLane(u32 id, u32 sources, u32 ring_capacity) : id_(id) {
    inbox_.reserve(sources);
    for (u32 s = 0; s < sources; ++s) {
      inbox_.emplace_back(ring_capacity);
    }
  }

  struct Outgoing {
    u32 dst = 0;
    SimTime due{};
    SmallFn fn;
  };

  u32 id_ = 0;
  Scheduler sched_;
  /// inbox_[src]: SPSC ring carrying messages from lane `src`.
  std::vector<reactor::MessageRing> inbox_;
  /// Sends staged during this window, routed at the barrier.
  std::vector<Outgoing> outbox_;
  u64 received_ = 0;
  /// Events executed during the current window — written by the worker
  /// stepping this lane, read (and reset) by the adaptive controller in
  /// the barrier phase; the barrier orders the two.
  u64 window_events_ = 0;
};

class LaneSet {
 public:
  explicit LaneSet(LaneSetConfig config);

  [[nodiscard]] u32 size() const { return static_cast<u32>(lanes_.size()); }
  [[nodiscard]] EventLane& lane(u32 i) { return *lanes_.at(i); }
  /// Current window width — the configured value, or whatever the
  /// adaptive controller last retuned it to.
  [[nodiscard]] Duration window() const { return window_; }

  /// End of the window currently executing (or about to execute) — the
  /// earliest legal `due` for a cross-lane post. Stable for the whole
  /// parallel phase.
  [[nodiscard]] SimTime horizon() const { return horizon_; }

  /// Send `fn` to run on lane `dst` at simulated time `due`. Must be
  /// called from code executing on lane `src` (an event or a drained
  /// message). The conservative-window invariant requires
  /// `due >= horizon()`: the message cannot take effect in the window
  /// that is still running. Delivery respects per-(src,dst) FIFO order;
  /// a message is executed at max(due, visibility of everything queued
  /// ahead of it), exactly the MessageRing contract.
  void post(u32 src, u32 dst, SimTime due, SmallFn fn);

  struct RunStats {
    u64 windows = 0;   ///< barrier phases executed
    u64 events = 0;    ///< lane scheduler events fired
    u64 messages = 0;  ///< cross-lane messages routed into rings
    u64 dropped = 0;   ///< sends lost to a full ring (0 in a sane setup)
    /// Adaptive controller decisions (0 with the fixed window).
    u64 window_growths = 0;
    u64 window_shrinks = 0;
  };

  /// Run to global quiescence (all schedulers idle, all rings and
  /// outboxes empty) on up to `threads` workers; `threads` is clamped
  /// to the lane count and <= 1 selects the sequential reference
  /// executor. The result — every lane's event order, clocks, message
  /// deliveries — is bit-identical for every value of `threads`.
  RunStats run(unsigned threads);

 private:
  /// Parallel phase: deliver visible inbound messages, then execute the
  /// lane's events up to `horizon` (exclusive). Touches only lane state.
  void step_lane(EventLane& lane, SimTime horizon);
  /// Barrier phase (single-threaded): push every staged send into its
  /// destination ring in canonical order.
  void route_outboxes();
  /// Barrier phase: advance horizon_ to the window containing the
  /// earliest pending work; returns false at global quiescence.
  bool advance_horizon();
  /// Barrier phase, adaptive mode only: fold the finished window's
  /// message count and busy-lane fraction into the EWMAs and resize
  /// window_ under hysteresis. Pure integer arithmetic over
  /// simulated-time observations — deterministic at any thread count.
  void retune_window();

  LaneSetConfig config_;
  std::vector<std::unique_ptr<EventLane>> lanes_;
  SimTime horizon_{};
  bool done_ = false;
  RunStats stats_;
  /// Current window width (== config_.window when not adaptive).
  Duration window_{};
  // Controller state, x256 fixed point (reset by run()).
  i64 message_ewma_x256_ = 0;
  i64 busy_ewma_x256_ = 0;
  u64 messages_at_retune_ = 0;
  u32 quiet_streak_ = 0;
};

}  // namespace vfpga::sim
