#include "vfpga/sim/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {

namespace {

/// Min-heap order over (when, seq): std::push/pop_heap build max-heaps,
/// so "later" is the comparator. (when, seq) pairs are unique, making
/// the heap's pop order — and thus the simulation — fully deterministic.
struct Later {
  bool operator()(const Event* a, const Event* b) const {
    if (a->when != b->when) {
      return a->when > b->when;
    }
    return a->seq > b->seq;
  }
};

}  // namespace

Scheduler::~Scheduler() {
  // Unfired events go back to the arena so its live() accounting closes
  // out; the chunks themselves die with the arena member.
  for (Event* event : heap_) {
    arena_.release(event);
  }
  for (Event* event : fired_log_) {
    arena_.release(event);
  }
}

void Scheduler::schedule_at(SimTime when, Action action) {
  VFPGA_EXPECTS(when >= now_);
  Event* event = arena_.acquire();
  event->when = when;
  event->seq = next_seq_++;
  event->fn = std::move(action);
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Scheduler::schedule_after(Duration delay, Action action) {
  VFPGA_EXPECTS(delay >= Duration{});
  schedule_at(now_ + delay, std::move(action));
}

Event* Scheduler::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event* event = heap_.back();
  heap_.pop_back();
  return event;
}

void Scheduler::fire(Event* event) {
  now_ = event->when;
  if (speculating_) {
    // Invoke in place and retain the node: rollback needs the callable
    // AND its original (when, seq) back, so replay re-fires the exact
    // same heap order. The node is off both the heap and the free list,
    // so actions scheduling new events can never alias it.
    fired_log_.push_back(event);
    event->fn();
    ++executed_;
    return;
  }
  // Move the callable out and recycle the node *before* invoking: the
  // action is free to schedule new events, which may reuse this node.
  SmallFn fn = std::move(event->fn);
  arena_.release(event);
  fn();
  ++executed_;
}

void Scheduler::begin_speculation() {
  VFPGA_EXPECTS(!speculating_);
  speculating_ = true;
  mark_now_ = now_;
  mark_seq_ = next_seq_;
  mark_executed_ = executed_;
}

void Scheduler::commit_speculation() {
  VFPGA_EXPECTS(speculating_);
  for (Event* event : fired_log_) {
    arena_.release(event);
  }
  fired_log_.clear();
  speculating_ = false;
}

void Scheduler::rollback_speculation() {
  VFPGA_EXPECTS(speculating_);
  // Events scheduled during the speculated region (seq >= mark) are
  // undone whether they fired or not; fired pre-mark events go back on
  // the heap with their original (when, seq), so the replayed pop order
  // is byte-identical to the first execution.
  std::erase_if(heap_, [this](Event* event) {
    if (event->seq >= mark_seq_) {
      arena_.release(event);
      return true;
    }
    return false;
  });
  for (Event* event : fired_log_) {
    if (event->seq >= mark_seq_) {
      arena_.release(event);
    } else {
      heap_.push_back(event);
    }
  }
  fired_log_.clear();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  now_ = mark_now_;
  next_seq_ = mark_seq_;
  executed_ = mark_executed_;
  speculating_ = false;
}

std::size_t Scheduler::run_until_idle() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    fire(pop_next());
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  VFPGA_EXPECTS(deadline >= now_);
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front()->when <= deadline) {
    fire(pop_next());
    ++executed;
  }
  now_ = deadline;
  return executed;
}

std::size_t Scheduler::run_until_stopped() {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!heap_.empty() && !stop_requested_) {
    fire(pop_next());
    ++executed;
  }
  return executed;
}

}  // namespace vfpga::sim
