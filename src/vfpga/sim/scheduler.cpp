#include "vfpga/sim/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {

namespace {

/// Min-heap order over (when, seq): std::push/pop_heap build max-heaps,
/// so "later" is the comparator. (when, seq) pairs are unique, making
/// the heap's pop order — and thus the simulation — fully deterministic.
struct Later {
  bool operator()(const Event* a, const Event* b) const {
    if (a->when != b->when) {
      return a->when > b->when;
    }
    return a->seq > b->seq;
  }
};

}  // namespace

Scheduler::~Scheduler() {
  // Unfired events go back to the arena so its live() accounting closes
  // out; the chunks themselves die with the arena member.
  for (Event* event : heap_) {
    arena_.release(event);
  }
}

void Scheduler::schedule_at(SimTime when, Action action) {
  VFPGA_EXPECTS(when >= now_);
  Event* event = arena_.acquire();
  event->when = when;
  event->seq = next_seq_++;
  event->fn = std::move(action);
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Scheduler::schedule_after(Duration delay, Action action) {
  VFPGA_EXPECTS(delay >= Duration{});
  schedule_at(now_ + delay, std::move(action));
}

Event* Scheduler::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event* event = heap_.back();
  heap_.pop_back();
  return event;
}

void Scheduler::fire(Event* event) {
  now_ = event->when;
  // Move the callable out and recycle the node *before* invoking: the
  // action is free to schedule new events, which may reuse this node.
  SmallFn fn = std::move(event->fn);
  arena_.release(event);
  fn();
  ++executed_;
}

std::size_t Scheduler::run_until_idle() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    fire(pop_next());
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  VFPGA_EXPECTS(deadline >= now_);
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front()->when <= deadline) {
    fire(pop_next());
    ++executed;
  }
  now_ = deadline;
  return executed;
}

std::size_t Scheduler::run_until_stopped() {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!heap_.empty() && !stop_requested_) {
    fire(pop_next());
    ++executed;
  }
  return executed;
}

}  // namespace vfpga::sim
