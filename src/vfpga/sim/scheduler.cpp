#include "vfpga/sim/scheduler.hpp"

#include <utility>

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {

void Scheduler::schedule_at(SimTime when, Action action) {
  VFPGA_EXPECTS(when >= now_);
  queue_.push(Entry{when, next_seq_++, std::move(action)});
}

void Scheduler::schedule_after(Duration delay, Action action) {
  VFPGA_EXPECTS(delay >= Duration{});
  schedule_at(now_ + delay, std::move(action));
}

std::size_t Scheduler::run_until_idle() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // priority_queue::top() is const; the action must be moved out before
    // pop, so copy the entry (Action is a small function object here).
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.action();
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  VFPGA_EXPECTS(deadline >= now_);
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.action();
    ++executed;
  }
  now_ = deadline;
  return executed;
}

std::size_t Scheduler::run_until_stopped() {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.action();
    ++executed;
  }
  return executed;
}

}  // namespace vfpga::sim
