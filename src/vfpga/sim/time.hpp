// Simulated time.
//
// All simulation timestamps and durations are integer picoseconds. A
// signed 64-bit picosecond counter covers ~106 days of simulated time,
// far beyond any experiment here, while representing both the 8 ns
// FPGA cycle (8000 ps) and PCIe serialization (1 byte/ns at Gen2 x2
// effective rate) without rounding.
//
// `SimTime` (a point) and `Duration` (a length) are distinct strong types
// so that `point + point` does not compile (P.1: express ideas in code).
#pragma once

#include <compare>
#include <cstdint>

#include "vfpga/common/types.hpp"

namespace vfpga::sim {

/// Length of simulated time, in picoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(i64 picos) : picos_(picos) {}

  [[nodiscard]] constexpr i64 picos() const { return picos_; }
  [[nodiscard]] constexpr double nanos() const {
    return static_cast<double>(picos_) / 1e3;
  }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(picos_) / 1e6;
  }

  constexpr Duration& operator+=(Duration d) {
    picos_ += d.picos_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    picos_ -= d.picos_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.picos_ + b.picos_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.picos_ - b.picos_};
  }
  friend constexpr Duration operator*(Duration a, i64 k) {
    return Duration{a.picos_ * k};
  }
  friend constexpr Duration operator*(i64 k, Duration a) { return a * k; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  i64 picos_ = 0;
};

constexpr Duration picoseconds(i64 n) { return Duration{n}; }
constexpr Duration nanoseconds(i64 n) { return Duration{n * 1'000}; }
constexpr Duration microseconds(i64 n) { return Duration{n * 1'000'000}; }
constexpr Duration milliseconds(i64 n) { return Duration{n * 1'000'000'000}; }

/// Duration from a (possibly fractional) nanosecond count, rounded to ps.
constexpr Duration from_nanos(double ns) {
  return Duration{static_cast<i64>(ns * 1e3 + (ns >= 0 ? 0.5 : -0.5))};
}

/// A point on the simulated timeline.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(i64 picos) : picos_(picos) {}

  [[nodiscard]] constexpr i64 picos() const { return picos_; }
  [[nodiscard]] constexpr double nanos() const {
    return static_cast<double>(picos_) / 1e3;
  }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(picos_) / 1e6;
  }

  constexpr SimTime& operator+=(Duration d) {
    picos_ += d.picos();
    return *this;
  }
  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.picos_ + d.picos()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration{a.picos_ - b.picos_};
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  i64 picos_ = 0;
};

/// Quantize a duration to a clock-tick multiple, rounding up (the way a
/// synchronous FSM consumes whole cycles).
constexpr Duration round_up_to(Duration d, Duration tick) {
  const i64 t = tick.picos();
  const i64 q = (d.picos() + t - 1) / t;
  return Duration{q * t};
}

/// Quantize a duration to a clock-tick multiple, rounding down (the way a
/// free-running hardware counter samples an interval).
constexpr Duration round_down_to(Duration d, Duration tick) {
  const i64 t = tick.picos();
  return Duration{(d.picos() / t) * t};
}

}  // namespace vfpga::sim
