#include "vfpga/sim/event_lane.hpp"

#include <algorithm>
#include <barrier>
#include <optional>
#include <thread>
#include <utility>

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {

LaneSet::LaneSet(LaneSetConfig config) : config_(config) {
  VFPGA_EXPECTS(config_.lanes >= 1);
  VFPGA_EXPECTS(config_.window > Duration{});
  VFPGA_EXPECTS(config_.ring_capacity >= 2);
  if (config_.adaptive.enabled) {
    VFPGA_EXPECTS(config_.adaptive.min_window > Duration{});
    VFPGA_EXPECTS(config_.adaptive.min_window <= config_.window);
    VFPGA_EXPECTS(config_.window <= config_.adaptive.max_window);
    VFPGA_EXPECTS(config_.adaptive.grow_patience >= 1);
    VFPGA_EXPECTS(config_.adaptive.high_messages >
                  config_.adaptive.low_messages);
  }
  window_ = config_.window;
  lanes_.reserve(config_.lanes);
  for (u32 i = 0; i < config_.lanes; ++i) {
    lanes_.push_back(std::unique_ptr<EventLane>(
        new EventLane(i, config_.lanes, config_.ring_capacity)));
  }
}

void LaneSet::post(u32 src, u32 dst, SimTime due, SmallFn fn) {
  VFPGA_EXPECTS(src < lanes_.size() && dst < lanes_.size());
  // Window invariant, lane-local flavour: the send cannot land inside
  // the window its SENDER is still executing. A due inside another
  // lane's speculated region is allowed — the commit rule catches it as
  // a straggler and rolls the round back.
  VFPGA_EXPECTS(due >= lanes_[src]->local_horizon_);
  lanes_[src]->outbox_.push_back(
      EventLane::Outgoing{dst, due, std::move(fn)});
}

void LaneSet::set_checkpoint_hook(u32 id, LaneCheckpointHook* hook) {
  VFPGA_EXPECTS(id < lanes_.size());
  lanes_[id]->hook_ = hook;
}

void LaneSet::checkpoint_lane(EventLane& lane) {
  lane.sched_.begin_speculation();
  lane.ckpt_received_ = lane.received_;
  migrate::StateWriter w;
  lane.hook_->save(w);
  lane.ckpt_ = w.take();
}

void LaneSet::restore_lane(EventLane& lane) {
  lane.sched_.rollback_speculation();
  lane.received_ = lane.ckpt_received_;
  migrate::StateReader r{ConstByteSpan{lane.ckpt_}};
  lane.hook_->restore(r);
  VFPGA_ASSERT(!r.failed());
  // Peeked ring entries were never consumed: zeroing the cursors makes
  // the replay re-deliver the identical prefix.
  std::fill(lane.peeked_.begin(), lane.peeked_.end(), 0u);
  lane.round_busy_windows_ = 0;
  lane.round_idle_windows_ = 0;
}

void LaneSet::deliver_visible(EventLane& lane, SimTime h) {
  // Deliver every inbound message visible before this window end, in
  // source-id order then per-ring FIFO — a canonical order independent
  // of which worker ran the sending lane. Delivery PEEKS the closure in
  // place (consumption is deferred to the commit barrier) and schedules
  // a trampoline at max(due, lane clock): a FIFO head due beyond the
  // window blocks the messages behind it until its own window (the
  // MessageRing visibility contract), which can only delay a message,
  // never reorder a channel. The trampoline always fires inside this
  // round, so the slot pointer never outlives the entry it aliases.
  const SimTime visible_before{h.picos() - 1};
  for (u32 src = 0; src < lane.inbox_.size(); ++src) {
    reactor::MessageRing& ring = lane.inbox_[src];
    u32& delivered = lane.peeked_[src];
    while (delivered < ring.size()) {
      const SimTime due = ring.peeked_at(delivered);
      if (due > visible_before) {
        break;
      }
      reactor::Message* slot = &ring.peek(delivered);
      lane.sched_.schedule_at(std::max(due, lane.sched_.now()),
                              [slot] { (*slot)(); });
      ++delivered;
      ++lane.received_;
    }
  }
}

void LaneSet::step_lane(EventLane& lane) {
  if (restore_pending_) {
    restore_lane(lane);
  } else if (speculative_round_) {
    checkpoint_lane(lane);
  }
  // Execute the round's windows along the grid. Each window delivers
  // then runs — exactly the conservative schedule, repeated `depth`
  // extra times in a speculative round.
  const i64 w = window_.picos();
  for (i64 h = first_horizon_.picos();; h += w) {
    lane.local_horizon_ = SimTime{h};
    const u64 before = lane.sched_.executed();
    deliver_visible(lane, SimTime{h});
    lane.sched_.run_until(SimTime{h - 1});
    if (lane.sched_.executed() != before) {
      ++lane.round_busy_windows_;
    } else {
      ++lane.round_idle_windows_;
    }
    if (h >= target_.picos()) {
      break;
    }
  }
}

void LaneSet::retune_window() {
  const LaneSetConfig::AdaptiveWindow& a = config_.adaptive;
  u32 busy_lanes = 0;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    busy_lanes += lane->round_busy_windows_ > 0 ? 1u : 0u;
  }
  if (lanes_.size() <= 1) {
    return;  // single lane: there is nothing to synchronize with
  }
  const i64 round_messages =
      static_cast<i64>(stats_.messages - messages_at_retune_);
  messages_at_retune_ = stats_.messages;

  // x256 fixed-point EWMAs with alpha = 1/4 — integer arithmetic only,
  // so every thread count computes the identical trajectory. The EWMAs
  // feed both the window resize below and kAuto's depth choice, so
  // they update even when the adaptive window is off.
  message_ewma_x256_ += (round_messages * 256 - message_ewma_x256_) / 4;
  const i64 busy_x256 = static_cast<i64>(busy_lanes) * 256;
  busy_ewma_x256_ += (busy_x256 - busy_ewma_x256_) / 4;

  if (!a.enabled) {
    return;
  }
  if (message_ewma_x256_ >= static_cast<i64>(a.high_messages) * 256) {
    // Chatty: messages are waiting a whole window for delivery. Shrink
    // immediately — latency is paid per message, barriers per round.
    quiet_streak_ = 0;
    const Duration halved{window_.picos() / 2};
    const Duration next = std::max(halved, a.min_window);
    if (next < window_) {
      window_ = next;
      ++stats_.window_shrinks;
    }
    return;
  }
  if (message_ewma_x256_ > static_cast<i64>(a.low_messages) * 256) {
    quiet_streak_ = 0;  // middle band: hold
    return;
  }
  // Quiet round. Mostly-idle lane sets (under half the lanes executed
  // anything) count double toward the patience threshold: an all-idle
  // fleet reaches the max window twice as fast as a busy-but-silent one.
  const i64 half_busy_x256 = static_cast<i64>(lanes_.size()) * 128;
  quiet_streak_ += busy_ewma_x256_ <= half_busy_x256 ? 2u : 1u;
  if (quiet_streak_ < a.grow_patience) {
    return;
  }
  quiet_streak_ = 0;
  const Duration next = std::min(window_ * 2, a.max_window);
  if (next > window_) {
    window_ = next;
    ++stats_.window_growths;
  }
}

u32 LaneSet::choose_depth() {
  if (lanes_.size() <= 1) {
    return 0;  // nothing to speculate against
  }
  switch (config_.speculation.mode) {
    case SyncMode::kConservative:
      return 0;
    case SyncMode::kOptimistic:
      return config_.speculation.depth;
    case SyncMode::kAuto:
      break;
  }
  // §15 controller, extended: the same message EWMA that drives the
  // window width picks the speculation depth. A quiet fleet deepens one
  // window per round (speculation is nearly free — stragglers are
  // rare); a chatty fleet drops straight to conservative (every round
  // would roll back, doubling work for nothing). Rollback feedback
  // halves the depth in finish_round().
  const LaneSetConfig::AdaptiveWindow& a = config_.adaptive;
  if (message_ewma_x256_ >= static_cast<i64>(a.high_messages) * 256) {
    auto_depth_ = 0;
  } else if (message_ewma_x256_ <= static_cast<i64>(a.low_messages) * 256) {
    auto_depth_ = std::min(auto_depth_ + 1, config_.speculation.depth);
  }
  return auto_depth_;
}

bool LaneSet::begin_round() {
  std::optional<SimTime> earliest;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    if (!lane->sched_.idle()) {
      const SimTime due = lane->sched_.next_due();
      if (!earliest.has_value() || due < *earliest) {
        earliest = due;
      }
    }
    for (const reactor::MessageRing& ring : lane->inbox_) {
      const auto visible = ring.next_visible_at();
      if (visible.has_value() &&
          (!earliest.has_value() || *visible < *earliest)) {
        earliest = visible;
      }
    }
  }
  if (!earliest.has_value()) {
    done_ = true;
    return false;
  }
  // Jump to the window containing the earliest pending work — idle
  // stretches cost one barrier, not one barrier per empty window. The
  // pending work is never behind the committed time (executed events
  // are gone, posts and undelivered ring entries are at or past the
  // last commit point), so the new horizon strictly grows even when
  // the adaptive controller just changed the width.
  const i64 w = window_.picos();
  const i64 base = std::max(earliest->picos(), committed_.picos());
  first_horizon_ = SimTime{(base / w + 1) * w};
  const u32 extra = choose_depth();
  target_ = SimTime{first_horizon_.picos() + w * static_cast<i64>(extra)};
  speculative_round_ = extra > 0;
  round_speculated_ = speculative_round_;
  restore_pending_ = false;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    lane->local_horizon_ = first_horizon_;
  }
  ++stats_.barriers;
  return true;
}

void LaneSet::finish_round() {
  // Checkpoints were serialized this round (whether it commits or not):
  // account them once, at the first barrier after the speculation.
  if (speculative_round_) {
    ++stats_.speculative_rounds;
    for (const std::unique_ptr<EventLane>& lane : lanes_) {
      stats_.checkpoint_bytes += lane->ckpt_.size();
    }
  }

  // The commit rule: the earliest staged due across ALL lanes. A due
  // short of the target means some receiver speculated past a message
  // it should have delivered.
  std::optional<SimTime> min_due;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    for (const EventLane::Outgoing& out : lane->outbox_) {
      if (!min_due.has_value() || out.due < *min_due) {
        min_due = out.due;
      }
    }
  }

  if (speculative_round_ && min_due.has_value() && *min_due < target_) {
    // Straggler: rewind the whole round. Every staged send is discarded
    // — the deterministic replay regenerates the survivors — and the
    // target drops to the last window boundary not past the straggler.
    // Replay is then guaranteed to commit: the regenerated sends are a
    // prefix subset of this round's, all of whose dues are >= min_due
    // >= the reduced target.
    ++stats_.rollbacks;
    auto_depth_ /= 2;  // kAuto feedback; harmless otherwise
    for (const std::unique_ptr<EventLane>& lane : lanes_) {
      lane->outbox_.clear();
    }
    const i64 w = window_.picos();
    const i64 floor_end = (min_due->picos() / w) * w;
    target_ = SimTime{std::max(first_horizon_.picos(), floor_end)};
    speculative_round_ = false;
    restore_pending_ = true;
    ++stats_.barriers;
    return;  // same round re-executes from the checkpoint
  }

  // Commit. Retire the speculation machinery first: recycle retained
  // scheduler nodes and pop the delivered ring prefixes.
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    if (lane->sched_.speculating()) {
      lane->sched_.commit_speculation();
    }
    for (u32 src = 0; src < lane->inbox_.size(); ++src) {
      lane->inbox_[src].consume(lane->peeked_[src]);
      lane->peeked_[src] = 0;
    }
  }
  // Route staged sends in canonical (source id, FIFO) order.
  for (const std::unique_ptr<EventLane>& src : lanes_) {
    for (EventLane::Outgoing& out : src->outbox_) {
      reactor::MessageRing& ring = lanes_[out.dst]->inbox_[src->id_];
      if (ring.try_push(std::move(out.fn), out.due)) {
        ++stats_.messages;
      } else {
        ++stats_.dropped;
      }
    }
    src->outbox_.clear();
  }

  // Residency + round accounting over the COMMITTED schedule only
  // (rolled-back windows were wiped by restore_lane).
  const i64 w = window_.picos();
  const u64 committed_windows = static_cast<u64>(
      (target_.picos() - first_horizon_.picos()) / w + 1);
  stats_.windows += committed_windows;
  if (round_speculated_) {
    stats_.speculated_windows += committed_windows - 1;
  }
  bool any_busy = false;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    any_busy = any_busy || lane->round_busy_windows_ > 0;
  }
  for (u32 i = 0; i < lanes_.size(); ++i) {
    EventLane& lane = *lanes_[i];
    LaneResidency& res = stats_.residency[i];
    res.busy_windows += lane.round_busy_windows_;
    res.idle_windows += lane.round_idle_windows_;
    if (lane.round_busy_windows_ == 0 && any_busy) {
      ++res.barrier_waits;
    }
  }
  retune_window();
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    lane->round_busy_windows_ = 0;
    lane->round_idle_windows_ = 0;
  }
  committed_ = target_;
  round_speculated_ = false;
  begin_round();
}

LaneSet::RunStats LaneSet::run(unsigned threads) {
  u64 events_before = 0;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    events_before += lane->sched_.executed();
  }
  stats_ = RunStats{};
  stats_.residency.assign(lanes_.size(), LaneResidency{});
  done_ = false;
  window_ = config_.window;
  message_ewma_x256_ = 0;
  busy_ewma_x256_ = 0;
  messages_at_retune_ = 0;
  quiet_streak_ = 0;
  auto_depth_ = 0;
  if (config_.speculation.mode != SyncMode::kConservative &&
      config_.speculation.depth > 0 && lanes_.size() > 1) {
    // Speculation replays workload state: without a hook on every lane,
    // a rollback would rewind the scheduler but not the state its
    // events mutated. Refuse up front rather than corrupt silently.
    for (const std::unique_ptr<EventLane>& lane : lanes_) {
      VFPGA_EXPECTS(lane->hook_ != nullptr);
    }
  }

  if (!begin_round()) {
    return stats_;
  }

  const unsigned workers = std::min<unsigned>(
      std::max(threads, 1u), static_cast<unsigned>(lanes_.size()));
  if (workers <= 1) {
    while (!done_) {
      for (const std::unique_ptr<EventLane>& lane : lanes_) {
        step_lane(*lane);
      }
      finish_round();
    }
  } else {
    // Persistent workers, two phases per round. The barrier completion
    // callback is the single-threaded phase: every worker is blocked in
    // arrive_and_wait while it applies the commit rule, and its return
    // synchronizes-with every worker's wakeup — done_, the round
    // bounds, and the restore flag need no further synchronization.
    std::barrier sync(static_cast<std::ptrdiff_t>(workers),
                      [this]() noexcept { finish_round(); });
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([this, w, workers, &sync] {
        while (!done_) {
          for (std::size_t i = w; i < lanes_.size(); i += workers) {
            step_lane(*lanes_[i]);
          }
          sync.arrive_and_wait();
        }
      });
    }
  }

  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    stats_.events += lane->sched_.executed();
  }
  stats_.events -= events_before;
  return stats_;
}

}  // namespace vfpga::sim
