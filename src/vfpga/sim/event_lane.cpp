#include "vfpga/sim/event_lane.hpp"

#include <algorithm>
#include <barrier>
#include <optional>
#include <thread>
#include <utility>

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {

LaneSet::LaneSet(LaneSetConfig config) : config_(config) {
  VFPGA_EXPECTS(config_.lanes >= 1);
  VFPGA_EXPECTS(config_.window > Duration{});
  VFPGA_EXPECTS(config_.ring_capacity >= 2);
  if (config_.adaptive.enabled) {
    VFPGA_EXPECTS(config_.adaptive.min_window > Duration{});
    VFPGA_EXPECTS(config_.adaptive.min_window <= config_.window);
    VFPGA_EXPECTS(config_.window <= config_.adaptive.max_window);
    VFPGA_EXPECTS(config_.adaptive.grow_patience >= 1);
    VFPGA_EXPECTS(config_.adaptive.high_messages >
                  config_.adaptive.low_messages);
  }
  window_ = config_.window;
  lanes_.reserve(config_.lanes);
  for (u32 i = 0; i < config_.lanes; ++i) {
    lanes_.push_back(std::unique_ptr<EventLane>(
        new EventLane(i, config_.lanes, config_.ring_capacity)));
  }
}

void LaneSet::post(u32 src, u32 dst, SimTime due, SmallFn fn) {
  VFPGA_EXPECTS(src < lanes_.size() && dst < lanes_.size());
  // Conservative-window invariant: the send cannot land inside the
  // window that is still executing — the destination may already have
  // run past any earlier instant.
  VFPGA_EXPECTS(due >= horizon_);
  lanes_[src]->outbox_.push_back(
      EventLane::Outgoing{dst, due, std::move(fn)});
}

void LaneSet::step_lane(EventLane& lane, SimTime horizon) {
  // Deliver every inbound message visible before this horizon, in
  // source-id order then per-ring FIFO — a canonical order independent
  // of which worker ran the sending lane. Execution time is
  // max(due, lane clock): a FIFO head due beyond the horizon blocks the
  // messages behind it until its own window (the MessageRing visibility
  // contract), which can only delay a message, never reorder a channel.
  const u64 executed_before = lane.sched_.executed();
  const SimTime visible_before{horizon.picos() - 1};
  for (u32 src = 0; src < lane.inbox_.size(); ++src) {
    reactor::MessageRing& ring = lane.inbox_[src];
    while (true) {
      const std::optional<SimTime> due = ring.next_visible_at();
      if (!due.has_value() || *due > visible_before) {
        break;
      }
      auto msg = ring.try_pop(visible_before);
      VFPGA_ASSERT(msg.has_value());
      lane.sched_.schedule_at(std::max(*due, lane.sched_.now()),
                              std::move(*msg));
      ++lane.received_;
    }
  }
  lane.sched_.run_until(SimTime{horizon.picos() - 1});
  lane.window_events_ = lane.sched_.executed() - executed_before;
}

void LaneSet::route_outboxes() {
  for (const std::unique_ptr<EventLane>& src : lanes_) {
    for (EventLane::Outgoing& out : src->outbox_) {
      reactor::MessageRing& ring = lanes_[out.dst]->inbox_[src->id_];
      if (ring.try_push(std::move(out.fn), out.due)) {
        ++stats_.messages;
      } else {
        ++stats_.dropped;
      }
    }
    src->outbox_.clear();
  }
}

void LaneSet::retune_window() {
  const LaneSetConfig::AdaptiveWindow& a = config_.adaptive;
  u32 busy_lanes = 0;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    busy_lanes += lane->window_events_ > 0 ? 1u : 0u;
    lane->window_events_ = 0;
  }
  if (!a.enabled || lanes_.size() <= 1) {
    return;  // single lane: there is nothing to synchronize with
  }
  const i64 window_messages =
      static_cast<i64>(stats_.messages - messages_at_retune_);
  messages_at_retune_ = stats_.messages;

  // x256 fixed-point EWMAs with alpha = 1/4 — integer arithmetic only,
  // so every thread count computes the identical trajectory.
  message_ewma_x256_ += (window_messages * 256 - message_ewma_x256_) / 4;
  const i64 busy_x256 = static_cast<i64>(busy_lanes) * 256;
  busy_ewma_x256_ += (busy_x256 - busy_ewma_x256_) / 4;

  if (message_ewma_x256_ >= static_cast<i64>(a.high_messages) * 256) {
    // Chatty: messages are waiting a whole window for delivery. Shrink
    // immediately — latency is paid per message, barriers per window.
    quiet_streak_ = 0;
    const Duration halved{window_.picos() / 2};
    const Duration next = std::max(halved, a.min_window);
    if (next < window_) {
      window_ = next;
      ++stats_.window_shrinks;
    }
    return;
  }
  if (message_ewma_x256_ > static_cast<i64>(a.low_messages) * 256) {
    quiet_streak_ = 0;  // middle band: hold
    return;
  }
  // Quiet window. Mostly-idle lane sets (under half the lanes executed
  // anything) count double toward the patience threshold: an all-idle
  // fleet reaches the max window twice as fast as a busy-but-silent one.
  const i64 half_busy_x256 = static_cast<i64>(lanes_.size()) * 128;
  quiet_streak_ += busy_ewma_x256_ <= half_busy_x256 ? 2u : 1u;
  if (quiet_streak_ < a.grow_patience) {
    return;
  }
  quiet_streak_ = 0;
  const Duration next = std::min(window_ * 2, a.max_window);
  if (next > window_) {
    window_ = next;
    ++stats_.window_growths;
  }
}

bool LaneSet::advance_horizon() {
  if (stats_.windows > 0) {
    retune_window();
  }
  std::optional<SimTime> earliest;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    if (!lane->sched_.idle()) {
      const SimTime due = lane->sched_.next_due();
      if (!earliest.has_value() || due < *earliest) {
        earliest = due;
      }
    }
    for (const reactor::MessageRing& ring : lane->inbox_) {
      const auto visible = ring.next_visible_at();
      if (visible.has_value() &&
          (!earliest.has_value() || *visible < *earliest)) {
        earliest = visible;
      }
    }
  }
  if (!earliest.has_value()) {
    done_ = true;
    return false;
  }
  // Jump to the window containing the earliest pending work — idle
  // stretches cost one barrier, not one barrier per empty window. The
  // pending work is never behind the horizon (executed events are gone,
  // posts require due >= horizon), so the new horizon strictly grows
  // even when the adaptive controller just changed the width.
  const i64 w = window_.picos();
  const i64 base = std::max(earliest->picos(), horizon_.picos());
  horizon_ = SimTime{(base / w + 1) * w};
  ++stats_.windows;
  return true;
}

LaneSet::RunStats LaneSet::run(unsigned threads) {
  u64 events_before = 0;
  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    events_before += lane->sched_.executed();
  }
  stats_ = RunStats{};
  done_ = false;
  window_ = config_.window;
  message_ewma_x256_ = 0;
  busy_ewma_x256_ = 0;
  messages_at_retune_ = 0;
  quiet_streak_ = 0;

  if (!advance_horizon()) {
    return stats_;
  }

  const unsigned workers = std::min<unsigned>(
      std::max(threads, 1u), static_cast<unsigned>(lanes_.size()));
  if (workers <= 1) {
    while (!done_) {
      for (const std::unique_ptr<EventLane>& lane : lanes_) {
        step_lane(*lane, horizon_);
      }
      route_outboxes();
      advance_horizon();
    }
  } else {
    // Persistent workers, two phases per window. The barrier completion
    // callback is the single-threaded phase: every worker is blocked in
    // arrive_and_wait while it routes messages and advances the horizon,
    // and its return synchronizes-with every worker's wakeup — done_ and
    // horizon_ need no further synchronization.
    std::barrier sync(static_cast<std::ptrdiff_t>(workers),
                      [this]() noexcept {
                        route_outboxes();
                        advance_horizon();
                      });
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([this, w, workers, &sync] {
        while (!done_) {
          for (std::size_t i = w; i < lanes_.size(); i += workers) {
            step_lane(*lanes_[i], horizon_);
          }
          sync.arrive_and_wait();
        }
      });
    }
  }

  for (const std::unique_ptr<EventLane>& lane : lanes_) {
    stats_.events += lane->sched_.executed();
  }
  stats_.events -= events_before;
  return stats_;
}

}  // namespace vfpga::sim
