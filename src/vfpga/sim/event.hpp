// Pooled event nodes and the small-buffer callable they carry.
//
// The event core runs millions of simulated packets per wall second, so
// the per-event costs that a std::function + std::priority_queue design
// pays on every hot-path operation — one heap allocation for the
// callable, one more when the queue's vector of fat entries grows, and a
// type-erased copy on pop — are exactly the costs this header removes:
//
//  * SmallFn: a move-only type-erased `void()` callable with 48 bytes of
//    inline storage. Every capture the scheduler and reactor timers use
//    (a couple of pointers plus a timestamp) fits inline; larger
//    captures still work but fall back to the heap and are counted, so
//    a steady-state test can assert the hot path allocates nothing.
//  * Event / EventArena: intrusive scheduler nodes recycled through a
//    chunked free list. Once the pool is warm, schedule/run cycles touch
//    no allocator at all — node acquisition is a pointer pop.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "vfpga/common/types.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::sim {

/// Move-only `void()` callable with small-buffer storage. Captures up to
/// kInlineBytes (and alignment <= kInlineAlign) live inside the object;
/// anything bigger is heap-allocated and counted via heap_allocations(),
/// which steady-state tests pin to zero for scheduler/timer workloads.
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kInlineAlign = 16;

  SmallFn() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  SmallFn(std::nullptr_t) {}

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  SmallFn(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    ops_ = ops_for<Fn>();
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
    } else {
      heap_ = new Fn(std::forward<F>(f));
      heap_allocs().fetch_add(1, std::memory_order_relaxed);
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(target()); }

  /// Process-wide count of captures that missed the inline buffer.
  [[nodiscard]] static u64 heap_allocations() {
    return heap_allocs().load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    /// Move-construct src's target at dst and destroy src; null for
    /// heap-stored targets (those relocate by pointer steal).
    void (*relocate)(void* dst, void* src);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* ops_for() {
    if constexpr (fits_inline<Fn>()) {
      static constexpr Ops ops{
          [](void* p) { (*static_cast<Fn*>(p))(); },
          [](void* p) { static_cast<Fn*>(p)->~Fn(); },
          [](void* dst, void* src) {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          }};
      return &ops;
    } else {
      static constexpr Ops ops{[](void* p) { (*static_cast<Fn*>(p))(); },
                               [](void* p) { delete static_cast<Fn*>(p); },
                               nullptr};
      return &ops;
    }
  }

  [[nodiscard]] void* target() {
    return ops_->relocate != nullptr ? static_cast<void*>(inline_) : heap_;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) {
      return;
    }
    if (ops_->relocate != nullptr) {
      ops_->relocate(inline_, other.inline_);
    } else {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    }
    other.ops_ = nullptr;
  }

  static std::atomic<u64>& heap_allocs() {
    static std::atomic<u64> count{0};
    return count;
  }

  alignas(kInlineAlign) std::byte inline_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

/// Intrusive scheduler event node. Lives in an EventArena chunk for its
/// whole lifetime; `next_free` threads the arena's free list while the
/// node is idle.
struct Event {
  SimTime when{};
  u64 seq = 0;
  SmallFn fn;
  Event* next_free = nullptr;
};

/// Chunked pool of Event nodes. Acquire pops the free list (or carves a
/// fresh chunk when the pool is dry); release pushes the node back.
/// Chunks are never returned to the allocator while the arena lives, so
/// a steady-state workload reaches a high-water mark and then performs
/// zero allocations per event — `node_allocations()` is the regression
/// probe for that claim.
class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  [[nodiscard]] Event* acquire() {
    if (free_ == nullptr) {
      grow();
    }
    Event* node = free_;
    free_ = node->next_free;
    node->next_free = nullptr;
    ++live_;
    return node;
  }

  void release(Event* node) {
    node->fn = nullptr;
    node->next_free = free_;
    free_ = node;
    --live_;
  }

  /// Total Event nodes ever carved from chunks (the pool's high-water
  /// mark) — constant once the workload reaches steady state.
  [[nodiscard]] u64 node_allocations() const { return node_allocations_; }
  [[nodiscard]] u64 live() const { return live_; }

 private:
  static constexpr std::size_t kChunkEvents = 256;

  void grow() {
    chunks_.push_back(std::make_unique<Event[]>(kChunkEvents));
    Event* chunk = chunks_.back().get();
    for (std::size_t i = kChunkEvents; i-- > 0;) {
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
    node_allocations_ += kChunkEvents;
  }

  std::vector<std::unique_ptr<Event[]>> chunks_;
  Event* free_ = nullptr;
  u64 node_allocations_ = 0;
  u64 live_ = 0;
};

}  // namespace vfpga::sim
