#include "vfpga/sim/distributions.hpp"

#include <cmath>

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {

double sample_standard_normal(Xoshiro256& rng) {
  // Box–Muller; u1 is kept away from 0 to avoid log(0).
  double u1 = rng.uniform01();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = rng.uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double sample_lognormal(Xoshiro256& rng, double median, double sigma) {
  VFPGA_EXPECTS(median > 0.0 && sigma >= 0.0);
  if (sigma == 0.0) {
    return median;
  }
  return median * std::exp(sigma * sample_standard_normal(rng));
}

double sample_exponential(Xoshiro256& rng, double mean) {
  VFPGA_EXPECTS(mean > 0.0);
  double u = rng.uniform01();
  if (u >= 1.0) {
    u = std::nextafter(1.0, 0.0);
  }
  return -mean * std::log1p(-u);
}

double sample_pareto(Xoshiro256& rng, double scale, double shape) {
  VFPGA_EXPECTS(scale > 0.0 && shape > 0.0);
  double u = rng.uniform01();
  if (u >= 1.0) {
    u = std::nextafter(1.0, 0.0);
  }
  return scale * (std::pow(1.0 - u, -1.0 / shape) - 1.0);
}

bool sample_bernoulli(Xoshiro256& rng, double p) {
  return rng.uniform01() < p;
}

u64 sample_poisson(Xoshiro256& rng, double mean) {
  VFPGA_EXPECTS(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth's inversion by multiplication.
    const double limit = std::exp(-mean);
    double product = rng.uniform01();
    u64 count = 0;
    while (product > limit) {
      product *= rng.uniform01();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; fine for the noise
  // model's rates, which never approach this branch in practice.
  const double g = sample_standard_normal(rng);
  const double v = mean + std::sqrt(mean) * g + 0.5;
  return v <= 0.0 ? 0 : static_cast<u64>(v);
}

Duration JitteredSegment::sample(Xoshiro256& rng) const {
  const double med_ns = median.nanos();
  if (med_ns <= 0.0) {
    return Duration{};
  }
  double ns = sample_lognormal(rng, med_ns, sigma);
  if (floor.picos() > 0 && ns < floor.nanos()) {
    ns = floor.nanos();
  }
  if (ceiling.picos() > 0 && ns > ceiling.nanos()) {
    ns = ceiling.nanos();
  }
  return from_nanos(ns);
}

Duration MixtureSegment::sample(Xoshiro256& rng) const {
  VFPGA_EXPECTS(!components.empty());
  double total = 0.0;
  for (const auto& c : components) {
    total += c.weight;
  }
  VFPGA_EXPECTS(total > 0.0);
  double pick = rng.uniform01() * total;
  for (const auto& c : components) {
    pick -= c.weight;
    if (pick <= 0.0) {
      return c.segment.sample(rng);
    }
  }
  return components.back().segment.sample(rng);
}

}  // namespace vfpga::sim
