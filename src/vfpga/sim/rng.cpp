#include "vfpga/sim/rng.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::sim {
namespace {

constexpr u64 rotl(u64 x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(u64 seed) {
  SplitMix64 sm{seed};
  for (auto& word : s_) {
    word = sm.next();
  }
  // An all-zero state is the one forbidden state; SplitMix64 cannot emit
  // four zero words in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ull;
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const u64 result = rotl(s_[0] + s_[3], 23) + s_[0];
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

u64 Xoshiro256::uniform_below(u64 bound) noexcept {
  VFPGA_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless method.
  u64 x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<u64>(m);
  if (lo < bound) {
    const u64 threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

Xoshiro256 Xoshiro256::split() noexcept {
  // Use two outputs of this stream to seed a SplitMix64 chain; the child
  // stream is statistically independent for our purposes.
  const u64 a = (*this)();
  const u64 b = (*this)();
  return Xoshiro256{a ^ rotl(b, 32) ^ 0xd3833e804f4c574bull};
}

}  // namespace vfpga::sim
