#include "vfpga/sim/noise.hpp"

#include <algorithm>

namespace vfpga::sim {

Duration NoiseModel::interference(Xoshiro256& rng,
                                  Duration software_time) const {
  if (!config_.enabled || software_time <= Duration{}) {
    return Duration{};
  }
  const double us = software_time.micros();
  double extra_ns = 0.0;
  const u64 common = sample_poisson(rng, config_.common_rate_per_us * us);
  for (u64 i = 0; i < common; ++i) {
    extra_ns += sample_exponential(rng, config_.common_mean_ns);
  }
  return from_nanos(extra_ns);
}

Duration NoiseModel::rare_stall(Xoshiro256& rng, Duration elapsed) const {
  if (!config_.enabled || elapsed <= Duration{}) {
    return Duration{};
  }
  const double us = elapsed.micros();
  double extra_ns = 0.0;
  const u64 rare = sample_poisson(rng, config_.rare_rate_per_us * us);
  for (u64 i = 0; i < rare; ++i) {
    double stall = config_.rare_offset_ns +
                   sample_pareto(rng, config_.rare_pareto_scale_ns,
                                 config_.rare_pareto_shape);
    stall = std::min(stall, config_.rare_cap_ns);
    extra_ns += stall;
  }
  return from_nanos(extra_ns);
}

}  // namespace vfpga::sim
