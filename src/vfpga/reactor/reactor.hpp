// Run-to-completion reactor threads (SPDK execution model).
//
// A Reactor is one dedicated polling core: an event loop that never
// blocks, owned by exactly one HostThread. Work arrives three ways —
// registered pollers (functions the loop calls every iteration, or on a
// period for timed pollers), one-shot timers, and messages posted from
// other reactors through a lock-free MessageRing. All state a reactor
// touches belongs to it alone; cross-reactor interaction is message
// passing, never shared locks — the architecture that lets one core
// drive millions of storage IOPS (SPDK lib/thread).
//
// The simulation keeps the model cooperative: poll_once() advances the
// reactor's HostThread through calibrated cost segments
// (reactor_poll_iteration per loop, reactor_msg per dispatched message)
// and every callback runs on the reactor's own simulated timeline. A
// ReactorGroup interleaves several reactors earliest-clock-first, the
// same conservative discipline harness::run_multi_flow uses.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "vfpga/hostos/cost_model.hpp"
#include "vfpga/reactor/message_ring.hpp"

namespace vfpga::reactor {

/// A poller returns true when it found work this call (busy) and false
/// when it polled dry — the reactor's idle accounting, and the signal
/// ReactorGroup uses to decide when the whole group has drained.
using PollerFn = std::function<bool(sim::SimTime now)>;

struct ReactorConfig {
  u32 id = 0;
  u32 msg_ring_capacity = 256;
  /// Messages drained per iteration before pollers run (SPDK's
  /// CRIT_MSG/MSG batch): bounds message latency without letting a
  /// flood starve the pollers.
  u32 msg_batch = 8;
};

class Reactor {
 public:
  Reactor(ReactorConfig config, hostos::HostThread& thread)
      : config_(config), thread_(&thread), ring_(config.msg_ring_capacity) {}

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] u32 id() const { return config_.id; }
  [[nodiscard]] hostos::HostThread& thread() { return *thread_; }
  [[nodiscard]] sim::SimTime now() const { return thread_->now(); }
  [[nodiscard]] MessageRing& ring() { return ring_; }

  // ---- pollers ---------------------------------------------------------------

  /// Register a poller. period == 0 runs every iteration; otherwise the
  /// poller runs when `period` has elapsed since its previous run (a
  /// timed poller, SPDK's spdk_poller_register(..., period_us)).
  u64 register_poller(std::string name, PollerFn fn,
                      sim::Duration period = {}) {
    Poller p;
    p.id = next_id_++;
    p.name = std::move(name);
    p.fn = std::move(fn);
    p.period = period;
    p.next_due = thread_->now();
    pollers_.push_back(std::move(p));
    return pollers_.back().id;
  }

  /// Unregister; safe to call from inside the poller itself.
  void unregister_poller(u64 poller_id) {
    for (Poller& p : pollers_) {
      if (p.id == poller_id) {
        p.dead = true;
      }
    }
  }

  // ---- timers ----------------------------------------------------------------

  /// One-shot timer: `fn` runs on this reactor once its clock reaches
  /// now + delay. Timers never preempt — they fire at the next loop
  /// iteration at or after the deadline, like any polled timer wheel.
  u64 schedule_timer(sim::Duration delay, Message fn) {
    Timer t;
    t.id = next_id_++;
    t.deadline = thread_->now() + delay;
    t.fn = std::move(fn);
    timers_.push_back(std::move(t));
    return timers_.back().id;
  }

  /// Cancel a pending timer; false when it already fired (or never
  /// existed).
  bool cancel_timer(u64 timer_id) {
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (it->id == timer_id) {
        timers_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Earliest pending timer deadline (nullopt when none) — the group's
  /// idle-advance target.
  [[nodiscard]] std::optional<sim::SimTime> next_timer_deadline() const {
    std::optional<sim::SimTime> best;
    for (const Timer& t : timers_) {
      if (!best.has_value() || t.deadline < *best) {
        best = t.deadline;
      }
    }
    return best;
  }

  // ---- messages --------------------------------------------------------------

  /// Post `fn` to run on this reactor, visible once its clock reaches
  /// `posted_at` (the sender's now). Returns false when the ring is
  /// full — sender backpressure, counted by the ring.
  bool post(Message fn, sim::SimTime posted_at) {
    return ring_.try_push(std::move(fn), posted_at);
  }

  // ---- the loop --------------------------------------------------------------

  /// One loop iteration: drain <= msg_batch visible messages, fire due
  /// timers, run due pollers. Returns true when any of them found work.
  /// Advances the reactor's HostThread through the reactor cost
  /// segments; callbacks run inline on the same timeline.
  bool poll_once() {
    hostos::HostThread& t = *thread_;
    t.exec_poll(t.costs().reactor_poll_iteration);
    ++stats_.iterations;
    bool busy = false;

    for (u32 i = 0; i < config_.msg_batch; ++i) {
      auto msg = ring_.try_pop(t.now());
      if (!msg.has_value()) {
        break;
      }
      t.exec_poll(t.costs().reactor_msg);
      (*msg)();
      ++stats_.messages_processed;
      busy = true;
    }

    // Timer wheel sweep: fire everything due, in deadline order so two
    // timers scheduled for the same burst run oldest-first.
    while (true) {
      std::size_t due = timers_.size();
      for (std::size_t i = 0; i < timers_.size(); ++i) {
        if (timers_[i].deadline <= t.now() &&
            (due == timers_.size() ||
             timers_[i].deadline < timers_[due].deadline)) {
          due = i;
        }
      }
      if (due == timers_.size()) {
        break;
      }
      Message fn = std::move(timers_[due].fn);
      timers_.erase(timers_.begin() +
                    static_cast<std::ptrdiff_t>(due));
      fn();
      ++stats_.timers_fired;
      busy = true;
    }

    for (Poller& p : pollers_) {
      if (p.dead || p.next_due > t.now()) {
        continue;
      }
      if (p.period > sim::Duration{}) {
        p.next_due = t.now() + p.period;
      }
      ++p.runs;
      if (p.fn(t.now())) {
        ++p.busy_runs;
        busy = true;
      }
    }
    pollers_.erase(std::remove_if(pollers_.begin(), pollers_.end(),
                                  [](const Poller& p) { return p.dead; }),
                   pollers_.end());

    if (busy) {
      ++stats_.busy_iterations;
    }
    return busy;
  }

  /// Poll until `idle_limit` consecutive dry iterations. Pending timers
  /// and queued-but-not-yet-visible messages are honoured by spinning
  /// the clock forward to the earliest of them (the reactor core never
  /// sleeps — that is the point).
  u64 run_until_idle(u32 idle_limit = 1) {
    u64 iterations = 0;
    u32 idle = 0;
    while (true) {
      const bool busy = poll_once();
      ++iterations;
      if (busy) {
        idle = 0;
        continue;
      }
      ++idle;
      const std::optional<sim::SimTime> wake = next_wakeup();
      if (wake.has_value() && *wake > thread_->now()) {
        thread_->spin_until(*wake);
        idle = 0;
        continue;
      }
      if (wake.has_value()) {
        continue;  // already due: next iteration picks it up
      }
      if (idle >= idle_limit) {
        return iterations;
      }
    }
  }

  /// Earliest instant at which deferred work (timer or queued message)
  /// becomes runnable; nullopt when none is pending.
  [[nodiscard]] std::optional<sim::SimTime> next_wakeup() const {
    std::optional<sim::SimTime> best = next_timer_deadline();
    const auto msg = ring_.next_visible_at();
    if (msg.has_value() && (!best.has_value() || *msg < *best)) {
      best = msg;
    }
    return best;
  }

  [[nodiscard]] bool has_pending_work() const {
    return !timers_.empty() || !ring_.empty();
  }

  // ---- observability ---------------------------------------------------------

  struct Stats {
    u64 iterations = 0;
    u64 busy_iterations = 0;
    u64 messages_processed = 0;
    u64 timers_fired = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  struct PollerStats {
    std::string name;
    u64 runs = 0;
    u64 busy_runs = 0;
  };
  [[nodiscard]] std::vector<PollerStats> poller_stats() const {
    std::vector<PollerStats> out;
    for (const Poller& p : pollers_) {
      out.push_back({p.name, p.runs, p.busy_runs});
    }
    return out;
  }

 private:
  struct Poller {
    u64 id = 0;
    std::string name;
    PollerFn fn;
    sim::Duration period{};
    sim::SimTime next_due{};
    u64 runs = 0;
    u64 busy_runs = 0;
    bool dead = false;
  };
  struct Timer {
    u64 id = 0;
    sim::SimTime deadline{};
    Message fn;
  };

  ReactorConfig config_;
  hostos::HostThread* thread_;
  MessageRing ring_;
  std::vector<Poller> pollers_;
  std::vector<Timer> timers_;
  u64 next_id_ = 1;
  Stats stats_;
};

/// A fixed set of reactors interleaved earliest-clock-first — the
/// cooperative stand-in for N pinned polling cores. Threads are spawned
/// by the caller (typically VirtioNetTestbed::spawn_thread) so every
/// reactor shares the testbed's cost model and noise stream.
class ReactorGroup {
 public:
  ReactorGroup(u32 count, ReactorConfig base,
               const std::function<std::unique_ptr<hostos::HostThread>()>&
                   spawn_thread) {
    VFPGA_EXPECTS(count >= 1);
    for (u32 i = 0; i < count; ++i) {
      threads_.push_back(spawn_thread());
      ReactorConfig cfg = base;
      cfg.id = i;
      reactors_.push_back(std::make_unique<Reactor>(cfg, *threads_.back()));
    }
  }

  [[nodiscard]] u32 size() const {
    return static_cast<u32>(reactors_.size());
  }
  [[nodiscard]] Reactor& at(u32 i) { return *reactors_.at(i); }

  /// Interleave: always step the reactor whose clock is furthest behind
  /// (conservative — no reactor can observe an effect from a future
  /// clock). Stops when every reactor polls dry `idle_limit` rounds in
  /// a row and none holds deferred work; reactors idling ahead of a
  /// pending timer/message spin forward to it.
  void run_until_idle(u32 idle_limit = 2) {
    std::vector<u32> idle(reactors_.size(), 0);
    while (true) {
      u32 next = 0;
      for (u32 i = 1; i < reactors_.size(); ++i) {
        if (reactors_[i]->now() < reactors_[next]->now()) {
          next = i;
        }
      }
      Reactor& r = *reactors_[next];
      if (r.poll_once()) {
        idle[next] = 0;
        continue;
      }
      const std::optional<sim::SimTime> wake = r.next_wakeup();
      if (wake.has_value()) {
        if (*wake > r.thread().now()) {
          r.thread().spin_until(*wake);
        }
        idle[next] = 0;
        continue;
      }
      ++idle[next];
      bool all_idle = true;
      for (u32 i = 0; i < reactors_.size(); ++i) {
        if (idle[i] < idle_limit || reactors_[i]->has_pending_work()) {
          all_idle = false;
          break;
        }
      }
      if (all_idle) {
        return;
      }
    }
  }

 private:
  std::vector<std::unique_ptr<hostos::HostThread>> threads_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace vfpga::reactor
