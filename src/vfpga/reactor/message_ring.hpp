// Fixed-capacity inter-reactor message ring.
//
// Models the lock-free SPSC/MPSC rings run-to-completion frameworks use
// for cross-core message passing (SPDK's per-thread spdk_ring, DPDK's
// rte_ring): a power-of-two slot array with masked head/tail cursors,
// never allocating on the hot path, and dropping (with a counter) when
// full instead of blocking — the producer owns the retry policy. The
// simulation is cooperative single-OS-thread, so the "lock-free" part is
// a modelling statement: a push costs one slot write + cursor bump and
// can never stall the consumer.
//
// Causality: each message carries the simulated time it was posted; a
// consumer whose clock has not reached that time does not see it yet
// (the producer's store has not become visible to the consumer core).
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/types.hpp"
#include "vfpga/sim/event.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::reactor {

/// A message is a deferred function call on the target reactor — the
/// spdk_thread_send_msg model (fn + ctx collapsed into a closure). It is
/// a sim::SmallFn, so posting a message never heap-allocates as long as
/// the capture fits the 48-byte inline buffer — the same zero-alloc
/// guarantee the scheduler's hot path has.
using Message = sim::SmallFn;

class MessageRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2) so
  /// cursor arithmetic is a mask, exactly like rte_ring.
  explicit MessageRing(u32 capacity) {
    u32 cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] u32 capacity() const {
    return static_cast<u32>(slots_.size());
  }
  [[nodiscard]] u32 size() const { return static_cast<u32>(tail_ - head_); }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return size() == capacity(); }

  /// Enqueue; returns false (and counts the drop) when the ring is
  /// full — the producer decides whether to retry, not the ring.
  bool try_push(Message fn, sim::SimTime posted_at) {
    if (full()) {
      ++dropped_full_;
      return false;
    }
    Slot& s = slots_[static_cast<std::size_t>(tail_ & mask_)];
    s.fn = std::move(fn);
    s.posted_at = posted_at;
    ++tail_;
    ++enqueued_;
    high_watermark_ = std::max<u64>(high_watermark_, size());
    return true;
  }

  /// Dequeue the oldest message whose posted_at <= now (store visible to
  /// the consumer core). FIFO order means a not-yet-visible head blocks
  /// the ones behind it — the consumer advances its clock instead.
  std::optional<Message> try_pop(sim::SimTime now) {
    if (empty()) {
      return std::nullopt;
    }
    Slot& s = slots_[static_cast<std::size_t>(head_ & mask_)];
    if (s.posted_at > now) {
      return std::nullopt;
    }
    Message fn = std::move(s.fn);
    s.fn = nullptr;
    ++head_;
    ++dequeued_;
    return fn;
  }

  /// Visibility time of the oldest queued message (nullopt when empty):
  /// an idle consumer spins forward to this instead of busy-looping on
  /// an invisible head.
  [[nodiscard]] std::optional<sim::SimTime> next_visible_at() const {
    if (empty()) {
      return std::nullopt;
    }
    return slots_[static_cast<std::size_t>(head_ & mask_)].posted_at;
  }

  // ---- non-destructive consumption (optimistic lane sync) -----------
  //
  // A speculating consumer may have to re-deliver everything it read if
  // it rolls back, so it PEEKS entries in place (the closure stays
  // queued and must be re-invocable) and only consume()s the delivered
  // prefix once the speculated region commits. Between peek and consume
  // the ring must not be popped through try_pop — the two protocols
  // address the same head cursor.

  /// Post time of the entry `offset` slots past the head (offset <
  /// size()).
  [[nodiscard]] sim::SimTime peeked_at(u32 offset) const {
    VFPGA_EXPECTS(offset < size());
    return slots_[static_cast<std::size_t>((head_ + offset) & mask_)]
        .posted_at;
  }

  /// The message `offset` slots past the head, left in place. Invoking
  /// it must leave it re-invocable (rollback re-delivers it).
  [[nodiscard]] Message& peek(u32 offset) {
    VFPGA_EXPECTS(offset < size());
    return slots_[static_cast<std::size_t>((head_ + offset) & mask_)].fn;
  }

  /// Retire `n` peeked entries from the head — the commit half of the
  /// peek/consume protocol. Counts them as dequeued.
  void consume(u32 n) {
    VFPGA_EXPECTS(n <= size());
    for (u32 i = 0; i < n; ++i) {
      slots_[static_cast<std::size_t>(head_ & mask_)].fn = nullptr;
      ++head_;
      ++dequeued_;
    }
  }

  [[nodiscard]] u64 enqueued() const { return enqueued_; }
  [[nodiscard]] u64 dequeued() const { return dequeued_; }
  [[nodiscard]] u64 dropped_full() const { return dropped_full_; }
  [[nodiscard]] u64 high_watermark() const { return high_watermark_; }

 private:
  struct Slot {
    Message fn;
    sim::SimTime posted_at{};
  };
  std::vector<Slot> slots_;
  u32 mask_ = 1;
  u64 head_ = 0;  ///< consumer cursor
  u64 tail_ = 0;  ///< producer cursor
  u64 enqueued_ = 0;
  u64 dequeued_ = 0;
  u64 dropped_full_ = 0;
  u64 high_watermark_ = 0;
};

}  // namespace vfpga::reactor
