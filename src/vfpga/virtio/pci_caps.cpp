#include "vfpga/virtio/pci_caps.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"

namespace vfpga::virtio {
namespace {

// Body layout after the generic 2-byte capability header:
//   +0 cap_len  +1 cfg_type  +2 bar  +3 id  +4..5 padding
//   +6 offset(le32)  +10 length(le32)
// (so the full capability is 16 bytes; Notify appends a 4-byte
// notify_off_multiplier for a total of 20.)
constexpr std::size_t kBodyLen = 14;
constexpr std::size_t kNotifyBodyLen = 18;

Bytes make_cap_body(CfgType type, const StructureLocation& loc,
                    std::optional<u32> notify_multiplier) {
  const bool is_notify = notify_multiplier.has_value();
  Bytes body(is_notify ? kNotifyBodyLen : kBodyLen, 0);
  ByteSpan s{body};
  body[0] = static_cast<u8>(2 + body.size());  // cap_len counts the header
  body[1] = static_cast<u8>(type);
  body[2] = loc.bar;
  body[3] = 0;  // id: only one structure of each type
  store_le32(s, 6, loc.offset);
  store_le32(s, 10, loc.length);
  if (is_notify) {
    store_le32(s, 14, *notify_multiplier);
  }
  return body;
}

}  // namespace

void add_virtio_capabilities(pcie::ConfigSpace& config,
                             const VirtioPciLayout& layout) {
  VFPGA_EXPECTS(layout.complete());
  config.add_capability(pcie::CapabilityId::VendorSpecific,
                        make_cap_body(CfgType::Common, layout.common, {}));
  config.add_capability(
      pcie::CapabilityId::VendorSpecific,
      make_cap_body(CfgType::Notify, layout.notify,
                    layout.notify_off_multiplier));
  config.add_capability(pcie::CapabilityId::VendorSpecific,
                        make_cap_body(CfgType::Isr, layout.isr, {}));
  if (layout.device_specific.length != 0) {
    config.add_capability(
        pcie::CapabilityId::VendorSpecific,
        make_cap_body(CfgType::Device, layout.device_specific, {}));
  }
}

std::optional<VirtioPciLayout> parse_virtio_capabilities(
    const pcie::ConfigSpace& config) {
  VirtioPciLayout layout;
  u16 cap = 0;
  while (true) {
    cap = config.find_capability(pcie::CapabilityId::VendorSpecific, cap);
    if (cap == 0) {
      break;
    }
    const u8 cfg_type = config.read8(static_cast<u16>(cap + 3));
    StructureLocation loc;
    loc.bar = config.read8(static_cast<u16>(cap + 4));
    loc.offset = config.read32(static_cast<u16>(cap + 8));
    loc.length = config.read32(static_cast<u16>(cap + 12));
    switch (static_cast<CfgType>(cfg_type)) {
      case CfgType::Common:
        layout.common = loc;
        break;
      case CfgType::Notify:
        layout.notify = loc;
        layout.notify_off_multiplier =
            config.read32(static_cast<u16>(cap + 16));
        break;
      case CfgType::Isr:
        layout.isr = loc;
        break;
      case CfgType::Device:
        layout.device_specific = loc;
        break;
      case CfgType::Pci:
        break;  // alternative access window: not used by the models
      default:
        break;  // unknown cfg_type: spec says skip
    }
  }
  if (!layout.complete()) {
    return std::nullopt;
  }
  return layout;
}

}  // namespace vfpga::virtio
