// virtio-blk structures (VirtIO 1.2 §5.2).
//
// A second "more VirtIO device types" personality (paper contribution
// bullet 1): a block device backed by FPGA BRAM. Requests carry a
// 16-byte header (type, reserved, sector), the data buffers, and a
// trailing 1-byte status the device writes.
#pragma once

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::virtio::blk {

/// virtio_blk_config field offsets.
struct BlkConfigLayout {
  static constexpr u32 kCapacityOffset = 0;  // le64, in 512-byte sectors
  static constexpr u32 kSizeMaxOffset = 8;   // le32
  static constexpr u32 kSegMaxOffset = 12;   // le32
  static constexpr u32 kBlkSizeOffset = 20;  // le32
  static constexpr u32 kSize = 24;
};

/// Request types (§5.2.6).
enum class RequestType : u32 {
  In = 0,      ///< read from device
  Out = 1,     ///< write to device
  Flush = 4,
  GetId = 8,
};

/// Status byte the device writes into the last descriptor.
inline constexpr u8 kStatusOk = 0;
inline constexpr u8 kStatusIoErr = 1;
inline constexpr u8 kStatusUnsupported = 2;

inline constexpr u64 kSectorBytes = 512;
inline constexpr u64 kRequestHeaderBytes = 16;

/// Decode the request header from the first descriptor's bytes.
struct RequestHeader {
  RequestType type = RequestType::In;
  u64 sector = 0;

  static RequestHeader decode(ConstByteSpan raw) {
    VFPGA_EXPECTS(raw.size() >= kRequestHeaderBytes);
    RequestHeader h;
    h.type = static_cast<RequestType>(load_le32(raw, 0));
    h.sector = load_le64(raw, 8);
    return h;
  }
  void encode(ByteSpan out) const {
    VFPGA_EXPECTS(out.size() >= kRequestHeaderBytes);
    store_le32(out, 0, static_cast<u32>(type));
    store_le32(out, 4, 0);
    store_le64(out, 8, sector);
  }
};

/// The single queue of a minimal block device.
inline constexpr u16 kRequestQueue = 0;

}  // namespace vfpga::virtio::blk
