// virtio-blk structures (VirtIO 1.2 §5.2).
//
// A second "more VirtIO device types" personality (paper contribution
// bullet 1): a block device backed by FPGA BRAM. Requests carry a
// 16-byte header (type, reserved, sector), the data buffers, and a
// trailing 1-byte status the device writes.
#pragma once

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::virtio::blk {

/// virtio_blk_config field offsets (§5.2.4). Fields past blk_size are
/// only valid under their gating feature bit (MQ, DISCARD).
struct BlkConfigLayout {
  static constexpr u32 kCapacityOffset = 0;   // le64, in 512-byte sectors
  static constexpr u32 kSizeMaxOffset = 8;    // le32, bytes per segment
  static constexpr u32 kSegMaxOffset = 12;    // le32, data segments/request
  static constexpr u32 kBlkSizeOffset = 20;   // le32
  static constexpr u32 kNumQueuesOffset = 34; // le16 (VIRTIO_BLK_F_MQ)
  static constexpr u32 kMaxDiscardSectorsOffset = 36;  // le32 (F_DISCARD)
  static constexpr u32 kMaxDiscardSegOffset = 40;      // le32 (F_DISCARD)
  static constexpr u32 kDiscardAlignmentOffset = 44;   // le32 (F_DISCARD)
  static constexpr u32 kSize = 48;
};

/// Request types (§5.2.6).
enum class RequestType : u32 {
  In = 0,       ///< read from device
  Out = 1,      ///< write to device
  Flush = 4,    ///< write barrier: everything completed before is durable
  GetId = 8,    ///< 20-byte device id string into the data buffer
  Discard = 11, ///< free ranges (virtio_blk_discard_write_zeroes segments)
};

/// Status byte the device writes into the last descriptor.
inline constexpr u8 kStatusOk = 0;
inline constexpr u8 kStatusIoErr = 1;
inline constexpr u8 kStatusUnsupported = 2;

inline constexpr u64 kSectorBytes = 512;
inline constexpr u64 kRequestHeaderBytes = 16;
/// GET_ID answers exactly VIRTIO_BLK_ID_BYTES of device-writable data.
inline constexpr u64 kDeviceIdBytes = 20;

/// Decode the request header from the first descriptor's bytes.
struct RequestHeader {
  RequestType type = RequestType::In;
  u32 reserved = 0;  ///< drivers must write 0 (§5.2.6.1)
  u64 sector = 0;

  static RequestHeader decode(ConstByteSpan raw) {
    VFPGA_EXPECTS(raw.size() >= kRequestHeaderBytes);
    RequestHeader h;
    h.type = static_cast<RequestType>(load_le32(raw, 0));
    h.reserved = load_le32(raw, 4);
    h.sector = load_le64(raw, 8);
    return h;
  }
  void encode(ByteSpan out) const {
    VFPGA_EXPECTS(out.size() >= kRequestHeaderBytes);
    store_le32(out, 0, static_cast<u32>(type));
    store_le32(out, 4, reserved);
    store_le64(out, 8, sector);
  }
};

/// One range of a DISCARD request's data payload
/// (struct virtio_blk_discard_write_zeroes, §5.2.6).
struct DiscardSegment {
  u64 sector = 0;
  u32 num_sectors = 0;
  u32 flags = 0;  ///< bit 0 = unmap (write-zeroes only); must be 0 here

  static constexpr u64 kBytes = 16;

  static DiscardSegment decode(ConstByteSpan raw) {
    VFPGA_EXPECTS(raw.size() >= kBytes);
    DiscardSegment s;
    s.sector = load_le64(raw, 0);
    s.num_sectors = load_le32(raw, 8);
    s.flags = load_le32(raw, 12);
    return s;
  }
  void encode(ByteSpan out) const {
    VFPGA_EXPECTS(out.size() >= kBytes);
    store_le64(out, 0, sector);
    store_le32(out, 8, num_sectors);
    store_le32(out, 12, flags);
  }
};

/// The first request queue (additional queues exist under F_MQ).
inline constexpr u16 kRequestQueue = 0;

}  // namespace vfpga::virtio::blk
