#include "vfpga/virtio/packed_driver.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::virtio {

namespace pk = packed;

PackedVirtqueueDriver::PackedVirtqueueDriver(mem::HostMemory& memory,
                                             u16 queue_size,
                                             FeatureSet negotiated)
    : memory_(&memory),
      queue_size_(queue_size),
      negotiated_(negotiated),
      id_desc_count_(queue_size, 0),
      id_token_(queue_size, 0),
      indirect_table_(queue_size, 0),
      indirect_capacity_(queue_size, 0),
      num_free_(queue_size) {
  VFPGA_EXPECTS(queue_size != 0);
  VFPGA_EXPECTS(negotiated.has(feature::kRingPacked));
  addrs_.desc = memory.allocate(pk::ring_bytes(queue_size), 16);
  addrs_.avail = memory.allocate(pk::event::kSize, 4);  // driver event
  addrs_.used = memory.allocate(pk::event::kSize, 4);   // device event
  memory.fill(addrs_.desc, 0, pk::ring_bytes(queue_size));
  memory.fill(addrs_.avail, 0, pk::event::kSize);
  memory.fill(addrs_.used, 0, pk::event::kSize);
  for (u16 i = 0; i < queue_size; ++i) {
    free_ids_.push_back(i);
  }
}

std::optional<u16> PackedVirtqueueDriver::add_chain(
    std::span<const ChainBuffer> buffers, u64 token) {
  VFPGA_EXPECTS(!buffers.empty());
  if (buffers.size() > num_free_ || free_ids_.empty()) {
    return std::nullopt;
  }
  const u16 id = free_ids_.front();
  free_ids_.pop_front();
  id_desc_count_[id] = static_cast<u16>(buffers.size());
  id_token_[id] = token;

  u16 slot = next_avail_slot_;
  bool wrap = avail_wrap_;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const ChainBuffer& b = buffers[i];
    const HostAddr entry = addrs_.desc + pk::desc_offset(slot);
    memory_->write_le64(entry + pk::kDescAddrOffset, b.addr);
    memory_->write_le32(entry + pk::kDescLenOffset, b.len);
    // §2.8.6: the buffer ID is required only in the last descriptor of
    // the chain; writing it everywhere is permitted and simpler.
    memory_->write_le16(entry + pk::kDescIdOffset, id);
    u16 desc_flags = pk::avail_flags(wrap);
    if (b.device_writable) {
      desc_flags |= pk::flags::kWrite;
    }
    if (i + 1 < buffers.size()) {
      desc_flags |= pk::flags::kNext;
    }
    // In a real implementation the head descriptor's flags are written
    // last with a release barrier; the functional simulation's publish
    // point is this store sequence as a whole.
    memory_->write_le16(entry + pk::kDescFlagsOffset, desc_flags);

    ++slot;
    if (slot == queue_size_) {
      slot = 0;
      wrap = !wrap;
    }
  }
  next_avail_slot_ = slot;
  avail_wrap_ = wrap;
  num_free_ = static_cast<u16>(num_free_ - buffers.size());
  ++pending_publish_;
  return id;
}

std::optional<u16> PackedVirtqueueDriver::add_chain_indirect(
    std::span<const ChainBuffer> buffers, u64 token) {
  VFPGA_EXPECTS(!buffers.empty());
  VFPGA_EXPECTS(buffers.size() <= queue_size_);  // §2.8.8 table cap
  VFPGA_EXPECTS(negotiated_.has(feature::kRingIndirectDesc));
  if (num_free_ == 0 || free_ids_.empty()) {
    return std::nullopt;
  }
  const u16 id = free_ids_.front();
  free_ids_.pop_front();
  id_desc_count_[id] = 1;  // only the INDIRECT slot occupies the ring
  id_token_[id] = token;

  // Recycle the id's table across uses; grow only when this chain needs
  // more entries than any previous occupant — steady-state adds are
  // allocation-free.
  if (indirect_capacity_[id] < buffers.size()) {
    indirect_table_[id] =
        memory_->allocate(pk::kDescSize * buffers.size(), 16);
    indirect_capacity_[id] = static_cast<u32>(buffers.size());
  }
  const HostAddr table = indirect_table_[id];
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const ChainBuffer& b = buffers[i];
    const HostAddr entry = table + pk::kDescSize * i;
    memory_->write_le64(entry + pk::kDescAddrOffset, b.addr);
    memory_->write_le32(entry + pk::kDescLenOffset, b.len);
    // §2.8.8: WRITE is the only flag valid inside an indirect table;
    // the id field of table entries is reserved.
    memory_->write_le16(entry + pk::kDescIdOffset, 0);
    memory_->write_le16(entry + pk::kDescFlagsOffset,
                        b.device_writable ? pk::flags::kWrite : u16{0});
  }

  const HostAddr entry = addrs_.desc + pk::desc_offset(next_avail_slot_);
  memory_->write_le64(entry + pk::kDescAddrOffset, table);
  memory_->write_le32(entry + pk::kDescLenOffset,
                      static_cast<u32>(pk::kDescSize * buffers.size()));
  memory_->write_le16(entry + pk::kDescIdOffset, id);
  memory_->write_le16(entry + pk::kDescFlagsOffset,
                      static_cast<u16>(pk::avail_flags(avail_wrap_) |
                                       pk::flags::kIndirect));
  ++next_avail_slot_;
  if (next_avail_slot_ == queue_size_) {
    next_avail_slot_ = 0;
    avail_wrap_ = !avail_wrap_;
  }
  --num_free_;
  ++pending_publish_;
  return id;
}

u16 PackedVirtqueueDriver::publish() {
  // Packed rings have no avail.idx: descriptors became visible when
  // their flags were stored. publish() only reports the batch size.
  const u16 published = pending_publish_;
  pending_publish_ = 0;
  return published;
}

bool PackedVirtqueueDriver::should_kick() const {
  // Flags-only suppression: read the device event structure.
  const u16 device_flags =
      memory_->read_le16(addrs_.used + pk::event::kFlagsOffset);
  return device_flags != pk::event::kDisable;
}

bool PackedVirtqueueDriver::used_pending() const {
  const u16 desc_flags = memory_->read_le16(
      addrs_.desc + pk::desc_offset(next_used_slot_) + pk::kDescFlagsOffset);
  return pk::is_used(desc_flags, used_wrap_);
}

std::optional<DriverRing::Completion> PackedVirtqueueDriver::harvest() {
  if (!used_pending()) {
    return std::nullopt;
  }
  const HostAddr entry = addrs_.desc + pk::desc_offset(next_used_slot_);
  const u16 id = memory_->read_le16(entry + pk::kDescIdOffset);
  const u32 written = memory_->read_le32(entry + pk::kDescLenOffset);
  if (id >= queue_size_) {
    // Corrupt completion descriptor: refuse it and mark the ring broken
    // so the driver escalates to a device reset.
    mark_broken();
    return std::nullopt;
  }
  const u16 count = id_desc_count_[id];
  if (count == 0) {
    mark_broken();  // completion for a buffer id we never exposed
    return std::nullopt;
  }

  // The device wrote one used descriptor for the chain and skipped ahead
  // by the chain length (§2.8.7).
  for (u16 i = 0; i < count; ++i) {
    ++next_used_slot_;
    if (next_used_slot_ == queue_size_) {
      next_used_slot_ = 0;
      used_wrap_ = !used_wrap_;
    }
  }
  num_free_ = static_cast<u16>(num_free_ + count);
  id_desc_count_[id] = 0;
  free_ids_.push_back(id);
  return Completion{id_token_[id], written, id};
}

void PackedVirtqueueDriver::enable_interrupts() {
  memory_->write_le16(addrs_.avail + pk::event::kFlagsOffset,
                      pk::event::kEnable);
}

void PackedVirtqueueDriver::disable_interrupts() {
  memory_->write_le16(addrs_.avail + pk::event::kFlagsOffset,
                      pk::event::kDisable);
}

void PackedVirtqueueDriver::save_state(migrate::StateWriter& w) const {
  w.put_u16(queue_size_);
  w.put_u64(negotiated_.bits());
  w.put_u64(addrs_.desc);
  w.put_u64(addrs_.avail);
  w.put_u64(addrs_.used);
  w.put_u16(static_cast<u16>(free_ids_.size()));
  for (u16 id : free_ids_) {
    w.put_u16(id);
  }
  for (u16 c : id_desc_count_) {
    w.put_u16(c);
  }
  for (u64 t : id_token_) {
    w.put_u64(t);
  }
  for (HostAddr a : indirect_table_) {
    w.put_u64(a);
  }
  for (u32 c : indirect_capacity_) {
    w.put_u32(c);
  }
  w.put_u16(num_free_);
  w.put_u16(next_avail_slot_);
  w.put_bool(avail_wrap_);
  w.put_u16(next_used_slot_);
  w.put_bool(used_wrap_);
  w.put_u16(pending_publish_);
  w.put_bool(broken());
}

void PackedVirtqueueDriver::load_state(migrate::StateReader& r) {
  if (r.get_u16() != queue_size_) {
    r.fail();
    return;
  }
  negotiated_ = FeatureSet{r.get_u64()};
  addrs_.desc = r.get_u64();
  addrs_.avail = r.get_u64();
  addrs_.used = r.get_u64();
  free_ids_.clear();
  const u16 free_count = r.get_u16();
  if (free_count > queue_size_) {
    r.fail();
    return;
  }
  for (u16 i = 0; i < free_count; ++i) {
    free_ids_.push_back(r.get_u16());
  }
  for (u16& c : id_desc_count_) {
    c = r.get_u16();
  }
  for (u64& t : id_token_) {
    t = r.get_u64();
  }
  for (HostAddr& a : indirect_table_) {
    a = r.get_u64();
  }
  for (u32& c : indirect_capacity_) {
    c = r.get_u32();
  }
  num_free_ = r.get_u16();
  next_avail_slot_ = r.get_u16();
  avail_wrap_ = r.get_bool();
  next_used_slot_ = r.get_u16();
  used_wrap_ = r.get_bool();
  pending_publish_ = r.get_u16();
  restore_broken(r.get_bool());
}

}  // namespace vfpga::virtio
