#include "vfpga/virtio/virtqueue_driver.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/virtio/ids.hpp"

namespace vfpga::virtio {
namespace {

bool is_pow2(u16 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

VirtqueueDriver::VirtqueueDriver(mem::HostMemory& memory, u16 queue_size,
                                 FeatureSet negotiated)
    : memory_(&memory),
      queue_size_(queue_size),
      negotiated_(negotiated),
      tokens_(queue_size, 0),
      chain_len_(queue_size, 0),
      indirect_table_(queue_size, 0),
      indirect_capacity_(queue_size, 0) {
  VFPGA_EXPECTS(is_pow2(queue_size));

  addrs_.desc = memory.allocate(desc_table_bytes(queue_size), kDescAlign);
  addrs_.avail = memory.allocate(avail_ring_bytes(queue_size), kAvailAlign);
  addrs_.used = memory.allocate(used_ring_bytes(queue_size), kUsedAlign);
  memory.fill(addrs_.desc, 0, desc_table_bytes(queue_size));
  memory.fill(addrs_.avail, 0, avail_ring_bytes(queue_size));
  memory.fill(addrs_.used, 0, used_ring_bytes(queue_size));

  // Free list threads every descriptor through its `next` field.
  for (u16 i = 0; i < queue_size; ++i) {
    Descriptor d;
    d.next = static_cast<u16>((i + 1) % queue_size);
    write_descriptor(i, d);
  }
  free_head_ = 0;
  num_free_ = queue_size;
}

void VirtqueueDriver::write_descriptor(u16 index, const Descriptor& desc) {
  VFPGA_EXPECTS(index < queue_size_);
  const HostAddr base = addrs_.desc + desc_offset(index);
  memory_->write_le64(base + kDescAddrOffset, desc.addr);
  memory_->write_le32(base + kDescLenOffset, desc.len);
  memory_->write_le16(base + kDescFlagsOffset, desc.flags);
  memory_->write_le16(base + kDescNextOffset, desc.next);
}

Descriptor VirtqueueDriver::read_descriptor(u16 index) const {
  VFPGA_EXPECTS(index < queue_size_);
  const HostAddr base = addrs_.desc + desc_offset(index);
  Descriptor d;
  d.addr = memory_->read_le64(base + kDescAddrOffset);
  d.len = memory_->read_le32(base + kDescLenOffset);
  d.flags = memory_->read_le16(base + kDescFlagsOffset);
  d.next = memory_->read_le16(base + kDescNextOffset);
  return d;
}

std::optional<u16> VirtqueueDriver::add_chain(
    std::span<const ChainBuffer> buffers, u64 token) {
  VFPGA_EXPECTS(!buffers.empty());
  if (buffers.size() > num_free_) {
    return std::nullopt;
  }
  // VirtIO requires device-readable buffers before device-writable ones.
  bool seen_writable = false;
  for (const ChainBuffer& b : buffers) {
    if (b.device_writable) {
      seen_writable = true;
    } else {
      VFPGA_EXPECTS(!seen_writable);
    }
  }

  const u16 head = free_head_;
  u16 index = head;
  u16 last = head;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const ChainBuffer& b = buffers[i];
    Descriptor d = read_descriptor(index);
    const u16 next_free = d.next;
    d.addr = b.addr;
    d.len = b.len;
    d.flags = b.device_writable ? descflags::kWrite : u16{0};
    if (i + 1 < buffers.size()) {
      d.flags |= descflags::kNext;
      d.next = next_free;
    } else {
      d.next = 0;
    }
    write_descriptor(index, d);
    last = index;
    index = next_free;
  }
  (void)last;
  free_head_ = index;
  num_free_ = static_cast<u16>(num_free_ - buffers.size());

  tokens_[head] = token;
  chain_len_[head] = static_cast<u16>(buffers.size());

  // Place the head into the next avail-ring slot (not yet visible: the
  // idx write in publish() is the release point).
  const u16 slot = static_cast<u16>(
      (avail_idx_shadow_ + pending_publish_) % queue_size_);
  memory_->write_le16(addrs_.avail + avail_entry_offset(slot), head);
  ++pending_publish_;
  return head;
}

std::optional<u16> VirtqueueDriver::add_chain_indirect(
    std::span<const ChainBuffer> buffers, u64 token) {
  VFPGA_EXPECTS(!buffers.empty());
  VFPGA_EXPECTS(buffers.size() <= queue_size_);  // §2.7.5.3.1 table cap
  VFPGA_EXPECTS(negotiated_.has(feature::kRingIndirectDesc));
  if (num_free_ == 0) {
    return std::nullopt;
  }
  // Recycle the head's table across uses (a driver's slab of indirect
  // tables); grow it only when this chain needs more entries than any
  // previous occupant of the slot — steady-state adds are allocation-free.
  const u16 head = free_head_;
  if (indirect_capacity_[head] < buffers.size()) {
    indirect_table_[head] =
        memory_->allocate(kDescSize * buffers.size(), kDescAlign);
    indirect_capacity_[head] = static_cast<u32>(buffers.size());
  }
  const HostAddr table = indirect_table_[head];
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const ChainBuffer& b = buffers[i];
    const HostAddr entry = table + kDescSize * i;
    memory_->write_le64(entry + kDescAddrOffset, b.addr);
    memory_->write_le32(entry + kDescLenOffset, b.len);
    u16 flags = b.device_writable ? descflags::kWrite : u16{0};
    u16 next = 0;
    if (i + 1 < buffers.size()) {
      flags |= descflags::kNext;
      next = static_cast<u16>(i + 1);  // table-relative indices
    }
    memory_->write_le16(entry + kDescFlagsOffset, flags);
    memory_->write_le16(entry + kDescNextOffset, next);
  }

  // One ring descriptor points at the table.
  Descriptor d = read_descriptor(head);
  const u16 next_free = d.next;
  d.addr = table;
  d.len = static_cast<u32>(kDescSize * buffers.size());
  d.flags = descflags::kIndirect;
  d.next = 0;
  write_descriptor(head, d);
  free_head_ = next_free;
  --num_free_;

  tokens_[head] = token;
  chain_len_[head] = 1;  // only the indirect descriptor occupies the ring

  const u16 slot = static_cast<u16>(
      (avail_idx_shadow_ + pending_publish_) % queue_size_);
  memory_->write_le16(addrs_.avail + avail_entry_offset(slot), head);
  ++pending_publish_;
  return head;
}

u16 VirtqueueDriver::publish() {
  if (pending_publish_ == 0) {
    return 0;
  }
  const u16 published = pending_publish_;
  kick_threshold_idx_ = avail_idx_shadow_;
  avail_idx_shadow_ = static_cast<u16>(avail_idx_shadow_ + pending_publish_);
  pending_publish_ = 0;
  memory_->write_le16(addrs_.avail + kAvailIdxOffset, avail_idx_shadow_);
  return published;
}

bool VirtqueueDriver::should_kick() const {
  if (negotiated_.has(feature::kRingEventIdx)) {
    // Notify iff the device's avail_event has been passed by this
    // publish window (§2.7.10 wrap-safe comparison).
    const u16 event =
        memory_->read_le16(addrs_.used + avail_event_offset(queue_size_));
    const u16 new_idx = avail_idx_shadow_;
    const u16 old_idx = kick_threshold_idx_;
    return static_cast<u16>(new_idx - event - 1) <
           static_cast<u16>(new_idx - old_idx);
  }
  const u16 flags = memory_->read_le16(addrs_.used + kUsedFlagsOffset);
  return (flags & ringflags::kUsedNoNotify) == 0;
}

bool VirtqueueDriver::used_pending() const {
  return memory_->read_le16(addrs_.used + kUsedIdxOffset) != last_used_idx_;
}

std::optional<VirtqueueDriver::Completion> VirtqueueDriver::harvest_used() {
  if (!used_pending()) {
    return std::nullopt;
  }
  const u16 slot = static_cast<u16>(last_used_idx_ % queue_size_);
  const HostAddr entry = addrs_.used + used_entry_offset(slot);
  const u32 id = memory_->read_le32(entry);
  const u32 written = memory_->read_le32(entry + 4);
  if (id >= queue_size_) {
    // Corrupt used entry (Linux: "id %u out of range"): refuse to
    // harvest and mark the vring broken so the driver resets the device.
    mark_broken();
    return std::nullopt;
  }
  const u16 head = static_cast<u16>(id);
  const u16 count = chain_len_[head];
  if (count == 0) {
    mark_broken();  // completion for a chain we never exposed
    return std::nullopt;
  }
  ++last_used_idx_;

  // Recycle the chain onto the free list.
  u16 tail = head;
  for (u16 i = 1; i < count; ++i) {
    tail = read_descriptor(tail).next;
  }
  Descriptor tail_desc = read_descriptor(tail);
  tail_desc.next = free_head_;
  write_descriptor(tail, tail_desc);
  free_head_ = head;
  num_free_ = static_cast<u16>(num_free_ + count);
  chain_len_[head] = 0;

  return Completion{tokens_[head], written, head};
}

void VirtqueueDriver::set_used_event(u16 value) {
  memory_->write_le16(addrs_.avail + used_event_offset(queue_size_), value);
}

void VirtqueueDriver::save_state(migrate::StateWriter& w) const {
  w.put_u16(queue_size_);
  w.put_u64(negotiated_.bits());
  w.put_u64(addrs_.desc);
  w.put_u64(addrs_.avail);
  w.put_u64(addrs_.used);
  for (u64 t : tokens_) {
    w.put_u64(t);
  }
  for (u16 len : chain_len_) {
    w.put_u16(len);
  }
  for (HostAddr a : indirect_table_) {
    w.put_u64(a);
  }
  for (u32 c : indirect_capacity_) {
    w.put_u32(c);
  }
  w.put_u16(free_head_);
  w.put_u16(num_free_);
  w.put_u16(avail_idx_shadow_);
  w.put_u16(pending_publish_);
  w.put_u16(last_used_idx_);
  w.put_u16(kick_threshold_idx_);
  w.put_bool(broken());
}

void VirtqueueDriver::load_state(migrate::StateReader& r) {
  if (r.get_u16() != queue_size_) {
    r.fail();
    return;
  }
  negotiated_ = FeatureSet{r.get_u64()};
  addrs_.desc = r.get_u64();
  addrs_.avail = r.get_u64();
  addrs_.used = r.get_u64();
  for (u64& t : tokens_) {
    t = r.get_u64();
  }
  for (u16& len : chain_len_) {
    len = r.get_u16();
  }
  for (HostAddr& a : indirect_table_) {
    a = r.get_u64();
  }
  for (u32& c : indirect_capacity_) {
    c = r.get_u32();
  }
  free_head_ = r.get_u16();
  num_free_ = r.get_u16();
  avail_idx_shadow_ = r.get_u16();
  pending_publish_ = r.get_u16();
  last_used_idx_ = r.get_u16();
  kick_threshold_idx_ = r.get_u16();
  restore_broken(r.get_bool());
}

}  // namespace vfpga::virtio
