// Device-side split virtqueue engine.
//
// The FPGA's view of a virtqueue: every access to the descriptor table,
// avail ring, or used ring is a DMA transaction into host memory, timed
// by the PCIe link model. This is the data structure the paper's VirtIO
// controller (vfpga/core) builds its queue FSMs on: the device learns
// the ring addresses once at initialization (common config), after
// which a single doorbell write from the driver suffices to start a
// transfer — the §IV-A design-philosophy difference from the XDMA
// driver's per-transfer descriptor programming.
#pragma once

#include <vector>

#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/virtio/features.hpp"
#include "vfpga/virtio/ring_layout.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::virtio {

/// Value + the simulation time its DMA round trip completed.
template <typename T>
struct Timed {
  T value{};
  sim::SimTime done{};
};

/// Result of a device-side chain walk: the decoded descriptors, whether
/// they arrived through an indirect table (one table-sized DMA read
/// instead of one read per descriptor), and whether the walk tripped a
/// structural check — an indirect descriptor mid-chain, a table length
/// that is not a multiple of the descriptor size or exceeds the queue
/// size, or a chain that never terminates. A malformed walk is driver
/// (or fault-plane) misbehaviour the hardware FSM must survive, so it
/// is reported instead of asserted.
struct ChainFetch {
  std::vector<Descriptor> descriptors;
  bool via_indirect = false;
  bool error = false;
};

class VirtqueueDevice {
 public:
  explicit VirtqueueDevice(pcie::DmaPort port) : port_(port) {}

  /// Latch ring addresses/size (driver writes them via common config).
  void configure(const RingAddresses& addrs, u16 queue_size,
                 FeatureSet negotiated);
  [[nodiscard]] bool configured() const { return queue_size_ != 0; }
  [[nodiscard]] u16 size() const { return queue_size_; }
  [[nodiscard]] const RingAddresses& addresses() const { return addrs_; }

  /// DMA-read avail.idx (the device's poll after a notification).
  Timed<u16> fetch_avail_idx(sim::SimTime start) const;

  /// DMA-read the head index published in avail slot `avail_position`
  /// (an absolute, wrapping position — the device tracks its own
  /// consumption cursor).
  Timed<u16> fetch_avail_entry(u16 avail_position, sim::SimTime start) const;

  /// DMA-read one descriptor.
  Timed<Descriptor> fetch_descriptor(u16 index, sim::SimTime start) const;

  /// DMA-read `count` consecutive descriptors in a single burst — what a
  /// controller that speculatively fetches the whole table slice does.
  Timed<std::vector<Descriptor>> fetch_descriptors(u16 first, u16 count,
                                                   sim::SimTime start) const;

  /// Walk a chain starting at `head`, one DMA read per descriptor
  /// (the paper controller's behaviour); an INDIRECT head instead
  /// fetches its whole table in one read. Malformed structure is
  /// reported via ChainFetch::error, never asserted.
  Timed<ChainFetch> fetch_chain(u16 head, sim::SimTime start) const;

  /// DMA the contents of a device-readable chain out of host memory.
  /// Appends to `out`; returns completion time.
  sim::SimTime gather_payload(std::span<const Descriptor> chain, Bytes& out,
                              sim::SimTime start) const;

  /// Scatter `data` into the device-writable descriptors of `chain`
  /// (posted writes). Returns {issuer-free, delivered} of the last beat
  /// and the byte count written via `written_out`.
  pcie::DmaPort::WriteTiming scatter_payload(std::span<const Descriptor> chain,
                                             ConstByteSpan data,
                                             sim::SimTime start,
                                             u32& written_out) const;

  /// Publish one completion: write the used element for `head`, then the
  /// new used.idx (two posted writes, ordered). Advances the device's
  /// internal used cursor.
  pcie::DmaPort::WriteTiming push_used(u16 head, u32 written,
                                       sim::SimTime start);

  /// EVENT_IDX support: read the driver's used_event ("interrupt only
  /// after this idx") and write our avail_event ("kick only after").
  Timed<u16> read_used_event(sim::SimTime start) const;
  pcie::DmaPort::WriteTiming write_avail_event(u16 value,
                                               sim::SimTime start) const;

  /// Device-side cursors.
  [[nodiscard]] u16 next_avail_position() const { return avail_cursor_; }
  void advance_avail_cursor() { ++avail_cursor_; }
  [[nodiscard]] u16 used_idx() const { return used_idx_; }

  /// Snapshot/restore. load_state only rewrites internal registers —
  /// it must never touch host memory (the memory image is restored
  /// separately and already holds the ring bytes).
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  pcie::DmaPort port_;
  RingAddresses addrs_{};
  u16 queue_size_ = 0;
  FeatureSet negotiated_{};
  u16 avail_cursor_ = 0;  ///< next avail position to consume
  u16 used_idx_ = 0;      ///< next used idx to publish
};

}  // namespace vfpga::virtio
