// Ring-format-independent driver-side interface.
//
// The virtio-net front-end (and any other driver model) talks to its
// queues through this interface so the split and packed formats are
// interchangeable at negotiation time — exactly how Linux's virtio_ring
// hides vring_split/vring_packed behind one API.
#pragma once

#include <optional>
#include <span>

#include "vfpga/virtio/ring_layout.hpp"

namespace vfpga::virtio {

class DriverRing {
 public:
  DriverRing() = default;
  DriverRing(const DriverRing&) = delete;
  DriverRing& operator=(const DriverRing&) = delete;
  virtual ~DriverRing() = default;

  [[nodiscard]] virtual u16 size() const = 0;
  [[nodiscard]] virtual u16 free_descriptors() const = 0;

  /// Expose a buffer chain; returns an opaque handle (split: head
  /// descriptor index; packed: buffer id) or nullopt when full.
  virtual std::optional<u16> add_chain(std::span<const ChainBuffer> buffers,
                                       u64 token) = 0;

  /// Expose a chain through an indirect descriptor table: one ring slot
  /// regardless of chain length, and the device fetches the whole table
  /// in a single DMA read. Rings whose negotiated feature set lacks
  /// VIRTIO_F_INDIRECT_DESC fall back to a plain chain.
  virtual std::optional<u16> add_chain_indirect(
      std::span<const ChainBuffer> buffers, u64 token) {
    return add_chain(buffers, token);
  }

  /// Make everything added since the last publish device-visible.
  virtual u16 publish() = 0;

  /// Should the driver notify the device after the last publish?
  [[nodiscard]] virtual bool should_kick() const = 0;

  struct Completion {
    u64 token = 0;
    u32 written = 0;
    u16 handle = 0;
  };
  virtual std::optional<Completion> harvest() = 0;
  [[nodiscard]] virtual bool used_pending() const = 0;

  /// The ring observed a malformed completion (out-of-range id, zero
  /// chain length) and refused to harvest it — the vring is corrupt and
  /// the device must be reset, mirroring Linux's vq->broken flag.
  [[nodiscard]] bool broken() const { return broken_; }

  /// Re-enable device->driver interrupts after harvesting (split: write
  /// used_event; packed: write ENABLE into the driver event structure).
  virtual void enable_interrupts() = 0;
  /// Suppress device->driver interrupts (TX-completion style).
  virtual void disable_interrupts() = 0;

  /// Addresses for the common-config queue_desc/driver/device fields.
  /// Split: descriptor table / avail ring / used ring. Packed:
  /// descriptor ring / driver event struct / device event struct.
  [[nodiscard]] virtual RingAddresses ring_addresses() const = 0;

 protected:
  void mark_broken() { broken_ = true; }
  /// Snapshot restore only: reinstate the captured broken flag.
  void restore_broken(bool broken) { broken_ = broken; }

 private:
  bool broken_ = false;
};

}  // namespace vfpga::virtio
