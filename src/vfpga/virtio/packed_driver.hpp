// Driver-side packed virtqueue (VirtIO 1.2 §2.8).
//
// The front-end half of a packed ring: descriptors are written into the
// single descriptor ring in slot order with ownership encoded in the
// AVAIL/USED flag bits against a 1-bit wrap counter; completions come
// back in the same ring as device-written descriptors. Notification
// suppression uses the two 4-byte event structures in their flags-only
// mode (ENABLE/DISABLE).
#pragma once

#include <deque>
#include <vector>

#include "vfpga/mem/host_memory.hpp"
#include "vfpga/virtio/driver_ring.hpp"
#include "vfpga/virtio/features.hpp"
#include "vfpga/virtio/packed_layout.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::virtio {

class PackedVirtqueueDriver final : public DriverRing {
 public:
  /// Allocates the descriptor ring + both event structures in `memory`.
  /// `negotiated` must include VIRTIO_F_RING_PACKED.
  PackedVirtqueueDriver(mem::HostMemory& memory, u16 queue_size,
                        FeatureSet negotiated);

  // ---- DriverRing ---------------------------------------------------------------
  [[nodiscard]] u16 size() const override { return queue_size_; }
  [[nodiscard]] u16 free_descriptors() const override { return num_free_; }
  std::optional<u16> add_chain(std::span<const ChainBuffer> buffers,
                               u64 token) override;
  /// Expose a chain through an indirect table (§2.8.8, requires
  /// VIRTIO_F_INDIRECT_DESC): the buffers are written into a per-id
  /// recycled table and a single INDIRECT ring slot carries the whole
  /// chain — the device discovers any chain length in two DMA reads.
  std::optional<u16> add_chain_indirect(std::span<const ChainBuffer> buffers,
                                        u64 token) override;
  u16 publish() override;
  [[nodiscard]] bool should_kick() const override;
  std::optional<Completion> harvest() override;
  [[nodiscard]] bool used_pending() const override;
  void enable_interrupts() override;
  void disable_interrupts() override;
  [[nodiscard]] RingAddresses ring_addresses() const override {
    return addrs_;
  }

  // ---- packed-specific observability ---------------------------------------------
  [[nodiscard]] bool avail_wrap_counter() const { return avail_wrap_; }
  [[nodiscard]] bool used_wrap_counter() const { return used_wrap_; }
  [[nodiscard]] u16 next_avail_slot() const { return next_avail_slot_; }

  /// Snapshot/restore of the driver-RAM bookkeeping (id free list, wrap
  /// counters, cursors). Never writes host memory; fails the reader on a
  /// queue-size mismatch.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  struct PendingId {
    u16 id = 0;
    u16 descriptor_count = 0;
    u64 token = 0;
  };

  mem::HostMemory* memory_;
  u16 queue_size_;
  FeatureSet negotiated_;
  RingAddresses addrs_;  ///< desc = ring, avail = driver evt, used = device evt

  std::deque<u16> free_ids_;
  std::vector<u16> id_desc_count_;
  std::vector<u64> id_token_;
  std::vector<HostAddr> indirect_table_;  ///< recycled table per buffer id
  std::vector<u32> indirect_capacity_;    ///< entries each table can hold
  u16 num_free_;  ///< free descriptor slots

  u16 next_avail_slot_ = 0;
  bool avail_wrap_ = true;
  u16 next_used_slot_ = 0;
  bool used_wrap_ = true;
  u16 pending_publish_ = 0;
};

}  // namespace vfpga::virtio
