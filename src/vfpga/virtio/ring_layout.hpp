// Split virtqueue memory layout (VirtIO 1.2 §2.7).
//
// Byte-exact offsets of the three ring areas as they appear in host
// memory. Both the driver-side implementation (vfpga/hostos) and the
// device-side engine (vfpga/core) address ring memory exclusively
// through these helpers, so layout agreement between the two is a
// structural property, verified by round-trip tests.
//
//   struct virtq_desc  { le64 addr; le32 len; le16 flags; le16 next; }
//   struct virtq_avail { le16 flags; le16 idx; le16 ring[N]; le16 used_event; }
//   struct virtq_used_elem { le32 id; le32 len; }
//   struct virtq_used  { le16 flags; le16 idx; used_elem ring[N]; le16 avail_event; }
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::virtio {

inline constexpr u64 kDescSize = 16;
inline constexpr u64 kDescAddrOffset = 0;
inline constexpr u64 kDescLenOffset = 8;
inline constexpr u64 kDescFlagsOffset = 12;
inline constexpr u64 kDescNextOffset = 14;

inline constexpr u64 kAvailFlagsOffset = 0;
inline constexpr u64 kAvailIdxOffset = 2;
inline constexpr u64 kAvailRingOffset = 4;

inline constexpr u64 kUsedFlagsOffset = 0;
inline constexpr u64 kUsedIdxOffset = 2;
inline constexpr u64 kUsedRingOffset = 4;
inline constexpr u64 kUsedElemSize = 8;

/// Required alignments (§2.7: desc 16, avail 2, used 4).
inline constexpr u64 kDescAlign = 16;
inline constexpr u64 kAvailAlign = 2;
inline constexpr u64 kUsedAlign = 4;

[[nodiscard]] constexpr u64 desc_table_bytes(u16 queue_size) {
  return kDescSize * queue_size;
}

/// Avail ring size including the trailing used_event word (present when
/// VIRTIO_F_EVENT_IDX is negotiated; harmlessly allocated regardless).
[[nodiscard]] constexpr u64 avail_ring_bytes(u16 queue_size) {
  return kAvailRingOffset + 2ull * queue_size + 2;
}

[[nodiscard]] constexpr u64 used_ring_bytes(u16 queue_size) {
  return kUsedRingOffset + kUsedElemSize * queue_size + 2;
}

[[nodiscard]] constexpr u64 desc_offset(u16 index) {
  return kDescSize * index;
}

[[nodiscard]] constexpr u64 avail_entry_offset(u16 slot) {
  return kAvailRingOffset + 2ull * slot;
}

[[nodiscard]] constexpr u64 used_event_offset(u16 queue_size) {
  return kAvailRingOffset + 2ull * queue_size;
}

[[nodiscard]] constexpr u64 used_entry_offset(u16 slot) {
  return kUsedRingOffset + kUsedElemSize * slot;
}

[[nodiscard]] constexpr u64 avail_event_offset(u16 queue_size) {
  return kUsedRingOffset + kUsedElemSize * queue_size;
}

/// One in-memory descriptor, decoded.
struct Descriptor {
  u64 addr = 0;
  u32 len = 0;
  u16 flags = 0;
  u16 next = 0;
};

/// One used-ring element, decoded.
struct UsedElem {
  u32 id = 0;
  u32 len = 0;
};

/// One buffer in a chain a driver exposes to the device.
struct ChainBuffer {
  HostAddr addr = 0;
  u32 len = 0;
  bool device_writable = false;
};

/// Addresses of a queue's three areas in host memory.
struct RingAddresses {
  HostAddr desc = 0;
  HostAddr avail = 0;  ///< "driver area" in 1.x nomenclature
  HostAddr used = 0;   ///< "device area"
};

}  // namespace vfpga::virtio
