// VirtIO identity and status constants (VirtIO 1.2, OASIS csd01).
//
// Requirement (i) of §II-C in the paper: the FPGA must announce the
// correct vendor/device IDs at enumeration so the in-kernel virtio-pci
// driver binds to it. Modern (non-transitional) devices use vendor
// 0x1af4 and device ID 0x1040 + device-type.
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::virtio {

inline constexpr u16 kVirtioPciVendorId = 0x1af4;
inline constexpr u16 kVirtioPciModernDeviceBase = 0x1040;
/// Modern devices must present revision >= 1 (virtio-pci rejects rev 0
/// for device IDs >= 0x1040).
inline constexpr u8 kVirtioPciModernRevision = 0x01;

/// Device types (VirtIO 1.2 §5).
enum class DeviceType : u16 {
  Reserved = 0,
  Net = 1,
  Block = 2,
  Console = 3,
  Entropy = 4,
  Balloon = 5,
  Scsi = 8,
  Gpu = 16,
  Input = 18,
  Crypto = 20,
};

[[nodiscard]] constexpr u16 modern_pci_device_id(DeviceType type) {
  return static_cast<u16>(kVirtioPciModernDeviceBase +
                          static_cast<u16>(type));
}

/// Device status bits (§2.1).
namespace status {
inline constexpr u8 kAcknowledge = 1;
inline constexpr u8 kDriver = 2;
inline constexpr u8 kDriverOk = 4;
inline constexpr u8 kFeaturesOk = 8;
inline constexpr u8 kDeviceNeedsReset = 64;
inline constexpr u8 kFailed = 128;
}  // namespace status

/// Split-ring descriptor flags (§2.7.5).
namespace descflags {
inline constexpr u16 kNext = 1;      ///< chain continues in `next`
inline constexpr u16 kWrite = 2;     ///< device writes into this buffer
inline constexpr u16 kIndirect = 4;  ///< buffer holds an indirect table
}  // namespace descflags

/// Avail/used ring flags (§2.7.6/§2.7.8) — only meaningful when
/// VIRTIO_F_EVENT_IDX is *not* negotiated.
namespace ringflags {
inline constexpr u16 kAvailNoInterrupt = 1;  ///< driver: don't interrupt me
inline constexpr u16 kUsedNoNotify = 1;      ///< device: don't kick me
}  // namespace ringflags

/// "No MSI-X vector assigned" sentinel for common-config vector fields.
inline constexpr u16 kNoVector = 0xffff;

}  // namespace vfpga::virtio
