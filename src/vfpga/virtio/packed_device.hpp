// Device-side packed virtqueue engine (VirtIO 1.2 §2.8).
//
// The FPGA's half of a packed ring. The economics that matter over
// PCIe: discovering a buffer costs one 16-byte DMA read (the descriptor
// carries address, length, id, and ownership in one shot) and completing
// it costs one 16-byte posted write — versus three reads and two writes
// for the split format. The interrupt decision reads the driver event
// structure (flags-only mode).
#pragma once

#include <optional>
#include <vector>

#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/virtio/features.hpp"
#include "vfpga/virtio/packed_layout.hpp"
#include "vfpga/virtio/ring_layout.hpp"
#include "vfpga/virtio/virtqueue_device.hpp"

namespace vfpga::virtio {

class PackedVirtqueueDevice {
 public:
  explicit PackedVirtqueueDevice(pcie::DmaPort port) : port_(port) {}

  /// Latch the ring/event addresses (driver writes them via common
  /// config; `addrs.desc` = ring, `.avail` = driver event structure,
  /// `.used` = device event structure).
  void configure(const RingAddresses& addrs, u16 queue_size,
                 FeatureSet negotiated);
  [[nodiscard]] bool configured() const { return queue_size_ != 0; }
  [[nodiscard]] u16 size() const { return queue_size_; }

  /// DMA-read the descriptor at the device's avail cursor; available if
  /// its ownership bits match the device's wrap counter. The fetched
  /// descriptor is cached for the subsequent consume (the FSM keeps it
  /// in a register).
  virtio::Timed<bool> peek_available(sim::SimTime start);

  /// Consume the chain starting at the cached head descriptor: walk
  /// NEXT descriptors (consecutive slots, one DMA read each), advance
  /// the cursor. peek_available must have returned true.
  struct Chain {
    u16 id = 0;
    u16 descriptor_count = 0;  ///< ring slots consumed (indirect: 1)
    /// The chain arrived through an indirect table (§2.8.8): one
    /// table-sized DMA read instead of one read per descriptor.
    bool via_indirect = false;
    /// The walk tripped a structural check (INDIRECT mid-chain or with
    /// NEXT, bad table length, endless chain) — the controller must not
    /// touch the buffers and should enter the error state.
    bool error = false;
    std::vector<Descriptor> descriptors;  ///< format-independent view
  };
  virtio::Timed<Chain> consume_chain(sim::SimTime start);

  /// Complete a chain: one posted 16-byte descriptor write with the
  /// USED ownership bits; the used cursor skips the chain length.
  pcie::DmaPort::WriteTiming push_used(const Chain& chain, u32 written,
                                       sim::SimTime start);

  /// DMA-read the driver event structure's flags (interrupt decision).
  virtio::Timed<u16> read_driver_event_flags(sim::SimTime start) const;

  /// Posted write of the device event structure's flags (kick control).
  pcie::DmaPort::WriteTiming write_device_event_flags(u16 value,
                                                      sim::SimTime start);

  [[nodiscard]] bool avail_wrap() const { return avail_wrap_; }

  /// Snapshot/restore of cursors, wrap counters, and the cached head
  /// descriptor register. Never touches host memory.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  pcie::DmaPort port_;
  RingAddresses addrs_{};
  u16 queue_size_ = 0;

  u16 avail_cursor_ = 0;
  bool avail_wrap_ = true;
  u16 used_cursor_ = 0;
  bool used_wrap_ = true;
  std::optional<packed::PackedDescriptor> cached_head_;
};

}  // namespace vfpga::virtio
