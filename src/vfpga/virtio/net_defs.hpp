// virtio-net wire and configuration structures (VirtIO 1.2 §5.1).
//
// The paper's test device type: the FPGA presents a network device, the
// host routes UDP packets to it through the normal socket API, and each
// packet crossing a virtqueue is prefixed with a virtio_net_hdr. The
// device-specific configuration structure (MAC, status, MTU, ...) is the
// "main modification to the design presented in [14]" (§III-A) — the
// controller maps it at the Device cfg_type capability.
#pragma once

#include <array>

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::virtio::net {

/// virtio_net_hdr (§5.1.6): prefixed to every frame in both directions.
/// With VERSION_1 the 12-byte layout (including num_buffers) is always
/// used regardless of MRG_RXBUF.
struct NetHeader {
  u8 flags = 0;
  u8 gso_type = 0;
  u16 hdr_len = 0;
  u16 gso_size = 0;
  u16 csum_start = 0;
  u16 csum_offset = 0;
  u16 num_buffers = 0;

  static constexpr u64 kSize = 12;
  /// Byte offset of num_buffers within the encoded header — the field a
  /// MRG_RXBUF device patches after it knows how many RX buffers the
  /// frame consumed (§5.1.6.4).
  static constexpr u64 kNumBuffersOffset = 10;

  /// flags bits.
  static constexpr u8 kNeedsCsum = 1;   ///< csum_start/offset are valid
  static constexpr u8 kDataValid = 2;   ///< device validated the checksum
  /// gso_type values.
  static constexpr u8 kGsoNone = 0;
  static constexpr u8 kGsoTcpV4 = 1;  ///< VIRTIO_NET_HDR_GSO_TCPV4
  static constexpr u8 kGsoUdp = 3;    ///< VIRTIO_NET_HDR_GSO_UDP

  void encode(ByteSpan out) const;
  static NetHeader decode(ConstByteSpan raw);
};

/// virtio_net_config (§5.1.4) — the device-specific structure.
struct NetConfigLayout {
  static constexpr u32 kMacOffset = 0;       // 6 bytes
  static constexpr u32 kStatusOffset = 6;    // le16
  static constexpr u32 kMaxPairsOffset = 8;  // le16
  static constexpr u32 kMtuOffset = 10;      // le16
  static constexpr u32 kSpeedOffset = 12;    // le32
  static constexpr u32 kDuplexOffset = 16;   // u8
  static constexpr u32 kSize = 20;
};

/// Status field bits.
inline constexpr u16 kNetStatusLinkUp = 1;
inline constexpr u16 kNetStatusAnnounce = 2;

/// Queue numbering for a single-pair net device (§5.1.2): 0=RX, 1=TX,
/// control queue last when negotiated.
inline constexpr u16 kRxQueue = 0;
inline constexpr u16 kTxQueue = 1;
inline constexpr u16 kCtrlQueue = 2;

/// Multiqueue numbering (§5.1.2 with VIRTIO_NET_F_MQ): receiveq(N) is
/// queue 2N, transmitq(N) is queue 2N+1 and the control queue sits after
/// the last pair the device supports (not the last pair negotiated).
[[nodiscard]] constexpr u16 rx_queue_index(u16 pair) {
  return static_cast<u16>(2 * pair);
}
[[nodiscard]] constexpr u16 tx_queue_index(u16 pair) {
  return static_cast<u16>(2 * pair + 1);
}
[[nodiscard]] constexpr u16 ctrl_queue_index(u16 max_pairs) {
  return static_cast<u16>(2 * max_pairs);
}
[[nodiscard]] constexpr bool is_tx_queue(u16 queue) { return (queue & 1u) != 0; }
[[nodiscard]] constexpr u16 queue_pair_of(u16 queue) {
  return static_cast<u16>(queue / 2);
}

/// Control-virtqueue wire format (§5.1.6.5): a device-readable header
/// {class, command} followed by command data, completed by one
/// device-writable ack byte.
inline constexpr u8 kCtrlClassMq = 4;        ///< VIRTIO_NET_CTRL_MQ
inline constexpr u8 kCtrlMqVqPairsSet = 0;   ///< ..._MQ_VQ_PAIRS_SET
inline constexpr u8 kCtrlClassNotfCoal = 6;  ///< VIRTIO_NET_CTRL_NOTF_COAL
inline constexpr u8 kCtrlNotfCoalRxSet = 1;  ///< ..._NOTF_COAL_RX_SET
inline constexpr u8 kCtrlOk = 0;             ///< VIRTIO_NET_OK
inline constexpr u8 kCtrlErr = 1;            ///< VIRTIO_NET_ERR
/// virtio_net_ctrl_coal_rx command data (§5.1.6.5.6.1): two le32 fields.
struct CoalRxParams {
  u32 max_usecs = 0;    ///< holdoff window before an RX interrupt fires
  u32 max_packets = 0;  ///< frame count that fires the interrupt early
  static constexpr u64 kSize = 8;
};
/// Legal bounds for VQ_PAIRS_SET argument (§5.1.6.5.5).
inline constexpr u16 kMqPairsMin = 1;
inline constexpr u16 kMqPairsMax = 0x8000;

inline void NetHeader::encode(ByteSpan out) const {
  VFPGA_EXPECTS(out.size() >= kSize);
  out[0] = flags;
  out[1] = gso_type;
  store_le16(out, 2, hdr_len);
  store_le16(out, 4, gso_size);
  store_le16(out, 6, csum_start);
  store_le16(out, 8, csum_offset);
  store_le16(out, 10, num_buffers);
}

inline NetHeader NetHeader::decode(ConstByteSpan raw) {
  VFPGA_EXPECTS(raw.size() >= kSize);
  NetHeader h;
  h.flags = raw[0];
  h.gso_type = raw[1];
  h.hdr_len = load_le16(raw, 2);
  h.gso_size = load_le16(raw, 4);
  h.csum_start = load_le16(raw, 6);
  h.csum_offset = load_le16(raw, 8);
  h.num_buffers = load_le16(raw, 10);
  return h;
}

}  // namespace vfpga::virtio::net
