// virtio-net wire and configuration structures (VirtIO 1.2 §5.1).
//
// The paper's test device type: the FPGA presents a network device, the
// host routes UDP packets to it through the normal socket API, and each
// packet crossing a virtqueue is prefixed with a virtio_net_hdr. The
// device-specific configuration structure (MAC, status, MTU, ...) is the
// "main modification to the design presented in [14]" (§III-A) — the
// controller maps it at the Device cfg_type capability.
#pragma once

#include <array>

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::virtio::net {

/// virtio_net_hdr (§5.1.6): prefixed to every frame in both directions.
/// With VERSION_1 the 12-byte layout (including num_buffers) is always
/// used regardless of MRG_RXBUF.
struct NetHeader {
  u8 flags = 0;
  u8 gso_type = 0;
  u16 hdr_len = 0;
  u16 gso_size = 0;
  u16 csum_start = 0;
  u16 csum_offset = 0;
  u16 num_buffers = 0;

  static constexpr u64 kSize = 12;

  /// flags bits.
  static constexpr u8 kNeedsCsum = 1;   ///< csum_start/offset are valid
  static constexpr u8 kDataValid = 2;   ///< device validated the checksum
  /// gso_type values.
  static constexpr u8 kGsoNone = 0;

  void encode(ByteSpan out) const;
  static NetHeader decode(ConstByteSpan raw);
};

/// virtio_net_config (§5.1.4) — the device-specific structure.
struct NetConfigLayout {
  static constexpr u32 kMacOffset = 0;       // 6 bytes
  static constexpr u32 kStatusOffset = 6;    // le16
  static constexpr u32 kMaxPairsOffset = 8;  // le16
  static constexpr u32 kMtuOffset = 10;      // le16
  static constexpr u32 kSpeedOffset = 12;    // le32
  static constexpr u32 kDuplexOffset = 16;   // u8
  static constexpr u32 kSize = 20;
};

/// Status field bits.
inline constexpr u16 kNetStatusLinkUp = 1;
inline constexpr u16 kNetStatusAnnounce = 2;

/// Queue numbering for a single-pair net device (§5.1.2): 0=RX, 1=TX,
/// control queue last when negotiated.
inline constexpr u16 kRxQueue = 0;
inline constexpr u16 kTxQueue = 1;
inline constexpr u16 kCtrlQueue = 2;

inline void NetHeader::encode(ByteSpan out) const {
  VFPGA_EXPECTS(out.size() >= kSize);
  out[0] = flags;
  out[1] = gso_type;
  store_le16(out, 2, hdr_len);
  store_le16(out, 4, gso_size);
  store_le16(out, 6, csum_start);
  store_le16(out, 8, csum_offset);
  store_le16(out, 10, num_buffers);
}

inline NetHeader NetHeader::decode(ConstByteSpan raw) {
  VFPGA_EXPECTS(raw.size() >= kSize);
  NetHeader h;
  h.flags = raw[0];
  h.gso_type = raw[1];
  h.hdr_len = load_le16(raw, 2);
  h.gso_size = load_le16(raw, 4);
  h.csum_start = load_le16(raw, 6);
  h.csum_offset = load_le16(raw, 8);
  h.num_buffers = load_le16(raw, 10);
  return h;
}

}  // namespace vfpga::virtio::net
