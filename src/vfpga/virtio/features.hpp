// VirtIO feature bits and the negotiation-set helper.
//
// Feature negotiation is one of VirtIO's headline properties (§I of the
// paper: "the device and driver can use feature bits to determine the
// subset of supported features to ensure compatibility"). FeatureSet is
// a thin strongly-typed u64 bitset with set-algebra helpers used by both
// the device model and the driver models.
#pragma once

#include <string>

#include "vfpga/common/types.hpp"

namespace vfpga::virtio {

/// Device-independent feature bits (VirtIO 1.2 §6).
namespace feature {
inline constexpr u32 kRingIndirectDesc = 28;
inline constexpr u32 kRingEventIdx = 29;
inline constexpr u32 kVersion1 = 32;
inline constexpr u32 kAccessPlatform = 33;
inline constexpr u32 kRingPacked = 34;
inline constexpr u32 kNotificationData = 38;

// virtio-net feature bits (§5.1.3).
namespace net {
inline constexpr u32 kCsum = 0;        ///< device handles partial csum on TX
inline constexpr u32 kGuestCsum = 1;   ///< driver handles partial csum on RX
inline constexpr u32 kMtu = 3;         ///< device reports maximum MTU
inline constexpr u32 kMac = 5;         ///< device has a MAC address in config
inline constexpr u32 kGuestTso4 = 7;   ///< driver accepts coalesced TCPv4
inline constexpr u32 kGuestUfo = 10;   ///< driver accepts coalesced UDP
inline constexpr u32 kHostTso4 = 11;   ///< device segments TCPv4 (TSO)
inline constexpr u32 kHostUfo = 14;    ///< device segments UDP (USO/UFO)
inline constexpr u32 kMrgRxbuf = 15;   ///< driver can merge receive buffers
inline constexpr u32 kStatus = 16;     ///< config status field is valid
inline constexpr u32 kCtrlVq = 17;     ///< control virtqueue present
inline constexpr u32 kMq = 22;         ///< multiqueue with automatic steering
inline constexpr u32 kNotfCoal = 53;   ///< notification coalescing via ctrl vq
inline constexpr u32 kSpeedDuplex = 63;
}  // namespace net

// virtio-blk feature bits (§5.2.3).
namespace blk {
inline constexpr u32 kSizeMax = 1;  ///< size_max config field is valid
inline constexpr u32 kSegMax = 2;   ///< seg_max config field is valid
inline constexpr u32 kRo = 5;       ///< read-only device (unimplemented)
inline constexpr u32 kBlkSize = 6;
inline constexpr u32 kFlush = 9;
inline constexpr u32 kMq = 12;      ///< num_queues config field is valid
inline constexpr u32 kDiscard = 13; ///< DISCARD requests + config fields
inline constexpr u32 kWriteZeroes = 14;  ///< WRITE_ZEROES (unimplemented)
}  // namespace blk

// virtio-console feature bits (§5.3.3).
namespace console {
inline constexpr u32 kSize = 0;       ///< console size in config
inline constexpr u32 kMultiport = 1;  ///< multiple ports + control queue
}  // namespace console
}  // namespace feature

class FeatureSet {
 public:
  constexpr FeatureSet() = default;
  constexpr explicit FeatureSet(u64 bits) : bits_(bits) {}

  [[nodiscard]] constexpr u64 bits() const { return bits_; }
  [[nodiscard]] constexpr bool has(u32 bit) const {
    return (bits_ & (1ull << bit)) != 0;
  }
  constexpr FeatureSet& set(u32 bit) {
    bits_ |= 1ull << bit;
    return *this;
  }
  constexpr FeatureSet& clear(u32 bit) {
    bits_ &= ~(1ull << bit);
    return *this;
  }

  /// Set intersection: what both sides support.
  [[nodiscard]] constexpr FeatureSet intersect(FeatureSet other) const {
    return FeatureSet{bits_ & other.bits_};
  }
  /// True when every bit in `this` is offered by `other`.
  [[nodiscard]] constexpr bool subset_of(FeatureSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  /// 32-bit windows as exposed through device_feature_select.
  [[nodiscard]] constexpr u32 window(u32 select) const {
    return select == 0 ? static_cast<u32>(bits_ & 0xffffffffull)
         : select == 1 ? static_cast<u32>(bits_ >> 32)
                       : 0u;
  }
  constexpr void set_window(u32 select, u32 value) {
    if (select == 0) {
      bits_ = (bits_ & ~0xffffffffull) | value;
    } else if (select == 1) {
      bits_ = (bits_ & 0xffffffffull) | (static_cast<u64>(value) << 32);
    }
  }

  friend constexpr bool operator==(FeatureSet, FeatureSet) = default;

 private:
  u64 bits_ = 0;
};

/// Human-readable dump for logs/examples ("VERSION_1|MAC|STATUS|...").
[[nodiscard]] std::string describe_net_features(FeatureSet features);

}  // namespace vfpga::virtio
