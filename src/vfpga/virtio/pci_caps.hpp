// VirtIO-over-PCI capability structures (VirtIO 1.2 §4.1.4).
//
// Requirement (ii)+(iii) of the paper's §II-C: the FPGA must implement
// the VirtIO configuration structures in a BAR and advertise their
// locations through vendor-specific PCI capabilities. This header
// defines the capability wire format, a builder the FPGA-side device
// uses to populate its config space, and the parser the host-side
// virtio-pci driver model uses to locate the structures — the same walk
// Linux's vp_modern_probe performs.
#pragma once

#include <optional>

#include "vfpga/pcie/config_space.hpp"

namespace vfpga::virtio {

/// virtio_pci_cap.cfg_type values.
enum class CfgType : u8 {
  Common = 1,
  Notify = 2,
  Isr = 3,
  Device = 4,
  Pci = 5,
};

/// Location of one configuration structure inside a BAR.
struct StructureLocation {
  u8 bar = 0;
  u32 offset = 0;
  u32 length = 0;
};

/// Where the device placed all of its VirtIO structures.
struct VirtioPciLayout {
  StructureLocation common;
  StructureLocation notify;
  u32 notify_off_multiplier = 0;
  StructureLocation isr;
  StructureLocation device_specific;

  [[nodiscard]] bool complete() const {
    return common.length != 0 && notify.length != 0 && isr.length != 0;
  }
};

/// Add the four VirtIO vendor-specific capabilities describing `layout`
/// to `config`.
void add_virtio_capabilities(pcie::ConfigSpace& config,
                             const VirtioPciLayout& layout);

/// Walk the capability chain and reconstruct the layout; nullopt when
/// the device is not VirtIO-modern-capable.
std::optional<VirtioPciLayout> parse_virtio_capabilities(
    const pcie::ConfigSpace& config);

/// Register offsets inside the common configuration structure
/// (virtio_pci_common_cfg, §4.1.4.3).
namespace commoncfg {
inline constexpr u32 kDeviceFeatureSelect = 0x00;
inline constexpr u32 kDeviceFeature = 0x04;
inline constexpr u32 kDriverFeatureSelect = 0x08;
inline constexpr u32 kDriverFeature = 0x0c;
inline constexpr u32 kMsixConfig = 0x10;
inline constexpr u32 kNumQueues = 0x12;
inline constexpr u32 kDeviceStatus = 0x14;
inline constexpr u32 kConfigGeneration = 0x15;
inline constexpr u32 kQueueSelect = 0x16;
inline constexpr u32 kQueueSize = 0x18;
inline constexpr u32 kQueueMsixVector = 0x1a;
inline constexpr u32 kQueueEnable = 0x1c;
inline constexpr u32 kQueueNotifyOff = 0x1e;
inline constexpr u32 kQueueDesc = 0x20;
inline constexpr u32 kQueueDriver = 0x28;
inline constexpr u32 kQueueDevice = 0x30;
inline constexpr u32 kSize = 0x38;
}  // namespace commoncfg

/// ISR status bits (§4.1.4.5) — used with INTx/polling; with MSI-X per
/// the spec the ISR field is unused but must still exist.
namespace isr {
inline constexpr u8 kQueueInterrupt = 1;
inline constexpr u8 kConfigInterrupt = 2;
}  // namespace isr

}  // namespace vfpga::virtio
