// Device-status state machine and feature negotiation rules.
//
// VirtIO initialization follows a strict sequence (§3.1.1):
//   RESET -> ACKNOWLEDGE -> DRIVER -> (feature exchange) -> FEATURES_OK
//         -> (queue setup) -> DRIVER_OK.
// The device must reject FEATURES_OK when the driver selected features
// it did not offer. Both the FPGA-side controller and the host-side
// driver models drive their halves of this machine; the tracker below
// validates transitions so protocol violations abort loudly instead of
// producing silent nonsense timings.
#pragma once

#include <string>

#include "vfpga/virtio/features.hpp"
#include "vfpga/virtio/ids.hpp"

namespace vfpga::virtio {

class DeviceStatusMachine {
 public:
  /// Apply a driver write to the status register. Returns the resulting
  /// status byte (the device may refuse FEATURES_OK by leaving the bit
  /// clear, per §3.1.1 step 5).
  u8 driver_writes_status(u8 new_status, FeatureSet offered,
                          FeatureSet driver_selected);

  /// Writing zero resets the device.
  void reset();

  /// Device-internal error (§2.1.2): set DEVICE_NEEDS_RESET. The bit
  /// stays latched until the driver writes zero to reset the device.
  void device_error() { status_ |= status::kDeviceNeedsReset; }

  [[nodiscard]] u8 status() const { return status_; }
  [[nodiscard]] bool needs_reset() const {
    return (status_ & status::kDeviceNeedsReset) != 0;
  }
  [[nodiscard]] bool features_accepted() const {
    return (status_ & status::kFeaturesOk) != 0;
  }
  [[nodiscard]] bool live() const {
    return (status_ & status::kDriverOk) != 0;
  }
  [[nodiscard]] bool failed() const {
    return (status_ & status::kFailed) != 0;
  }

  /// Snapshot restore: reinstate a previously captured status byte
  /// without replaying the init sequence's transition checks.
  void restore_status(u8 status_byte) { status_ = status_byte; }

 private:
  u8 status_ = 0;
};

/// The legality rule used by the device when the driver sets
/// FEATURES_OK: every driver-selected bit must have been offered, and a
/// modern driver must select VERSION_1.
[[nodiscard]] bool feature_selection_acceptable(FeatureSet offered,
                                                FeatureSet selected);

/// Render a status byte for logs: "ACKNOWLEDGE|DRIVER|FEATURES_OK".
[[nodiscard]] std::string describe_status(u8 status_byte);

}  // namespace vfpga::virtio
