#include "vfpga/virtio/feature_negotiation.hpp"

namespace vfpga::virtio {

bool feature_selection_acceptable(FeatureSet offered, FeatureSet selected) {
  if (!selected.subset_of(offered)) {
    return false;
  }
  return selected.has(feature::kVersion1);
}

u8 DeviceStatusMachine::driver_writes_status(u8 new_status, FeatureSet offered,
                                             FeatureSet driver_selected) {
  if (new_status == 0) {
    reset();
    return status_;
  }
  // Status bits accumulate; a driver never clears individual bits.
  u8 accepted = status_ | new_status;
  if ((new_status & status::kFeaturesOk) != 0 &&
      (status_ & status::kFeaturesOk) == 0) {
    if (!feature_selection_acceptable(offered, driver_selected)) {
      accepted = static_cast<u8>(accepted & ~status::kFeaturesOk);
    }
  }
  status_ = accepted;
  return status_;
}

void DeviceStatusMachine::reset() { status_ = 0; }

std::string describe_status(u8 status_byte) {
  if (status_byte == 0) {
    return "RESET";
  }
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) {
      out += '|';
    }
    out += name;
  };
  if (status_byte & status::kAcknowledge) append("ACKNOWLEDGE");
  if (status_byte & status::kDriver) append("DRIVER");
  if (status_byte & status::kFeaturesOk) append("FEATURES_OK");
  if (status_byte & status::kDriverOk) append("DRIVER_OK");
  if (status_byte & status::kDeviceNeedsReset) append("NEEDS_RESET");
  if (status_byte & status::kFailed) append("FAILED");
  return out;
}

std::string describe_net_features(FeatureSet features) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) {
      out += '|';
    }
    out += name;
  };
  if (features.has(feature::kVersion1)) append("VERSION_1");
  if (features.has(feature::kRingEventIdx)) append("RING_EVENT_IDX");
  if (features.has(feature::kRingIndirectDesc)) append("RING_INDIRECT_DESC");
  if (features.has(feature::net::kCsum)) append("CSUM");
  if (features.has(feature::net::kGuestCsum)) append("GUEST_CSUM");
  if (features.has(feature::net::kMtu)) append("MTU");
  if (features.has(feature::net::kMac)) append("MAC");
  if (features.has(feature::net::kGuestTso4)) append("GUEST_TSO4");
  if (features.has(feature::net::kGuestUfo)) append("GUEST_UFO");
  if (features.has(feature::net::kHostTso4)) append("HOST_TSO4");
  if (features.has(feature::net::kHostUfo)) append("HOST_UFO");
  if (features.has(feature::net::kMrgRxbuf)) append("MRG_RXBUF");
  if (features.has(feature::net::kStatus)) append("STATUS");
  if (features.has(feature::net::kCtrlVq)) append("CTRL_VQ");
  if (features.has(feature::net::kNotfCoal)) append("NOTF_COAL");
  return out.empty() ? "(none)" : out;
}

}  // namespace vfpga::virtio
