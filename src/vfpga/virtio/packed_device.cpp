#include "vfpga/virtio/packed_device.hpp"

#include <algorithm>
#include <array>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/virtio/ids.hpp"

namespace vfpga::virtio {

namespace pk = packed;

namespace {

/// Descriptors fetched per speculative continuation read: one 64-byte
/// cacheline of the descriptor ring.
constexpr u16 kDescFetchWindow = 4;

pk::PackedDescriptor decode(ConstByteSpan raw) {
  VFPGA_EXPECTS(raw.size() >= pk::kDescSize);
  pk::PackedDescriptor d;
  d.addr = load_le64(raw, pk::kDescAddrOffset);
  d.len = load_le32(raw, pk::kDescLenOffset);
  d.id = load_le16(raw, pk::kDescIdOffset);
  d.desc_flags = load_le16(raw, pk::kDescFlagsOffset);
  return d;
}

}  // namespace

void PackedVirtqueueDevice::configure(const RingAddresses& addrs,
                                      u16 queue_size, FeatureSet negotiated) {
  VFPGA_EXPECTS(queue_size != 0);
  VFPGA_EXPECTS(negotiated.has(feature::kRingPacked));
  addrs_ = addrs;
  queue_size_ = queue_size;
  avail_cursor_ = 0;
  avail_wrap_ = true;
  used_cursor_ = 0;
  used_wrap_ = true;
  cached_head_.reset();
}

virtio::Timed<bool> PackedVirtqueueDevice::peek_available(sim::SimTime start) {
  VFPGA_EXPECTS(configured());
  std::array<u8, pk::kDescSize> raw{};
  const sim::SimTime done = port_.read(
      start, addrs_.desc + pk::desc_offset(avail_cursor_), raw);
  const pk::PackedDescriptor desc = decode(raw);
  const bool available = pk::is_available(desc.desc_flags, avail_wrap_);
  if (available) {
    cached_head_ = desc;
  } else {
    cached_head_.reset();
  }
  return virtio::Timed<bool>{available, done};
}

virtio::Timed<PackedVirtqueueDevice::Chain>
PackedVirtqueueDevice::consume_chain(sim::SimTime start) {
  VFPGA_EXPECTS(cached_head_.has_value());
  Chain chain;
  sim::SimTime t = start;
  pk::PackedDescriptor current = *cached_head_;
  cached_head_.reset();

  // Speculative window for chain continuations: packed chains occupy
  // consecutive ring slots by construction, so the FSM fetches follow-on
  // descriptors a cacheline at a time instead of one dependent read per
  // slot. The head was already read by peek_available, so
  // one-descriptor chains see an unchanged transaction stream.
  Bytes window;
  std::size_t window_pos = 0;

  for (u16 guard = 0; guard < queue_size_; ++guard) {
    if ((current.desc_flags & pk::flags::kIndirect) != 0) {
      // §2.8.8: the descriptor points at a table of packed descriptors;
      // the whole table arrives in one DMA read. An INDIRECT descriptor
      // must be the chain's only ring slot (never combined with NEXT),
      // its length a whole number of entries within the queue size.
      chain.via_indirect = true;
      chain.id = current.id;
      ++chain.descriptor_count;
      ++avail_cursor_;
      if (avail_cursor_ == queue_size_) {
        avail_cursor_ = 0;
        avail_wrap_ = !avail_wrap_;
      }
      const u32 len = current.len;
      if (!chain.descriptors.empty() ||
          (current.desc_flags & pk::flags::kNext) != 0 || len == 0 ||
          len % pk::kDescSize != 0 || len / pk::kDescSize > queue_size_) {
        chain.error = true;
        return virtio::Timed<Chain>{std::move(chain), t};
      }
      Bytes raw(len);
      t = port_.read(t, current.addr, raw);
      const u16 count = static_cast<u16>(len / pk::kDescSize);
      for (u16 i = 0; i < count; ++i) {
        const pk::PackedDescriptor entry = decode(ConstByteSpan{raw}.subspan(
            static_cast<std::size_t>(i) * pk::kDescSize));
        Descriptor view;
        view.addr = entry.addr;
        view.len = entry.len;
        view.flags = (entry.desc_flags & pk::flags::kWrite) != 0
                         ? descflags::kWrite
                         : u16{0};
        chain.descriptors.push_back(view);
      }
      return virtio::Timed<Chain>{std::move(chain), t};
    }
    Descriptor view;
    view.addr = current.addr;
    view.len = current.len;
    view.flags = (current.desc_flags & pk::flags::kWrite) != 0
                     ? descflags::kWrite
                     : u16{0};
    chain.descriptors.push_back(view);
    chain.id = current.id;  // the last descriptor's id is authoritative
    ++chain.descriptor_count;
    ++avail_cursor_;
    if (avail_cursor_ == queue_size_) {
      avail_cursor_ = 0;
      avail_wrap_ = !avail_wrap_;
    }
    if ((current.desc_flags & pk::flags::kNext) == 0) {
      return virtio::Timed<Chain>{std::move(chain), t};
    }
    // Chains occupy consecutive slots: fetch the continuation, pulling
    // a fresh window when the previous one is exhausted (windows never
    // span the ring-wrap boundary).
    if (window_pos >= window.size()) {
      const u16 count = std::min<u16>(
          kDescFetchWindow, static_cast<u16>(queue_size_ - avail_cursor_));
      window.resize(static_cast<std::size_t>(count) * pk::kDescSize);
      t = port_.read(t, addrs_.desc + pk::desc_offset(avail_cursor_),
                     ByteSpan{window});
      window_pos = 0;
    }
    current = decode(ConstByteSpan{window}.subspan(window_pos));
    window_pos += pk::kDescSize;
  }
  chain.error = true;  // chain longer than the queue: corrupted ring
  return virtio::Timed<Chain>{std::move(chain), t};
}

pcie::DmaPort::WriteTiming PackedVirtqueueDevice::push_used(
    const Chain& chain, u32 written, sim::SimTime start) {
  VFPGA_EXPECTS(configured());
  VFPGA_EXPECTS(chain.descriptor_count > 0);
  std::array<u8, pk::kDescSize> raw{};
  store_le64(raw, pk::kDescAddrOffset, 0);
  store_le32(ByteSpan{raw}, pk::kDescLenOffset, written);
  store_le16(ByteSpan{raw}, pk::kDescIdOffset, chain.id);
  store_le16(ByteSpan{raw}, pk::kDescFlagsOffset,
             pk::used_flags(used_wrap_));
  const auto timing = port_.write(
      start, addrs_.desc + pk::desc_offset(used_cursor_), raw);

  // §2.8.7: one used descriptor per chain; skip ahead by its length.
  for (u16 i = 0; i < chain.descriptor_count; ++i) {
    ++used_cursor_;
    if (used_cursor_ == queue_size_) {
      used_cursor_ = 0;
      used_wrap_ = !used_wrap_;
    }
  }
  return timing;
}

virtio::Timed<u16> PackedVirtqueueDevice::read_driver_event_flags(
    sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  std::array<u8, 2> raw{};
  const sim::SimTime done =
      port_.read(start, addrs_.avail + pk::event::kFlagsOffset, raw);
  return virtio::Timed<u16>{load_le16(raw), done};
}

pcie::DmaPort::WriteTiming PackedVirtqueueDevice::write_device_event_flags(
    u16 value, sim::SimTime start) {
  VFPGA_EXPECTS(configured());
  std::array<u8, 2> raw{};
  store_le16(raw, 0, value);
  return port_.write(start, addrs_.used + pk::event::kFlagsOffset, raw);
}

void PackedVirtqueueDevice::save_state(migrate::StateWriter& w) const {
  w.put_u64(addrs_.desc);
  w.put_u64(addrs_.avail);
  w.put_u64(addrs_.used);
  w.put_u16(queue_size_);
  w.put_u16(avail_cursor_);
  w.put_bool(avail_wrap_);
  w.put_u16(used_cursor_);
  w.put_bool(used_wrap_);
  w.put_bool(cached_head_.has_value());
  if (cached_head_.has_value()) {
    w.put_u64(cached_head_->addr);
    w.put_u32(cached_head_->len);
    w.put_u16(cached_head_->id);
    w.put_u16(cached_head_->desc_flags);
  }
}

void PackedVirtqueueDevice::load_state(migrate::StateReader& r) {
  addrs_.desc = r.get_u64();
  addrs_.avail = r.get_u64();
  addrs_.used = r.get_u64();
  queue_size_ = r.get_u16();
  avail_cursor_ = r.get_u16();
  avail_wrap_ = r.get_bool();
  used_cursor_ = r.get_u16();
  used_wrap_ = r.get_bool();
  cached_head_.reset();
  if (r.get_bool()) {
    pk::PackedDescriptor d;
    d.addr = r.get_u64();
    d.len = r.get_u32();
    d.id = r.get_u16();
    d.desc_flags = r.get_u16();
    cached_head_ = d;
  }
}

}  // namespace vfpga::virtio
