// Driver-side split virtqueue.
//
// The front-end half of a virtqueue as a kernel driver implements it
// (Linux's vring): a free-descriptor list, exposing buffer chains via
// the avail ring, harvesting completions from the used ring, and the
// VIRTIO_F_EVENT_IDX notification-suppression protocol. All ring state
// lives in simulated host memory — the device side reads the very same
// bytes over its DMA port — while bookkeeping (free list, tokens) lives
// in driver RAM, exactly as in a real kernel.
//
// This class is purely functional; the time the driver *spends* doing
// these operations is charged by the cost model in vfpga/hostos.
#pragma once

#include <optional>
#include <vector>

#include "vfpga/mem/host_memory.hpp"
#include "vfpga/virtio/driver_ring.hpp"
#include "vfpga/virtio/features.hpp"
#include "vfpga/virtio/ring_layout.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::virtio {

class VirtqueueDriver final : public DriverRing {
 public:
  /// Allocates the three ring areas in `memory` with spec alignments and
  /// initializes them to zero. `queue_size` must be a power of two.
  VirtqueueDriver(mem::HostMemory& memory, u16 queue_size,
                  FeatureSet negotiated);

  [[nodiscard]] u16 size() const override { return queue_size_; }
  [[nodiscard]] const RingAddresses& addresses() const { return addrs_; }
  [[nodiscard]] u16 free_descriptors() const override { return num_free_; }

  /// Expose a buffer chain to the device. Returns the head descriptor
  /// index, or nullopt when the free list cannot hold the chain. The
  /// `token` is returned by harvest_used when the device completes the
  /// chain (a driver would store an skb pointer here).
  std::optional<u16> add_chain(std::span<const ChainBuffer> buffers,
                               u64 token) override;

  /// Expose a chain through an indirect descriptor table (§2.7.5.3.1,
  /// requires VIRTIO_F_INDIRECT_DESC): the buffers are written into a
  /// per-head recycled table in host memory and a single INDIRECT
  /// descriptor occupies the ring — constant ring-slot cost for any
  /// chain length, and the device can fetch the whole table in one DMA
  /// read.
  std::optional<u16> add_chain_indirect(std::span<const ChainBuffer> buffers,
                                        u64 token) override;

  /// Publish all chains added since the last publish: write avail.idx.
  /// Returns the number of chains published.
  u16 publish() override;

  /// Per the EVENT_IDX protocol (§2.7.10): should the driver notify the
  /// device after this publish? Always true without EVENT_IDX unless the
  /// device set VRING_USED_F_NO_NOTIFY.
  [[nodiscard]] bool should_kick() const override;

  struct Completion {
    u64 token = 0;
    u32 written = 0;  ///< bytes the device wrote into the chain
    u16 head = 0;
  };
  /// Harvest one completion from the used ring, recycling descriptors.
  std::optional<Completion> harvest_used();

  /// True when the device has published used entries we have not
  /// harvested (what an interrupt handler checks before doing work).
  [[nodiscard]] bool used_pending() const override;

  /// Write the used_event field = "interrupt me when used.idx passes
  /// this" (EVENT_IDX). Drivers call this as they re-enable interrupts.
  void set_used_event(u16 value);

  /// The used index up to which completions have been harvested — what a
  /// driver writes into used_event to request "interrupt on next".
  [[nodiscard]] u16 last_used_index() const { return last_used_idx_; }

  // ---- DriverRing (format-independent view) ----------------------------------
  std::optional<DriverRing::Completion> harvest() override {
    const auto c = harvest_used();
    if (!c.has_value()) {
      return std::nullopt;
    }
    return DriverRing::Completion{c->token, c->written, c->head};
  }
  void enable_interrupts() override { set_used_event(last_used_idx_); }
  void disable_interrupts() override {
    set_used_event(static_cast<u16>(last_used_idx_ + 0x8000));
  }
  [[nodiscard]] RingAddresses ring_addresses() const override {
    return addrs_;
  }

  /// Number of chains the driver currently has in flight.
  [[nodiscard]] u16 in_flight() const {
    return static_cast<u16>(queue_size_ - num_free_);
  }

  /// Snapshot/restore of the driver-RAM bookkeeping (free list, tokens,
  /// cursors). Ring bytes live in host memory and are restored with it;
  /// load_state never writes memory. Fails the reader on a queue-size
  /// mismatch (structural — the rings were allocated at construction).
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  void write_descriptor(u16 index, const Descriptor& desc);
  [[nodiscard]] Descriptor read_descriptor(u16 index) const;

  mem::HostMemory* memory_;
  u16 queue_size_;
  FeatureSet negotiated_;
  RingAddresses addrs_;

  std::vector<u64> tokens_;       ///< token per head descriptor
  std::vector<u16> chain_len_;    ///< descriptors per chain, by head
  std::vector<HostAddr> indirect_table_;  ///< recycled table per head
  std::vector<u32> indirect_capacity_;    ///< entries each table can hold
  u16 free_head_ = 0;             ///< head of the free-descriptor list
  u16 num_free_ = 0;
  u16 avail_idx_shadow_ = 0;      ///< next avail.idx value to publish
  u16 pending_publish_ = 0;       ///< chains added but not yet published
  u16 last_used_idx_ = 0;         ///< next used slot to harvest
  u16 kick_threshold_idx_ = 0;    ///< avail idx when we last published
};

}  // namespace vfpga::virtio
