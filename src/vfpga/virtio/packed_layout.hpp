// Packed virtqueue memory layout (VirtIO 1.2 §2.8).
//
// The packed ring is the VirtIO 1.1+ alternative to the split ring: one
// ring of 16-byte descriptors doubles as the available and used
// structures, with 1-bit wrap counters distinguishing ownership:
//
//   struct pvirtq_desc { le64 addr; le32 len; le16 id; le16 flags; }
//
// A driver makes a descriptor available by writing AVAIL = its wrap
// counter and USED = the inverse; the device marks a chain used by
// writing one descriptor with both bits equal to *its* wrap counter and
// skipping ahead by the chain length. Event suppression lives in two
// 4-byte structures (the "driver area" / "device area" the common
// config's queue_driver/queue_device fields point at in packed mode).
//
// Why it matters for host-FPGA PCIe: consuming a buffer costs the device
// ONE descriptor read (the split ring needs avail-idx + avail-entry +
// descriptor = three), and completing costs ONE descriptor write — each
// saved ring access is a full non-posted PCIe round trip for the FPGA.
// The paper's controller implements the split format; packed support is
// this library's extension, measured in bench/ablation_ring_format.
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::virtio::packed {

inline constexpr u64 kDescSize = 16;
inline constexpr u64 kDescAddrOffset = 0;
inline constexpr u64 kDescLenOffset = 8;
inline constexpr u64 kDescIdOffset = 12;
inline constexpr u64 kDescFlagsOffset = 14;

/// Descriptor flags (§2.8.1). NEXT/WRITE/INDIRECT share the split-ring
/// bit positions; AVAIL/USED are the packed-ring ownership bits.
namespace flags {
inline constexpr u16 kNext = 1 << 0;
inline constexpr u16 kWrite = 1 << 1;
inline constexpr u16 kIndirect = 1 << 2;
inline constexpr u16 kAvail = 1 << 7;
inline constexpr u16 kUsed = 1 << 15;
}  // namespace flags

/// Event suppression structure (§2.8.10): le16 off_wrap, le16 flags.
namespace event {
inline constexpr u64 kOffWrapOffset = 0;
inline constexpr u64 kFlagsOffset = 2;
inline constexpr u64 kSize = 4;

inline constexpr u16 kEnable = 0x0;   ///< notify/interrupt every update
inline constexpr u16 kDisable = 0x1;  ///< never notify/interrupt
inline constexpr u16 kDesc = 0x2;     ///< at a specific position (unused here)
}  // namespace event

[[nodiscard]] constexpr u64 ring_bytes(u16 queue_size) {
  return kDescSize * queue_size;
}

[[nodiscard]] constexpr u64 desc_offset(u16 slot) {
  return kDescSize * slot;
}

/// Compose ownership bits for a descriptor made available at wrap `w`.
[[nodiscard]] constexpr u16 avail_flags(bool wrap) {
  return wrap ? flags::kAvail : flags::kUsed;
}

/// Compose ownership bits for a descriptor marked used at wrap `w`.
[[nodiscard]] constexpr u16 used_flags(bool wrap) {
  return wrap ? static_cast<u16>(flags::kAvail | flags::kUsed) : u16{0};
}

/// Is the descriptor with `desc_flags` available to a device whose
/// current wrap counter is `wrap`?
[[nodiscard]] constexpr bool is_available(u16 desc_flags, bool wrap) {
  const bool avail = (desc_flags & flags::kAvail) != 0;
  const bool used = (desc_flags & flags::kUsed) != 0;
  return avail == wrap && used != wrap;
}

/// Is the descriptor with `desc_flags` used, from a driver whose used
/// wrap counter is `wrap`?
[[nodiscard]] constexpr bool is_used(u16 desc_flags, bool wrap) {
  const bool avail = (desc_flags & flags::kAvail) != 0;
  const bool used = (desc_flags & flags::kUsed) != 0;
  return avail == wrap && used == wrap;
}

/// One decoded packed descriptor.
struct PackedDescriptor {
  u64 addr = 0;
  u32 len = 0;
  u16 id = 0;
  u16 desc_flags = 0;
};

}  // namespace vfpga::virtio::packed
