#include "vfpga/virtio/virtqueue_device.hpp"

#include <algorithm>
#include <array>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/virtio/ids.hpp"

namespace vfpga::virtio {
namespace {

/// Descriptors fetched per speculative continuation read: one 64-byte
/// cacheline of the descriptor table.
constexpr u16 kDescFetchWindow = 4;

Descriptor decode_descriptor(ConstByteSpan raw) {
  VFPGA_EXPECTS(raw.size() >= kDescSize);
  Descriptor d;
  d.addr = load_le64(raw, kDescAddrOffset);
  d.len = load_le32(raw, kDescLenOffset);
  d.flags = load_le16(raw, kDescFlagsOffset);
  d.next = load_le16(raw, kDescNextOffset);
  return d;
}

}  // namespace

void VirtqueueDevice::configure(const RingAddresses& addrs, u16 queue_size,
                                FeatureSet negotiated) {
  VFPGA_EXPECTS(queue_size != 0 && (queue_size & (queue_size - 1)) == 0);
  VFPGA_EXPECTS(addrs.desc % kDescAlign == 0);
  VFPGA_EXPECTS(addrs.used % kUsedAlign == 0);
  addrs_ = addrs;
  queue_size_ = queue_size;
  negotiated_ = negotiated;
  avail_cursor_ = 0;
  used_idx_ = 0;
}

Timed<u16> VirtqueueDevice::fetch_avail_idx(sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  std::array<u8, 2> raw{};
  const sim::SimTime done =
      port_.read(start, addrs_.avail + kAvailIdxOffset, raw);
  return Timed<u16>{load_le16(raw), done};
}

Timed<u16> VirtqueueDevice::fetch_avail_entry(u16 avail_position,
                                              sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  const u16 slot = static_cast<u16>(avail_position % queue_size_);
  std::array<u8, 2> raw{};
  const sim::SimTime done =
      port_.read(start, addrs_.avail + avail_entry_offset(slot), raw);
  const u16 head = load_le16(raw);
  VFPGA_ENSURES(head < queue_size_);
  return Timed<u16>{head, done};
}

Timed<Descriptor> VirtqueueDevice::fetch_descriptor(u16 index,
                                                    sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  VFPGA_EXPECTS(index < queue_size_);
  std::array<u8, kDescSize> raw{};
  const sim::SimTime done =
      port_.read(start, addrs_.desc + desc_offset(index), raw);
  return Timed<Descriptor>{decode_descriptor(raw), done};
}

Timed<std::vector<Descriptor>> VirtqueueDevice::fetch_descriptors(
    u16 first, u16 count, sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  VFPGA_EXPECTS(count >= 1);
  VFPGA_EXPECTS(first + count <= queue_size_);
  Bytes raw(kDescSize * count);
  const sim::SimTime done =
      port_.read(start, addrs_.desc + desc_offset(first), raw);
  std::vector<Descriptor> out;
  out.reserve(count);
  for (u16 i = 0; i < count; ++i) {
    out.push_back(decode_descriptor(
        ConstByteSpan{raw}.subspan(static_cast<std::size_t>(i) * kDescSize)));
  }
  return Timed<std::vector<Descriptor>>{std::move(out), done};
}

Timed<ChainFetch> VirtqueueDevice::fetch_chain(u16 head,
                                               sim::SimTime start) const {
  ChainFetch out;
  sim::SimTime t = start;
  u16 index = head;
  // Speculative window for chain continuations: free-list drivers lay
  // chains out as contiguous runs, so once a chain continues the FSM
  // fetches the next descriptors a cacheline at a time instead of one
  // dependent read per entry. The head is always a single-descriptor
  // read, so one-descriptor chains see an unchanged transaction stream.
  std::vector<Descriptor> window;
  u16 window_first = 0;
  // A conformant driver never builds a chain longer than the queue; a
  // longer walk means the table is corrupt (or loops) and the FSM bails
  // with the error flag rather than spinning forever.
  for (u16 guard = 0; guard < queue_size_; ++guard) {
    Timed<Descriptor> fetched{Descriptor{}, t};
    const bool in_window =
        !window.empty() && index >= window_first &&
        static_cast<std::size_t>(index - window_first) < window.size();
    if (in_window) {
      fetched.value = window[static_cast<std::size_t>(index - window_first)];
    } else if (guard == 0) {
      fetched = fetch_descriptor(index, t);
      t = fetched.done;
    } else {
      const u16 count = std::min<u16>(
          kDescFetchWindow, static_cast<u16>(queue_size_ - index));
      auto burst = fetch_descriptors(index, count, t);
      t = burst.done;
      window = std::move(burst.value);
      window_first = index;
      fetched.value = window.front();
    }
    if ((fetched.value.flags & descflags::kIndirect) != 0) {
      // §2.7.5.3: the descriptor points at a table of descriptors; the
      // whole table arrives in one DMA read. An indirect descriptor is
      // never chained, its length must be a whole number of descriptor
      // entries, and the table must not exceed the queue size; the
      // table entries use table-relative `next` indices, which for our
      // drivers are laid out sequentially.
      out.via_indirect = true;
      const u32 len = fetched.value.len;
      if (!out.descriptors.empty() || len == 0 || len % kDescSize != 0 ||
          len / kDescSize > queue_size_) {
        out.error = true;
        return Timed<ChainFetch>{std::move(out), t};
      }
      const u16 count = static_cast<u16>(len / kDescSize);
      Bytes raw(len);
      t = port_.read(t, fetched.value.addr, raw);
      for (u16 i = 0; i < count; ++i) {
        out.descriptors.push_back(decode_descriptor(ConstByteSpan{raw}.subspan(
            static_cast<std::size_t>(i) * kDescSize)));
      }
      return Timed<ChainFetch>{std::move(out), t};
    }
    out.descriptors.push_back(fetched.value);
    if ((fetched.value.flags & descflags::kNext) == 0) {
      return Timed<ChainFetch>{std::move(out), t};
    }
    index = fetched.value.next;
  }
  out.error = true;  // chain longer than the queue: corrupted table
  return Timed<ChainFetch>{std::move(out), t};
}

sim::SimTime VirtqueueDevice::gather_payload(std::span<const Descriptor> chain,
                                             Bytes& out,
                                             sim::SimTime start) const {
  sim::SimTime t = start;
  for (const Descriptor& d : chain) {
    if ((d.flags & descflags::kWrite) != 0) {
      continue;  // device-writable: not ours to read
    }
    const std::size_t old_size = out.size();
    out.resize(old_size + d.len);
    t = port_.read(t, d.addr, ByteSpan{out}.subspan(old_size));
  }
  return t;
}

pcie::DmaPort::WriteTiming VirtqueueDevice::scatter_payload(
    std::span<const Descriptor> chain, ConstByteSpan data, sim::SimTime start,
    u32& written_out) const {
  sim::SimTime issuer = start;
  sim::SimTime delivered = start;
  std::size_t offset = 0;
  for (const Descriptor& d : chain) {
    if ((d.flags & descflags::kWrite) == 0) {
      continue;  // device-readable: skip
    }
    if (offset >= data.size()) {
      break;
    }
    const std::size_t chunk =
        std::min<std::size_t>(d.len, data.size() - offset);
    const auto timing =
        port_.write(issuer, d.addr, data.subspan(offset, chunk));
    issuer = timing.issuer_free;
    delivered = std::max(delivered, timing.delivered);
    offset += chunk;
  }
  VFPGA_ENSURES(offset == data.size());  // chain must be large enough
  written_out = static_cast<u32>(offset);
  return pcie::DmaPort::WriteTiming{issuer, delivered};
}

pcie::DmaPort::WriteTiming VirtqueueDevice::push_used(u16 head, u32 written,
                                                      sim::SimTime start) {
  VFPGA_EXPECTS(configured());
  VFPGA_EXPECTS(head < queue_size_);
  const u16 slot = static_cast<u16>(used_idx_ % queue_size_);

  std::array<u8, kUsedElemSize> elem{};
  store_le32(elem, 0, head);
  store_le32(ByteSpan{elem}, 4, written);
  const auto elem_timing =
      port_.write(start, addrs_.used + used_entry_offset(slot), elem);

  ++used_idx_;
  std::array<u8, 2> idx{};
  store_le16(idx, 0, used_idx_);
  // The idx write must not pass the element write: issue it after the
  // element has left the engine (PCIe posted-write ordering then
  // guarantees visibility order at the host).
  const auto idx_timing = port_.write(elem_timing.issuer_free,
                                      addrs_.used + kUsedIdxOffset, idx);
  return pcie::DmaPort::WriteTiming{
      idx_timing.issuer_free,
      std::max(elem_timing.delivered, idx_timing.delivered)};
}

Timed<u16> VirtqueueDevice::read_used_event(sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  std::array<u8, 2> raw{};
  const sim::SimTime done =
      port_.read(start, addrs_.avail + used_event_offset(queue_size_), raw);
  return Timed<u16>{load_le16(raw), done};
}

pcie::DmaPort::WriteTiming VirtqueueDevice::write_avail_event(
    u16 value, sim::SimTime start) const {
  VFPGA_EXPECTS(configured());
  std::array<u8, 2> raw{};
  store_le16(raw, 0, value);
  return port_.write(start, addrs_.used + avail_event_offset(queue_size_),
                     raw);
}

void VirtqueueDevice::save_state(migrate::StateWriter& w) const {
  w.put_u64(addrs_.desc);
  w.put_u64(addrs_.avail);
  w.put_u64(addrs_.used);
  w.put_u16(queue_size_);
  w.put_u64(negotiated_.bits());
  w.put_u16(avail_cursor_);
  w.put_u16(used_idx_);
}

void VirtqueueDevice::load_state(migrate::StateReader& r) {
  addrs_.desc = r.get_u64();
  addrs_.avail = r.get_u64();
  addrs_.used = r.get_u64();
  queue_size_ = r.get_u16();
  negotiated_ = FeatureSet{r.get_u64()};
  avail_cursor_ = r.get_u16();
  used_idx_ = r.get_u16();
}

}  // namespace vfpga::virtio
