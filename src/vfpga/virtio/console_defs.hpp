// virtio-console structures (VirtIO 1.2 §5.3).
//
// The console device is the type implemented by the prior work the
// paper extends ([14], H2RC'22); the controller keeps supporting it to
// demonstrate that changing device personality only swaps the
// device-specific configuration structure and queue count (§IV-B: "the
// fundamentals of the VirtIO interface on the FPGA do not change based
// on the type of device implemented").
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::virtio::console {

/// virtio_console_config.
struct ConsoleConfigLayout {
  static constexpr u32 kColsOffset = 0;      // le16
  static constexpr u32 kRowsOffset = 2;      // le16
  static constexpr u32 kMaxPortsOffset = 4;  // le32
  static constexpr u32 kSize = 8;
};

/// Queue numbering for a single-port console: 0=receiveq, 1=transmitq.
inline constexpr u16 kRxQueue = 0;
inline constexpr u16 kTxQueue = 1;

}  // namespace vfpga::virtio::console
