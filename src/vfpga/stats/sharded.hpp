// Shard-per-worker sample accumulation for multi-threaded harnesses.
//
// The multi-flow generator's worker threads record latency samples on
// the hot path. A shared SampleSet behind a mutex would serialize the
// workers (and show up in the measurement); instead each worker owns
// one shard and writes it with no synchronization at all — the only
// cross-thread handoff is the fork/join of the thread pool, whose
// join provides the happens-before edge for the final merge.
#pragma once

#include <vector>

#include "vfpga/stats/summary.hpp"

namespace vfpga::stats {

class ShardedSamples {
 public:
  explicit ShardedSamples(std::size_t shards, std::size_t reserve_per_shard = 0);

  /// Shard `index` — exclusive to one worker while the pool runs.
  [[nodiscard]] SampleSet& shard(std::size_t index);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Total samples across all shards — a cheap progress/size probe that
  /// does not force the merge. Call only after the workers joined.
  [[nodiscard]] std::size_t total_count() const;

  /// Combine all shards. Call only after the workers joined.
  [[nodiscard]] SampleSet merged() const;

 private:
  std::vector<SampleSet> shards_;
};

}  // namespace vfpga::stats
