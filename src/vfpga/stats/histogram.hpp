// Fixed-bin latency histogram for distribution plots (Fig. 3's
// latency-distribution view, rendered as ASCII in the benches).
#pragma once

#include <string>
#include <vector>

#include "vfpga/stats/summary.hpp"

namespace vfpga::stats {

class Histogram {
 public:
  /// Bins of `bin_width_us` covering [lo_us, hi_us); values outside are
  /// clamped into the first/last bin.
  Histogram(double lo_us, double hi_us, double bin_width_us);

  void add(double value_us);
  void add_all(const SampleSet& samples);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] u64 bin(std::size_t index) const { return counts_[index]; }
  [[nodiscard]] double bin_low_us(std::size_t index) const {
    return lo_us_ + static_cast<double>(index) * width_us_;
  }
  [[nodiscard]] u64 total() const { return total_; }

  /// Render as rows of "[lo..hi) count bar" (for bench output).
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_us_;
  double width_us_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

}  // namespace vfpga::stats
