// Latency sample sets with exact percentiles.
//
// The paper reports mean, standard deviation (Figs. 4-5 error bars) and
// p95/p99/p99.9 tail latencies (Table I) over 50,000 packets per point.
// Samples are stored exactly (50 k × 8 B is nothing) so percentiles are
// exact order statistics, not sketch approximations.
#pragma once

#include <vector>

#include "vfpga/sim/time.hpp"

namespace vfpga::stats {

class SampleSet {
 public:
  SampleSet() = default;
  explicit SampleSet(std::size_t reserve) { values_us_.reserve(reserve); }

  void add(sim::Duration d) {
    values_us_.push_back(d.micros());
    sorted_ = false;
  }
  void add_us(double us) {
    values_us_.push_back(us);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_us_.size(); }
  [[nodiscard]] bool empty() const { return values_us_.empty(); }

  /// Mean in microseconds.
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1) in microseconds.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile (nearest-rank, q in [0,100]).
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& values_us() const {
    return values_us_;
  }

  /// Merge another set into this one.
  void merge(const SampleSet& other);

  /// Discard every sample past the first `n` (in insertion order) — the
  /// rollback half of a checkpoint that saved count(). No-op when n >=
  /// count().
  void truncate(std::size_t n) {
    if (n >= values_us_.size()) {
      return;
    }
    values_us_.resize(n);
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> values_us_;
  mutable std::vector<double> sorted_values_;
  mutable bool sorted_ = false;
};

/// The summary row a bench prints for one (driver, payload) cell.
struct LatencySummary {
  double mean_us = 0;
  double stddev_us = 0;
  double min_us = 0;
  double median_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;

  static LatencySummary from(const SampleSet& samples);
};

}  // namespace vfpga::stats
