#include "vfpga/stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "vfpga/common/contract.hpp"

namespace vfpga::stats {

Histogram::Histogram(double lo_us, double hi_us, double bin_width_us)
    : lo_us_(lo_us), width_us_(bin_width_us) {
  VFPGA_EXPECTS(hi_us > lo_us && bin_width_us > 0);
  const auto bins =
      static_cast<std::size_t>((hi_us - lo_us) / bin_width_us + 0.5);
  counts_.assign(std::max<std::size_t>(bins, 1), 0);
}

void Histogram::add(double value_us) {
  double idx_f = (value_us - lo_us_) / width_us_;
  idx_f = std::max(idx_f, 0.0);
  auto idx = static_cast<std::size_t>(idx_f);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

void Histogram::add_all(const SampleSet& samples) {
  for (double v : samples.values_us()) {
    add(v);
  }
}

std::string Histogram::render(std::size_t max_bar_width) const {
  u64 peak = 1;
  for (u64 c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_bar_width));
    std::snprintf(line, sizeof line, "  [%7.1f,%7.1f) %8llu ",
                  bin_low_us(i), bin_low_us(i) + width_us_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(std::max<std::size_t>(bar, counts_[i] > 0 ? 1 : 0), '#');
    out += '\n';
  }
  return out;
}

}  // namespace vfpga::stats
