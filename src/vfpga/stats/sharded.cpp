#include "vfpga/stats/sharded.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::stats {

ShardedSamples::ShardedSamples(std::size_t shards,
                               std::size_t reserve_per_shard) {
  VFPGA_EXPECTS(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.emplace_back(reserve_per_shard);
  }
}

SampleSet& ShardedSamples::shard(std::size_t index) {
  VFPGA_EXPECTS(index < shards_.size());
  return shards_[index];
}

std::size_t ShardedSamples::total_count() const {
  std::size_t total = 0;
  for (const SampleSet& s : shards_) {
    total += s.count();
  }
  return total;
}

SampleSet ShardedSamples::merged() const {
  SampleSet all;
  for (const SampleSet& s : shards_) {
    all.merge(s);
  }
  return all;
}

}  // namespace vfpga::stats
