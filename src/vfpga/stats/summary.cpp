#include "vfpga/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "vfpga/common/contract.hpp"

namespace vfpga::stats {

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    sorted_values_ = values_us_;
    std::sort(sorted_values_.begin(), sorted_values_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  VFPGA_EXPECTS(!empty());
  double sum = 0;
  for (double v : values_us_) {
    sum += v;
  }
  return sum / static_cast<double>(values_us_.size());
}

double SampleSet::stddev() const {
  VFPGA_EXPECTS(!empty());
  if (values_us_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0;
  for (double v : values_us_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_us_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  VFPGA_EXPECTS(!empty());
  return sorted_values_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  VFPGA_EXPECTS(!empty());
  return sorted_values_.back();
}

double SampleSet::percentile(double q) const {
  VFPGA_EXPECTS(!empty());
  VFPGA_EXPECTS(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  if (q == 0.0) {
    return sorted_values_.front();
  }
  // Nearest-rank: ceil(q/100 * N), 1-indexed.
  const auto n = static_cast<double>(sorted_values_.size());
  const auto rank =
      static_cast<std::size_t>(std::ceil(q / 100.0 * n - 1e-9));
  return sorted_values_[std::min(rank, sorted_values_.size()) - 1];
}

void SampleSet::merge(const SampleSet& other) {
  values_us_.insert(values_us_.end(), other.values_us_.begin(),
                    other.values_us_.end());
  sorted_ = false;
}

LatencySummary LatencySummary::from(const SampleSet& samples) {
  LatencySummary s;
  s.mean_us = samples.mean();
  s.stddev_us = samples.stddev();
  s.min_us = samples.min();
  s.median_us = samples.median();
  s.p95_us = samples.percentile(95.0);
  s.p99_us = samples.percentile(99.0);
  s.p999_us = samples.percentile(99.9);
  s.max_us = samples.max();
  return s;
}

}  // namespace vfpga::stats
