#include "vfpga/net/ipv4.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/net/checksum.hpp"

namespace vfpga::net {

Bytes build_ipv4_packet(Ipv4Header header, ConstByteSpan payload) {
  const u64 total = Ipv4Header::kSize + payload.size();
  VFPGA_EXPECTS(total <= 0xffff);
  header.total_length = static_cast<u16>(total);

  Bytes packet(total, 0);
  ByteSpan s{packet};
  packet[0] = 0x45;  // version 4, IHL 5
  packet[1] = 0x00;  // DSCP/ECN
  store_be16(s, 2, header.total_length);
  store_be16(s, 4, header.identification);
  store_be16(s, 6, 0x4000);  // flags: DF, fragment offset 0
  packet[8] = header.ttl;
  packet[9] = static_cast<u8>(header.protocol);
  // checksum (bytes 10-11) computed below
  store_be32(s, 12, header.src.value);
  store_be32(s, 16, header.dst.value);

  const u16 csum = internet_checksum(
      ConstByteSpan{packet}.first(Ipv4Header::kSize));
  store_be16(s, 10, csum);

  std::copy(payload.begin(), payload.end(),
            packet.begin() + Ipv4Header::kSize);
  return packet;
}

std::optional<ParsedIpv4> parse_ipv4_packet(ConstByteSpan packet) {
  if (packet.size() < Ipv4Header::kSize) {
    return std::nullopt;
  }
  if ((packet[0] >> 4) != 4) {
    return std::nullopt;
  }
  const u64 ihl_bytes = static_cast<u64>(packet[0] & 0xf) * 4;
  if (ihl_bytes < Ipv4Header::kSize || packet.size() < ihl_bytes) {
    return std::nullopt;
  }
  ParsedIpv4 out;
  out.header.total_length = load_be16(packet, 2);
  if (out.header.total_length < ihl_bytes ||
      out.header.total_length > packet.size()) {
    return std::nullopt;
  }
  out.header.identification = load_be16(packet, 4);
  out.header.ttl = packet[8];
  out.header.protocol = static_cast<IpProtocol>(packet[9]);
  out.header.src = Ipv4Addr{load_be32(packet, 12)};
  out.header.dst = Ipv4Addr{load_be32(packet, 16)};
  out.checksum_ok = checksum_valid(packet.first(ihl_bytes));
  out.payload_offset = ihl_bytes;
  out.payload_length = out.header.total_length - ihl_bytes;
  return out;
}

}  // namespace vfpga::net
