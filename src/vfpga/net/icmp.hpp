// ICMP echo (RFC 792) — the `ping` the paper's latency methodology is a
// UDP variant of. The FPGA's net personality answers echo requests so a
// standard ping workload measures the same round trip as the UDP test.
#pragma once

#include <optional>

#include "vfpga/net/addr.hpp"

namespace vfpga::net {

enum class IcmpType : u8 {
  EchoReply = 0,
  EchoRequest = 8,
};

struct IcmpEcho {
  IcmpType type = IcmpType::EchoRequest;
  u16 identifier = 0;
  u16 sequence = 0;

  static constexpr u64 kHeaderSize = 8;
};

/// Build an echo request/reply with a valid ICMP checksum.
[[nodiscard]] Bytes build_icmp_echo(const IcmpEcho& echo,
                                    ConstByteSpan payload);

struct ParsedIcmpEcho {
  IcmpEcho header;
  u64 payload_offset = 0;
  u64 payload_length = 0;
  bool checksum_ok = false;
};

/// Parse an ICMP message; nullopt unless it is an echo request/reply.
[[nodiscard]] std::optional<ParsedIcmpEcho> parse_icmp_echo(
    ConstByteSpan data);

}  // namespace vfpga::net
