#include "vfpga/net/icmp.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/net/checksum.hpp"

namespace vfpga::net {

Bytes build_icmp_echo(const IcmpEcho& echo, ConstByteSpan payload) {
  Bytes message(IcmpEcho::kHeaderSize + payload.size(), 0);
  ByteSpan s{message};
  message[0] = static_cast<u8>(echo.type);
  message[1] = 0;  // code
  // checksum (bytes 2-3) computed over the whole message below
  store_be16(s, 4, echo.identifier);
  store_be16(s, 6, echo.sequence);
  std::copy(payload.begin(), payload.end(),
            message.begin() + IcmpEcho::kHeaderSize);
  store_be16(s, 2, internet_checksum(message));
  return message;
}

std::optional<ParsedIcmpEcho> parse_icmp_echo(ConstByteSpan data) {
  if (data.size() < IcmpEcho::kHeaderSize) {
    return std::nullopt;
  }
  const u8 type = data[0];
  if (type != static_cast<u8>(IcmpType::EchoRequest) &&
      type != static_cast<u8>(IcmpType::EchoReply)) {
    return std::nullopt;
  }
  if (data[1] != 0) {
    return std::nullopt;  // echo messages use code 0
  }
  ParsedIcmpEcho out;
  out.header.type = static_cast<IcmpType>(type);
  out.header.identifier = load_be16(data, 4);
  out.header.sequence = load_be16(data, 6);
  out.payload_offset = IcmpEcho::kHeaderSize;
  out.payload_length = data.size() - IcmpEcho::kHeaderSize;
  out.checksum_ok = checksum_valid(data);
  return out;
}

}  // namespace vfpga::net
