// Flow-table-driven traffic generation.
//
// The multi-flow harness hand-builds a handful of long-lived flows; the
// scale experiments need the opposite: tens of thousands to millions of
// concurrent UDP flows with realistic population dynamics. FlowGen is
// that population model —
//
//  * flow sizes are heavy-tailed (bounded Pareto over packets-per-flow:
//    most flows are mice, a fat tail of elephants carries most packets,
//    the canonical datacenter mix),
//  * per-flow packet arrivals are Poisson or a 2-state MMPP (a bursty
//    on/off modulation of the Poisson rate),
//  * connection churn: a finished flow's table slot is re-filled by a
//    fresh flow with a new 4-tuple, so the live-flow population stays at
//    the configured level while flow identities turn over continuously,
//  * every flow is pinned to a queue pair through the same Toeplitz RSS
//    steering the device uses (net/rss), so a generated flow's packets
//    really do land where the multi-queue data plane will process them.
//
// FlowGen is a deterministic state machine over its own RNG stream: the
// caller (one event lane, typically) drives it slot by slot, and the
// same seed and call sequence reproduce the same traffic bit for bit.
#pragma once

#include <optional>
#include <vector>

#include "vfpga/net/addr.hpp"
#include "vfpga/sim/rng.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::net {

enum class ArrivalProcess : u8 {
  kPoisson,  ///< exponential per-flow inter-packet gaps
  kMmpp2,    ///< 2-state Markov-modulated Poisson (slow / burst)
};

struct FlowGenConfig {
  /// Endpoint identity: flows are (host_ip, searched src port) ->
  /// (fpga_ip, fpga_port) UDP 4-tuples.
  Ipv4Addr host_ip{};
  Ipv4Addr fpga_ip{};
  u16 fpga_port = 9000;

  /// Queue pairs in the global RSS space flows steer across.
  u16 pairs = 8;
  /// Only these pairs are populated (slot s -> pair_set[s % size]);
  /// empty = all pairs round-robin. This is how a sharded lane builds a
  /// generator restricted to the pairs it owns.
  std::vector<u16> pair_set;

  /// Concurrent flow-table slots (the live-flow population).
  u32 flows = 1024;

  /// Heavy-tailed flow length, in packets: bounded Pareto.
  double size_shape = 1.25;
  u64 size_min_packets = 1;
  u64 size_max_packets = 4096;

  /// Payload bytes per packet, uniform in [min, max].
  u32 payload_min = 64;
  u32 payload_max = 1400;

  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Mean per-flow inter-packet gap (slow state), microseconds.
  double mean_gap_us = 50.0;
  /// MMPP burst state: gap mean divided by this factor.
  double mmpp_burst_factor = 8.0;
  /// Mean packets between MMPP state flips (geometric holding time).
  double mmpp_mean_state_packets = 32.0;

  /// Refill a finished flow's slot with a fresh flow (new 4-tuple, same
  /// pair). Off = slots close when their flow completes.
  bool churn = true;

  /// Source-port allocation starts here and wraps (skipping ports held
  /// by live flows) — the cursor never collides with an open flow.
  u16 first_port = 20'000;

  u64 seed = 20'25;
};

/// Flow length in packets: bounded Pareto(shape) over
/// [size_min_packets, size_max_packets] by inverse CDF. Exposed so tests
/// can pin the distribution's quantiles per seed.
[[nodiscard]] u64 sample_flow_size_packets(sim::Xoshiro256& rng,
                                           const FlowGenConfig& config);

class FlowGen {
 public:
  struct Flow {
    u64 id = 0;  ///< unique across churn generations
    u16 src_port = 0;
    u16 pair = 0;
    u64 total_packets = 0;
    u64 remaining_packets = 0;
    bool burst = false;  ///< MMPP state
    bool open = false;
  };

  /// One packet departure from a slot's current flow.
  struct Departure {
    u64 flow_id = 0;
    u16 pair = 0;
    u32 payload_bytes = 0;
    /// Delay from the previous departure of this slot (or from open time
    /// for the first packet).
    sim::Duration gap{};
    /// Last packet of the flow: the caller must churn_slot() or
    /// close_slot() before asking for more traffic from this slot.
    bool fin = false;
  };

  explicit FlowGen(const FlowGenConfig& config);

  [[nodiscard]] u32 slots() const { return static_cast<u32>(table_.size()); }
  [[nodiscard]] const Flow& flow(u32 slot) const { return table_.at(slot); }

  /// Next packet from the slot's open flow. Precondition: slot is open.
  [[nodiscard]] Departure next_packet(u32 slot);

  /// Retire a finished (remaining == 0) flow. With churn on, installs a
  /// fresh flow on the same pair and returns its arrival delay; with
  /// churn off, closes the slot and returns nullopt.
  std::optional<sim::Duration> churn_slot(u32 slot);

  /// Close an unfinished flow (the harness reached its packet quota).
  /// Counts as abandoned, not completed.
  void close_slot(u32 slot);

  /// Tear down and re-establish the slot's flow with the SAME 4-tuple
  /// (a reconnect). The flow gets a fresh id and size, but its source
  /// port — and therefore its RSS pair — is preserved.
  void reconnect_slot(u32 slot);

  // ---- bookkeeping (the churn-leak test audits these) ------------------------
  [[nodiscard]] u64 flows_created() const { return created_; }
  [[nodiscard]] u64 flows_completed() const { return completed_; }
  [[nodiscard]] u64 flows_abandoned() const { return abandoned_; }
  [[nodiscard]] u64 packets_emitted() const { return packets_; }
  /// Open flow-table entries; created == completed + abandoned + open
  /// always holds, or entries leaked.
  [[nodiscard]] u64 open_flows() const { return open_; }
  /// Live source ports tracked for collision-free allocation — must
  /// equal open_flows(), or port bookkeeping leaked.
  [[nodiscard]] u64 live_ports() const { return live_ports_.size(); }

 private:
  [[nodiscard]] u16 pair_for_slot(u32 slot) const;
  [[nodiscard]] u16 allocate_port(u16 pair);
  void open_flow(u32 slot, u16 src_port, u16 pair);
  void release_flow(u32 slot);
  [[nodiscard]] sim::Duration sample_gap(Flow& flow);

  FlowGenConfig config_;
  sim::Xoshiro256 rng_;
  std::vector<Flow> table_;
  std::vector<bool> port_live_;  // indexed by port; collision avoidance
  struct PortSet {
    [[nodiscard]] std::size_t size() const { return count; }
    std::size_t count = 0;
  };
  PortSet live_ports_;
  u16 port_cursor_;
  u64 next_id_ = 1;
  u64 created_ = 0;
  u64 completed_ = 0;
  u64 abandoned_ = 0;
  u64 packets_ = 0;
  u64 open_ = 0;
};

}  // namespace vfpga::net
