// Flow-table-driven traffic generation.
//
// The multi-flow harness hand-builds a handful of long-lived flows; the
// scale experiments need the opposite: tens of thousands to millions of
// concurrent UDP flows with realistic population dynamics. FlowGen is
// that population model —
//
//  * flow sizes are heavy-tailed (bounded Pareto over packets-per-flow:
//    most flows are mice, a fat tail of elephants carries most packets,
//    the canonical datacenter mix),
//  * per-flow packet arrivals are Poisson or a 2-state MMPP (a bursty
//    on/off modulation of the Poisson rate),
//  * connection churn: a finished flow's table slot is re-filled by a
//    fresh flow with a new 4-tuple, so the live-flow population stays at
//    the configured level while flow identities turn over continuously,
//  * every flow is pinned to a queue pair through the same Toeplitz RSS
//    steering the device uses (net/rss), so a generated flow's packets
//    really do land where the multi-queue data plane will process them.
//
// The table is built for the million-slot soak: state is struct-of-
// arrays (17 bytes/slot of per-flow state), 4-tuples come from per-pair
// index freelists fed by a single carve cursor over (client IP, port)
// space, and RSS steering is computed lazily — one cached steer table
// per client IP, built on the first carve that touches the IP, instead
// of a Toeplitz hash per allocation probe. One client IP bounds the
// live population by the source-port band (~44k flows); host_ip_count
// widens the tuple space for bigger populations. footprint_bytes()
// reports the actual allocated bytes so benches can gate a bytes/flow
// budget (DESIGN.md §15 documents 48 B/flow at a million slots).
//
// FlowGen is a deterministic state machine over its own RNG stream: the
// caller (one event lane, typically) drives it slot by slot, and the
// same seed and call sequence reproduce the same traffic bit for bit.
#pragma once

#include <optional>
#include <vector>

#include "vfpga/migrate/state_io.hpp"
#include "vfpga/net/addr.hpp"
#include "vfpga/sim/rng.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::net {

enum class ArrivalProcess : u8 {
  kPoisson,  ///< exponential per-flow inter-packet gaps
  kMmpp2,    ///< 2-state Markov-modulated Poisson (slow / burst)
};

struct FlowGenConfig {
  /// Endpoint identity: flows are (client ip, searched src port) ->
  /// (fpga_ip, fpga_port) UDP 4-tuples. Client IPs are host_ip ..
  /// host_ip + host_ip_count - 1; one IP caps the live population at
  /// the source-port band, so the million-flow soak spreads the table
  /// over dozens of IPs.
  Ipv4Addr host_ip{};
  u16 host_ip_count = 1;
  Ipv4Addr fpga_ip{};
  u16 fpga_port = 9000;

  /// Queue pairs in the global RSS space flows steer across.
  u16 pairs = 8;
  /// Only these pairs are populated (slot s -> pair_set[s % size]);
  /// empty = all pairs round-robin. This is how a sharded lane builds a
  /// generator restricted to the pairs it owns. Tuples carved for pairs
  /// outside the set are discarded, not stored.
  std::vector<u16> pair_set;

  /// Concurrent flow-table slots (the live-flow population).
  u32 flows = 1024;

  /// Heavy-tailed flow length, in packets: bounded Pareto.
  double size_shape = 1.25;
  u64 size_min_packets = 1;
  u64 size_max_packets = 4096;

  /// Payload bytes per packet, uniform in [min, max].
  u32 payload_min = 64;
  u32 payload_max = 1400;

  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Mean per-flow inter-packet gap (slow state), microseconds.
  double mean_gap_us = 50.0;
  /// MMPP burst state: gap mean divided by this factor.
  double mmpp_burst_factor = 8.0;
  /// Mean packets between MMPP state flips (geometric holding time).
  double mmpp_mean_state_packets = 32.0;

  /// Refill a finished flow's slot with a fresh flow (new 4-tuple, same
  /// pair). Off = slots close when their flow completes.
  bool churn = true;

  /// Source-port carving starts here per client IP; released tuples are
  /// reused through the freelists before the cursor advances.
  u16 first_port = 20'000;

  u64 seed = 20'25;
};

/// Flow length in packets: bounded Pareto(shape) over
/// [size_min_packets, size_max_packets] by inverse CDF. Exposed so tests
/// can pin the distribution's quantiles per seed.
[[nodiscard]] u64 sample_flow_size_packets(sim::Xoshiro256& rng,
                                           const FlowGenConfig& config);

class FlowGen {
 public:
  /// Read-only view of one slot, assembled from the SoA columns.
  struct Flow {
    u64 id = 0;  ///< unique across churn generations
    Ipv4Addr src_ip{};
    u16 src_port = 0;
    u16 pair = 0;
    u64 remaining_packets = 0;
    bool burst = false;  ///< MMPP state
    bool open = false;
  };

  /// One packet departure from a slot's current flow.
  struct Departure {
    u64 flow_id = 0;
    u16 pair = 0;
    u32 payload_bytes = 0;
    /// Delay from the previous departure of this slot (or from open time
    /// for the first packet).
    sim::Duration gap{};
    /// Last packet of the flow: the caller must churn_slot() or
    /// close_slot() before asking for more traffic from this slot.
    bool fin = false;
  };

  explicit FlowGen(const FlowGenConfig& config);

  [[nodiscard]] u32 slots() const { return static_cast<u32>(ids_.size()); }
  [[nodiscard]] Flow flow(u32 slot) const;

  /// Next packet from the slot's open flow. Precondition: slot is open.
  [[nodiscard]] Departure next_packet(u32 slot);

  /// Retire a finished (remaining == 0) flow. With churn on, installs a
  /// fresh flow on the same pair and returns its arrival delay; with
  /// churn off, closes the slot and returns nullopt.
  std::optional<sim::Duration> churn_slot(u32 slot);

  /// Close an unfinished flow (the harness reached its packet quota).
  /// Counts as abandoned, not completed.
  void close_slot(u32 slot);

  /// Tear down and re-establish the slot's flow with the SAME 4-tuple
  /// (a reconnect). The flow gets a fresh id and size, but its source
  /// tuple — and therefore its RSS pair — is preserved.
  void reconnect_slot(u32 slot);

  // ---- bookkeeping (the churn-leak test audits these) ------------------------
  [[nodiscard]] u64 flows_created() const { return created_; }
  [[nodiscard]] u64 flows_completed() const { return completed_; }
  [[nodiscard]] u64 flows_abandoned() const { return abandoned_; }
  [[nodiscard]] u64 packets_emitted() const { return packets_; }
  /// Open flow-table entries; created == completed + abandoned + open
  /// always holds, or entries leaked.
  [[nodiscard]] u64 open_flows() const { return open_; }
  /// Live (ip, port) tuples held by open flows — must equal
  /// open_flows(), or tuple bookkeeping leaked.
  [[nodiscard]] u64 live_ports() const { return live_tuples_; }

  /// Bytes of flow-table state actually allocated: the SoA columns,
  /// every lazily built per-IP steer table, and the tuple freelists.
  /// The soak bench divides this by slots() to gate the bytes/flow
  /// budget.
  [[nodiscard]] u64 footprint_bytes() const;

  /// In-process checkpoint for optimistic lane speculation: RNG stream,
  /// the SoA columns (raw, host byte order — this is NOT a migration
  /// image), freelists, carve cursors and counters. Steer tables are
  /// pure functions of the config, so only their built-flags are saved;
  /// restore drops tables built after the save so footprint_bytes()
  /// rewinds with the rest of the state. load_state() requires a
  /// generator constructed from the same config save_state() saw.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  // flags_ bits.
  static constexpr u8 kOpen = 0x1;
  static constexpr u8 kBurst = 0x2;

  [[nodiscard]] u16 pair_for_slot(u32 slot) const;
  [[nodiscard]] Ipv4Addr client_ip(u32 ip_index) const {
    return Ipv4Addr{config_.host_ip.value + ip_index};
  }
  /// RSS pair of (client_ip(ip_index), port) — served from the IP's
  /// cached steer table, built on first touch.
  [[nodiscard]] u16 steer_pair(u32 ip_index, u16 port);
  /// Pop a tuple steering to `pair`, carving fresh (ip, port) space as
  /// needed. Packed as (ip_index << 16) | port.
  [[nodiscard]] u32 allocate_tuple(u16 pair);
  /// Classify the tuple under the carve cursor into its pair's freelist
  /// (or discard it if the pair is outside the population).
  void carve_tuple();
  void release_tuple(u16 pair, u32 tuple);
  /// Install a fresh flow in `slot` holding `tuple`.
  void open_slot(u32 slot, u32 tuple);
  void release_slot(u32 slot);
  [[nodiscard]] u32 sample_size();
  [[nodiscard]] sim::Duration sample_gap(u32 slot);

  FlowGenConfig config_;
  sim::Xoshiro256 rng_;

  // ---- per-slot state, struct of arrays (17 bytes per slot) ------------------
  std::vector<u64> ids_;
  std::vector<u32> remaining_;  ///< packets left (size_max fits u32)
  std::vector<u16> ports_;
  std::vector<u16> ip_index_;
  std::vector<u8> flags_;

  // ---- tuple allocator -------------------------------------------------------
  /// steer_[ip_index][port] -> pair; empty until the carve cursor first
  /// enters the IP. u8 entries (pairs <= 256 enforced for caching).
  std::vector<std::vector<u8>> steer_;
  /// Released / pre-carved tuples per pair, LIFO. Only pairs in the
  /// population (pair_set, or all pairs) ever hold entries.
  std::vector<std::vector<u32>> free_by_pair_;
  std::vector<u8> pair_active_;
  u32 carve_ip_ = 0;
  u32 carve_port_ = 0;
  u64 live_tuples_ = 0;

  u64 next_id_ = 1;
  u64 created_ = 0;
  u64 completed_ = 0;
  u64 abandoned_ = 0;
  u64 packets_ = 0;
  u64 open_ = 0;
};

}  // namespace vfpga::net
