// Receive-side scaling: Toeplitz flow hashing and queue steering.
//
// Both endpoints of the multi-queue data plane use the same hash to pick
// a queue pair for a UDP 4-tuple: the host netstack when choosing which
// TX queue carries a flow, and the FPGA user logic when steering the
// echo completion back through its RSS indirection table. The hash is
// the classic Toeplitz construction (MSDN RSS spec; also hXDP's flow
// dispatch stage) over a symmetric serialization of the 4-tuple, so a
// flow and its echo — whose source/destination are swapped — land on the
// same pair without the device needing per-flow state.
#pragma once

#include <array>

#include "vfpga/common/types.hpp"
#include "vfpga/net/addr.hpp"

namespace vfpga::net {

/// Toeplitz secret key length (matches the 40-byte key Microsoft's RSS
/// verification suite uses; the value itself is fixed so both sides of
/// the simulation agree without negotiation).
inline constexpr std::size_t kRssKeyBytes = 40;

/// Entries in the device's RSS indirection table. Power of two so the
/// table index is a cheap mask, and large enough that 1..64 active
/// pairs spread evenly.
inline constexpr u16 kSteeringTableSize = 128;

/// The fixed Toeplitz key shared by host and device models.
[[nodiscard]] const std::array<u8, kRssKeyBytes>& rss_key();

/// Raw Toeplitz hash of `data` under `key`.
[[nodiscard]] u32 toeplitz_hash(ConstByteSpan data,
                                const std::array<u8, kRssKeyBytes>& key);

/// Symmetric flow hash over the UDP 4-tuple: the (addr, port) endpoints
/// are ordered numerically before serialization, so hash(A->B) ==
/// hash(B->A) and an echoed packet steers back to its originating pair.
[[nodiscard]] u32 rss_flow_hash(Ipv4Addr src_ip, u16 src_port, Ipv4Addr dst_ip,
                                u16 dst_port);

/// Map a flow hash onto one of `active_pairs` queue pairs through the
/// shared indirection-table geometry. Host and device must use this
/// same reduction or steering silently diverges.
[[nodiscard]] constexpr u16 steer(u32 hash, u16 active_pairs) {
  const u16 slot = static_cast<u16>(hash % kSteeringTableSize);
  return active_pairs <= 1 ? u16{0} : static_cast<u16>(slot % active_pairs);
}

/// Find the first source port >= `from` whose symmetric flow hash
/// steers (src_ip, port) -> (dst_ip, dst_port) onto queue pair
/// `want_pair` out of `active_pairs`. Deterministic (walks upward from
/// `from`) so flow identities are stable across trials, and guaranteed
/// to terminate before wrapping: the Toeplitz hash varies with every
/// port bit, covering all pair residues within a handful of candidates.
/// Shared by the multi-flow harness and the flowgen traffic generator —
/// both must agree with the device's steering or affinity claims are
/// meaningless.
[[nodiscard]] u16 search_source_port(Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                     u16 dst_port, u16 active_pairs,
                                     u16 want_pair, u16 from);

}  // namespace vfpga::net
