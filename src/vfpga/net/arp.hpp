// ARP (RFC 826) messages and the neighbour cache.
//
// The paper's setup adds "entries ... to the operating system's routing
// table and ARP cache to facilitate routing packets from the test
// application to the FPGA" (§III-B.1). The cache supports both that
// static pre-population and dynamic resolution via request/reply, which
// the examples exercise against the FPGA user logic.
#pragma once

#include <optional>
#include <unordered_map>

#include "vfpga/net/addr.hpp"

namespace vfpga::net {

enum class ArpOp : u16 {
  Request = 1,
  Reply = 2,
};

struct ArpMessage {
  ArpOp op = ArpOp::Request;
  MacAddr sender_mac{};
  Ipv4Addr sender_ip{};
  MacAddr target_mac{};
  Ipv4Addr target_ip{};

  static constexpr u64 kSize = 28;  ///< Ethernet/IPv4 ARP body
};

[[nodiscard]] Bytes build_arp_message(const ArpMessage& message);
[[nodiscard]] std::optional<ArpMessage> parse_arp_message(ConstByteSpan data);

class ArpCache {
 public:
  /// Insert/update an entry; `permanent` marks statically-configured
  /// entries (ip neigh add ... PERMANENT) that lookups never expire.
  void insert(Ipv4Addr ip, MacAddr mac, bool permanent = false);

  [[nodiscard]] std::optional<MacAddr> lookup(Ipv4Addr ip) const;

  /// Process a received ARP message the way a host stack does: learn the
  /// sender mapping; if it is a request for `own_ip`, produce a reply.
  std::optional<ArpMessage> observe(const ArpMessage& message, Ipv4Addr own_ip,
                                    MacAddr own_mac);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    MacAddr mac{};
    bool permanent = false;
  };
  std::unordered_map<u32, Entry> entries_;
};

}  // namespace vfpga::net
