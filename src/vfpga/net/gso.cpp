#include "vfpga/net/gso.hpp"

#include <algorithm>

#include "vfpga/common/endian.hpp"
#include "vfpga/net/checksum.hpp"
#include "vfpga/net/ethernet.hpp"
#include "vfpga/net/ipv4.hpp"
#include "vfpga/net/udp.hpp"

namespace vfpga::net {
namespace {

// Fixed layout of the stack's UDP frames (no IP options, no VLANs).
constexpr u64 kIpOff = EthernetHeader::kSize;
constexpr u64 kUdpOff = kIpOff + Ipv4Header::kSize;
constexpr u64 kHeadersLen = kUdpOff + UdpHeader::kSize;

// Field offsets inside the frame.
constexpr u64 kIpTotalLen = kIpOff + 2;
constexpr u64 kIpId = kIpOff + 4;
constexpr u64 kIpCsum = kIpOff + 10;
constexpr u64 kIpSrc = kIpOff + 12;
constexpr u64 kIpDst = kIpOff + 16;
constexpr u64 kUdpLen = kUdpOff + 4;
constexpr u64 kUdpCsum = kUdpOff + 6;

bool is_simple_udp_frame(ConstByteSpan frame) {
  return frame.size() >= kHeadersLen &&
         load_be16(frame, 12) == static_cast<u16>(EtherType::Ipv4) &&
         frame[kIpOff] == 0x45 &&
         frame[kIpOff + 9] == static_cast<u8>(IpProtocol::Udp);
}

}  // namespace

std::vector<Bytes> gso_segment_udp(ConstByteSpan superframe, u16 gso_size,
                                   bool fill_checksums) {
  std::vector<Bytes> segments;
  if (gso_size == 0 || !is_simple_udp_frame(superframe)) {
    return segments;
  }
  const u16 ip_total = load_be16(superframe, kIpTotalLen);
  if (ip_total < Ipv4Header::kSize + UdpHeader::kSize ||
      kIpOff + ip_total > superframe.size()) {
    return segments;
  }
  const u64 payload_len =
      static_cast<u64>(ip_total) - Ipv4Header::kSize - UdpHeader::kSize;
  const ConstByteSpan payload = superframe.subspan(kHeadersLen, payload_len);
  const u32 src = load_be32(superframe, kIpSrc);
  const u32 dst = load_be32(superframe, kIpDst);
  const u16 base_id = load_be16(superframe, kIpId);
  const u64 count =
      std::max<u64>(1, (payload_len + gso_size - 1) / gso_size);

  u16 prev_csum = 0;
  u16 prev_id = 0;
  u16 prev_total = 0;
  for (u64 i = 0; i < count; ++i) {
    const u64 off = i * gso_size;
    const u64 len = std::min<u64>(gso_size, payload_len - off);
    const u16 seg_ip_total =
        static_cast<u16>(Ipv4Header::kSize + UdpHeader::kSize + len);
    const u64 frame_len =
        std::max<u64>(kIpOff + seg_ip_total,
                      EthernetHeader::kSize + kMinEthernetPayload);
    Bytes frame(frame_len, 0);
    ByteSpan s{frame};
    std::copy_n(superframe.begin(), kHeadersLen, frame.begin());
    std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(off), len,
                frame.begin() + kHeadersLen);

    store_be16(s, kIpTotalLen, seg_ip_total);
    const u16 id = static_cast<u16>(base_id + i);
    store_be16(s, kIpId, id);
    u16 ip_csum;
    if (i == 0) {
      // One full header sum for the first segment; every later segment
      // is an incremental fixup of the two words that changed.
      store_be16(s, kIpCsum, 0);
      ip_csum = internet_checksum(
          ConstByteSpan{s}.subspan(kIpOff, Ipv4Header::kSize));
    } else {
      ip_csum = checksum_update_u16(prev_csum, prev_id, id);
      if (seg_ip_total != prev_total) {
        ip_csum = checksum_update_u16(ip_csum, prev_total, seg_ip_total);
      }
    }
    store_be16(s, kIpCsum, ip_csum);
    prev_csum = ip_csum;
    prev_id = id;
    prev_total = seg_ip_total;

    const u16 udp_len = static_cast<u16>(UdpHeader::kSize + len);
    store_be16(s, kUdpLen, udp_len);
    store_be16(s, kUdpCsum, 0);
    if (fill_checksums) {
      ChecksumAccumulator acc;
      acc.add_u32(src);
      acc.add_u32(dst);
      acc.add_u16(static_cast<u16>(IpProtocol::Udp));
      acc.add_u16(udp_len);
      acc.add(ConstByteSpan{s}.subspan(kUdpOff, udp_len));
      const u16 csum = acc.fold();
      store_be16(s, kUdpCsum, csum == 0 ? 0xffff : csum);
    }
    segments.push_back(std::move(frame));
  }
  return segments;
}

std::optional<GroResult> gro_coalesce_udp(const std::vector<Bytes>& frames) {
  if (frames.empty()) {
    return std::nullopt;
  }
  const ConstByteSpan first{frames.front()};
  if (!is_simple_udp_frame(first)) {
    return std::nullopt;
  }
  const u32 src = load_be32(first, kIpSrc);
  const u32 dst = load_be32(first, kIpDst);
  const u32 ports = load_be32(first, kUdpOff);  // src+dst port pair
  const u16 base_id = load_be16(first, kIpId);

  u64 total_payload = 0;
  u16 gso_size = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const ConstByteSpan frame{frames[i]};
    if (!is_simple_udp_frame(frame) || load_be32(frame, kIpSrc) != src ||
        load_be32(frame, kIpDst) != dst ||
        load_be32(frame, kUdpOff) != ports ||
        load_be16(frame, kIpId) != static_cast<u16>(base_id + i)) {
      return std::nullopt;
    }
    const u16 ip_total = load_be16(frame, kIpTotalLen);
    if (ip_total < Ipv4Header::kSize + UdpHeader::kSize ||
        kIpOff + ip_total > frame.size()) {
      return std::nullopt;
    }
    const u64 seg_payload =
        static_cast<u64>(ip_total) - Ipv4Header::kSize - UdpHeader::kSize;
    // A coherent train: every non-final segment carries the same payload
    // size (the sender's gso_size); the tail may be short.
    if (i == 0) {
      gso_size = static_cast<u16>(seg_payload);
    } else if (i + 1 < frames.size() && seg_payload != gso_size) {
      return std::nullopt;
    }
    // Verify the segment's checksum before vouching for the merge.
    const auto udp = parse_udp_datagram(
        frame.subspan(kUdpOff, static_cast<u64>(ip_total) -
                                   Ipv4Header::kSize),
        Ipv4Addr{src}, Ipv4Addr{dst});
    if (!udp || !udp->checksum_ok) {
      return std::nullopt;
    }
    total_payload += seg_payload;
  }
  const u64 merged_ip_total =
      Ipv4Header::kSize + UdpHeader::kSize + total_payload;
  if (merged_ip_total > 0xffff) {
    return std::nullopt;
  }

  GroResult out;
  out.gso_size = gso_size;
  out.segments = static_cast<u16>(frames.size());
  out.frame.assign(kIpOff + merged_ip_total, 0);
  ByteSpan s{out.frame};
  std::copy_n(first.begin(), kHeadersLen, out.frame.begin());
  store_be16(s, kIpTotalLen, static_cast<u16>(merged_ip_total));
  // Incremental fixup of the first segment's header checksum for the
  // one word that changed (id stays at base_id).
  store_be16(s, kIpCsum,
             checksum_update_u16(load_be16(first, kIpCsum),
                                 load_be16(first, kIpTotalLen),
                                 static_cast<u16>(merged_ip_total)));
  store_be16(s, kUdpLen,
             static_cast<u16>(UdpHeader::kSize + total_payload));
  // The UDP checksum is intentionally left as the first segment's value:
  // it is stale for the merged lengths/payload, exactly like a real GRO
  // skb. The device signals kDataValid instead; consumers must trust it.
  u64 write = kHeadersLen;
  for (const Bytes& f : frames) {
    const ConstByteSpan frame{f};
    const u16 ip_total = load_be16(frame, kIpTotalLen);
    const u64 seg_payload =
        static_cast<u64>(ip_total) - Ipv4Header::kSize - UdpHeader::kSize;
    std::copy_n(frame.begin() + static_cast<std::ptrdiff_t>(kHeadersLen),
                seg_payload,
                out.frame.begin() + static_cast<std::ptrdiff_t>(write));
    write += seg_payload;
  }
  return out;
}

}  // namespace vfpga::net
