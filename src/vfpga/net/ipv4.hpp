// IPv4 header construction and parsing (RFC 791).
#pragma once

#include <optional>

#include "vfpga/net/addr.hpp"

namespace vfpga::net {

enum class IpProtocol : u8 {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

struct Ipv4Header {
  Ipv4Addr src{};
  Ipv4Addr dst{};
  IpProtocol protocol = IpProtocol::Udp;
  u8 ttl = 64;
  u16 identification = 0;
  u16 total_length = 0;  ///< filled by build

  static constexpr u64 kSize = 20;  ///< no options in this stack
};

/// Build header + payload with a valid header checksum.
[[nodiscard]] Bytes build_ipv4_packet(Ipv4Header header, ConstByteSpan payload);

struct ParsedIpv4 {
  Ipv4Header header;
  u64 payload_offset = 0;
  u64 payload_length = 0;
  bool checksum_ok = false;
};

[[nodiscard]] std::optional<ParsedIpv4> parse_ipv4_packet(ConstByteSpan packet);

}  // namespace vfpga::net
