// Longest-prefix-match routing table.
//
// Models the kernel FIB consulted on every sendto(): the test setup adds
// a host route for the FPGA's address through the virtio-net interface.
// Routes are (prefix, length, interface, optional gateway); lookup is
// longest-prefix-match with on-link routes returning the destination
// itself as the next hop.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vfpga/net/addr.hpp"

namespace vfpga::net {

struct Route {
  Ipv4Addr prefix{};
  u8 prefix_length = 0;      ///< 0..32
  u32 interface_id = 0;
  std::optional<Ipv4Addr> gateway;  ///< nullopt: destination is on-link
};

struct NextHop {
  Ipv4Addr address{};  ///< neighbour to ARP for
  u32 interface_id = 0;
};

class RoutingTable {
 public:
  void add(const Route& route);

  /// Longest-prefix match; nullopt when no route covers `dst`
  /// (EHOSTUNREACH).
  [[nodiscard]] std::optional<NextHop> lookup(Ipv4Addr dst) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

 private:
  static bool prefix_matches(const Route& route, Ipv4Addr dst);
  std::vector<Route> routes_;
};

}  // namespace vfpga::net
