// UDP segmentation (GSO/USO) and receive coalescing (GRO).
//
// The offload datapath hands the device ONE jumbo Ethernet frame with a
// virtio_net_hdr describing the segment size; the device slices it into
// wire-MTU frames, fixing IP identification/length per segment with the
// RFC 1624 incremental checksum helpers and stamping each segment's UDP
// checksum in a single pass (VIRTIO_NET_F_HOST_UFO). The mirror
// operation merges an echoed segment train back into one superframe for
// mergeable RX delivery (VIRTIO_NET_F_GUEST_UFO + kDataValid).
//
// Segmentation uses L4 semantics (each output is an independent,
// complete UDP datagram — Linux's UDP_SEGMENT/USO model), not IP
// fragmentation: this stack has no fragment reassembly, and the paper's
// workload is datagram echo. DESIGN.md §11 spells out the deviation.
#pragma once

#include <optional>
#include <vector>

#include "vfpga/common/types.hpp"

namespace vfpga::net {

/// Slice a UDP-over-IPv4 Ethernet superframe into wire frames carrying
/// at most `gso_size` UDP payload bytes each. Every output frame is a
/// complete datagram: IP identification increments per segment, IP and
/// UDP lengths are rewritten, the IP header checksum is fixed up
/// incrementally from the first segment's, and (when `fill_checksums`)
/// each segment's UDP checksum is computed over its pseudo-header.
/// Returns an empty vector if the superframe does not parse as
/// eth+IPv4+UDP or `gso_size` is zero.
[[nodiscard]] std::vector<Bytes> gso_segment_udp(ConstByteSpan superframe,
                                                 u16 gso_size,
                                                 bool fill_checksums = true);

struct GroResult {
  Bytes frame;       ///< merged superframe (eth + IPv4 + UDP + payload)
  u16 gso_size = 0;  ///< payload bytes per source segment (first frame)
  u16 segments = 0;  ///< how many wire frames were merged
};

/// Merge a train of same-flow UDP segment frames into one superframe.
/// Each input's UDP checksum is verified (the device vouches for the
/// result via kDataValid); the merged frame carries correct IP lengths
/// and header checksum but a STALE UDP checksum — consumers must honour
/// the checksum-validated signal instead of re-verifying. Returns
/// nullopt when the frames do not form one coherent train (flow
/// mismatch, non-consecutive IP ids, or a bad segment checksum).
[[nodiscard]] std::optional<GroResult> gro_coalesce_udp(
    const std::vector<Bytes>& frames);

}  // namespace vfpga::net
