#include "vfpga/net/arp.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"

namespace vfpga::net {

Bytes build_arp_message(const ArpMessage& message) {
  Bytes out(ArpMessage::kSize, 0);
  ByteSpan s{out};
  store_be16(s, 0, 1);       // HTYPE: Ethernet
  store_be16(s, 2, 0x0800);  // PTYPE: IPv4
  out[4] = 6;                // HLEN
  out[5] = 4;                // PLEN
  store_be16(s, 6, static_cast<u16>(message.op));
  std::copy(message.sender_mac.octets.begin(),
            message.sender_mac.octets.end(), out.begin() + 8);
  store_be32(s, 14, message.sender_ip.value);
  std::copy(message.target_mac.octets.begin(),
            message.target_mac.octets.end(), out.begin() + 18);
  store_be32(s, 24, message.target_ip.value);
  return out;
}

std::optional<ArpMessage> parse_arp_message(ConstByteSpan data) {
  if (data.size() < ArpMessage::kSize) {
    return std::nullopt;
  }
  if (load_be16(data, 0) != 1 || load_be16(data, 2) != 0x0800 ||
      data[4] != 6 || data[5] != 4) {
    return std::nullopt;
  }
  const u16 op = load_be16(data, 6);
  if (op != static_cast<u16>(ArpOp::Request) &&
      op != static_cast<u16>(ArpOp::Reply)) {
    return std::nullopt;
  }
  ArpMessage msg;
  msg.op = static_cast<ArpOp>(op);
  std::copy_n(data.begin() + 8, 6, msg.sender_mac.octets.begin());
  msg.sender_ip = Ipv4Addr{load_be32(data, 14)};
  std::copy_n(data.begin() + 18, 6, msg.target_mac.octets.begin());
  msg.target_ip = Ipv4Addr{load_be32(data, 24)};
  return msg;
}

void ArpCache::insert(Ipv4Addr ip, MacAddr mac, bool permanent) {
  entries_[ip.value] = Entry{mac, permanent};
}

std::optional<MacAddr> ArpCache::lookup(Ipv4Addr ip) const {
  const auto it = entries_.find(ip.value);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.mac;
}

std::optional<ArpMessage> ArpCache::observe(const ArpMessage& message,
                                            Ipv4Addr own_ip, MacAddr own_mac) {
  // Learn (but never clobber a permanent entry with a dynamic one).
  const auto it = entries_.find(message.sender_ip.value);
  if (it == entries_.end() || !it->second.permanent) {
    entries_[message.sender_ip.value] = Entry{message.sender_mac, false};
  }
  if (message.op == ArpOp::Request && message.target_ip == own_ip) {
    ArpMessage reply;
    reply.op = ArpOp::Reply;
    reply.sender_mac = own_mac;
    reply.sender_ip = own_ip;
    reply.target_mac = message.sender_mac;
    reply.target_ip = message.sender_ip;
    return reply;
  }
  return std::nullopt;
}

}  // namespace vfpga::net
