// Network address types.
#pragma once

#include <array>
#include <compare>
#include <string>

#include "vfpga/common/types.hpp"

namespace vfpga::net {

struct MacAddr {
  std::array<u8, 6> octets{};

  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

  [[nodiscard]] constexpr bool is_broadcast() const {
    for (u8 o : octets) {
      if (o != 0xff) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;
};

inline constexpr MacAddr kBroadcastMac{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};

struct Ipv4Addr {
  u32 value = 0;  ///< host byte order internally

  static constexpr Ipv4Addr from_octets(u8 a, u8 b, u8 c, u8 d) {
    return Ipv4Addr{static_cast<u32>(a) << 24 | static_cast<u32>(b) << 16 |
                    static_cast<u32>(c) << 8 | static_cast<u32>(d)};
  }

  friend constexpr auto operator<=>(const Ipv4Addr&,
                                    const Ipv4Addr&) = default;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] inline std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

[[nodiscard]] inline std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

}  // namespace vfpga::net
