#include "vfpga/net/flowgen.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "vfpga/common/contract.hpp"
#include "vfpga/net/rss.hpp"
#include "vfpga/sim/distributions.hpp"

namespace vfpga::net {

namespace {

/// Keep the carve cursor inside a sane allocation band: [first_port,
/// kPortBandEnd) per client IP. Released tuples re-enter circulation
/// through the freelists, so the cursor itself never has to wrap.
constexpr u32 kPortBandEnd = 64'000;

}  // namespace

u64 sample_flow_size_packets(sim::Xoshiro256& rng,
                             const FlowGenConfig& config) {
  const double lo = static_cast<double>(config.size_min_packets);
  const double hi = static_cast<double>(config.size_max_packets);
  VFPGA_EXPECTS(lo >= 1.0 && hi >= lo && config.size_shape > 0.0);
  // Bounded Pareto by inverse CDF: F(x) = (1-(L/x)^a) / (1-(L/H)^a).
  const double a = config.size_shape;
  const double ratio = std::pow(lo / hi, a);
  const double u = rng.uniform01();
  const double x = lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / a);
  const double clamped = std::min(std::max(x, lo), hi);
  return static_cast<u64>(clamped);
}

FlowGen::FlowGen(const FlowGenConfig& config)
    : config_(config), rng_(config.seed) {
  VFPGA_EXPECTS(config_.flows >= 1);
  VFPGA_EXPECTS(config_.pairs >= 1 && config_.pairs <= 256);
  VFPGA_EXPECTS(config_.host_ip_count >= 1);
  VFPGA_EXPECTS(config_.payload_min >= 1 &&
                config_.payload_max >= config_.payload_min);
  VFPGA_EXPECTS(config_.mean_gap_us > 0.0);
  VFPGA_EXPECTS(static_cast<u32>(config_.first_port) < kPortBandEnd);
  VFPGA_EXPECTS(config_.size_max_packets <=
                std::numeric_limits<u32>::max());
  for (const u16 pair : config_.pair_set) {
    VFPGA_EXPECTS(pair < config_.pairs);
  }

  pair_active_.assign(config_.pairs, config_.pair_set.empty() ? 1 : 0);
  for (const u16 pair : config_.pair_set) {
    pair_active_[pair] = 1;
  }
  free_by_pair_.resize(config_.pairs);
  steer_.resize(config_.host_ip_count);
  carve_port_ = config_.first_port;

  ids_.resize(config_.flows);
  remaining_.resize(config_.flows);
  ports_.resize(config_.flows);
  ip_index_.resize(config_.flows);
  flags_.assign(config_.flows, 0);
  for (u32 slot = 0; slot < config_.flows; ++slot) {
    open_slot(slot, allocate_tuple(pair_for_slot(slot)));
  }
}

FlowGen::Flow FlowGen::flow(u32 slot) const {
  VFPGA_EXPECTS(slot < slots());
  Flow view;
  view.id = ids_[slot];
  view.src_ip = client_ip(ip_index_[slot]);
  view.src_port = ports_[slot];
  view.pair = pair_for_slot(slot);
  view.remaining_packets = remaining_[slot];
  view.burst = (flags_[slot] & kBurst) != 0;
  view.open = (flags_[slot] & kOpen) != 0;
  return view;
}

u16 FlowGen::pair_for_slot(u32 slot) const {
  if (config_.pair_set.empty()) {
    return static_cast<u16>(slot % config_.pairs);
  }
  return config_.pair_set[slot % config_.pair_set.size()];
}

u16 FlowGen::steer_pair(u32 ip_index, u16 port) {
  std::vector<u8>& table = steer_[ip_index];
  if (table.empty()) {
    // Lazy RSS: hash the whole port band once per IP the cursor enters,
    // instead of a Toeplitz hash per allocation probe. IPs the carve
    // never reaches cost nothing.
    table.resize(65'536);
    const Ipv4Addr ip = client_ip(ip_index);
    for (u32 p = config_.first_port; p < kPortBandEnd; ++p) {
      table[p] = static_cast<u8>(
          steer(rss_flow_hash(ip, static_cast<u16>(p), config_.fpga_ip,
                              config_.fpga_port),
                config_.pairs));
    }
  }
  return table[port];
}

void FlowGen::carve_tuple() {
  VFPGA_EXPECTS(carve_ip_ < config_.host_ip_count);
  const u16 port = static_cast<u16>(carve_port_);
  const u16 pair = steer_pair(carve_ip_, port);
  if (pair_active_[pair] != 0) {
    free_by_pair_[pair].push_back((carve_ip_ << 16) | port);
  }
  if (++carve_port_ >= kPortBandEnd) {
    carve_port_ = config_.first_port;
    ++carve_ip_;
  }
}

u32 FlowGen::allocate_tuple(u16 pair) {
  std::vector<u32>& freelist = free_by_pair_[pair];
  while (freelist.empty()) {
    if (carve_ip_ >= config_.host_ip_count) {
      VFPGA_UNREACHABLE("flowgen: 4-tuple space exhausted by live flows "
                        "(raise host_ip_count)");
    }
    carve_tuple();
  }
  const u32 tuple = freelist.back();
  freelist.pop_back();
  ++live_tuples_;
  return tuple;
}

void FlowGen::release_tuple(u16 pair, u32 tuple) {
  VFPGA_ASSERT(live_tuples_ > 0);
  free_by_pair_[pair].push_back(tuple);
  --live_tuples_;
}

u32 FlowGen::sample_size() {
  return static_cast<u32>(sample_flow_size_packets(rng_, config_));
}

void FlowGen::open_slot(u32 slot, u32 tuple) {
  VFPGA_EXPECTS((flags_[slot] & kOpen) == 0);
  ids_[slot] = next_id_++;
  ports_[slot] = static_cast<u16>(tuple & 0xffff);
  ip_index_[slot] = static_cast<u16>(tuple >> 16);
  remaining_[slot] = sample_size();
  flags_[slot] = kOpen;
  ++created_;
  ++open_;
}

void FlowGen::release_slot(u32 slot) {
  VFPGA_EXPECTS((flags_[slot] & kOpen) != 0);
  release_tuple(pair_for_slot(slot),
                (static_cast<u32>(ip_index_[slot]) << 16) | ports_[slot]);
  flags_[slot] = 0;
  --open_;
}

sim::Duration FlowGen::sample_gap(u32 slot) {
  double mean = config_.mean_gap_us;
  if (config_.arrivals == ArrivalProcess::kMmpp2) {
    if ((flags_[slot] & kBurst) != 0) {
      mean /= config_.mmpp_burst_factor;
    }
    // Geometric holding time in packets: flip with p = 1/mean_packets.
    if (sim::sample_bernoulli(rng_,
                              1.0 / config_.mmpp_mean_state_packets)) {
      flags_[slot] ^= kBurst;
    }
  }
  return sim::from_nanos(sim::sample_exponential(rng_, mean * 1e3));
}

FlowGen::Departure FlowGen::next_packet(u32 slot) {
  VFPGA_EXPECTS(slot < slots());
  VFPGA_EXPECTS((flags_[slot] & kOpen) != 0 && remaining_[slot] > 0);
  Departure d;
  d.flow_id = ids_[slot];
  d.pair = pair_for_slot(slot);
  d.payload_bytes =
      config_.payload_min +
      static_cast<u32>(rng_.uniform_below(config_.payload_max -
                                          config_.payload_min + 1));
  d.gap = sample_gap(slot);
  --remaining_[slot];
  d.fin = remaining_[slot] == 0;
  ++packets_;
  return d;
}

std::optional<sim::Duration> FlowGen::churn_slot(u32 slot) {
  VFPGA_EXPECTS(slot < slots());
  VFPGA_EXPECTS((flags_[slot] & kOpen) != 0 && remaining_[slot] == 0);
  const u16 pair = pair_for_slot(slot);
  release_slot(slot);
  ++completed_;
  if (!config_.churn) {
    return std::nullopt;
  }
  open_slot(slot, allocate_tuple(pair));
  // Replacement flow's arrival: one exponential flow-interarrival gap.
  return sim::from_nanos(
      sim::sample_exponential(rng_, config_.mean_gap_us * 1e3));
}

void FlowGen::close_slot(u32 slot) {
  release_slot(slot);
  ++abandoned_;
}

void FlowGen::reconnect_slot(u32 slot) {
  VFPGA_EXPECTS(slot < slots());
  VFPGA_EXPECTS((flags_[slot] & kOpen) != 0);
  // Same 4-tuple, so the tuple never visits the freelist: the old
  // connection completes (by reset) and a fresh flow takes over the
  // slot in place. RSS affinity is preserved by construction.
  ++completed_;
  ids_[slot] = next_id_++;
  remaining_[slot] = sample_size();
  flags_[slot] = kOpen;  // clears the MMPP burst state, like a new flow
  ++created_;
}

namespace {

template <typename T>
ConstByteSpan column_bytes(const std::vector<T>& column) {
  return ConstByteSpan{reinterpret_cast<const u8*>(column.data()),
                       column.size() * sizeof(T)};
}

template <typename T>
ByteSpan column_bytes_mut(std::vector<T>& column) {
  return ByteSpan{reinterpret_cast<u8*>(column.data()),
                  column.size() * sizeof(T)};
}

}  // namespace

void FlowGen::save_state(migrate::StateWriter& w) const {
  for (const u64 word : rng_.state()) {
    w.put_u64(word);
  }
  // Column lengths are fixed by the config the restoring generator must
  // share, so the bytes go raw, no per-column length prefix.
  w.put_bytes(column_bytes(ids_));
  w.put_bytes(column_bytes(remaining_));
  w.put_bytes(column_bytes(ports_));
  w.put_bytes(column_bytes(ip_index_));
  w.put_bytes(column_bytes(flags_));
  for (const std::vector<u8>& table : steer_) {
    w.put_bool(!table.empty());
  }
  for (const std::vector<u32>& freelist : free_by_pair_) {
    w.put_u64(freelist.size());
    w.put_bytes(column_bytes(freelist));
  }
  w.put_u32(carve_ip_);
  w.put_u32(carve_port_);
  w.put_u64(live_tuples_);
  w.put_u64(next_id_);
  w.put_u64(created_);
  w.put_u64(completed_);
  w.put_u64(abandoned_);
  w.put_u64(packets_);
  w.put_u64(open_);
}

void FlowGen::load_state(migrate::StateReader& r) {
  std::array<u64, 4> rng_state;
  for (u64& word : rng_state) {
    word = r.get_u64();
  }
  rng_.set_state(rng_state);
  r.get_bytes(column_bytes_mut(ids_));
  r.get_bytes(column_bytes_mut(remaining_));
  r.get_bytes(column_bytes_mut(ports_));
  r.get_bytes(column_bytes_mut(ip_index_));
  r.get_bytes(column_bytes_mut(flags_));
  for (std::vector<u8>& table : steer_) {
    const bool built = r.get_bool();
    if (!built && !table.empty()) {
      // Built after the save: drop it (capacity included) so
      // footprint_bytes() rewinds too. If it was built before the save
      // it is a pure function of the config — keeping it is exact.
      std::vector<u8>().swap(table);
    }
  }
  for (std::vector<u32>& freelist : free_by_pair_) {
    freelist.resize(r.get_u64());
    r.get_bytes(column_bytes_mut(freelist));
  }
  carve_ip_ = r.get_u32();
  carve_port_ = r.get_u32();
  live_tuples_ = r.get_u64();
  next_id_ = r.get_u64();
  created_ = r.get_u64();
  completed_ = r.get_u64();
  abandoned_ = r.get_u64();
  packets_ = r.get_u64();
  open_ = r.get_u64();
}

u64 FlowGen::footprint_bytes() const {
  u64 bytes = 0;
  bytes += ids_.capacity() * sizeof(u64);
  bytes += remaining_.capacity() * sizeof(u32);
  bytes += ports_.capacity() * sizeof(u16);
  bytes += ip_index_.capacity() * sizeof(u16);
  bytes += flags_.capacity() * sizeof(u8);
  for (const std::vector<u8>& table : steer_) {
    bytes += table.capacity() * sizeof(u8);
  }
  for (const std::vector<u32>& freelist : free_by_pair_) {
    bytes += freelist.capacity() * sizeof(u32);
  }
  bytes += pair_active_.capacity() * sizeof(u8);
  return bytes;
}

}  // namespace vfpga::net
