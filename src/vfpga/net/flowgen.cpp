#include "vfpga/net/flowgen.hpp"

#include <algorithm>
#include <cmath>

#include "vfpga/common/contract.hpp"
#include "vfpga/net/rss.hpp"
#include "vfpga/sim/distributions.hpp"

namespace vfpga::net {

namespace {

/// Keep the port cursor inside a sane allocation band: [first_port,
/// kPortBandEnd). Wrapping reuses ports of long-dead flows; the live
/// set guarantees no collision with an open one.
constexpr u32 kPortBandEnd = 64'000;

}  // namespace

u64 sample_flow_size_packets(sim::Xoshiro256& rng,
                             const FlowGenConfig& config) {
  const double lo = static_cast<double>(config.size_min_packets);
  const double hi = static_cast<double>(config.size_max_packets);
  VFPGA_EXPECTS(lo >= 1.0 && hi >= lo && config.size_shape > 0.0);
  // Bounded Pareto by inverse CDF: F(x) = (1-(L/x)^a) / (1-(L/H)^a).
  const double a = config.size_shape;
  const double ratio = std::pow(lo / hi, a);
  const double u = rng.uniform01();
  const double x = lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / a);
  const double clamped = std::min(std::max(x, lo), hi);
  return static_cast<u64>(clamped);
}

FlowGen::FlowGen(const FlowGenConfig& config)
    : config_(config),
      rng_(config.seed),
      port_live_(65'536, false),
      port_cursor_(config.first_port) {
  VFPGA_EXPECTS(config_.flows >= 1);
  VFPGA_EXPECTS(config_.pairs >= 1);
  VFPGA_EXPECTS(config_.payload_min >= 1 &&
                config_.payload_max >= config_.payload_min);
  VFPGA_EXPECTS(config_.mean_gap_us > 0.0);
  VFPGA_EXPECTS(static_cast<u32>(config_.first_port) < kPortBandEnd);
  for (const u16 pair : config_.pair_set) {
    VFPGA_EXPECTS(pair < config_.pairs);
  }
  table_.resize(config_.flows);
  for (u32 slot = 0; slot < config_.flows; ++slot) {
    const u16 pair = pair_for_slot(slot);
    open_flow(slot, allocate_port(pair), pair);
  }
}

u16 FlowGen::pair_for_slot(u32 slot) const {
  if (config_.pair_set.empty()) {
    return static_cast<u16>(slot % config_.pairs);
  }
  return config_.pair_set[slot % config_.pair_set.size()];
}

u16 FlowGen::allocate_port(u16 pair) {
  // Walk the band from the cursor until a port both steers to `pair`
  // and is not held by a live flow. Bounded: live flows are a vanishing
  // fraction of the band and the Toeplitz hash covers every residue
  // within a handful of candidates.
  for (int wraps = 0; wraps <= 2; ++wraps) {
    u16 candidate = port_cursor_;
    while (static_cast<u32>(candidate) < kPortBandEnd) {
      if (!port_live_[candidate] &&
          steer(rss_flow_hash(config_.host_ip, candidate, config_.fpga_ip,
                              config_.fpga_port),
                config_.pairs) == pair) {
        port_cursor_ = static_cast<u16>(candidate + 1);
        return candidate;
      }
      ++candidate;
    }
    port_cursor_ = config_.first_port;  // wrap the band and retry
  }
  VFPGA_UNREACHABLE("flowgen: source-port band exhausted by live flows");
}

void FlowGen::open_flow(u32 slot, u16 src_port, u16 pair) {
  Flow& flow = table_[slot];
  VFPGA_EXPECTS(!flow.open);
  flow.id = next_id_++;
  flow.src_port = src_port;
  flow.pair = pair;
  flow.total_packets = sample_flow_size_packets(rng_, config_);
  flow.remaining_packets = flow.total_packets;
  flow.burst = false;
  flow.open = true;
  VFPGA_ASSERT(!port_live_[src_port]);
  port_live_[src_port] = true;
  ++live_ports_.count;
  ++created_;
  ++open_;
}

void FlowGen::release_flow(u32 slot) {
  Flow& flow = table_[slot];
  VFPGA_EXPECTS(flow.open);
  VFPGA_ASSERT(port_live_[flow.src_port]);
  port_live_[flow.src_port] = false;
  --live_ports_.count;
  flow.open = false;
  --open_;
}

sim::Duration FlowGen::sample_gap(Flow& flow) {
  double mean = config_.mean_gap_us;
  if (config_.arrivals == ArrivalProcess::kMmpp2) {
    if (flow.burst) {
      mean /= config_.mmpp_burst_factor;
    }
    // Geometric holding time in packets: flip with p = 1/mean_packets.
    if (sim::sample_bernoulli(rng_,
                              1.0 / config_.mmpp_mean_state_packets)) {
      flow.burst = !flow.burst;
    }
  }
  return sim::from_nanos(sim::sample_exponential(rng_, mean * 1e3));
}

FlowGen::Departure FlowGen::next_packet(u32 slot) {
  Flow& flow = table_.at(slot);
  VFPGA_EXPECTS(flow.open && flow.remaining_packets > 0);
  Departure d;
  d.flow_id = flow.id;
  d.pair = flow.pair;
  d.payload_bytes =
      config_.payload_min +
      static_cast<u32>(rng_.uniform_below(config_.payload_max -
                                          config_.payload_min + 1));
  d.gap = sample_gap(flow);
  --flow.remaining_packets;
  d.fin = flow.remaining_packets == 0;
  ++packets_;
  return d;
}

std::optional<sim::Duration> FlowGen::churn_slot(u32 slot) {
  Flow& flow = table_.at(slot);
  VFPGA_EXPECTS(flow.open && flow.remaining_packets == 0);
  const u16 pair = flow.pair;
  release_flow(slot);
  ++completed_;
  if (!config_.churn) {
    return std::nullopt;
  }
  open_flow(slot, allocate_port(pair), pair);
  // Replacement flow's arrival: one exponential flow-interarrival gap.
  return sim::from_nanos(
      sim::sample_exponential(rng_, config_.mean_gap_us * 1e3));
}

void FlowGen::close_slot(u32 slot) {
  release_flow(slot);
  ++abandoned_;
}

void FlowGen::reconnect_slot(u32 slot) {
  Flow& flow = table_.at(slot);
  VFPGA_EXPECTS(flow.open);
  const u16 port = flow.src_port;
  const u16 pair = flow.pair;
  release_flow(slot);
  ++completed_;  // the old connection finished (by reset)
  open_flow(slot, port, pair);  // same 4-tuple: RSS affinity preserved
}

}  // namespace vfpga::net
