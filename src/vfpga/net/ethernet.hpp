// Ethernet II framing.
#pragma once

#include <optional>

#include "vfpga/net/addr.hpp"

namespace vfpga::net {

enum class EtherType : u16 {
  Ipv4 = 0x0800,
  Arp = 0x0806,
};

struct EthernetHeader {
  MacAddr dst{};
  MacAddr src{};
  EtherType type = EtherType::Ipv4;

  static constexpr u64 kSize = 14;
};

/// Minimum payload so the frame (without FCS) reaches 60 bytes.
inline constexpr u64 kMinEthernetPayload = 46;

/// Build a frame: header + payload (+ zero padding to the Ethernet
/// minimum). The 4-byte FCS is not materialized — link integrity is the
/// PHY model's concern — but padding is, because it crosses the PCIe
/// link and therefore costs wire time.
[[nodiscard]] Bytes build_ethernet_frame(const EthernetHeader& header,
                                         ConstByteSpan payload);

struct ParsedEthernet {
  EthernetHeader header;
  /// Offset/length of the payload inside the frame.
  u64 payload_offset = 0;
  u64 payload_length = 0;
};

/// Parse and validate a frame; nullopt for runts/unknown layouts.
[[nodiscard]] std::optional<ParsedEthernet> parse_ethernet_frame(
    ConstByteSpan frame);

}  // namespace vfpga::net
