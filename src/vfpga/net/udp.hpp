// UDP datagram construction/parsing with full pseudo-header checksums
// (RFC 768).
#pragma once

#include <optional>

#include "vfpga/net/addr.hpp"

namespace vfpga::net {

struct UdpHeader {
  u16 src_port = 0;
  u16 dst_port = 0;

  static constexpr u64 kSize = 8;
};

/// Build header + payload with the pseudo-header checksum computed over
/// (src, dst, protocol, length) as the receiving stack will verify it.
[[nodiscard]] Bytes build_udp_datagram(const UdpHeader& header, Ipv4Addr src,
                                       Ipv4Addr dst, ConstByteSpan payload);

struct ParsedUdp {
  UdpHeader header;
  u64 payload_offset = 0;
  u64 payload_length = 0;
  bool checksum_ok = false;
};

/// Parse a datagram; the pseudo-header addresses must come from the
/// enclosing IPv4 header.
[[nodiscard]] std::optional<ParsedUdp> parse_udp_datagram(ConstByteSpan data,
                                                          Ipv4Addr src,
                                                          Ipv4Addr dst);

/// Recompute the checksum field in place (what checksum-offload hardware
/// does when VIRTIO_NET_F_CSUM hands it a partially-checksummed frame).
void finalize_udp_checksum(ByteSpan datagram, Ipv4Addr src, Ipv4Addr dst);

}  // namespace vfpga::net
