#include "vfpga/net/checksum.hpp"

namespace vfpga::net {

void ChecksumAccumulator::add(ConstByteSpan data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the dangling high byte with this span's first byte.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += static_cast<u64>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<u64>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(u16 value) {
  // Only valid on even byte boundaries; the library always builds
  // pseudo-headers field-by-field so this holds by construction.
  sum_ += value;
}

void ChecksumAccumulator::add_u32(u32 value) {
  add_u16(static_cast<u16>(value >> 16));
  add_u16(static_cast<u16>(value & 0xffff));
}

u16 ChecksumAccumulator::fold() const {
  u64 s = sum_;
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  return static_cast<u16>(~s & 0xffff);
}

u16 internet_checksum(ConstByteSpan data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.fold();
}

bool checksum_valid(ConstByteSpan data) {
  // Summing a block that embeds a correct checksum yields 0 after
  // complementing.
  return internet_checksum(data) == 0;
}

u16 checksum_update_u16(u16 checksum, u16 old_word, u16 new_word) {
  u64 s = static_cast<u16>(~checksum) & 0xffffu;
  s += static_cast<u16>(~old_word) & 0xffffu;
  s += new_word;
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  return static_cast<u16>(~s & 0xffff);
}

u16 checksum_update_u32(u16 checksum, u32 old_value, u32 new_value) {
  u16 c = checksum_update_u16(checksum, static_cast<u16>(old_value >> 16),
                              static_cast<u16>(new_value >> 16));
  return checksum_update_u16(c, static_cast<u16>(old_value & 0xffff),
                             static_cast<u16>(new_value & 0xffff));
}

}  // namespace vfpga::net
