#include "vfpga/net/udp.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/net/checksum.hpp"
#include "vfpga/net/ipv4.hpp"

namespace vfpga::net {
namespace {

u16 udp_checksum(ConstByteSpan datagram, Ipv4Addr src, Ipv4Addr dst) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value);
  acc.add_u32(dst.value);
  acc.add_u16(static_cast<u16>(IpProtocol::Udp));
  acc.add_u16(static_cast<u16>(datagram.size()));
  acc.add(datagram);
  const u16 csum = acc.fold();
  // RFC 768: an all-zero checksum means "none"; transmit 0xffff instead.
  return csum == 0 ? 0xffff : csum;
}

}  // namespace

Bytes build_udp_datagram(const UdpHeader& header, Ipv4Addr src, Ipv4Addr dst,
                         ConstByteSpan payload) {
  const u64 total = UdpHeader::kSize + payload.size();
  VFPGA_EXPECTS(total <= 0xffff);
  Bytes datagram(total, 0);
  ByteSpan s{datagram};
  store_be16(s, 0, header.src_port);
  store_be16(s, 2, header.dst_port);
  store_be16(s, 4, static_cast<u16>(total));
  store_be16(s, 6, 0);  // checksum placeholder
  std::copy(payload.begin(), payload.end(),
            datagram.begin() + UdpHeader::kSize);
  store_be16(s, 6, udp_checksum(datagram, src, dst));
  return datagram;
}

std::optional<ParsedUdp> parse_udp_datagram(ConstByteSpan data, Ipv4Addr src,
                                            Ipv4Addr dst) {
  if (data.size() < UdpHeader::kSize) {
    return std::nullopt;
  }
  const u16 length = load_be16(data, 4);
  if (length < UdpHeader::kSize || length > data.size()) {
    return std::nullopt;
  }
  ParsedUdp out;
  out.header.src_port = load_be16(data, 0);
  out.header.dst_port = load_be16(data, 2);
  out.payload_offset = UdpHeader::kSize;
  out.payload_length = static_cast<u64>(length) - UdpHeader::kSize;

  const u16 wire_csum = load_be16(data, 6);
  if (wire_csum == 0) {
    out.checksum_ok = true;  // checksum not used by sender
  } else {
    // Recompute over the datagram with the checksum bytes zeroed.
    Bytes copy(data.begin(), data.begin() + length);
    store_be16(ByteSpan{copy}, 6, 0);
    out.checksum_ok = (udp_checksum(copy, src, dst) == wire_csum);
  }
  return out;
}

void finalize_udp_checksum(ByteSpan datagram, Ipv4Addr src, Ipv4Addr dst) {
  VFPGA_EXPECTS(datagram.size() >= UdpHeader::kSize);
  store_be16(datagram, 6, 0);
  store_be16(datagram, 6, udp_checksum(datagram, src, dst));
}

}  // namespace vfpga::net
