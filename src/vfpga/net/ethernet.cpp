#include "vfpga/net/ethernet.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"

namespace vfpga::net {

Bytes build_ethernet_frame(const EthernetHeader& header,
                           ConstByteSpan payload) {
  const u64 payload_len =
      std::max<u64>(payload.size(), kMinEthernetPayload);
  Bytes frame(EthernetHeader::kSize + payload_len, 0);
  ByteSpan s{frame};
  std::copy(header.dst.octets.begin(), header.dst.octets.end(), frame.begin());
  std::copy(header.src.octets.begin(), header.src.octets.end(),
            frame.begin() + 6);
  store_be16(s, 12, static_cast<u16>(header.type));
  std::copy(payload.begin(), payload.end(),
            frame.begin() + EthernetHeader::kSize);
  return frame;
}

std::optional<ParsedEthernet> parse_ethernet_frame(ConstByteSpan frame) {
  if (frame.size() < EthernetHeader::kSize) {
    return std::nullopt;
  }
  ParsedEthernet out;
  std::copy_n(frame.begin(), 6, out.header.dst.octets.begin());
  std::copy_n(frame.begin() + 6, 6, out.header.src.octets.begin());
  const u16 type = load_be16(frame, 12);
  if (type != static_cast<u16>(EtherType::Ipv4) &&
      type != static_cast<u16>(EtherType::Arp)) {
    return std::nullopt;
  }
  out.header.type = static_cast<EtherType>(type);
  out.payload_offset = EthernetHeader::kSize;
  out.payload_length = frame.size() - EthernetHeader::kSize;
  return out;
}

}  // namespace vfpga::net
