#include "vfpga/net/routing.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::net {

void RoutingTable::add(const Route& route) {
  VFPGA_EXPECTS(route.prefix_length <= 32);
  routes_.push_back(route);
}

bool RoutingTable::prefix_matches(const Route& route, Ipv4Addr dst) {
  if (route.prefix_length == 0) {
    return true;  // default route
  }
  const u32 mask = route.prefix_length == 32
                       ? 0xffffffffu
                       : ~(0xffffffffu >> route.prefix_length);
  return (dst.value & mask) == (route.prefix.value & mask);
}

std::optional<NextHop> RoutingTable::lookup(Ipv4Addr dst) const {
  const Route* best = nullptr;
  for (const Route& route : routes_) {
    if (!prefix_matches(route, dst)) {
      continue;
    }
    if (best == nullptr || route.prefix_length > best->prefix_length) {
      best = &route;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return NextHop{best->gateway.value_or(dst), best->interface_id};
}

}  // namespace vfpga::net
