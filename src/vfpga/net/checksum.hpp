// The Internet checksum (RFC 1071) and its incremental form.
//
// Real checksums are computed over every simulated frame: the host
// stack writes them, the FPGA user logic verifies and regenerates them
// for echo responses (and can offload them when VIRTIO_NET_F_CSUM is
// negotiated — an ablation the examples exercise).
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::net {

/// Running ones'-complement accumulator; fold() produces the final
/// 16-bit checksum. Usable for the pseudo-header + payload pattern of
/// UDP/TCP.
class ChecksumAccumulator {
 public:
  void add(ConstByteSpan data);
  void add_u16(u16 value);
  void add_u32(u32 value);

  /// Final folded checksum, already complemented (ready to store).
  [[nodiscard]] u16 fold() const;

 private:
  u64 sum_ = 0;
  bool odd_ = false;  ///< dangling byte from the previous add()
};

/// One-shot convenience: checksum of a single span.
[[nodiscard]] u16 internet_checksum(ConstByteSpan data);

/// Verify: data (with embedded checksum field) sums to 0xffff.
[[nodiscard]] bool checksum_valid(ConstByteSpan data);

}  // namespace vfpga::net
