// The Internet checksum (RFC 1071) and its incremental form.
//
// Real checksums are computed over every simulated frame: the host
// stack writes them, the FPGA user logic verifies and regenerates them
// for echo responses (and can offload them when VIRTIO_NET_F_CSUM is
// negotiated — an ablation the examples exercise).
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::net {

/// Running ones'-complement accumulator; fold() produces the final
/// 16-bit checksum. Usable for the pseudo-header + payload pattern of
/// UDP/TCP.
class ChecksumAccumulator {
 public:
  void add(ConstByteSpan data);
  void add_u16(u16 value);
  void add_u32(u32 value);

  /// Final folded checksum, already complemented (ready to store).
  [[nodiscard]] u16 fold() const;

 private:
  u64 sum_ = 0;
  bool odd_ = false;  ///< dangling byte from the previous add()
};

/// One-shot convenience: checksum of a single span.
[[nodiscard]] u16 internet_checksum(ConstByteSpan data);

/// Verify: data (with embedded checksum field) sums to 0xffff.
[[nodiscard]] bool checksum_valid(ConstByteSpan data);

/// RFC 1624 (eqn. 3) incremental update: the checksum of a block after
/// one aligned 16-bit word changes from `old_word` to `new_word`,
/// without re-summing the block: HC' = ~(~HC + ~m + m'). The GSO
/// engine's per-segment header fixup (IP id/total_length rewrites)
/// relies on this instead of recomputing the 10-word header sum.
[[nodiscard]] u16 checksum_update_u16(u16 checksum, u16 old_word,
                                      u16 new_word);

/// Incremental update for an aligned 32-bit field (two adjacent words).
[[nodiscard]] u16 checksum_update_u32(u16 checksum, u32 old_value,
                                      u32 new_value);

}  // namespace vfpga::net
