#include "vfpga/net/rss.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"

namespace vfpga::net {

const std::array<u8, kRssKeyBytes>& rss_key() {
  // The well-known verification key from the MSDN RSS specification —
  // using a published key keeps the hash values checkable against
  // external test vectors.
  static constexpr std::array<u8, kRssKeyBytes> key = {
      0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
      0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
      0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
      0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
  };
  return key;
}

u32 toeplitz_hash(ConstByteSpan data, const std::array<u8, kRssKeyBytes>& key) {
  // Each input bit that is set (MSB first) XORs in the 32-bit key
  // window aligned at that bit position — the key treated as a
  // big-endian bit string. The window lives in the top half of a u64
  // shift register refilled one key byte per input byte.
  VFPGA_EXPECTS(data.size() + 8 <= key.size());
  u64 window = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    window = (window << 8) | key[i];
  }
  u32 result = 0;
  std::size_t next_key_byte = 8;
  for (const u8 byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1u) {
        result ^= static_cast<u32>(window >> 32);
      }
      window <<= 1;
    }
    window |= key[next_key_byte++];
  }
  return result;
}

u32 rss_flow_hash(Ipv4Addr src_ip, u16 src_port, Ipv4Addr dst_ip,
                  u16 dst_port) {
  // Order the two (addr, port) endpoints numerically so the serialized
  // tuple — and therefore the hash — is identical for a flow and its
  // echo. 12 bytes: lo.ip, hi.ip, lo.port, hi.port.
  u32 lo_ip = src_ip.value;
  u16 lo_port = src_port;
  u32 hi_ip = dst_ip.value;
  u16 hi_port = dst_port;
  if (lo_ip > hi_ip || (lo_ip == hi_ip && lo_port > hi_port)) {
    std::swap(lo_ip, hi_ip);
    std::swap(lo_port, hi_port);
  }
  std::array<u8, 12> tuple = {
      static_cast<u8>(lo_ip >> 24),   static_cast<u8>(lo_ip >> 16),
      static_cast<u8>(lo_ip >> 8),    static_cast<u8>(lo_ip),
      static_cast<u8>(hi_ip >> 24),   static_cast<u8>(hi_ip >> 16),
      static_cast<u8>(hi_ip >> 8),    static_cast<u8>(hi_ip),
      static_cast<u8>(lo_port >> 8),  static_cast<u8>(lo_port),
      static_cast<u8>(hi_port >> 8),  static_cast<u8>(hi_port),
  };
  return toeplitz_hash(tuple, rss_key());
}

u16 search_source_port(Ipv4Addr src_ip, Ipv4Addr dst_ip, u16 dst_port,
                       u16 active_pairs, u16 want_pair, u16 from) {
  VFPGA_EXPECTS(want_pair < std::max<u16>(active_pairs, 1));
  for (u16 port = from;; ++port) {
    VFPGA_ASSERT(port >= from);  // no wraparound before a hit
    if (steer(rss_flow_hash(src_ip, port, dst_ip, dst_port), active_pairs) ==
        want_pair) {
      return port;
    }
  }
}

}  // namespace vfpga::net
