#include "vfpga/common/log.hpp"

#include <atomic>
#include <cstring>

namespace vfpga::log {
namespace {

std::atomic<Level> g_threshold{Level::Warn};

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::Trace:
      return "TRACE";
    case Level::Debug:
      return "DEBUG";
    case Level::Info:
      return "INFO ";
    case Level::Warn:
      return "WARN ";
    case Level::Error:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void write(Level level, const char* subsystem, const std::string& message) {
  std::string line;
  line.reserve(message.size() + 32);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += subsystem;
  line += ": ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace vfpga::log
