// Contract checking: preconditions, postconditions, and invariants.
//
// These are *model-correctness* checks, not recoverable error paths: a
// failed contract means the simulation (or a driver model using it) has
// violated a protocol invariant, and continuing would produce meaningless
// latency numbers. Following P.7 ("catch run-time errors early") they are
// enabled in all build types; each check is a handful of instructions and
// the simulator is dominated by memory traffic, not branches.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vfpga::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "vfpga: %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace vfpga::detail

#define VFPGA_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::vfpga::detail::contract_failure("precondition", #cond,        \
                                              __FILE__, __LINE__))

#define VFPGA_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::vfpga::detail::contract_failure("postcondition", #cond,       \
                                              __FILE__, __LINE__))

#define VFPGA_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::vfpga::detail::contract_failure("invariant", #cond, __FILE__, \
                                              __LINE__))

#define VFPGA_UNREACHABLE(msg)                                              \
  ::vfpga::detail::contract_failure("unreachable", msg, __FILE__, __LINE__)
