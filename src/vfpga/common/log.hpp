// Minimal leveled logger for the simulator.
//
// Logging in the hot simulation path is compiled to a level check plus a
// branch; benches run at Level::Warn so tracing costs nothing. The logger
// is process-global and thread-safe (each line is a single fwrite).
#pragma once

#include <cstdio>
#include <string>

namespace vfpga::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global threshold; messages below it are discarded.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Emit one log line (subsystem tag + message). Not printf-style on
/// purpose: callers format with std::string/format helpers so the call
/// site is type-safe.
void write(Level level, const char* subsystem, const std::string& message);

inline bool enabled(Level level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(threshold());
}

}  // namespace vfpga::log

#define VFPGA_LOG(level, subsystem, message)                       \
  do {                                                             \
    if (::vfpga::log::enabled(level)) {                            \
      ::vfpga::log::write(level, subsystem, message);              \
    }                                                              \
  } while (false)

#define VFPGA_TRACE(subsystem, message) \
  VFPGA_LOG(::vfpga::log::Level::Trace, subsystem, message)
#define VFPGA_DEBUG(subsystem, message) \
  VFPGA_LOG(::vfpga::log::Level::Debug, subsystem, message)
#define VFPGA_INFO(subsystem, message) \
  VFPGA_LOG(::vfpga::log::Level::Info, subsystem, message)
#define VFPGA_WARN(subsystem, message) \
  VFPGA_LOG(::vfpga::log::Level::Warn, subsystem, message)
