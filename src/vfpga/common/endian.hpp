// Little-endian (bus/VirtIO "natural") and big-endian (network order)
// byte-level accessors.
//
// All VirtIO 1.x structures are little-endian regardless of guest
// endianness; all Ethernet/IP/UDP header fields are big-endian. Every
// structure the simulated device or driver touches in host memory goes
// through these accessors so the in-memory layout is bit-exact and
// portable (no type punning, no UB; P.2).
#pragma once

#include <cstring>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga {

// ---- little-endian ---------------------------------------------------------

constexpr u16 load_le16(ConstByteSpan b, std::size_t off = 0) {
  VFPGA_EXPECTS(b.size() >= off + 2);
  return static_cast<u16>(static_cast<u16>(b[off]) |
                          static_cast<u16>(b[off + 1]) << 8);
}

constexpr u32 load_le32(ConstByteSpan b, std::size_t off = 0) {
  VFPGA_EXPECTS(b.size() >= off + 4);
  return static_cast<u32>(b[off]) | static_cast<u32>(b[off + 1]) << 8 |
         static_cast<u32>(b[off + 2]) << 16 |
         static_cast<u32>(b[off + 3]) << 24;
}

constexpr u64 load_le64(ConstByteSpan b, std::size_t off = 0) {
  VFPGA_EXPECTS(b.size() >= off + 8);
  return static_cast<u64>(load_le32(b, off)) |
         static_cast<u64>(load_le32(b, off + 4)) << 32;
}

constexpr void store_le16(ByteSpan b, std::size_t off, u16 v) {
  VFPGA_EXPECTS(b.size() >= off + 2);
  b[off] = static_cast<u8>(v & 0xff);
  b[off + 1] = static_cast<u8>(v >> 8);
}

constexpr void store_le32(ByteSpan b, std::size_t off, u32 v) {
  VFPGA_EXPECTS(b.size() >= off + 4);
  b[off] = static_cast<u8>(v & 0xff);
  b[off + 1] = static_cast<u8>((v >> 8) & 0xff);
  b[off + 2] = static_cast<u8>((v >> 16) & 0xff);
  b[off + 3] = static_cast<u8>(v >> 24);
}

constexpr void store_le64(ByteSpan b, std::size_t off, u64 v) {
  store_le32(b, off, static_cast<u32>(v & 0xffffffffu));
  store_le32(b, off + 4, static_cast<u32>(v >> 32));
}

// ---- big-endian (network byte order) ---------------------------------------

constexpr u16 load_be16(ConstByteSpan b, std::size_t off = 0) {
  VFPGA_EXPECTS(b.size() >= off + 2);
  return static_cast<u16>(static_cast<u16>(b[off]) << 8 |
                          static_cast<u16>(b[off + 1]));
}

constexpr u32 load_be32(ConstByteSpan b, std::size_t off = 0) {
  VFPGA_EXPECTS(b.size() >= off + 4);
  return static_cast<u32>(b[off]) << 24 | static_cast<u32>(b[off + 1]) << 16 |
         static_cast<u32>(b[off + 2]) << 8 | static_cast<u32>(b[off + 3]);
}

constexpr void store_be16(ByteSpan b, std::size_t off, u16 v) {
  VFPGA_EXPECTS(b.size() >= off + 2);
  b[off] = static_cast<u8>(v >> 8);
  b[off + 1] = static_cast<u8>(v & 0xff);
}

constexpr void store_be32(ByteSpan b, std::size_t off, u32 v) {
  VFPGA_EXPECTS(b.size() >= off + 4);
  b[off] = static_cast<u8>(v >> 24);
  b[off + 1] = static_cast<u8>((v >> 16) & 0xff);
  b[off + 2] = static_cast<u8>((v >> 8) & 0xff);
  b[off + 3] = static_cast<u8>(v & 0xff);
}

}  // namespace vfpga
