// Fundamental scalar and byte-range types shared across the vfpga library.
//
// Conventions (applied library-wide, per the C++ Core Guidelines):
//  * fixed-width integers for anything that crosses a "hardware" boundary,
//  * std::span for non-owning byte ranges (I.13: do not pass array + size),
//  * strong enum classes for protocol constants,
//  * no raw new/delete anywhere in the library (R.11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vfpga {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Mutable view over raw bytes (e.g. a DMA target buffer).
using ByteSpan = std::span<u8>;
/// Read-only view over raw bytes (e.g. a frame to parse).
using ConstByteSpan = std::span<const u8>;
/// Owning byte buffer.
using Bytes = std::vector<u8>;

/// Address in the simulated host physical address space (DMA-visible).
using HostAddr = u64;
/// Offset into a device BAR aperture.
using BarOffset = u64;
/// Address in the FPGA-internal (AXI memory-mapped) address space.
using FpgaAddr = u64;

/// Narrowing with intent: the caller asserts the value fits.
/// (gsl::narrow_cast equivalent; checked in debug builds.)
template <typename To, typename From>
constexpr To narrow(From value) noexcept {
  return static_cast<To>(value);
}

}  // namespace vfpga
