// Vendor (XDMA) kernel driver model — the reference character-device
// driver from Xilinx dma_ip_drivers, as used in the paper's §III-B.2.
//
// Design-philosophy contrast with VirtIO (§IV-A), reproduced step by
// step: every transfer pins the user buffer, builds a fresh descriptor
// in host memory, programs the SGDMA descriptor-address registers,
// starts the engine, and sleeps until the per-transfer completion
// interrupt; the ISR reads the engine status register over PCIe (a
// non-posted MMIO read that stalls the CPU for ~a microsecond on this
// class of endpoint), stops the engine, and wakes the caller.
#pragma once

#include "vfpga/hostos/cost_model.hpp"
#include "vfpga/hostos/interrupt.hpp"
#include "vfpga/pcie/enumeration.hpp"
#include "vfpga/xdma/xdma_ip.hpp"

namespace vfpga::xdma {

class XdmaHostDriver {
 public:
  struct BindContext {
    pcie::RootComplex* rc = nullptr;
    XdmaIpFunction* device = nullptr;
    const pcie::EnumeratedDevice* enumerated = nullptr;
    hostos::InterruptController* irq = nullptr;
  };

  /// Match + initialize: program MSI-X, enable channel interrupts,
  /// allocate the descriptor and bounce areas.
  bool probe(const BindContext& ctx, hostos::HostThread& thread);

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] u32 h2c_vector() const { return h2c_vector_; }
  [[nodiscard]] u32 c2h_vector() const { return c2h_vector_; }

  /// Poll-mode switch (ablation ABL-NOTIF): when true, transfers spin on
  /// the engine status register instead of sleeping on the interrupt —
  /// the driver's poll_mode module parameter.
  void set_poll_mode(bool enabled) { poll_mode_ = enabled; }
  [[nodiscard]] bool poll_mode() const { return poll_mode_; }

  /// Blocking host-to-card transfer of `data` to card address
  /// `card_addr` (the write() file operation's core).
  bool h2c_transfer(hostos::HostThread& thread, ConstByteSpan data,
                    FpgaAddr card_addr = 0);

  /// Blocking card-to-host transfer into `out` (the read() core).
  bool c2h_transfer(hostos::HostThread& thread, ByteSpan out,
                    FpgaAddr card_addr = 0);

  /// Completion-wait recovery policy: instead of blocking forever on a
  /// completion interrupt that never comes, the driver reads the engine
  /// status (read-to-clear — this also clears a halted engine), rebuilds
  /// the descriptor list, and restarts the engine with bounded
  /// exponential backoff between attempts.
  struct RecoveryPolicy {
    u32 max_attempts = 4;
    sim::Duration backoff_base = sim::microseconds(10);
  };
  void set_recovery_policy(const RecoveryPolicy& policy) {
    recovery_ = policy;
  }

  [[nodiscard]] u64 transfers_completed() const {
    return transfers_completed_;
  }
  [[nodiscard]] u64 engine_restarts() const { return engine_restarts_; }
  [[nodiscard]] u64 lost_completion_irqs() const {
    return lost_completion_irqs_;
  }

 private:
  bool run_channel(hostos::HostThread& thread, DmaChannel& channel,
                   BarOffset channel_base, BarOffset sgdma_base, u32 vector,
                   HostAddr buffer_addr, FpgaAddr card_addr, u32 length);
  void mmio_write(hostos::HostThread& thread, BarOffset offset, u32 value);
  u32 mmio_read(hostos::HostThread& thread, BarOffset offset);

  BindContext ctx_{};
  bool bound_ = false;
  bool poll_mode_ = false;
  u32 h2c_vector_ = 0;
  u32 c2h_vector_ = 0;
  /// Descriptor list areas (dma_alloc_coherent-ish): one descriptor per
  /// pinned 4 KiB page of the largest supported transfer.
  static constexpr u32 kDescriptorAreaBytes = 32 * (64 * 1024 / 4096 + 1);
  HostAddr h2c_desc_addr_ = 0;
  HostAddr c2h_desc_addr_ = 0;
  HostAddr h2c_buffer_ = 0;  ///< pinned user pages for H2C
  HostAddr c2h_buffer_ = 0;
  u32 buffer_capacity_ = 64 * 1024;
  u64 transfers_completed_ = 0;
  u64 engine_restarts_ = 0;
  u64 lost_completion_irqs_ = 0;
  RecoveryPolicy recovery_{};
};

}  // namespace vfpga::xdma
