#include "vfpga/xdma/engine.hpp"

#include <array>
#include <string>
#include <vector>

#include "vfpga/common/contract.hpp"

namespace vfpga::xdma {

DmaChannel::DmaChannel(Direction direction, pcie::DmaPort port,
                       mem::Bram& card_memory, EngineConfig config,
                       fpga::PerfCounterBank* counters)
    : direction_(direction),
      port_(port),
      card_memory_(&card_memory),
      config_(config),
      counters_(counters) {}

void DmaChannel::capture(const char* event, sim::SimTime at) {
  if (counters_ != nullptr) {
    const char* prefix = direction_ == Direction::H2C ? "h2c_" : "c2h_";
    counters_->capture(std::string{prefix} + event, at);
  }
}

sim::SimTime DmaChannel::move_data(sim::SimTime start, HostAddr host_addr,
                                   FpgaAddr card_addr, u32 bytes) {
  VFPGA_EXPECTS(bytes > 0);
  sim::SimTime t = start + config_.clock.cycles(config_.datapath_fixed_cycles);
  const u64 beats = card_memory_->beats_for(bytes);

  if (direction_ == Direction::H2C) {
    Bytes buffer(bytes);
    t = port_.read(t, host_addr, buffer);  // PCIe read of host payload
    card_memory_->write(card_addr, buffer);
    t += config_.clock.cycles(beats);  // drain into BRAM
  } else {
    Bytes buffer(bytes);
    card_memory_->read(card_addr, buffer);
    t += config_.clock.cycles(beats);  // fill from BRAM
    const auto timing = port_.write(t, host_addr, buffer);
    // The channel is architecturally "busy" until the data is globally
    // visible: the IRQ/writeback that follows must not pass the data.
    t = timing.delivered;
  }
  return t;
}

DmaChannel::RunResult DmaChannel::run(sim::SimTime start) {
  VFPGA_EXPECTS(descriptor_addr_ != 0);
  RunResult result;
  status_ = regs::kStatusBusy;
  sim::SimTime t = start + config_.clock.cycles(config_.setup_cycles);
  capture("run", start);

  u64 desc_addr = descriptor_addr_;
  for (;;) {
    std::array<u8, kDescriptorBytes> raw{};
    t = port_.read(t, desc_addr, raw);  // descriptor fetch over PCIe
    if (fault_ != nullptr &&
        fault_->should_inject(fault::FaultClass::kEngineHalt)) {
      raw[3] ^= 0x5a;  // corrupt the magic: the engine halts below
    }
    XdmaDescriptor desc;
    if (!XdmaDescriptor::decode(raw, desc)) {
      status_ = regs::kStatusMagicStopped | regs::kStatusDescStopped;
      result.error = true;
      result.complete = t;
      capture("error", t);
      return result;
    }
    t += config_.clock.cycles(config_.per_descriptor_cycles);
    capture("desc_decoded", t);

    if (direction_ == Direction::H2C) {
      t = move_data(t, desc.src_addr, desc.dst_addr, desc.length);
    } else {
      t = move_data(t, desc.dst_addr, desc.src_addr, desc.length);
    }
    ++completed_count_;
    ++result.descriptors_processed;
    result.bytes_moved += desc.length;

    if (desc.stop()) {
      break;
    }
    desc_addr = desc.next_addr;
  }

  t += config_.clock.cycles(config_.writeback_cycles);
  if (writeback_addr_ != 0) {
    std::array<u8, 8> wb{};
    store_le32(wb, 0, completed_count_);
    t = port_.write(t, writeback_addr_, wb).issuer_free;
  }
  status_ = regs::kStatusDescStopped | regs::kStatusDescCompleted;
  result.complete = t;
  capture("complete", t);

  if (irq_enabled_ && on_complete) {
    on_complete(t);
  }
  return result;
}

sim::SimTime DmaChannel::transfer_gather(
    sim::SimTime start, std::span<const GatherSegment> segments,
    FpgaAddr card_addr) {
  VFPGA_EXPECTS(direction_ == Direction::H2C);
  VFPGA_EXPECTS(!segments.empty());
  status_ = regs::kStatusBusy;
  capture("issue", start);
  sim::SimTime t = start + config_.clock.cycles(config_.per_descriptor_cycles *
                                                segments.size());
  t += config_.clock.cycles(config_.datapath_fixed_cycles);

  u64 total = 0;
  for (const GatherSegment& s : segments) {
    VFPGA_EXPECTS(s.bytes > 0);
    total += s.bytes;
  }
  Bytes buffer(total);
  std::vector<pcie::DmaPort::ReadSegment> reads;
  reads.reserve(segments.size());
  u64 offset = 0;
  for (const GatherSegment& s : segments) {
    reads.push_back({s.host_addr, ByteSpan{buffer}.subspan(offset, s.bytes)});
    offset += s.bytes;
  }
  t = port_.read_burst(t, reads);
  card_memory_->write(card_addr, buffer);
  t += config_.clock.cycles(card_memory_->beats_for(total));

  status_ = regs::kStatusDescCompleted | regs::kStatusDescStopped;
  ++completed_count_;
  capture("transfer_done", t);
  return t;
}

sim::SimTime DmaChannel::transfer(sim::SimTime start, HostAddr host_addr,
                                  FpgaAddr card_addr, u32 bytes) {
  // Fabric-driven: the controller supplies the descriptor directly; no
  // host fetch, only a short issue penalty.
  status_ = regs::kStatusBusy;
  capture("issue", start);
  sim::SimTime t =
      start + config_.clock.cycles(config_.per_descriptor_cycles);
  t = move_data(t, host_addr, card_addr, bytes);
  status_ = regs::kStatusDescCompleted | regs::kStatusDescStopped;
  ++completed_count_;
  capture("transfer_done", t);
  return t;
}

}  // namespace vfpga::xdma
