#include "vfpga/xdma/xdma_ip.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::xdma {

XdmaIpFunction::XdmaIpFunction(u64 bram_bytes, EngineConfig engine_config)
    : bram_(bram_bytes), engine_config_(engine_config) {
  auto& cfg = config();
  cfg.set_ids(kXilinxVendorId, kXdmaExampleDeviceId, kXilinxVendorId, 0x0007);
  cfg.set_revision(0x00);
  cfg.set_class_code(0x05, 0x80, 0x00);  // memory controller, other
  cfg.define_bar(0, pcie::BarDefinition{regs::kRegisterSpaceBytes, true,
                                        /*prefetchable=*/false});

  cfg.add_capability(pcie::CapabilityId::PciExpress,
                     pcie::PciExpressCapability{}.encode());
  cfg.add_capability(
      pcie::CapabilityId::MsiX,
      pcie::make_msix_capability_body(kMsixVectors, /*table_bar=*/0,
                                      static_cast<u32>(kMsixTableOffset),
                                      /*pba_bar=*/0,
                                      static_cast<u32>(kMsixPbaOffset)));
}

XdmaIpFunction::~XdmaIpFunction() = default;

void XdmaIpFunction::connect(pcie::RootComplex& rc) {
  port_.emplace(rc.dma_port(*this));
  h2c_ = std::make_unique<DmaChannel>(Direction::H2C, *port_, bram_,
                                      engine_config_, &counters_);
  c2h_ = std::make_unique<DmaChannel>(Direction::C2H, *port_, bram_,
                                      engine_config_, &counters_);
  msix_ = std::make_unique<pcie::MsixTable>(kMsixVectors);
  h2c_->on_complete = [this](sim::SimTime at) {
    msix_->fire(kH2cVector, at, *port_);
  };
  c2h_->on_complete = [this](sim::SimTime at) {
    msix_->fire(kC2hVector, at, *port_);
  };
}

DmaChannel* XdmaIpFunction::channel_for(BarOffset offset, BarOffset base) {
  (void)offset;
  return base == regs::kH2cChannelBase || base == regs::kH2cSgdmaBase
             ? h2c_.get()
             : c2h_.get();
}

u64 XdmaIpFunction::bar_read(u32 bar, BarOffset offset, u32 size,
                             sim::SimTime at) {
  VFPGA_EXPECTS(bar == 0);
  if (offset >= kMsixTableOffset && offset < kMsixPbaOffset) {
    VFPGA_EXPECTS(size == 4);
    return msix_->aperture_read(offset - kMsixTableOffset);
  }
  VFPGA_EXPECTS(size == 4);
  return register_read(offset, at);
}

void XdmaIpFunction::bar_write(u32 bar, BarOffset offset, u64 value, u32 size,
                               sim::SimTime at) {
  VFPGA_EXPECTS(bar == 0);
  if (offset >= kMsixTableOffset && offset < kMsixPbaOffset) {
    VFPGA_EXPECTS(size == 4);
    msix_->aperture_write(offset - kMsixTableOffset,
                          static_cast<u32>(value), at, *port_);
    return;
  }
  VFPGA_EXPECTS(size == 4);
  register_write(offset, static_cast<u32>(value), at);
}

u64 XdmaIpFunction::register_read(BarOffset offset, sim::SimTime at) {
  (void)at;
  const BarOffset base = offset & ~BarOffset{0xfff};
  const BarOffset reg = offset & 0xfff;
  switch (base) {
    case regs::kH2cChannelBase:
    case regs::kC2hChannelBase: {
      DmaChannel& ch = *channel_for(offset, base);
      const bool is_c2h = base == regs::kC2hChannelBase;
      switch (reg) {
        case regs::kChIdentifier:
          return regs::channel_identifier(is_c2h, 0);
        case regs::kChStatus:
          return ch.status();
        case regs::kChStatusRC: {
          const u32 status = ch.status();
          ch.clear_status();
          return status;
        }
        case regs::kChCompletedDescCount:
          return ch.completed_descriptor_count();
        default:
          return 0;
      }
    }
    case regs::kH2cSgdmaBase:
    case regs::kC2hSgdmaBase: {
      DmaChannel& ch = *channel_for(offset, base);
      switch (reg) {
        case regs::kSgDescLo:
          return ch.descriptor_address() & 0xffffffffu;
        case regs::kSgDescHi:
          return ch.descriptor_address() >> 32;
        default:
          return 0;
      }
    }
    default:
      return 0;
  }
}

void XdmaIpFunction::register_write(BarOffset offset, u32 value,
                                    sim::SimTime at) {
  const BarOffset base = offset & ~BarOffset{0xfff};
  const BarOffset reg = offset & 0xfff;
  switch (base) {
    case regs::kH2cChannelBase:
    case regs::kC2hChannelBase: {
      DmaChannel& ch = *channel_for(offset, base);
      switch (reg) {
        case regs::kChControl:
        case regs::kChControlW1S:
          if ((value & regs::kControlRun) != 0) {
            ch.run(at);
          }
          break;
        case regs::kChControlW1C:
          // Driver clears run/IE bits after completion; engine model is
          // already idle — nothing to do.
          break;
        case regs::kChInterruptEnable:
          ch.set_interrupt_enable(value != 0);
          break;
        default:
          break;
      }
      break;
    }
    case regs::kH2cSgdmaBase:
    case regs::kC2hSgdmaBase: {
      DmaChannel& ch = *channel_for(offset, base);
      switch (reg) {
        case regs::kSgDescLo:
          ch.set_descriptor_address(
              (ch.descriptor_address() & ~0xffffffffull) | value);
          break;
        case regs::kSgDescHi:
          ch.set_descriptor_address((ch.descriptor_address() & 0xffffffffull) |
                                    (static_cast<u64>(value) << 32));
          break;
        case regs::kSgDescAdjacent:
          ch.set_adjacent(value);
          break;
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace vfpga::xdma
