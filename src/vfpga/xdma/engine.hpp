// XDMA DMA engine channel model.
//
// One scatter-gather DMA channel (H2C or C2H) of the DMA/Bridge
// Subsystem. Two entry points reflect the two FPGA designs in the paper:
//
//  * run() — host-driven descriptor-list mode: the vendor driver wrote a
//    descriptor chain into host memory and programmed the SGDMA
//    registers; the engine fetches each 32-byte descriptor over PCIe,
//    moves the data, and completes with an interrupt (and/or poll-mode
//    writeback). This is the XDMA example-design path.
//
//  * transfer() — fabric-driven mode: the VirtIO controller already
//    knows source/destination (it fetched virtqueue descriptors itself)
//    and hands the engine a fully-formed transfer, skipping the
//    host-descriptor fetch. "The VirtIO controller ... controls the DMA
//    engine of the XDMA IP" (§III-A).
//
// Both paths share the same data-mover timing (same IP, same link), the
// paper's experimental control.
#pragma once

#include <functional>
#include <span>

#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/fpga/clock.hpp"
#include "vfpga/fpga/perf_counter.hpp"
#include "vfpga/mem/bram.hpp"
#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/xdma/descriptor.hpp"
#include "vfpga/xdma/registers.hpp"

namespace vfpga::xdma {

enum class Direction { H2C, C2H };

struct EngineConfig {
  fpga::ClockDomain clock = fpga::kUserClock;
  /// run-bit assertion to first descriptor request.
  u64 setup_cycles = 24;
  /// per-descriptor decode/issue overhead.
  u64 per_descriptor_cycles = 14;
  /// store-and-forward pipeline fill per transfer.
  u64 datapath_fixed_cycles = 18;
  /// status writeback generation.
  u64 writeback_cycles = 6;
};

class DmaChannel {
 public:
  DmaChannel(Direction direction, pcie::DmaPort port, mem::Bram& card_memory,
             EngineConfig config = {},
             fpga::PerfCounterBank* counters = nullptr);

  [[nodiscard]] Direction direction() const { return direction_; }

  // ---- SGDMA register state (programmed by the host driver) ----------------
  void set_descriptor_address(u64 addr) { descriptor_addr_ = addr; }
  [[nodiscard]] u64 descriptor_address() const { return descriptor_addr_; }
  void set_adjacent(u32 count) { adjacent_ = count; }

  /// Poll-mode writeback: after completion the engine posts the
  /// completed-descriptor count to this host address (0 = disabled).
  void set_writeback_address(HostAddr addr) { writeback_addr_ = addr; }

  void set_interrupt_enable(bool enable) { irq_enabled_ = enable; }
  [[nodiscard]] bool interrupt_enabled() const { return irq_enabled_; }

  /// Install a fault plane: descriptor fetches in run() may then return
  /// corrupted magic, halting the engine (kStatusMagicStopped). nullptr
  /// = no fault hooks.
  void set_fault_plane(fault::FaultPlane* plane) { fault_ = plane; }

  /// Completion hook: the owning endpoint fires MSI-X from this.
  std::function<void(sim::SimTime)> on_complete;

  // ---- host-driven descriptor-list mode -------------------------------------

  struct RunResult {
    sim::SimTime complete{};  ///< engine idle again (data globally visible)
    u32 descriptors_processed = 0;
    u64 bytes_moved = 0;
    bool error = false;  ///< bad descriptor magic (kStatusMagicStopped)
  };
  /// Execute the descriptor chain at descriptor_address(). `start` is
  /// when the driver's run-bit write reached the engine.
  RunResult run(sim::SimTime start);

  // ---- fabric-driven mode -----------------------------------------------------

  /// Move `bytes` between host and card memory; returns the time the
  /// transfer is complete (H2C: data landed in card memory; C2H: data
  /// delivered to host memory).
  sim::SimTime transfer(sim::SimTime start, HostAddr host_addr,
                        FpgaAddr card_addr, u32 bytes);

  /// One host region of a gathered H2C transfer.
  struct GatherSegment {
    HostAddr host_addr = 0;
    u32 bytes = 0;
  };
  /// Fabric-driven H2C scatter-gather: pull every segment into card
  /// memory (contiguous at `card_addr`) as one pipelined read burst —
  /// the engine keeps one outstanding read tag per segment, so the link
  /// pipeline fill and store-and-forward fill are paid once while each
  /// segment still pays its descriptor decode and request/completion
  /// handling.
  sim::SimTime transfer_gather(sim::SimTime start,
                               std::span<const GatherSegment> segments,
                               FpgaAddr card_addr);

  // ---- status (read by the driver over MMIO) ----------------------------------

  [[nodiscard]] u32 status() const { return status_; }
  void clear_status() { status_ = 0; }
  [[nodiscard]] u32 completed_descriptor_count() const {
    return completed_count_;
  }
  [[nodiscard]] bool busy() const {
    return (status_ & regs::kStatusBusy) != 0;
  }

 private:
  /// Data movement common to both modes; returns completion time.
  sim::SimTime move_data(sim::SimTime start, HostAddr host_addr,
                         FpgaAddr card_addr, u32 bytes);
  void capture(const char* event, sim::SimTime at);

  Direction direction_;
  pcie::DmaPort port_;
  mem::Bram* card_memory_;
  EngineConfig config_;
  fpga::PerfCounterBank* counters_;

  fault::FaultPlane* fault_ = nullptr;
  u64 descriptor_addr_ = 0;
  u32 adjacent_ = 0;
  HostAddr writeback_addr_ = 0;
  bool irq_enabled_ = false;
  u32 status_ = 0;
  u32 completed_count_ = 0;
};

}  // namespace vfpga::xdma
