#include "vfpga/xdma/host_driver.hpp"

#include <array>

#include "vfpga/common/contract.hpp"

namespace vfpga::xdma {

void XdmaHostDriver::mmio_write(hostos::HostThread& thread, BarOffset offset,
                                u32 value) {
  const auto r = ctx_.rc->cpu_mmio_write(*ctx_.device, 0, offset, value, 4,
                                         thread.now());
  thread.exec_fixed(r.cpu_cost);
}

u32 XdmaHostDriver::mmio_read(hostos::HostThread& thread, BarOffset offset) {
  const auto r =
      ctx_.rc->cpu_mmio_read(*ctx_.device, 0, offset, 4, thread.now());
  thread.mmio_stall(r.cpu_stall);
  return static_cast<u32>(r.value);
}

bool XdmaHostDriver::probe(const BindContext& ctx,
                           hostos::HostThread& thread) {
  VFPGA_EXPECTS(ctx.rc != nullptr && ctx.device != nullptr &&
                ctx.enumerated != nullptr && ctx.irq != nullptr);
  ctx_ = ctx;
  if (ctx.enumerated->vendor_id != kXilinxVendorId) {
    return false;
  }
  // Sanity-check the engine identifiers the way the driver's
  // engine_init does.
  const u32 h2c_id =
      mmio_read(thread, regs::kH2cChannelBase + regs::kChIdentifier);
  const u32 c2h_id =
      mmio_read(thread, regs::kC2hChannelBase + regs::kChIdentifier);
  if ((h2c_id >> 20) != 0x1fc || (c2h_id >> 20) != 0x1fc) {
    return false;
  }

  // MSI-X vectors, one per channel.
  h2c_vector_ = ctx.irq->allocate_vector();
  c2h_vector_ = ctx.irq->allocate_vector();
  const auto program_entry = [&](u32 entry, u32 vector) {
    const BarOffset base = kMsixTableOffset + entry * pcie::kMsixEntryBytes;
    mmio_write(thread, base + pcie::kMsixEntryAddrLo,
               static_cast<u32>(hostos::InterruptController::message_address()));
    mmio_write(thread, base + pcie::kMsixEntryAddrHi, 0);
    mmio_write(thread, base + pcie::kMsixEntryData, vector);
    mmio_write(thread, base + pcie::kMsixEntryControl, 0);
  };
  program_entry(kH2cVector, h2c_vector_);
  program_entry(kC2hVector, c2h_vector_);

  mmio_write(thread, regs::kH2cChannelBase + regs::kChInterruptEnable, 1);
  mmio_write(thread, regs::kC2hChannelBase + regs::kChInterruptEnable, 1);

  // Descriptor slots + pinned-page stand-ins.
  auto& memory = ctx.rc->memory();
  h2c_desc_addr_ = memory.allocate(kDescriptorAreaBytes, 32);
  c2h_desc_addr_ = memory.allocate(kDescriptorAreaBytes, 32);
  h2c_buffer_ = memory.allocate(buffer_capacity_, 4096);
  c2h_buffer_ = memory.allocate(buffer_capacity_, 4096);

  bound_ = true;
  return true;
}

bool XdmaHostDriver::run_channel(hostos::HostThread& thread,
                                 DmaChannel& channel, BarOffset channel_base,
                                 BarOffset sgdma_base, u32 vector,
                                 HostAddr buffer_addr, FpgaAddr card_addr,
                                 u32 length) {
  const HostAddr desc_base = channel.direction() == Direction::H2C
                                 ? h2c_desc_addr_
                                 : c2h_desc_addr_;
  for (u32 attempt = 0; attempt < recovery_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff before re-submitting; the engine was
      // already stopped and its sticky status cleared below.
      thread.block_until(thread.now() + recovery_.backoff_base *
                                            static_cast<i64>(1ll << (attempt - 1)));
      ++engine_restarts_;
    }

    // Per-transfer submission work: get_user_pages, SG table, descriptor
    // construction + cache flush (§IV-A: "the device driver creates one
    // or more descriptors ... when initiating a DMA transfer"). Pinned
    // user pages are not physically contiguous, so the driver emits one
    // descriptor per 4 KiB page, chained — exactly the SG shape
    // dma_ip_drivers builds. A retry rebuilds the list from scratch.
    thread.exec(thread.costs().xdma_submit);
    constexpr u32 kPage = 4096;
    const u32 descriptor_count = (length + kPage - 1) / kPage;
    VFPGA_ASSERT(descriptor_count * kDescriptorBytes <= kDescriptorAreaBytes);
    for (u32 i = 0; i < descriptor_count; ++i) {
      const u32 offset = i * kPage;
      const u32 chunk = std::min(kPage, length - offset);
      const bool last = i + 1 == descriptor_count;
      XdmaDescriptor desc;
      desc.control_flags =
          last ? static_cast<u8>(descctl::kStop | descctl::kEop |
                                 descctl::kCompleted)
               : u8{0};
      desc.length = chunk;
      if (channel.direction() == Direction::H2C) {
        desc.src_addr = buffer_addr + offset;
        desc.dst_addr = card_addr + offset;
      } else {
        desc.src_addr = card_addr + offset;
        desc.dst_addr = buffer_addr + offset;
      }
      desc.next_addr = last ? 0 : desc_base + (i + 1) * kDescriptorBytes;
      desc.next_adjacent = last ? 0
                                : static_cast<u8>(std::min<u32>(
                                      descriptor_count - i - 1, 63));
      std::array<u8, kDescriptorBytes> raw{};
      desc.encode(raw);
      ctx_.rc->memory().write(desc_base + i * kDescriptorBytes, raw);
    }
    const HostAddr desc_addr = desc_base;

    // Program the SGDMA registers and start the engine: three posted MMIO
    // writes per transfer.
    mmio_write(thread, sgdma_base + regs::kSgDescLo,
               static_cast<u32>(desc_addr & 0xffffffffu));
    mmio_write(thread, sgdma_base + regs::kSgDescHi,
               static_cast<u32>(desc_addr >> 32));
    mmio_write(thread, channel_base + regs::kChControlW1S,
               regs::kControlRun | regs::kControlIeDescStopped);

    if (poll_mode_) {
      // Poll-mode ablation: spin on the status register; each poll is a
      // full non-posted round trip.
      bool completed = false;
      for (int spins = 0; spins < 64; ++spins) {
        const u32 status = mmio_read(thread, channel_base + regs::kChStatus);
        if ((status & regs::kStatusMagicStopped) != 0) {
          break;  // engine halted on a bad descriptor: no point spinning
        }
        if ((status & regs::kStatusDescStopped) != 0) {
          completed = true;
          break;
        }
      }
      if (completed) {
        mmio_write(thread, channel_base + regs::kChControlW1C,
                   regs::kControlRun);
        thread.exec(thread.costs().xdma_teardown);
        ++transfers_completed_;
        return true;
      }
      // Clear the sticky halt status (read-to-clear) and stop the
      // engine, then retry with a fresh descriptor list.
      (void)mmio_read(thread, channel_base + regs::kChStatusRC);
      mmio_write(thread, channel_base + regs::kChControlW1C,
                 regs::kControlRun);
      continue;
    }

    // Interrupt mode: the run-bit write made the engine execute; its
    // completion interrupt is pending with a delivery timestamp.
    if (!ctx_.irq->pending(vector)) {
      // Completion-wait timeout (xdma_xfer_submit's wait would expire
      // here). Read the engine status — read-to-clear, so this also
      // clears a sticky halt — to tell "engine halted" from "transfer
      // done but the MSI-X write was lost".
      const u32 status = mmio_read(thread, channel_base + regs::kChStatusRC);
      const bool halted = (status & regs::kStatusMagicStopped) != 0;
      const bool done = !halted && (status & regs::kStatusDescStopped) != 0;
      mmio_write(thread, channel_base + regs::kChControlW1C,
                 regs::kControlRun);
      if (done) {
        // The DMA itself finished; only the notify vanished. Finish in
        // process context — no ISR ran.
        ++lost_completion_irqs_;
        thread.exec(thread.costs().xdma_teardown);
        ++transfers_completed_;
        return true;
      }
      continue;  // halted (or never started): rebuild + restart
    }
    const sim::SimTime irq_time = ctx_.irq->consume(vector);
    thread.block_until(irq_time);
    thread.exec(thread.costs().irq_entry);
    // The ISR reads the channel status over PCIe — the expensive
    // non-posted read the VirtIO path does not have.
    const u32 status = mmio_read(thread, channel_base + regs::kChStatusRC);
    if ((status & regs::kStatusMagicStopped) != 0) {
      mmio_write(thread, channel_base + regs::kChControlW1C,
                 regs::kControlRun);
      continue;
    }
    thread.exec(thread.costs().xdma_isr_body);
    mmio_write(thread, channel_base + regs::kChControlW1C, regs::kControlRun);
    // Wake the sleeping submitter and finish in process context.
    thread.exec(thread.costs().wakeup);
    thread.exec(thread.costs().xdma_teardown);
    ++transfers_completed_;
    return true;
  }
  return false;
}

bool XdmaHostDriver::h2c_transfer(hostos::HostThread& thread,
                                  ConstByteSpan data, FpgaAddr card_addr) {
  VFPGA_EXPECTS(bound_);
  VFPGA_EXPECTS(data.size() <= buffer_capacity_);
  // User pages are pinned, not copied: place the caller's bytes at the
  // pinned-region address.
  ctx_.rc->memory().write(h2c_buffer_, data);
  return run_channel(thread, ctx_.device->h2c(), regs::kH2cChannelBase,
                     regs::kH2cSgdmaBase, h2c_vector_, h2c_buffer_, card_addr,
                     static_cast<u32>(data.size()));
}

bool XdmaHostDriver::c2h_transfer(hostos::HostThread& thread, ByteSpan out,
                                  FpgaAddr card_addr) {
  VFPGA_EXPECTS(bound_);
  VFPGA_EXPECTS(out.size() <= buffer_capacity_);
  if (!run_channel(thread, ctx_.device->c2h(), regs::kC2hChannelBase,
                   regs::kC2hSgdmaBase, c2h_vector_, c2h_buffer_, card_addr,
                   static_cast<u32>(out.size()))) {
    return false;
  }
  ctx_.rc->memory().read(c2h_buffer_, out);
  return true;
}

}  // namespace vfpga::xdma
