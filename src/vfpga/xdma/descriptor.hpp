// XDMA scatter-gather descriptor (PG195 "DMA/Bridge Subsystem for PCIe",
// Descriptor Format table).
//
// 32 bytes, little-endian:
//   +0  control: magic 0xad4b in [31:16], nxt_adj [13:8], flags [7:0]
//   +4  length  [27:0]
//   +8  src address (le64)   — host addr for H2C, card addr for C2H
//   +16 dst address (le64)   — card addr for H2C, host addr for C2H
//   +24 next descriptor address (le64)
//
// The vendor driver writes these into host memory per transfer and the
// engine fetches them over PCIe — the per-transfer descriptor exchange
// the paper contrasts with VirtIO's share-rings-once design (§IV-A).
#pragma once

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::xdma {

inline constexpr u16 kDescriptorMagic = 0xad4b;
inline constexpr u64 kDescriptorBytes = 32;
inline constexpr u32 kMaxDescriptorLen = (1u << 28) - 1;

namespace descctl {
inline constexpr u8 kStop = 1u << 0;       ///< last descriptor: stop engine
inline constexpr u8 kCompleted = 1u << 1;  ///< request per-desc writeback
inline constexpr u8 kEop = 1u << 4;        ///< end of packet (streaming)
}  // namespace descctl

struct XdmaDescriptor {
  u8 control_flags = 0;
  u8 next_adjacent = 0;  ///< contiguous descriptors after this one
  u32 length = 0;
  u64 src_addr = 0;
  u64 dst_addr = 0;
  u64 next_addr = 0;

  void encode(ByteSpan out) const {
    VFPGA_EXPECTS(out.size() >= kDescriptorBytes);
    VFPGA_EXPECTS(length <= kMaxDescriptorLen);
    const u32 control = static_cast<u32>(kDescriptorMagic) << 16 |
                        static_cast<u32>(next_adjacent & 0x3f) << 8 |
                        control_flags;
    store_le32(out, 0, control);
    store_le32(out, 4, length & 0x0fffffff);
    store_le64(out, 8, src_addr);
    store_le64(out, 16, dst_addr);
    store_le64(out, 24, next_addr);
  }

  /// Decode; returns false (and leaves *this untouched on garbage) when
  /// the magic does not match — the engine raises a descriptor error.
  static bool decode(ConstByteSpan raw, XdmaDescriptor& out) {
    VFPGA_EXPECTS(raw.size() >= kDescriptorBytes);
    const u32 control = load_le32(raw, 0);
    if ((control >> 16) != kDescriptorMagic) {
      return false;
    }
    out.control_flags = static_cast<u8>(control & 0xff);
    out.next_adjacent = static_cast<u8>((control >> 8) & 0x3f);
    out.length = load_le32(raw, 4) & 0x0fffffff;
    out.src_addr = load_le64(raw, 8);
    out.dst_addr = load_le64(raw, 16);
    out.next_addr = load_le64(raw, 24);
    return true;
  }

  [[nodiscard]] bool stop() const {
    return (control_flags & descctl::kStop) != 0;
  }
};

}  // namespace vfpga::xdma
