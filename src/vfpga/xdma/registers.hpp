// XDMA register map (PG195 ch. 2, "Register Space") — the subset the
// reference driver actually touches for one H2C + one C2H channel.
//
// Target addressing inside BAR1 (the DMA/bypass BAR): each block is
// identified by target [15:12] and channel [11:8]:
//   0x0000 H2C channel 0      0x1000 C2H channel 0
//   0x2000 IRQ block          0x3000 config block
//   0x4000 H2C SGDMA 0        0x5000 C2H SGDMA 0
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::xdma::regs {

inline constexpr BarOffset kH2cChannelBase = 0x0000;
inline constexpr BarOffset kC2hChannelBase = 0x1000;
inline constexpr BarOffset kIrqBlockBase = 0x2000;
inline constexpr BarOffset kConfigBlockBase = 0x3000;
inline constexpr BarOffset kH2cSgdmaBase = 0x4000;
inline constexpr BarOffset kC2hSgdmaBase = 0x5000;
inline constexpr u64 kRegisterSpaceBytes = 0x10000;

// ---- channel block offsets (relative to channel base) ----------------------
inline constexpr BarOffset kChIdentifier = 0x00;
inline constexpr BarOffset kChControl = 0x04;
inline constexpr BarOffset kChControlW1S = 0x08;  ///< write-1-to-set
inline constexpr BarOffset kChControlW1C = 0x0c;  ///< write-1-to-clear
inline constexpr BarOffset kChStatus = 0x40;
inline constexpr BarOffset kChStatusRC = 0x44;    ///< read-to-clear view
inline constexpr BarOffset kChCompletedDescCount = 0x48;
inline constexpr BarOffset kChInterruptEnable = 0x90;

/// Channel control bits.
inline constexpr u32 kControlRun = 1u << 0;
inline constexpr u32 kControlIeDescStopped = 1u << 1;
inline constexpr u32 kControlIeDescCompleted = 1u << 2;

/// Channel status bits.
inline constexpr u32 kStatusBusy = 1u << 0;
inline constexpr u32 kStatusDescStopped = 1u << 1;
inline constexpr u32 kStatusDescCompleted = 1u << 2;
inline constexpr u32 kStatusMagicStopped = 1u << 4;  ///< bad descriptor magic

/// Identifier register layout: 0x1fc followed by target/channel nibbles.
[[nodiscard]] constexpr u32 channel_identifier(bool is_c2h, u8 channel) {
  return 0x1fc00000u | (is_c2h ? 0x00010000u : 0u) |
         (static_cast<u32>(channel) << 8) | 0x06;  // version nibble
}

// ---- SGDMA block offsets ----------------------------------------------------
inline constexpr BarOffset kSgDescLo = 0x80;
inline constexpr BarOffset kSgDescHi = 0x84;
inline constexpr BarOffset kSgDescAdjacent = 0x88;
inline constexpr BarOffset kSgDescCredits = 0x8c;

// ---- IRQ block ---------------------------------------------------------------
inline constexpr BarOffset kIrqChannelEnableMask = 0x10;
inline constexpr BarOffset kIrqChannelRequest = 0x44;

}  // namespace vfpga::xdma::regs
