// The XDMA example-design endpoint.
//
// Models the FPGA design the paper uses to test the vendor driver
// (§III-B.2): the stock XDMA IP with "a BRAM connected directly to an
// AXI memory-mapped interface of the PCIe IP" and no user logic. BAR0
// exposes the DMA register space (plus the MSI-X table at 0x8000, as
// PG195 places it when MSI-X is enabled). The host can only reach the
// BRAM through DMA transfers, exactly as in the example design.
#pragma once

#include <memory>
#include <optional>

#include "vfpga/pcie/capabilities.hpp"
#include "vfpga/pcie/function.hpp"
#include "vfpga/pcie/msix.hpp"
#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/xdma/engine.hpp"

namespace vfpga::xdma {

inline constexpr u16 kXilinxVendorId = 0x10ee;
/// Device ID the example design enumerates with (Gen2 design default).
inline constexpr u16 kXdmaExampleDeviceId = 0x7024;

inline constexpr BarOffset kMsixTableOffset = 0x8000;
inline constexpr BarOffset kMsixPbaOffset = 0x9000;
inline constexpr u32 kMsixVectors = 2;  ///< vector 0: H2C0, vector 1: C2H0
inline constexpr u32 kH2cVector = 0;
inline constexpr u32 kC2hVector = 1;

class XdmaIpFunction : public pcie::Function {
 public:
  /// `bram_bytes`: size of the BRAM behind the AXI-MM port. The paper
  /// sizes/widths it to match the VirtIO design's memory.
  explicit XdmaIpFunction(u64 bram_bytes, EngineConfig engine_config = {});
  ~XdmaIpFunction() override;

  /// Create DMA channels and MSI-X plumbing; call after attaching to the
  /// root complex (the DMA port needs the attachment).
  void connect(pcie::RootComplex& rc);

  [[nodiscard]] DmaChannel& h2c() { return *h2c_; }
  [[nodiscard]] DmaChannel& c2h() { return *c2h_; }

  /// Install a fault plane on both DMA channels (engine-halt injection).
  /// Call after connect(); nullptr = no fault hooks.
  void set_fault_plane(fault::FaultPlane* plane) {
    h2c_->set_fault_plane(plane);
    c2h_->set_fault_plane(plane);
  }
  [[nodiscard]] mem::Bram& bram() { return bram_; }
  [[nodiscard]] fpga::PerfCounterBank& counters() { return counters_; }
  [[nodiscard]] pcie::MsixTable& msix() { return *msix_; }

  // ---- pcie::Function ---------------------------------------------------------
  u64 bar_read(u32 bar, BarOffset offset, u32 size, sim::SimTime at) override;
  void bar_write(u32 bar, BarOffset offset, u64 value, u32 size,
                 sim::SimTime at) override;

 private:
  [[nodiscard]] DmaChannel* channel_for(BarOffset offset, BarOffset base);
  u64 register_read(BarOffset offset, sim::SimTime at);
  void register_write(BarOffset offset, u32 value, sim::SimTime at);

  mem::Bram bram_;
  EngineConfig engine_config_;
  fpga::PerfCounterBank counters_;
  std::optional<pcie::DmaPort> port_;
  std::unique_ptr<DmaChannel> h2c_;
  std::unique_ptr<DmaChannel> c2h_;
  std::unique_ptr<pcie::MsixTable> msix_;
};

}  // namespace vfpga::xdma
