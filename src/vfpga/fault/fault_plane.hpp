// Unified fault-injection plane.
//
// Every layer of the stack consults one FaultPlane at its natural
// injection points: the PCIe root complex (TLP drop/corruption, lost or
// duplicated MSI-X messages), host memory (poisoned DMA read
// completions), the split/packed virtqueue engines (descriptor-table
// corruption, used-ring write failures), and the XDMA engine
// (descriptor-magic halts). The plane draws from its own deterministic
// RNG stream, so a campaign run is reproducible from (fault config,
// seed) alone — and a layer holding a null plane pointer, or a plane
// whose rate for a class is zero, performs no RNG draws at all, keeping
// the happy path bit-identical to a build without fault hooks.
#pragma once

#include <array>
#include <cstddef>

#include "vfpga/common/types.hpp"
#include "vfpga/sim/rng.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::fault {

/// The fault classes the plane can inject. Each maps to one injection
/// point in the stack (see the class comment).
enum class FaultClass : u8 {
  kTlpDrop = 0,       ///< payload-sized posted DMA write dropped in flight
  kTlpCorrupt,        ///< payload-sized posted DMA write corrupted in flight
  kDmaPoison,         ///< DMA read completion returns poisoned payload
  kDescCorrupt,       ///< virtqueue descriptor fetched by the engine corrupts
  kUsedWriteFail,     ///< used-ring / completion write lost before host memory
  kNotifyLost,        ///< MSI-X message dropped
  kNotifyDup,         ///< MSI-X message delivered twice
  kEngineHalt,        ///< XDMA descriptor magic corrupted -> engine halt
  kSteeringCorrupt,   ///< RSS steering-table entry corrupts on lookup
  kQueueIrqLost,      ///< per-queue MSI-X message dropped at the device
  kIndirectCorrupt,   ///< indirect descriptor table corrupts on fetch
  kBlkHeaderCorrupt,  ///< blk request header corrupts on the fabric bus
  kBlkIrqLost,        ///< blk completion MSI-X message dropped
  kBlkBackingTimeout, ///< blk backing store stalls past its deadline
};

inline constexpr std::size_t kFaultClassCount = 14;

/// Control-plane ring traffic (indices, descriptors, used elements, MSI
/// messages) is 2-32 bytes; only payload-sized TLPs at or above this
/// threshold are eligible for drop/corrupt/poison, mirroring how link
/// level errors on tiny TLPs are caught by DLLP replay while large
/// payloads survive to the application layer.
inline constexpr std::size_t kMinPayloadBytes = 64;

[[nodiscard]] const char* fault_class_name(FaultClass cls);

/// Per-class injection rates (probability per opportunity) plus the
/// campaign seed. All-zero rates == fault injection disabled.
struct FaultConfig {
  std::array<double, kFaultClassCount> rate{};
  u64 seed = 1;

  void set_rate(FaultClass cls, double r) {
    rate[static_cast<std::size_t>(cls)] = r;
  }
  [[nodiscard]] double rate_of(FaultClass cls) const {
    return rate[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] bool any_enabled() const {
    for (double r : rate) {
      if (r > 0.0) {
        return true;
      }
    }
    return false;
  }
};

class FaultPlane {
 public:
  explicit FaultPlane(const FaultConfig& config);

  /// Decide whether to inject `cls` at this opportunity. Never draws
  /// from the RNG when the class rate is zero or the plane is disarmed,
  /// so a disarmed plane is observationally identical to no plane.
  [[nodiscard]] bool should_inject(FaultClass cls);

  /// Flip one random byte of `data` (draws from the plane's RNG).
  void corrupt(ByteSpan data);

  /// Runtime arm/disarm switch — campaigns disarm the plane after the
  /// fault phase to verify the stack returns to steady state.
  void set_armed(bool armed) { armed_ = armed; }
  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] u64 injected(FaultClass cls) const {
    return injected_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] u64 total_injected() const;
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Snapshot/restore of the plane's dynamic state (RNG position,
  /// injection counters, arm switch). The fault *config* is part of the
  /// snapshot compatibility fingerprint: load_state fails when the
  /// restore target was built with different rates or seed, since the
  /// replayed RNG stream would no longer mean the same thing.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  FaultConfig config_;
  sim::Xoshiro256 rng_;
  std::array<u64, kFaultClassCount> injected_{};
  bool armed_ = true;
};

}  // namespace vfpga::fault
