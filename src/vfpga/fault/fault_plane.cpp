#include "vfpga/fault/fault_plane.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::fault {

const char* fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::kTlpDrop:
      return "tlp-drop";
    case FaultClass::kTlpCorrupt:
      return "tlp-corrupt";
    case FaultClass::kDmaPoison:
      return "dma-poison";
    case FaultClass::kDescCorrupt:
      return "desc-corrupt";
    case FaultClass::kUsedWriteFail:
      return "used-write-fail";
    case FaultClass::kNotifyLost:
      return "notify-lost";
    case FaultClass::kNotifyDup:
      return "notify-dup";
    case FaultClass::kEngineHalt:
      return "engine-halt";
    case FaultClass::kSteeringCorrupt:
      return "steering-corrupt";
    case FaultClass::kQueueIrqLost:
      return "queue-irq-lost";
    case FaultClass::kIndirectCorrupt:
      return "indirect-corrupt";
  }
  VFPGA_UNREACHABLE("bad fault class");
}

FaultPlane::FaultPlane(const FaultConfig& config)
    : config_(config), rng_(config.seed ^ 0xfa017f4417ULL) {}

bool FaultPlane::should_inject(FaultClass cls) {
  const double rate = config_.rate_of(cls);
  if (!armed_ || rate <= 0.0) {
    return false;  // no RNG draw: disarmed plane == no plane
  }
  if (rng_.uniform01() >= rate) {
    return false;
  }
  ++injected_[static_cast<std::size_t>(cls)];
  return true;
}

void FaultPlane::corrupt(ByteSpan data) {
  VFPGA_EXPECTS(!data.empty());
  const u64 offset = rng_.uniform_below(data.size());
  // XOR with a non-zero byte so the flip is guaranteed to change data.
  const u8 mask = static_cast<u8>(1u + rng_.uniform_below(255));
  data[offset] ^= mask;
}

u64 FaultPlane::total_injected() const {
  u64 total = 0;
  for (u64 n : injected_) {
    total += n;
  }
  return total;
}

}  // namespace vfpga::fault
