#include "vfpga/fault/fault_plane.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::fault {

const char* fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::kTlpDrop:
      return "tlp-drop";
    case FaultClass::kTlpCorrupt:
      return "tlp-corrupt";
    case FaultClass::kDmaPoison:
      return "dma-poison";
    case FaultClass::kDescCorrupt:
      return "desc-corrupt";
    case FaultClass::kUsedWriteFail:
      return "used-write-fail";
    case FaultClass::kNotifyLost:
      return "notify-lost";
    case FaultClass::kNotifyDup:
      return "notify-dup";
    case FaultClass::kEngineHalt:
      return "engine-halt";
    case FaultClass::kSteeringCorrupt:
      return "steering-corrupt";
    case FaultClass::kQueueIrqLost:
      return "queue-irq-lost";
    case FaultClass::kIndirectCorrupt:
      return "indirect-corrupt";
    case FaultClass::kBlkHeaderCorrupt:
      return "blk-header-corrupt";
    case FaultClass::kBlkIrqLost:
      return "blk-irq-lost";
    case FaultClass::kBlkBackingTimeout:
      return "blk-backing-timeout";
  }
  VFPGA_UNREACHABLE("bad fault class");
}

FaultPlane::FaultPlane(const FaultConfig& config)
    : config_(config), rng_(config.seed ^ 0xfa017f4417ULL) {}

bool FaultPlane::should_inject(FaultClass cls) {
  const double rate = config_.rate_of(cls);
  if (!armed_ || rate <= 0.0) {
    return false;  // no RNG draw: disarmed plane == no plane
  }
  if (rng_.uniform01() >= rate) {
    return false;
  }
  ++injected_[static_cast<std::size_t>(cls)];
  return true;
}

void FaultPlane::corrupt(ByteSpan data) {
  VFPGA_EXPECTS(!data.empty());
  const u64 offset = rng_.uniform_below(data.size());
  // XOR with a non-zero byte so the flip is guaranteed to change data.
  const u8 mask = static_cast<u8>(1u + rng_.uniform_below(255));
  data[offset] ^= mask;
}

void FaultPlane::save_state(migrate::StateWriter& w) const {
  // Config fingerprint: the restore target must have been constructed
  // with the identical campaign, or the restored RNG stream diverges.
  w.put_u64(config_.seed);
  for (double rate : config_.rate) {
    w.put_f64(rate);
  }
  const auto& s = rng_.state();
  for (u64 word : s) {
    w.put_u64(word);
  }
  for (u64 n : injected_) {
    w.put_u64(n);
  }
  w.put_bool(armed_);
}

void FaultPlane::load_state(migrate::StateReader& r) {
  if (r.get_u64() != config_.seed) {
    r.fail();
    return;
  }
  for (double rate : config_.rate) {
    if (r.get_f64() != rate) {
      r.fail();
      return;
    }
  }
  std::array<u64, 4> s{};
  for (u64& word : s) {
    word = r.get_u64();
  }
  rng_.set_state(s);
  for (u64& n : injected_) {
    n = r.get_u64();
  }
  armed_ = r.get_bool();
}

u64 FaultPlane::total_injected() const {
  u64 total = 0;
  for (u64 n : injected_) {
    total += n;
  }
  return total;
}

}  // namespace vfpga::fault
