// Per-virtqueue FSMs of the VirtIO controller.
//
// IQueueEngine is the format-independent contract the controller drives;
// QueueEngine implements it over the split ring (the paper's format) and
// PackedQueueEngine (packed_queue_engine.hpp) over the packed ring. The
// controller selects per queue at enable time from the negotiated
// VIRTIO_F_RING_PACKED bit, so a single device binary serves both driver
// generations — the same property the Intel P-Tile hard IP advertises.
#pragma once

#include <array>
#include <optional>

#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/fpga/clock.hpp"
#include "vfpga/virtio/virtqueue_device.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::core {

/// FSM cycle costs (125 MHz domain). These are the controller's own
/// pipeline stages, distinct from PCIe wire time.
struct QueueTiming {
  fpga::ClockDomain clock = fpga::kUserClock;
  u64 notify_decode_cycles = 48;  ///< doorbell decode + queue dispatch
  u64 arbitration_cycles = 24;    ///< grant from the queue arbiter
  u64 per_descriptor_cycles = 10; ///< descriptor unpack/validate
  u64 used_update_cycles = 16;    ///< build used element + idx update
  u64 irq_decision_cycles = 10;   ///< EVENT_IDX compare / vector select
};

struct ControllerPolicy {
  /// Fetch two adjacent descriptors in one PCIe read when the chain is
  /// laid out contiguously (ablation: ABL-DESC).
  bool batched_chain_fetch = false;
  /// Offer and honour VIRTIO_F_EVENT_IDX.
  bool use_event_idx = true;
  /// Consume RX buffers against a cached avail-idx snapshot instead of
  /// re-reading avail.idx before every response (ablation: the paper's
  /// conservative FSM re-polls each time).
  bool trust_cached_credits = false;
  /// Offer VIRTIO_F_INDIRECT_DESC (the device side handles indirect
  /// tables transparently; drivers with long chains fetch them in one
  /// DMA read).
  bool offer_indirect = true;
  /// Offer VIRTIO_F_RING_PACKED; a packed-aware driver then gets the
  /// one-read-per-buffer ring format (ablation: ABL-RING).
  bool offer_packed = false;
};

/// Largest descriptor length the FSM's bounds check accepts; anything
/// above it is treated as a corrupted descriptor table.
inline constexpr u32 kMaxSaneDescriptorLen = 1u << 20;

/// A fully-fetched buffer chain ready for data movement.
struct FetchedChain {
  /// Completion handle: split = head descriptor index, packed = buffer id.
  u16 handle = 0;
  /// Ring slots the chain occupies (packed completion bookkeeping; for
  /// split chains through an indirect table this is 1).
  u16 ring_slots = 0;
  /// The fetched descriptors failed the FSM's bounds check (corrupted
  /// table): the controller must not touch the chain's buffers and
  /// should enter the error state (DEVICE_NEEDS_RESET).
  bool error = false;
  /// The chain arrived through an indirect descriptor table (one
  /// table-sized DMA read) rather than a per-descriptor walk.
  bool via_indirect = false;
  std::vector<virtio::Descriptor> descriptors;
};

/// The FSM's descriptor bounds check, run on every fetched chain: a
/// zero/oversized length or null address means the table read returned
/// garbage.
[[nodiscard]] bool chain_within_bounds(const FetchedChain& chain,
                                       u16 queue_size);

class IQueueEngine {
 public:
  IQueueEngine() = default;
  IQueueEngine(const IQueueEngine&) = delete;
  IQueueEngine& operator=(const IQueueEngine&) = delete;
  virtual ~IQueueEngine() = default;

  /// Completions this engine has published to the used ring (used-ring
  /// writes the fault plane swallowed are NOT counted — the driver can
  /// never observe them). Monotonic from queue enable.
  [[nodiscard]] u64 completions_published() const { return completions_; }

  /// Simulated time at which completion number `seq` (0-based, in
  /// publish order) became globally visible in host memory — the
  /// delivered edge of its posted used-ring write. The functional
  /// simulation writes ring bytes eagerly while computing timestamps, so
  /// a poll-mode driver must gate its harvests on this time instead of
  /// on the bytes. Returns nullopt when the completion has not been
  /// published; completions older than the retention window report
  /// SimTime{} (visible since long ago).
  [[nodiscard]] std::optional<sim::SimTime> completion_visible_time(
      u64 seq) const {
    if (seq >= completions_) {
      return std::nullopt;
    }
    if (completions_ - seq > kVisibilityWindow) {
      return sim::SimTime{};
    }
    return visible_at_[seq % kVisibilityWindow];
  }

  /// How many chains the driver has published that we have not consumed.
  /// Timed (one DMA read). Split rings report the exact count
  /// (poll_is_exact() == true); packed rings can only see whether the
  /// *next* slot is available (0 or 1) and must be re-polled after
  /// draining.
  virtual virtio::Timed<u16> poll_available(sim::SimTime start) = 0;
  [[nodiscard]] virtual bool poll_is_exact() const = 0;

  /// Consume the next available chain (requires a prior poll that
  /// reported availability).
  virtual virtio::Timed<FetchedChain> consume_chain(sim::SimTime start) = 0;

  struct Completion {
    sim::SimTime engine_free{};
    bool interrupt = false;
  };
  /// Complete a chain: publish the used entry and decide whether to
  /// interrupt. With `refresh_suppression` false the FSM reuses its
  /// cached copy of the driver's suppression state instead of a fresh
  /// DMA read — valid for completions the driver keeps suppressed (TX
  /// recycling), where staleness cannot cause a missed wake.
  virtual Completion complete_chain(const FetchedChain& chain, u32 written,
                                    sim::SimTime start,
                                    bool refresh_suppression) = 0;

  /// Post-drain bookkeeping at the end of a notify burst (split:
  /// advance the avail_event kick threshold past the drained chains;
  /// packed: nothing — kick suppression is flags-only). Returns the time
  /// the engine is free.
  virtual sim::SimTime post_drain_update(u16 drained_through,
                                         sim::SimTime start) = 0;

  /// Snapshot/restore of the full FSM state (including the inherited
  /// completion-visibility window). Must never touch host memory.
  virtual void save_state(migrate::StateWriter& w) const = 0;
  virtual void load_state(migrate::StateReader& r) = 0;

 protected:
  /// Serialization of the base's completion counter + visibility window
  /// (concrete engines call these from their save/load overrides).
  void save_base_state(migrate::StateWriter& w) const;
  void load_base_state(migrate::StateReader& r);
  /// Engines call this from complete_chain once the used-ring write is
  /// issued, with the write's delivered (globally-visible) timestamp.
  void record_completion(sim::SimTime delivered) {
    visible_at_[completions_ % kVisibilityWindow] = delivered;
    ++completions_;
  }

 private:
  /// Retained visibility timestamps. Larger than any queue size we
  /// configure (max_queue_size caps at 256), so every in-flight
  /// completion — the only ones a driver can still be waiting on — is
  /// always inside the window.
  static constexpr u64 kVisibilityWindow = 1024;
  std::array<sim::SimTime, kVisibilityWindow> visible_at_{};
  u64 completions_ = 0;
};

/// Split-ring engine — the paper's controller FSM.
class QueueEngine final : public IQueueEngine {
 public:
  QueueEngine(virtio::VirtqueueDevice vq, QueueTiming timing,
              ControllerPolicy policy, fault::FaultPlane* fault = nullptr)
      : vq_(std::move(vq)), timing_(timing), policy_(policy), fault_(fault) {}

  [[nodiscard]] virtio::VirtqueueDevice& vq() { return vq_; }
  [[nodiscard]] const virtio::VirtqueueDevice& vq() const { return vq_; }

  virtio::Timed<u16> poll_available(sim::SimTime start) override;
  [[nodiscard]] bool poll_is_exact() const override { return true; }
  virtio::Timed<FetchedChain> consume_chain(sim::SimTime start) override;
  Completion complete_chain(const FetchedChain& chain, u32 written,
                            sim::SimTime start,
                            bool refresh_suppression) override;
  sim::SimTime post_drain_update(u16 drained_through,
                                 sim::SimTime start) override;

  [[nodiscard]] const QueueTiming& timing() const { return timing_; }
  [[nodiscard]] const ControllerPolicy& policy() const { return policy_; }

  void save_state(migrate::StateWriter& w) const override;
  void load_state(migrate::StateReader& r) override;

 private:
  virtio::VirtqueueDevice vq_;
  QueueTiming timing_;
  ControllerPolicy policy_;
  fault::FaultPlane* fault_ = nullptr;
  std::optional<u16> cached_used_event_;
  /// Used entries pushed with a stale suppression snapshot since the
  /// last fresh used_event read: the next fresh decision widens its
  /// crossing window over them (a mergeable RX span must interrupt if
  /// ANY of its entries passed used_event, not just the last).
  u16 stale_completions_ = 0;
};

}  // namespace vfpga::core
