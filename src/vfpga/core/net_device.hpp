// virtio-net device personality: the paper's test case (§III-A).
//
// "When used as a network device, the FPGA receives Ethernet frames from
// the host. ... the FPGA could either send out a received Ethernet frame
// as is or perform additional tasks on behalf of the host, e.g., a
// checksum calculation." The echo logic here implements the paper's
// test workload: answer every UDP packet with a UDP packet of the same
// size (addresses/ports swapped, checksums regenerated), answer ARP
// requests so the host stack can resolve the FPGA's address, and —
// when VIRTIO_NET_F_CSUM is negotiated — complete checksums the driver
// offloaded.
#pragma once

#include <array>
#include <vector>

#include "vfpga/core/user_logic.hpp"
#include "vfpga/net/addr.hpp"
#include "vfpga/net/rss.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::core {

struct NetDeviceConfig {
  net::MacAddr mac{{0x02, 0xfa, 0xde, 0x00, 0x00, 0x01}};
  net::Ipv4Addr ip = net::Ipv4Addr::from_octets(10, 42, 0, 2);
  u16 mtu = 1500;
  bool link_up = true;
  /// Offer TX checksum offload (VIRTIO_NET_F_CSUM).
  bool offer_csum = true;
  /// Offer VIRTIO_NET_F_GUEST_CSUM (we always produce full checksums, so
  /// offering it is safe).
  bool offer_guest_csum = true;
  /// Offer VIRTIO_NET_F_MRG_RXBUF: a negotiating driver may post small
  /// RX buffers and let one frame span several of them, with the header's
  /// num_buffers carrying the span (§5.1.6.4). Offering costs nothing —
  /// behaviour changes only when a driver actually accepts the bit.
  bool offer_mrg_rxbuf = true;
  /// Offer the segmentation offloads (HOST_TSO4/HOST_UFO on TX,
  /// GUEST_TSO4/GUEST_UFO on RX). Like MRG_RXBUF the offer is free: the
  /// GSO/GRO engines engage only when a driver negotiates the bits AND
  /// stamps a gso_type on a submitted frame. HOST bits additionally
  /// require offer_csum (the segmenter writes per-segment checksums).
  bool offer_gso = true;
  /// Offer VIRTIO_NET_F_NOTF_COAL (adaptive interrupt moderation via
  /// control-queue commands). Default OFF: the offer adds a control
  /// queue to the single-pair personality, which changes queue_count and
  /// therefore the probe-time RNG stream the paper-figure benches pin.
  bool offer_notf_coal = false;

  /// RX/TX queue pairs the fabric instantiates. 1 (the paper's device)
  /// keeps the two-queue personality with no control queue; >1 offers
  /// VIRTIO_NET_F_MQ + VIRTIO_NET_F_CTRL_VQ and adds the control queue
  /// after the last pair.
  u16 max_queue_pairs = 1;

  /// User-logic pipeline model: fixed cycles + per-8-byte-beat cycles
  /// (parse + rebuild), doubled when a checksum must be computed in the
  /// slow path.
  u64 fixed_cycles = 52;
  u64 cycles_per_beat = 1;
  /// GSO engine model: per-segment header-rewrite cost on top of the
  /// single shared per-beat payload pass (the checksum unit is fused
  /// into the segmenter, so no second pass), and per-segment cost of
  /// the GRO coalescer merging the echoed train back together.
  u64 gso_segment_cycles = 24;
  u64 gro_merge_cycles = 12;
};

class NetDeviceLogic final : public UserLogic {
 public:
  explicit NetDeviceLogic(NetDeviceConfig config = {});

  // ---- UserLogic ---------------------------------------------------------------
  [[nodiscard]] virtio::DeviceType device_type() const override {
    return virtio::DeviceType::Net;
  }
  [[nodiscard]] virtio::FeatureSet device_features() const override;
  [[nodiscard]] u16 queue_count() const override {
    // Single-pair keeps the paper's two-queue personality; multiqueue —
    // or a single-pair device offering NOTF_COAL — adds the control
    // queue after the last supported pair (§5.1.2).
    return has_ctrl_queue()
               ? static_cast<u16>(2 * config_.max_queue_pairs + 1)
               : u16{2};
  }
  void on_driver_ready(virtio::FeatureSet negotiated) override;
  void attach_fault_plane(fault::FaultPlane* plane) override {
    fault_ = plane;
  }
  [[nodiscard]] u32 device_config_size() const override {
    return virtio::net::NetConfigLayout::kSize;
  }
  [[nodiscard]] u8 device_config_read(u32 offset) const override;
  std::optional<Response> process(u16 queue, ConstByteSpan payload,
                                  u32 writable_capacity) override;
  [[nodiscard]] InterruptModeration interrupt_moderation(
      u16 queue) const override;

  // ---- multiqueue ---------------------------------------------------------------
  [[nodiscard]] u16 max_queue_pairs() const { return config_.max_queue_pairs; }
  [[nodiscard]] u16 active_queue_pairs() const { return active_pairs_; }
  [[nodiscard]] bool has_ctrl_queue() const {
    return config_.max_queue_pairs > 1 || config_.offer_notf_coal;
  }
  [[nodiscard]] u16 ctrl_queue() const {
    return virtio::net::ctrl_queue_index(config_.max_queue_pairs);
  }

  // ---- stats ---------------------------------------------------------------------
  [[nodiscard]] u64 udp_echoes() const { return udp_echoes_; }
  [[nodiscard]] u64 icmp_echoes() const { return icmp_echoes_; }
  [[nodiscard]] u64 arp_replies() const { return arp_replies_; }
  [[nodiscard]] u64 checksums_offloaded() const {
    return checksums_offloaded_;
  }
  [[nodiscard]] u64 dropped() const { return dropped_; }
  [[nodiscard]] u64 ctrl_commands() const { return ctrl_commands_; }
  [[nodiscard]] u64 ctrl_rejected() const { return ctrl_rejected_; }
  [[nodiscard]] u64 gso_superframes() const { return gso_superframes_; }
  [[nodiscard]] u64 gso_segments_out() const { return gso_segments_out_; }
  [[nodiscard]] u64 gro_coalesced() const { return gro_coalesced_; }
  [[nodiscard]] virtio::net::CoalRxParams rx_coalesce() const {
    return rx_coal_;
  }
  [[nodiscard]] u64 pair_echoes(u16 pair) const {
    return pair_echoes_.at(pair);
  }
  [[nodiscard]] const NetDeviceConfig& device_config() const {
    return config_;
  }
  [[nodiscard]] virtio::FeatureSet negotiated() const { return negotiated_; }

  /// Snapshot/restore of the fabric personality's dynamic state:
  /// negotiated features, active pairs, the RSS indirection table,
  /// NOTF_COAL parameters and counters.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  [[nodiscard]] u64 processing_cycles(u64 frame_bytes, bool checksummed) const;
  /// RSS stage: indirection-table lookup (with the steering-corrupt
  /// fault hook) clamped to the active pair count.
  [[nodiscard]] u16 steer_flow(u32 hash);
  void reset_steering_table();
  [[nodiscard]] Response ctrl_response(u16 queue, u8 ack, u64 cycles);
  std::optional<Response> process_ctrl(u16 queue, ConstByteSpan payload,
                                       u32 writable_capacity);
  /// GSO fast path: segment one offloaded superframe, echo the train,
  /// and coalesce it back when the guest accepts large RX frames.
  std::optional<Response> process_gso_udp(const virtio::net::NetHeader& vhdr,
                                          const Bytes& frame);

  NetDeviceConfig config_;
  virtio::FeatureSet negotiated_{};
  fault::FaultPlane* fault_ = nullptr;
  u16 active_pairs_ = 1;
  std::array<u8, net::kSteeringTableSize> steering_table_{};
  std::vector<u64> pair_echoes_;
  u64 udp_echoes_ = 0;
  u64 icmp_echoes_ = 0;
  u64 arp_replies_ = 0;
  u64 checksums_offloaded_ = 0;
  u64 dropped_ = 0;
  u64 ctrl_commands_ = 0;
  u64 ctrl_rejected_ = 0;
  u64 gso_superframes_ = 0;
  u64 gso_segments_out_ = 0;
  u64 gro_coalesced_ = 0;
  virtio::net::CoalRxParams rx_coal_{};
};

}  // namespace vfpga::core
