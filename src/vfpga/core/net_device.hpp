// virtio-net device personality: the paper's test case (§III-A).
//
// "When used as a network device, the FPGA receives Ethernet frames from
// the host. ... the FPGA could either send out a received Ethernet frame
// as is or perform additional tasks on behalf of the host, e.g., a
// checksum calculation." The echo logic here implements the paper's
// test workload: answer every UDP packet with a UDP packet of the same
// size (addresses/ports swapped, checksums regenerated), answer ARP
// requests so the host stack can resolve the FPGA's address, and —
// when VIRTIO_NET_F_CSUM is negotiated — complete checksums the driver
// offloaded.
#pragma once

#include "vfpga/core/user_logic.hpp"
#include "vfpga/net/addr.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::core {

struct NetDeviceConfig {
  net::MacAddr mac{{0x02, 0xfa, 0xde, 0x00, 0x00, 0x01}};
  net::Ipv4Addr ip = net::Ipv4Addr::from_octets(10, 42, 0, 2);
  u16 mtu = 1500;
  bool link_up = true;
  /// Offer TX checksum offload (VIRTIO_NET_F_CSUM).
  bool offer_csum = true;
  /// Offer VIRTIO_NET_F_GUEST_CSUM (we always produce full checksums, so
  /// offering it is safe).
  bool offer_guest_csum = true;

  /// User-logic pipeline model: fixed cycles + per-8-byte-beat cycles
  /// (parse + rebuild), doubled when a checksum must be computed in the
  /// slow path.
  u64 fixed_cycles = 52;
  u64 cycles_per_beat = 1;
};

class NetDeviceLogic final : public UserLogic {
 public:
  explicit NetDeviceLogic(NetDeviceConfig config = {});

  // ---- UserLogic ---------------------------------------------------------------
  [[nodiscard]] virtio::DeviceType device_type() const override {
    return virtio::DeviceType::Net;
  }
  [[nodiscard]] virtio::FeatureSet device_features() const override;
  [[nodiscard]] u16 queue_count() const override { return 2; }
  void on_driver_ready(virtio::FeatureSet negotiated) override;
  [[nodiscard]] u32 device_config_size() const override {
    return virtio::net::NetConfigLayout::kSize;
  }
  [[nodiscard]] u8 device_config_read(u32 offset) const override;
  std::optional<Response> process(u16 queue, ConstByteSpan payload,
                                  u32 writable_capacity) override;

  // ---- stats ---------------------------------------------------------------------
  [[nodiscard]] u64 udp_echoes() const { return udp_echoes_; }
  [[nodiscard]] u64 icmp_echoes() const { return icmp_echoes_; }
  [[nodiscard]] u64 arp_replies() const { return arp_replies_; }
  [[nodiscard]] u64 checksums_offloaded() const {
    return checksums_offloaded_;
  }
  [[nodiscard]] u64 dropped() const { return dropped_; }
  [[nodiscard]] const NetDeviceConfig& device_config() const {
    return config_;
  }
  [[nodiscard]] virtio::FeatureSet negotiated() const { return negotiated_; }

 private:
  [[nodiscard]] u64 processing_cycles(u64 frame_bytes, bool checksummed) const;

  NetDeviceConfig config_;
  virtio::FeatureSet negotiated_{};
  u64 udp_echoes_ = 0;
  u64 icmp_echoes_ = 0;
  u64 arp_replies_ = 0;
  u64 checksums_offloaded_ = 0;
  u64 dropped_ = 0;
};

}  // namespace vfpga::core
