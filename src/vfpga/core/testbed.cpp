#include "vfpga/core/testbed.hpp"

#include <algorithm>
#include <array>

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/net/ethernet.hpp"
#include "vfpga/net/ipv4.hpp"
#include "vfpga/net/udp.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::core {

u64 virtio_wire_bytes(u64 udp_payload) {
  const u64 l3 = net::Ipv4Header::kSize + net::UdpHeader::kSize + udp_payload;
  const u64 eth_payload = std::max<u64>(l3, net::kMinEthernetPayload);
  return virtio::net::NetHeader::kSize + net::EthernetHeader::kSize +
         eth_payload;
}

// ---- VirtioNetTestbed -----------------------------------------------------------

namespace {

TestbedOptions with_ring_format(TestbedOptions options) {
  if (options.use_packed_rings) {
    options.controller.policy.offer_packed = true;
  }
  // Size the driver's buffer pools for the device's MTU unless the
  // caller picked a capacity explicitly. At the default MTU of 1500 the
  // derived value is the legacy 1526-byte frame area.
  using Datapath = hostos::VirtioNetDriver::DatapathOptions;
  if (options.datapath.frame_capacity == Datapath{}.frame_capacity) {
    options.datapath.frame_capacity =
        Datapath::frame_capacity_for_mtu(options.net.mtu);
  }
  return options;
}

}  // namespace

VirtioNetTestbed::VirtioNetTestbed(TestbedOptions options)
    : options_(with_ring_format(options)),
      fault_plane_(options_.fault.any_enabled()
                       ? std::make_unique<fault::FaultPlane>(options_.fault)
                       : nullptr),
      memory_(std::make_unique<mem::HostMemory>()),
      rc_(std::make_unique<pcie::RootComplex>(
          *memory_, pcie::LinkModel{options_.link})),
      net_logic_(std::make_unique<NetDeviceLogic>(options_.net)),
      device_(std::make_unique<VirtioDeviceFunction>(*net_logic_,
                                                     options_.controller)),
      rng_(options_.seed),
      mem_rng_(options_.seed ^ 0x6d656d6ull),
      noise_(options_.noise),
      blk_driver_(options_.blk_driver) {
  rc_->set_irq_sink([this](u32 data, sim::SimTime at) {
    irq_.deliver(data, at);
  });
  // Small host-memory-controller jitter on DMA reads: keeps the FPGA
  // counters' variance "minimal" (paper Fig. 4) but not identically zero.
  rc_->set_dma_read_jitter([this] {
    return sim::from_nanos(sim::sample_lognormal(mem_rng_, 55.0, 0.6));
  });
  rc_->attach(*device_);
  device_->connect(*rc_);
  if (options_.attach_blk) {
    blk_logic_ = std::make_unique<BlkDeviceLogic>(options_.blk);
    blk_device_ = std::make_unique<VirtioDeviceFunction>(*blk_logic_,
                                                         options_.controller);
    rc_->attach(*blk_device_);
    blk_device_->connect(*rc_);
  }
  if (fault_plane_) {
    rc_->set_fault_plane(fault_plane_.get());      // TLP + DMA + notify
    device_->set_fault_plane(fault_plane_.get());  // queue engines
    if (blk_device_) {
      blk_device_->set_fault_plane(fault_plane_.get());
    }
  }

  enumerated_ = pcie::enumerate_bus(*rc_);
  VFPGA_ASSERT(enumerated_.size() == (options_.attach_blk ? 2u : 1u));

  thread_ = std::make_unique<hostos::HostThread>(rng_, options_.costs,
                                                 noise_);
  hostos::VirtioNetDriver::BindContext ctx;
  ctx.rc = rc_.get();
  ctx.device = device_.get();
  ctx.enumerated = &enumerated_.front();
  ctx.irq = &irq_;
  ctx.prefer_packed = options_.use_packed_rings;
  driver_.set_datapath(options_.datapath);
  const bool bound =
      driver_.probe(ctx, *thread_, options_.requested_queue_pairs);
  VFPGA_ASSERT(bound);
  VFPGA_ASSERT(driver_.using_packed_rings() == options_.use_packed_rings);

  stack_ = std::make_unique<hostos::KernelNetstack>(driver_, irq_);
  stack_->configure_fpga_route(options_.net.ip, options_.net.mac);
  socket_ = std::make_unique<hostos::UdpSocket>(*stack_, options_.udp_port);

  if (options_.attach_blk) {
    // The blk function probes after the net stack is up, so the
    // net-only bring-up sequence (and its RNG draw order) is identical
    // whether or not storage is attached.
    hostos::VirtioBlkDriver::BindContext blk_ctx;
    blk_ctx.rc = rc_.get();
    blk_ctx.device = blk_device_.get();
    blk_ctx.enumerated = &enumerated_[1];
    blk_ctx.irq = &irq_;
    blk_ctx.prefer_packed = options_.use_packed_rings;
    const bool blk_bound = blk_driver_.probe(blk_ctx, *thread_);
    VFPGA_ASSERT(blk_bound);
  }
}

std::unique_ptr<hostos::HostThread> VirtioNetTestbed::spawn_thread() {
  return std::make_unique<hostos::HostThread>(rng_, options_.costs, noise_,
                                              thread_->now());
}

void VirtioNetTestbed::quiesce() {
  for (u16 pair = 0; pair < driver_.queue_pairs(); ++pair) {
    driver_.flush_tx(*thread_, pair);
  }
  device_->quiesce(thread_->now());
  if (blk_device_) {
    // Drain the storage datapath: reap every in-flight request and pop
    // the results so the driver's slot tables are empty at snapshot.
    for (u16 q = 0; q < blk_driver_.active_queues(); ++q) {
      while (blk_driver_.in_flight(q) > 0) {
        const bool progressed = blk_driver_.polled(q)
                                    ? blk_driver_.wait_polled(*thread_, q)
                                    : blk_driver_.wait_interrupt(*thread_, q);
        VFPGA_ASSERT(progressed);
      }
      while (blk_driver_.pop_completion(q).has_value()) {
      }
    }
    blk_device_->quiesce(thread_->now());
  }
}

void VirtioNetTestbed::save_state(migrate::StateWriter& w) const {
  thread_->save_state(w);
  irq_.save_state(w);
  net_logic_->save_state(w);
  device_->save_state(w);
  driver_.save_state(w);
  stack_->save_state(w);
  w.put_bool(fault_plane_ != nullptr);
  if (fault_plane_) {
    fault_plane_->save_state(w);
  }
  for (u64 word : rng_.state()) {
    w.put_u64(word);
  }
  for (u64 word : mem_rng_.state()) {
    w.put_u64(word);
  }
  w.put_u64(memory_->allocator_cursor());
  if (blk_device_) {
    blk_logic_->save_state(w);
    blk_device_->save_state(w);
    blk_driver_.save_state(w);
  }
}

void VirtioNetTestbed::load_state(migrate::StateReader& r) {
  thread_->load_state(r);
  irq_.load_state(r);
  net_logic_->load_state(r);
  device_->load_state(r);
  driver_.load_state(r);
  stack_->load_state(r);
  const bool has_fault = r.get_bool();
  if (has_fault != (fault_plane_ != nullptr)) {
    r.fail();
    return;
  }
  if (fault_plane_) {
    fault_plane_->load_state(r);
  }
  std::array<u64, 4> s{};
  for (u64& word : s) {
    word = r.get_u64();
  }
  rng_.set_state(s);
  for (u64& word : s) {
    word = r.get_u64();
  }
  mem_rng_.set_state(s);
  memory_->set_allocator_cursor(r.get_u64());
  if (blk_device_) {
    blk_logic_->load_state(r);
    blk_device_->load_state(r);
    blk_driver_.load_state(r);
  }
}

VirtioNetTestbed::RoundTrip VirtioNetTestbed::udp_round_trip(
    ConstByteSpan payload) {
  hostos::HostThread& t = *thread_;
  t.exec(options_.costs.app_iteration);

  const sim::SimTime start = t.now();
  RoundTrip rt;
  if (!socket_->sendto(t, options_.net.ip, options_.fpga_udp_port, payload)) {
    return rt;
  }
  const auto reply = socket_->recvfrom(t);
  rt.total = t.now() - start;
  if (!reply.has_value() || reply->payload.size() != payload.size() ||
      !std::equal(payload.begin(), payload.end(), reply->payload.begin())) {
    return rt;
  }
  // The paper's counters separate "time taken by the hardware to perform
  // the DMA operation" from "the time to generate the response packet"
  // (§IV-B): the notify->irq interval covers both, so the user-logic
  // interval is subtracted out of the hardware share and reported on its
  // own (both are later deducted from the total to estimate software).
  const sim::Duration notify_to_irq =
      device_->counters().interval("notify", "irq_sent");
  rt.response_gen = device_->counters().interval("ul_start", "ul_done");
  rt.hardware = notify_to_irq - rt.response_gen;
  rt.ok = true;
  return rt;
}

// ---- XdmaTestbed -----------------------------------------------------------------

XdmaTestbed::XdmaTestbed(TestbedOptions options)
    : options_(options),
      fault_plane_(options_.fault.any_enabled()
                       ? std::make_unique<fault::FaultPlane>(options_.fault)
                       : nullptr),
      memory_(std::make_unique<mem::HostMemory>()),
      rc_(std::make_unique<pcie::RootComplex>(*memory_,
                                              pcie::LinkModel{options.link})),
      device_(std::make_unique<xdma::XdmaIpFunction>(options.xdma_bram_bytes,
                                                     options.xdma_engine)),
      rng_(options.seed ^ 0x9e3779b97f4a7c15ull),
      mem_rng_(options.seed ^ 0x6d656d7ull),
      noise_(options.noise) {
  rc_->set_irq_sink([this](u32 data, sim::SimTime at) {
    irq_.deliver(data, at);
  });
  rc_->set_dma_read_jitter([this] {
    return sim::from_nanos(sim::sample_lognormal(mem_rng_, 55.0, 0.6));
  });
  rc_->attach(*device_);
  device_->connect(*rc_);
  if (fault_plane_) {
    rc_->set_fault_plane(fault_plane_.get());      // TLP + DMA + notify
    device_->set_fault_plane(fault_plane_.get());  // engine halts
  }

  enumerated_ = pcie::enumerate_bus(*rc_);
  VFPGA_ASSERT(enumerated_.size() == 1);

  thread_ = std::make_unique<hostos::HostThread>(rng_, options_.costs,
                                                 noise_);
  xdma::XdmaHostDriver::BindContext ctx;
  ctx.rc = rc_.get();
  ctx.device = device_.get();
  ctx.enumerated = &enumerated_.front();
  ctx.irq = &irq_;
  const bool bound = driver_.probe(ctx, *thread_);
  VFPGA_ASSERT(bound);

  h2c_file_ = std::make_unique<hostos::XdmaDeviceFile>(
      driver_, hostos::XdmaDeviceFile::Direction::HostToCard);
  c2h_file_ = std::make_unique<hostos::XdmaDeviceFile>(
      driver_, hostos::XdmaDeviceFile::Direction::CardToHost);
}

XdmaTestbed::RoundTrip XdmaTestbed::run_round_trip(u64 bytes,
                                                   bool user_irq) {
  VFPGA_EXPECTS(bytes > 0 && bytes <= options_.xdma_bram_bytes);
  hostos::HostThread& t = *thread_;
  t.exec(options_.costs.app_iteration);

  if (pattern_.size() != bytes) {
    pattern_.resize(bytes);
    for (u64 i = 0; i < bytes; ++i) {
      pattern_[i] = static_cast<u8>(i * 131 + 17);
    }
    readback_.assign(bytes, 0);
  } else {
    // Vary the pattern between iterations so a stale loop-back cannot
    // pass verification.
    ++pattern_[0];
  }

  const sim::SimTime start = t.now();
  RoundTrip rt;
  if (h2c_file_->write(t, pattern_) < 0) {
    return rt;
  }
  if (user_irq) {
    // The "real use case" §IV-C describes but the example design lacks:
    // user logic raises an interrupt when data is ready for C2H and the
    // application sits in poll() before issuing read(). The user IRQ is
    // raised as soon as the H2C data lands (coincident with write()
    // completion here), so the added cost is the kernel's poll()/IRQ/
    // wake machinery itself — the cost the paper's favourable
    // back-to-back setup discounts.
    t.exec(options_.costs.syscall_entry);  // poll() enters the kernel
    t.exec(options_.costs.irq_entry);      // user IRQ serviced
    t.exec(options_.costs.wakeup);         // poller wakes
    t.exec(options_.costs.syscall_exit);   // poll() returns readable
  }
  if (c2h_file_->read(t, readback_) < 0) {
    return rt;
  }
  rt.total = t.now() - start;
  if (readback_ != pattern_) {
    return rt;
  }
  auto& counters = device_->counters();
  rt.hardware = counters.interval("h2c_run", "h2c_complete") +
                counters.interval("c2h_run", "c2h_complete");
  rt.ok = true;
  return rt;
}

XdmaTestbed::RoundTrip XdmaTestbed::write_read_round_trip(u64 bytes) {
  return run_round_trip(bytes, /*user_irq=*/false);
}

XdmaTestbed::RoundTrip XdmaTestbed::write_read_round_trip_user_irq(
    u64 bytes) {
  return run_round_trip(bytes, /*user_irq=*/true);
}

}  // namespace vfpga::core
