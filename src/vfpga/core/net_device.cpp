#include "vfpga/core/net_device.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/net/arp.hpp"
#include "vfpga/net/icmp.hpp"
#include "vfpga/net/ethernet.hpp"
#include "vfpga/net/ipv4.hpp"
#include "vfpga/net/udp.hpp"

namespace vfpga::core {

using virtio::net::NetConfigLayout;
using virtio::net::NetHeader;

NetDeviceLogic::NetDeviceLogic(NetDeviceConfig config)
    : config_(config), pair_echoes_(config.max_queue_pairs, 0) {
  // 64 pairs keeps both apertures inside the controller's BAR layout:
  // notify window 4*(2*64+1) bytes and MSI-X table 130 entries.
  VFPGA_EXPECTS(config_.max_queue_pairs >= 1 && config_.max_queue_pairs <= 64);
  reset_steering_table();
}

virtio::FeatureSet NetDeviceLogic::device_features() const {
  virtio::FeatureSet f;
  f.set(virtio::feature::net::kMac);
  f.set(virtio::feature::net::kStatus);
  f.set(virtio::feature::net::kMtu);
  if (config_.offer_csum) {
    f.set(virtio::feature::net::kCsum);
  }
  if (config_.offer_guest_csum) {
    f.set(virtio::feature::net::kGuestCsum);
  }
  if (config_.offer_mrg_rxbuf) {
    f.set(virtio::feature::net::kMrgRxbuf);
  }
  if (config_.max_queue_pairs > 1) {
    f.set(virtio::feature::net::kMq);
    f.set(virtio::feature::net::kCtrlVq);
  }
  return f;
}

void NetDeviceLogic::on_driver_ready(virtio::FeatureSet negotiated) {
  // Every negotiated device-class bit must be one we actually offered
  // (transport bits 24-41 belong to the controller). A bit arriving here
  // that the logic never advertised means some layer invented a feature
  // whose behaviour nothing implements — fail loudly at DRIVER_OK
  // instead of silently dropping its semantics on the wire.
  constexpr u64 kTransportBits = ((1ull << 42) - 1) & ~((1ull << 24) - 1);
  VFPGA_EXPECTS(
      virtio::FeatureSet{negotiated.bits() & ~kTransportBits}.subset_of(
          device_features()));
  negotiated_ = negotiated;
  // §5.1.5: the device comes up with one active pair regardless of what
  // it supports; more are enabled only by a later
  // VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET on the control queue.
  active_pairs_ = 1;
  reset_steering_table();
}

void NetDeviceLogic::reset_steering_table() {
  for (u16 i = 0; i < net::kSteeringTableSize; ++i) {
    steering_table_[i] = static_cast<u8>(i);
  }
}

u16 NetDeviceLogic::steer_flow(u32 hash) {
  // Fetch the indirection-table entry for this hash; the fault hook
  // corrupts the *fetched copy* (a transient read upset, matching the
  // kDescCorrupt model) so a disarmed plane leaves the table pristine.
  u8 entry = steering_table_[hash % net::kSteeringTableSize];
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kSteeringCorrupt)) {
    fault_->corrupt(ByteSpan{&entry, 1});
  }
  return static_cast<u16>(entry % active_pairs_);
}

UserLogic::Response NetDeviceLogic::ctrl_response(u16 queue, u8 ack,
                                                  u64 cycles) {
  Response response;
  response.payload.assign(1, ack);
  response.target_queue = queue;  // same-chain writable ack byte
  response.processing_cycles = cycles;
  return response;
}

std::optional<UserLogic::Response> NetDeviceLogic::process_ctrl(
    u16 queue, ConstByteSpan payload, u32 writable_capacity) {
  ++ctrl_commands_;
  if (writable_capacity < 1) {
    ++dropped_;  // nowhere to put the ack: ill-formed chain
    return std::nullopt;
  }
  const u64 cycles = config_.fixed_cycles;
  if (payload.size() < 4 || payload[0] != virtio::net::kCtrlClassMq ||
      payload[1] != virtio::net::kCtrlMqVqPairsSet) {
    ++ctrl_rejected_;
    return ctrl_response(queue, virtio::net::kCtrlErr, cycles);
  }
  const u16 pairs = load_le16(payload, 2);
  if (pairs < virtio::net::kMqPairsMin || pairs > config_.max_queue_pairs) {
    ++ctrl_rejected_;
    return ctrl_response(queue, virtio::net::kCtrlErr, cycles);
  }
  active_pairs_ = pairs;
  reset_steering_table();
  return ctrl_response(queue, virtio::net::kCtrlOk, cycles);
}

u8 NetDeviceLogic::device_config_read(u32 offset) const {
  switch (offset) {
    case NetConfigLayout::kMacOffset + 0:
    case NetConfigLayout::kMacOffset + 1:
    case NetConfigLayout::kMacOffset + 2:
    case NetConfigLayout::kMacOffset + 3:
    case NetConfigLayout::kMacOffset + 4:
    case NetConfigLayout::kMacOffset + 5:
      return config_.mac.octets[offset - NetConfigLayout::kMacOffset];
    case NetConfigLayout::kStatusOffset:
      return config_.link_up ? static_cast<u8>(virtio::net::kNetStatusLinkUp)
                             : u8{0};
    case NetConfigLayout::kStatusOffset + 1:
      return 0;
    case NetConfigLayout::kMaxPairsOffset:
      return static_cast<u8>(config_.max_queue_pairs & 0xff);
    case NetConfigLayout::kMaxPairsOffset + 1:
      return static_cast<u8>(config_.max_queue_pairs >> 8);
    case NetConfigLayout::kMtuOffset:
      return static_cast<u8>(config_.mtu & 0xff);
    case NetConfigLayout::kMtuOffset + 1:
      return static_cast<u8>(config_.mtu >> 8);
    default:
      return 0;
  }
}

u64 NetDeviceLogic::processing_cycles(u64 frame_bytes,
                                      bool checksummed) const {
  const u64 beats = (frame_bytes + 7) / 8;
  u64 cycles = config_.fixed_cycles + beats * config_.cycles_per_beat;
  if (checksummed) {
    cycles += beats;  // second pass through the checksum pipeline
  }
  return cycles;
}

std::optional<UserLogic::Response> NetDeviceLogic::process(
    u16 queue, ConstByteSpan payload, u32 writable_capacity) {
  if (config_.max_queue_pairs > 1 && queue == ctrl_queue()) {
    return process_ctrl(queue, payload, writable_capacity);
  }
  VFPGA_EXPECTS(virtio::net::is_tx_queue(queue) &&
                virtio::net::queue_pair_of(queue) < config_.max_queue_pairs);
  const u16 rx_of_pair =
      virtio::net::rx_queue_index(virtio::net::queue_pair_of(queue));
  if (payload.size() < NetHeader::kSize) {
    ++dropped_;
    return std::nullopt;
  }
  const NetHeader vhdr = NetHeader::decode(payload);
  Bytes frame(payload.begin() + NetHeader::kSize, payload.end());

  const auto parsed_eth = net::parse_ethernet_frame(frame);
  if (!parsed_eth.has_value()) {
    ++dropped_;
    return std::nullopt;
  }

  // ---- ARP: answer requests for our address ----------------------------------
  if (parsed_eth->header.type == net::EtherType::Arp) {
    const auto arp = net::parse_arp_message(ConstByteSpan{frame}.subspan(
        parsed_eth->payload_offset, parsed_eth->payload_length));
    if (!arp.has_value() || arp->op != net::ArpOp::Request ||
        arp->target_ip != config_.ip) {
      ++dropped_;
      return std::nullopt;
    }
    net::ArpMessage reply;
    reply.op = net::ArpOp::Reply;
    reply.sender_mac = config_.mac;
    reply.sender_ip = config_.ip;
    reply.target_mac = arp->sender_mac;
    reply.target_ip = arp->sender_ip;
    const Bytes reply_frame = net::build_ethernet_frame(
        net::EthernetHeader{arp->sender_mac, config_.mac, net::EtherType::Arp},
        net::build_arp_message(reply));

    Response response;
    response.payload.resize(NetHeader::kSize + reply_frame.size());
    NetHeader out_hdr;
    out_hdr.num_buffers = 1;
    out_hdr.encode(response.payload);
    std::copy(reply_frame.begin(), reply_frame.end(),
              response.payload.begin() + NetHeader::kSize);
    response.target_queue = rx_of_pair;
    response.processing_cycles = processing_cycles(reply_frame.size(), false);
    ++arp_replies_;
    return response;
  }

  // ---- IPv4 ---------------------------------------------------------------------
  auto ip_span = ConstByteSpan{frame}.subspan(parsed_eth->payload_offset,
                                              parsed_eth->payload_length);
  const auto parsed_ip = net::parse_ipv4_packet(ip_span);
  if (!parsed_ip.has_value() || !parsed_ip->checksum_ok) {
    ++dropped_;
    return std::nullopt;
  }

  // ---- ICMP echo (ping) -----------------------------------------------------------
  if (parsed_ip->header.protocol == net::IpProtocol::Icmp) {
    const auto icmp = net::parse_icmp_echo(ip_span.subspan(
        parsed_ip->payload_offset, parsed_ip->payload_length));
    if (!icmp.has_value() || !icmp->checksum_ok ||
        icmp->header.type != net::IcmpType::EchoRequest ||
        parsed_ip->header.dst != config_.ip) {
      ++dropped_;
      return std::nullopt;
    }
    net::IcmpEcho reply_hdr;
    reply_hdr.type = net::IcmpType::EchoReply;
    reply_hdr.identifier = icmp->header.identifier;
    reply_hdr.sequence = icmp->header.sequence;
    const auto icmp_payload = ip_span.subspan(
        parsed_ip->payload_offset + icmp->payload_offset,
        icmp->payload_length);
    const Bytes reply_icmp = net::build_icmp_echo(reply_hdr, icmp_payload);
    net::Ipv4Header reply_ip;
    reply_ip.src = config_.ip;
    reply_ip.dst = parsed_ip->header.src;
    reply_ip.protocol = net::IpProtocol::Icmp;
    reply_ip.identification = parsed_ip->header.identification;
    const Bytes reply_packet = net::build_ipv4_packet(reply_ip, reply_icmp);
    const Bytes reply_frame = net::build_ethernet_frame(
        net::EthernetHeader{parsed_eth->header.src, config_.mac,
                            net::EtherType::Ipv4},
        reply_packet);

    Response response;
    response.payload.resize(NetHeader::kSize + reply_frame.size());
    NetHeader out_hdr;
    out_hdr.num_buffers = 1;
    out_hdr.encode(response.payload);
    std::copy(reply_frame.begin(), reply_frame.end(),
              response.payload.begin() + NetHeader::kSize);
    response.target_queue = rx_of_pair;
    response.processing_cycles =
        processing_cycles(reply_frame.size(), true);  // csum recompute
    ++icmp_echoes_;
    return response;
  }

  // ---- UDP echo ---------------------------------------------------------------------
  if (parsed_ip->header.protocol != net::IpProtocol::Udp) {
    ++dropped_;
    return std::nullopt;
  }
  auto udp_span =
      ip_span.subspan(parsed_ip->payload_offset, parsed_ip->payload_length);

  // If the driver offloaded the checksum (VIRTIO_NET_F_CSUM), the UDP
  // checksum field currently holds only the pseudo-header sum; the
  // device must complete it — the paper's example of work the FPGA
  // performs "on behalf of the host".
  bool device_checksummed = false;
  Bytes udp_copy(udp_span.begin(), udp_span.end());
  if ((vhdr.flags & NetHeader::kNeedsCsum) != 0) {
    net::finalize_udp_checksum(ByteSpan{udp_copy}, parsed_ip->header.src,
                               parsed_ip->header.dst);
    device_checksummed = true;
    ++checksums_offloaded_;
  } else {
    const auto parsed_udp = net::parse_udp_datagram(
        udp_copy, parsed_ip->header.src, parsed_ip->header.dst);
    if (!parsed_udp.has_value() || !parsed_udp->checksum_ok) {
      ++dropped_;
      return std::nullopt;
    }
  }
  const auto parsed_udp = net::parse_udp_datagram(
      udp_copy, parsed_ip->header.src, parsed_ip->header.dst);
  if (!parsed_udp.has_value()) {
    // Reachable in the offload branch: a frame whose UDP length fields
    // were mangled in flight parses as IPv4 (header checksum intact)
    // but not as UDP. Garbage in -> drop, never crash the device.
    ++dropped_;
    return std::nullopt;
  }

  // Build the echo: same payload, endpoints swapped.
  const auto echo_payload = ConstByteSpan{udp_copy}.subspan(
      parsed_udp->payload_offset, parsed_udp->payload_length);
  const Bytes echo_udp = net::build_udp_datagram(
      net::UdpHeader{parsed_udp->header.dst_port, parsed_udp->header.src_port},
      parsed_ip->header.dst, parsed_ip->header.src, echo_payload);
  net::Ipv4Header echo_ip;
  echo_ip.src = parsed_ip->header.dst;
  echo_ip.dst = parsed_ip->header.src;
  echo_ip.protocol = net::IpProtocol::Udp;
  echo_ip.identification = parsed_ip->header.identification;
  const Bytes echo_packet = net::build_ipv4_packet(echo_ip, echo_udp);
  const Bytes echo_frame = net::build_ethernet_frame(
      net::EthernetHeader{parsed_eth->header.src, config_.mac,
                          net::EtherType::Ipv4},
      echo_packet);

  Response response;
  response.payload.resize(NetHeader::kSize + echo_frame.size());
  NetHeader out_hdr;
  out_hdr.num_buffers = 1;
  if (negotiated_.has(virtio::feature::net::kGuestCsum)) {
    out_hdr.flags = NetHeader::kDataValid;  // we computed a full checksum
  }
  out_hdr.encode(response.payload);
  std::copy(echo_frame.begin(), echo_frame.end(),
            response.payload.begin() + NetHeader::kSize);
  // RSS stage: the echo steers by the symmetric flow hash, which lands
  // on the originating pair because the host picked its TX queue with
  // the same hash (steering faults can divert it — the host detects the
  // mismatch and repairs via the control queue).
  const u16 echo_pair = steer_flow(net::rss_flow_hash(
      parsed_ip->header.src, parsed_udp->header.src_port,
      parsed_ip->header.dst, parsed_udp->header.dst_port));
  response.target_queue = virtio::net::rx_queue_index(echo_pair);
  response.processing_cycles =
      processing_cycles(echo_frame.size(), device_checksummed);
  ++udp_echoes_;
  ++pair_echoes_[echo_pair];
  return response;
}

}  // namespace vfpga::core
