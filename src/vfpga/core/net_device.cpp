#include "vfpga/core/net_device.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/net/arp.hpp"
#include "vfpga/net/gso.hpp"
#include "vfpga/net/icmp.hpp"
#include "vfpga/net/ethernet.hpp"
#include "vfpga/net/ipv4.hpp"
#include "vfpga/net/udp.hpp"

namespace vfpga::core {

using virtio::net::NetConfigLayout;
using virtio::net::NetHeader;

NetDeviceLogic::NetDeviceLogic(NetDeviceConfig config)
    : config_(config), pair_echoes_(config.max_queue_pairs, 0) {
  // 64 pairs keeps both apertures inside the controller's BAR layout:
  // notify window 4*(2*64+1) bytes and MSI-X table 130 entries.
  VFPGA_EXPECTS(config_.max_queue_pairs >= 1 && config_.max_queue_pairs <= 64);
  reset_steering_table();
}

virtio::FeatureSet NetDeviceLogic::device_features() const {
  virtio::FeatureSet f;
  f.set(virtio::feature::net::kMac);
  f.set(virtio::feature::net::kStatus);
  f.set(virtio::feature::net::kMtu);
  if (config_.offer_csum) {
    f.set(virtio::feature::net::kCsum);
  }
  if (config_.offer_guest_csum) {
    f.set(virtio::feature::net::kGuestCsum);
  }
  if (config_.offer_mrg_rxbuf) {
    f.set(virtio::feature::net::kMrgRxbuf);
  }
  if (config_.offer_gso && config_.offer_csum) {
    // The segmenter writes per-segment checksums, so the HOST offloads
    // ride the CSUM offer (§5.1.3.1: HOST_TSO/UFO require CSUM).
    f.set(virtio::feature::net::kHostTso4);
    f.set(virtio::feature::net::kHostUfo);
  }
  if (config_.offer_gso && config_.offer_guest_csum) {
    f.set(virtio::feature::net::kGuestTso4);
    f.set(virtio::feature::net::kGuestUfo);
  }
  if (config_.max_queue_pairs > 1) {
    f.set(virtio::feature::net::kMq);
    f.set(virtio::feature::net::kCtrlVq);
  }
  if (config_.offer_notf_coal) {
    f.set(virtio::feature::net::kNotfCoal);
    f.set(virtio::feature::net::kCtrlVq);
  }
  return f;
}

void NetDeviceLogic::on_driver_ready(virtio::FeatureSet negotiated) {
  // Every negotiated device-class bit must be one we actually offered
  // (transport bits 24-41 belong to the controller). A bit arriving here
  // that the logic never advertised means some layer invented a feature
  // whose behaviour nothing implements — fail loudly at DRIVER_OK
  // instead of silently dropping its semantics on the wire.
  constexpr u64 kTransportBits = ((1ull << 42) - 1) & ~((1ull << 24) - 1);
  VFPGA_EXPECTS(
      virtio::FeatureSet{negotiated.bits() & ~kTransportBits}.subset_of(
          device_features()));
  // Spec feature dependencies (§5.1.3.1): a driver accepting a
  // segmentation offload without the matching checksum offload — or
  // notification coalescing without a control queue — negotiated a
  // combination whose RX/ctrl semantics are undefined. Fail loudly.
  namespace nf = virtio::feature::net;
  VFPGA_EXPECTS(!negotiated.has(nf::kGuestTso4) ||
                negotiated.has(nf::kGuestCsum));
  VFPGA_EXPECTS(!negotiated.has(nf::kGuestUfo) ||
                negotiated.has(nf::kGuestCsum));
  VFPGA_EXPECTS(!negotiated.has(nf::kHostTso4) || negotiated.has(nf::kCsum));
  VFPGA_EXPECTS(!negotiated.has(nf::kHostUfo) || negotiated.has(nf::kCsum));
  VFPGA_EXPECTS(!negotiated.has(nf::kNotfCoal) ||
                negotiated.has(nf::kCtrlVq));
  negotiated_ = negotiated;
  rx_coal_ = {};  // moderation defaults to immediate interrupts
  // §5.1.5: the device comes up with one active pair regardless of what
  // it supports; more are enabled only by a later
  // VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET on the control queue.
  active_pairs_ = 1;
  reset_steering_table();
}

void NetDeviceLogic::reset_steering_table() {
  for (u16 i = 0; i < net::kSteeringTableSize; ++i) {
    steering_table_[i] = static_cast<u8>(i);
  }
}

u16 NetDeviceLogic::steer_flow(u32 hash) {
  // Fetch the indirection-table entry for this hash; the fault hook
  // corrupts the *fetched copy* (a transient read upset, matching the
  // kDescCorrupt model) so a disarmed plane leaves the table pristine.
  u8 entry = steering_table_[hash % net::kSteeringTableSize];
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kSteeringCorrupt)) {
    fault_->corrupt(ByteSpan{&entry, 1});
  }
  return static_cast<u16>(entry % active_pairs_);
}

UserLogic::Response NetDeviceLogic::ctrl_response(u16 queue, u8 ack,
                                                  u64 cycles) {
  Response response;
  response.payload.assign(1, ack);
  response.target_queue = queue;  // same-chain writable ack byte
  response.processing_cycles = cycles;
  return response;
}

std::optional<UserLogic::Response> NetDeviceLogic::process_ctrl(
    u16 queue, ConstByteSpan payload, u32 writable_capacity) {
  ++ctrl_commands_;
  if (writable_capacity < 1) {
    ++dropped_;  // nowhere to put the ack: ill-formed chain
    return std::nullopt;
  }
  const u64 cycles = config_.fixed_cycles;
  if (payload.size() < 2) {
    ++ctrl_rejected_;
    return ctrl_response(queue, virtio::net::kCtrlErr, cycles);
  }
  if (payload[0] == virtio::net::kCtrlClassMq &&
      payload[1] == virtio::net::kCtrlMqVqPairsSet && payload.size() >= 4) {
    const u16 pairs = load_le16(payload, 2);
    if (pairs < virtio::net::kMqPairsMin ||
        pairs > config_.max_queue_pairs ||
        !negotiated_.has(virtio::feature::net::kMq)) {
      ++ctrl_rejected_;
      return ctrl_response(queue, virtio::net::kCtrlErr, cycles);
    }
    active_pairs_ = pairs;
    reset_steering_table();
    return ctrl_response(queue, virtio::net::kCtrlOk, cycles);
  }
  if (payload[0] == virtio::net::kCtrlClassNotfCoal &&
      payload[1] == virtio::net::kCtrlNotfCoalRxSet &&
      payload.size() >= 2 + virtio::net::CoalRxParams::kSize) {
    if (!negotiated_.has(virtio::feature::net::kNotfCoal)) {
      ++ctrl_rejected_;
      return ctrl_response(queue, virtio::net::kCtrlErr, cycles);
    }
    rx_coal_.max_usecs = load_le32(payload, 2);
    rx_coal_.max_packets = load_le32(payload, 6);
    return ctrl_response(queue, virtio::net::kCtrlOk, cycles);
  }
  ++ctrl_rejected_;
  return ctrl_response(queue, virtio::net::kCtrlErr, cycles);
}

UserLogic::InterruptModeration NetDeviceLogic::interrupt_moderation(
    u16 queue) const {
  // Moderation applies to RX deliveries only; TX/ctrl completions keep
  // immediate interrupts, as does everything until the driver actually
  // negotiates NOTF_COAL and programs a window.
  if (!negotiated_.has(virtio::feature::net::kNotfCoal) ||
      virtio::net::is_tx_queue(queue) ||
      (has_ctrl_queue() && queue == ctrl_queue())) {
    return {};
  }
  InterruptModeration m;
  m.max_frames = std::max<u32>(1, rx_coal_.max_packets);
  m.holdoff_ns = static_cast<u64>(rx_coal_.max_usecs) * 1000;
  return m;
}

u8 NetDeviceLogic::device_config_read(u32 offset) const {
  switch (offset) {
    case NetConfigLayout::kMacOffset + 0:
    case NetConfigLayout::kMacOffset + 1:
    case NetConfigLayout::kMacOffset + 2:
    case NetConfigLayout::kMacOffset + 3:
    case NetConfigLayout::kMacOffset + 4:
    case NetConfigLayout::kMacOffset + 5:
      return config_.mac.octets[offset - NetConfigLayout::kMacOffset];
    case NetConfigLayout::kStatusOffset:
      return config_.link_up ? static_cast<u8>(virtio::net::kNetStatusLinkUp)
                             : u8{0};
    case NetConfigLayout::kStatusOffset + 1:
      return 0;
    case NetConfigLayout::kMaxPairsOffset:
      return static_cast<u8>(config_.max_queue_pairs & 0xff);
    case NetConfigLayout::kMaxPairsOffset + 1:
      return static_cast<u8>(config_.max_queue_pairs >> 8);
    case NetConfigLayout::kMtuOffset:
      return static_cast<u8>(config_.mtu & 0xff);
    case NetConfigLayout::kMtuOffset + 1:
      return static_cast<u8>(config_.mtu >> 8);
    default:
      return 0;
  }
}

u64 NetDeviceLogic::processing_cycles(u64 frame_bytes,
                                      bool checksummed) const {
  const u64 beats = (frame_bytes + 7) / 8;
  u64 cycles = config_.fixed_cycles + beats * config_.cycles_per_beat;
  if (checksummed) {
    cycles += beats;  // second pass through the checksum pipeline
  }
  return cycles;
}

std::optional<UserLogic::Response> NetDeviceLogic::process(
    u16 queue, ConstByteSpan payload, u32 writable_capacity) {
  if (has_ctrl_queue() && queue == ctrl_queue()) {
    return process_ctrl(queue, payload, writable_capacity);
  }
  VFPGA_EXPECTS(virtio::net::is_tx_queue(queue) &&
                virtio::net::queue_pair_of(queue) < config_.max_queue_pairs);
  const u16 rx_of_pair =
      virtio::net::rx_queue_index(virtio::net::queue_pair_of(queue));
  if (payload.size() < NetHeader::kSize) {
    ++dropped_;
    return std::nullopt;
  }
  const NetHeader vhdr = NetHeader::decode(payload);
  Bytes frame(payload.begin() + NetHeader::kSize, payload.end());

  if (vhdr.gso_type != NetHeader::kGsoNone) {
    return process_gso_udp(vhdr, frame);
  }

  const auto parsed_eth = net::parse_ethernet_frame(frame);
  if (!parsed_eth.has_value()) {
    ++dropped_;
    return std::nullopt;
  }

  // ---- ARP: answer requests for our address ----------------------------------
  if (parsed_eth->header.type == net::EtherType::Arp) {
    const auto arp = net::parse_arp_message(ConstByteSpan{frame}.subspan(
        parsed_eth->payload_offset, parsed_eth->payload_length));
    if (!arp.has_value() || arp->op != net::ArpOp::Request ||
        arp->target_ip != config_.ip) {
      ++dropped_;
      return std::nullopt;
    }
    net::ArpMessage reply;
    reply.op = net::ArpOp::Reply;
    reply.sender_mac = config_.mac;
    reply.sender_ip = config_.ip;
    reply.target_mac = arp->sender_mac;
    reply.target_ip = arp->sender_ip;
    const Bytes reply_frame = net::build_ethernet_frame(
        net::EthernetHeader{arp->sender_mac, config_.mac, net::EtherType::Arp},
        net::build_arp_message(reply));

    Response response;
    response.payload.resize(NetHeader::kSize + reply_frame.size());
    NetHeader out_hdr;
    out_hdr.num_buffers = 1;
    out_hdr.encode(response.payload);
    std::copy(reply_frame.begin(), reply_frame.end(),
              response.payload.begin() + NetHeader::kSize);
    response.target_queue = rx_of_pair;
    response.processing_cycles = processing_cycles(reply_frame.size(), false);
    ++arp_replies_;
    return response;
  }

  // ---- IPv4 ---------------------------------------------------------------------
  auto ip_span = ConstByteSpan{frame}.subspan(parsed_eth->payload_offset,
                                              parsed_eth->payload_length);
  const auto parsed_ip = net::parse_ipv4_packet(ip_span);
  if (!parsed_ip.has_value() || !parsed_ip->checksum_ok) {
    ++dropped_;
    return std::nullopt;
  }

  // ---- ICMP echo (ping) -----------------------------------------------------------
  if (parsed_ip->header.protocol == net::IpProtocol::Icmp) {
    const auto icmp = net::parse_icmp_echo(ip_span.subspan(
        parsed_ip->payload_offset, parsed_ip->payload_length));
    if (!icmp.has_value() || !icmp->checksum_ok ||
        icmp->header.type != net::IcmpType::EchoRequest ||
        parsed_ip->header.dst != config_.ip) {
      ++dropped_;
      return std::nullopt;
    }
    net::IcmpEcho reply_hdr;
    reply_hdr.type = net::IcmpType::EchoReply;
    reply_hdr.identifier = icmp->header.identifier;
    reply_hdr.sequence = icmp->header.sequence;
    const auto icmp_payload = ip_span.subspan(
        parsed_ip->payload_offset + icmp->payload_offset,
        icmp->payload_length);
    const Bytes reply_icmp = net::build_icmp_echo(reply_hdr, icmp_payload);
    net::Ipv4Header reply_ip;
    reply_ip.src = config_.ip;
    reply_ip.dst = parsed_ip->header.src;
    reply_ip.protocol = net::IpProtocol::Icmp;
    reply_ip.identification = parsed_ip->header.identification;
    const Bytes reply_packet = net::build_ipv4_packet(reply_ip, reply_icmp);
    const Bytes reply_frame = net::build_ethernet_frame(
        net::EthernetHeader{parsed_eth->header.src, config_.mac,
                            net::EtherType::Ipv4},
        reply_packet);

    Response response;
    response.payload.resize(NetHeader::kSize + reply_frame.size());
    NetHeader out_hdr;
    out_hdr.num_buffers = 1;
    out_hdr.encode(response.payload);
    std::copy(reply_frame.begin(), reply_frame.end(),
              response.payload.begin() + NetHeader::kSize);
    response.target_queue = rx_of_pair;
    response.processing_cycles =
        processing_cycles(reply_frame.size(), true);  // csum recompute
    ++icmp_echoes_;
    return response;
  }

  // ---- UDP echo ---------------------------------------------------------------------
  if (parsed_ip->header.protocol != net::IpProtocol::Udp) {
    ++dropped_;
    return std::nullopt;
  }
  auto udp_span =
      ip_span.subspan(parsed_ip->payload_offset, parsed_ip->payload_length);

  // If the driver offloaded the checksum (VIRTIO_NET_F_CSUM), the UDP
  // checksum field currently holds only the pseudo-header sum; the
  // device must complete it — the paper's example of work the FPGA
  // performs "on behalf of the host".
  bool device_checksummed = false;
  Bytes udp_copy(udp_span.begin(), udp_span.end());
  if ((vhdr.flags & NetHeader::kNeedsCsum) != 0) {
    net::finalize_udp_checksum(ByteSpan{udp_copy}, parsed_ip->header.src,
                               parsed_ip->header.dst);
    device_checksummed = true;
    ++checksums_offloaded_;
  } else {
    const auto parsed_udp = net::parse_udp_datagram(
        udp_copy, parsed_ip->header.src, parsed_ip->header.dst);
    if (!parsed_udp.has_value() || !parsed_udp->checksum_ok) {
      ++dropped_;
      return std::nullopt;
    }
  }
  const auto parsed_udp = net::parse_udp_datagram(
      udp_copy, parsed_ip->header.src, parsed_ip->header.dst);
  if (!parsed_udp.has_value()) {
    // Reachable in the offload branch: a frame whose UDP length fields
    // were mangled in flight parses as IPv4 (header checksum intact)
    // but not as UDP. Garbage in -> drop, never crash the device.
    ++dropped_;
    return std::nullopt;
  }

  // Build the echo: same payload, endpoints swapped.
  const auto echo_payload = ConstByteSpan{udp_copy}.subspan(
      parsed_udp->payload_offset, parsed_udp->payload_length);
  const Bytes echo_udp = net::build_udp_datagram(
      net::UdpHeader{parsed_udp->header.dst_port, parsed_udp->header.src_port},
      parsed_ip->header.dst, parsed_ip->header.src, echo_payload);
  net::Ipv4Header echo_ip;
  echo_ip.src = parsed_ip->header.dst;
  echo_ip.dst = parsed_ip->header.src;
  echo_ip.protocol = net::IpProtocol::Udp;
  echo_ip.identification = parsed_ip->header.identification;
  const Bytes echo_packet = net::build_ipv4_packet(echo_ip, echo_udp);
  const Bytes echo_frame = net::build_ethernet_frame(
      net::EthernetHeader{parsed_eth->header.src, config_.mac,
                          net::EtherType::Ipv4},
      echo_packet);

  Response response;
  response.payload.resize(NetHeader::kSize + echo_frame.size());
  NetHeader out_hdr;
  out_hdr.num_buffers = 1;
  if (negotiated_.has(virtio::feature::net::kGuestCsum)) {
    out_hdr.flags = NetHeader::kDataValid;  // we computed a full checksum
  }
  out_hdr.encode(response.payload);
  std::copy(echo_frame.begin(), echo_frame.end(),
            response.payload.begin() + NetHeader::kSize);
  // RSS stage: the echo steers by the symmetric flow hash, which lands
  // on the originating pair because the host picked its TX queue with
  // the same hash (steering faults can divert it — the host detects the
  // mismatch and repairs via the control queue).
  const u16 echo_pair = steer_flow(net::rss_flow_hash(
      parsed_ip->header.src, parsed_udp->header.src_port,
      parsed_ip->header.dst, parsed_udp->header.dst_port));
  response.target_queue = virtio::net::rx_queue_index(echo_pair);
  response.processing_cycles =
      processing_cycles(echo_frame.size(), device_checksummed);
  ++udp_echoes_;
  ++pair_echoes_[echo_pair];
  return response;
}

std::optional<UserLogic::Response> NetDeviceLogic::process_gso_udp(
    const NetHeader& vhdr, const Bytes& frame) {
  // Fixed frame layout (no IP options): eth 0..13, IP 14..33, UDP 34..41.
  constexpr u64 kIpSrcOff = 26;
  constexpr u64 kIpDstOff = 30;
  constexpr u64 kUdpSrcPortOff = 34;
  constexpr u64 kUdpDstPortOff = 36;

  // Only the UDP (USO) segmenter exists; a TSO_TCPV4 frame — or a
  // gso_type arriving without the negotiated HOST offload / the
  // NEEDS_CSUM flag §5.1.6.2 mandates — is garbage in, drop.
  if (vhdr.gso_type != NetHeader::kGsoUdp ||
      !negotiated_.has(virtio::feature::net::kHostUfo) ||
      (vhdr.flags & NetHeader::kNeedsCsum) == 0 ||
      frame.size() < kUdpDstPortOff + 2) {
    ++dropped_;
    return std::nullopt;
  }
  std::vector<Bytes> segments =
      net::gso_segment_udp(frame, vhdr.gso_size, /*fill_checksums=*/true);
  if (segments.empty()) {
    ++dropped_;
    return std::nullopt;
  }
  ++gso_superframes_;
  gso_segments_out_ += segments.size();
  checksums_offloaded_ += segments.size();

  // Steer by the symmetric flow hash of the original 4-tuple, exactly
  // like the per-packet path.
  const u16 echo_pair = steer_flow(net::rss_flow_hash(
      net::Ipv4Addr{load_be32(frame, kIpSrcOff)},
      load_be16(frame, kUdpSrcPortOff),
      net::Ipv4Addr{load_be32(frame, kIpDstOff)},
      load_be16(frame, kUdpDstPortOff)));
  const u16 rx_queue = virtio::net::rx_queue_index(echo_pair);

  // Echo transform: swap MACs, IP addresses and UDP ports in place.
  // Ones'-complement sums are term-order-invariant, so the IP header
  // checksum and the per-segment UDP checksums survive the swaps — the
  // echo rewrite costs no checksum passes.
  for (Bytes& seg : segments) {
    for (u64 i = 0; i < 6; ++i) {
      std::swap(seg[i], seg[6 + i]);
    }
    for (u64 i = 0; i < 4; ++i) {
      std::swap(seg[kIpSrcOff + i], seg[kIpDstOff + i]);
    }
    for (u64 i = 0; i < 2; ++i) {
      std::swap(seg[kUdpSrcPortOff + i], seg[kUdpDstPortOff + i]);
    }
  }

  // Single shared pass over the payload (the checksum unit is fused
  // into the segmenter) plus a per-segment header-rewrite stage.
  const u64 beats = (frame.size() + 7) / 8;
  u64 cycles = config_.fixed_cycles + beats * config_.cycles_per_beat +
               segments.size() * config_.gso_segment_cycles;

  udp_echoes_ += segments.size();
  pair_echoes_[echo_pair] += segments.size();

  if (negotiated_.has(virtio::feature::net::kGuestUfo)) {
    // GRO: merge the echoed train back into one superframe; the driver
    // sees a single large frame with a device-vouched checksum.
    auto gro = net::gro_coalesce_udp(segments);
    if (gro.has_value()) {
      cycles += segments.size() * config_.gro_merge_cycles;
      ++gro_coalesced_;
      Response response;
      response.payload.resize(NetHeader::kSize + gro->frame.size());
      NetHeader out_hdr;
      out_hdr.flags = NetHeader::kDataValid;  // each segment was verified
      out_hdr.gso_type = NetHeader::kGsoUdp;
      out_hdr.gso_size = gro->gso_size;
      out_hdr.num_buffers = 1;
      out_hdr.encode(response.payload);
      std::copy(gro->frame.begin(), gro->frame.end(),
                response.payload.begin() + NetHeader::kSize);
      response.target_queue = rx_queue;
      response.processing_cycles = cycles;
      return response;
    }
  }

  // No GUEST offload (or an incoherent train): deliver the wire frames
  // individually — first one in the Response, the rest trailing.
  Response response;
  response.target_queue = rx_queue;
  response.processing_cycles = cycles;
  const bool data_valid = negotiated_.has(virtio::feature::net::kGuestCsum);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    Bytes out(NetHeader::kSize + segments[i].size(), 0);
    NetHeader out_hdr;
    out_hdr.flags = data_valid ? NetHeader::kDataValid : u8{0};
    out_hdr.num_buffers = 1;
    out_hdr.encode(out);
    std::copy(segments[i].begin(), segments[i].end(),
              out.begin() + NetHeader::kSize);
    if (i == 0) {
      response.payload = std::move(out);
    } else {
      response.trailing_frames.push_back(std::move(out));
    }
  }
  return response;
}

void NetDeviceLogic::save_state(migrate::StateWriter& w) const {
  w.put_u64(negotiated_.bits());
  w.put_u16(active_pairs_);
  for (u8 entry : steering_table_) {
    w.put_u8(entry);
  }
  w.put_u16(static_cast<u16>(pair_echoes_.size()));
  for (u64 e : pair_echoes_) {
    w.put_u64(e);
  }
  w.put_u64(udp_echoes_);
  w.put_u64(icmp_echoes_);
  w.put_u64(arp_replies_);
  w.put_u64(checksums_offloaded_);
  w.put_u64(dropped_);
  w.put_u64(ctrl_commands_);
  w.put_u64(ctrl_rejected_);
  w.put_u64(gso_superframes_);
  w.put_u64(gso_segments_out_);
  w.put_u64(gro_coalesced_);
  w.put_u32(rx_coal_.max_usecs);
  w.put_u32(rx_coal_.max_packets);
}

void NetDeviceLogic::load_state(migrate::StateReader& r) {
  negotiated_ = virtio::FeatureSet{r.get_u64()};
  active_pairs_ = r.get_u16();
  for (u8& entry : steering_table_) {
    entry = r.get_u8();
  }
  if (r.get_u16() != pair_echoes_.size()) {
    r.fail();
    return;
  }
  for (u64& e : pair_echoes_) {
    e = r.get_u64();
  }
  udp_echoes_ = r.get_u64();
  icmp_echoes_ = r.get_u64();
  arp_replies_ = r.get_u64();
  checksums_offloaded_ = r.get_u64();
  dropped_ = r.get_u64();
  ctrl_commands_ = r.get_u64();
  ctrl_rejected_ = r.get_u64();
  gso_superframes_ = r.get_u64();
  gso_segments_out_ = r.get_u64();
  gro_coalesced_ = r.get_u64();
  rx_coal_.max_usecs = r.get_u32();
  rx_coal_.max_packets = r.get_u32();
}

}  // namespace vfpga::core
