#include "vfpga/core/console_device.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::core {

using virtio::console::ConsoleConfigLayout;

u8 ConsoleDeviceLogic::device_config_read(u32 offset) const {
  switch (offset) {
    case ConsoleConfigLayout::kColsOffset:
      return static_cast<u8>(config_.cols & 0xff);
    case ConsoleConfigLayout::kColsOffset + 1:
      return static_cast<u8>(config_.cols >> 8);
    case ConsoleConfigLayout::kRowsOffset:
      return static_cast<u8>(config_.rows & 0xff);
    case ConsoleConfigLayout::kRowsOffset + 1:
      return static_cast<u8>(config_.rows >> 8);
    case ConsoleConfigLayout::kMaxPortsOffset:
      return 1;
    default:
      return 0;
  }
}

std::optional<UserLogic::Response> ConsoleDeviceLogic::process(
    u16 queue, ConstByteSpan payload, u32 /*writable_capacity*/) {
  VFPGA_EXPECTS(queue == virtio::console::kTxQueue);
  Response response;
  response.payload.assign(payload.begin(), payload.end());
  response.target_queue = virtio::console::kRxQueue;
  response.processing_cycles =
      config_.fixed_cycles + ((payload.size() + 7) / 8) *
                                 config_.cycles_per_beat;
  bytes_echoed_ += payload.size();
  return response;
}

}  // namespace vfpga::core
