// User-logic interface to the VirtIO controller.
//
// Fig. 2 of the paper: the controller sits between the XDMA IP and the
// user logic and exposes RX/TX queue interfaces "that follow the same
// semantics as a virtqueue". A UserLogic implementation is one device
// personality: it supplies the device type / device-specific feature
// bits / device-specific configuration structure, and processes buffers
// the controller delivers from the host. The controller itself stays
// personality-agnostic — the paper's point that supporting a new VirtIO
// device type only requires the device-specific structure (§III-A).
#pragma once

#include <optional>

#include "vfpga/common/types.hpp"
#include "vfpga/sim/time.hpp"
#include "vfpga/virtio/features.hpp"
#include "vfpga/virtio/ids.hpp"

namespace vfpga::fault {
class FaultPlane;
}  // namespace vfpga::fault

namespace vfpga::core {

class UserLogic {
 public:
  UserLogic() = default;
  UserLogic(const UserLogic&) = delete;
  UserLogic& operator=(const UserLogic&) = delete;
  virtual ~UserLogic() = default;

  [[nodiscard]] virtual virtio::DeviceType device_type() const = 0;

  /// Device-specific feature bits to offer (the controller adds the
  /// generic ring/transport bits itself).
  [[nodiscard]] virtual virtio::FeatureSet device_features() const = 0;

  /// Number of virtqueues this personality requires (§IV-B: "only the
  /// minimum number of queues and the device-specific configuration
  /// structure change across device types").
  [[nodiscard]] virtual u16 queue_count() const = 0;

  /// Called once negotiation finished so the personality can adapt
  /// (e.g. enable checksum offload datapaths).
  virtual void on_driver_ready(virtio::FeatureSet /*negotiated*/) {}

  /// The controller forwards its fault plane so personalities with
  /// internal state (e.g. an RSS steering table) can expose their own
  /// injection points. Null or never-called == no faults.
  virtual void attach_fault_plane(fault::FaultPlane* /*plane*/) {}

  // ---- device-specific configuration structure -------------------------------
  [[nodiscard]] virtual u32 device_config_size() const = 0;
  [[nodiscard]] virtual u8 device_config_read(u32 offset) const = 0;
  virtual void device_config_write(u32 /*offset*/, u8 /*value*/) {}

  // ---- datapath ----------------------------------------------------------------

  struct Response {
    /// Bytes to return to the host (including any device-type header).
    Bytes payload;
    /// Per-request status byte (virtio-blk style): when set, the
    /// controller writes it into the LAST byte of the chain's LAST
    /// device-writable descriptor after scattering `payload` — the spec
    /// position of the virtio_blk status descriptor. `payload` must then
    /// leave that byte free (payload.size() <= writable_capacity - 1).
    /// Personalities that never set it (net, console) keep the legacy
    /// scatter bit-for-bit.
    std::optional<u8> chain_status;
    /// Queue to deliver on. Equal to the source queue => write into the
    /// device-writable tail of the *same* chain (block-device style);
    /// different queue => consume a buffer from that queue's avail ring
    /// (network RX style).
    u16 target_queue = 0;
    /// User-logic processing time in fabric cycles — the paper's
    /// "time to generate the response packet", measured by its own
    /// perf counter and deducted from the latency breakdown (§IV-B).
    u64 processing_cycles = 0;
    /// Additional frames to deliver on `target_queue` after `payload`
    /// (each a full response including the device-type header). A GSO
    /// device answering one offloaded superframe with a wire-MTU
    /// segment train emits the train here; the controller delivers the
    /// frames back-to-back with no extra user-logic dispatch.
    std::vector<Bytes> trailing_frames;
  };

  /// Per-queue interrupt-moderation window (VIRTIO_NET_CTRL_NOTF_COAL
  /// model): the controller withholds a completion interrupt until
  /// `max_frames` deliveries accumulate or `holdoff_ns` elapses from the
  /// first withheld one. The default {1, 0} fires every interrupt
  /// immediately — bit-identical to a device without the feature.
  struct InterruptModeration {
    u32 max_frames = 1;
    u64 holdoff_ns = 0;
  };
  [[nodiscard]] virtual InterruptModeration interrupt_moderation(
      u16 /*queue*/) const {
    return {};
  }

  /// Process one buffer the host made available on `queue`. `payload`
  /// is the gathered device-readable bytes of the chain;
  /// `writable_capacity` is the total size of the chain's
  /// device-writable buffers (a same-chain response must fit in it —
  /// block-style requests derive their read length from it).
  virtual std::optional<Response> process(u16 queue, ConstByteSpan payload,
                                          u32 writable_capacity) = 0;

  /// Descriptor-level shape of the chain being processed, for
  /// personalities that enforce per-request segment limits (virtio-blk
  /// seg_max) — the byte-level process() signature cannot see segment
  /// boundaries.
  struct ChainMeta {
    u32 readable_descriptors = 0;
    u32 writable_descriptors = 0;
    /// Largest single descriptor in each direction — what a size_max
    /// enforcing device checks per §5.2.5.2 (0 when no descriptors in
    /// that direction).
    u32 largest_readable_bytes = 0;
    u32 largest_writable_bytes = 0;
    bool via_indirect = false;
  };

  /// Chain-aware entry point the controller actually calls. The default
  /// forwards to process(), so byte-oriented personalities (net,
  /// console) are untouched.
  virtual std::optional<Response> process_chain(u16 queue,
                                                ConstByteSpan payload,
                                                u32 writable_capacity,
                                                const ChainMeta& /*meta*/) {
    return process(queue, payload, writable_capacity);
  }
};

}  // namespace vfpga::core
