// Complete assembled testbeds for the paper's two experimental setups.
//
// VirtioNetTestbed: host memory + PCIe root complex + the VirtIO
// controller endpoint (net personality) + enumeration + the virtio-net
// driver + kernel netstack + a UDP test socket — §III-B.1.
//
// XdmaTestbed: the same substrate with the XDMA example design + the
// vendor character-device driver + h2c/c2h device files — §III-B.2.
// Both share identical link and noise models, the paper's control.
#pragma once

#include <memory>

#include "vfpga/core/blk_device.hpp"
#include "vfpga/core/net_device.hpp"
#include "vfpga/core/virtio_controller.hpp"
#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/hostos/char_device.hpp"
#include "vfpga/hostos/netstack.hpp"
#include "vfpga/hostos/socket_api.hpp"
#include "vfpga/hostos/virtio_blk_driver.hpp"
#include "vfpga/pcie/enumeration.hpp"
#include "vfpga/xdma/host_driver.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::core {

struct TestbedOptions {
  u64 seed = 0x5eed;
  pcie::LinkConfig link{};
  sim::NoiseConfig noise{};
  hostos::CostModelConfig costs = hostos::CostModelConfig::fedora_defaults();
  ControllerConfig controller{};
  NetDeviceConfig net{};
  xdma::EngineConfig xdma_engine{};
  u64 xdma_bram_bytes = 128 * 1024;
  /// Negotiate VIRTIO_F_RING_PACKED end-to-end (device offer + driver
  /// acceptance). Default off: the paper's controller uses split rings.
  bool use_packed_rings = false;
  /// Driver datapath: TX descriptor strategy (bounce copy vs zero-copy
  /// scatter-gather vs indirect), mergeable-RX opt-in and pool sizing.
  /// frame_capacity is auto-derived from net.mtu when left at its
  /// default; the all-default struct reproduces the legacy driver bit
  /// for bit.
  hostos::VirtioNetDriver::DatapathOptions datapath{};
  u16 udp_port = 4791;
  u16 fpga_udp_port = 9000;
  /// RX/TX queue pairs the driver asks for (VIRTIO_NET_F_MQ). Clamped
  /// by the device's max_virtqueue_pairs (options.net.max_queue_pairs);
  /// 1 keeps the paper's single-queue configuration.
  u16 requested_queue_pairs = 1;
  /// Fault-injection configuration. A FaultPlane is instantiated and
  /// wired through every layer only when at least one rate is non-zero;
  /// the all-zero default leaves the datapath untouched (bit-identical
  /// to a build without fault hooks).
  fault::FaultConfig fault{};
  /// Attach a second PCIe function: the virtio-blk personality plus its
  /// front-end driver, sharing the host thread, link and interrupt
  /// controller. Default off — the net-only bed stays bit-identical to
  /// a build without the storage subsystem.
  bool attach_blk = false;
  BlkDeviceConfig blk{};
  hostos::VirtioBlkDriver::Options blk_driver{};
};

class VirtioNetTestbed {
 public:
  explicit VirtioNetTestbed(TestbedOptions options = {});

  [[nodiscard]] hostos::HostThread& thread() { return *thread_; }
  [[nodiscard]] VirtioDeviceFunction& device() { return *device_; }
  [[nodiscard]] NetDeviceLogic& net_logic() { return *net_logic_; }
  [[nodiscard]] hostos::VirtioNetDriver& driver() { return driver_; }
  [[nodiscard]] hostos::KernelNetstack& stack() { return *stack_; }
  [[nodiscard]] hostos::UdpSocket& socket() { return *socket_; }
  [[nodiscard]] hostos::InterruptController& irq() { return irq_; }
  [[nodiscard]] pcie::RootComplex& root_complex() { return *rc_; }
  [[nodiscard]] mem::HostMemory& memory() { return *memory_; }
  [[nodiscard]] net::Ipv4Addr fpga_ip() const { return options_.net.ip; }
  [[nodiscard]] const TestbedOptions& options() const { return options_; }
  /// Block-device accessors — valid only when options.attach_blk.
  [[nodiscard]] bool blk_attached() const { return blk_device_ != nullptr; }
  [[nodiscard]] BlkDeviceLogic& blk_logic() { return *blk_logic_; }
  [[nodiscard]] VirtioDeviceFunction& blk_device() { return *blk_device_; }
  [[nodiscard]] hostos::VirtioBlkDriver& blk_driver() { return blk_driver_; }
  /// Nullptr unless options.fault enabled at least one class.
  [[nodiscard]] fault::FaultPlane* fault_plane() { return fault_plane_.get(); }

  /// One measured UDP echo round trip (the paper's VirtIO test step).
  struct RoundTrip {
    sim::Duration total{};         ///< app-level clock_gettime interval
    sim::Duration hardware{};      ///< FPGA counters: notify -> irq_sent
    sim::Duration response_gen{};  ///< user-logic processing (deducted)
    bool ok = false;               ///< echo arrived and payload matched
  };
  RoundTrip udp_round_trip(ConstByteSpan payload);

  /// A fresh HostThread modelling another application/kernel context on
  /// the same host (shared cost model, noise and RNG stream), starting
  /// at the main thread's current simulated time. The multi-flow load
  /// generator gives each concurrent flow its own.
  [[nodiscard]] std::unique_ptr<hostos::HostThread> spawn_thread();

  /// Park the testbed for a crash-consistent snapshot: flush coalesced
  /// TX kicks on every pair and fire any moderated-interrupt holdoff
  /// windows — the only time-deferred device state. Everything else
  /// (unharvested used entries, queued MSI deliveries, mid-span
  /// mergeable-RX reassembly) serializes as-is.
  void quiesce();

  /// Serialize/restore every layer's dynamic state except host memory
  /// pages, which the snapshot container streams separately so live
  /// migration can copy them iteratively while traffic flows. The
  /// restore target must be constructed from identical TestbedOptions
  /// (the deterministic bring-up yields identical DMA addresses);
  /// load_state then overwrites all dynamic state without touching
  /// memory.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  TestbedOptions options_;
  std::unique_ptr<fault::FaultPlane> fault_plane_;
  std::unique_ptr<mem::HostMemory> memory_;
  std::unique_ptr<pcie::RootComplex> rc_;
  std::unique_ptr<NetDeviceLogic> net_logic_;
  std::unique_ptr<VirtioDeviceFunction> device_;
  hostos::InterruptController irq_;
  std::vector<pcie::EnumeratedDevice> enumerated_;
  sim::Xoshiro256 rng_;
  sim::Xoshiro256 mem_rng_;
  sim::NoiseModel noise_;
  std::unique_ptr<hostos::HostThread> thread_;
  hostos::VirtioNetDriver driver_;
  std::unique_ptr<hostos::KernelNetstack> stack_;
  std::unique_ptr<hostos::UdpSocket> socket_;
  std::unique_ptr<BlkDeviceLogic> blk_logic_;
  std::unique_ptr<VirtioDeviceFunction> blk_device_;
  hostos::VirtioBlkDriver blk_driver_;
};

class XdmaTestbed {
 public:
  explicit XdmaTestbed(TestbedOptions options = {});

  [[nodiscard]] hostos::HostThread& thread() { return *thread_; }
  [[nodiscard]] xdma::XdmaIpFunction& device() { return *device_; }
  [[nodiscard]] xdma::XdmaHostDriver& driver() { return driver_; }
  [[nodiscard]] hostos::XdmaDeviceFile& h2c_file() { return *h2c_file_; }
  [[nodiscard]] hostos::XdmaDeviceFile& c2h_file() { return *c2h_file_; }
  [[nodiscard]] hostos::InterruptController& irq() { return irq_; }
  [[nodiscard]] pcie::RootComplex& root_complex() { return *rc_; }
  [[nodiscard]] const TestbedOptions& options() const { return options_; }
  /// Nullptr unless options.fault enabled at least one class.
  [[nodiscard]] fault::FaultPlane* fault_plane() { return fault_plane_.get(); }

  /// One measured back-to-back write()/read() round trip (§IV-C: the
  /// favourable setup without a device-side C2H interrupt trigger).
  struct RoundTrip {
    sim::Duration total{};
    sim::Duration hardware{};  ///< engine counters, H2C + C2H intervals
    bool ok = false;           ///< data loop-back verified
  };
  RoundTrip write_read_round_trip(u64 bytes);

  /// The "real use case" variant §IV-C describes but the example design
  /// lacks: user logic raises an interrupt when data is ready for C2H,
  /// and the application sits in poll() waiting for it before issuing
  /// read(). Adds a third interrupt + wake-up to the round trip —
  /// the cost the paper notes its favourable setup discounts.
  RoundTrip write_read_round_trip_user_irq(u64 bytes);

 private:
  RoundTrip run_round_trip(u64 bytes, bool user_irq);

  TestbedOptions options_;
  std::unique_ptr<fault::FaultPlane> fault_plane_;
  std::unique_ptr<mem::HostMemory> memory_;
  std::unique_ptr<pcie::RootComplex> rc_;
  std::unique_ptr<xdma::XdmaIpFunction> device_;
  hostos::InterruptController irq_;
  std::vector<pcie::EnumeratedDevice> enumerated_;
  sim::Xoshiro256 rng_;
  sim::Xoshiro256 mem_rng_;
  sim::NoiseModel noise_;
  std::unique_ptr<hostos::HostThread> thread_;
  xdma::XdmaHostDriver driver_;
  std::unique_ptr<hostos::XdmaDeviceFile> h2c_file_;
  std::unique_ptr<hostos::XdmaDeviceFile> c2h_file_;
  Bytes pattern_;
  Bytes readback_;
};

/// Bytes a UDP payload of size `udp_payload` occupies on the PCIe link
/// in the VirtIO design: virtio_net_hdr + Ethernet/IP/UDP framing (with
/// Ethernet minimum-size padding). The XDMA test moves this many raw
/// bytes so both tests put the same load on the link (§IV-B).
[[nodiscard]] u64 virtio_wire_bytes(u64 udp_payload);

}  // namespace vfpga::core
