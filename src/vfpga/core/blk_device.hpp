// virtio-blk personality: a block device backed by FPGA memory.
//
// The third device type ("Added support for more VirtIO device types",
// paper contribution 1). Requests arrive on a single queue as
// [header (RO)][data (RO for writes / WO for reads)][status (WO)];
// responses are written back into the same chain — exercising the
// controller's same-chain response path.
#pragma once

#include "vfpga/core/user_logic.hpp"
#include "vfpga/virtio/blk_defs.hpp"

namespace vfpga::core {

struct BlkDeviceConfig {
  u64 capacity_sectors = 2048;  ///< 1 MiB at 512 B/sector
  u64 fixed_cycles = 40;
  u64 cycles_per_beat = 1;
};

class BlkDeviceLogic final : public UserLogic {
 public:
  explicit BlkDeviceLogic(BlkDeviceConfig config = {});

  [[nodiscard]] virtio::DeviceType device_type() const override {
    return virtio::DeviceType::Block;
  }
  [[nodiscard]] virtio::FeatureSet device_features() const override {
    virtio::FeatureSet f;
    f.set(virtio::feature::blk::kBlkSize);
    f.set(virtio::feature::blk::kFlush);
    return f;
  }
  [[nodiscard]] u16 queue_count() const override { return 1; }
  [[nodiscard]] u32 device_config_size() const override {
    return virtio::blk::BlkConfigLayout::kSize;
  }
  [[nodiscard]] u8 device_config_read(u32 offset) const override;
  std::optional<Response> process(u16 queue, ConstByteSpan payload,
                                  u32 writable_capacity) override;

  [[nodiscard]] u64 reads() const { return reads_; }
  [[nodiscard]] u64 writes() const { return writes_; }
  [[nodiscard]] u64 errors() const { return errors_; }

  /// Direct backing-store access for test verification.
  [[nodiscard]] ConstByteSpan storage() const { return storage_; }

 private:
  BlkDeviceConfig config_;
  Bytes storage_;
  u64 reads_ = 0;
  u64 writes_ = 0;
  u64 errors_ = 0;
};

}  // namespace vfpga::core
