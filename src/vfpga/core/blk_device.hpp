// virtio-blk personality: a block device backed by FPGA memory.
//
// The third device type ("Added support for more VirtIO device types",
// paper contribution 1), grown from a single-queue stub into a full
// storage datapath: IN/OUT/FLUSH/GET_ID/DISCARD request parsing with a
// per-request status byte, seg_max/size_max limits enforced device-side
// (the driver enforces them host-side), multi-queue under
// VIRTIO_BLK_F_MQ, and a backing-store model with seek/transfer/flush
// cost segments.
//
// Durability follows the spec's write-barrier contract (§5.2.6.1 with
// VIRTIO_BLK_F_FLUSH): a completed OUT lands in the volatile write-back
// layer; only a completed FLUSH makes everything completed before it
// durable. simulate_power_loss() reverts the volatile layer to the
// durable copy so tests can assert the barrier semantics directly.
#pragma once

#include "vfpga/core/user_logic.hpp"
#include "vfpga/virtio/blk_defs.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::core {

struct BlkDeviceConfig {
  u64 capacity_sectors = 2048;  ///< 1 MiB at 512 B/sector
  u64 fixed_cycles = 40;
  u64 cycles_per_beat = 1;

  // ---- limits advertised through virtio_blk_config -----------------------------
  u32 blk_size = 512;    ///< optimal logical block size (F_BLK_SIZE)
  u32 size_max = 65536;  ///< max bytes of any single segment (F_SIZE_MAX)
  u32 seg_max = 16;      ///< max data segments per request (F_SEG_MAX)
  u16 num_queues = 1;    ///< >1 offers VIRTIO_BLK_F_MQ
  bool offer_discard = true;
  u32 max_discard_sectors = 4096;
  u32 max_discard_seg = 8;
  u32 discard_alignment = 1;  ///< in sectors

  // ---- backing-store cost model (fabric cycles) --------------------------------
  /// Fixed cost of repositioning the backing store plus a distance
  /// component: the model keeps a per-device head position and charges
  /// proportionally to the seek span, so sequential workloads beat
  /// random ones like they do on any real medium with locality.
  u64 seek_base_cycles = 24;
  u64 seek_cycles_per_mib = 64;
  /// FLUSH drains the dirty set into the durable layer: base cost plus
  /// a per-dirty-KiB component.
  u64 flush_base_cycles = 180;
  u64 flush_cycles_per_dirty_kib = 12;
  /// Stall charged when the fault plane injects a backing-store timeout
  /// (the request still completes — with VIRTIO_BLK_S_IOERR — after the
  /// device-internal deadline expires).
  u64 backing_timeout_cycles = 2'000'000;
};

class BlkDeviceLogic final : public UserLogic {
 public:
  explicit BlkDeviceLogic(BlkDeviceConfig config = {});

  [[nodiscard]] virtio::DeviceType device_type() const override {
    return virtio::DeviceType::Block;
  }
  [[nodiscard]] virtio::FeatureSet device_features() const override;
  [[nodiscard]] u16 queue_count() const override {
    return config_.num_queues;
  }
  void on_driver_ready(virtio::FeatureSet negotiated) override;
  void attach_fault_plane(fault::FaultPlane* plane) override {
    fault_ = plane;
  }
  [[nodiscard]] u32 device_config_size() const override {
    return virtio::blk::BlkConfigLayout::kSize;
  }
  [[nodiscard]] u8 device_config_read(u32 offset) const override;
  std::optional<Response> process(u16 queue, ConstByteSpan payload,
                                  u32 writable_capacity) override;
  std::optional<Response> process_chain(u16 queue, ConstByteSpan payload,
                                        u32 writable_capacity,
                                        const ChainMeta& meta) override;

  // ---- stats -------------------------------------------------------------------
  [[nodiscard]] u64 reads() const { return reads_; }
  [[nodiscard]] u64 writes() const { return writes_; }
  [[nodiscard]] u64 flushes() const { return flushes_; }
  [[nodiscard]] u64 discards() const { return discards_; }
  [[nodiscard]] u64 get_ids() const { return get_ids_; }
  [[nodiscard]] u64 errors() const { return errors_; }
  [[nodiscard]] u64 header_faults() const { return header_faults_; }
  [[nodiscard]] u64 timeout_faults() const { return timeout_faults_; }
  [[nodiscard]] u64 dirty_sectors() const { return dirty_count_; }
  [[nodiscard]] u64 dirty_high_water() const { return dirty_high_water_; }

  /// Direct backing-store access for test verification.
  [[nodiscard]] ConstByteSpan storage() const { return storage_; }
  /// The durable layer: what survives power loss (== storage() only
  /// after a FLUSH with nothing written since).
  [[nodiscard]] ConstByteSpan durable_storage() const { return durable_; }
  /// Revert the volatile layer to the durable copy — the storage the
  /// host would observe after a crash. Tests use it to assert FLUSH
  /// barrier ordering.
  void simulate_power_loss();

  [[nodiscard]] const BlkDeviceConfig& config() const { return config_; }

  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  [[nodiscard]] u64 seek_cycles(u64 sector);
  [[nodiscard]] u64 transfer_cycles(u64 bytes) const;
  void mark_dirty(u64 byte_offset, u64 bytes);
  Response status_only(u8 status, u64 cycles, u16 queue);

  BlkDeviceConfig config_;
  fault::FaultPlane* fault_ = nullptr;
  virtio::FeatureSet negotiated_;
  Bytes storage_;
  Bytes durable_;
  std::vector<u8> dirty_;  ///< per-sector write-back flag
  u64 dirty_count_ = 0;
  u64 dirty_high_water_ = 0;
  u64 head_sector_ = 0;  ///< backing-store position for the seek model
  u64 reads_ = 0;
  u64 writes_ = 0;
  u64 flushes_ = 0;
  u64 discards_ = 0;
  u64 get_ids_ = 0;
  u64 errors_ = 0;
  u64 header_faults_ = 0;
  u64 timeout_faults_ = 0;
};

}  // namespace vfpga::core
