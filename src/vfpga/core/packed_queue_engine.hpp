// Packed-ring queue engine (IQueueEngine over virtio::PackedVirtqueueDevice).
//
// The transaction economics the packed format buys the FPGA: discovering
// the next buffer is ONE descriptor read (the split FSM needs avail-idx
// + avail-entry + descriptor), and completion is ONE posted descriptor
// write (vs. used-element + used-idx). Interrupt suppression reads the
// driver event structure (flags-only mode), cached for suppressed
// completions exactly like the split engine caches used_event.
#pragma once

#include "vfpga/core/queue_engine.hpp"
#include "vfpga/virtio/packed_device.hpp"

namespace vfpga::core {

class PackedQueueEngine final : public IQueueEngine {
 public:
  PackedQueueEngine(virtio::PackedVirtqueueDevice vq, QueueTiming timing,
                    ControllerPolicy policy,
                    fault::FaultPlane* fault = nullptr)
      : vq_(std::move(vq)), timing_(timing), policy_(policy), fault_(fault) {}

  [[nodiscard]] virtio::PackedVirtqueueDevice& vq() { return vq_; }

  virtio::Timed<u16> poll_available(sim::SimTime start) override;
  [[nodiscard]] bool poll_is_exact() const override { return false; }
  virtio::Timed<FetchedChain> consume_chain(sim::SimTime start) override;
  Completion complete_chain(const FetchedChain& chain, u32 written,
                            sim::SimTime start,
                            bool refresh_suppression) override;
  sim::SimTime post_drain_update(u16 drained_through,
                                 sim::SimTime start) override;

  void save_state(migrate::StateWriter& w) const override;
  void load_state(migrate::StateReader& r) override;

 private:
  virtio::PackedVirtqueueDevice vq_;
  QueueTiming timing_;
  ControllerPolicy policy_;
  fault::FaultPlane* fault_ = nullptr;
  bool head_cached_ = false;  ///< a peek has armed the next consume
  std::optional<u16> cached_driver_event_;
};

}  // namespace vfpga::core
