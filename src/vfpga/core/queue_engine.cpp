#include "vfpga/core/queue_engine.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/virtio/ids.hpp"

namespace vfpga::core {

bool chain_within_bounds(const FetchedChain& chain, u16 queue_size) {
  if (chain.descriptors.empty() || chain.descriptors.size() > queue_size) {
    return false;
  }
  for (const virtio::Descriptor& d : chain.descriptors) {
    if (d.addr == 0) {
      return false;
    }
    // Device-readable length drives the DMA fetch and payload staging,
    // so an insane value is a corrupt table. Device-writable length is
    // only a capacity: drivers may legitimately post huge buffers.
    const bool readable = (d.flags & virtio::descflags::kWrite) == 0;
    if (readable && (d.len == 0 || d.len > kMaxSaneDescriptorLen)) {
      return false;
    }
  }
  return true;
}

virtio::Timed<u16> QueueEngine::poll_available(sim::SimTime start) {
  const auto idx = vq_.fetch_avail_idx(start);
  const u16 outstanding =
      static_cast<u16>(idx.value - vq_.next_avail_position());
  return virtio::Timed<u16>{outstanding, idx.done};
}

virtio::Timed<FetchedChain> QueueEngine::consume_chain(sim::SimTime start) {
  sim::SimTime t = start + timing_.clock.cycles(timing_.arbitration_cycles);

  const auto entry = vq_.fetch_avail_entry(vq_.next_avail_position(), t);
  t = entry.done;
  vq_.advance_avail_cursor();

  FetchedChain chain;
  chain.handle = entry.value;
  chain.ring_slots = 1;  // split completion needs only the head index

  if (policy_.batched_chain_fetch) {
    // Speculatively fetch two descriptors in one burst: driver free
    // lists allocate chains contiguously in the common case, so the
    // second slot is usually the chain's continuation.
    const u16 head = entry.value;
    const u16 burst = static_cast<u16>(head + 1 < vq_.size() ? 2 : 1);
    auto fetched = vq_.fetch_descriptors(head, burst, t);
    t = fetched.done;
    const virtio::Descriptor& first = fetched.value.front();
    if ((first.flags & virtio::descflags::kIndirect) != 0) {
      // Speculation miss: the head is an indirect descriptor, so the
      // burst bought nothing — walk it through the indirect path (which
      // re-reads the head; the wasted burst is the realistic penalty).
      auto indirect = vq_.fetch_chain(head, t);
      chain.descriptors = std::move(indirect.value.descriptors);
      chain.via_indirect = indirect.value.via_indirect;
      t = indirect.done +
          timing_.clock.cycles(timing_.per_descriptor_cycles *
                               chain.descriptors.size());
      if (fault_ != nullptr && chain.via_indirect &&
          fault_->should_inject(fault::FaultClass::kIndirectCorrupt) &&
          !chain.descriptors.empty()) {
        chain.descriptors.front().addr = 0;
      }
      if (fault_ != nullptr &&
          fault_->should_inject(fault::FaultClass::kDescCorrupt) &&
          !chain.descriptors.empty()) {
        chain.descriptors.front().addr = 0;
      }
      chain.error =
          indirect.value.error || !chain_within_bounds(chain, vq_.size());
      return virtio::Timed<FetchedChain>{std::move(chain), t};
    }
    chain.descriptors.push_back(first);
    u16 next = first.next;
    bool more = (first.flags & virtio::descflags::kNext) != 0;
    if (more && burst == 2 && next == head + 1) {
      const virtio::Descriptor& second = fetched.value[1];
      chain.descriptors.push_back(second);
      next = second.next;
      more = (second.flags & virtio::descflags::kNext) != 0;
    }
    while (more) {  // speculation miss: walk the remainder one-by-one
      auto d = vq_.fetch_descriptor(next, t);
      t = d.done;
      chain.descriptors.push_back(d.value);
      next = d.value.next;
      more = (d.value.flags & virtio::descflags::kNext) != 0;
    }
  }
  bool fetch_error = false;
  if (!policy_.batched_chain_fetch) {
    auto fetched = vq_.fetch_chain(entry.value, t);
    t = fetched.done;
    chain.descriptors = std::move(fetched.value.descriptors);
    chain.via_indirect = fetched.value.via_indirect;
    fetch_error = fetched.value.error;
  }
  t += timing_.clock.cycles(timing_.per_descriptor_cycles *
                            chain.descriptors.size());
  if (fault_ != nullptr && chain.via_indirect &&
      fault_->should_inject(fault::FaultClass::kIndirectCorrupt) &&
      !chain.descriptors.empty()) {
    // The one-shot table read returned garbage: poison the head entry
    // so the bounds check below rejects the whole chain.
    chain.descriptors.front().addr = 0;
  }
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kDescCorrupt) &&
      !chain.descriptors.empty()) {
    // The table read returned garbage: force a length the bounds check
    // below rejects, as a corrupted descriptor would.
    chain.descriptors.front().addr = 0;
  }
  chain.error = fetch_error || !chain_within_bounds(chain, vq_.size());
  return virtio::Timed<FetchedChain>{std::move(chain), t};
}

IQueueEngine::Completion QueueEngine::complete_chain(
    const FetchedChain& chain, u32 written, sim::SimTime start,
    bool refresh_suppression) {
  sim::SimTime t = start + timing_.clock.cycles(timing_.used_update_cycles);
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kUsedWriteFail)) {
    // The used-ring update is lost before reaching host memory: the
    // cursor does not advance and the driver never sees this completion
    // (the chain's buffers stay in flight until the driver resets).
    return Completion{t, false};
  }
  const u16 new_used_idx = static_cast<u16>(vq_.used_idx() + 1);
  const auto push = vq_.push_used(chain.handle, written, t);
  t = push.issuer_free;
  // The delivered edge of the posted used-idx write: when a host CPU
  // spinning on the used ring can first observe this completion.
  record_completion(push.delivered);

  bool interrupt = true;
  t += timing_.clock.cycles(timing_.irq_decision_cycles);
  if (policy_.use_event_idx) {
    u16 event_value;
    const bool fresh = refresh_suppression || !cached_used_event_.has_value();
    if (fresh) {
      const auto event = vq_.read_used_event(t);
      t = event.done;
      cached_used_event_ = event.value;
      event_value = event.value;
    } else {
      event_value = *cached_used_event_;
    }
    // §2.7.10: interrupt iff used_event was passed by this update. A
    // fresh decision extends the crossing window back over completions
    // pushed against the stale snapshot (a mergeable RX span can cross
    // used_event at any of its entries, not just the final one).
    u16 old_used = static_cast<u16>(new_used_idx - 1);
    if (fresh) {
      old_used = static_cast<u16>(old_used - stale_completions_);
      stale_completions_ = 0;
    } else {
      ++stale_completions_;
    }
    interrupt = static_cast<u16>(new_used_idx - event_value - 1) <
                static_cast<u16>(new_used_idx - old_used);
  }
  return Completion{t, interrupt};
}

sim::SimTime QueueEngine::post_drain_update(u16 drained_through,
                                            sim::SimTime start) {
  if (!policy_.use_event_idx) {
    return start;
  }
  // EVENT_IDX: request a notification for the publish after the ones we
  // are about to drain (§2.7.10 — the device writes avail_event).
  return vq_.write_avail_event(drained_through, start).issuer_free;
}

void IQueueEngine::save_base_state(migrate::StateWriter& w) const {
  w.put_u64(completions_);
  for (sim::SimTime t : visible_at_) {
    w.put_time(t);
  }
}

void IQueueEngine::load_base_state(migrate::StateReader& r) {
  completions_ = r.get_u64();
  for (sim::SimTime& t : visible_at_) {
    t = r.get_time();
  }
}

void QueueEngine::save_state(migrate::StateWriter& w) const {
  save_base_state(w);
  vq_.save_state(w);
  w.put_bool(cached_used_event_.has_value());
  w.put_u16(cached_used_event_.value_or(0));
  w.put_u16(stale_completions_);
}

void QueueEngine::load_state(migrate::StateReader& r) {
  load_base_state(r);
  vq_.load_state(r);
  const bool has_cached = r.get_bool();
  const u16 cached = r.get_u16();
  cached_used_event_ =
      has_cached ? std::optional<u16>{cached} : std::nullopt;
  stale_completions_ = r.get_u16();
}

}  // namespace vfpga::core
