#include "vfpga/core/bypass.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"

namespace vfpga::core {
namespace {

/// Disjoint BRAM staging regions for the two concurrent directions.
constexpr FpgaAddr kToHostRegion = 0;
constexpr FpgaAddr kFromHostRegion = 64 * 1024;

}  // namespace

StreamResult BypassStreamer::stream_to_host(HostAddr dst, ConstByteSpan data,
                                            u32 chunk_bytes) {
  VFPGA_EXPECTS(chunk_bytes > 0);
  StreamResult result;
  result.bytes = data.size();
  const sim::SimTime start = scheduler_->now();
  sim::SimTime t = start;
  u64 offset = 0;
  while (offset < data.size()) {
    const u64 chunk = std::min<u64>(chunk_bytes, data.size() - offset);
    t = device_->bypass_to_host(t, dst + offset,
                                data.subspan(offset, chunk), kToHostRegion);
    offset += chunk;
    ++result.chunks;
  }
  result.elapsed = t - start;
  return result;
}

StreamResult BypassStreamer::stream_from_host(HostAddr src, ByteSpan out,
                                              u32 chunk_bytes) {
  VFPGA_EXPECTS(chunk_bytes > 0);
  StreamResult result;
  result.bytes = out.size();
  const sim::SimTime start = scheduler_->now();
  sim::SimTime t = start;
  u64 offset = 0;
  while (offset < out.size()) {
    const u64 chunk = std::min<u64>(chunk_bytes, out.size() - offset);
    t = device_->bypass_from_host(t, src + offset,
                                  out.subspan(offset, chunk),
                                  kFromHostRegion);
    offset += chunk;
    ++result.chunks;
  }
  result.elapsed = t - start;
  return result;
}

std::pair<StreamResult, StreamResult> BypassStreamer::stream_duplex(
    HostAddr dst, ConstByteSpan tx_data, HostAddr src, ByteSpan rx_out,
    u32 chunk_bytes) {
  VFPGA_EXPECTS(chunk_bytes > 0);
  const sim::SimTime start = scheduler_->now();
  StreamResult to_host;
  to_host.bytes = tx_data.size();
  StreamResult from_host;
  from_host.bytes = rx_out.size();
  sim::SimTime to_host_end = start;
  sim::SimTime from_host_end = start;

  // Each direction is an event chain: the completion of chunk i
  // schedules chunk i+1 at the channel-free time, so the two directions
  // interleave in scheduler order without blocking each other.
  struct Cursor {
    u64 offset = 0;
  };
  auto tx_cursor = std::make_shared<Cursor>();
  auto rx_cursor = std::make_shared<Cursor>();

  std::function<void()> pump_tx = [&, tx_cursor]() {
    if (tx_cursor->offset >= tx_data.size()) {
      return;
    }
    const u64 chunk =
        std::min<u64>(chunk_bytes, tx_data.size() - tx_cursor->offset);
    const sim::SimTime done = device_->bypass_to_host(
        scheduler_->now(), dst + tx_cursor->offset,
        tx_data.subspan(tx_cursor->offset, chunk), kToHostRegion);
    tx_cursor->offset += chunk;
    ++to_host.chunks;
    to_host_end = done;
    scheduler_->schedule_at(done, pump_tx);
  };
  std::function<void()> pump_rx = [&, rx_cursor]() {
    if (rx_cursor->offset >= rx_out.size()) {
      return;
    }
    const u64 chunk =
        std::min<u64>(chunk_bytes, rx_out.size() - rx_cursor->offset);
    const sim::SimTime done = device_->bypass_from_host(
        scheduler_->now(), src + rx_cursor->offset,
        rx_out.subspan(rx_cursor->offset, chunk), kFromHostRegion);
    rx_cursor->offset += chunk;
    ++from_host.chunks;
    from_host_end = done;
    scheduler_->schedule_at(done, pump_rx);
  };

  scheduler_->schedule_at(start, pump_tx);
  scheduler_->schedule_at(start, pump_rx);
  scheduler_->run_until_idle();

  to_host.elapsed = to_host_end - start;
  from_host.elapsed = from_host_end - start;
  return {to_host, from_host};
}

}  // namespace vfpga::core
