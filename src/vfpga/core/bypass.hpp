// Driver-bypass streaming (§III-A).
//
// "We have implemented an additional interface on the VirtIO controller
// that allows the user logic to request data transfers to/from host
// memory bypassing the VirtIO driver" — the SmartNIC offload path where
// application data moves without per-packet driver involvement.
//
// BypassStreamer chunks a large buffer over the bypass port. Concurrent
// streams (e.g. simultaneous host-to-card and card-to-host) are
// sequenced through the discrete-event scheduler so their per-chunk
// transfers interleave on the simulated timeline the way the two DMA
// channels genuinely overlap in hardware.
#pragma once

#include "vfpga/core/virtio_controller.hpp"
#include "vfpga/sim/scheduler.hpp"

namespace vfpga::core {

struct StreamResult {
  sim::Duration elapsed{};
  u64 bytes = 0;
  u32 chunks = 0;

  [[nodiscard]] double gbit_per_s() const {
    const double us = elapsed.micros();
    return us <= 0 ? 0.0
                   : static_cast<double>(bytes) * 8.0 / (us * 1e3);
  }
};

class BypassStreamer {
 public:
  BypassStreamer(VirtioDeviceFunction& device, sim::Scheduler& scheduler)
      : device_(&device), scheduler_(&scheduler) {}

  /// Stream `data` to host memory at `dst` in `chunk_bytes` pieces
  /// (card-to-host direction). Returns when the last chunk is delivered.
  StreamResult stream_to_host(HostAddr dst, ConstByteSpan data,
                              u32 chunk_bytes);

  /// Stream `out.size()` bytes from host memory at `src` (host-to-card).
  StreamResult stream_from_host(HostAddr src, ByteSpan out, u32 chunk_bytes);

  /// Full duplex: both streams progress concurrently, one per DMA
  /// channel, interleaved by the scheduler. Returns {to_host, from_host}.
  std::pair<StreamResult, StreamResult> stream_duplex(HostAddr dst,
                                                      ConstByteSpan tx_data,
                                                      HostAddr src,
                                                      ByteSpan rx_out,
                                                      u32 chunk_bytes);

 private:
  VirtioDeviceFunction* device_;
  sim::Scheduler* scheduler_;
};

}  // namespace vfpga::core
