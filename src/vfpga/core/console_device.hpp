// virtio-console personality — the device type of the prior work [14]
// that this system extends. Echoes every byte the host transmits back on
// the receive queue, demonstrating that swapping personalities changes
// only the device-specific structure and queue semantics (§IV-B).
#pragma once

#include "vfpga/core/user_logic.hpp"
#include "vfpga/virtio/console_defs.hpp"

namespace vfpga::core {

struct ConsoleDeviceConfig {
  u16 cols = 80;
  u16 rows = 25;
  u64 fixed_cycles = 24;
  u64 cycles_per_beat = 1;
};

class ConsoleDeviceLogic final : public UserLogic {
 public:
  explicit ConsoleDeviceLogic(ConsoleDeviceConfig config = {})
      : config_(config) {}

  [[nodiscard]] virtio::DeviceType device_type() const override {
    return virtio::DeviceType::Console;
  }
  [[nodiscard]] virtio::FeatureSet device_features() const override {
    virtio::FeatureSet f;
    f.set(virtio::feature::console::kSize);
    return f;
  }
  [[nodiscard]] u16 queue_count() const override { return 2; }
  [[nodiscard]] u32 device_config_size() const override {
    return virtio::console::ConsoleConfigLayout::kSize;
  }
  [[nodiscard]] u8 device_config_read(u32 offset) const override;
  std::optional<Response> process(u16 queue, ConstByteSpan payload,
                                  u32 writable_capacity) override;

  [[nodiscard]] u64 bytes_echoed() const { return bytes_echoed_; }

 private:
  ConsoleDeviceConfig config_;
  u64 bytes_echoed_ = 0;
};

}  // namespace vfpga::core
