#include "vfpga/core/virtio_controller.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/common/log.hpp"
#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/migrate/state_io.hpp"
#include "vfpga/virtio/net_defs.hpp"

namespace vfpga::core {
namespace {

using virtio::commoncfg::kConfigGeneration;
using virtio::commoncfg::kDeviceFeature;
using virtio::commoncfg::kDeviceFeatureSelect;
using virtio::commoncfg::kDeviceStatus;
using virtio::commoncfg::kDriverFeature;
using virtio::commoncfg::kDriverFeatureSelect;
using virtio::commoncfg::kMsixConfig;
using virtio::commoncfg::kNumQueues;
using virtio::commoncfg::kQueueDesc;
using virtio::commoncfg::kQueueDevice;
using virtio::commoncfg::kQueueDriver;
using virtio::commoncfg::kQueueEnable;
using virtio::commoncfg::kQueueMsixVector;
using virtio::commoncfg::kQueueNotifyOff;
using virtio::commoncfg::kQueueSelect;
using virtio::commoncfg::kQueueSize;

/// PCI class code per device personality.
struct ClassCode {
  u8 base, sub, prog_if;
};

ClassCode class_code_for(virtio::DeviceType type) {
  switch (type) {
    case virtio::DeviceType::Net:
      return {0x02, 0x00, 0x00};  // network controller, ethernet
    case virtio::DeviceType::Block:
      return {0x01, 0x80, 0x00};  // mass storage, other
    case virtio::DeviceType::Console:
      return {0x07, 0x80, 0x00};  // communication, other
    default:
      return {0xff, 0x00, 0x00};
  }
}

}  // namespace

VirtioDeviceFunction::VirtioDeviceFunction(UserLogic& user_logic,
                                           ControllerConfig config)
    : user_logic_(&user_logic),
      config_(config),
      bram_(config.bram_bytes),
      queue_state_(user_logic.queue_count()),
      engines_(user_logic.queue_count()),
      credits_(user_logic.queue_count(), 0),
      total_drained_(user_logic.queue_count(), 0),
      queue_busy_until_(user_logic.queue_count()),
      moderation_(user_logic.queue_count()) {
  const virtio::DeviceType type = user_logic.device_type();
  auto& cfg = this->config();
  cfg.set_ids(virtio::kVirtioPciVendorId, virtio::modern_pci_device_id(type),
              virtio::kVirtioPciVendorId, static_cast<u16>(type));
  cfg.set_revision(virtio::kVirtioPciModernRevision);
  const ClassCode cc = class_code_for(type);
  cfg.set_class_code(cc.base, cc.sub, cc.prog_if);
  cfg.define_bar(0, pcie::BarDefinition{kBar0Size, /*is_64bit=*/true,
                                        /*prefetchable=*/false});

  cfg.add_capability(pcie::CapabilityId::PciExpress,
                     pcie::PciExpressCapability{}.encode());
  const u16 vectors = static_cast<u16>(user_logic.queue_count() + 1);
  cfg.add_capability(
      pcie::CapabilityId::MsiX,
      pcie::make_msix_capability_body(vectors, /*table_bar=*/0,
                                      static_cast<u32>(kMsixTableOffset),
                                      /*pba_bar=*/0,
                                      static_cast<u32>(kMsixPbaOffset)));

  virtio::VirtioPciLayout layout;
  layout.common = {0, static_cast<u32>(kCommonCfgOffset),
                   virtio::commoncfg::kSize};
  layout.notify = {0, static_cast<u32>(kNotifyOffset),
                   kNotifyOffMultiplier * user_logic.queue_count()};
  layout.notify_off_multiplier = kNotifyOffMultiplier;
  layout.isr = {0, static_cast<u32>(kIsrOffset), 1};
  layout.device_specific = {0, static_cast<u32>(kDeviceCfgOffset),
                            user_logic.device_config_size()};
  virtio::add_virtio_capabilities(cfg, layout);

  offered_ = user_logic.device_features();
  offered_.set(virtio::feature::kVersion1);
  if (config_.policy.use_event_idx) {
    offered_.set(virtio::feature::kRingEventIdx);
  }
  if (config_.policy.offer_indirect) {
    offered_.set(virtio::feature::kRingIndirectDesc);
  }
  if (config_.policy.offer_packed) {
    offered_.set(virtio::feature::kRingPacked);
  }

  for (auto& qs : queue_state_) {
    qs.size = config_.max_queue_size;
  }
}

VirtioDeviceFunction::~VirtioDeviceFunction() = default;

void VirtioDeviceFunction::connect(pcie::RootComplex& rc) {
  port_.emplace(rc.dma_port(*this));
  msix_ = std::make_unique<pcie::MsixTable>(
      static_cast<u32>(user_logic_->queue_count() + 1));
  h2c_ = std::make_unique<xdma::DmaChannel>(xdma::Direction::H2C, *port_,
                                            bram_, config_.engine,
                                            &counters_);
  c2h_ = std::make_unique<xdma::DmaChannel>(xdma::Direction::C2H, *port_,
                                            bram_, config_.engine,
                                            &counters_);
}

const VirtioDeviceFunction::QueueState& VirtioDeviceFunction::queue_state(
    u16 q) const {
  VFPGA_EXPECTS(q < queue_state_.size());
  return queue_state_[q];
}

IQueueEngine& VirtioDeviceFunction::engine(u16 q) {
  VFPGA_EXPECTS(q < engines_.size());
  VFPGA_EXPECTS(engines_[q] != nullptr);
  return *engines_[q];
}

// ---- MMIO dispatch -----------------------------------------------------------

u64 VirtioDeviceFunction::bar_read(u32 bar, BarOffset offset, u32 size,
                                   sim::SimTime at) {
  VFPGA_EXPECTS(bar == 0);
  (void)at;
  if (offset >= kCommonCfgOffset &&
      offset < kCommonCfgOffset + virtio::commoncfg::kSize) {
    return common_read(offset - kCommonCfgOffset, size);
  }
  if (offset == kIsrOffset) {
    const u8 isr = isr_status_;
    isr_status_ = 0;  // read-to-clear (§4.1.4.5)
    return isr;
  }
  if (offset >= kDeviceCfgOffset &&
      offset < kDeviceCfgOffset + user_logic_->device_config_size()) {
    u64 value = 0;
    for (u32 i = 0; i < size; ++i) {
      value |= static_cast<u64>(user_logic_->device_config_read(
                   static_cast<u32>(offset - kDeviceCfgOffset) + i))
               << (8 * i);
    }
    return value;
  }
  if (offset >= kMsixTableOffset && offset < kMsixPbaOffset) {
    VFPGA_EXPECTS(size == 4);
    return msix_->aperture_read(offset - kMsixTableOffset);
  }
  return 0;
}

void VirtioDeviceFunction::bar_write(u32 bar, BarOffset offset, u64 value,
                                     u32 size, sim::SimTime at) {
  VFPGA_EXPECTS(bar == 0);
  if (offset >= kCommonCfgOffset &&
      offset < kCommonCfgOffset + virtio::commoncfg::kSize) {
    common_write(offset - kCommonCfgOffset, value, size, at);
    return;
  }
  if (offset >= kDeviceCfgOffset &&
      offset < kDeviceCfgOffset + user_logic_->device_config_size()) {
    for (u32 i = 0; i < size; ++i) {
      user_logic_->device_config_write(
          static_cast<u32>(offset - kDeviceCfgOffset) + i,
          static_cast<u8>(value >> (8 * i)));
    }
    return;
  }
  if (offset >= kNotifyOffset &&
      offset <
          kNotifyOffset + kNotifyOffMultiplier * user_logic_->queue_count()) {
    const u16 queue =
        static_cast<u16>((offset - kNotifyOffset) / kNotifyOffMultiplier);
    process_notify(queue, at);
    return;
  }
  if (offset >= kMsixTableOffset && offset < kMsixPbaOffset) {
    VFPGA_EXPECTS(size == 4);
    msix_->aperture_write(offset - kMsixTableOffset, static_cast<u32>(value),
                          at, *port_);
    return;
  }
}

// ---- common configuration ------------------------------------------------------

u64 VirtioDeviceFunction::common_read(BarOffset offset, u32 size) {
  switch (offset) {
    case kDeviceFeatureSelect:
      return device_feature_select_;
    case kDeviceFeature:
      return offered_.window(device_feature_select_);
    case kDriverFeatureSelect:
      return driver_feature_select_;
    case kDriverFeature:
      return driver_features_.window(driver_feature_select_);
    case kMsixConfig:
      return msix_config_vector_;
    case kNumQueues:
      return user_logic_->queue_count();
    case kDeviceStatus:
      return status_.status();
    case kConfigGeneration:
      return config_generation_;
    case kQueueSelect:
      return queue_select_;
    case kQueueSize:
      return queue_state_[queue_select_].size;
    case kQueueMsixVector:
      return queue_state_[queue_select_].msix_vector;
    case kQueueEnable:
      return queue_state_[queue_select_].enabled ? 1 : 0;
    case kQueueNotifyOff:
      return queue_select_;  // notify offset == queue index
    case kQueueDesc:
      return size == 8 ? queue_state_[queue_select_].rings.desc
                       : queue_state_[queue_select_].rings.desc & 0xffffffffu;
    case kQueueDesc + 4:
      return queue_state_[queue_select_].rings.desc >> 32;
    case kQueueDriver:
      return size == 8 ? queue_state_[queue_select_].rings.avail
                       : queue_state_[queue_select_].rings.avail & 0xffffffffu;
    case kQueueDriver + 4:
      return queue_state_[queue_select_].rings.avail >> 32;
    case kQueueDevice:
      return size == 8 ? queue_state_[queue_select_].rings.used
                       : queue_state_[queue_select_].rings.used & 0xffffffffu;
    case kQueueDevice + 4:
      return queue_state_[queue_select_].rings.used >> 32;
    default:
      return 0;
  }
}

void VirtioDeviceFunction::common_write(BarOffset offset, u64 value, u32 size,
                                        sim::SimTime at) {
  const auto set_lo = [](u64& field, u64 v) {
    field = (field & ~0xffffffffull) | (v & 0xffffffffull);
  };
  const auto set_hi = [](u64& field, u64 v) {
    field = (field & 0xffffffffull) | (v << 32);
  };
  QueueState& q = queue_state_[queue_select_];
  switch (offset) {
    case kDeviceFeatureSelect:
      device_feature_select_ = static_cast<u32>(value);
      break;
    case kDriverFeatureSelect:
      driver_feature_select_ = static_cast<u32>(value);
      break;
    case kDriverFeature:
      driver_features_.set_window(driver_feature_select_,
                                  static_cast<u32>(value));
      break;
    case kMsixConfig: {
      // Reject vectors past the advertised MSI-X table instead of
      // letting MsixTable::fire() abort later: the write simply does
      // not take, which the driver observes via read-back (§4.1.4.3).
      const u16 v = static_cast<u16>(value);
      const u16 table_size = static_cast<u16>(queue_state_.size() + 1);
      if (v != virtio::kNoVector && v >= table_size) {
        VFPGA_WARN("virtio-ctl", "config MSI-X vector out of range: rejected");
        msix_config_vector_ = virtio::kNoVector;
      } else {
        msix_config_vector_ = v;
      }
      break;
    }
    case kDeviceStatus: {
      if (value == 0) {
        device_reset();
        break;
      }
      const bool was_live = status_.live();
      status_.driver_writes_status(static_cast<u8>(value), offered_,
                                   driver_features_);
      if (!was_live && status_.live()) {
        on_driver_ok(at);
      }
      break;
    }
    case kQueueSelect:
      VFPGA_EXPECTS(value < queue_state_.size());
      queue_select_ = static_cast<u16>(value);
      break;
    case kQueueSize:
      VFPGA_EXPECTS(value != 0 && value <= config_.max_queue_size);
      q.size = static_cast<u16>(value);
      break;
    case kQueueMsixVector: {
      const u16 v = static_cast<u16>(value);
      const u16 table_size = static_cast<u16>(queue_state_.size() + 1);
      if (v != virtio::kNoVector && v >= table_size) {
        VFPGA_WARN("virtio-ctl", "queue MSI-X vector out of range: rejected");
        q.msix_vector = virtio::kNoVector;
      } else {
        q.msix_vector = v;
      }
      break;
    }
    case kQueueEnable:
      if (value == 1 && !q.enabled) {
        q.enabled = true;
        // Latch the rings: from here on a single doorbell suffices to
        // start a transfer (§IV-A). The negotiated ring format selects
        // the queue FSM flavour.
        const virtio::FeatureSet negotiated =
            offered_.intersect(driver_features_);
        if (negotiated.has(virtio::feature::kRingPacked)) {
          virtio::PackedVirtqueueDevice vq{*port_};
          vq.configure(q.rings, q.size, negotiated);
          // Kick suppression is flags-only: leave notifications enabled.
          vq.write_device_event_flags(virtio::packed::event::kEnable,
                                      at);
          engines_[queue_select_] = std::make_unique<PackedQueueEngine>(
              std::move(vq), config_.timing, config_.policy, fault_);
        } else {
          virtio::VirtqueueDevice vq{*port_};
          vq.configure(q.rings, q.size, negotiated);
          engines_[queue_select_] = std::make_unique<QueueEngine>(
              std::move(vq), config_.timing, config_.policy, fault_);
        }
        credits_[queue_select_] = 0;
      }
      break;
    case kQueueDesc:
      if (size == 8) {
        q.rings.desc = value;
      } else {
        set_lo(q.rings.desc, value);
      }
      break;
    case kQueueDesc + 4:
      set_hi(q.rings.desc, value);
      break;
    case kQueueDriver:
      if (size == 8) {
        q.rings.avail = value;
      } else {
        set_lo(q.rings.avail, value);
      }
      break;
    case kQueueDriver + 4:
      set_hi(q.rings.avail, value);
      break;
    case kQueueDevice:
      if (size == 8) {
        q.rings.used = value;
      } else {
        set_lo(q.rings.used, value);
      }
      break;
    case kQueueDevice + 4:
      set_hi(q.rings.used, value);
      break;
    default:
      break;
  }
}

void VirtioDeviceFunction::device_reset() {
  status_.reset();
  driver_features_ = virtio::FeatureSet{};
  device_feature_select_ = 0;
  driver_feature_select_ = 0;
  queue_select_ = 0;
  isr_status_ = 0;
  msix_config_vector_ = virtio::kNoVector;
  for (auto& qs : queue_state_) {
    qs = QueueState{};
    qs.size = config_.max_queue_size;
  }
  for (auto& e : engines_) {
    e.reset();
  }
  std::fill(credits_.begin(), credits_.end(), u16{0});
  std::fill(total_drained_.begin(), total_drained_.end(), u16{0});
  std::fill(queue_busy_until_.begin(), queue_busy_until_.end(),
            sim::SimTime{});
  std::fill(moderation_.begin(), moderation_.end(), ModerationState{});
  frames_processed_ = 0;
  interrupts_suppressed_ = 0;
  interrupts_moderated_ = 0;
  ++config_generation_;
}

void VirtioDeviceFunction::on_driver_ok(sim::SimTime at) {
  (void)at;
  user_logic_->on_driver_ready(offered_.intersect(driver_features_));
  VFPGA_DEBUG("virtio-ctl",
              "driver ready, features=" + virtio::describe_net_features(
                                              offered_.intersect(
                                                  driver_features_)));
}

// ---- datapath ---------------------------------------------------------------------

void VirtioDeviceFunction::device_error(sim::SimTime at) {
  ++device_errors_;
  status_.device_error();
  isr_status_ |= virtio::isr::kConfigInterrupt;
  if (msix_config_vector_ != virtio::kNoVector) {
    msix_->fire(msix_config_vector_, at, *port_);
  }
  VFPGA_WARN("virtio-ctl", "device error: DEVICE_NEEDS_RESET latched");
}

void VirtioDeviceFunction::fire_queue_interrupt(u16 queue, sim::SimTime at) {
  const u16 vector = queue_state_[queue].msix_vector;
  if (vector == virtio::kNoVector) {
    return;
  }
  // Blk completions have their own lost-interrupt class so the campaign
  // can target the storage path without disturbing net-path seeds.
  const fault::FaultClass irq_lost_class =
      user_logic_->device_type() == virtio::DeviceType::Block
          ? fault::FaultClass::kBlkIrqLost
          : fault::FaultClass::kQueueIrqLost;
  if (fault_ != nullptr && fault_->should_inject(irq_lost_class)) {
    // The MSI-X message for this queue dies at the device: no ISR
    // latch, no delivery. The driver's watchdog/poll path must notice.
    ++queue_irqs_lost_;
    return;
  }
  isr_status_ |= virtio::isr::kQueueInterrupt;
  msix_->fire(vector, at, *port_);
  counters_.capture("irq_sent", at);
}

void VirtioDeviceFunction::moderated_queue_interrupt(u16 queue,
                                                     sim::SimTime at) {
  const UserLogic::InterruptModeration window =
      user_logic_->interrupt_moderation(queue);
  if (window.max_frames <= 1 && window.holdoff_ns == 0) {
    fire_queue_interrupt(queue, at);
    return;
  }
  ModerationState& st = moderation_[queue];
  if (!st.armed) {
    st.armed = true;
    st.withheld = 0;
    st.deadline = at + sim::nanoseconds(static_cast<i64>(window.holdoff_ns));
  }
  ++st.withheld;
  if (st.withheld >= window.max_frames || at >= st.deadline) {
    st = ModerationState{};
    fire_queue_interrupt(queue, at);
  } else {
    ++interrupts_moderated_;
  }
}

void VirtioDeviceFunction::flush_moderated_interrupts(sim::SimTime now) {
  for (u16 q = 0; q < moderation_.size(); ++q) {
    ModerationState& st = moderation_[q];
    if (st.armed && st.withheld > 0) {
      // The holdoff timer expires on its own in real hardware; here the
      // burst that opened the window has drained, so close it at the
      // deadline (never earlier than now's ordering allows).
      const sim::SimTime fire_at = std::max(now, st.deadline);
      st = ModerationState{};
      fire_queue_interrupt(q, fire_at);
    }
  }
}

void VirtioDeviceFunction::process_notify(u16 queue, sim::SimTime at) {
  VFPGA_EXPECTS(queue < queue_state_.size());
  if (!status_.live() || !queue_state_[queue].enabled) {
    return;  // spurious notify before DRIVER_OK: ignore, as hardware would
  }
  if (status_.needs_reset()) {
    return;  // error state: datapath fenced until the driver resets us
  }
  counters_.capture("notify", at);
  IQueueEngine& eng = engine(queue);
  sim::SimTime t =
      at + config_.timing.clock.cycles(config_.timing.notify_decode_cycles);
  // Per-queue engine serialization: a notify landing while this queue's
  // FSM is still working queues up behind it (other queues in parallel).
  if (queue_busy_until_[queue] > t) {
    t = queue_busy_until_[queue];
  }

  // "The device then accesses the data structures in host memory to
  // determine how many new buffers were exposed" (§IV-A).
  auto poll = eng.poll_available(t);
  t = poll.done;
  credits_[queue] = poll.value;
  total_drained_[queue] = static_cast<u16>(total_drained_[queue] +
                                           credits_[queue]);
  // Advance the kick-suppression threshold past what we are about to
  // drain (split EVENT_IDX; no-op for packed flags-only suppression).
  t = eng.post_drain_update(total_drained_[queue], t);

  while (credits_[queue] > 0) {
    --credits_[queue];
    auto fetched = eng.consume_chain(t);
    t = fetched.done;
    const FetchedChain& chain = fetched.value;
    if (chain.error) {
      // Corrupted descriptor table: never touch the chain's buffers —
      // fence the datapath and wait for the driver to reset us.
      device_error(t);
      return;
    }

    // Stage the device-readable payload into BRAM through the DMA
    // engine (Fig. 2: the engine moves data between host memory and
    // FPGA memory), then hand it to user logic. Multi-segment chains
    // gather as one pipelined read burst; single-buffer chains keep the
    // plain transfer path.
    Bytes payload;
    std::vector<xdma::DmaChannel::GatherSegment> gather;
    for (const virtio::Descriptor& d : chain.descriptors) {
      if ((d.flags & virtio::descflags::kWrite) != 0) {
        continue;
      }
      gather.push_back({d.addr, d.len});
    }
    if (gather.size() > 1) {
      u64 total = 0;
      for (const xdma::DmaChannel::GatherSegment& s : gather) {
        total += s.bytes;
      }
      t = h2c_->transfer_gather(t, gather, 0);
      payload.resize(total);
      bram_.read(0, ByteSpan{payload});
    } else {
      FpgaAddr bram_cursor = 0;
      for (const xdma::DmaChannel::GatherSegment& s : gather) {
        t = h2c_->transfer(t, s.host_addr, bram_cursor, s.bytes);
        const std::size_t old = payload.size();
        payload.resize(old + s.bytes);
        bram_.read(bram_cursor, ByteSpan{payload}.subspan(old));
        bram_cursor += s.bytes;
      }
    }
    ++frames_processed_;

    u32 writable_capacity = 0;
    UserLogic::ChainMeta meta;
    meta.via_indirect = chain.via_indirect;
    for (const virtio::Descriptor& d : chain.descriptors) {
      if ((d.flags & virtio::descflags::kWrite) != 0) {
        writable_capacity += d.len;
        ++meta.writable_descriptors;
        meta.largest_writable_bytes =
            std::max(meta.largest_writable_bytes, d.len);
      } else {
        ++meta.readable_descriptors;
        meta.largest_readable_bytes =
            std::max(meta.largest_readable_bytes, d.len);
      }
    }

    counters_.capture("ul_start", t);
    std::optional<UserLogic::Response> response =
        user_logic_->process_chain(queue, payload, writable_capacity, meta);
    if (response.has_value()) {
      const sim::Duration processing =
          config_.timing.clock.cycles(response->processing_cycles);
      t += processing;
      last_response_generation_ = processing;
    } else {
      last_response_generation_ = sim::Duration{};
    }
    counters_.capture("ul_done", t);

    const bool same_chain_response =
        response.has_value() && response->target_queue == queue;

    if (same_chain_response) {
      // Block-device style: write into the writable tail of this chain.
      Bytes staged = response->payload;
      u32 written = 0;
      sim::SimTime issuer = t;
      std::size_t off = 0;
      for (const virtio::Descriptor& d : chain.descriptors) {
        if ((d.flags & virtio::descflags::kWrite) == 0 ||
            off >= staged.size()) {
          continue;
        }
        const u32 chunk =
            static_cast<u32>(std::min<std::size_t>(d.len, staged.size() - off));
        bram_.write(0, ConstByteSpan{staged}.subspan(off, chunk));
        issuer = c2h_->transfer(issuer, d.addr, 0, chunk);
        off += chunk;
        written += chunk;
      }
      VFPGA_ASSERT(off == staged.size());
      if (response->chain_status.has_value()) {
        // §5.2.6: the status byte is the LAST byte of the chain's last
        // device-writable descriptor — the dedicated status descriptor
        // in a conforming [header][data][status] request. The data
        // scatter above must have left it free.
        VFPGA_EXPECTS(staged.size() + 1 <= writable_capacity);
        const virtio::Descriptor* last_writable = nullptr;
        for (const virtio::Descriptor& d : chain.descriptors) {
          if ((d.flags & virtio::descflags::kWrite) != 0) {
            last_writable = &d;
          }
        }
        VFPGA_ASSERT(last_writable != nullptr);
        const Bytes status_byte{*response->chain_status};
        bram_.write(0, status_byte);
        issuer = c2h_->transfer(issuer,
                                last_writable->addr + last_writable->len - 1,
                                0, 1);
        written += 1;
      }
      t = issuer;
      const auto completion =
          eng.complete_chain(chain, written, t, /*refresh_suppression=*/true);
      t = completion.engine_free;
      if (completion.interrupt) {
        fire_queue_interrupt(queue, t);
      } else {
        ++interrupts_suppressed_;
      }
      t = replenish_credits(eng, queue, t);
      continue;
    }

    // The TX-side completion only recycles the buffer; the driver keeps
    // its interrupt suppressed, so the FSM may use its cached used_event
    // threshold instead of a fresh DMA read.
    if (config_.tx_complete_before_response || !response.has_value()) {
      const auto completion = eng.complete_chain(
          chain, 0, t, /*refresh_suppression=*/false);
      t = completion.engine_free;
      if (completion.interrupt) {
        fire_queue_interrupt(queue, t);
      } else {
        ++interrupts_suppressed_;
      }
      if (response.has_value()) {
        t = deliver_response_train(*response, chain, queue, t);
      }
    } else {
      t = deliver_response_train(*response, chain, queue, t);
      const auto completion = eng.complete_chain(
          chain, 0, t, /*refresh_suppression=*/false);
      t = completion.engine_free;
      if (completion.interrupt) {
        fire_queue_interrupt(queue, t);
      } else {
        ++interrupts_suppressed_;
      }
    }
    t = replenish_credits(eng, queue, t);
  }
  flush_moderated_interrupts(t);
  queue_busy_until_[queue] = t;
}

sim::SimTime VirtioDeviceFunction::replenish_credits(IQueueEngine& eng,
                                                     u16 queue,
                                                     sim::SimTime t) {
  // Packed rings cannot report an exact outstanding count: when the
  // drain estimate runs out, peek again until the ring is empty.
  if (credits_[queue] == 0 && !eng.poll_is_exact()) {
    const auto poll = eng.poll_available(t);
    t = poll.done;
    credits_[queue] = poll.value;
    total_drained_[queue] =
        static_cast<u16>(total_drained_[queue] + poll.value);
  }
  return t;
}

sim::SimTime VirtioDeviceFunction::deliver_response(
    const UserLogic::Response& response, const FetchedChain& source_chain,
    u16 source_queue, sim::SimTime t) {
  (void)source_chain;
  (void)source_queue;
  const u16 target = response.target_queue;
  VFPGA_EXPECTS(target < queue_state_.size());
  if (!queue_state_[target].enabled) {
    return t;  // target queue not live: drop, as a NIC drops without buffers
  }
  IQueueEngine& eng = engine(target);
  if (queue_busy_until_[target] > t) {
    t = queue_busy_until_[target];
  }

  // §5.1.6.4: with VIRTIO_NET_F_MRG_RXBUF negotiated a received frame
  // may span several RX buffer chains, each getting its own used entry,
  // with the first chain's net header carrying the span count. Without
  // the bit the frame must fit one chain.
  const virtio::FeatureSet negotiated = offered_.intersect(driver_features_);
  const bool mergeable =
      negotiated.has(virtio::feature::net::kMrgRxbuf) &&
      user_logic_->device_type() == virtio::DeviceType::Net &&
      response.payload.size() >= virtio::net::NetHeader::kSize;

  // Consume chains until their writable capacity covers the payload
  // (exactly one without MRG_RXBUF).
  std::vector<FetchedChain> chains;
  u64 capacity = 0;
  while (true) {
    if (credits_[target] == 0 || !config_.policy.trust_cached_credits) {
      const auto poll = eng.poll_available(t);
      t = poll.done;
      credits_[target] = poll.value;
      if (credits_[target] == 0) {
        if (chains.empty()) {
          VFPGA_WARN("virtio-ctl",
                     "no RX buffer available: dropping response");
          queue_busy_until_[target] = t;
          return t;
        }
        break;  // partial span: deliver what fits below
      }
    }
    --credits_[target];

    auto fetched = eng.consume_chain(t);
    t = fetched.done;
    if (fetched.value.error) {
      device_error(t);
      queue_busy_until_[target] = t;
      return t;
    }
    for (const virtio::Descriptor& d : fetched.value.descriptors) {
      if ((d.flags & virtio::descflags::kWrite) != 0) {
        capacity += d.len;
      }
    }
    chains.push_back(std::move(fetched.value));
    if (!mergeable || capacity >= response.payload.size()) {
      break;
    }
  }

  // Stage the response in BRAM — patching the span count into the net
  // header first — then scatter into the chains' writable buffers via
  // the C2H engine, one used entry per chain.
  Bytes staged = response.payload;
  if (mergeable) {
    store_le16(ByteSpan{staged}, virtio::net::NetHeader::kNumBuffersOffset,
               static_cast<u16>(chains.size()));
  }
  bram_.write(0, staged);
  std::size_t off = 0;
  bool want_interrupt = false;
  for (std::size_t ci = 0; ci < chains.size(); ++ci) {
    u32 written = 0;
    for (const virtio::Descriptor& d : chains[ci].descriptors) {
      if ((d.flags & virtio::descflags::kWrite) == 0) {
        continue;
      }
      if (off >= staged.size()) {
        break;
      }
      const u32 chunk =
          static_cast<u32>(std::min<std::size_t>(d.len, staged.size() - off));
      t = c2h_->transfer(t, d.addr, off, chunk);
      off += chunk;
      written += chunk;
    }
    // Refresh the suppression snapshot only on the frame's last
    // completion — the one whose interrupt decision is acted on.
    const bool last = ci + 1 == chains.size();
    const auto completion =
        eng.complete_chain(chains[ci], written, t,
                           /*refresh_suppression=*/last);
    t = completion.engine_free;
    want_interrupt = want_interrupt || completion.interrupt;
  }
  if (off < staged.size()) {
    // The ring ran out of buffers mid-span (or a lone chain was too
    // small without MRG_RXBUF): a NIC truncates/drops rather than
    // halting — the driver sees the short `written` total.
    VFPGA_WARN("virtio-ctl", "RX capacity exhausted: response truncated");
  }
  if (want_interrupt) {
    moderated_queue_interrupt(target, t);
  } else {
    ++interrupts_suppressed_;
  }
  queue_busy_until_[target] = t;
  return t;
}

sim::SimTime VirtioDeviceFunction::deliver_response_train(
    const UserLogic::Response& response, const FetchedChain& source_chain,
    u16 source_queue, sim::SimTime t) {
  t = deliver_response(response, source_chain, source_queue, t);
  for (const Bytes& frame : response.trailing_frames) {
    UserLogic::Response follow;
    follow.payload = frame;
    follow.target_queue = response.target_queue;
    t = deliver_response(follow, source_chain, source_queue, t);
  }
  return t;
}

// ---- driver-bypass DMA (§III-A) ---------------------------------------------------

sim::SimTime VirtioDeviceFunction::bypass_to_host(sim::SimTime start,
                                                  HostAddr host_addr,
                                                  ConstByteSpan data,
                                                  FpgaAddr card_addr) {
  VFPGA_EXPECTS(card_addr + data.size() <= bram_.size());
  bram_.write(card_addr, data);
  return c2h_->transfer(start, host_addr, card_addr,
                        static_cast<u32>(data.size()));
}

sim::SimTime VirtioDeviceFunction::bypass_from_host(sim::SimTime start,
                                                    HostAddr host_addr,
                                                    ByteSpan out,
                                                    FpgaAddr card_addr) {
  VFPGA_EXPECTS(card_addr + out.size() <= bram_.size());
  const sim::SimTime done =
      h2c_->transfer(start, host_addr, card_addr, static_cast<u32>(out.size()));
  bram_.read(card_addr, out);
  return done;
}

// ---- snapshot ---------------------------------------------------------------------

namespace {

/// Ring-format tag per serialized queue engine.
constexpr u8 kEngineNone = 0;
constexpr u8 kEngineSplit = 1;
constexpr u8 kEnginePacked = 2;

}  // namespace

void VirtioDeviceFunction::save_state(migrate::StateWriter& w) const {
  w.put_u8(status_.status());
  w.put_u64(offered_.bits());
  w.put_u64(driver_features_.bits());
  w.put_u32(device_feature_select_);
  w.put_u32(driver_feature_select_);
  w.put_u16(msix_config_vector_);
  w.put_u16(queue_select_);
  w.put_u8(config_generation_);
  w.put_u8(isr_status_);

  w.put_u16(static_cast<u16>(queue_state_.size()));
  for (u16 q = 0; q < queue_state_.size(); ++q) {
    const QueueState& qs = queue_state_[q];
    w.put_u16(qs.size);
    w.put_u16(qs.msix_vector);
    w.put_bool(qs.enabled);
    w.put_u64(qs.rings.desc);
    w.put_u64(qs.rings.avail);
    w.put_u64(qs.rings.used);

    const IQueueEngine* eng = engines_[q].get();
    if (eng == nullptr) {
      w.put_u8(kEngineNone);
    } else if (dynamic_cast<const PackedQueueEngine*>(eng) != nullptr) {
      w.put_u8(kEnginePacked);
      eng->save_state(w);
    } else {
      w.put_u8(kEngineSplit);
      eng->save_state(w);
    }

    w.put_u16(credits_[q]);
    w.put_u16(total_drained_[q]);
    w.put_time(queue_busy_until_[q]);
    w.put_bool(moderation_[q].armed);
    w.put_u32(moderation_[q].withheld);
    w.put_time(moderation_[q].deadline);
  }

  w.put_duration(last_response_generation_);
  w.put_u64(frames_processed_);
  w.put_u64(interrupts_suppressed_);
  w.put_u64(interrupts_moderated_);
  w.put_u64(queue_irqs_lost_);
  w.put_u64(device_errors_);

  msix_->save_state(w);
  counters_.save_state(w);
}

void VirtioDeviceFunction::load_state(migrate::StateReader& r) {
  status_.restore_status(r.get_u8());
  offered_ = virtio::FeatureSet{r.get_u64()};
  driver_features_ = virtio::FeatureSet{r.get_u64()};
  device_feature_select_ = r.get_u32();
  driver_feature_select_ = r.get_u32();
  msix_config_vector_ = r.get_u16();
  queue_select_ = r.get_u16();
  config_generation_ = r.get_u8();
  isr_status_ = r.get_u8();

  if (r.get_u16() != queue_state_.size()) {
    r.fail();
    return;
  }
  for (u16 q = 0; q < queue_state_.size() && !r.failed(); ++q) {
    QueueState& qs = queue_state_[q];
    qs.size = r.get_u16();
    qs.msix_vector = r.get_u16();
    qs.enabled = r.get_bool();
    qs.rings.desc = r.get_u64();
    qs.rings.avail = r.get_u64();
    qs.rings.used = r.get_u64();

    // Recreate the engine in the serialized ring format, then overwrite
    // its registers. Unlike the kQueueEnable path this must NOT write
    // the packed device-event flags: host memory already holds the
    // source's ring bytes.
    const u8 tag = r.get_u8();
    switch (tag) {
      case kEngineNone:
        engines_[q].reset();
        break;
      case kEngineSplit: {
        auto eng = std::make_unique<QueueEngine>(
            virtio::VirtqueueDevice{*port_}, config_.timing, config_.policy,
            fault_);
        eng->load_state(r);
        engines_[q] = std::move(eng);
        break;
      }
      case kEnginePacked: {
        auto eng = std::make_unique<PackedQueueEngine>(
            virtio::PackedVirtqueueDevice{*port_}, config_.timing,
            config_.policy, fault_);
        eng->load_state(r);
        engines_[q] = std::move(eng);
        break;
      }
      default:
        r.fail();
        return;
    }

    credits_[q] = r.get_u16();
    total_drained_[q] = r.get_u16();
    queue_busy_until_[q] = r.get_time();
    moderation_[q].armed = r.get_bool();
    moderation_[q].withheld = r.get_u32();
    moderation_[q].deadline = r.get_time();
  }

  last_response_generation_ = r.get_duration();
  frames_processed_ = r.get_u64();
  interrupts_suppressed_ = r.get_u64();
  interrupts_moderated_ = r.get_u64();
  queue_irqs_lost_ = r.get_u64();
  device_errors_ = r.get_u64();

  msix_->load_state(r);
  counters_.load_state(r);
}

}  // namespace vfpga::core
