#include "vfpga/core/device_spec.hpp"

#include <charconv>

#include "vfpga/common/contract.hpp"

namespace vfpga::core {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view value, u64& out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_bool(std::string_view value, bool& out) {
  if (value == "on" || value == "true" || value == "1") {
    out = true;
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    out = false;
    return true;
  }
  return false;
}

bool parse_mac(std::string_view value, net::MacAddr& out) {
  if (value.size() != 17) {
    return false;
  }
  for (int i = 0; i < 6; ++i) {
    const std::string_view byte = value.substr(static_cast<size_t>(i) * 3, 2);
    u64 parsed = 0;
    const char* begin = byte.data();
    const auto [ptr, ec] = std::from_chars(begin, begin + 2, parsed, 16);
    if (ec != std::errc{} || ptr != begin + 2 || parsed > 0xff) {
      return false;
    }
    if (i < 5 && value[static_cast<size_t>(i) * 3 + 2] != ':') {
      return false;
    }
    out.octets[static_cast<size_t>(i)] = static_cast<u8>(parsed);
  }
  return true;
}

bool parse_ip(std::string_view value, net::Ipv4Addr& out) {
  u32 result = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (pos <= value.size() && octets < 4) {
    const std::size_t dot = value.find('.', pos);
    const std::string_view part =
        value.substr(pos, dot == std::string_view::npos ? value.size() - pos
                                                        : dot - pos);
    u64 parsed = 0;
    if (!parse_u64(part, parsed) || parsed > 255) {
      return false;
    }
    result = result << 8 | static_cast<u32>(parsed);
    ++octets;
    if (dot == std::string_view::npos) {
      break;
    }
    pos = dot + 1;
  }
  if (octets != 4) {
    return false;
  }
  out = net::Ipv4Addr{result};
  return true;
}

bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

std::optional<DeviceSpec> DeviceSpec::parse(std::string_view text,
                                            std::string* error) {
  const auto fail = [&](int line, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + message;
    }
    return std::nullopt;
  };

  DeviceSpec spec;
  bool device_seen = false;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_number;
    const std::size_t newline = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, newline == std::string_view::npos ? text.size() - pos
                                               : newline - pos);
    pos = newline == std::string_view::npos ? text.size() + 1 : newline + 1;

    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail(line_number, "expected 'key = value'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return fail(line_number, "empty key or value");
    }

    u64 number = 0;
    bool flag = false;
    if (key == "device") {
      device_seen = true;
      if (value == "net") {
        spec.type = virtio::DeviceType::Net;
      } else if (value == "console") {
        spec.type = virtio::DeviceType::Console;
      } else if (value == "blk") {
        spec.type = virtio::DeviceType::Block;
      } else {
        return fail(line_number, "unknown device type '" + std::string(value) +
                                     "' (net|console|blk)");
      }
    } else if (key == "queue_size") {
      if (!parse_u64(value, number) || !is_pow2(number) || number > 256) {
        return fail(line_number, "queue_size must be a power of two <= 256");
      }
      spec.controller.max_queue_size = static_cast<u16>(number);
    } else if (key == "event_idx") {
      if (!parse_bool(value, flag)) {
        return fail(line_number, "event_idx must be on|off");
      }
      spec.controller.policy.use_event_idx = flag;
    } else if (key == "packed_ring") {
      if (!parse_bool(value, flag)) {
        return fail(line_number, "packed_ring must be on|off");
      }
      spec.controller.policy.offer_packed = flag;
    } else if (key == "indirect") {
      if (!parse_bool(value, flag)) {
        return fail(line_number, "indirect must be on|off");
      }
      spec.controller.policy.offer_indirect = flag;
    } else if (key == "batched_fetch") {
      if (!parse_bool(value, flag)) {
        return fail(line_number, "batched_fetch must be on|off");
      }
      spec.controller.policy.batched_chain_fetch = flag;
    } else if (key == "bram_kib") {
      if (!parse_u64(value, number) || number == 0 || number > 16 * 1024) {
        return fail(line_number, "bram_kib must be in [1, 16384]");
      }
      spec.controller.bram_bytes = number * 1024;
    } else if (key == "mac") {
      if (!parse_mac(value, spec.net.mac)) {
        return fail(line_number, "mac must be aa:bb:cc:dd:ee:ff");
      }
    } else if (key == "ip") {
      if (!parse_ip(value, spec.net.ip)) {
        return fail(line_number, "ip must be a.b.c.d");
      }
    } else if (key == "mtu") {
      if (!parse_u64(value, number) || number < 68 || number > 9000) {
        return fail(line_number, "mtu must be in [68, 9000]");
      }
      spec.net.mtu = static_cast<u16>(number);
    } else if (key == "csum_offload") {
      if (!parse_bool(value, flag)) {
        return fail(line_number, "csum_offload must be on|off");
      }
      spec.net.offer_csum = flag;
    } else if (key == "capacity_sectors") {
      if (!parse_u64(value, number) || number == 0) {
        return fail(line_number, "capacity_sectors must be positive");
      }
      spec.blk.capacity_sectors = number;
    } else if (key == "cols") {
      if (!parse_u64(value, number) || number == 0 || number > 1024) {
        return fail(line_number, "cols must be in [1, 1024]");
      }
      spec.console.cols = static_cast<u16>(number);
    } else if (key == "rows") {
      if (!parse_u64(value, number) || number == 0 || number > 1024) {
        return fail(line_number, "rows must be in [1, 1024]");
      }
      spec.console.rows = static_cast<u16>(number);
    } else {
      return fail(line_number, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!device_seen) {
    return fail(line_number, "missing required key 'device'");
  }
  return spec;
}

BuiltDevice build_device(const DeviceSpec& spec) {
  BuiltDevice built;
  switch (spec.type) {
    case virtio::DeviceType::Net:
      built.logic = std::make_unique<NetDeviceLogic>(spec.net);
      break;
    case virtio::DeviceType::Console:
      built.logic = std::make_unique<ConsoleDeviceLogic>(spec.console);
      break;
    case virtio::DeviceType::Block:
      built.logic = std::make_unique<BlkDeviceLogic>(spec.blk);
      break;
    default:
      VFPGA_UNREACHABLE("unsupported device type in spec");
  }
  built.function =
      std::make_unique<VirtioDeviceFunction>(*built.logic, spec.controller);
  return built;
}

}  // namespace vfpga::core
