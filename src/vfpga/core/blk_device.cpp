#include "vfpga/core/blk_device.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"

namespace vfpga::core {

using virtio::blk::BlkConfigLayout;
using virtio::blk::RequestHeader;
using virtio::blk::RequestType;

BlkDeviceLogic::BlkDeviceLogic(BlkDeviceConfig config)
    : config_(config),
      storage_(config.capacity_sectors * virtio::blk::kSectorBytes, 0) {}

u8 BlkDeviceLogic::device_config_read(u32 offset) const {
  const u64 capacity = config_.capacity_sectors;
  if (offset < BlkConfigLayout::kCapacityOffset + 8) {
    return static_cast<u8>(capacity >> (8 * offset));
  }
  if (offset >= BlkConfigLayout::kBlkSizeOffset &&
      offset < BlkConfigLayout::kBlkSizeOffset + 4) {
    const u32 blk_size = 512;
    return static_cast<u8>(blk_size >>
                           (8 * (offset - BlkConfigLayout::kBlkSizeOffset)));
  }
  return 0;
}

std::optional<UserLogic::Response> BlkDeviceLogic::process(
    u16 queue, ConstByteSpan payload, u32 writable_capacity) {
  VFPGA_EXPECTS(queue == virtio::blk::kRequestQueue);
  VFPGA_EXPECTS(writable_capacity >= 1);  // status byte is always writable

  Response response;
  response.target_queue = queue;  // same-chain completion

  if (payload.size() < virtio::blk::kRequestHeaderBytes) {
    response.payload = {virtio::blk::kStatusIoErr};
    response.processing_cycles = config_.fixed_cycles;
    ++errors_;
    return response;
  }
  const RequestHeader header = RequestHeader::decode(payload);
  const u64 byte_offset = header.sector * virtio::blk::kSectorBytes;

  switch (header.type) {
    case RequestType::Out: {  // host -> device write
      const ConstByteSpan data =
          payload.subspan(virtio::blk::kRequestHeaderBytes);
      if (byte_offset + data.size() > storage_.size()) {
        response.payload = {virtio::blk::kStatusIoErr};
        ++errors_;
        break;
      }
      std::copy(data.begin(), data.end(),
                storage_.begin() + static_cast<std::ptrdiff_t>(byte_offset));
      response.payload = {virtio::blk::kStatusOk};
      response.processing_cycles =
          config_.fixed_cycles + ((data.size() + 7) / 8) *
                                     config_.cycles_per_beat;
      ++writes_;
      return response;
    }
    case RequestType::In: {  // device -> host read
      const u64 data_len = writable_capacity - 1;  // minus status byte
      if (byte_offset + data_len > storage_.size()) {
        response.payload = {virtio::blk::kStatusIoErr};
        ++errors_;
        break;
      }
      const auto first =
          storage_.begin() + static_cast<std::ptrdiff_t>(byte_offset);
      response.payload.assign(first,
                              first + static_cast<std::ptrdiff_t>(data_len));
      response.payload.push_back(virtio::blk::kStatusOk);
      response.processing_cycles =
          config_.fixed_cycles + ((data_len + 7) / 8) *
                                     config_.cycles_per_beat;
      ++reads_;
      return response;
    }
    case RequestType::Flush:
      response.payload = {virtio::blk::kStatusOk};
      response.processing_cycles = config_.fixed_cycles;
      return response;
    default:
      response.payload = {virtio::blk::kStatusUnsupported};
      ++errors_;
      break;
  }
  response.processing_cycles = config_.fixed_cycles;
  return response;
}

}  // namespace vfpga::core
