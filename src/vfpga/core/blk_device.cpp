#include "vfpga/core/blk_device.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"
#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::core {

using virtio::blk::BlkConfigLayout;
using virtio::blk::DiscardSegment;
using virtio::blk::RequestHeader;
using virtio::blk::RequestType;

namespace {

/// GET_ID answer, zero-padded to kDeviceIdBytes on the wire.
constexpr char kDeviceId[] = "vfpga-blk0";

constexpr u64 kTransportBits = ((1ull << 42) - 1) & ~((1ull << 24) - 1);

}  // namespace

BlkDeviceLogic::BlkDeviceLogic(BlkDeviceConfig config)
    : config_(config),
      storage_(config.capacity_sectors * virtio::blk::kSectorBytes, 0),
      durable_(config.capacity_sectors * virtio::blk::kSectorBytes, 0),
      dirty_(config.capacity_sectors, 0) {
  VFPGA_EXPECTS(config_.num_queues >= 1);
  VFPGA_EXPECTS(config_.seg_max >= 1);
  VFPGA_EXPECTS(config_.size_max >= virtio::blk::kRequestHeaderBytes);
}

virtio::FeatureSet BlkDeviceLogic::device_features() const {
  virtio::FeatureSet f;
  f.set(virtio::feature::blk::kSizeMax);
  f.set(virtio::feature::blk::kSegMax);
  f.set(virtio::feature::blk::kBlkSize);
  f.set(virtio::feature::blk::kFlush);
  if (config_.num_queues > 1) {
    f.set(virtio::feature::blk::kMq);
  }
  if (config_.offer_discard) {
    f.set(virtio::feature::blk::kDiscard);
  }
  return f;
}

void BlkDeviceLogic::on_driver_ready(virtio::FeatureSet negotiated) {
  // Same audit the net personality runs at DRIVER_OK: every negotiated
  // device-class bit must be one we offered.
  VFPGA_EXPECTS(
      virtio::FeatureSet{negotiated.bits() & ~kTransportBits}.subset_of(
          device_features()));
  // Config-space consistency: a driver that accepted VIRTIO_BLK_F_MQ
  // will read num_queues and spread requests across that many queues —
  // if the config structure says 1, the device and driver disagree
  // about how many rings exist. Fail loudly at DRIVER_OK.
  VFPGA_EXPECTS(!negotiated.has(virtio::feature::blk::kMq) ||
                config_.num_queues > 1);
  VFPGA_EXPECTS(!negotiated.has(virtio::feature::blk::kDiscard) ||
                config_.offer_discard);
  negotiated_ = negotiated;
}

u8 BlkDeviceLogic::device_config_read(u32 offset) const {
  const auto field8 = [offset](u32 base, u64 value) {
    return static_cast<u8>(value >> (8 * (offset - base)));
  };
  if (offset < BlkConfigLayout::kCapacityOffset + 8) {
    return field8(BlkConfigLayout::kCapacityOffset, config_.capacity_sectors);
  }
  if (offset >= BlkConfigLayout::kSizeMaxOffset &&
      offset < BlkConfigLayout::kSizeMaxOffset + 4) {
    return field8(BlkConfigLayout::kSizeMaxOffset, config_.size_max);
  }
  if (offset >= BlkConfigLayout::kSegMaxOffset &&
      offset < BlkConfigLayout::kSegMaxOffset + 4) {
    return field8(BlkConfigLayout::kSegMaxOffset, config_.seg_max);
  }
  if (offset >= BlkConfigLayout::kBlkSizeOffset &&
      offset < BlkConfigLayout::kBlkSizeOffset + 4) {
    return field8(BlkConfigLayout::kBlkSizeOffset, config_.blk_size);
  }
  if (offset >= BlkConfigLayout::kNumQueuesOffset &&
      offset < BlkConfigLayout::kNumQueuesOffset + 2) {
    return field8(BlkConfigLayout::kNumQueuesOffset, config_.num_queues);
  }
  if (offset >= BlkConfigLayout::kMaxDiscardSectorsOffset &&
      offset < BlkConfigLayout::kMaxDiscardSectorsOffset + 4) {
    return field8(BlkConfigLayout::kMaxDiscardSectorsOffset,
                  config_.max_discard_sectors);
  }
  if (offset >= BlkConfigLayout::kMaxDiscardSegOffset &&
      offset < BlkConfigLayout::kMaxDiscardSegOffset + 4) {
    return field8(BlkConfigLayout::kMaxDiscardSegOffset,
                  config_.max_discard_seg);
  }
  if (offset >= BlkConfigLayout::kDiscardAlignmentOffset &&
      offset < BlkConfigLayout::kDiscardAlignmentOffset + 4) {
    return field8(BlkConfigLayout::kDiscardAlignmentOffset,
                  config_.discard_alignment);
  }
  return 0;
}

u64 BlkDeviceLogic::seek_cycles(u64 sector) {
  const u64 distance =
      sector > head_sector_ ? sector - head_sector_ : head_sector_ - sector;
  const u64 distance_bytes = distance * virtio::blk::kSectorBytes;
  return config_.seek_base_cycles +
         ((distance_bytes * config_.seek_cycles_per_mib) >> 20);
}

u64 BlkDeviceLogic::transfer_cycles(u64 bytes) const {
  return ((bytes + 7) / 8) * config_.cycles_per_beat;
}

void BlkDeviceLogic::mark_dirty(u64 byte_offset, u64 bytes) {
  if (bytes == 0) {
    return;
  }
  const u64 first = byte_offset / virtio::blk::kSectorBytes;
  const u64 last = (byte_offset + bytes - 1) / virtio::blk::kSectorBytes;
  for (u64 s = first; s <= last; ++s) {
    if (dirty_[s] == 0) {
      dirty_[s] = 1;
      ++dirty_count_;
    }
  }
  dirty_high_water_ = std::max(dirty_high_water_, dirty_count_);
}

UserLogic::Response BlkDeviceLogic::status_only(u8 status, u64 cycles,
                                                u16 queue) {
  Response response;
  response.target_queue = queue;
  response.chain_status = status;
  response.processing_cycles = cycles;
  if (status != virtio::blk::kStatusOk) {
    ++errors_;
  }
  return response;
}

std::optional<UserLogic::Response> BlkDeviceLogic::process(
    u16 queue, ConstByteSpan payload, u32 writable_capacity) {
  // Direct byte-level entry (unit tests): synthesize the minimal chain
  // shape a [header][data][status] request would have.
  ChainMeta meta;
  meta.readable_descriptors =
      payload.size() > virtio::blk::kRequestHeaderBytes ? 2u : 1u;
  meta.writable_descriptors = writable_capacity > 1 ? 2u : 1u;
  return process_chain(queue, payload, writable_capacity, meta);
}

std::optional<UserLogic::Response> BlkDeviceLogic::process_chain(
    u16 queue, ConstByteSpan payload, u32 writable_capacity,
    const ChainMeta& meta) {
  VFPGA_EXPECTS(queue < config_.num_queues);
  VFPGA_EXPECTS(writable_capacity >= 1);  // status byte is always writable

  // A well-formed request has at least the header (RO) and status (WO)
  // descriptors; everything beyond those is data (§5.2.6).
  if (payload.size() < virtio::blk::kRequestHeaderBytes ||
      meta.readable_descriptors + meta.writable_descriptors < 2) {
    return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                       queue);
  }

  // Fault plane: the internal bus ECC detects the flipped header beats
  // and the pipeline rejects the request without executing it — modelled
  // as detected corruption so a flipped sector field can never become a
  // silent wrong-sector write.
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kBlkHeaderCorrupt)) {
    ++header_faults_;
    return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                       queue);
  }

  const RequestHeader header = RequestHeader::decode(payload);
  if (header.reserved != 0) {
    return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                       queue);
  }

  // Device-side limit enforcement (§5.2.5.2): the driver negotiated
  // SEG_MAX/SIZE_MAX, so a violating chain is a protocol error the
  // device refuses — with a status byte, not a device reset.
  const u32 data_segments =
      meta.readable_descriptors + meta.writable_descriptors - 2;
  if (data_segments > config_.seg_max) {
    return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                       queue);
  }
  if (std::max(meta.largest_readable_bytes, meta.largest_writable_bytes) >
      config_.size_max) {
    return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                       queue);
  }

  // Backing-store timeout: the medium stops answering; the device-internal
  // deadline expires and the request completes with IOERR after the full
  // timeout stall. The device itself stays healthy — no reset needed.
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kBlkBackingTimeout)) {
    ++timeout_faults_;
    return status_only(virtio::blk::kStatusIoErr,
                       config_.fixed_cycles + config_.backing_timeout_cycles,
                       queue);
  }

  const u64 byte_offset = header.sector * virtio::blk::kSectorBytes;

  switch (header.type) {
    case RequestType::Out: {  // host -> device write
      const ConstByteSpan data =
          payload.subspan(virtio::blk::kRequestHeaderBytes);
      if (byte_offset > storage_.size() ||
          data.size() > storage_.size() - byte_offset) {
        return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                           queue);
      }
      const u64 cycles = config_.fixed_cycles + seek_cycles(header.sector) +
                         transfer_cycles(data.size());
      std::copy(data.begin(), data.end(),
                storage_.begin() + static_cast<std::ptrdiff_t>(byte_offset));
      mark_dirty(byte_offset, data.size());
      head_sector_ =
          header.sector + data.size() / virtio::blk::kSectorBytes;
      ++writes_;
      return status_only(virtio::blk::kStatusOk, cycles, queue);
    }
    case RequestType::In: {  // device -> host read
      const u64 data_len = writable_capacity - 1;  // minus status byte
      if (byte_offset > storage_.size() ||
          data_len > storage_.size() - byte_offset) {
        return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                           queue);
      }
      Response response = status_only(virtio::blk::kStatusOk,
                                      config_.fixed_cycles +
                                          seek_cycles(header.sector) +
                                          transfer_cycles(data_len),
                                      queue);
      const auto first =
          storage_.begin() + static_cast<std::ptrdiff_t>(byte_offset);
      response.payload.assign(first,
                              first + static_cast<std::ptrdiff_t>(data_len));
      head_sector_ = header.sector + data_len / virtio::blk::kSectorBytes;
      ++reads_;
      return response;
    }
    case RequestType::Flush: {
      // Write barrier: every OUT completed before this FLUSH becomes
      // durable. Cost scales with the dirty span being drained.
      const u64 dirty_kib =
          dirty_count_ * virtio::blk::kSectorBytes / 1024;
      const u64 cycles = config_.fixed_cycles + config_.flush_base_cycles +
                         dirty_kib * config_.flush_cycles_per_dirty_kib;
      for (u64 s = 0; s < dirty_.size(); ++s) {
        if (dirty_[s] == 0) {
          continue;
        }
        const auto off =
            static_cast<std::ptrdiff_t>(s * virtio::blk::kSectorBytes);
        std::copy(storage_.begin() + off,
                  storage_.begin() + off +
                      static_cast<std::ptrdiff_t>(virtio::blk::kSectorBytes),
                  durable_.begin() + off);
        dirty_[s] = 0;
      }
      dirty_count_ = 0;
      ++flushes_;
      return status_only(virtio::blk::kStatusOk, cycles, queue);
    }
    case RequestType::GetId: {
      Response response =
          status_only(virtio::blk::kStatusOk, config_.fixed_cycles, queue);
      const u64 id_len =
          std::min<u64>(virtio::blk::kDeviceIdBytes, writable_capacity - 1);
      response.payload.assign(id_len, 0);
      for (u64 i = 0; i < id_len && kDeviceId[i] != '\0'; ++i) {
        response.payload[i] = static_cast<u8>(kDeviceId[i]);
      }
      ++get_ids_;
      return response;
    }
    case RequestType::Discard: {
      if (!negotiated_.has(virtio::feature::blk::kDiscard)) {
        return status_only(virtio::blk::kStatusUnsupported,
                           config_.fixed_cycles, queue);
      }
      const ConstByteSpan data =
          payload.subspan(virtio::blk::kRequestHeaderBytes);
      const u64 count = data.size() / DiscardSegment::kBytes;
      if (data.size() % DiscardSegment::kBytes != 0 || count == 0 ||
          count > config_.max_discard_seg) {
        return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                           queue);
      }
      // Validate every segment before touching the medium: a DISCARD is
      // all-or-nothing.
      for (u64 i = 0; i < count; ++i) {
        const DiscardSegment seg =
            DiscardSegment::decode(data.subspan(i * DiscardSegment::kBytes));
        if (seg.flags != 0 || seg.num_sectors > config_.max_discard_sectors ||
            (config_.discard_alignment > 1 &&
             seg.sector % config_.discard_alignment != 0) ||
            seg.sector > config_.capacity_sectors ||
            seg.num_sectors > config_.capacity_sectors - seg.sector) {
          return status_only(virtio::blk::kStatusIoErr, config_.fixed_cycles,
                             queue);
        }
      }
      u64 cycles = config_.fixed_cycles;
      for (u64 i = 0; i < count; ++i) {
        const DiscardSegment seg =
            DiscardSegment::decode(data.subspan(i * DiscardSegment::kBytes));
        const u64 off = seg.sector * virtio::blk::kSectorBytes;
        const u64 len = u64{seg.num_sectors} * virtio::blk::kSectorBytes;
        std::fill(storage_.begin() + static_cast<std::ptrdiff_t>(off),
                  storage_.begin() + static_cast<std::ptrdiff_t>(off + len),
                  u8{0});
        mark_dirty(off, len);
        cycles += seek_cycles(seg.sector);
        head_sector_ = seg.sector + seg.num_sectors;
      }
      ++discards_;
      return status_only(virtio::blk::kStatusOk, cycles, queue);
    }
  }
  return status_only(virtio::blk::kStatusUnsupported, config_.fixed_cycles,
                     queue);
}

void BlkDeviceLogic::simulate_power_loss() {
  storage_ = durable_;
  std::fill(dirty_.begin(), dirty_.end(), u8{0});
  dirty_count_ = 0;
}

void BlkDeviceLogic::save_state(migrate::StateWriter& w) const {
  w.put_u64(negotiated_.bits());
  w.put_blob(storage_);
  w.put_blob(durable_);
  w.put_blob(dirty_);
  w.put_u64(dirty_count_);
  w.put_u64(dirty_high_water_);
  w.put_u64(head_sector_);
  w.put_u64(reads_);
  w.put_u64(writes_);
  w.put_u64(flushes_);
  w.put_u64(discards_);
  w.put_u64(get_ids_);
  w.put_u64(errors_);
  w.put_u64(header_faults_);
  w.put_u64(timeout_faults_);
}

void BlkDeviceLogic::load_state(migrate::StateReader& r) {
  negotiated_ = virtio::FeatureSet{r.get_u64()};
  Bytes storage = r.get_blob();
  Bytes durable = r.get_blob();
  Bytes dirty = r.get_blob();
  if (storage.size() != storage_.size() ||
      durable.size() != durable_.size() || dirty.size() != dirty_.size()) {
    r.fail();
    return;
  }
  storage_ = std::move(storage);
  durable_ = std::move(durable);
  dirty_.assign(dirty.begin(), dirty.end());
  dirty_count_ = r.get_u64();
  dirty_high_water_ = r.get_u64();
  head_sector_ = r.get_u64();
  reads_ = r.get_u64();
  writes_ = r.get_u64();
  flushes_ = r.get_u64();
  discards_ = r.get_u64();
  get_ids_ = r.get_u64();
  errors_ = r.get_u64();
  header_faults_ = r.get_u64();
  timeout_faults_ = r.get_u64();
}

}  // namespace vfpga::core
