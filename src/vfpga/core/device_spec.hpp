// Declarative device specification — the DISL hook.
//
// The paper situates its controller inside a larger effort: "the
// automated generation of hardware operating systems using a
// specification of user requirements and component libraries as inputs"
// (§VI, the Dynamic Infrastructure Services Layer). This module is that
// front door for the VirtIO service: a textual specification selects the
// device personality and configures the controller, and build_device()
// assembles the corresponding endpoint from the component library — the
// flow a DISL generator would drive.
//
// Spec format: one `key = value` per line, `#` comments. Keys:
//   device          net | console | blk          (required)
//   queue_size      power of two, <= 256
//   event_idx       on | off
//   packed_ring     on | off
//   indirect        on | off
//   batched_fetch   on | off
//   bram_kib        staging BRAM size
//   mac             aa:bb:cc:dd:ee:ff            (net)
//   ip              a.b.c.d                      (net)
//   mtu             bytes                        (net)
//   csum_offload    on | off                     (net)
//   capacity_sectors                             (blk)
//   cols / rows                                  (console)
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "vfpga/core/blk_device.hpp"
#include "vfpga/core/console_device.hpp"
#include "vfpga/core/net_device.hpp"
#include "vfpga/core/virtio_controller.hpp"

namespace vfpga::core {

struct DeviceSpec {
  virtio::DeviceType type = virtio::DeviceType::Net;
  ControllerConfig controller;
  NetDeviceConfig net;
  ConsoleDeviceConfig console;
  BlkDeviceConfig blk;

  /// Parse the textual format above. On failure returns nullopt and
  /// stores a human-readable reason (line + message) in *error.
  static std::optional<DeviceSpec> parse(std::string_view text,
                                         std::string* error);
};

/// An assembled endpoint: the personality and the controller wrapping
/// it, ready to attach to a root complex.
struct BuiltDevice {
  std::unique_ptr<UserLogic> logic;
  std::unique_ptr<VirtioDeviceFunction> function;
};

/// Instantiate the spec from the component library.
[[nodiscard]] BuiltDevice build_device(const DeviceSpec& spec);

}  // namespace vfpga::core
