#include "vfpga/core/packed_queue_engine.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::core {

virtio::Timed<u16> PackedQueueEngine::poll_available(sim::SimTime start) {
  const auto peek = vq_.peek_available(start);
  head_cached_ = peek.value;
  return virtio::Timed<u16>{static_cast<u16>(peek.value ? 1 : 0), peek.done};
}

virtio::Timed<FetchedChain> PackedQueueEngine::consume_chain(
    sim::SimTime start) {
  sim::SimTime t = start + timing_.clock.cycles(timing_.arbitration_cycles);
  if (!head_cached_) {
    // Defensive re-peek (e.g. a trusted-credit consume without a fresh
    // poll): the FSM must read the descriptor anyway.
    const auto peek = vq_.peek_available(t);
    t = peek.done;
    VFPGA_ASSERT(peek.value);
  }
  head_cached_ = false;

  auto consumed = vq_.consume_chain(t);
  t = consumed.done;
  FetchedChain chain;
  chain.handle = consumed.value.id;
  chain.ring_slots = consumed.value.descriptor_count;
  chain.via_indirect = consumed.value.via_indirect;
  chain.descriptors = std::move(consumed.value.descriptors);
  t += timing_.clock.cycles(timing_.per_descriptor_cycles *
                            chain.descriptors.size());
  if (fault_ != nullptr && chain.via_indirect &&
      fault_->should_inject(fault::FaultClass::kIndirectCorrupt) &&
      !chain.descriptors.empty()) {
    // The one-shot table read returned garbage: poison the head entry
    // so the bounds check below rejects the whole chain.
    chain.descriptors.front().addr = 0;
  }
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kDescCorrupt) &&
      !chain.descriptors.empty()) {
    // Corrupted packed-descriptor read: force a length the bounds check
    // rejects.
    chain.descriptors.front().addr = 0;
  }
  chain.error =
      consumed.value.error || !chain_within_bounds(chain, vq_.size());
  return virtio::Timed<FetchedChain>{std::move(chain), t};
}

IQueueEngine::Completion PackedQueueEngine::complete_chain(
    const FetchedChain& chain, u32 written, sim::SimTime start,
    bool refresh_suppression) {
  sim::SimTime t = start + timing_.clock.cycles(timing_.used_update_cycles);
  if (fault_ != nullptr &&
      fault_->should_inject(fault::FaultClass::kUsedWriteFail)) {
    // Completion descriptor write lost: cursor does not advance, the
    // driver never sees this buffer again until it resets the device.
    return Completion{t, false};
  }
  virtio::PackedVirtqueueDevice::Chain dev_chain;
  dev_chain.id = chain.handle;
  dev_chain.descriptor_count = chain.ring_slots;
  const auto push = vq_.push_used(dev_chain, written, t);
  t = push.issuer_free;
  // Delivered edge of the completion descriptor write (poll-mode gate).
  record_completion(push.delivered);

  t += timing_.clock.cycles(timing_.irq_decision_cycles);
  u16 flags;
  if (refresh_suppression || !cached_driver_event_.has_value()) {
    const auto event = vq_.read_driver_event_flags(t);
    t = event.done;
    cached_driver_event_ = event.value;
    flags = event.value;
  } else {
    flags = *cached_driver_event_;
  }
  const bool interrupt = flags != virtio::packed::event::kDisable;
  return Completion{t, interrupt};
}

sim::SimTime PackedQueueEngine::post_drain_update(u16 /*drained_through*/,
                                                  sim::SimTime start) {
  // Flags-only kick suppression: the device event structure was set to
  // ENABLE at configure time and never changes, so there is nothing to
  // update after a drain.
  return start;
}

void PackedQueueEngine::save_state(migrate::StateWriter& w) const {
  save_base_state(w);
  vq_.save_state(w);
  w.put_bool(head_cached_);
  w.put_bool(cached_driver_event_.has_value());
  w.put_u16(cached_driver_event_.value_or(0));
}

void PackedQueueEngine::load_state(migrate::StateReader& r) {
  load_base_state(r);
  vq_.load_state(r);
  head_cached_ = r.get_bool();
  const bool has_cached = r.get_bool();
  const u16 cached = r.get_u16();
  cached_driver_event_ =
      has_cached ? std::optional<u16>{cached} : std::nullopt;
}

}  // namespace vfpga::core
