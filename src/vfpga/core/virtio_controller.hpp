// The FPGA-side VirtIO controller — the paper's primary contribution.
//
// A PCIe endpoint function that presents a fully VirtIO-1.2-compliant
// modern device: correct IDs (§II-C req. i), the configuration
// structures in BAR0 (req. ii), and the VirtIO vendor capabilities in
// the capability chain (req. iii). Unmodified VirtIO drivers therefore
// cannot tell it from a virtual device.
//
// Internally (paper Fig. 2) the controller implements the virtqueue
// FSMs (QueueEngine), controls the DMA engine of the XDMA IP for bulk
// payload movement, exposes virtqueue-semantics RX/TX interfaces to the
// attached UserLogic personality, and provides the driver-bypass DMA
// port (§III-A). Supported personalities: net, console, blk — "the
// modifications required to support different device types are minimal"
// (§IV-B): swap the UserLogic and the device-specific config structure.
//
// BAR0 layout (all structure locations advertised via capabilities):
//   0x0000 common config     0x0040 ISR
//   0x0100 device-specific   0x1000 notify (off multiplier 4)
//   0x2000 MSI-X table       0x3000 MSI-X PBA
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "vfpga/core/packed_queue_engine.hpp"
#include "vfpga/core/queue_engine.hpp"
#include "vfpga/core/user_logic.hpp"
#include "vfpga/fpga/perf_counter.hpp"
#include "vfpga/mem/bram.hpp"
#include "vfpga/pcie/capabilities.hpp"
#include "vfpga/pcie/function.hpp"
#include "vfpga/pcie/msix.hpp"
#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/virtio/feature_negotiation.hpp"
#include "vfpga/virtio/pci_caps.hpp"
#include "vfpga/xdma/engine.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::core {

inline constexpr BarOffset kCommonCfgOffset = 0x0000;
inline constexpr BarOffset kIsrOffset = 0x0040;
inline constexpr BarOffset kDeviceCfgOffset = 0x0100;
inline constexpr BarOffset kNotifyOffset = 0x1000;
inline constexpr u32 kNotifyOffMultiplier = 4;
inline constexpr BarOffset kMsixTableOffset = 0x2000;
inline constexpr BarOffset kMsixPbaOffset = 0x3000;
inline constexpr u64 kBar0Size = 0x4000;

struct ControllerConfig {
  QueueTiming timing{};
  ControllerPolicy policy{};
  /// Queue size the device advertises.
  u16 max_queue_size = 256;
  /// Per the paper's naive serialized FSM, the TX used-ring update runs
  /// before the response delivery; clearing this prioritizes the
  /// response path (ablation).
  bool tx_complete_before_response = true;
  /// BRAM staging buffer for frames (Fig. 2: "BRAM or external DRAM").
  u64 bram_bytes = 128 * 1024;
  xdma::EngineConfig engine{};
};

class VirtioDeviceFunction : public pcie::Function {
 public:
  VirtioDeviceFunction(UserLogic& user_logic, ControllerConfig config = {});
  ~VirtioDeviceFunction() override;

  /// Create the DMA port, queue engines and MSI-X table; call after
  /// attaching to the root complex.
  void connect(pcie::RootComplex& rc);

  /// Install a fault plane consulted by the queue engines (descriptor
  /// corruption, used-ring write failures), the interrupt path
  /// (per-queue MSI-X loss) and the user logic (steering corruption).
  /// Call before the driver enables queues; nullptr = no fault hooks.
  void set_fault_plane(fault::FaultPlane* plane) {
    fault_ = plane;
    user_logic_->attach_fault_plane(plane);
  }

  /// Device-internal error (§2.1.2): latch DEVICE_NEEDS_RESET, gate the
  /// datapath, and raise a configuration-change interrupt so the driver
  /// notices without polling.
  void device_error(sim::SimTime at);
  [[nodiscard]] u64 device_errors() const { return device_errors_; }

  /// Quiesce for snapshot: the synchronous datapath finishes inside each
  /// doorbell, so the only time-deferred device state is the NOTF_COAL
  /// holdoff window — fire any withheld interrupts so no wakeup is
  /// parked outside the serialized state. Everything still in flight
  /// after this (unharvested used entries, queued MSI deliveries) is
  /// captured by the snapshot itself.
  void quiesce(sim::SimTime at) { flush_moderated_interrupts(at); }

  /// Serialize every register and FSM the driver can observe: config
  /// space, negotiated features, per-queue ring engines, moderation
  /// windows, counters. load_state recreates the queue engines in the
  /// serialized ring format WITHOUT touching host memory (the memory
  /// image is restored separately) and fails the reader on structural
  /// mismatch (queue count / ring format).
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

  // ---- pcie::Function ---------------------------------------------------------
  u64 bar_read(u32 bar, BarOffset offset, u32 size, sim::SimTime at) override;
  void bar_write(u32 bar, BarOffset offset, u64 value, u32 size,
                 sim::SimTime at) override;

  // ---- observability ------------------------------------------------------------
  [[nodiscard]] fpga::PerfCounterBank& counters() { return counters_; }
  [[nodiscard]] pcie::MsixTable& msix() { return *msix_; }
  [[nodiscard]] u8 device_status() const { return status_.status(); }
  [[nodiscard]] virtio::FeatureSet offered_features() const {
    return offered_;
  }
  [[nodiscard]] virtio::FeatureSet negotiated_features() const {
    return driver_features_;
  }
  [[nodiscard]] UserLogic& user_logic() { return *user_logic_; }
  [[nodiscard]] mem::Bram& bram() { return bram_; }

  /// Fabric cycles the user logic spent on the most recent response —
  /// the paper deducts this "time to generate the response packet" from
  /// the latency breakdown (§IV-B).
  [[nodiscard]] sim::Duration last_response_generation() const {
    return last_response_generation_;
  }
  /// Total frames processed from the host since reset.
  [[nodiscard]] u64 frames_processed() const { return frames_processed_; }
  /// Interrupts the controller chose to suppress via EVENT_IDX.
  [[nodiscard]] u64 interrupts_suppressed() const {
    return interrupts_suppressed_;
  }
  /// RX deliveries whose interrupt was withheld by the NOTF_COAL
  /// moderation window (fired later, batched, or at the holdoff
  /// deadline) — distinct from EVENT_IDX suppression, where the driver
  /// asked for no interrupt at all.
  [[nodiscard]] u64 interrupts_moderated() const {
    return interrupts_moderated_;
  }
  /// Per-queue MSI-X messages dropped by the fault plane.
  [[nodiscard]] u64 queue_irqs_lost() const { return queue_irqs_lost_; }

  /// The driver-bypass DMA interface (§III-A): lets user logic move data
  /// to/from host memory without involving the VirtIO driver. `card_addr`
  /// selects the BRAM staging region (callers running concurrent streams
  /// use disjoint regions).
  sim::SimTime bypass_to_host(sim::SimTime start, HostAddr host_addr,
                              ConstByteSpan data, FpgaAddr card_addr = 0);
  sim::SimTime bypass_from_host(sim::SimTime start, HostAddr host_addr,
                                ByteSpan out, FpgaAddr card_addr = 0);

  /// Poll-mode visibility gate: simulated time at which completion
  /// `seq` (0-based since queue enable) on `queue` became observable in
  /// host memory, nullopt when it has not been published (or the queue
  /// is not enabled). A busy-polling driver spins until this time
  /// before harvesting — the transaction-level stand-in for re-reading
  /// the used ring until the device's posted write lands.
  [[nodiscard]] std::optional<sim::SimTime> completion_visible_time(
      u16 queue, u64 seq) const {
    if (queue >= engines_.size() || engines_[queue] == nullptr) {
      return std::nullopt;
    }
    return engines_[queue]->completion_visible_time(seq);
  }

  /// Per-queue state the host driver configured (visible for tests).
  struct QueueState {
    u16 size = 0;
    u16 msix_vector = virtio::kNoVector;
    bool enabled = false;
    virtio::RingAddresses rings{};
  };
  [[nodiscard]] const QueueState& queue_state(u16 q) const;

 private:
  // ---- common config handlers ----
  u64 common_read(BarOffset offset, u32 size);
  void common_write(BarOffset offset, u64 value, u32 size, sim::SimTime at);
  void device_reset();
  void on_driver_ok(sim::SimTime at);

  // ---- datapath ----
  void process_notify(u16 queue, sim::SimTime at);
  /// Deliver a response: scatter into an RX-style chain on target_queue
  /// (or the same chain for block-style), update used, maybe interrupt.
  sim::SimTime deliver_response(const UserLogic::Response& response,
                                const FetchedChain& source_chain,
                                u16 source_queue, sim::SimTime t);
  /// Deliver the primary response plus any trailing frames (a device
  /// GSO engine emitting a segment train) back-to-back on its target.
  sim::SimTime deliver_response_train(const UserLogic::Response& response,
                                      const FetchedChain& source_chain,
                                      u16 source_queue, sim::SimTime t);
  void fire_queue_interrupt(u16 queue, sim::SimTime at);
  /// Interrupt-moderation gate for RX deliveries: consult the user
  /// logic's per-queue window and withhold the MSI-X message until the
  /// batch count or the holdoff deadline is reached.
  void moderated_queue_interrupt(u16 queue, sim::SimTime at);
  /// Fire any still-withheld interrupts at their holdoff deadline. The
  /// notify-driven simulation has no free-running timer, so the window
  /// closes when the burst that opened it finishes processing — no
  /// wakeup is ever lost, and cross-burst traffic degenerates to one
  /// (deadline-delayed) interrupt per burst.
  void flush_moderated_interrupts(sim::SimTime now);
  /// Packed rings: re-peek for more work when the drain estimate runs
  /// out (split polls are exact and never replenish here).
  sim::SimTime replenish_credits(IQueueEngine& eng, u16 queue,
                                 sim::SimTime t);
  [[nodiscard]] IQueueEngine& engine(u16 q);

  UserLogic* user_logic_;
  ControllerConfig config_;
  mem::Bram bram_;
  fpga::PerfCounterBank counters_;

  std::optional<pcie::DmaPort> port_;
  std::unique_ptr<pcie::MsixTable> msix_;
  std::unique_ptr<xdma::DmaChannel> h2c_;  ///< DMA engine, fabric-driven
  std::unique_ptr<xdma::DmaChannel> c2h_;

  virtio::DeviceStatusMachine status_;
  virtio::FeatureSet offered_;
  virtio::FeatureSet driver_features_;
  u32 device_feature_select_ = 0;
  u32 driver_feature_select_ = 0;
  u16 msix_config_vector_ = virtio::kNoVector;
  u16 queue_select_ = 0;
  u8 config_generation_ = 0;
  u8 isr_status_ = 0;

  std::vector<QueueState> queue_state_;
  std::vector<std::unique_ptr<IQueueEngine>> engines_;
  std::vector<u16> credits_;  ///< cached (avail_idx - cursor) per queue
  std::vector<u16> total_drained_;  ///< chains consumed per queue (mod 2^16)
  /// Each queue engine is an independent fabric FSM, but one engine
  /// processes one chain at a time: work on queue q issued while q is
  /// still busy waits for it, while other queues proceed in parallel —
  /// the contention model the multi-queue scaling bench measures.
  std::vector<sim::SimTime> queue_busy_until_;
  /// Per-queue NOTF_COAL window state: how many interrupt-worthy
  /// deliveries are withheld and when the holdoff expires.
  struct ModerationState {
    bool armed = false;
    u32 withheld = 0;
    sim::SimTime deadline{};
  };
  std::vector<ModerationState> moderation_;

  sim::Duration last_response_generation_{};
  u64 frames_processed_ = 0;
  u64 interrupts_suppressed_ = 0;
  u64 interrupts_moderated_ = 0;
  u64 queue_irqs_lost_ = 0;
  u64 device_errors_ = 0;
  fault::FaultPlane* fault_ = nullptr;
};

}  // namespace vfpga::core
