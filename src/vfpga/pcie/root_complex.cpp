#include "vfpga/pcie/root_complex.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::pcie {

sim::SimTime DmaPort::read(sim::SimTime start, HostAddr addr,
                           ByteSpan out) const {
  return rc_->endpoint_read(*owner_, start, addr, out);
}

DmaPort::WriteTiming DmaPort::write(sim::SimTime start, HostAddr addr,
                                    ConstByteSpan data) const {
  return rc_->endpoint_write(*owner_, start, addr, data);
}

sim::SimTime DmaPort::read_burst(
    sim::SimTime start, std::span<const ReadSegment> segments) const {
  return rc_->endpoint_read_burst(*owner_, start, segments);
}

u32 RootComplex::attach(Function& fn) {
  functions_.push_back(&fn);
  return static_cast<u32>(functions_.size() - 1);
}

Function& RootComplex::function(u32 index) const {
  VFPGA_EXPECTS(index < functions_.size());
  return *functions_[index];
}

RootComplex::MmioReadResult RootComplex::cpu_mmio_read(Function& fn, u32 bar,
                                                       BarOffset offset,
                                                       u32 size,
                                                       sim::SimTime at) {
  VFPGA_EXPECTS(fn.config().memory_enabled());
  VFPGA_EXPECTS(fn.config().bar_address(bar) != 0);
  VFPGA_EXPECTS(offset + size <= fn.config().bar_definition(bar).size);
  const sim::Duration stall = link_.mmio_read_time(size);
  // The device register file is sampled when the request arrives — one
  // way into the round trip.
  const sim::SimTime arrival =
      at + link_.tlp_wire_time(0) + link_.one_way_latency();
  const u64 value = fn.bar_read(bar, offset, size, arrival);
  return MmioReadResult{value, stall};
}

RootComplex::MmioWriteResult RootComplex::cpu_mmio_write(Function& fn, u32 bar,
                                                         BarOffset offset,
                                                         u64 value, u32 size,
                                                         sim::SimTime at) {
  VFPGA_EXPECTS(fn.config().memory_enabled());
  VFPGA_EXPECTS(fn.config().bar_address(bar) != 0);
  VFPGA_EXPECTS(offset + size <= fn.config().bar_definition(bar).size);
  const LinkModel::PostedTiming timing = link_.mmio_write_time(size);
  const sim::SimTime delivered = at + timing.delivered;
  fn.bar_write(bar, offset, value, size, delivered);
  return MmioWriteResult{timing.issuer_busy, delivered};
}

RootComplex::ConfigResult RootComplex::config_read(Function& fn, u16 offset) {
  return ConfigResult{fn.config().read32(offset), link_.config_access_time()};
}

sim::Duration RootComplex::config_write(Function& fn, u16 offset, u32 value) {
  fn.config().write32(offset, value);
  return link_.config_access_time();
}

sim::SimTime RootComplex::endpoint_read(const Function& fn, sim::SimTime start,
                                        HostAddr addr, ByteSpan out) {
  VFPGA_EXPECTS(fn.config().bus_master_enabled());
  memory_->dma_read(addr, out);
  sim::SimTime done = start + link_.dma_read_time(out.size());
  if (dma_read_jitter_) {
    done += dma_read_jitter_();
  }
  return done;
}

sim::SimTime RootComplex::endpoint_read_burst(
    const Function& fn, sim::SimTime start,
    std::span<const DmaPort::ReadSegment> segs) {
  VFPGA_EXPECTS(fn.config().bus_master_enabled());
  VFPGA_EXPECTS(!segs.empty());
  u64 total = 0;
  for (const DmaPort::ReadSegment& s : segs) {
    memory_->dma_read(s.addr, s.out);
    total += s.out.size();
  }
  sim::SimTime done = start + link_.dma_read_burst_time(total, segs.size());
  if (dma_read_jitter_) {
    done += dma_read_jitter_();
  }
  return done;
}

DmaPort::WriteTiming RootComplex::endpoint_write(const Function& fn,
                                                 sim::SimTime start,
                                                 HostAddr addr,
                                                 ConstByteSpan data) {
  VFPGA_EXPECTS(fn.config().bus_master_enabled());
  const LinkModel::PostedTiming timing = link_.dma_write_time(data.size());
  const sim::SimTime delivered = start + timing.delivered;
  if (addr >= kMsiWindowBase && addr < kMsiWindowBase + kMsiWindowSize) {
    // Message-signalled interrupt: do not touch memory; deliver to the
    // interrupt sink at arrival time.
    VFPGA_EXPECTS(data.size() == 4);
    if (irq_sink_) {
      if (fault_ != nullptr &&
          fault_->should_inject(fault::FaultClass::kNotifyLost)) {
        // Message dropped in flight: the vector never reaches the host.
      } else if (fault_ != nullptr &&
                 fault_->should_inject(fault::FaultClass::kNotifyDup)) {
        irq_sink_(load_le32(data), delivered);
        irq_sink_(load_le32(data), delivered);
      } else {
        irq_sink_(load_le32(data), delivered);
      }
    }
  } else if (fault_ != nullptr && data.size() >= fault::kMinPayloadBytes &&
             fault_->should_inject(fault::FaultClass::kTlpDrop)) {
    // Payload TLP dropped in flight: the bytes never land. Ring
    // bookkeeping writes are below kMinPayloadBytes and never dropped —
    // the link layer's replay protects small TLPs.
  } else if (fault_ != nullptr && data.size() >= fault::kMinPayloadBytes &&
             fault_->should_inject(fault::FaultClass::kTlpCorrupt)) {
    Bytes corrupted(data.begin(), data.end());
    fault_->corrupt(corrupted);
    memory_->write(addr, corrupted);
  } else {
    memory_->write(addr, data);
  }
  return DmaPort::WriteTiming{start + timing.issuer_busy, delivered};
}

}  // namespace vfpga::pcie
