// PCI type-0 configuration space.
//
// A full 4 KiB configuration space with the standard type-0 header, the
// capability-list mechanism, and the BAR sizing protocol (write all-ones,
// read back the size mask). The VirtIO-modern driver model discovers the
// device exactly the way the Linux virtio-pci driver does: match
// vendor/device ID, walk the capability chain for vendor-specific
// capabilities, and map the referenced BAR regions — so requirement (i)
// and (iii) of §II-C ("announce correct IDs", "add VirtIO capabilities to
// the capability list") are real, testable operations here.
#pragma once

#include <array>

#include "vfpga/common/endian.hpp"
#include "vfpga/common/types.hpp"

namespace vfpga::pcie {

/// Standard configuration header offsets (type 0).
namespace cfg {
inline constexpr u16 kVendorId = 0x00;
inline constexpr u16 kDeviceId = 0x02;
inline constexpr u16 kCommand = 0x04;
inline constexpr u16 kStatus = 0x06;
inline constexpr u16 kRevisionId = 0x08;
inline constexpr u16 kClassCode = 0x09;  // 3 bytes: prog-if, sub, base
inline constexpr u16 kHeaderType = 0x0e;
inline constexpr u16 kBar0 = 0x10;
inline constexpr u16 kSubsystemVendorId = 0x2c;
inline constexpr u16 kSubsystemId = 0x2e;
inline constexpr u16 kCapabilityPointer = 0x34;
inline constexpr u16 kInterruptLine = 0x3c;

/// Command register bits.
inline constexpr u16 kCommandMemoryEnable = 1u << 1;
inline constexpr u16 kCommandBusMaster = 1u << 2;
/// Status register: capability list present.
inline constexpr u16 kStatusCapList = 1u << 4;
}  // namespace cfg

/// Capability IDs used by the models.
enum class CapabilityId : u8 {
  PowerManagement = 0x01,
  Msi = 0x05,
  VendorSpecific = 0x09,
  PciExpress = 0x10,
  MsiX = 0x11,
};

struct BarDefinition {
  u64 size = 0;          ///< 0 = BAR not implemented
  bool is_64bit = false;
  bool prefetchable = false;
};

class ConfigSpace {
 public:
  static constexpr u32 kSize = 4096;
  static constexpr u32 kMaxBars = 6;

  ConfigSpace();

  // ---- identity -------------------------------------------------------------

  void set_ids(u16 vendor, u16 device, u16 subsys_vendor, u16 subsys_id);
  void set_revision(u8 revision);
  void set_class_code(u8 base, u8 sub, u8 prog_if);

  [[nodiscard]] u16 vendor_id() const { return read16(cfg::kVendorId); }
  [[nodiscard]] u16 device_id() const { return read16(cfg::kDeviceId); }
  [[nodiscard]] u8 revision() const { return space_[cfg::kRevisionId]; }

  // ---- BARs ------------------------------------------------------------------

  /// Define BAR `index` with the given size (power of two, >= 16).
  void define_bar(u32 index, BarDefinition def);
  [[nodiscard]] const BarDefinition& bar_definition(u32 index) const;

  /// Address currently programmed into BAR `index` (0 if unassigned).
  [[nodiscard]] u64 bar_address(u32 index) const;

  // ---- capability list -------------------------------------------------------

  /// Append a capability: writes [id, next, body...] at the next free
  /// offset, links the chain, sets the status bit. Returns the config
  /// offset of the new capability. `body` excludes the 2-byte header.
  u16 add_capability(CapabilityId id, ConstByteSpan body);

  /// Find the first capability with `id` at or after `start_offset` in
  /// chain order. Returns 0 when absent.
  [[nodiscard]] u16 find_capability(CapabilityId id, u16 after = 0) const;

  // ---- raw access (what config TLPs do) ---------------------------------------

  [[nodiscard]] u8 read8(u16 offset) const;
  [[nodiscard]] u16 read16(u16 offset) const;
  [[nodiscard]] u32 read32(u16 offset) const;
  void write8(u16 offset, u8 value);
  void write16(u16 offset, u16 value);
  /// 32-bit config write; implements BAR sizing/programming semantics.
  void write32(u16 offset, u32 value);

  [[nodiscard]] bool memory_enabled() const {
    return (read16(cfg::kCommand) & cfg::kCommandMemoryEnable) != 0;
  }
  [[nodiscard]] bool bus_master_enabled() const {
    return (read16(cfg::kCommand) & cfg::kCommandBusMaster) != 0;
  }

 private:
  [[nodiscard]] static bool is_bar_register(u16 offset) {
    return offset >= cfg::kBar0 && offset < cfg::kBar0 + 4 * kMaxBars &&
           (offset - cfg::kBar0) % 4 == 0;
  }
  void write_bar_register(u32 bar_index, u32 value);

  std::array<u8, kSize> space_{};
  std::array<BarDefinition, kMaxBars> bars_{};
  std::array<u64, kMaxBars> bar_values_{};
  u16 next_cap_offset_ = 0x40;
  u16 last_cap_offset_ = 0;
};

}  // namespace vfpga::pcie
