#include "vfpga/pcie/capabilities.hpp"

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"

namespace vfpga::pcie {

Bytes PciExpressCapability::encode() const {
  // Layout (offsets within body, after the 2-byte cap header):
  //   0: PCIe capabilities register (version=2, device/port type)
  //   2: device capabilities (bits 2:0 = max payload supported)
  //   6: device control (bits 7:5 = MPS, bits 14:12 = MRRS)
  Bytes body(8, 0);
  ByteSpan s{body};
  store_le16(s, 0,
             static_cast<u16>(0x2 | (static_cast<u16>(device_port_type) << 4)));
  store_le32(s, 2, max_payload_encoding & 0x7);
  store_le16(s, 6,
             static_cast<u16>(((max_payload_encoding & 0x7) << 5) |
                              ((max_read_request_encoding & 0x7) << 12)));
  return body;
}

PciExpressCapability PciExpressCapability::decode(ConstByteSpan body) {
  VFPGA_EXPECTS(body.size() >= 8);
  PciExpressCapability cap;
  cap.device_port_type = static_cast<u8>((load_le16(body, 0) >> 4) & 0xf);
  const u16 control = load_le16(body, 6);
  cap.max_payload_encoding = static_cast<u32>((control >> 5) & 0x7);
  cap.max_read_request_encoding = static_cast<u32>((control >> 12) & 0x7);
  return cap;
}

MsixCapabilityInfo decode_msix_capability(const ConfigSpace& config,
                                          u16 cap_offset) {
  VFPGA_EXPECTS(config.read8(cap_offset) ==
                static_cast<u8>(CapabilityId::MsiX));
  MsixCapabilityInfo info;
  info.table_size = static_cast<u16>(
      (config.read16(static_cast<u16>(cap_offset + 2)) & 0x7ff) + 1);
  const u32 table = config.read32(static_cast<u16>(cap_offset + 4));
  info.table_bar = static_cast<u8>(table & 0x7);
  info.table_offset = table & ~0x7u;
  const u32 pba = config.read32(static_cast<u16>(cap_offset + 8));
  info.pba_bar = static_cast<u8>(pba & 0x7);
  info.pba_offset = pba & ~0x7u;
  return info;
}

}  // namespace vfpga::pcie
