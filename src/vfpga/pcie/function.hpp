// PCIe endpoint function interface.
//
// A Function is one (bus, device, function) endpoint: it owns a
// configuration space and reacts to BAR accesses. Timing is handled by
// the RootComplex; a Function's bar_read/bar_write see the time at which
// the TLP *arrives at device logic* and may perform device work (e.g. a
// VirtIO notify triggers queue processing) synchronously, scheduling
// completions/interrupts at computed future times.
#pragma once

#include "vfpga/pcie/config_space.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::pcie {

class Function {
 public:
  Function() = default;
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;
  virtual ~Function() = default;

  [[nodiscard]] ConfigSpace& config() { return config_; }
  [[nodiscard]] const ConfigSpace& config() const { return config_; }

  /// Handle a memory read of `size` bytes (1/2/4/8) at `offset` into BAR
  /// `bar`, arriving at device logic at time `at`. Returns the value.
  virtual u64 bar_read(u32 bar, BarOffset offset, u32 size,
                       sim::SimTime at) = 0;

  /// Handle a memory write arriving at device logic at time `at`.
  virtual void bar_write(u32 bar, BarOffset offset, u64 value, u32 size,
                         sim::SimTime at) = 0;

 private:
  ConfigSpace config_;
};

}  // namespace vfpga::pcie
