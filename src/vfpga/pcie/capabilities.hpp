// Builders and parsers for standard PCI capabilities.
//
// Only the capabilities the two testbeds actually need are modelled:
// PCI Express (so enumeration can read MPS/MRRS), MSI-X (interrupts),
// and the vendor-specific capability format (the carrier for VirtIO's
// configuration-structure pointers, built in vfpga/virtio/pci_caps).
#pragma once

#include "vfpga/common/types.hpp"
#include "vfpga/pcie/config_space.hpp"

namespace vfpga::pcie {

/// PCI Express capability body (subset: capability register + device
/// capabilities/control carrying max-payload/read-request encodings).
struct PciExpressCapability {
  u8 device_port_type = 0;   ///< 0 = PCIe endpoint
  u32 max_payload_encoding = 1;       ///< 1 => 256 B
  u32 max_read_request_encoding = 2;  ///< 2 => 512 B

  [[nodiscard]] Bytes encode() const;
  static PciExpressCapability decode(ConstByteSpan body);

  [[nodiscard]] u32 max_payload_bytes() const {
    return 128u << max_payload_encoding;
  }
  [[nodiscard]] u32 max_read_request_bytes() const {
    return 128u << max_read_request_encoding;
  }
};

/// Parsed view of an MSI-X capability found during enumeration.
struct MsixCapabilityInfo {
  u16 table_size = 0;
  u8 table_bar = 0;
  u32 table_offset = 0;
  u8 pba_bar = 0;
  u32 pba_offset = 0;
};

/// Decode the MSI-X capability at config offset `cap_offset`.
[[nodiscard]] MsixCapabilityInfo decode_msix_capability(
    const ConfigSpace& config, u16 cap_offset);

}  // namespace vfpga::pcie
