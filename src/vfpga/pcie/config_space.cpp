#include "vfpga/pcie/config_space.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::pcie {
namespace {

constexpr u32 kBarFlag64Bit = 0x4;
constexpr u32 kBarFlagPrefetch = 0x8;

bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

ConfigSpace::ConfigSpace() {
  // Header type 0, single function.
  space_[cfg::kHeaderType] = 0x00;
}

void ConfigSpace::set_ids(u16 vendor, u16 device, u16 subsys_vendor,
                          u16 subsys_id) {
  ByteSpan s{space_};
  store_le16(s, cfg::kVendorId, vendor);
  store_le16(s, cfg::kDeviceId, device);
  store_le16(s, cfg::kSubsystemVendorId, subsys_vendor);
  store_le16(s, cfg::kSubsystemId, subsys_id);
}

void ConfigSpace::set_revision(u8 revision) {
  space_[cfg::kRevisionId] = revision;
}

void ConfigSpace::set_class_code(u8 base, u8 sub, u8 prog_if) {
  space_[cfg::kClassCode] = prog_if;
  space_[cfg::kClassCode + 1] = sub;
  space_[cfg::kClassCode + 2] = base;
}

void ConfigSpace::define_bar(u32 index, BarDefinition def) {
  VFPGA_EXPECTS(index < kMaxBars);
  VFPGA_EXPECTS(def.size == 0 || (is_pow2(def.size) && def.size >= 16));
  VFPGA_EXPECTS(!def.is_64bit || index + 1 < kMaxBars);
  bars_[index] = def;
}

const BarDefinition& ConfigSpace::bar_definition(u32 index) const {
  VFPGA_EXPECTS(index < kMaxBars);
  return bars_[index];
}

u64 ConfigSpace::bar_address(u32 index) const {
  VFPGA_EXPECTS(index < kMaxBars);
  return bar_values_[index];
}

u16 ConfigSpace::add_capability(CapabilityId id, ConstByteSpan body) {
  const u16 offset = next_cap_offset_;
  const u16 total = static_cast<u16>(2 + body.size());
  VFPGA_EXPECTS(offset + total <= 0x100);  // caps live in legacy space

  space_[offset] = static_cast<u8>(id);
  space_[offset + 1] = 0;  // end of chain for now
  for (std::size_t i = 0; i < body.size(); ++i) {
    space_[offset + 2 + i] = body[i];
  }

  if (last_cap_offset_ == 0) {
    space_[cfg::kCapabilityPointer] = static_cast<u8>(offset);
    ByteSpan s{space_};
    store_le16(s, cfg::kStatus,
               static_cast<u16>(read16(cfg::kStatus) | cfg::kStatusCapList));
  } else {
    space_[last_cap_offset_ + 1] = static_cast<u8>(offset);
  }
  last_cap_offset_ = offset;
  next_cap_offset_ = static_cast<u16>((offset + total + 3) & ~u16{3});
  return offset;
}

u16 ConfigSpace::find_capability(CapabilityId id, u16 after) const {
  if ((read16(cfg::kStatus) & cfg::kStatusCapList) == 0) {
    return 0;
  }
  u16 ptr = space_[cfg::kCapabilityPointer];
  bool passed_start = (after == 0);
  // A well-formed chain has < 48 entries; bound the walk to stay safe
  // against a corrupted chain.
  for (int guard = 0; ptr != 0 && guard < 64; ++guard) {
    if (passed_start && space_[ptr] == static_cast<u8>(id)) {
      return ptr;
    }
    if (ptr == after) {
      passed_start = true;
    }
    ptr = space_[ptr + 1];
  }
  return 0;
}

u8 ConfigSpace::read8(u16 offset) const {
  VFPGA_EXPECTS(offset < kSize);
  return space_[offset];
}

u16 ConfigSpace::read16(u16 offset) const {
  VFPGA_EXPECTS(u32{offset} + 2 <= kSize);
  return load_le16(ConstByteSpan{space_}, offset);
}

u32 ConfigSpace::read32(u16 offset) const {
  VFPGA_EXPECTS(u32{offset} + 4 <= kSize);
  if (is_bar_register(offset)) {
    const u32 index = (u32{offset} - cfg::kBar0) / 4;
    // Low dword of a BAR (or high dword of a 64-bit BAR).
    const bool high_half =
        index > 0 && bars_[index - 1].is_64bit && bars_[index].size == 0;
    if (high_half) {
      return static_cast<u32>(bar_values_[index - 1] >> 32);
    }
    const BarDefinition& def = bars_[index];
    if (def.size == 0) {
      return 0;
    }
    u32 flags = 0;
    if (def.is_64bit) {
      flags |= kBarFlag64Bit;
    }
    if (def.prefetchable) {
      flags |= kBarFlagPrefetch;
    }
    return (static_cast<u32>(bar_values_[index]) & ~u32{0xf}) | flags;
  }
  return load_le32(ConstByteSpan{space_}, offset);
}

void ConfigSpace::write8(u16 offset, u8 value) {
  VFPGA_EXPECTS(offset < kSize);
  space_[offset] = value;
}

void ConfigSpace::write16(u16 offset, u16 value) {
  VFPGA_EXPECTS(u32{offset} + 2 <= kSize);
  store_le16(ByteSpan{space_}, offset, value);
}

void ConfigSpace::write32(u16 offset, u32 value) {
  VFPGA_EXPECTS(u32{offset} + 4 <= kSize);
  if (is_bar_register(offset)) {
    write_bar_register((u32{offset} - cfg::kBar0) / 4, value);
    return;
  }
  store_le32(ByteSpan{space_}, offset, value);
}

void ConfigSpace::write_bar_register(u32 bar_index, u32 value) {
  // High dword of a 64-bit BAR?
  if (bar_index > 0 && bars_[bar_index - 1].is_64bit &&
      bars_[bar_index].size == 0) {
    const u32 low_index = bar_index - 1;
    const u64 size = bars_[low_index].size;
    if (value == 0xffffffffu) {
      // Sizing: store size mask; the read path reconstructs it.
      const u64 mask = ~(size - 1);
      bar_values_[low_index] =
          (bar_values_[low_index] & 0xffffffffull) | (mask & ~0xffffffffull);
    } else {
      bar_values_[low_index] = (bar_values_[low_index] & 0xffffffffull) |
                               (static_cast<u64>(value) << 32);
    }
    return;
  }
  const BarDefinition& def = bars_[bar_index];
  if (def.size == 0) {
    return;  // unimplemented BAR ignores writes
  }
  if (value == 0xffffffffu) {
    const u64 mask = ~(def.size - 1);
    bar_values_[bar_index] =
        (bar_values_[bar_index] & ~0xffffffffull) | (mask & 0xffffffffull);
  } else {
    bar_values_[bar_index] = (bar_values_[bar_index] & ~0xffffffffull) |
                             (value & ~u32{0xf});
  }
}

}  // namespace vfpga::pcie
