// Root complex: the host side of the PCIe hierarchy.
//
// Routes CPU MMIO to endpoint BARs with link timing, gives endpoints a
// timed DMA port into simulated host memory, and intercepts writes to the
// message-signalled-interrupt address window (0xFEE0'0000 region, as on
// x86) to deliver interrupts to a registered sink. Bus-mastering and
// memory-space enables in the endpoint's command register are enforced —
// a device whose driver forgot to enable bus mastering cannot DMA, which
// is exactly the failure mode a real kernel would see.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "vfpga/mem/host_memory.hpp"
#include "vfpga/pcie/function.hpp"
#include "vfpga/pcie/link_model.hpp"

namespace vfpga::pcie {

/// x86 MSI doorbell window.
inline constexpr HostAddr kMsiWindowBase = 0xfee0'0000ull;
inline constexpr HostAddr kMsiWindowSize = 0x10'0000ull;

/// Callback invoked when an MSI/MSI-X write lands: (message data,
/// delivery time).
using IrqSink = std::function<void(u32 message_data, sim::SimTime at)>;

class RootComplex;

/// Device-side handle for bus mastering. Every DMA the device performs
/// flows through here so that (a) bytes actually move through
/// HostMemory, (b) wire time is charged, and (c) the command-register
/// bus-master enable is honored.
class DmaPort {
 public:
  DmaPort(RootComplex& rc, const Function& owner) : rc_(&rc), owner_(&owner) {}

  /// Timed DMA read: fills `out` from host memory; returns the time the
  /// last completion beat lands in the device.
  sim::SimTime read(sim::SimTime start, HostAddr addr, ByteSpan out) const;

  /// One host region of a pipelined scatter read.
  struct ReadSegment {
    HostAddr addr = 0;
    ByteSpan out;
  };
  /// Timed pipelined DMA read of several host regions issued
  /// back-to-back (one outstanding tag per segment): the link pipeline
  /// is charged once for the burst. A single-segment burst is identical
  /// to read().
  sim::SimTime read_burst(sim::SimTime start,
                          std::span<const ReadSegment> segments) const;

  struct WriteTiming {
    sim::SimTime issuer_free;  ///< engine can issue its next transaction
    sim::SimTime delivered;    ///< data globally visible in host memory
  };
  /// Timed posted DMA write (also the path MSI-X messages take).
  WriteTiming write(sim::SimTime start, HostAddr addr,
                    ConstByteSpan data) const;

 private:
  RootComplex* rc_;
  const Function* owner_;
};

class RootComplex {
 public:
  RootComplex(mem::HostMemory& memory, LinkModel link)
      : memory_(&memory), link_(link) {}

  [[nodiscard]] mem::HostMemory& memory() { return *memory_; }
  [[nodiscard]] const LinkModel& link() const { return link_; }

  /// Attach an endpoint function; returns its device index.
  u32 attach(Function& fn);
  [[nodiscard]] std::size_t function_count() const { return functions_.size(); }
  [[nodiscard]] Function& function(u32 index) const;

  /// Register the host interrupt controller's delivery callback.
  void set_irq_sink(IrqSink sink) { irq_sink_ = std::move(sink); }

  /// Install a fault plane consulted on endpoint-initiated traffic:
  /// payload-sized posted writes (TLP drop/corrupt), DMA read
  /// completions (poison, via HostMemory), and MSI window writes
  /// (lost/duplicated notifies). nullptr = no fault hooks, zero cost.
  void set_fault_plane(fault::FaultPlane* plane) {
    fault_ = plane;
    memory_->set_fault_plane(plane);
  }

  /// Optional per-DMA-read jitter source (host memory-controller
  /// contention: bank conflicts, refresh, IOMMU TLB misses). Sampled
  /// once per endpoint-initiated read; keeps hardware-side variance
  /// small but nonzero, as the paper's counters show.
  void set_dma_read_jitter(std::function<sim::Duration()> jitter) {
    dma_read_jitter_ = std::move(jitter);
  }

  /// Create a DMA port for an endpoint.
  [[nodiscard]] DmaPort dma_port(const Function& fn) {
    return DmaPort{*this, fn};
  }

  // ---- CPU-initiated accesses (timed) ---------------------------------------

  struct MmioReadResult {
    u64 value = 0;
    sim::Duration cpu_stall{};  ///< full non-posted round trip
  };
  /// CPU read from a BAR region. The BAR must be assigned + enabled.
  MmioReadResult cpu_mmio_read(Function& fn, u32 bar, BarOffset offset,
                               u32 size, sim::SimTime at);

  struct MmioWriteResult {
    sim::Duration cpu_cost{};   ///< posted: CPU continues after this
    sim::SimTime delivered{};   ///< write reaches device logic
  };
  /// CPU posted write to a BAR region; the device's bar_write runs at the
  /// delivery timestamp.
  MmioWriteResult cpu_mmio_write(Function& fn, u32 bar, BarOffset offset,
                                 u64 value, u32 size, sim::SimTime at);

  /// Configuration accesses (enumeration); timed like config TLPs.
  struct ConfigResult {
    u32 value = 0;
    sim::Duration cpu_stall{};
  };
  ConfigResult config_read(Function& fn, u16 offset);
  sim::Duration config_write(Function& fn, u16 offset, u32 value);

  // ---- endpoint-initiated accesses (used by DmaPort) -------------------------

  sim::SimTime endpoint_read(const Function& fn, sim::SimTime start,
                             HostAddr addr, ByteSpan out);
  sim::SimTime endpoint_read_burst(const Function& fn, sim::SimTime start,
                                   std::span<const DmaPort::ReadSegment> segs);
  DmaPort::WriteTiming endpoint_write(const Function& fn, sim::SimTime start,
                                      HostAddr addr, ConstByteSpan data);

 private:
  mem::HostMemory* memory_;
  LinkModel link_;
  std::vector<Function*> functions_;
  IrqSink irq_sink_;
  std::function<sim::Duration()> dma_read_jitter_;
  fault::FaultPlane* fault_ = nullptr;
};

}  // namespace vfpga::pcie
