// PCIe bus enumeration.
//
// Performs what the platform firmware + kernel PCI core do at boot for
// each attached function: read the IDs, size every BAR with the
// write-ones protocol, assign MMIO addresses from the host's PCI window,
// enable memory decoding and bus mastering, and index the capability
// chain. Drivers (virtio-pci-modern model, XDMA driver model) bind
// against the resulting EnumeratedDevice the same way Linux drivers bind
// against a struct pci_dev.
#pragma once

#include <optional>
#include <vector>

#include "vfpga/pcie/capabilities.hpp"
#include "vfpga/pcie/root_complex.hpp"

namespace vfpga::pcie {

struct EnumeratedBar {
  u32 index = 0;
  u64 address = 0;
  u64 size = 0;
  bool is_64bit = false;
};

struct EnumeratedCapability {
  CapabilityId id{};
  u16 config_offset = 0;
};

struct EnumeratedDevice {
  u32 function_index = 0;
  u16 vendor_id = 0;
  u16 device_id = 0;
  u16 subsystem_vendor_id = 0;
  u16 subsystem_id = 0;
  u8 revision = 0;
  std::vector<EnumeratedBar> bars;
  std::vector<EnumeratedCapability> capabilities;

  /// Total CPU time the enumeration of this device consumed (config
  /// round trips) — reported for completeness; enumeration is not on the
  /// measured data path.
  sim::Duration enumeration_time{};

  [[nodiscard]] std::optional<EnumeratedBar> bar(u32 index) const;
  [[nodiscard]] std::optional<u16> capability_offset(CapabilityId id) const;
};

struct EnumerationOptions {
  /// Base of the host's 32-bit MMIO allocation window.
  u64 mmio_window_base = 0xe000'0000ull;
  /// Alignment floor for BAR assignment (kernel uses page granularity).
  u64 min_alignment = 4096;
};

/// Enumerate every function attached to `rc`.
std::vector<EnumeratedDevice> enumerate_bus(RootComplex& rc,
                                            EnumerationOptions options = {});

}  // namespace vfpga::pcie
