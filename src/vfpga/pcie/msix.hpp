// MSI-X table model.
//
// The endpoint carries an MSI-X capability whose table lives in one of
// its BARs. The host "OS" programs each vector with an address in the
// MSI doorbell window and a message value; the device fires a vector by
// issuing a posted DMA write of the message to that address, which the
// root complex turns into an interrupt delivery. Masked vectors set the
// pending bit instead, and deliver when unmasked — the same semantics
// the Linux irqchip relies on.
#pragma once

#include <vector>

#include "vfpga/pcie/root_complex.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::migrate {
class StateWriter;
class StateReader;
}  // namespace vfpga::migrate

namespace vfpga::pcie {

/// Layout constants for one MSI-X table entry (PCIe spec 7.7.2).
inline constexpr u32 kMsixEntryBytes = 16;
inline constexpr u32 kMsixEntryAddrLo = 0;
inline constexpr u32 kMsixEntryAddrHi = 4;
inline constexpr u32 kMsixEntryData = 8;
inline constexpr u32 kMsixEntryControl = 12;
inline constexpr u32 kMsixControlMasked = 1u << 0;

class MsixTable {
 public:
  explicit MsixTable(u32 vector_count);

  [[nodiscard]] u32 size() const {
    return static_cast<u32>(entries_.size());
  }

  /// Table-aperture accesses (routed from the owning function's BAR).
  [[nodiscard]] u32 aperture_read(BarOffset offset) const;
  void aperture_write(BarOffset offset, u32 value, sim::SimTime at,
                      const DmaPort& port);

  /// Device-side: fire vector `index` at time `at`; a posted write goes
  /// out through `port`. Returns the time the message was delivered (or
  /// `at` when the vector is masked and only the pending bit was set).
  sim::SimTime fire(u32 index, sim::SimTime at, const DmaPort& port);

  [[nodiscard]] bool pending(u32 index) const;
  [[nodiscard]] bool masked(u32 index) const;

  /// Aperture size in bytes (for BAR layout).
  [[nodiscard]] u64 aperture_bytes() const {
    return static_cast<u64>(entries_.size()) * kMsixEntryBytes;
  }

  /// Snapshot/restore of the programmed vectors (address/data/mask/
  /// pending). The table size is structural and must already match.
  void save_state(migrate::StateWriter& w) const;
  void load_state(migrate::StateReader& r);

 private:
  struct Entry {
    u64 address = 0;
    u32 data = 0;
    bool masked = true;  // spec: vectors come up masked
    bool pending = false;
  };

  std::vector<Entry> entries_;
};

/// Body of the MSI-X capability (after the 2-byte header):
/// message control (table size - 1), table offset/BIR, PBA offset/BIR.
[[nodiscard]] Bytes make_msix_capability_body(u16 table_size, u8 table_bar,
                                              u32 table_offset, u8 pba_bar,
                                              u32 pba_offset);

}  // namespace vfpga::pcie
