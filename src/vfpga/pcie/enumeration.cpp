#include "vfpga/pcie/enumeration.hpp"

#include <algorithm>

#include "vfpga/common/contract.hpp"

namespace vfpga::pcie {

std::optional<EnumeratedBar> EnumeratedDevice::bar(u32 index) const {
  const auto it = std::find_if(bars.begin(), bars.end(),
                               [&](const EnumeratedBar& b) {
                                 return b.index == index;
                               });
  if (it == bars.end()) {
    return std::nullopt;
  }
  return *it;
}

std::optional<u16> EnumeratedDevice::capability_offset(CapabilityId id) const {
  const auto it = std::find_if(capabilities.begin(), capabilities.end(),
                               [&](const EnumeratedCapability& c) {
                                 return c.id == id;
                               });
  if (it == capabilities.end()) {
    return std::nullopt;
  }
  return it->config_offset;
}

std::vector<EnumeratedDevice> enumerate_bus(RootComplex& rc,
                                            EnumerationOptions options) {
  std::vector<EnumeratedDevice> devices;
  u64 next_mmio = options.mmio_window_base;

  for (u32 fn_index = 0; fn_index < rc.function_count(); ++fn_index) {
    Function& fn = rc.function(fn_index);
    EnumeratedDevice dev;
    dev.function_index = fn_index;
    sim::Duration spent{};

    const auto id_read = rc.config_read(fn, cfg::kVendorId);
    spent += id_read.cpu_stall;
    dev.vendor_id = static_cast<u16>(id_read.value & 0xffff);
    dev.device_id = static_cast<u16>(id_read.value >> 16);
    if (dev.vendor_id == 0xffff) {
      continue;  // no device decodes this function
    }
    const auto subsys = rc.config_read(fn, cfg::kSubsystemVendorId);
    spent += subsys.cpu_stall;
    dev.subsystem_vendor_id = static_cast<u16>(subsys.value & 0xffff);
    dev.subsystem_id = static_cast<u16>(subsys.value >> 16);
    const auto rev = rc.config_read(fn, cfg::kRevisionId);
    spent += rev.cpu_stall;
    dev.revision = static_cast<u8>(rev.value & 0xff);

    // ---- BAR sizing + assignment -------------------------------------------
    for (u32 bar = 0; bar < ConfigSpace::kMaxBars; ++bar) {
      const u16 reg = static_cast<u16>(cfg::kBar0 + 4 * bar);
      const u32 original = rc.config_read(fn, reg).value;
      spent += rc.config_write(fn, reg, 0xffffffffu);
      const u32 mask = rc.config_read(fn, reg).value;
      if (mask == 0) {
        continue;  // BAR not implemented
      }
      const bool is_64bit = (mask & 0x4) != 0;
      u64 size_mask = mask & ~0xfu;
      if (is_64bit) {
        const u16 high_reg = static_cast<u16>(reg + 4);
        spent += rc.config_write(fn, high_reg, 0xffffffffu);
        const u32 high_mask = rc.config_read(fn, high_reg).value;
        size_mask |= static_cast<u64>(high_mask) << 32;
        if ((size_mask >> 32) == 0) {
          size_mask |= ~0ull << 32;  // device decodes < 4 GiB: sign-extend
        }
      } else {
        size_mask |= ~0ull << 32;
      }
      const u64 size = ~size_mask + 1;

      const u64 alignment = std::max<u64>(size, options.min_alignment);
      const u64 address = (next_mmio + alignment - 1) & ~(alignment - 1);
      next_mmio = address + size;

      spent += rc.config_write(fn, reg, static_cast<u32>(address));
      if (is_64bit) {
        spent += rc.config_write(fn, static_cast<u16>(reg + 4),
                                 static_cast<u32>(address >> 32));
        ++bar;  // consumed the next register as the high half
      }
      (void)original;
      dev.bars.push_back(EnumeratedBar{bar - (is_64bit ? 1u : 0u), address,
                                       size, is_64bit});
    }

    // ---- capability chain ----------------------------------------------------
    const u16 status = fn.config().read16(cfg::kStatus);
    if ((status & cfg::kStatusCapList) != 0) {
      u16 ptr = fn.config().read8(cfg::kCapabilityPointer);
      for (int guard = 0; ptr != 0 && guard < 64; ++guard) {
        dev.capabilities.push_back(EnumeratedCapability{
            static_cast<CapabilityId>(fn.config().read8(ptr)), ptr});
        ptr = fn.config().read8(static_cast<u16>(ptr + 1));
      }
    }

    // ---- enable memory decode + bus mastering --------------------------------
    // Command and status share one dword; merge so the status bits
    // (notably the capability-list flag) survive the read-modify-write.
    const u32 cmd_status = rc.config_read(fn, cfg::kCommand).value;
    spent += rc.config_write(
        fn, cfg::kCommand,
        cmd_status | cfg::kCommandMemoryEnable | cfg::kCommandBusMaster);

    dev.enumeration_time = spent;
    devices.push_back(std::move(dev));
  }
  return devices;
}

}  // namespace vfpga::pcie
