#include "vfpga/pcie/link_model.hpp"

#include "vfpga/common/contract.hpp"

namespace vfpga::pcie {

sim::Duration LinkModel::tlp_wire_time(u64 payload) const {
  const double ns =
      static_cast<double>(payload + kTlpOverheadBytes) / config_.bytes_per_ns;
  return sim::from_nanos(ns);
}

sim::Duration LinkModel::one_way_latency() const {
  return config_.endpoint_pipeline + config_.phy_flight +
         config_.root_pipeline;
}

LinkModel::PostedTiming LinkModel::dma_write_time(u64 bytes) const {
  const u64 tlps = tlp_count(bytes, config_.limits.max_payload_size);
  sim::Duration wire{};
  u64 remaining = bytes;
  for (u64 i = 0; i < tlps; ++i) {
    const u64 chunk =
        remaining < config_.limits.max_payload_size
            ? remaining
            : config_.limits.max_payload_size;
    wire += tlp_wire_time(chunk);
    remaining -= chunk;
  }
  // The issuing engine streams the burst out of its FIFO: it is busy for
  // the serialization time; delivery adds the pipeline flight once.
  return PostedTiming{wire, wire + one_way_latency()};
}

sim::Duration LinkModel::dma_read_time(u64 bytes) const {
  VFPGA_EXPECTS(bytes > 0);
  // Request TLPs: reads are split at MRRS by the requester.
  const u64 requests = tlp_count(bytes, config_.limits.max_read_request);
  sim::Duration total = tlp_wire_time(0) * static_cast<i64>(requests);
  total += one_way_latency();        // request flight
  total += config_.host_memory_read; // completer fetches data
  // Completions are split at MPS.
  const u64 completions = tlp_count(bytes, config_.limits.max_payload_size);
  u64 remaining = bytes;
  for (u64 i = 0; i < completions; ++i) {
    const u64 chunk =
        remaining < config_.limits.max_payload_size
            ? remaining
            : config_.limits.max_payload_size;
    total += tlp_wire_time(chunk) + config_.completion_overhead;
    remaining -= chunk;
  }
  total += one_way_latency();  // completion flight
  return total;
}

sim::Duration LinkModel::dma_read_burst_time(u64 total_bytes,
                                             u64 segments) const {
  VFPGA_EXPECTS(segments > 0);
  return dma_read_time(total_bytes) +
         (tlp_wire_time(0) + config_.completion_overhead) *
             static_cast<i64>(segments - 1);
}

LinkModel::PostedTiming LinkModel::mmio_write_time(u64 bytes) const {
  // The CPU hands the write to the write-combining buffer / root port and
  // continues; a store to UC MMIO space still costs a pipeline drain.
  const sim::Duration cpu_cost = sim::nanoseconds(110);
  const sim::Duration delivered =
      cpu_cost + tlp_wire_time(bytes) + one_way_latency();
  return PostedTiming{cpu_cost, delivered};
}

sim::Duration LinkModel::mmio_read_time(u64 bytes) const {
  // Non-posted: request out, device register file access, completion back.
  return tlp_wire_time(0) + one_way_latency() + sim::nanoseconds(250) +
         tlp_wire_time(bytes) + one_way_latency();
}

sim::Duration LinkModel::config_access_time() const {
  // Config transactions crawl (low-priority path through the hard block).
  return mmio_read_time(4) + sim::nanoseconds(400);
}

}  // namespace vfpga::pcie
