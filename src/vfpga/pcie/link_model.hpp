// PCIe link timing model.
//
// Models the Gen2 x2 link of the Alinx AX7A200 board: 5 GT/s per lane,
// 8b/10b encoding => 8 Gb/s of usable bandwidth = 1 byte/ns. On top of
// raw serialization the model charges fixed pipeline latencies for the
// endpoint's PCIe hard block + XDMA bridge (several hundred ns on
// 7-series parts) and the root complex, plus host DRAM access time for
// DMA reads. Both FPGA designs in the paper use the same XDMA IP, so one
// shared LinkModel instance serves the VirtIO and the vendor testbeds —
// mirroring the paper's experimental control (§III-B.3).
//
// Timing composition rules:
//  * posted writes: the issuer is released after local posting; delivery
//    completes one_way_latency + serialization later.
//  * non-posted reads: the issuer blocks for the full round trip:
//    request serialization + EP/RC pipelines + memory access +
//    completion serialization (split at MPS) + pipelines back.
//  * multi-TLP bursts pipeline on the wire: total serialization is the
//    sum over TLPs, but pipeline latency is charged once.
#pragma once

#include "vfpga/pcie/tlp.hpp"
#include "vfpga/sim/time.hpp"

namespace vfpga::pcie {

struct LinkConfig {
  /// Usable link bandwidth after encoding, bytes per nanosecond.
  double bytes_per_ns = 1.0;
  TlpLimits limits{};

  /// Endpoint-internal latency (PCIe hard block + AXI bridge), one way.
  sim::Duration endpoint_pipeline = sim::nanoseconds(360);
  /// Root-complex-internal latency, one way.
  sim::Duration root_pipeline = sim::nanoseconds(170);
  /// Wire/PHY propagation + framing, one way.
  sim::Duration phy_flight = sim::nanoseconds(120);
  /// Host memory access latency for a DMA read completion.
  sim::Duration host_memory_read = sim::nanoseconds(220);
  /// Extra scheduling delay inside the completer per completion TLP
  /// (credit/tag handling) — small but measurable on 7-series.
  sim::Duration completion_overhead = sim::nanoseconds(40);
};

class LinkModel {
 public:
  LinkModel() = default;
  explicit LinkModel(LinkConfig config) : config_(config) {}

  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Serialization time of one TLP with `payload` data bytes.
  [[nodiscard]] sim::Duration tlp_wire_time(u64 payload) const;

  /// One-way latency excluding serialization (EP + wire + RC).
  [[nodiscard]] sim::Duration one_way_latency() const;

  /// Device-initiated posted write of `bytes` into host memory:
  /// returns {issuer_busy, delivery_complete} — the issuer can continue
  /// after issuer_busy; data is globally visible after delivery_complete.
  struct PostedTiming {
    sim::Duration issuer_busy;
    sim::Duration delivered;
  };
  [[nodiscard]] PostedTiming dma_write_time(u64 bytes) const;

  /// Device-initiated read of `bytes` from host memory (descriptor or
  /// payload fetch): full round-trip duration until the last completion
  /// lands in the device.
  [[nodiscard]] sim::Duration dma_read_time(u64 bytes) const;

  /// Device-initiated pipelined read of a scatter list totalling
  /// `total_bytes` across `segments` host regions: the requester keeps
  /// one outstanding tag per segment, so the pipeline flight and memory
  /// access are paid once for the burst while each extra segment adds
  /// its own request TLP and completion scheduling. Equals
  /// dma_read_time(total_bytes) for a single segment.
  [[nodiscard]] sim::Duration dma_read_burst_time(u64 total_bytes,
                                                  u64 segments) const;

  /// CPU MMIO posted write (doorbell/kick): CPU-visible cost and time
  /// until the write reaches device logic.
  [[nodiscard]] PostedTiming mmio_write_time(u64 bytes = 4) const;

  /// CPU MMIO read (status register): CPU stalls the full round trip.
  /// 7-series endpoints answer register reads in ~1 µs — this is what
  /// makes per-transfer status reads expensive for the vendor driver.
  [[nodiscard]] sim::Duration mmio_read_time(u64 bytes = 4) const;

  /// Configuration-space access (enumeration-time only; non-posted).
  [[nodiscard]] sim::Duration config_access_time() const;

 private:
  LinkConfig config_{};
};

}  // namespace vfpga::pcie
