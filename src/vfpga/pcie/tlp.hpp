// PCIe transaction-layer packet (TLP) vocabulary.
//
// The simulator is transaction-level: we do not serialize TLP bit images,
// but every host<->device interaction is classified as a TLP exchange so
// the link model can charge the right wire time (header + payload at the
// effective line rate, MPS/MRRS splitting, posted vs non-posted
// semantics). The classification below matches PCIe Base Spec r3.0 ch. 2.
#pragma once

#include "vfpga/common/types.hpp"

namespace vfpga::pcie {

/// Transaction kinds the models exchange.
enum class TlpKind {
  MemoryRead,       ///< MRd — non-posted; completer returns CplD
  MemoryWrite,      ///< MWr — posted
  CompletionData,   ///< CplD — carries read data back
  ConfigRead,       ///< CfgRd0 — non-posted
  ConfigWrite,      ///< CfgWr0 — non-posted (completion without data)
  Message,          ///< Msg — e.g. interrupt emulation; posted
};

[[nodiscard]] constexpr bool is_posted(TlpKind kind) {
  return kind == TlpKind::MemoryWrite || kind == TlpKind::Message;
}

/// Wire overhead of one TLP at the physical layer, bytes:
/// STP(1) + sequence(2) + header(12 or 16) + ECRC(0) + LCRC(4) + END(1).
/// We use the 64-bit-address 4DW header uniformly (20 B) => 28 B total,
/// rounded to 28; config/completions use 3DW (24 B). The 4 B difference
/// is far below the noise floor, so a single constant is used.
inline constexpr u64 kTlpOverheadBytes = 26;

/// Maximum payload/read-request sizes negotiated at link training.
/// Artix-7 XDMA Gen2 x2 endpoints advertise MPS=256 B; hosts commonly
/// program MRRS=512 B.
struct TlpLimits {
  u32 max_payload_size = 256;
  u32 max_read_request = 512;
};

/// Number of TLPs needed to move `bytes` of payload given a per-TLP cap.
[[nodiscard]] constexpr u64 tlp_count(u64 bytes, u32 per_tlp_cap) {
  if (bytes == 0) {
    return 1;  // zero-length read/write still needs one TLP
  }
  return (bytes + per_tlp_cap - 1) / per_tlp_cap;
}

}  // namespace vfpga::pcie
