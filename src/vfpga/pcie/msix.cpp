#include "vfpga/pcie/msix.hpp"

#include <array>

#include "vfpga/common/contract.hpp"
#include "vfpga/common/endian.hpp"
#include "vfpga/migrate/state_io.hpp"

namespace vfpga::pcie {

MsixTable::MsixTable(u32 vector_count) : entries_(vector_count) {
  VFPGA_EXPECTS(vector_count >= 1 && vector_count <= 2048);
}

u32 MsixTable::aperture_read(BarOffset offset) const {
  const u64 index = offset / kMsixEntryBytes;
  const u64 field = offset % kMsixEntryBytes;
  VFPGA_EXPECTS(index < entries_.size());
  const Entry& e = entries_[index];
  switch (field) {
    case kMsixEntryAddrLo:
      return static_cast<u32>(e.address & 0xffffffffu);
    case kMsixEntryAddrHi:
      return static_cast<u32>(e.address >> 32);
    case kMsixEntryData:
      return e.data;
    case kMsixEntryControl:
      return e.masked ? kMsixControlMasked : 0;
    default:
      VFPGA_UNREACHABLE("misaligned MSI-X table access");
  }
}

void MsixTable::aperture_write(BarOffset offset, u32 value, sim::SimTime at,
                               const DmaPort& port) {
  const u64 index = offset / kMsixEntryBytes;
  const u64 field = offset % kMsixEntryBytes;
  VFPGA_EXPECTS(index < entries_.size());
  Entry& e = entries_[index];
  switch (field) {
    case kMsixEntryAddrLo:
      e.address = (e.address & ~0xffffffffull) | value;
      break;
    case kMsixEntryAddrHi:
      e.address = (e.address & 0xffffffffull) | (static_cast<u64>(value) << 32);
      break;
    case kMsixEntryData:
      e.data = value;
      break;
    case kMsixEntryControl: {
      const bool was_masked = e.masked;
      e.masked = (value & kMsixControlMasked) != 0;
      if (was_masked && !e.masked && e.pending) {
        e.pending = false;
        fire(static_cast<u32>(index), at, port);
      }
      break;
    }
    default:
      VFPGA_UNREACHABLE("misaligned MSI-X table access");
  }
}

sim::SimTime MsixTable::fire(u32 index, sim::SimTime at, const DmaPort& port) {
  VFPGA_EXPECTS(index < entries_.size());
  Entry& e = entries_[index];
  if (e.masked) {
    e.pending = true;
    return at;
  }
  std::array<u8, 4> message{};
  store_le32(message, 0, e.data);
  return port.write(at, e.address, message).delivered;
}

bool MsixTable::pending(u32 index) const {
  VFPGA_EXPECTS(index < entries_.size());
  return entries_[index].pending;
}

bool MsixTable::masked(u32 index) const {
  VFPGA_EXPECTS(index < entries_.size());
  return entries_[index].masked;
}

Bytes make_msix_capability_body(u16 table_size, u8 table_bar, u32 table_offset,
                                u8 pba_bar, u32 pba_offset) {
  // The message-control field encodes (table_size - 1) in 11 bits; a
  // larger table cannot be advertised, so reject it loudly instead of
  // masking the size down and silently aliasing vectors.
  VFPGA_EXPECTS(table_size >= 1 && table_size <= 2048);
  VFPGA_EXPECTS((table_offset & 0x7) == 0 && (pba_offset & 0x7) == 0);
  Bytes body(10, 0);
  ByteSpan s{body};
  store_le16(s, 0, static_cast<u16>(table_size - 1));
  store_le32(s, 2, table_offset | table_bar);
  store_le32(s, 6, pba_offset | pba_bar);
  return body;
}

void MsixTable::save_state(migrate::StateWriter& w) const {
  w.put_u32(static_cast<u32>(entries_.size()));
  for (const Entry& e : entries_) {
    w.put_u64(e.address);
    w.put_u32(e.data);
    w.put_bool(e.masked);
    w.put_bool(e.pending);
  }
}

void MsixTable::load_state(migrate::StateReader& r) {
  const u32 count = r.get_u32();
  if (count != entries_.size()) {
    r.fail();
    return;
  }
  for (Entry& e : entries_) {
    e.address = r.get_u64();
    e.data = r.get_u32();
    e.masked = r.get_bool();
    e.pending = r.get_bool();
  }
}

}  // namespace vfpga::pcie
