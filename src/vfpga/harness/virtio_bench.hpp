// VirtIO round-trip measurement runner (paper §III-B.1 test program).
#pragma once

#include "vfpga/harness/experiment.hpp"

namespace vfpga::harness {

/// Run `iterations` UDP echo round trips at one payload size on a fresh
/// testbed seeded with `seed`. The cell's software time is computed the
/// paper's way: measured total minus the FPGA performance-counter
/// interval minus the response-generation time (§IV-B).
CellResult run_virtio_cell(const ExperimentConfig& config, u64 payload,
                           u64 seed);

/// Full payload sweep (sequential).
SweepResult run_virtio_sweep(const ExperimentConfig& config);

}  // namespace vfpga::harness
