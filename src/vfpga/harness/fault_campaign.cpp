#include "vfpga/harness/fault_campaign.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "vfpga/common/contract.hpp"
#include "vfpga/net/rss.hpp"

namespace vfpga::harness {

namespace {

/// Deterministic per-op payload so a stale echo from a retransmitted
/// earlier request can never satisfy a later one.
Bytes make_payload(u64 bytes, u64 run_seed, u32 op) {
  Bytes payload(bytes);
  sim::SplitMix64 gen{run_seed * 1315423911ull + op};
  for (auto& b : payload) {
    b = static_cast<u8>(gen.next());
  }
  return payload;
}

bool payload_matches(ConstByteSpan expected, ConstByteSpan got) {
  return expected.size() == got.size() &&
         std::equal(expected.begin(), expected.end(), got.begin());
}

/// Outcome of one operation driven through the recovery machinery.
struct OpOutcome {
  bool ok = false;
  bool recovered = false;  ///< at least one failed attempt preceded success
  sim::Duration recovery{};
};

/// One UDP echo with the full recovery ladder: blocking receive,
/// then (on timeout / mismatch) TX watchdog + interrupt-less RX poll,
/// then retransmission, bounded by attempts and simulated time.
OpOutcome udp_echo_op(core::VirtioNetTestbed& bed, hostos::UdpSocket& sock,
                      ConstByteSpan payload, const CampaignConfig& config) {
  hostos::HostThread& t = bed.thread();
  const sim::SimTime op_start = t.now();
  OpOutcome outcome;
  std::optional<sim::SimTime> first_failure;

  const auto fail_detected = [&] {
    if (!first_failure.has_value()) {
      first_failure = t.now();
    }
  };
  const auto accept = [&] {
    outcome.ok = true;
    if (first_failure.has_value()) {
      outcome.recovered = true;
      outcome.recovery = t.now() - *first_failure;
    }
  };

  for (u32 attempt = 0; attempt < config.max_op_attempts; ++attempt) {
    if (t.now() - op_start >= config.op_time_bound) {
      return outcome;  // liveness bound blown: hang
    }
    if (!sock.sendto(t, bed.fpga_ip(), bed.options().fpga_udp_port,
                     payload)) {
      fail_detected();
      (void)bed.driver().tx_watchdog(t);
      continue;
    }
    // A few receive attempts per transmission: stale echoes from earlier
    // retries are drained and discarded by the payload comparison.
    for (u32 rx_try = 0; rx_try < 4; ++rx_try) {
      const auto reply = sock.recvfrom(t);
      if (reply.has_value() && payload_matches(payload, reply->payload)) {
        accept();
        return outcome;
      }
      fail_detected();  // timeout, or a detected-corrupt/stale echo
      // Recovery ladder: reclaim/kick/reset through the TX watchdog and
      // pick up completions whose notify was lost.
      const auto action = bed.driver().tx_watchdog(t);
      if (bed.stack().poll_rx(t) > 0) {
        continue;  // harvested something without an interrupt: re-check
      }
      if (action == hostos::VirtioNetDriver::WatchdogAction::kReset) {
        break;  // in-flight chains are gone; retransmit
      }
    }
  }
  return outcome;
}

/// One chardev write+read round trip. XdmaHostDriver::run_channel does
/// its own halt-clearing retries; op-level retries cover detected
/// payload mismatches (poisoned DMA).
OpOutcome chardev_op(core::XdmaTestbed& bed, const CampaignConfig& config,
                     u64* injected_before) {
  hostos::HostThread& t = bed.thread();
  const sim::SimTime op_start = t.now();
  OpOutcome outcome;
  for (u32 attempt = 0; attempt < config.max_op_attempts; ++attempt) {
    if (t.now() - op_start >= config.op_time_bound) {
      return outcome;
    }
    const auto rt = bed.write_read_round_trip(config.xdma_bytes);
    if (rt.ok) {
      outcome.ok = true;
      const u64 injected_now =
          bed.fault_plane() ? bed.fault_plane()->total_injected() : 0;
      if (attempt > 0 || injected_now != *injected_before) {
        // The fault hit inside the driver's own retry loop (or forced a
        // whole-op retry): report the op duration as the recovery
        // latency — detection happens inside the blocking transfer.
        outcome.recovered = true;
        outcome.recovery = t.now() - op_start;
      }
      *injected_before = injected_now;
      return outcome;
    }
  }
  return outcome;
}

ClassReport run_udp_class(fault::FaultClass cls, const CampaignConfig& config,
                          bool indirect_datapath = false) {
  ClassReport report;
  report.cls = cls;
  report.workload = indirect_datapath ? "udp-indir" : "udp-echo";
  for (u64 run = 0; run < config.runs_per_class; ++run) {
    core::TestbedOptions options;
    options.seed = config.base_seed + run;
    options.fault.seed = config.base_seed * 7919 + run;
    options.fault.set_rate(cls, config.fault_rate);
    if (indirect_datapath) {
      // Put indirect tables on the hot path so the class has
      // opportunities to fire (the default TX path never posts one).
      options.datapath.tx_path =
          hostos::VirtioNetDriver::TxPath::kScatterGatherIndirect;
    }
    core::VirtioNetTestbed bed{options};
    ++report.runs;

    for (u32 op = 0; op < config.ops_per_run; ++op) {
      const Bytes payload = make_payload(config.udp_payload_bytes,
                                         options.seed, op);
      const OpOutcome outcome =
          udp_echo_op(bed, bed.socket(), payload, config);
      if (!outcome.ok) {
        ++report.hangs;
        // The run cannot meaningfully continue past a hang.
        break;
      }
      if (outcome.recovered) {
        ++report.recoveries;
        report.recovery_us.add(outcome.recovery);
      }
    }

    // Steady-state proof: disarm the plane, drain any stragglers, then
    // every op must complete without recovery actions.
    bed.fault_plane()->set_armed(false);
    (void)bed.driver().tx_watchdog(bed.thread());
    (void)bed.stack().poll_rx(bed.thread());
    while (bed.socket().recvfrom_nonblock(bed.thread()).has_value()) {
    }
    for (u32 op = 0; op < config.clean_ops; ++op) {
      const Bytes payload = make_payload(config.udp_payload_bytes,
                                         options.seed, 0x1000u + op);
      const OpOutcome outcome =
          udp_echo_op(bed, bed.socket(), payload, config);
      if (!outcome.ok || outcome.recovered) {
        ++report.steady_state_failures;
      }
    }
    report.injected += bed.fault_plane()->injected(cls);
    report.device_resets += bed.driver().device_resets();
  }
  return report;
}

/// Multi-queue variant of the UDP workload: a 4-pair testbed with one
/// socket per pair (source ports searched so every queue carries ops,
/// round-robin). Exercises the per-queue recovery paths — a diverted
/// echo (steering-table corruption) or a swallowed per-queue MSI-X
/// message is picked up by the interrupt-less poll across all pairs,
/// and a run of diverted flows triggers the netstack's steering-table
/// reset (a control-queue command, not a device reset).
ClassReport run_udp_mq_class(fault::FaultClass cls,
                             const CampaignConfig& config) {
  constexpr u16 kPairs = 4;
  ClassReport report;
  report.cls = cls;
  report.workload = "udp-mq";
  for (u64 run = 0; run < config.runs_per_class; ++run) {
    core::TestbedOptions options;
    options.seed = config.base_seed + run;
    options.fault.seed = config.base_seed * 15485863 + run;
    options.fault.set_rate(cls, config.fault_rate);
    options.net.max_queue_pairs = kPairs;
    options.requested_queue_pairs = kPairs;
    core::VirtioNetTestbed bed{options};
    ++report.runs;

    std::vector<std::unique_ptr<hostos::UdpSocket>> socks;
    u16 next_port = 30'000;
    for (u16 p = 0; p < kPairs; ++p) {
      u16 port = next_port;
      while (net::steer(
                 net::rss_flow_hash(bed.stack().config().host_ip, port,
                                    bed.fpga_ip(),
                                    bed.options().fpga_udp_port),
                 kPairs) != p) {
        ++port;
      }
      next_port = static_cast<u16>(port + 1);
      socks.push_back(std::make_unique<hostos::UdpSocket>(bed.stack(), port));
    }

    for (u32 op = 0; op < config.ops_per_run; ++op) {
      const Bytes payload = make_payload(config.udp_payload_bytes,
                                         options.seed, op);
      const OpOutcome outcome =
          udp_echo_op(bed, *socks[op % kPairs], payload, config);
      if (!outcome.ok) {
        ++report.hangs;
        break;
      }
      if (outcome.recovered) {
        ++report.recoveries;
        report.recovery_us.add(outcome.recovery);
      }
    }

    bed.fault_plane()->set_armed(false);
    (void)bed.driver().tx_watchdog(bed.thread());
    (void)bed.stack().poll_rx(bed.thread());
    for (auto& sock : socks) {
      while (sock->recvfrom_nonblock(bed.thread()).has_value()) {
      }
    }
    for (u32 op = 0; op < config.clean_ops; ++op) {
      const Bytes payload = make_payload(config.udp_payload_bytes,
                                         options.seed, 0x1000u + op);
      const OpOutcome outcome =
          udp_echo_op(bed, *socks[op % kPairs], payload, config);
      if (!outcome.ok || outcome.recovered) {
        ++report.steady_state_failures;
      }
    }
    report.injected += bed.fault_plane()->injected(cls);
    report.device_resets += bed.driver().device_resets();
  }
  return report;
}

ClassReport run_chardev_class(fault::FaultClass cls,
                              const CampaignConfig& config) {
  ClassReport report;
  report.cls = cls;
  report.workload = "chardev";
  for (u64 run = 0; run < config.runs_per_class; ++run) {
    core::TestbedOptions options;
    options.seed = config.base_seed + run;
    options.fault.seed = config.base_seed * 104729 + run;
    options.fault.set_rate(cls, config.fault_rate);
    core::XdmaTestbed bed{options};
    ++report.runs;

    u64 injected_before = 0;
    for (u32 op = 0; op < config.ops_per_run; ++op) {
      const OpOutcome outcome = chardev_op(bed, config, &injected_before);
      if (!outcome.ok) {
        ++report.hangs;
        break;
      }
      if (outcome.recovered) {
        ++report.recoveries;
        report.recovery_us.add(outcome.recovery);
      }
    }

    bed.fault_plane()->set_armed(false);
    for (u32 op = 0; op < config.clean_ops; ++op) {
      u64 before = bed.fault_plane()->total_injected();
      const OpOutcome outcome = chardev_op(bed, config, &before);
      if (!outcome.ok || outcome.recovered) {
        ++report.steady_state_failures;
      }
    }
    report.injected += bed.fault_plane()->injected(cls);
    report.device_resets += bed.driver().engine_restarts();
  }
  return report;
}

/// One blk write+readback+verify round trip through the blocking sector
/// API. The driver's own recovery (lost-interrupt visibility fallback)
/// is invisible here except through irq_recoveries(); a device-reported
/// IOERR (rejected corrupt header, backing-store timeout) surfaces as a
/// false return and is retried at op level.
OpOutcome blk_io_op(core::VirtioNetTestbed& bed, u64 sector,
                    ConstByteSpan payload, const CampaignConfig& config,
                    u64* corruptions) {
  hostos::HostThread& t = bed.thread();
  hostos::VirtioBlkDriver& drv = bed.blk_driver();
  const sim::SimTime op_start = t.now();
  const u64 recoveries_before = drv.irq_recoveries();
  OpOutcome outcome;
  bool failed_attempt = false;
  for (u32 attempt = 0; attempt < config.max_op_attempts; ++attempt) {
    if (t.now() - op_start >= config.op_time_bound) {
      return outcome;  // liveness bound blown: hang
    }
    if (!drv.write_sectors(t, sector, payload)) {
      failed_attempt = true;
      continue;
    }
    Bytes readback(payload.size());
    if (!drv.read_sectors(t, sector, readback)) {
      failed_attempt = true;
      continue;
    }
    if (!payload_matches(payload, readback)) {
      // Status byte said OK but the data is wrong — the silent
      // corruption the recovery paths must never produce.
      ++*corruptions;
      failed_attempt = true;
      continue;
    }
    outcome.ok = true;
    if (failed_attempt || drv.irq_recoveries() != recoveries_before) {
      outcome.recovered = true;
      outcome.recovery = t.now() - op_start;
    }
    return outcome;
  }
  return outcome;
}

/// The blk storage classes against a write/readback/flush workload on
/// the attached virtio-blk function (interrupt completion path — the
/// one kBlkIrqLost targets).
ClassReport run_blk_class(fault::FaultClass cls, const CampaignConfig& config) {
  ClassReport report;
  report.cls = cls;
  report.workload = "blk-io";
  constexpr u64 kIoBytes = 4 * virtio::blk::kSectorBytes;
  constexpr u64 kIoSectors = kIoBytes / virtio::blk::kSectorBytes;
  for (u64 run = 0; run < config.runs_per_class; ++run) {
    core::TestbedOptions options;
    options.seed = config.base_seed + run;
    options.fault.seed = config.base_seed * 6700417 + run;
    options.fault.set_rate(cls, config.fault_rate);
    options.attach_blk = true;
    options.blk.capacity_sectors = 512;
    // Aggressive backing-store deadline so a timeout-faulted request is
    // detected and retried well inside op_time_bound even when the
    // class fires on several attempts of the same op.
    options.blk.backing_timeout_cycles = 250'000;
    core::VirtioNetTestbed bed{options};
    ++report.runs;

    const auto one_op = [&](u32 op) {
      const Bytes payload = make_payload(kIoBytes, options.seed, op);
      const u64 sector =
          (u64{op} * 37) % (options.blk.capacity_sectors - kIoSectors);
      return blk_io_op(bed, sector, payload, config, &report.corruptions);
    };

    for (u32 op = 0; op < config.ops_per_run; ++op) {
      const OpOutcome outcome = one_op(op);
      if (!outcome.ok) {
        ++report.hangs;
        break;
      }
      if (outcome.recovered) {
        ++report.recoveries;
        report.recovery_us.add(outcome.recovery);
      }
      // Periodic write barrier so the flush path is under fire too. A
      // faulted FLUSH reports IOERR and is simply retried.
      if (op % 4 == 3) {
        bool flushed = false;
        for (u32 a = 0; a < config.max_op_attempts && !flushed; ++a) {
          flushed = bed.blk_driver().flush(bed.thread());
        }
        if (!flushed) {
          ++report.hangs;
          break;
        }
      }
    }

    bed.fault_plane()->set_armed(false);
    for (u32 op = 0; op < config.clean_ops; ++op) {
      const OpOutcome outcome = one_op(0x1000u + op);
      if (!outcome.ok || outcome.recovered) {
        ++report.steady_state_failures;
      }
    }
    report.injected += bed.fault_plane()->injected(cls);
  }
  return report;
}

}  // namespace

CampaignConfig CampaignConfig::from_env() {
  CampaignConfig config;
  if (const char* runs = std::getenv("VFPGA_CAMPAIGN_RUNS")) {
    const long long v = std::atoll(runs);
    if (v > 0) {
      config.runs_per_class = static_cast<u64>(v);
    }
  }
  if (const char* ops = std::getenv("VFPGA_CAMPAIGN_OPS")) {
    const long long v = std::atoll(ops);
    if (v > 0) {
      config.ops_per_run = static_cast<u32>(v);
    }
  }
  if (const char* rate = std::getenv("VFPGA_CAMPAIGN_RATE")) {
    const double v = std::atof(rate);
    if (v > 0.0 && v < 1.0) {
      config.fault_rate = v;
    }
  }
  if (const char* seed = std::getenv("VFPGA_SEED")) {
    const long long v = std::atoll(seed);
    if (v > 0) {
      config.base_seed = static_cast<u64>(v);
    }
  }
  return config;
}

bool CampaignResult::ok() const {
  for (const ClassReport& report : classes) {
    if (!report.ok()) {
      return false;
    }
  }
  return !classes.empty();
}

CampaignResult run_fault_campaign(const CampaignConfig& config) {
  using fault::FaultClass;
  CampaignResult result;
  // Every fault class the VirtIO datapath can observe, against the
  // UDP-echo workload.
  for (const FaultClass cls :
       {FaultClass::kTlpDrop, FaultClass::kTlpCorrupt, FaultClass::kDmaPoison,
        FaultClass::kDescCorrupt, FaultClass::kUsedWriteFail,
        FaultClass::kNotifyLost, FaultClass::kNotifyDup}) {
    result.classes.push_back(run_udp_class(cls, config));
  }
  // Indirect-table corruption against the UDP workload with the
  // scatter-gather-indirect TX path negotiated (otherwise no indirect
  // table is ever fetched and the class would trivially pass).
  result.classes.push_back(run_udp_class(FaultClass::kIndirectCorrupt, config,
                                         /*indirect_datapath=*/true));
  // The multi-queue-only classes against the 4-pair UDP workload.
  for (const FaultClass cls :
       {FaultClass::kSteeringCorrupt, FaultClass::kQueueIrqLost}) {
    result.classes.push_back(run_udp_mq_class(cls, config));
  }
  // The DMA/engine classes against the character-device workload.
  for (const FaultClass cls : {FaultClass::kEngineHalt,
                               FaultClass::kNotifyLost,
                               FaultClass::kDmaPoison}) {
    result.classes.push_back(run_chardev_class(cls, config));
  }
  // The storage classes against the virtio-blk write/readback workload.
  for (const FaultClass cls :
       {FaultClass::kBlkHeaderCorrupt, FaultClass::kBlkIrqLost,
        FaultClass::kBlkBackingTimeout}) {
    result.classes.push_back(run_blk_class(cls, config));
  }
  return result;
}

void print_campaign_report(const CampaignResult& result) {
  std::printf(
      "%-18s %-9s %6s %9s %6s %8s %7s %7s %12s %12s\n", "fault-class",
      "workload", "runs", "injected", "hangs", "corrupt", "resets", "recov",
      "rec-p50(us)", "rec-p99(us)");
  for (const ClassReport& r : result.classes) {
    const bool has_samples = !r.recovery_us.empty();
    std::printf("%-18s %-9s %6llu %9llu %6llu %8llu %7llu %7llu ",
                fault::fault_class_name(r.cls), r.workload.c_str(),
                static_cast<unsigned long long>(r.runs),
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.hangs),
                static_cast<unsigned long long>(r.corruptions),
                static_cast<unsigned long long>(r.device_resets),
                static_cast<unsigned long long>(r.recoveries));
    if (has_samples) {
      std::printf("%12.2f %12.2f\n", r.recovery_us.percentile(50.0),
                  r.recovery_us.percentile(99.0));
    } else {
      std::printf("%12s %12s\n", "-", "-");
    }
    if (r.steady_state_failures != 0) {
      std::printf("  !! %llu steady-state failure(s) after disarm\n",
                  static_cast<unsigned long long>(r.steady_state_failures));
    }
  }
  std::printf("campaign: %s\n", result.ok() ? "PASS" : "FAIL");
}

}  // namespace vfpga::harness
