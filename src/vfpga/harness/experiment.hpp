// Experiment configuration shared by all paper-reproduction benches.
#pragma once

#include <string>
#include <vector>

#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace vfpga::harness {

struct ExperimentConfig {
  /// Paper §III-B.3: "Each test consists of 50,000 packets for each
  /// payload size." Override with VFPGA_ITERATIONS for quick runs.
  u64 iterations = 50'000;
  u64 warmup = 64;
  u64 seed = 2024;
  /// The paper's payload sweep (Figs. 3-5, Table I).
  std::vector<u64> payloads = {64, 128, 256, 512, 1024};
  core::TestbedOptions testbed{};

  /// Apply VFPGA_ITERATIONS / VFPGA_SEED environment overrides.
  static ExperimentConfig from_env();
};

/// Per-round-trip measurements for one (driver, payload) cell.
struct CellResult {
  u64 payload = 0;
  stats::SampleSet total_us;
  stats::SampleSet hardware_us;
  stats::SampleSet software_us;  ///< total - hardware - response_gen
  u64 failures = 0;
};

/// A full sweep for one driver.
struct SweepResult {
  std::string driver_name;
  std::vector<CellResult> cells;
};

}  // namespace vfpga::harness
