// Large-payload streaming workload over the zero-copy datapath.
//
// Sweeps jumbo UDP payloads (1 KB..60 KB) through the echo testbed in
// six TX/RX shapes — the legacy bounce-copy path, the zero-copy
// scatter-gather paths (chained descriptors, one-slot indirect tables,
// indirect + mergeable RX buffers), and two wire-MTU segmentation cells
// (software GSO vs the HOST_UFO/GUEST_UFO device offload) — on both
// ring formats. Each cell reports goodput (Gb/s, both directions) and
// the round-trip latency distribution; the bench gates on the expected
// orderings indirect >= chained >= copy and tso >= seg-sw at 4 KB and
// above, plus tso >= indirect from 16 KB.
#pragma once

#include <vector>

#include "vfpga/core/testbed.hpp"
#include "vfpga/stats/summary.hpp"

namespace vfpga::harness {

/// The datapath shapes the streaming sweep compares.
enum class StreamMode : u8 {
  kCopy,       ///< bounce-copy TX (copy charged), single-buffer RX
  kChained,    ///< zero-copy sg TX as a chained descriptor list
  kIndirect,   ///< zero-copy sg TX via one-slot indirect tables
  kMergeable,  ///< indirect TX + mergeable RX buffer spans
  /// Wire-MTU software GSO: the host slices every over-MTU datagram
  /// into MTU-sized wire frames (per-segment header/checksum work on
  /// the CPU) and the application reassembles the echoed train.
  kSegmentedSw,
  /// Wire-MTU device offload: HOST_UFO superframe TX (the device's GSO
  /// engine segments on the fabric) + GUEST_UFO GRO RX (the echoed
  /// train returns as one coalesced superframe with DATA_VALID).
  kOffload,
};

[[nodiscard]] const char* stream_mode_name(StreamMode mode);

struct StreamingConfig {
  /// Measured round trips per cell (VFPGA_ITERATIONS overrides).
  u64 iterations = 400;
  u64 warmup = 8;
  u64 seed = 2024;
  /// Jumbo payload sweep; the top size approaches the IPv4 limit.
  std::vector<u64> payloads = {1024, 4096, 16384, 61440};
  /// Device MTU for the jumbo testbed (frame capacity derives from it).
  u16 mtu = 63000;
  /// Wire MTU for the segmentation-offload cells: seg-sw and tso run at
  /// the paper's 1500 instead of lifting the MTU out of the way.
  u16 wire_mtu = 1500;
  /// Per-RX-buffer size in the mergeable cell.
  u32 mrg_buffer_bytes = 4096;
  /// Worker threads for run_streaming_sweep's lanes; 0 =
  /// worker_threads(). VFPGA_THREADS still overrides (env > this > hw).
  unsigned threads = 0;

  static StreamingConfig from_env();
};

struct StreamingCellResult {
  StreamMode mode = StreamMode::kCopy;
  bool packed = false;
  u64 payload = 0;
  /// Application goodput over the measured window, counting payload
  /// bytes in both directions.
  double gbps = 0.0;
  stats::SampleSet rtt_us;
  u64 failures = 0;
  u64 tx_sg_segments = 0;
  u64 rx_merged_frames = 0;
  bool mergeable_negotiated = false;
  bool tso_negotiated = false;
  /// GSO superframes the stack handed the device / wire frames the
  /// software fallback produced on the host.
  u64 tx_superframes = 0;
  u64 sw_gso_segments = 0;
  /// Device-side: segment trains the GRO engine coalesced back; driver
  /// side: superframes that arrived with GSO metadata on RX.
  u64 gro_coalesced = 0;
  u64 rx_gro_frames = 0;
};

/// Run one (mode, ring format, payload) streaming cell on a fresh
/// jumbo-MTU testbed.
StreamingCellResult run_streaming_cell(const StreamingConfig& config,
                                       StreamMode mode, bool packed,
                                       u64 payload);

struct StreamingSweepResult {
  /// Every (packed, payload, mode) cell in canonical sweep order:
  /// packed-major ({split, packed}), then payload, then the six modes
  /// in enum order. Each cell's numbers are identical to a standalone
  /// run_streaming_cell call — the lanes change where cells execute,
  /// never what they compute.
  std::vector<StreamingCellResult> cells;

  // ---- lane-set execution (deterministic at any thread count) -------
  u64 lane_windows = 0;
  u64 lane_window_growths = 0;
  u64 lane_messages = 0;
  /// Cell-completion messages lane 0 executed — must equal cells.size().
  u32 cells_aggregated = 0;
};

/// Run the full sweep with cells sharded across event lanes: a fixed
/// lane count (independent of the worker pool), each lane advancing its
/// cells one round-trip batch per event, testbeds built lane-side in
/// the parallel phase and released as cells finish. Bit-identical at
/// any thread count.
StreamingSweepResult run_streaming_sweep(const StreamingConfig& config);

}  // namespace vfpga::harness
