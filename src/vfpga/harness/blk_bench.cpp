#include "vfpga/harness/blk_bench.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "vfpga/common/contract.hpp"
#include "vfpga/harness/parallel.hpp"
#include "vfpga/reactor/reactor.hpp"
#include "vfpga/sim/event_lane.hpp"

namespace vfpga::harness {

namespace {

/// Sector stride between consecutive ops — co-prime with any power-of-
/// two capacity, so the workload sweeps the whole store and the seek
/// cost model sees realistic head movement.
constexpr u64 kSectorStride = 173;

struct CellRuntime {
  core::VirtioNetTestbed* bed = nullptr;
  hostos::VirtioBlkDriver* drv = nullptr;
  u32 payload = 0;
  u16 depth = 0;
  Bytes write_buf;
  u64 capacity_sectors = 0;
  u32 next_op = 0;  ///< global op index, carried across phases

  bool submit_one() {
    hostos::HostThread& t = bed->thread();
    const u64 io_sectors = payload / virtio::blk::kSectorBytes;
    const u64 sector =
        (u64{next_op} * kSectorStride) % (capacity_sectors - io_sectors);
    const std::optional<u32> slot =
        (next_op % 2 == 0)
            ? drv->submit_write(t, 0, sector, write_buf)
            : drv->submit_read(t, 0, sector, payload);
    if (!slot.has_value()) {
      return false;
    }
    ++next_op;
    return true;
  }

  u32 warmup = 0;    ///< completions to discard before recording latency
  u32 measured = 0;  ///< completions recorded so far

  /// Completions pop in used-ring order; the first `warmup` are the
  /// pipeline-fill ramp and stay out of the latency distribution. IOPS
  /// is deliberately NOT derived from completed_at stamps: the engine
  /// runs ahead of the host, so an interrupt-mode drain clusters a
  /// whole depth of completions on one wake timestamp and any
  /// stamp-bounded window is off by up to a batch. The cell instead
  /// spans the full closed loop on the host clock, where the boundary
  /// batches amortize over the op count.
  void record(const hostos::VirtioBlkDriver::Completion& c,
              BlkCellResult* result) {
    if (warmup > 0) {
      --warmup;
      return;
    }
    ++measured;
    result->latency_us.add(c.completed_at - c.submitted_at);
    if (c.status != virtio::blk::kStatusOk) {
      ++result->failures;
    }
  }
};

/// One (mode, payload, depth) cell as a resumable state machine: the
/// lane sweep advances a cell one completion batch per scheduler event,
/// so a lane multiplexes many cells without nesting their simulations.
/// run_blk_cell just drives the same machine to completion in a loop —
/// chunk boundaries never touch the testbed clock, so both paths
/// compute identical numbers.
class CellRun {
 public:
  CellRun(const BlkBenchConfig& config, BlkCompletionMode mode, u32 payload,
          u16 queue_depth)
      : config_(config), mode_(mode) {
    VFPGA_EXPECTS(payload % virtio::blk::kSectorBytes == 0);
    VFPGA_EXPECTS(config.warmup_ops > 0);
    result_.mode = mode;
    result_.payload = payload;
    result_.queue_depth = queue_depth;
    rt_.payload = payload;
    rt_.depth = queue_depth;
  }

  /// Build the testbed (the expensive part — lanes call this inside an
  /// event, so construction runs in the parallel phase).
  void start() {
    core::TestbedOptions options;
    // Mode-independent seed: both completion paths run the same bed.
    options.seed = config_.seed + u64{result_.payload} * 31 +
                   u64{result_.queue_depth} * 7;
    options.attach_blk = true;
    options.blk.capacity_sectors = config_.capacity_sectors;
    options.blk_driver.queue_depth = result_.queue_depth;
    options.blk_driver.max_io_bytes = result_.payload;
    bed_ = std::make_unique<core::VirtioNetTestbed>(options);

    rt_.bed = bed_.get();
    rt_.drv = &bed_->blk_driver();
    rt_.capacity_sectors = config_.capacity_sectors;
    rt_.write_buf.resize(result_.payload);
    sim::SplitMix64 fill{options.seed ^ 0x1bf52ull};
    for (auto& b : rt_.write_buf) {
      b = static_cast<u8>(fill.next());
    }
    rt_.warmup = config_.warmup_ops;
    total_ = config_.warmup_ops + config_.ops_per_cell;
    start_time_ = bed_->thread().now();
    if (mode_ == BlkCompletionMode::kReactorPolled) {
      bed_->blk_driver().set_polled(0, true);
      reactor_ = std::make_unique<reactor::Reactor>(
          reactor::ReactorConfig{.id = 0}, bed_->thread());
      register_pollers();
    }
  }

  /// Advance one completion batch. Returns true when the cell is done
  /// (the result is finalized and the testbed released).
  bool step() {
    if (mode_ == BlkCompletionMode::kInterrupt) {
      step_interrupt();
    } else {
      step_reactor();
    }
    if (completed_ < total_) {
      return false;
    }
    finalize();
    return true;
  }

  [[nodiscard]] BlkCellResult& result() { return result_; }
  /// Simulated time the cell has consumed so far — the lane sweep maps
  /// this onto the lane clock so lane time tracks cell progress.
  [[nodiscard]] sim::Duration elapsed() const {
    return bed_ != nullptr ? bed_->thread().now() - start_time_
                           : sim::Duration{};
  }

 private:
  /// Interrupt path, one iteration: fill the depth, sleep on the
  /// vector, drain on wake.
  void step_interrupt() {
    hostos::HostThread& t = bed_->thread();
    while (rt_.drv->in_flight(0) < rt_.depth && submitted_ < total_ &&
           rt_.submit_one()) {
      ++submitted_;
    }
    VFPGA_ASSERT(rt_.drv->in_flight(0) > 0);
    if (!rt_.drv->wait_interrupt(t, 0)) {
      completed_ = total_;  // vector torn down: abandon the cell
      return;
    }
    while (auto c = rt_.drv->pop_completion(0)) {
      ++completed_;
      rt_.record(*c, &result_);
    }
  }

  /// Reactor path: a submission poller keeps the queue at depth, a
  /// completion poller reaps whatever the visibility gate admits. When
  /// both poll dry the loop itself advances the clock (the calibrated
  /// reactor_poll_iteration cost) until the next completion surfaces —
  /// the reactor never sleeps. One step spins until a completion lands
  /// (or the batch budget runs out), keeping lane events coarse enough
  /// to amortize their scheduling.
  void step_reactor() {
    constexpr u32 kPollBudget = 512;
    const u32 before = completed_;
    for (u32 i = 0; i < kPollBudget && completed_ < total_; ++i) {
      reactor_->poll_once();
      if (completed_ != before && rt_.drv->in_flight(0) == 0) {
        break;
      }
    }
  }

  void register_pollers() {
    // SPDK-style batched submission: refill to full depth only once the
    // queue drains to a half-depth watermark. The engine is per-queue
    // serial, so anything >= 1 outstanding keeps it saturated — same
    // IOPS as greedy refill, but mean occupancy (and with it closed-loop
    // latency, by Little's law) stays below the interrupt path's
    // submit-on-every-completion discipline.
    const u16 watermark = rt_.depth / 2;
    submit_poller_ =
        reactor_->register_poller("blk-submit", [this, watermark](sim::SimTime) {
          if (rt_.drv->in_flight(0) > watermark) {
            return false;
          }
          bool any = false;
          while (rt_.drv->in_flight(0) < rt_.depth && submitted_ < total_ &&
                 rt_.submit_one()) {
            ++submitted_;
            any = true;
          }
          return any;
        });
    complete_poller_ =
        reactor_->register_poller("blk-complete", [this](sim::SimTime) {
          if (rt_.drv->harvest_now(bed_->thread(), 0) == 0) {
            return false;
          }
          while (auto c = rt_.drv->pop_completion(0)) {
            ++completed_;
            rt_.record(*c, &result_);
          }
          return true;
        });
  }

  void finalize() {
    hostos::HostThread& t = bed_->thread();
    if (reactor_ != nullptr) {
      reactor_->unregister_poller(submit_poller_);
      reactor_->unregister_poller(complete_poller_);
      result_.reactor_iterations = reactor_->stats().iterations;
      result_.reactor_busy_iterations = reactor_->stats().busy_iterations;
    }
    VFPGA_ASSERT(rt_.measured == config_.ops_per_cell);
    const sim::Duration span = t.now() - start_time_;
    result_.ops = rt_.measured;
    result_.iops = static_cast<double>(total_) / (span.micros() * 1e-6);
    // Ordering point on the way out: everything the cell wrote is
    // durable and the queue is quiescent (exercises the barrier path
    // per cell).
    VFPGA_ASSERT(bed_->blk_driver().flush(t));
    reactor_.reset();
    bed_.reset();
  }

  const BlkBenchConfig& config_;
  BlkCompletionMode mode_;
  BlkCellResult result_;
  CellRuntime rt_;
  std::unique_ptr<core::VirtioNetTestbed> bed_;
  std::unique_ptr<reactor::Reactor> reactor_;
  u64 submit_poller_ = 0;
  u64 complete_poller_ = 0;
  u32 total_ = 0;
  u32 submitted_ = 0;
  u32 completed_ = 0;
  sim::SimTime start_time_{};
};

}  // namespace

BlkBenchConfig BlkBenchConfig::from_env() {
  BlkBenchConfig config;
  if (const char* iters = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(iters);
    if (v > 0) {
      config.ops_per_cell = static_cast<u32>(v);
    }
  }
  if (const char* seed = std::getenv("VFPGA_SEED")) {
    const long long v = std::atoll(seed);
    if (v > 0) {
      config.seed = static_cast<u64>(v);
    }
  }
  return config;
}

BlkCellResult run_blk_cell(const BlkBenchConfig& config, BlkCompletionMode mode,
                           u32 payload, u16 queue_depth) {
  CellRun run(config, mode, payload, queue_depth);
  run.start();
  while (!run.step()) {
  }
  return std::move(run.result());
}

BlkSweepResult run_blk_sweep(const BlkBenchConfig& config) {
  // Cells in canonical order: payload-major, then depth, then
  // {interrupt, reactor} — the order the bench prints and every caller
  // can rely on.
  std::vector<std::unique_ptr<CellRun>> runs;
  for (const u32 payload : config.payloads) {
    for (const u16 depth : config.queue_depths) {
      runs.push_back(std::make_unique<CellRun>(
          config, BlkCompletionMode::kInterrupt, payload, depth));
      runs.push_back(std::make_unique<CellRun>(
          config, BlkCompletionMode::kReactorPolled, payload, depth));
    }
  }
  VFPGA_EXPECTS(!runs.empty());

  // Fixed lane count independent of the worker pool: lane assignment
  // (and with it every lane-local event order) must not change with the
  // host's core count, or determinism would only hold per-machine.
  constexpr std::size_t kSweepLanes = 8;
  const u32 lanes =
      static_cast<u32>(std::min<std::size_t>(kSweepLanes, runs.size()));

  sim::LaneSetConfig lc;
  lc.lanes = lanes;
  lc.window = sim::microseconds(100);
  // Cells only talk at completion, so the controller widens the window
  // until barriers are nearly free; each cell's simulation is lane-
  // local and unaffected.
  lc.adaptive.enabled = true;
  lc.adaptive.min_window = sim::microseconds(25);
  lc.adaptive.max_window = sim::milliseconds(10);
  sim::LaneSet set{lc};

  // Round-robin cells to lanes; each lane works its queue in order,
  // one completion batch per event, rescheduling after the simulated
  // time the batch consumed so lane clocks track cell progress (and
  // the window protocol stays fair across lanes).
  std::vector<std::vector<std::size_t>> queues(lanes);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    queues[i % lanes].push_back(i);
  }
  u32 cells_aggregated = 0;
  struct Advance {
    sim::LaneSet& set;
    std::vector<std::unique_ptr<CellRun>>& runs;
    std::vector<std::vector<std::size_t>>& queues;
    std::vector<u8>& started;
    u32* aggregated;

    void operator()(u32 lane, std::size_t qi) const {
      CellRun& run = *runs[queues[lane][qi]];
      sim::Scheduler& sched = set.lane(lane).scheduler();
      if (started[queues[lane][qi]] == 0) {
        // Testbed construction is the expensive part — it runs here,
        // inside the lane's event, i.e. in the parallel phase.
        started[queues[lane][qi]] = 1;
        run.start();
        sched.schedule_after(sim::nanoseconds(1),
                             [copy = *this, lane, qi] { copy(lane, qi); });
        return;
      }
      const sim::Duration before = run.elapsed();
      if (!run.step()) {
        const sim::Duration spent = run.elapsed() - before;
        sched.schedule_after(std::max(spent, sim::nanoseconds(1)),
                             [copy = *this, lane, qi] { copy(lane, qi); });
        return;
      }
      // Cell finished (testbed already released): count it on lane 0
      // through the rings, then take up the lane's next cell.
      set.post(lane, 0, set.horizon(),
               [a = aggregated] { ++*a; });
      if (qi + 1 < queues[lane].size()) {
        sched.schedule_after(sim::nanoseconds(1),
                             [copy = *this, lane, qi] { copy(lane, qi + 1); });
      }
    }
  };
  std::vector<u8> started(runs.size(), 0);
  Advance advance{set, runs, queues, started, &cells_aggregated};
  for (u32 l = 0; l < lanes; ++l) {
    if (queues[l].empty()) {
      continue;
    }
    set.lane(l).scheduler().schedule_at(
        sim::SimTime{} + sim::nanoseconds(1),
        [advance, l] { advance(l, 0); });
  }

  const sim::LaneSet::RunStats lane_stats =
      set.run(worker_threads(lanes, config.threads));
  VFPGA_ASSERT(lane_stats.dropped == 0);

  BlkSweepResult result;
  result.lane_windows = lane_stats.windows;
  result.lane_window_growths = lane_stats.window_growths;
  result.lane_messages = lane_stats.messages;
  result.cells_aggregated = cells_aggregated;
  VFPGA_ASSERT(result.cells_aggregated == runs.size());
  result.cells.reserve(runs.size());
  for (auto& run : runs) {
    result.cells.push_back(std::move(run->result()));
  }
  return result;
}

}  // namespace vfpga::harness
