#include "vfpga/harness/blk_bench.hpp"

#include <cstdlib>

#include "vfpga/common/contract.hpp"
#include "vfpga/reactor/reactor.hpp"

namespace vfpga::harness {

namespace {

/// Sector stride between consecutive ops — co-prime with any power-of-
/// two capacity, so the workload sweeps the whole store and the seek
/// cost model sees realistic head movement.
constexpr u64 kSectorStride = 173;

struct CellRuntime {
  core::VirtioNetTestbed* bed = nullptr;
  hostos::VirtioBlkDriver* drv = nullptr;
  u32 payload = 0;
  u16 depth = 0;
  Bytes write_buf;
  u64 capacity_sectors = 0;
  u32 next_op = 0;  ///< global op index, carried across phases

  bool submit_one() {
    hostos::HostThread& t = bed->thread();
    const u64 io_sectors = payload / virtio::blk::kSectorBytes;
    const u64 sector =
        (u64{next_op} * kSectorStride) % (capacity_sectors - io_sectors);
    const std::optional<u32> slot =
        (next_op % 2 == 0)
            ? drv->submit_write(t, 0, sector, write_buf)
            : drv->submit_read(t, 0, sector, payload);
    if (!slot.has_value()) {
      return false;
    }
    ++next_op;
    return true;
  }

  u32 warmup = 0;    ///< completions to discard before recording latency
  u32 measured = 0;  ///< completions recorded so far

  /// Completions pop in used-ring order; the first `warmup` are the
  /// pipeline-fill ramp and stay out of the latency distribution. IOPS
  /// is deliberately NOT derived from completed_at stamps: the engine
  /// runs ahead of the host, so an interrupt-mode drain clusters a
  /// whole depth of completions on one wake timestamp and any
  /// stamp-bounded window is off by up to a batch. The cell instead
  /// spans the full closed loop on the host clock, where the boundary
  /// batches amortize over the op count.
  void record(const hostos::VirtioBlkDriver::Completion& c,
              BlkCellResult* result) {
    if (warmup > 0) {
      --warmup;
      return;
    }
    ++measured;
    result->latency_us.add(c.completed_at - c.submitted_at);
    if (c.status != virtio::blk::kStatusOk) {
      ++result->failures;
    }
  }
};

/// Interrupt path: fill the depth, sleep on the vector, drain on wake.
void run_interrupt_cell(CellRuntime& rt, u32 count, BlkCellResult* result) {
  hostos::HostThread& t = rt.bed->thread();
  u32 submitted = 0;
  u32 completed = 0;
  while (completed < count) {
    while (rt.drv->in_flight(0) < rt.depth && submitted < count &&
           rt.submit_one()) {
      ++submitted;
    }
    VFPGA_ASSERT(rt.drv->in_flight(0) > 0);
    if (!rt.drv->wait_interrupt(t, 0)) {
      break;
    }
    while (auto c = rt.drv->pop_completion(0)) {
      ++completed;
      rt.record(*c, result);
    }
  }
}

/// Reactor path: a submission poller keeps the queue at depth, a
/// completion poller reaps whatever the visibility gate admits. When
/// both poll dry the loop itself advances the clock (the calibrated
/// reactor_poll_iteration cost) until the next completion surfaces —
/// the reactor never sleeps.
void run_reactor_cell(reactor::Reactor& r, CellRuntime& rt, u32 count,
                      BlkCellResult* result) {
  hostos::HostThread& t = rt.bed->thread();
  u32 submitted = 0;
  u32 completed = 0;
  // SPDK-style batched submission: refill to full depth only once the
  // queue drains to a half-depth watermark. The engine is per-queue
  // serial, so anything >= 1 outstanding keeps it saturated — same
  // IOPS as greedy refill, but mean occupancy (and with it closed-loop
  // latency, by Little's law) stays below the interrupt path's
  // submit-on-every-completion discipline.
  const u16 watermark = rt.depth / 2;
  const u64 submit_poller = r.register_poller("blk-submit", [&](sim::SimTime) {
    if (rt.drv->in_flight(0) > watermark) {
      return false;
    }
    bool any = false;
    while (rt.drv->in_flight(0) < rt.depth && submitted < count &&
           rt.submit_one()) {
      ++submitted;
      any = true;
    }
    return any;
  });
  const u64 complete_poller =
      r.register_poller("blk-complete", [&](sim::SimTime) {
        if (rt.drv->harvest_now(t, 0) == 0) {
          return false;
        }
        while (auto c = rt.drv->pop_completion(0)) {
          ++completed;
          rt.record(*c, result);
        }
        return true;
      });
  while (completed < count) {
    r.poll_once();
  }
  r.unregister_poller(submit_poller);
  r.unregister_poller(complete_poller);
}

}  // namespace

BlkBenchConfig BlkBenchConfig::from_env() {
  BlkBenchConfig config;
  if (const char* iters = std::getenv("VFPGA_ITERATIONS")) {
    const long long v = std::atoll(iters);
    if (v > 0) {
      config.ops_per_cell = static_cast<u32>(v);
    }
  }
  if (const char* seed = std::getenv("VFPGA_SEED")) {
    const long long v = std::atoll(seed);
    if (v > 0) {
      config.seed = static_cast<u64>(v);
    }
  }
  return config;
}

BlkCellResult run_blk_cell(const BlkBenchConfig& config, BlkCompletionMode mode,
                           u32 payload, u16 queue_depth) {
  VFPGA_EXPECTS(payload % virtio::blk::kSectorBytes == 0);
  VFPGA_EXPECTS(config.warmup_ops > 0);
  BlkCellResult result;
  result.mode = mode;
  result.payload = payload;
  result.queue_depth = queue_depth;

  core::TestbedOptions options;
  // Mode-independent seed: both completion paths run the same bed.
  options.seed = config.seed + u64{payload} * 31 + u64{queue_depth} * 7;
  options.attach_blk = true;
  options.blk.capacity_sectors = config.capacity_sectors;
  options.blk_driver.queue_depth = queue_depth;
  options.blk_driver.max_io_bytes = payload;
  core::VirtioNetTestbed bed{options};

  CellRuntime rt;
  rt.bed = &bed;
  rt.drv = &bed.blk_driver();
  rt.payload = payload;
  rt.depth = queue_depth;
  rt.capacity_sectors = config.capacity_sectors;
  rt.write_buf.resize(payload);
  sim::SplitMix64 fill{options.seed ^ 0x1bf52ull};
  for (auto& b : rt.write_buf) {
    b = static_cast<u8>(fill.next());
  }

  hostos::HostThread& t = bed.thread();
  rt.warmup = config.warmup_ops;
  const u32 total = config.warmup_ops + config.ops_per_cell;
  const sim::SimTime start = t.now();
  if (mode == BlkCompletionMode::kInterrupt) {
    run_interrupt_cell(rt, total, &result);
  } else {
    bed.blk_driver().set_polled(0, true);
    reactor::Reactor reactor{{.id = 0}, t};
    run_reactor_cell(reactor, rt, total, &result);
    result.reactor_iterations = reactor.stats().iterations;
    result.reactor_busy_iterations = reactor.stats().busy_iterations;
  }
  VFPGA_ASSERT(rt.measured == config.ops_per_cell);
  const sim::Duration span = t.now() - start;
  result.ops = rt.measured;
  result.iops = static_cast<double>(total) / (span.micros() * 1e-6);
  // Ordering point on the way out: everything the cell wrote is durable
  // and the queue is quiescent (exercises the barrier path per cell).
  VFPGA_ASSERT(bed.blk_driver().flush(t));
  return result;
}

}  // namespace vfpga::harness
