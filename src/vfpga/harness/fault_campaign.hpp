// Randomized fault-injection campaigns.
//
// Sweeps (fault class x seed) over the paper's two workloads — the
// VirtIO UDP-echo path and the XDMA character-device loop-back — with
// the FaultPlane armed, and asserts the three robustness invariants per
// run: no hang (every operation completes within a bounded number of
// recovery attempts), no silent payload corruption (end-to-end echo /
// read-back integrity on every accepted result), and return to
// steady-state throughput after the plane is disarmed. Recovery latency
// (fault detection -> successful completion) is recorded per fault
// class as exact samples so the report can print p50/p99.
#pragma once

#include <string>
#include <vector>

#include "vfpga/core/testbed.hpp"
#include "vfpga/fault/fault_plane.hpp"
#include "vfpga/stats/summary.hpp"

namespace vfpga::harness {

struct CampaignConfig {
  /// Seeded runs per (fault class, workload) pair; each run builds a
  /// fresh testbed with seed base_seed + run index.
  u64 runs_per_class = 200;
  /// Operations (UDP echoes / write+read round trips) per run with the
  /// fault plane armed.
  u32 ops_per_run = 12;
  /// Operations after disarming that must succeed without any recovery
  /// action — the steady-state proof.
  u32 clean_ops = 4;
  /// Per-consult injection probability for the class under test.
  double fault_rate = 0.08;
  u64 base_seed = 202408;
  u64 udp_payload_bytes = 256;
  u64 xdma_bytes = 1024;
  /// Give up on one operation after this many end-to-end retries; an
  /// exhausted budget is a hang (liveness violation).
  u32 max_op_attempts = 8;
  /// Also bound each operation by simulated time as a belt-and-braces
  /// liveness check.
  sim::Duration op_time_bound = sim::milliseconds(50);

  /// Apply VFPGA_CAMPAIGN_RUNS / VFPGA_CAMPAIGN_OPS /
  /// VFPGA_CAMPAIGN_RATE / VFPGA_SEED environment overrides.
  static CampaignConfig from_env();
};

/// Aggregated result for one (fault class, workload) pair.
struct ClassReport {
  fault::FaultClass cls{};
  std::string workload;  ///< "udp-echo", "udp-mq", "chardev" or "blk-io"
  u64 runs = 0;
  u64 hangs = 0;         ///< ops that exhausted the retry/time budget
  u64 corruptions = 0;   ///< accepted results with mismatched payload
  u64 injected = 0;      ///< faults the plane actually injected
  u64 recoveries = 0;    ///< ops that hit a fault and still completed
  u64 device_resets = 0;
  u64 steady_state_failures = 0;  ///< post-disarm ops needing recovery
  stats::SampleSet recovery_us;   ///< detection -> completion latency

  [[nodiscard]] bool ok() const {
    return hangs == 0 && corruptions == 0 && steady_state_failures == 0;
  }
};

struct CampaignResult {
  std::vector<ClassReport> classes;
  [[nodiscard]] bool ok() const;
};

/// Run the full campaign: every virtio-reachable fault class against
/// the UDP-echo workload, the DMA/engine classes against the chardev
/// workload.
CampaignResult run_fault_campaign(const CampaignConfig& config);

/// Human-readable per-class table (count / injected / hangs /
/// corruptions / resets / recovery p50/p99).
void print_campaign_report(const CampaignResult& result);

}  // namespace vfpga::harness
