#include "vfpga/harness/sim_speed.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "vfpga/common/contract.hpp"
#include "vfpga/core/testbed.hpp"
#include "vfpga/harness/parallel.hpp"
#include "vfpga/migrate/snapshot.hpp"
#include "vfpga/sim/rng.hpp"
#include "vfpga/stats/sharded.hpp"

namespace vfpga::harness {

namespace {

constexpr u32 kEchoAttempts = 64;

/// Everything one lane owns: its shard of the simulated world. Only the
/// worker stepping this lane touches any of it during a window; the
/// cross-lane `notified` counter is bumped by message handlers, which
/// also run on the owning lane.
///
/// As the lane's LaneCheckpointHook it is the resumable-bench-cell side
/// of optimistic sync: save() serializes the testbed (a PR-6 snapshot
/// image taken in place — pending holdoffs are captured faithfully, no
/// quiesce needed), the host thread, the FlowGen shard and the sample
/// count; restore() rebuilds the testbed from the same options, applies
/// the image, and rebinds the per-slot sockets (thin stack+port views)
/// to the rebuilt stack.
struct LaneContext final : sim::LaneCheckpointHook {
  u32 id = 0;
  sim::EventLane* lane = nullptr;
  core::TestbedOptions options;
  std::unique_ptr<core::VirtioNetTestbed> bed;
  std::unique_ptr<hostos::HostThread> thread;
  std::unique_ptr<net::FlowGen> gen;
  std::vector<std::unique_ptr<hostos::UdpSocket>> sockets;  // per slot
  stats::SampleSet* samples = nullptr;
  u64 quota = 0;
  u64 packets_done = 0;
  u64 failures = 0;
  u64 completions = 0;
  u64 notified = 0;  ///< cross-lane notification handlers that ran here
  sim::SimTime last_activity{};

  void save(migrate::StateWriter& w) override {
    w.put_blob(migrate::save_snapshot(*bed, true));
    thread->save_state(w);
    gen->save_state(w);
    w.put_u64(samples->count());
    w.put_u64(packets_done);
    w.put_u64(failures);
    w.put_u64(completions);
    w.put_u64(notified);
    w.put_time(last_activity);
  }

  void restore(migrate::StateReader& r) override {
    const Bytes image = r.get_blob();
    bed = std::make_unique<core::VirtioNetTestbed>(options);
    const migrate::RestoreStatus status =
        migrate::restore_snapshot(*bed, image);
    VFPGA_ASSERT(status == migrate::RestoreStatus::kOk);
    thread = bed->spawn_thread();
    thread->load_state(r);
    gen->load_state(r);
    for (u32 slot = 0; slot < sockets.size(); ++slot) {
      sockets[slot] = std::make_unique<hostos::UdpSocket>(
          bed->stack(), gen->flow(slot).src_port);
    }
    samples->truncate(r.get_u64());
    packets_done = r.get_u64();
    failures = r.get_u64();
    completions = r.get_u64();
    notified = r.get_u64();
    last_activity = r.get_time();
  }
};

class Runner {
 public:
  static sim::LaneSetConfig lane_config(const SimSpeedConfig& config) {
    sim::LaneSetConfig lc;
    lc.lanes = config.lanes;
    lc.window = config.window;
    lc.ring_capacity = config.ring_capacity;
    lc.speculation.mode = config.sync;
    lc.speculation.depth = config.speculation_depth;
    return lc;
  }

  explicit Runner(const SimSpeedConfig& config)
      : config_(config),
        set_(lane_config(config)),
        shards_(config.lanes, config.packets_per_lane),
        smallfn_baseline_(sim::SmallFn::heap_allocations()) {
    sim::SplitMix64 seeder{config_.seed};
    contexts_.reserve(config_.lanes);
    for (u32 i = 0; i < config_.lanes; ++i) {
      auto ctx = std::make_unique<LaneContext>();
      ctx->id = i;
      ctx->lane = &set_.lane(i);
      ctx->samples = &shards_.shard(i);
      ctx->quota = config_.packets_per_lane;

      ctx->options.seed = seeder.next();
      ctx->options.requested_queue_pairs = 1;
      ctx->options.net.max_queue_pairs = 1;
      ctx->bed = std::make_unique<core::VirtioNetTestbed>(ctx->options);
      ctx->thread = ctx->bed->spawn_thread();

      // The lane's population: its slice of the GLOBAL RSS space. Every
      // flow's searched source port steers to pair `i` under the same
      // Toeplitz hash the multi-queue device uses, so the lane sharding
      // is exactly the device's own flow-to-queue mapping.
      net::FlowGenConfig gen_config;
      gen_config.host_ip = ctx->bed->stack().config().host_ip;
      gen_config.fpga_ip = ctx->bed->fpga_ip();
      gen_config.fpga_port = ctx->bed->options().fpga_udp_port;
      gen_config.pairs = static_cast<u16>(config_.lanes);
      gen_config.pair_set = {static_cast<u16>(i)};
      gen_config.flows = config_.flows_per_lane;
      gen_config.arrivals = config_.arrivals;
      gen_config.mean_gap_us = config_.mean_gap_us;
      gen_config.size_max_packets = config_.size_max_packets;
      gen_config.payload_min = config_.payload_min;
      gen_config.payload_max = config_.payload_max;
      gen_config.seed = seeder.next();
      ctx->gen = std::make_unique<net::FlowGen>(gen_config);

      ctx->sockets.resize(config_.flows_per_lane);
      for (u32 slot = 0; slot < config_.flows_per_lane; ++slot) {
        ctx->sockets[slot] = std::make_unique<hostos::UdpSocket>(
            ctx->bed->stack(), ctx->gen->flow(slot).src_port);
      }
      contexts_.push_back(std::move(ctx));
      set_.set_checkpoint_hook(i, contexts_.back().get());
    }

    // Seed each slot's first departure with a deterministic stagger so
    // the opening window is not one synchronized burst.
    for (u32 i = 0; i < config_.lanes; ++i) {
      sim::Scheduler& sched = contexts_[i]->lane->scheduler();
      for (u32 slot = 0; slot < config_.flows_per_lane; ++slot) {
        sched.schedule_at(sim::SimTime{} + sim::from_nanos(
                              static_cast<double>(slot + 1) * 137.0),
                          [this, i, slot] { fire_slot(i, slot); });
      }
    }
  }

  SimSpeedResult run(unsigned threads) {
    const auto wall_start = std::chrono::steady_clock::now();
    const sim::LaneSet::RunStats stats = set_.run(threads);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    SimSpeedResult r;
    r.lanes = config_.lanes;
    r.threads_used = threads;
    r.events = stats.events;
    r.windows = stats.windows;
    r.barriers = stats.barriers;
    r.cross_lane_messages = stats.messages;
    r.dropped_messages = stats.dropped;
    r.window_growths = stats.window_growths;
    r.window_shrinks = stats.window_shrinks;
    r.speculative_rounds = stats.speculative_rounds;
    r.speculated_windows = stats.speculated_windows;
    r.rollbacks = stats.rollbacks;
    r.checkpoint_bytes = stats.checkpoint_bytes;
    r.residency = stats.residency;
    sim::SimTime last{};
    for (const std::unique_ptr<LaneContext>& ctx : contexts_) {
      r.packets += ctx->packets_done;
      r.failures += ctx->failures;
      r.cross_lane_received += ctx->notified;
      r.flows_created += ctx->gen->flows_created();
      r.flows_completed += ctx->gen->flows_completed();
      r.flows_abandoned += ctx->gen->flows_abandoned();
      last = std::max(last, ctx->last_activity);
    }
    r.sim_makespan_us = (last - sim::SimTime{}).micros();
    for (u32 i = 0; i < config_.lanes; ++i) {
      r.arena_nodes += set_.lane(i).scheduler().arena().node_allocations();
    }
    r.smallfn_heap_fallbacks =
        sim::SmallFn::heap_allocations() - smallfn_baseline_;
    const stats::SampleSet merged = shards_.merged();
    r.latency = stats::LatencySummary::from(merged);
    r.sample_count = merged.count();
    r.wall_seconds = wall.count();
    r.packets_per_wall_second =
        wall.count() > 0 ? static_cast<double>(r.packets) / wall.count() : 0;
    return r;
  }

 private:
  /// One echo round trip through the lane's own testbed; true when the
  /// payload came back intact.
  bool echo(LaneContext& ctx, u32 slot, u32 payload_bytes, u8 tag) {
    hostos::HostThread& t = *ctx.thread;
    core::VirtioNetTestbed& bed = *ctx.bed;
    t.exec(bed.options().costs.app_iteration);
    Bytes payload(payload_bytes, tag);
    payload[0] = static_cast<u8>(ctx.packets_done & 0xff);

    const sim::SimTime start = t.now();
    hostos::UdpSocket& socket = *ctx.sockets[slot];
    if (!socket.sendto(t, bed.fpga_ip(), bed.options().fpga_udp_port,
                       payload)) {
      return false;
    }
    for (u32 attempt = 0; attempt < kEchoAttempts; ++attempt) {
      const auto reply = socket.recvfrom(t);
      if (reply.has_value()) {
        if (reply->payload.size() != payload.size() ||
            !std::equal(payload.begin(), payload.end(),
                        reply->payload.begin())) {
          return false;
        }
        ctx.samples->add(t.now() - start);
        return true;
      }
      bed.stack().poll_rx(t);
    }
    return false;
  }

  /// Scheduler event: the slot's next packet departs now.
  void fire_slot(u32 lane_id, u32 slot) {
    LaneContext& ctx = *contexts_[lane_id];
    if (ctx.packets_done >= ctx.quota || !ctx.gen->flow(slot).open) {
      return;  // lane drained (or this slot closed) after scheduling
    }
    const net::FlowGen::Departure d = ctx.gen->next_packet(slot);
    if (!echo(ctx, slot, d.payload_bytes,
              static_cast<u8>(0x40 + d.flow_id % 0x80))) {
      ++ctx.failures;
    }
    ++ctx.packets_done;
    ctx.last_activity = ctx.lane->scheduler().now();
    if (ctx.packets_done >= ctx.quota) {
      drain(ctx);
      return;
    }
    sim::Scheduler& sched = ctx.lane->scheduler();
    if (!d.fin) {
      sched.schedule_after(d.gap, [this, lane_id, slot] {
        fire_slot(lane_id, slot);
      });
      return;
    }
    // Flow finished: tell the next lane (a real cross-lane message
    // through the rings; due = post_horizon(lane) is the earliest legal
    // instant — the sender's own window end, == horizon() outside a
    // speculative round), then churn the slot.
    ++ctx.completions;
    const u32 dst = (lane_id + 1) % static_cast<u32>(contexts_.size());
    u64* counter = &contexts_[dst]->notified;
    set_.post(lane_id, dst, set_.post_horizon(lane_id),
              [counter] { ++*counter; });
    const std::optional<sim::Duration> arrival = ctx.gen->churn_slot(slot);
    if (arrival.has_value()) {
      // The replacement flow has a fresh source port: rebind its socket.
      ctx.sockets[slot] = std::make_unique<hostos::UdpSocket>(
          ctx.bed->stack(), ctx.gen->flow(slot).src_port);
      sched.schedule_after(*arrival, [this, lane_id, slot] {
        fire_slot(lane_id, slot);
      });
    }
  }

  /// Quota reached: abandon the still-open flows so the lane quiesces.
  void drain(LaneContext& ctx) {
    for (u32 slot = 0; slot < ctx.gen->slots(); ++slot) {
      if (ctx.gen->flow(slot).open) {
        ctx.gen->close_slot(slot);
      }
    }
  }

  SimSpeedConfig config_;
  sim::LaneSet set_;
  stats::ShardedSamples shards_;
  std::vector<std::unique_ptr<LaneContext>> contexts_;
  u64 smallfn_baseline_ = 0;
};

}  // namespace

SimSpeedResult run_sim_speed(const SimSpeedConfig& config) {
  VFPGA_EXPECTS(config.lanes >= 1 && config.flows_per_lane >= 1 &&
                config.packets_per_lane >= 1);
  Runner runner(config);
  return runner.run(worker_threads(config.lanes, config.threads));
}

namespace {

/// One lane's soak shard: the FlowGen slice plus tick bookkeeping. The
/// checkpoint hook is just the FlowGen state plus these counters — no
/// testbed, so soak checkpoints are cheap and the soak is the workload
/// where speculation pays (sparse notifies = rare stragglers).
struct SoakShard final : sim::LaneCheckpointHook {
  std::unique_ptr<net::FlowGen> gen;
  u32 cursor = 0;  ///< next slot the tick batch starts from
  u32 ticks_done = 0;
  u64 packets = 0;
  u64 notified = 0;  ///< cross-lane notification handlers that ran here
  sim::SimTime last_activity{};

  void save(migrate::StateWriter& w) override {
    gen->save_state(w);
    w.put_u32(cursor);
    w.put_u32(ticks_done);
    w.put_u64(packets);
    w.put_u64(notified);
    w.put_time(last_activity);
  }

  void restore(migrate::StateReader& r) override {
    gen->load_state(r);
    cursor = r.get_u32();
    ticks_done = r.get_u32();
    packets = r.get_u64();
    notified = r.get_u64();
    last_activity = r.get_time();
  }
};

class SoakRunner {
 public:
  explicit SoakRunner(const FlowSoakConfig& config)
      : config_(config), set_(lane_config(config)), shards_(config.lanes) {
    sim::SplitMix64 seeder{config_.seed};
    for (u32 l = 0; l < config_.lanes; ++l) {
      net::FlowGenConfig gc;
      // Disjoint client-IP ranges per lane: shard l owns
      // [base + l*ips, base + (l+1)*ips). 10.77.0.0 leaves the testbed
      // nets (unused here, but keep the address plan tidy).
      gc.host_ip = net::Ipv4Addr{0x0a4d0001u +
                                 u32{config_.host_ips_per_lane} * l};
      gc.host_ip_count = config_.host_ips_per_lane;
      gc.fpga_ip = net::Ipv4Addr{0x0a4dffffu};
      gc.pairs = static_cast<u16>(config_.lanes);
      gc.pair_set = {static_cast<u16>(l)};
      gc.flows = config_.flows_per_lane;
      gc.size_max_packets = config_.size_max_packets;
      gc.mean_gap_us = config_.mean_gap_us;
      gc.seed = seeder.next();
      shards_[l].gen = std::make_unique<net::FlowGen>(gc);
      set_.set_checkpoint_hook(l, &shards_[l]);

      // Stagger first ticks so the opening window is not one aligned
      // burst (the offsets are fixed — determinism is untouched).
      set_.lane(l).scheduler().schedule_at(
          sim::SimTime{} + config_.tick + sim::nanoseconds(l * 137 + 1),
          [this, l] { tick(l); });
    }
  }

  FlowSoakResult run(unsigned threads) {
    const auto wall_start = std::chrono::steady_clock::now();
    const sim::LaneSet::RunStats stats = set_.run(threads);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    VFPGA_ASSERT(stats.dropped == 0);

    FlowSoakResult r;
    r.lanes = config_.lanes;
    r.threads_used = threads;
    r.windows = stats.windows;
    r.barriers = stats.barriers;
    r.window_growths = stats.window_growths;
    r.window_shrinks = stats.window_shrinks;
    r.speculative_rounds = stats.speculative_rounds;
    r.speculated_windows = stats.speculated_windows;
    r.rollbacks = stats.rollbacks;
    r.checkpoint_bytes = stats.checkpoint_bytes;
    r.cross_lane_messages = stats.messages;
    sim::SimTime last{};
    for (const SoakShard& shard : shards_) {
      const net::FlowGen& gen = *shard.gen;
      // The churn-leak audit, per shard: every created flow is either
      // finished, abandoned, or still live, and every live flow holds
      // exactly one tuple.
      VFPGA_ASSERT(gen.flows_created() ==
                   gen.flows_completed() + gen.flows_abandoned() +
                       gen.open_flows());
      VFPGA_ASSERT(gen.live_ports() == gen.open_flows());
      r.table_slots += gen.slots();
      r.packets += shard.packets;
      r.ticks_run += shard.ticks_done;
      r.flows_created += gen.flows_created();
      r.flows_completed += gen.flows_completed();
      r.flows_open += gen.open_flows();
      r.cross_lane_received += shard.notified;
      r.footprint_bytes += gen.footprint_bytes();
      last = std::max(last, shard.last_activity);
    }
    r.bytes_per_flow = static_cast<double>(r.footprint_bytes) /
                       static_cast<double>(r.table_slots);
    r.sim_makespan_us = (last - sim::SimTime{}).micros();
    r.wall_seconds = wall.count();
    r.packets_per_wall_second =
        wall.count() > 0 ? static_cast<double>(r.packets) / wall.count() : 0;
    return r;
  }

 private:
  static sim::LaneSetConfig lane_config(const FlowSoakConfig& config) {
    sim::LaneSetConfig lc;
    lc.lanes = config.lanes;
    lc.window = config.window;
    lc.ring_capacity = config.ring_capacity;
    lc.adaptive.enabled = config.adaptive;
    lc.adaptive.min_window = config.window;
    lc.adaptive.max_window = sim::milliseconds(10);
    lc.speculation.mode = config.sync;
    lc.speculation.depth = config.speculation_depth;
    return lc;
  }

  /// One churn round: advance a batch of slots, churning every flow
  /// that finishes. The tick cadence (not the flows' own gap draws)
  /// paces the lane — the soak stresses table turnover, not timing.
  void tick(u32 l) {
    SoakShard& shard = shards_[l];
    net::FlowGen& gen = *shard.gen;
    const u32 slots = gen.slots();
    for (u32 i = 0; i < config_.slots_per_tick; ++i) {
      const u32 slot = shard.cursor;
      shard.cursor = (shard.cursor + 1) % slots;
      if (!gen.flow(slot).open) {
        continue;
      }
      const net::FlowGen::Departure d = gen.next_packet(slot);
      ++shard.packets;
      if (d.fin) {
        (void)gen.churn_slot(slot);  // refill: population stays level
      }
    }
    ++shard.ticks_done;
    shard.last_activity = set_.lane(l).scheduler().now();
    // Sparse cross-lane traffic: enough to keep the rings and the
    // visibility gates honest, rare enough that the adaptive controller
    // sees a quiet fleet and widens the window.
    if (shard.ticks_done % config_.notify_every == 0) {
      const u32 dst = (l + 1) % config_.lanes;
      u64* counter = &shards_[dst].notified;
      set_.post(l, dst, set_.post_horizon(l), [counter] { ++*counter; });
    }
    if (shard.ticks_done < config_.ticks) {
      set_.lane(l).scheduler().schedule_after(config_.tick,
                                              [this, l] { tick(l); });
    }
  }

  FlowSoakConfig config_;
  sim::LaneSet set_;
  std::vector<SoakShard> shards_;
};

}  // namespace

FlowSoakResult run_flow_soak(const FlowSoakConfig& config) {
  VFPGA_EXPECTS(config.lanes >= 1 && config.lanes <= 256);
  VFPGA_EXPECTS(config.flows_per_lane >= 1 && config.ticks >= 1 &&
                config.slots_per_tick >= 1 && config.notify_every >= 1);
  SoakRunner runner(config);
  const unsigned threads = worker_threads(config.lanes, config.threads);
  return runner.run(threads);
}

}  // namespace vfpga::harness
