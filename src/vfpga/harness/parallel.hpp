// Parallel sweep driver.
//
// Each (driver, payload) cell is an independent simulation with its own
// testbed and seeded RNG stream, so cells run on a thread pool with
// bit-identical results regardless of scheduling — "same seed, same
// tables" holds at any thread count (set VFPGA_THREADS=1 to verify).
#pragma once

#include <functional>
#include <utility>

#include "vfpga/harness/virtio_bench.hpp"
#include "vfpga/harness/xdma_bench.hpp"

namespace vfpga::harness {

/// Number of worker threads to use (VFPGA_THREADS override, default:
/// hardware_concurrency capped at the cell count).
unsigned worker_threads(std::size_t cells);

/// Same, with a CLI-requested count in the middle of the precedence
/// chain: VFPGA_THREADS env > `cli_request` (--threads N, 0 = unset) >
/// hardware_concurrency — then clamped to the cell count. The env wins
/// so a CI matrix can pin the oracle thread count without caring what
/// flags each bench invocation carries.
unsigned worker_threads(std::size_t cells, unsigned cli_request);

/// Run `tasks` on up to `threads` workers; task order in the result is
/// preserved.
void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads);

/// Run both driver sweeps with all cells in parallel.
std::pair<SweepResult, SweepResult> run_both_sweeps_parallel(
    const ExperimentConfig& config);

}  // namespace vfpga::harness
