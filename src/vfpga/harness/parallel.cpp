#include "vfpga/harness/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "vfpga/sim/rng.hpp"

namespace vfpga::harness {

unsigned worker_threads(std::size_t cells) {
  return worker_threads(cells, 0);
}

unsigned worker_threads(std::size_t cells, unsigned cli_request) {
  unsigned threads = std::thread::hardware_concurrency();
  if (threads == 0) {
    threads = 4;
  }
  if (cli_request > 0) {
    threads = cli_request;
  }
  if (const char* env = std::getenv("VFPGA_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) {
      threads = static_cast<unsigned>(v);
    }
  }
  // Clamp AFTER the env override: VFPGA_THREADS=64 with 4 cells must
  // still yield 4 workers — spawning threads with no work to claim only
  // adds creation cost and scheduler noise.
  if (threads > cells) {
    threads = static_cast<unsigned>(cells);
  }
  return std::max(threads, 1u);
}

void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads) {
  if (threads <= 1 || tasks.size() <= 1) {
    for (auto& task : tasks) {
      task();
    }
    return;
  }
  // A worker beyond the task count would grab no work; don't pay its
  // creation cost (callers may pass a raw VFPGA_THREADS value).
  const unsigned workers_needed =
      std::min<unsigned>(threads, static_cast<unsigned>(tasks.size()));
  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> workers;
  workers.reserve(workers_needed);
  for (unsigned w = 0; w < workers_needed; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t index = next.fetch_add(1);
        if (index >= tasks.size()) {
          return;
        }
        tasks[index]();
      }
    });
  }
}

std::pair<SweepResult, SweepResult> run_both_sweeps_parallel(
    const ExperimentConfig& config) {
  SweepResult virtio;
  virtio.driver_name = "VirtIO";
  virtio.cells.resize(config.payloads.size());
  SweepResult xdma;
  xdma.driver_name = "XDMA";
  xdma.cells.resize(config.payloads.size());

  // Derive cell seeds exactly as the sequential runners do, so parallel
  // and sequential execution produce identical numbers.
  std::vector<u64> virtio_seeds;
  {
    sim::SplitMix64 seeder{config.seed};
    for (std::size_t i = 0; i < config.payloads.size(); ++i) {
      virtio_seeds.push_back(seeder.next());
    }
  }
  std::vector<u64> xdma_seeds;
  {
    sim::SplitMix64 seeder{config.seed ^ 0xdadau};
    for (std::size_t i = 0; i < config.payloads.size(); ++i) {
      xdma_seeds.push_back(seeder.next());
    }
  }

  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < config.payloads.size(); ++i) {
    tasks.emplace_back([&, i] {
      virtio.cells[i] =
          run_virtio_cell(config, config.payloads[i], virtio_seeds[i]);
    });
    tasks.emplace_back([&, i] {
      xdma.cells[i] = run_xdma_cell(config, config.payloads[i], xdma_seeds[i]);
    });
  }
  run_parallel(std::move(tasks), worker_threads(tasks.size()));
  return {std::move(virtio), std::move(xdma)};
}

}  // namespace vfpga::harness
